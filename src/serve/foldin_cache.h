// Bounded LRU cache over fold-in posteriors, keyed by a 64-bit content
// hash of the task's bag-of-words. Repeated or re-dispatched tasks skip
// the conjugate-gradient subproblem entirely: a hit is a mutex-guarded
// map lookup plus two Vector copies, microseconds against the CG solve's
// hundreds.
//
// The cache stores the *posterior* (lambda, nu_sq) only — when the
// options sample c_j at selection time, sampling is applied per query
// after the lookup, so caching never freezes the sampled category.
#ifndef CROWDSELECT_SERVE_FOLDIN_CACHE_H_
#define CROWDSELECT_SERVE_FOLDIN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "model/fold_in.h"
#include "text/bag_of_words.h"

namespace crowdselect::serve {

/// FNV-1a over the bag's sorted (term, count) entries. Two bags with the
/// same multiset of terms hash identically regardless of source text.
/// 64-bit collisions are accepted as a serving-quality trade-off (a
/// collision returns a wrong but well-formed posterior; at 2^32 distinct
/// tasks the birthday bound is ~0.4).
uint64_t HashBag(const BagOfWords& bag);

/// Thread-safe LRU map: key -> fold-in posterior. Capacity 0 disables
/// every operation (Lookup always misses, Insert drops), which is how
/// `--foldin-cache 0` turns the cache off without branching at call
/// sites.
class FoldInCache {
 public:
  explicit FoldInCache(size_t capacity);

  /// On hit, copies the cached posterior (lambda, nu_sq; category left
  /// empty) into `out` and refreshes recency. Counts serve.cache.hits /
  /// serve.cache.misses.
  bool Lookup(uint64_t key, FoldInResult* out);

  /// Inserts or refreshes `key`; evicts the least-recently-used entry
  /// when at capacity. The stored category (if any) is dropped.
  void Insert(uint64_t key, const FoldInResult& value);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Process-lifetime counters, also mirrored into the obs registry.
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  struct Entry {
    uint64_t key;
    Vector lambda;
    Vector nu_sq;
    int cg_iterations = 0;    ///< Cost of the solve that filled this entry.
    double cg_residual = 0.0;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace crowdselect::serve

#endif  // CROWDSELECT_SERVE_FOLDIN_CACHE_H_
