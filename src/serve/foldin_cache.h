// Bounded LRU cache over fold-in posteriors, keyed by (namespace,
// content hash): the namespace identifies which model family produced
// the posterior (model id + snapshot generation) and the hash is a
// 64-bit content hash of the task's bag-of-words. Repeated or
// re-dispatched tasks skip the fold-in subproblem entirely: a hit is a
// mutex-guarded map lookup plus two Vector copies, microseconds against
// the CG solve's hundreds.
//
// The namespace half of the key exists because two models can project
// the *same* task text to entirely different latent spaces — a TDPM
// posterior served to a Dawid-Skene query (or vice versa) would be a
// silent wrong answer. Keying on content hash alone did exactly that
// when an engine was rebuilt for a different model; see the
// FoldInCacheNamespace regression test.
//
// The cache stores the *posterior* (lambda, nu_sq) only — when the
// options sample c_j at selection time, sampling is applied per query
// after the lookup, so caching never freezes the sampled category.
#ifndef CROWDSELECT_SERVE_FOLDIN_CACHE_H_
#define CROWDSELECT_SERVE_FOLDIN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "model/fold_in.h"
#include "text/bag_of_words.h"

namespace crowdselect::serve {

/// FNV-1a over the bag's sorted (term, count) entries. Two bags with the
/// same multiset of terms hash identically regardless of source text.
/// 64-bit collisions are accepted as a serving-quality trade-off (a
/// collision returns a wrong but well-formed posterior; at 2^32 distinct
/// tasks the birthday bound is ~0.4).
uint64_t HashBag(const BagOfWords& bag);

/// FNV-1a over a model-id string, used as the cache-namespace seed so
/// distinct model ids map to distinct namespaces.
uint64_t HashModelId(const std::string& model_id);

/// Thread-safe LRU map: (namespace, content hash) -> fold-in posterior.
/// Capacity 0 disables every operation (Lookup always misses, Insert
/// drops), which is how `--foldin-cache 0` turns the cache off without
/// branching at call sites.
class FoldInCache {
 public:
  explicit FoldInCache(size_t capacity);

  /// On hit, copies the cached posterior (lambda, nu_sq; category left
  /// empty) into `out` and refreshes recency. Counts serve.cache.hits /
  /// serve.cache.misses. Entries inserted under a different `ns` never
  /// hit, regardless of `key`.
  bool Lookup(uint64_t ns, uint64_t key, FoldInResult* out);

  /// Inserts or refreshes (`ns`, `key`); evicts the least-recently-used
  /// entry when at capacity. The stored category (if any) is dropped.
  void Insert(uint64_t ns, uint64_t key, const FoldInResult& value);

  /// Single-model convenience forms (namespace 0), used by benches and
  /// tests that exercise one projector.
  bool Lookup(uint64_t key, FoldInResult* out) {
    return Lookup(/*ns=*/0, key, out);
  }
  void Insert(uint64_t key, const FoldInResult& value) {
    Insert(/*ns=*/0, key, value);
  }

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Process-lifetime counters, also mirrored into the obs registry.
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  /// Composite key: namespace (model id + snapshot family) and task
  /// content hash, compared exactly — never folded into one word, so two
  /// models can disagree about the same task without colliding.
  using Key = std::pair<uint64_t, uint64_t>;
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Splitmix-style mix of the namespace into the content hash; the
      // map only needs dispersion, equality is exact on the pair.
      uint64_t h = k.second ^ (k.first * 0x9E3779B97F4A7C15ULL);
      h ^= h >> 32;
      return static_cast<size_t>(h);
    }
  };

  struct Entry {
    Key key;
    Vector lambda;
    Vector nu_sq;
    int cg_iterations = 0;    ///< Cost of the solve that filled this entry.
    double cg_residual = 0.0;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace crowdselect::serve

#endif  // CROWDSELECT_SERVE_FOLDIN_CACHE_H_
