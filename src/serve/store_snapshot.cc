#include "serve/store_snapshot.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/lockdep.h"

namespace crowdselect::serve {

Result<std::shared_ptr<const SkillMatrixSnapshot>> BuildSnapshotFromStore(
    const CrowdStoreEngine& engine, uint64_t version) {
  static const obs::SpanMeter meter("serve.snapshot.from_store");
  obs::ScopedSpan span(meter);
  // The scan takes shard locks one at a time; entering with any engine
  // lock held would nest shard acquisitions under it and risk deadlock
  // against checkpointing.
  lockdep::AssertNoLocksHeld("serve snapshot build");

  const size_t k = engine.latent_dim();
  if (k == 0) {
    return Status::FailedPrecondition(
        "store has no trained skills (latent dimension unknown)");
  }
  // Workers added while we scan land in rows we never visit; sizing the
  // matrix up front caps the snapshot at the workers acknowledged now.
  const size_t num_workers = engine.NumWorkers();
  Matrix skills(num_workers, k);
  for (size_t shard = 0; shard < engine.num_shards(); ++shard) {
    engine.ForEachWorkerInShard(shard, [&](const WorkerRecord& rec) {
      if (rec.id >= num_workers || rec.skills.empty()) return;
      const size_t n = std::min(k, rec.skills.size());
      double* row = &skills(rec.id, 0);
      std::copy_n(rec.skills.begin(), n, row);
    });
  }
  return SkillMatrixSnapshot::FromMatrix(std::move(skills), version);
}

}  // namespace crowdselect::serve
