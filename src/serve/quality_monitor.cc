#include "serve/quality_monitor.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "obs/json_escape.h"

namespace crowdselect::serve {

namespace {

// 0..1 in 0.025 steps — quality signals are normalized, so a linear
// ladder resolves them better than the latency ladders.
std::vector<double> UnitBucketBounds() {
  std::vector<double> bounds;
  for (int i = 1; i <= 40; ++i) bounds.push_back(0.025 * i);
  return bounds;
}

// -1..1 in 0.05 steps for the correlation signal.
std::vector<double> CorrelationBucketBounds() {
  std::vector<double> bounds;
  for (int i = -19; i <= 20; ++i) bounds.push_back(0.05 * i);
  return bounds;
}

// Min-max normalizes `values` in place; a constant vector maps to 0.5
// (no ranking information either way).
void NormalizeInPlace(std::vector<double>* values) {
  const auto [min_it, max_it] =
      std::minmax_element(values->begin(), values->end());
  const double min = *min_it;
  const double range = *max_it - min;
  for (double& v : *values) {
    v = range > 0.0 ? (v - min) / range : 0.5;
  }
}

std::string FormatDouble(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

QualityMonitor::QualityMonitor(QualityMonitorConfig config,
                               obs::MetricsRegistry* registry)
    : config_(std::move(config)), registry_(registry) {
  const std::string base = "quality." + config_.model_id + ".";
  const size_t windows = std::max<size_t>(1, config_.num_windows);
  rmse_window_ = std::make_unique<obs::WindowedHistogram>(
      base + "rmse", windows, UnitBucketBounds(), registry_,
      /*gauge_prefix=*/"");
  top1_window_ = std::make_unique<obs::WindowedHistogram>(
      base + "top1_agreement", windows, UnitBucketBounds(), registry_,
      /*gauge_prefix=*/"");
  calibration_window_ = std::make_unique<obs::WindowedHistogram>(
      base + "calibration", windows, CorrelationBucketBounds(), registry_,
      /*gauge_prefix=*/"");
  tasks_observed_counter_ = registry_->GetCounter(base + "tasks_observed");
  tasks_skipped_counter_ = registry_->GetCounter(base + "tasks_skipped");
  drift_flagged_gauge_ = registry_->GetGauge(base + "drift.flagged");
  drift_max_z_gauge_ = registry_->GetGauge(base + "drift.max_abs_z");
  drift_workers_gauge_ = registry_->GetGauge(base + "drift.workers");
  population_z_gauge_ = registry_->GetGauge(base + "drift.population_z");
}

void QualityMonitor::OnResolvedTask(
    const BagOfWords& task, const std::vector<RankedWorker>& predicted,
    const std::vector<std::pair<WorkerId, double>>& realized) {
  (void)task;  // Signals are score-based; the text itself is not used yet.

  // cs:lock(serve.quality)
  std::lock_guard<std::mutex> lock(mu_);
  // Workers present in BOTH the prediction and the feedback, in
  // predicted (descending-score) order. This sits on the blue path's
  // per-task hot loop, so it reuses scratch buffers (no steady-state
  // allocation) and matches by linear scan — k is a crowd size, not a
  // table size, and O(k^2) compares beat hashing at that scale.
  scratch_ids_.clear();
  scratch_pred_.clear();
  scratch_real_.clear();
  for (const RankedWorker& rw : predicted) {
    for (const auto& [worker, score] : realized) {
      if (worker != rw.worker) continue;
      scratch_ids_.push_back(rw.worker);
      scratch_pred_.push_back(rw.score);
      scratch_real_.push_back(score);
      break;
    }
  }
  std::vector<WorkerId>& matched_ids = scratch_ids_;
  std::vector<double>& pred_scores = scratch_pred_;
  std::vector<double>& real_scores = scratch_real_;

  if (matched_ids.size() < 2) {
    ++tasks_skipped_;
    tasks_skipped_counter_->Increment();
    return;
  }
  ++tasks_observed_;
  tasks_observed_counter_->Increment();

  // Top-1 agreement on the RAW scores (normalization is monotone, but
  // raw keeps the tie-break story simple): predicted[0] of the matched
  // set vs the best-feedback worker, ties to the lower id.
  WorkerId best_feedback = matched_ids[0];
  double best_feedback_score = real_scores[0];
  for (size_t i = 1; i < matched_ids.size(); ++i) {
    if (real_scores[i] > best_feedback_score ||
        (real_scores[i] == best_feedback_score &&
         matched_ids[i] < best_feedback)) {
      best_feedback = matched_ids[i];
      best_feedback_score = real_scores[i];
    }
  }
  const double top1 = matched_ids[0] == best_feedback ? 1.0 : 0.0;

  // Calibration (Pearson) before normalization clobbers nothing —
  // correlation is affine-invariant, so compute it on raw scores.
  double calibration = 0.0;
  bool calibration_defined = false;
  if (matched_ids.size() >= 3) {
    const double n = static_cast<double>(matched_ids.size());
    double mp = 0.0;
    double mr = 0.0;
    for (size_t i = 0; i < matched_ids.size(); ++i) {
      mp += pred_scores[i];
      mr += real_scores[i];
    }
    mp /= n;
    mr /= n;
    double spr = 0.0;
    double spp = 0.0;
    double srr = 0.0;
    for (size_t i = 0; i < matched_ids.size(); ++i) {
      const double dp = pred_scores[i] - mp;
      const double dr = real_scores[i] - mr;
      spr += dp * dr;
      spp += dp * dp;
      srr += dr * dr;
    }
    if (spp > 0.0 && srr > 0.0) {
      calibration = spr / std::sqrt(spp * srr);
      calibration_defined = true;
    }
  }

  // Population skill drift uses the RAW per-task mean feedback (the
  // crowd's absolute skill level), tracked before normalization.
  {
    double task_mean = 0.0;
    for (double r : real_scores) task_mean += r;
    task_mean /= static_cast<double>(real_scores.size());
    population_ewma_ = population_ewma_init_
                           ? config_.ewma_alpha * task_mean +
                                 (1.0 - config_.ewma_alpha) * population_ewma_
                           : task_mean;
    population_ewma_init_ = true;
    ++population_n_;
    const double delta = task_mean - population_mean_;
    population_mean_ += delta / static_cast<double>(population_n_);
    population_m2_ += delta * (task_mean - population_mean_);
    if (population_n_ >= 2) {
      const double var =
          population_m2_ / static_cast<double>(population_n_ - 1);
      population_z_ = var > 1e-12
                          ? (population_ewma_ - population_mean_) /
                                std::sqrt(var)
                          : 0.0;
    }
  }

  NormalizeInPlace(&pred_scores);
  NormalizeInPlace(&real_scores);

  double se = 0.0;
  for (size_t i = 0; i < matched_ids.size(); ++i) {
    const double d = real_scores[i] - pred_scores[i];
    se += d * d;
    // Per-worker residual EWMA on the normalized scale, so workers on
    // cheap tasks and expensive tasks share one drift yardstick. The
    // first min_observations residuals also freeze into the worker's
    // baseline — the reference its later EWMA is compared against.
    WorkerState& ws = workers_[matched_ids[i]];
    ws.residual_ewma = ws.observations == 0
                           ? d
                           : config_.ewma_alpha * d +
                                 (1.0 - config_.ewma_alpha) * ws.residual_ewma;
    ++ws.observations;
    if (!ws.baseline_set) {
      ws.baseline_sum += d;
      if (ws.observations >= config_.min_observations) {
        ws.baseline =
            ws.baseline_sum / static_cast<double>(ws.observations);
        ws.baseline_set = true;
      }
    }
  }
  const double rmse = std::sqrt(se / static_cast<double>(matched_ids.size()));

  rmse_window_->Record(rmse);
  top1_window_->Record(top1);
  if (calibration_defined) calibration_window_->Record(calibration);
  rmse_sum_in_window_ += rmse;
  ++rmse_count_in_window_;

  RefreshDriftLocked();

  if (++tasks_in_window_ >= config_.window_size) {
    tasks_in_window_ = 0;
    window_rmse_means_.push_back(
        rmse_count_in_window_ == 0
            ? 0.0
            : rmse_sum_in_window_ /
                  static_cast<double>(rmse_count_in_window_));
    // Bound the degradation history; the verdict only needs the ends.
    while (window_rmse_means_.size() > 256) window_rmse_means_.pop_front();
    rmse_sum_in_window_ = 0.0;
    rmse_count_in_window_ = 0;
    rmse_window_->Rotate();
    top1_window_->Rotate();
    calibration_window_->Rotate();
  }
}

void QualityMonitor::RotateWindows() {
  // cs:lock(serve.quality)
  std::lock_guard<std::mutex> lock(mu_);
  if (rmse_count_in_window_ > 0) {
    window_rmse_means_.push_back(
        rmse_sum_in_window_ / static_cast<double>(rmse_count_in_window_));
    while (window_rmse_means_.size() > 256) window_rmse_means_.pop_front();
  }
  tasks_in_window_ = 0;
  rmse_sum_in_window_ = 0.0;
  rmse_count_in_window_ = 0;
  rmse_window_->Rotate();
  top1_window_->Rotate();
  calibration_window_->Rotate();
}

void QualityMonitor::RefreshDriftLocked() {
  // Population stats over eligible workers' baseline deviations. Using
  // the deviation (not the raw EWMA) means a worker the model always
  // mis-priced contributes ~0 — only behaviour *changes* stand out.
  double sum = 0.0;
  size_t eligible = 0;
  for (const auto& [id, ws] : workers_) {
    if (ws.observations >= config_.min_observations && ws.baseline_set) {
      sum += ws.residual_ewma - ws.baseline;
      ++eligible;
    }
  }
  flagged_.clear();
  drift_max_abs_z_ = 0.0;
  // A z-score needs a population: with fewer than three eligible
  // workers "deviant" is meaningless, so nothing flags.
  if (eligible >= 3) {
    const double mean = sum / static_cast<double>(eligible);
    double m2 = 0.0;
    for (const auto& [id, ws] : workers_) {
      if (ws.observations < config_.min_observations || !ws.baseline_set) {
        continue;
      }
      const double d = ws.residual_ewma - ws.baseline - mean;
      m2 += d * d;
    }
    const double std_dev =
        std::sqrt(m2 / static_cast<double>(eligible - 1));
    if (std_dev > 1e-9) {
      for (const auto& [id, ws] : workers_) {
        if (ws.observations < config_.min_observations || !ws.baseline_set) {
          continue;
        }
        const double deviation = ws.residual_ewma - ws.baseline;
        const double z = (deviation - mean) / std_dev;
        drift_max_abs_z_ = std::max(drift_max_abs_z_, std::fabs(z));
        if (std::fabs(z) > config_.drift_z_threshold &&
            std::fabs(deviation) > config_.min_drift_deviation) {
          flagged_.push_back(id);
        }
      }
    }
  }
  drift_flagged_gauge_->Set(static_cast<double>(flagged_.size()));
  drift_max_z_gauge_->Set(drift_max_abs_z_);
  drift_workers_gauge_->Set(static_cast<double>(workers_.size()));
  population_z_gauge_->Set(population_z_);
}

QualitySummary QualityMonitor::Summary() const {
  // cs:lock(serve.quality)
  std::lock_guard<std::mutex> lock(mu_);
  QualitySummary s;
  s.model_id = config_.model_id;
  s.tasks_observed = tasks_observed_;
  s.tasks_skipped = tasks_skipped_;
  const obs::HistogramSample rmse = rmse_window_->Merged(/*include_open=*/true);
  const obs::HistogramSample top1 = top1_window_->Merged(/*include_open=*/true);
  const obs::HistogramSample cal =
      calibration_window_->Merged(/*include_open=*/true);
  s.rmse_mean = rmse.Mean();
  s.top1_agreement_mean = top1.Mean();
  s.calibration_mean = cal.Mean();
  if (!window_rmse_means_.empty()) {
    s.rmse_first_window = window_rmse_means_.front();
    s.rmse_last_window = window_rmse_means_.back();
    // "Degraded" = the newest closed window is meaningfully worse than
    // the oldest retained one; 0.05 on a 0..1 scale filters noise.
    s.rmse_degraded = window_rmse_means_.size() >= 2 &&
                      s.rmse_last_window > s.rmse_first_window + 0.05;
  }
  s.drift_flagged = flagged_.size();
  s.drift_max_abs_z = drift_max_abs_z_;
  s.population_drift_z = population_z_;
  s.flagged_workers = flagged_;
  return s;
}

std::vector<WorkerDriftStatus> QualityMonitor::WorkerDrift() const {
  // cs:lock(serve.quality)
  std::lock_guard<std::mutex> lock(mu_);
  // Recompute population mean/std the same way RefreshDriftLocked does,
  // so the returned z-scores match the gauges.
  double sum = 0.0;
  size_t eligible = 0;
  for (const auto& [id, ws] : workers_) {
    if (ws.observations >= config_.min_observations && ws.baseline_set) {
      sum += ws.residual_ewma - ws.baseline;
      ++eligible;
    }
  }
  double mean = 0.0;
  double std_dev = 0.0;
  if (eligible >= 3) {
    mean = sum / static_cast<double>(eligible);
    double m2 = 0.0;
    for (const auto& [id, ws] : workers_) {
      if (ws.observations < config_.min_observations || !ws.baseline_set) {
        continue;
      }
      const double d = ws.residual_ewma - ws.baseline - mean;
      m2 += d * d;
    }
    std_dev = std::sqrt(m2 / static_cast<double>(eligible - 1));
  }
  std::vector<WorkerDriftStatus> out;
  out.reserve(workers_.size());
  for (const auto& [id, ws] : workers_) {
    WorkerDriftStatus d;
    d.worker = id;
    d.residual_ewma = ws.residual_ewma;
    d.baseline = ws.baseline;
    d.observations = ws.observations;
    if (eligible >= 3 && std_dev > 1e-9 && ws.baseline_set &&
        ws.observations >= config_.min_observations) {
      const double deviation = ws.residual_ewma - ws.baseline;
      d.z_score = (deviation - mean) / std_dev;
      d.flagged = std::fabs(d.z_score) > config_.drift_z_threshold &&
                  std::fabs(deviation) > config_.min_drift_deviation;
    }
    out.push_back(d);
  }
  return out;
}

std::string QualityMonitor::SummaryJson() const {
  const QualitySummary s = Summary();
  std::string workers;
  for (size_t i = 0; i < s.flagged_workers.size(); ++i) {
    if (i > 0) workers += ",";
    workers += std::to_string(s.flagged_workers[i]);
  }
  std::string out = "{";
  out += "\"model\": " + obs::JsonQuote(s.model_id);
  out += ", \"tasks_observed\": " + std::to_string(s.tasks_observed);
  out += ", \"tasks_skipped\": " + std::to_string(s.tasks_skipped);
  out += ", \"rmse_mean\": " + FormatDouble(s.rmse_mean);
  out += ", \"top1_agreement_mean\": " + FormatDouble(s.top1_agreement_mean);
  out += ", \"calibration_mean\": " + FormatDouble(s.calibration_mean);
  out += ", \"rmse_first_window\": " + FormatDouble(s.rmse_first_window);
  out += ", \"rmse_last_window\": " + FormatDouble(s.rmse_last_window);
  out += std::string(", \"rmse_degraded\": ") +
         (s.rmse_degraded ? "true" : "false");
  out += ", \"drift_flagged\": " + std::to_string(s.drift_flagged);
  out += ", \"drift_max_abs_z\": " + FormatDouble(s.drift_max_abs_z);
  out += ", \"population_drift_z\": " + FormatDouble(s.population_drift_z);
  out += ", \"flagged_workers\": " + obs::JsonQuote(workers);
  out += "}";
  return out;
}

uint64_t QualityMonitor::tasks_observed() const {
  // cs:lock(serve.quality)
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_observed_;
}

}  // namespace crowdselect::serve
