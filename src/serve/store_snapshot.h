// Bridges the sharded storage engine to the serving path: builds a
// SkillMatrixSnapshot by scanning the engine one shard at a time, each
// shard under its own reader lock — no global stop-the-world, concurrent
// writers to other shards keep going while the snapshot assembles. The
// snapshot constructor encodes the blocked scan panels (fp64 + int8,
// serve/kernels/score_kernel.h) as part of the build, so a store-backed
// snapshot serves through the SIMD kernel path like any other.
#ifndef CROWDSELECT_SERVE_STORE_SNAPSHOT_H_
#define CROWDSELECT_SERVE_STORE_SNAPSHOT_H_

#include <memory>

#include "crowddb/storage_engine.h"
#include "serve/skill_matrix.h"
#include "util/status.h"

namespace crowdselect::serve {

/// Flattens every worker's latent skill vector in `engine` into an
/// immutable snapshot (workers without trained skills get zero rows).
/// Fails with FailedPrecondition until some skills have been written
/// (latent dimension still unknown).
Result<std::shared_ptr<const SkillMatrixSnapshot>> BuildSnapshotFromStore(
    const CrowdStoreEngine& engine, uint64_t version = 1);

}  // namespace crowdselect::serve

#endif  // CROWDSELECT_SERVE_STORE_SNAPSHOT_H_
