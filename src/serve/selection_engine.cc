#include "serve/selection_engine.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace crowdselect::serve {

SelectionEngine::SelectionEngine(ServeOptions options)
    : options_(options),
      cache_(std::make_unique<FoldInCache>(options.foldin_cache_capacity)) {}

void SelectionEngine::PublishSnapshot(
    std::shared_ptr<const SkillMatrixSnapshot> snapshot) {
  handle_.Publish(std::move(snapshot));
}

void SelectionEngine::SetFolder(TaskFolder folder) {
  folder_.emplace(std::move(folder));
  // Cached posteriors belong to the previous model; a retrained folder
  // must never serve them.
  cache_->Clear();
}

ThreadPool* SelectionEngine::pool() const {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  });
  return pool_.get();
}

Status ValidateCandidates(const std::vector<WorkerId>& candidates,
                          size_t num_workers) {
  for (WorkerId w : candidates) {
    if (w >= num_workers) {
      return Status::InvalidArgument(StringPrintf(
          "candidate worker %u unknown to the model (%zu workers)", w,
          num_workers));
    }
  }
  return Status::OK();
}

Result<FoldInResult> SelectionEngine::Project(const BagOfWords& task,
                                              Rng* rng) const {
  if (!folder_.has_value()) {
    return Status::FailedPrecondition("engine has no fold-in projector");
  }
  FoldInResult projected;
  const uint64_t key = HashBag(task);
  if (!cache_->Lookup(key, &projected)) {
    projected = folder_->Posterior(task);
    cache_->Insert(key, projected);
  }
  folder_->FinalizeCategory(&projected, rng);
  return projected;
}

Result<std::vector<RankedWorker>> SelectionEngine::SelectTopK(
    const BagOfWords& task, size_t k, const std::vector<WorkerId>& candidates,
    Rng* rng) const {
  static obs::SpanMeter meter("serve.select");
  static obs::Counter* queries =
      obs::MetricsRegistry::Global().GetCounter("serve.queries");

  std::shared_ptr<const SkillMatrixSnapshot> snap = handle_.Acquire();
  if (snap == nullptr) {
    return Status::FailedPrecondition("no skill snapshot published");
  }
  if (!folder_.has_value()) {
    return Status::FailedPrecondition("engine has no fold-in projector");
  }
  // Validation precedes the fold-in and the query meter, so malformed
  // queries are rejected cheaply and never show up as half-served.
  CS_RETURN_NOT_OK(ValidateCandidates(candidates, snap->num_workers()));

  obs::ScopedSpan span(meter);
  queries->Increment();
  CS_ASSIGN_OR_RETURN(FoldInResult projected, Project(task, rng));
  return ScanSnapshot(*snap, projected.category, k, candidates);
}

Result<std::vector<RankedWorker>> SelectionEngine::RankByCategory(
    const Vector& category, size_t k,
    const std::vector<WorkerId>& candidates) const {
  std::shared_ptr<const SkillMatrixSnapshot> snap = handle_.Acquire();
  if (snap == nullptr) {
    return Status::FailedPrecondition("no skill snapshot published");
  }
  if (category.size() != snap->num_categories()) {
    return Status::InvalidArgument("category dimension mismatch");
  }
  CS_RETURN_NOT_OK(ValidateCandidates(candidates, snap->num_workers()));
  return ScanSnapshot(*snap, category, k, candidates);
}

std::vector<RankedWorker> SelectionEngine::ScanSnapshot(
    const SkillMatrixSnapshot& snap, const Vector& category, size_t k,
    const std::vector<WorkerId>& candidates) const {
  // Eq. 1 over contiguous rows: the dominant serving cost at scale. The
  // lambda inlines into RankImpl, so the hot loop is DotSpan over the
  // row-major matrix with no per-candidate indirection.
  const size_t dims = snap.num_categories();
  const double* cat = category.raw();
  return RankImpl(k, candidates, [&snap, cat, dims](WorkerId w) {
    return DotSpan(snap.RowPtr(w), cat, dims);
  });
}

std::vector<RankedWorker> SelectionEngine::RankWithScore(
    size_t k, const std::vector<WorkerId>& candidates,
    const std::function<double(WorkerId)>& score) const {
  return RankImpl(k, candidates, score);
}

template <typename ScoreFn>
std::vector<RankedWorker> SelectionEngine::RankImpl(
    size_t k, const std::vector<WorkerId>& candidates,
    const ScoreFn& score) const {
  const size_t n = candidates.size();
  if (n < options_.min_parallel_candidates) {
    TopKAccumulator acc(k);
    for (WorkerId w : candidates) acc.Offer(w, score(w));
    return acc.Take();
  }
  static obs::SpanMeter scan_meter("serve.scan.parallel");
  obs::ScopedSpan span(scan_meter);
  TopKAccumulator merged(k);
  std::mutex merge_mu;
  pool()->ParallelForChunks(
      n, options_.scan_block, [&](size_t begin, size_t end) {
        TopKAccumulator local(k);
        for (size_t i = begin; i < end; ++i) {
          local.Offer(candidates[i], score(candidates[i]));
        }
        std::vector<RankedWorker> top = local.Take();
        std::lock_guard<std::mutex> lock(merge_mu);
        for (const RankedWorker& rw : top) merged.Offer(rw.worker, rw.score);
      });
  return merged.Take();
}

}  // namespace crowdselect::serve
