#include "serve/selection_engine.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "obs/window.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace crowdselect::serve {

SelectionEngine::SelectionEngine(ServeOptions options)
    : options_(options),
      kernel_(&kernels::DispatchScoreKernel(options.force_scalar_kernel)),
      cache_(std::make_unique<FoldInCache>(options.foldin_cache_capacity)) {
  static obs::Gauge* selected =
      obs::MetricsRegistry::Global().GetGauge("serve.kernel.selected");
  selected->Set(static_cast<double>(kernels::ScoreKernelOrdinal(*kernel_)));
}

void SelectionEngine::PublishSnapshot(
    std::shared_ptr<const SkillMatrixSnapshot> snapshot) {
  static const uint16_t flight_name =
      obs::FlightRecorder::Global().InternName("serve.snapshot.publish");
  const uint64_t version = snapshot != nullptr ? snapshot->version() : 0;
  handle_.Publish(std::move(snapshot));
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kSnapshotSwap,
                                       flight_name, version, 0);
}

void SelectionEngine::SetProjector(
    std::unique_ptr<const TaskProjector> projector,
    const std::string& model_id) {
  projector_ = std::move(projector);
  model_id_ = model_id;
  // New projector, new namespace: even if a stale entry survived the
  // Clear() below (it cannot today — initialization is single-threaded —
  // but the namespace makes that invariant structural), its key can no
  // longer match.
  ++projector_generation_;
  // Layout + quantization generation rides in the namespace too: an
  // entry written under a different panel encoding or a different
  // scan-quantization configuration can never be looked up, even if a
  // serialized cache from an older build were ever replayed.
  const uint64_t layout_salt =
      (uint64_t{kernels::kLayoutVersion} << 40) ^
      (uint64_t{kernels::kPanelWidth} << 32) ^
      (static_cast<uint64_t>(options_.quant) << 16) ^
      static_cast<uint64_t>(options_.oversample);
  cache_namespace_ = HashModelId(model_id_) ^
                     (projector_generation_ * 0x9E3779B97F4A7C15ULL) ^
                     (layout_salt * 0xC2B2AE3D27D4EB4FULL);
  // Cached posteriors belong to the previous model; a retrained or
  // replaced projector must never serve them.
  cache_->Clear();
}

ThreadPool* SelectionEngine::pool() const {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  });
  return pool_.get();
}

Status ValidateCandidates(const std::vector<WorkerId>& candidates,
                          size_t num_workers) {
  for (WorkerId w : candidates) {
    if (w >= num_workers) {
      return Status::InvalidArgument(StringPrintf(
          "candidate worker %u unknown to the model (%zu workers)", w,
          num_workers));
    }
  }
  return Status::OK();
}

Result<FoldInResult> SelectionEngine::Project(const BagOfWords& task,
                                              Rng* rng,
                                              QueryStats* stats) const {
  if (projector_ == nullptr) {
    return Status::FailedPrecondition("engine has no fold-in projector");
  }
  FoldInResult projected;
  const uint64_t key = HashBag(task);
  const bool hit = cache_->Lookup(cache_namespace_, key, &projected);
  if (!hit) {
    projected = projector_->Posterior(task);
    cache_->Insert(cache_namespace_, key, projected);
  }
  projector_->FinalizeCategory(&projected, rng);
  if (stats != nullptr) {
    stats->used_foldin = true;
    stats->cache_hit = hit;
    stats->cg_iterations = projected.cg_iterations;
    stats->cg_residual = projected.cg_residual;
    stats->sampled_category = projector_->samples_category() && rng != nullptr;
  }
  return projected;
}

namespace {

// Per-category contributions w_i[d] * c_j[d] and margins for the ranking
// the query returned; ranks after the last are the next kept score or the
// cutoff (rank k+1), when known.
void FillBreakdown(const SkillMatrixSnapshot& snap, const Vector& category,
                   const std::vector<RankedWorker>& ranked,
                   QueryStats* stats) {
  const size_t dims = snap.num_categories();
  stats->breakdown.clear();
  stats->breakdown.reserve(ranked.size());
  for (size_t i = 0; i < ranked.size(); ++i) {
    CandidateBreakdown c;
    c.worker = ranked[i].worker;
    c.score = ranked[i].score;
    const double* row = snap.RowPtr(c.worker);
    c.terms.resize(dims);
    for (size_t d = 0; d < dims; ++d) c.terms[d] = row[d] * category[d];
    if (i + 1 < ranked.size()) {
      c.margin = c.score - ranked[i + 1].score;
    } else if (stats->has_cutoff) {
      c.margin = c.score - stats->cutoff_score;
    }
    stats->breakdown.push_back(std::move(c));
  }
}

}  // namespace

Result<std::vector<RankedWorker>> SelectionEngine::SelectTopK(
    const BagOfWords& task, size_t k, const std::vector<WorkerId>& candidates,
    Rng* rng, QueryStats* stats) const {
  static obs::SpanMeter meter("serve.select",
                              obs::ServeLatencyBucketBounds());
  static obs::Counter* queries =
      obs::MetricsRegistry::Global().GetCounter("serve.queries");

  std::shared_ptr<const SkillMatrixSnapshot> snap = handle_.Acquire();
  if (snap == nullptr) {
    return Status::FailedPrecondition("no skill snapshot published");
  }
  if (projector_ == nullptr) {
    return Status::FailedPrecondition("engine has no fold-in projector");
  }
  // Validation precedes the fold-in and the query meter, so malformed
  // queries are rejected cheaply and never show up as half-served.
  CS_RETURN_NOT_OK(ValidateCandidates(candidates, snap->num_workers()));

  obs::ScopedSpan span(meter);
  obs::ScopedDeadline deadline("serve.select", options_.select_deadline_ms);
  {
    static const uint16_t flight_name =
        obs::FlightRecorder::Global().InternName("serve.query");
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kQuery,
                                         flight_name, k, candidates.size());
  }
  Timer total_timer;
  queries->Increment();
  if (stats != nullptr) {
    stats->serving_model = model_id_;
    stats->snapshot_version = snap->version();
    stats->num_workers = snap->num_workers();
    stats->num_categories = snap->num_categories();
    stats->num_candidates = candidates.size();
    stats->k = k;
  }
  Timer stage_timer;
  CS_ASSIGN_OR_RETURN(FoldInResult projected, Project(task, rng, stats));
  if (stats != nullptr) stats->foldin_us = stage_timer.ElapsedMicros();
  stage_timer.Reset();
  std::vector<RankedWorker> ranked =
      ScanSnapshot(*snap, projected.category, k, candidates, stats);
  const double scan_us = stage_timer.ElapsedMicros();
  const double total_us = total_timer.ElapsedMicros();
  obs::SloTracker::Global().Record("serve.select", total_us);
  if (stats != nullptr) {
    stats->scan_us = scan_us;
    stats->total_us = total_us;
    FillBreakdown(*snap, projected.category, ranked, stats);
  }
  return ranked;
}

Result<std::vector<RankedWorker>> SelectionEngine::RankByCategory(
    const Vector& category, size_t k,
    const std::vector<WorkerId>& candidates) const {
  std::shared_ptr<const SkillMatrixSnapshot> snap = handle_.Acquire();
  if (snap == nullptr) {
    return Status::FailedPrecondition("no skill snapshot published");
  }
  if (category.size() != snap->num_categories()) {
    return Status::InvalidArgument("category dimension mismatch");
  }
  CS_RETURN_NOT_OK(ValidateCandidates(candidates, snap->num_workers()));
  return ScanSnapshot(*snap, category, k, candidates);
}

namespace {

// True when `candidates` is the contiguous ascending id range
// [candidates.front(), candidates.front() + candidates.size()) — the
// full-pool (or shard) shape the blocked panel scan serves.
bool IsDenseRange(const std::vector<WorkerId>& candidates) {
  if (candidates.empty()) return false;
  const size_t first = candidates.front();
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i] != first + i) return false;
  }
  return true;
}

}  // namespace

std::vector<RankedWorker> SelectionEngine::ScanSnapshot(
    const SkillMatrixSnapshot& snap, const Vector& category, size_t k,
    const std::vector<WorkerId>& candidates, QueryStats* stats) const {
  // Eq. 1 over the pool: the dominant serving cost at scale. Dense
  // candidate ranges stream the snapshot's column panels through the
  // dispatched ScoreKernel; sparse subsets gather per-candidate lanes
  // with the identical arithmetic chain, so both paths — and every
  // kernel — produce bitwise-identical scores.
  const double* cat = category.raw();
  // With stats attached, scan one extra rank to learn the cutoff score
  // (the best candidate NOT selected). The deterministic merge makes the
  // first k entries byte-identical to a plain k-scan.
  const size_t scan_k =
      (stats != nullptr && k < candidates.size()) ? k + 1 : k;
  const bool dense = IsDenseRange(candidates);
  // int8 pays off only on bandwidth-bound dense streams; sparse subsets
  // are gather-bound and always score full precision.
  const bool int8 = dense && options_.quant == ScanQuant::kInt8;
  size_t rescored = 0;
  std::vector<RankedWorker> ranked;
  if (dense) {
    static obs::Counter* scans =
        obs::MetricsRegistry::Global().GetCounter("serve.kernel.scans");
    static obs::Counter* scans_int8 =
        obs::MetricsRegistry::Global().GetCounter("serve.kernel.scans.int8");
    static obs::Counter* rescore_counter =
        obs::MetricsRegistry::Global().GetCounter("serve.kernel.rescored");
    static const uint16_t kernel_flight_name =
        obs::FlightRecorder::Global().InternName("serve.scan.kernel");
    obs::FlightRecorder::Global().Record(
        obs::FlightEventType::kKernelScan, kernel_flight_name,
        kernels::ScoreKernelOrdinal(*kernel_),
        static_cast<uint64_t>(options_.quant));
    scans->Increment();
    const WorkerId first = candidates.front();
    const size_t count = candidates.size();
    if (int8) {
      scans_int8->Increment();
      // Phase 1: approximate int8 scan, keeping enough extra ranks that
      // the exact winners survive the quantization error (<= scale/2
      // per matrix entry).
      const size_t phase1_k =
          std::min(count, std::max(scan_k, k * options_.oversample));
      std::vector<RankedWorker> approx =
          ScanPanels(snap, cat, phase1_k, first, count, /*int8_phase=*/true);
      // Phase 2: rescore the survivors with the full-precision lane
      // chain (bitwise the fp64 panel scan's arithmetic) and re-rank.
      const kernels::BlockedPanels& panels = snap.panels();
      TopKAccumulator exact(scan_k);
      for (const RankedWorker& rw : approx) {
        exact.Offer(rw.worker, panels.LaneScore(rw.worker, cat));
      }
      rescored = approx.size();
      rescore_counter->Increment(rescored);
      ranked = exact.Take();
    } else {
      ranked = ScanPanels(snap, cat, scan_k, first, count,
                          /*int8_phase=*/false);
    }
  } else {
    const kernels::BlockedPanels& panels = snap.panels();
    ranked = RankImpl(scan_k, candidates, [&panels, cat](WorkerId w) {
      return panels.LaneScore(w, cat);
    });
  }
  if (stats != nullptr) {
    stats->parallel_scan =
        candidates.size() >= options_.min_parallel_candidates;
    stats->kernel_id = kernel_->id();
    stats->quant = int8 ? "int8" : "fp64";
    stats->oversample = int8 ? options_.oversample : 0;
    stats->rescored = rescored;
    if (ranked.size() > k) {
      stats->has_cutoff = true;
      stats->cutoff_score = ranked[k].score;
      ranked.resize(k);
    }
  }
  return ranked;
}

std::vector<RankedWorker> SelectionEngine::ScanPanels(
    const SkillMatrixSnapshot& snap, const double* query, size_t k,
    WorkerId first, size_t count, bool int8_phase) const {
  if (count == 0) return {};
  const kernels::BlockedPanels& panels = snap.panels();
  const size_t dims = panels.dims();
  const size_t limit = first + count;  // one past the last candidate id
  const size_t p0 = first / kernels::kPanelWidth;
  const size_t p1 = (limit - 1) / kernels::kPanelWidth;
  const kernels::ScoreKernel& kernel = *kernel_;
  // Scores one whole panel through the kernel, then offers only the
  // lanes inside [first, limit): head/tail panels may straddle the
  // range, and the last pool panel carries zero-padded lanes whose ids
  // exceed the pool.
  const auto scan_panel = [&](size_t p, TopKAccumulator* acc) {
    double out[kernels::kPanelWidth];
    if (int8_phase) {
      kernel.ScoreBlockInt8(panels.PanelQ8(p), panels.PanelScales(p), query,
                            dims, out);
    } else {
      kernel.ScoreBlock(panels.PanelFp(p), query, dims, out);
    }
    const size_t base = p * kernels::kPanelWidth;
    for (size_t l = 0; l < kernels::kPanelWidth; ++l) {
      const size_t w = base + l;
      if (w >= first && w < limit) {
        acc->Offer(static_cast<WorkerId>(w), out[l]);
      }
    }
  };
  if (count < options_.min_parallel_candidates) {
    TopKAccumulator acc(k);
    for (size_t p = p0; p <= p1; ++p) scan_panel(p, &acc);
    return acc.Take();
  }
  static obs::SpanMeter scan_meter("serve.scan.parallel",
                                   obs::ServeLatencyBucketBounds());
  obs::ScopedSpan span(scan_meter);
  // The parallel grain is scan_block candidates rounded up to whole
  // panels, so a panel is never split across chunks (each lane is
  // offered exactly once).
  const size_t grain =
      (options_.scan_block + kernels::kPanelWidth - 1) / kernels::kPanelWidth;
  TopKAccumulator merged(k);
  std::mutex merge_mu;
  // Recorded inside the chunk body so the event lands on the pool
  // thread that ran the chunk — crash dumps then show which panel
  // ranges were in flight on which threads.
  static const uint16_t chunk_flight_name =
      obs::FlightRecorder::Global().InternName("serve.scan.chunk");
  pool()->ParallelForChunks(
      p1 - p0 + 1, std::max<size_t>(grain, 1),
      [&](size_t begin, size_t end) {
        obs::FlightRecorder::Global().Record(obs::FlightEventType::kScanChunk,
                                             chunk_flight_name, p0 + begin,
                                             p0 + end);
        TopKAccumulator local(k);
        for (size_t p = p0 + begin; p < p0 + end; ++p) scan_panel(p, &local);
        std::vector<RankedWorker> top = local.Take();
        // cs:lock(serve.merge)
        std::lock_guard<std::mutex> lock(merge_mu);
        for (const RankedWorker& rw : top) merged.Offer(rw.worker, rw.score);
      });
  return merged.Take();
}

std::vector<RankedWorker> SelectionEngine::RankWithScore(
    size_t k, const std::vector<WorkerId>& candidates,
    const std::function<double(WorkerId)>& score) const {
  return RankImpl(k, candidates, score);
}

template <typename ScoreFn>
std::vector<RankedWorker> SelectionEngine::RankImpl(
    size_t k, const std::vector<WorkerId>& candidates,
    const ScoreFn& score) const {
  const size_t n = candidates.size();
  if (n < options_.min_parallel_candidates) {
    TopKAccumulator acc(k);
    for (WorkerId w : candidates) acc.Offer(w, score(w));
    return acc.Take();
  }
  static obs::SpanMeter scan_meter("serve.scan.parallel",
                                   obs::ServeLatencyBucketBounds());
  obs::ScopedSpan span(scan_meter);
  TopKAccumulator merged(k);
  std::mutex merge_mu;
  // Recorded inside the chunk body so the event lands on the pool
  // thread that ran the chunk — crash dumps then show which scan
  // ranges were in flight on which threads.
  static const uint16_t chunk_flight_name =
      obs::FlightRecorder::Global().InternName("serve.scan.chunk");
  pool()->ParallelForChunks(
      n, options_.scan_block, [&](size_t begin, size_t end) {
        obs::FlightRecorder::Global().Record(obs::FlightEventType::kScanChunk,
                                             chunk_flight_name, begin, end);
        TopKAccumulator local(k);
        for (size_t i = begin; i < end; ++i) {
          local.Offer(candidates[i], score(candidates[i]));
        }
        std::vector<RankedWorker> top = local.Take();
        // cs:lock(serve.merge)
        std::lock_guard<std::mutex> lock(merge_mu);
        for (const RankedWorker& rw : top) merged.Offer(rw.worker, rw.score);
      });
  return merged.Take();
}

}  // namespace crowdselect::serve
