#include "serve/selection_engine.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "obs/window.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace crowdselect::serve {

SelectionEngine::SelectionEngine(ServeOptions options)
    : options_(options),
      cache_(std::make_unique<FoldInCache>(options.foldin_cache_capacity)) {}

void SelectionEngine::PublishSnapshot(
    std::shared_ptr<const SkillMatrixSnapshot> snapshot) {
  static const uint16_t flight_name =
      obs::FlightRecorder::Global().InternName("serve.snapshot.publish");
  const uint64_t version = snapshot != nullptr ? snapshot->version() : 0;
  handle_.Publish(std::move(snapshot));
  obs::FlightRecorder::Global().Record(obs::FlightEventType::kSnapshotSwap,
                                       flight_name, version, 0);
}

void SelectionEngine::SetProjector(
    std::unique_ptr<const TaskProjector> projector,
    const std::string& model_id) {
  projector_ = std::move(projector);
  model_id_ = model_id;
  // New projector, new namespace: even if a stale entry survived the
  // Clear() below (it cannot today — initialization is single-threaded —
  // but the namespace makes that invariant structural), its key can no
  // longer match.
  ++projector_generation_;
  cache_namespace_ =
      HashModelId(model_id_) ^ (projector_generation_ * 0x9E3779B97F4A7C15ULL);
  // Cached posteriors belong to the previous model; a retrained or
  // replaced projector must never serve them.
  cache_->Clear();
}

ThreadPool* SelectionEngine::pool() const {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  });
  return pool_.get();
}

Status ValidateCandidates(const std::vector<WorkerId>& candidates,
                          size_t num_workers) {
  for (WorkerId w : candidates) {
    if (w >= num_workers) {
      return Status::InvalidArgument(StringPrintf(
          "candidate worker %u unknown to the model (%zu workers)", w,
          num_workers));
    }
  }
  return Status::OK();
}

Result<FoldInResult> SelectionEngine::Project(const BagOfWords& task,
                                              Rng* rng,
                                              QueryStats* stats) const {
  if (projector_ == nullptr) {
    return Status::FailedPrecondition("engine has no fold-in projector");
  }
  FoldInResult projected;
  const uint64_t key = HashBag(task);
  const bool hit = cache_->Lookup(cache_namespace_, key, &projected);
  if (!hit) {
    projected = projector_->Posterior(task);
    cache_->Insert(cache_namespace_, key, projected);
  }
  projector_->FinalizeCategory(&projected, rng);
  if (stats != nullptr) {
    stats->used_foldin = true;
    stats->cache_hit = hit;
    stats->cg_iterations = projected.cg_iterations;
    stats->cg_residual = projected.cg_residual;
    stats->sampled_category = projector_->samples_category() && rng != nullptr;
  }
  return projected;
}

namespace {

// Per-category contributions w_i[d] * c_j[d] and margins for the ranking
// the query returned; ranks after the last are the next kept score or the
// cutoff (rank k+1), when known.
void FillBreakdown(const SkillMatrixSnapshot& snap, const Vector& category,
                   const std::vector<RankedWorker>& ranked,
                   QueryStats* stats) {
  const size_t dims = snap.num_categories();
  stats->breakdown.clear();
  stats->breakdown.reserve(ranked.size());
  for (size_t i = 0; i < ranked.size(); ++i) {
    CandidateBreakdown c;
    c.worker = ranked[i].worker;
    c.score = ranked[i].score;
    const double* row = snap.RowPtr(c.worker);
    c.terms.resize(dims);
    for (size_t d = 0; d < dims; ++d) c.terms[d] = row[d] * category[d];
    if (i + 1 < ranked.size()) {
      c.margin = c.score - ranked[i + 1].score;
    } else if (stats->has_cutoff) {
      c.margin = c.score - stats->cutoff_score;
    }
    stats->breakdown.push_back(std::move(c));
  }
}

}  // namespace

Result<std::vector<RankedWorker>> SelectionEngine::SelectTopK(
    const BagOfWords& task, size_t k, const std::vector<WorkerId>& candidates,
    Rng* rng, QueryStats* stats) const {
  static obs::SpanMeter meter("serve.select",
                              obs::ServeLatencyBucketBounds());
  static obs::Counter* queries =
      obs::MetricsRegistry::Global().GetCounter("serve.queries");

  std::shared_ptr<const SkillMatrixSnapshot> snap = handle_.Acquire();
  if (snap == nullptr) {
    return Status::FailedPrecondition("no skill snapshot published");
  }
  if (projector_ == nullptr) {
    return Status::FailedPrecondition("engine has no fold-in projector");
  }
  // Validation precedes the fold-in and the query meter, so malformed
  // queries are rejected cheaply and never show up as half-served.
  CS_RETURN_NOT_OK(ValidateCandidates(candidates, snap->num_workers()));

  obs::ScopedSpan span(meter);
  obs::ScopedDeadline deadline("serve.select", options_.select_deadline_ms);
  {
    static const uint16_t flight_name =
        obs::FlightRecorder::Global().InternName("serve.query");
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kQuery,
                                         flight_name, k, candidates.size());
  }
  Timer total_timer;
  queries->Increment();
  if (stats != nullptr) {
    stats->serving_model = model_id_;
    stats->snapshot_version = snap->version();
    stats->num_workers = snap->num_workers();
    stats->num_categories = snap->num_categories();
    stats->num_candidates = candidates.size();
    stats->k = k;
  }
  Timer stage_timer;
  CS_ASSIGN_OR_RETURN(FoldInResult projected, Project(task, rng, stats));
  if (stats != nullptr) stats->foldin_us = stage_timer.ElapsedMicros();
  stage_timer.Reset();
  std::vector<RankedWorker> ranked =
      ScanSnapshot(*snap, projected.category, k, candidates, stats);
  const double scan_us = stage_timer.ElapsedMicros();
  const double total_us = total_timer.ElapsedMicros();
  obs::SloTracker::Global().Record("serve.select", total_us);
  if (stats != nullptr) {
    stats->scan_us = scan_us;
    stats->total_us = total_us;
    FillBreakdown(*snap, projected.category, ranked, stats);
  }
  return ranked;
}

Result<std::vector<RankedWorker>> SelectionEngine::RankByCategory(
    const Vector& category, size_t k,
    const std::vector<WorkerId>& candidates) const {
  std::shared_ptr<const SkillMatrixSnapshot> snap = handle_.Acquire();
  if (snap == nullptr) {
    return Status::FailedPrecondition("no skill snapshot published");
  }
  if (category.size() != snap->num_categories()) {
    return Status::InvalidArgument("category dimension mismatch");
  }
  CS_RETURN_NOT_OK(ValidateCandidates(candidates, snap->num_workers()));
  return ScanSnapshot(*snap, category, k, candidates);
}

std::vector<RankedWorker> SelectionEngine::ScanSnapshot(
    const SkillMatrixSnapshot& snap, const Vector& category, size_t k,
    const std::vector<WorkerId>& candidates, QueryStats* stats) const {
  // Eq. 1 over contiguous rows: the dominant serving cost at scale. The
  // lambda inlines into RankImpl, so the hot loop is DotSpan over the
  // row-major matrix with no per-candidate indirection.
  const size_t dims = snap.num_categories();
  const double* cat = category.raw();
  // With stats attached, scan one extra rank to learn the cutoff score
  // (the best candidate NOT selected). The deterministic merge makes the
  // first k entries byte-identical to a plain k-scan.
  const size_t scan_k =
      (stats != nullptr && k < candidates.size()) ? k + 1 : k;
  std::vector<RankedWorker> ranked =
      RankImpl(scan_k, candidates, [&snap, cat, dims](WorkerId w) {
        return DotSpan(snap.RowPtr(w), cat, dims);
      });
  if (stats != nullptr) {
    stats->parallel_scan =
        candidates.size() >= options_.min_parallel_candidates;
    if (ranked.size() > k) {
      stats->has_cutoff = true;
      stats->cutoff_score = ranked[k].score;
      ranked.resize(k);
    }
  }
  return ranked;
}

std::vector<RankedWorker> SelectionEngine::RankWithScore(
    size_t k, const std::vector<WorkerId>& candidates,
    const std::function<double(WorkerId)>& score) const {
  return RankImpl(k, candidates, score);
}

template <typename ScoreFn>
std::vector<RankedWorker> SelectionEngine::RankImpl(
    size_t k, const std::vector<WorkerId>& candidates,
    const ScoreFn& score) const {
  const size_t n = candidates.size();
  if (n < options_.min_parallel_candidates) {
    TopKAccumulator acc(k);
    for (WorkerId w : candidates) acc.Offer(w, score(w));
    return acc.Take();
  }
  static obs::SpanMeter scan_meter("serve.scan.parallel",
                                   obs::ServeLatencyBucketBounds());
  obs::ScopedSpan span(scan_meter);
  TopKAccumulator merged(k);
  std::mutex merge_mu;
  // Recorded inside the chunk body so the event lands on the pool
  // thread that ran the chunk — crash dumps then show which scan
  // ranges were in flight on which threads.
  static const uint16_t chunk_flight_name =
      obs::FlightRecorder::Global().InternName("serve.scan.chunk");
  pool()->ParallelForChunks(
      n, options_.scan_block, [&](size_t begin, size_t end) {
        obs::FlightRecorder::Global().Record(obs::FlightEventType::kScanChunk,
                                             chunk_flight_name, begin, end);
        TopKAccumulator local(k);
        for (size_t i = begin; i < end; ++i) {
          local.Offer(candidates[i], score(candidates[i]));
        }
        std::vector<RankedWorker> top = local.Take();
        std::lock_guard<std::mutex> lock(merge_mu);
        for (const RankedWorker& rw : top) merged.Offer(rw.worker, rw.score);
      });
  return merged.Take();
}

}  // namespace crowdselect::serve
