// Task-type query router: a CrowdModel composed of member CrowdModels,
// dispatching each query to the member whose task-type centroid is most
// similar to the incoming task (cosine over term vectors), with a
// fixed-member fallback for tasks that match no centroid, and an
// ensemble mode that blends every member's ranking with reciprocal-rank
// fusion. Training can partition the corpus by task type so each member
// specializes — a global skill matrix underfits heterogeneous task
// mixes, which is the whole reason this layer exists.
//
// Observability: every dispatch lands in `router.*` metrics, a
// kRouteDecision flight-recorder event, and (when the caller passes
// QueryStats) the EXPLAIN route section.
#ifndef CROWDSELECT_SERVE_ROUTER_H_
#define CROWDSELECT_SERVE_ROUTER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "model/crowd_model.h"
#include "model/task_clustering.h"

namespace crowdselect::serve {

/// Dispatch policy.
enum class RouteMode {
  kFixed,       ///< Always the fixed member (fallback target).
  kSimilarity,  ///< Best centroid by cosine similarity.
  kEnsemble,    ///< Blend all members by similarity-weighted RRF.
};

const char* RouteModeName(RouteMode mode);

struct RouterOptions {
  RouteMode mode = RouteMode::kSimilarity;
  /// Reciprocal-rank-fusion constant: fused(w) = sum_m weight_m /
  /// (rrf_k + rank_m(w)). The classic 60 keeps deep ranks relevant.
  double rrf_k = 60.0;
  /// Weight-sharpening exponent: member weights are proportional to
  /// similarity^gamma. Shared vocabulary keeps raw cosine similarities
  /// close together (a type-0 task still scores ~0.5 against the other
  /// centroids), so unsharpened weights let off-type members dilute the
  /// blend; gamma > 1 concentrates mass on the well-matched members
  /// while keeping a graded contribution from the rest.
  double ensemble_gamma = 4.0;
  /// Partition the training corpus by task type, one cluster per member
  /// (members then specialize). When false every member trains on the
  /// full database and only dispatch differs.
  bool partition_training = true;
  uint64_t seed = 42;
};

/// Where one query went and why; mirrored into QueryStats::route.
struct RouteDecision {
  size_t member = 0;
  std::string model;  ///< Member label ("tdpm:0", ...).
  double similarity = 0.0;
  double margin = 0.0;  ///< Lead over the runner-up centroid.
  bool fallback = false;
  /// Normalized per-member similarities (ensemble weights).
  std::vector<double> weights;
};

/// The router. Add members (in dispatch order) before Train().
class TaskTypeRouter : public CrowdModel {
 public:
  explicit TaskTypeRouter(RouterOptions options = {});

  /// Adds a member model; `label` defaults to "<model_id>:<index>".
  /// Must be called before Train().
  void AddModel(std::unique_ptr<CrowdModel> model, std::string label = "");

  size_t num_members() const { return members_.size(); }
  CrowdModel* member(size_t i) { return members_[i].model.get(); }
  const CrowdModel* member(size_t i) const { return members_[i].model.get(); }

  /// The member served when routing falls back (and the kFixed target).
  void set_fixed_member(size_t index) { fixed_member_ = index; }

  std::string Name() const override {
    return options_.mode == RouteMode::kEnsemble ? "Ensemble" : "Router";
  }
  std::string ModelId() const override {
    return options_.mode == RouteMode::kEnsemble ? "ensemble" : "router";
  }

  /// Trains the members. With partition_training and >1 member, the
  /// resolved tasks are clustered into num_members() types (spherical
  /// k-means over term vectors) and member m trains on cluster m's
  /// sub-database (all workers and the full vocabulary are retained, so
  /// worker ids stay global); a cluster with no scored assignments falls
  /// back to the full database. Member centroids come from the
  /// clustering. Without partitioning, every member trains on `db` and
  /// centroids are still fitted for dispatch/weighting.
  Status Train(const CrowdDatabase& db) override;

  /// Dispatch decision for a task (no query executed).
  RouteDecision Route(const BagOfWords& task) const;

  Result<std::vector<RankedWorker>> SelectTopKExplained(
      const BagOfWords& task, size_t k,
      const std::vector<WorkerId>& candidates,
      serve::QueryStats* stats) const override;

  /// Folds the task in through the routed member's projector.
  Result<FoldInResult> FoldInTask(const BagOfWords& task) const override;

  /// Forwards feedback to the routed member (similarity / fixed modes)
  /// or to every member (ensemble mode, since all of them serve).
  Status ObserveResolvedTask(
      const BagOfWords& task,
      const std::vector<std::pair<WorkerId, double>>& scored) override;

  std::shared_ptr<const SkillMatrixSnapshot> CurrentSnapshot() const override {
    return members_.empty()
               ? nullptr
               : members_[fixed_member_].model->CurrentSnapshot();
  }
  bool trained() const override { return trained_; }

  const RouterOptions& options() const { return options_; }
  /// Member centroids (unit term vectors), valid after Train().
  const TaskClustering& centroids() const { return centroids_; }

 private:
  struct Member {
    std::string label;
    std::unique_ptr<CrowdModel> model;
  };

  Result<std::vector<RankedWorker>> SelectEnsemble(
      const BagOfWords& task, size_t k,
      const std::vector<WorkerId>& candidates, const RouteDecision& decision,
      serve::QueryStats* stats) const;
  void FillRouteStats(const RouteDecision& decision,
                      serve::QueryStats* stats) const;
  void RecordDecision(const RouteDecision& decision) const;

  RouterOptions options_;
  std::vector<Member> members_;
  size_t fixed_member_ = 0;
  TaskClustering centroids_;  ///< centroids_.centroids[m] belongs to member m.
  bool trained_ = false;
};

}  // namespace crowdselect::serve

#endif  // CROWDSELECT_SERVE_ROUTER_H_
