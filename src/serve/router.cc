#include "serve/router.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace crowdselect::serve {

namespace {

struct RouterCounters {
  obs::Counter* dispatches;
  obs::Counter* fallbacks;
  obs::Counter* ensemble_queries;
};

RouterCounters& Counters() {
  static RouterCounters counters{
      obs::MetricsRegistry::Global().GetCounter("router.dispatch"),
      obs::MetricsRegistry::Global().GetCounter("router.fallback"),
      obs::MetricsRegistry::Global().GetCounter("router.ensemble.queries")};
  return counters;
}

}  // namespace

const char* RouteModeName(RouteMode mode) {
  switch (mode) {
    case RouteMode::kFixed: return "fixed";
    case RouteMode::kSimilarity: return "similarity";
    case RouteMode::kEnsemble: return "ensemble";
  }
  return "unknown";
}

TaskTypeRouter::TaskTypeRouter(RouterOptions options) : options_(options) {}

void TaskTypeRouter::AddModel(std::unique_ptr<CrowdModel> model,
                              std::string label) {
  CS_CHECK(!trained_) << "AddModel after Train";
  CS_CHECK(model != nullptr);
  if (label.empty()) {
    label = StringPrintf("%s:%zu", model->ModelId().c_str(), members_.size());
  }
  members_.push_back(Member{std::move(label), std::move(model)});
}

Status TaskTypeRouter::Train(const CrowdDatabase& db) {
  if (members_.empty()) {
    return Status::FailedPrecondition("router has no member models");
  }
  if (fixed_member_ >= members_.size()) {
    return Status::InvalidArgument("fixed member index out of range");
  }

  // Fit one centroid per member over the corpus term vectors; dispatch
  // and ensemble weighting both read these.
  std::vector<BagOfWords> bags;
  bags.reserve(db.NumTasks());
  for (const TaskRecord& t : db.tasks()) bags.push_back(t.bag);
  Rng rng(options_.seed);
  centroids_ =
      ClusterTasksByType(bags, db.vocabulary().size(), members_.size(), &rng);
  // Degenerate corpora can yield fewer clusters than members; the extra
  // members keep zero centroids (never win a similarity dispatch).
  while (centroids_.centroids.size() < members_.size()) {
    centroids_.centroids.push_back(Vector(db.vocabulary().size()));
  }

  if (options_.partition_training && members_.size() > 1) {
    for (size_t m = 0; m < members_.size(); ++m) {
      // Member m's view: cluster-m tasks with their assignments and
      // feedback, but every worker and the full vocabulary — worker ids
      // (and candidate validation) stay global.
      CrowdDatabase sub;
      *sub.mutable_vocabulary() = db.vocabulary();
      for (const WorkerRecord& w : db.workers()) {
        sub.AddWorker(w.handle, w.online);
      }
      std::unordered_map<TaskId, TaskId> task_map;
      for (size_t j = 0; j < db.tasks().size(); ++j) {
        if (centroids_.assignment[j] != m) continue;
        const TaskRecord& t = db.tasks()[j];
        task_map[t.id] = sub.AddTaskWithBag(t.text, t.bag);
      }
      for (const AssignmentRecord& a : db.assignments()) {
        auto it = task_map.find(a.task);
        if (it == task_map.end()) continue;
        CS_RETURN_NOT_OK(sub.Assign(a.worker, it->second));
        if (a.has_score) {
          CS_RETURN_NOT_OK(sub.RecordFeedback(a.worker, it->second, a.score));
        }
      }
      if (sub.NumScoredAssignments() == 0) {
        // An empty cluster cannot fit a model; specialize on everything
        // instead so the member still serves its dispatches sanely.
        CS_LOG(Warning) << "router member " << members_[m].label
                        << ": cluster has no scored assignments, training "
                           "on the full database";
        CS_RETURN_NOT_OK(members_[m].model->Train(db));
      } else {
        CS_RETURN_NOT_OK(members_[m].model->Train(sub));
      }
    }
  } else {
    for (Member& member : members_) {
      CS_RETURN_NOT_OK(member.model->Train(db));
    }
  }
  obs::MetricsRegistry::Global()
      .GetGauge("router.members")
      ->Set(static_cast<double>(members_.size()));
  trained_ = true;
  return Status::OK();
}

RouteDecision TaskTypeRouter::Route(const BagOfWords& task) const {
  RouteDecision d;
  d.weights.assign(members_.size(), 0.0);
  if (options_.mode == RouteMode::kFixed || members_.size() == 1) {
    d.member = fixed_member_;
    d.weights[d.member] = 1.0;
    d.model = members_[d.member].label;
    return d;
  }
  const std::vector<double> sims = centroids_.Similarities(task);
  size_t best = 0;
  double best_sim = -2.0, second = -2.0;
  double positive_sum = 0.0;
  for (size_t m = 0; m < members_.size(); ++m) {
    const double s = m < sims.size() ? sims[m] : 0.0;
    if (s > best_sim) {
      second = best_sim;
      best_sim = s;
      best = m;
    } else if (s > second) {
      second = s;
    }
    if (s > 0.0) {
      const double sharpened = std::pow(s, options_.ensemble_gamma);
      d.weights[m] = sharpened;
      positive_sum += sharpened;
    }
  }
  if (best_sim <= 0.0) {
    // No vocabulary overlap with any centroid: fixed fallback, uniform
    // ensemble weights.
    d.member = fixed_member_;
    d.fallback = true;
    d.similarity = 0.0;
    d.margin = 0.0;
    d.weights.assign(members_.size(), 1.0 / members_.size());
  } else {
    d.member = best;
    d.similarity = best_sim;
    d.margin = best_sim - std::max(second, 0.0);
    for (double& w : d.weights) w /= positive_sum;
  }
  d.model = members_[d.member].label;
  return d;
}

void TaskTypeRouter::RecordDecision(const RouteDecision& decision) const {
  Counters().dispatches->Increment();
  if (decision.fallback) Counters().fallbacks->Increment();
  static const uint16_t flight_name =
      obs::FlightRecorder::Global().InternName("router.route");
  obs::FlightRecorder::Global().Record(
      obs::FlightEventType::kRouteDecision, flight_name,
      static_cast<uint64_t>(decision.member),
      static_cast<uint64_t>(options_.mode));
}

void TaskTypeRouter::FillRouteStats(const RouteDecision& decision,
                                    serve::QueryStats* stats) const {
  if (stats == nullptr) return;
  stats->serving_model = decision.model;
  stats->route.routed = true;
  stats->route.mode = RouteModeName(options_.mode);
  stats->route.chosen_model = decision.model;
  stats->route.similarity = decision.similarity;
  stats->route.margin = decision.margin;
  stats->route.fallback = decision.fallback;
  if (options_.mode == RouteMode::kEnsemble) {
    stats->route.ensemble_weights.clear();
    for (size_t m = 0; m < members_.size(); ++m) {
      stats->route.ensemble_weights.emplace_back(members_[m].label,
                                                 decision.weights[m]);
    }
  }
}

Result<std::vector<RankedWorker>> TaskTypeRouter::SelectTopKExplained(
    const BagOfWords& task, size_t k, const std::vector<WorkerId>& candidates,
    serve::QueryStats* stats) const {
  if (!trained_) return Status::FailedPrecondition("router not trained");
  const RouteDecision decision = Route(task);
  RecordDecision(decision);
  if (options_.mode == RouteMode::kEnsemble) {
    return SelectEnsemble(task, k, candidates, decision, stats);
  }
  CS_ASSIGN_OR_RETURN(
      std::vector<RankedWorker> ranked,
      members_[decision.member].model->SelectTopKExplained(task, k, candidates,
                                                           stats));
  FillRouteStats(decision, stats);
  return ranked;
}

Result<std::vector<RankedWorker>> TaskTypeRouter::SelectEnsemble(
    const BagOfWords& task, size_t k, const std::vector<WorkerId>& candidates,
    const RouteDecision& decision, serve::QueryStats* stats) const {
  Counters().ensemble_queries->Increment();
  // Reciprocal-rank fusion over each member's *full* ranking of the
  // candidate set: fused(w) = sum_m weight_m / (rrf_k + rank_m(w)).
  // Rank positions (not raw scores) make the blend scale-free across
  // heterogeneous member models.
  std::unordered_map<WorkerId, double> fused;
  fused.reserve(candidates.size());
  for (size_t m = 0; m < members_.size(); ++m) {
    if (decision.weights[m] <= 0.0) continue;
    CS_ASSIGN_OR_RETURN(std::vector<RankedWorker> ranked,
                        members_[m].model->SelectTopKExplained(
                            task, candidates.size(), candidates, nullptr));
    for (size_t rank = 0; rank < ranked.size(); ++rank) {
      fused[ranked[rank].worker] +=
          decision.weights[m] / (options_.rrf_k + static_cast<double>(rank) + 1.0);
    }
  }
  TopKAccumulator acc(k);
  for (WorkerId w : candidates) {
    auto it = fused.find(w);
    acc.Offer(w, it != fused.end() ? it->second : 0.0);
  }
  std::vector<RankedWorker> ranked = acc.Take();
  if (stats != nullptr) {
    stats->num_candidates = candidates.size();
    stats->k = k;
    FillRouteStats(decision, stats);
    stats->serving_model = ModelId();
    stats->breakdown.clear();
    stats->breakdown.reserve(ranked.size());
    for (size_t i = 0; i < ranked.size(); ++i) {
      serve::CandidateBreakdown c;
      c.worker = ranked[i].worker;
      c.score = ranked[i].score;
      if (i + 1 < ranked.size()) c.margin = c.score - ranked[i + 1].score;
      stats->breakdown.push_back(std::move(c));
    }
  }
  return ranked;
}

Result<FoldInResult> TaskTypeRouter::FoldInTask(const BagOfWords& task) const {
  if (!trained_) return Status::FailedPrecondition("router not trained");
  const RouteDecision decision = Route(task);
  return members_[decision.member].model->FoldInTask(task);
}

Status TaskTypeRouter::ObserveResolvedTask(
    const BagOfWords& task,
    const std::vector<std::pair<WorkerId, double>>& scored) {
  if (!trained_) return Status::FailedPrecondition("router not trained");
  if (options_.mode == RouteMode::kEnsemble) {
    // Every member serves ensemble queries, so every member learns.
    for (Member& member : members_) {
      CS_RETURN_NOT_OK(member.model->ObserveResolvedTask(task, scored));
    }
    return Status::OK();
  }
  const RouteDecision decision = Route(task);
  RecordDecision(decision);
  return members_[decision.member].model->ObserveResolvedTask(task, scored);
}

}  // namespace crowdselect::serve
