#include "serve/query_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "obs/json_escape.h"
#include "util/string_util.h"

namespace crowdselect::serve {

namespace {

using obs::JsonEscape;

std::string Num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

const char* Bool(bool b) { return b ? "true" : "false"; }

}  // namespace

std::string QueryStats::ToJson() const {
  std::string out = "{\n";
  out += "  \"model\": {\"id\": \"" + JsonEscape(serving_model) + "\"},\n";
  if (route.routed) {
    out += "  \"route\": {\"mode\": \"" + JsonEscape(route.mode) +
           "\", \"chosen_model\": \"" + JsonEscape(route.chosen_model) +
           "\", \"similarity\": " + Num(route.similarity) +
           ", \"margin\": " + Num(route.margin) +
           ", \"fallback\": " + Bool(route.fallback);
    if (!route.ensemble_weights.empty()) {
      out += ", \"ensemble_weights\": {";
      for (size_t i = 0; i < route.ensemble_weights.size(); ++i) {
        if (i > 0) out += ", ";
        out += "\"" + JsonEscape(route.ensemble_weights[i].first) +
               "\": " + Num(route.ensemble_weights[i].second);
      }
      out += "}";
    }
    out += "},\n";
  } else {
    out += "  \"route\": null,\n";
  }
  out += "  \"snapshot\": {\"version\": " + std::to_string(snapshot_version) +
         ", \"num_workers\": " + std::to_string(num_workers) +
         ", \"num_categories\": " + std::to_string(num_categories) + "},\n";
  out += "  \"query\": {\"num_candidates\": " + std::to_string(num_candidates) +
         ", \"k\": " + std::to_string(k) +
         ", \"parallel_scan\": " + Bool(parallel_scan) + "},\n";
  if (!kernel_id.empty()) {
    out += "  \"kernel\": {\"id\": \"" + JsonEscape(kernel_id) +
           "\", \"quant\": \"" + JsonEscape(quant) +
           "\", \"oversample\": " + std::to_string(oversample) +
           ", \"rescored\": " + std::to_string(rescored) + "},\n";
  } else {
    out += "  \"kernel\": null,\n";
  }
  out += "  \"foldin\": {\"used\": " + std::string(Bool(used_foldin)) +
         ", \"cache_hit\": " + Bool(cache_hit) +
         ", \"cg_iterations\": " + std::to_string(cg_iterations) +
         ", \"cg_residual\": " + Num(cg_residual) +
         ", \"sampled_category\": " + Bool(sampled_category) + "},\n";
  out += "  \"latency_us\": {\"foldin\": " + Num(foldin_us) +
         ", \"scan\": " + Num(scan_us) + ", \"total\": " + Num(total_us) +
         "},\n";
  out += "  \"ranking\": [";
  for (size_t i = 0; i < breakdown.size(); ++i) {
    const CandidateBreakdown& c = breakdown[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"rank\": " + std::to_string(i + 1) +
           ", \"worker\": " + std::to_string(c.worker) +
           ", \"score\": " + Num(c.score) + ", \"margin\": " + Num(c.margin) +
           ", \"terms\": [";
    for (size_t d = 0; d < c.terms.size(); ++d) {
      if (d > 0) out += ", ";
      out += Num(c.terms[d]);
    }
    out += "]}";
  }
  out += breakdown.empty() ? "],\n" : "\n  ],\n";
  out += "  \"cutoff\": ";
  out += has_cutoff ? ("{\"score\": " + Num(cutoff_score) + "}") : "null";
  out += "\n}\n";
  return out;
}

std::string QueryStats::ToText(size_t top_terms) const {
  std::string out = "EXPLAIN crowd-selection query\n";
  if (!serving_model.empty()) {
    out += StringPrintf("  model       %s\n", serving_model.c_str());
  }
  if (route.routed) {
    if (route.fallback) {
      out += StringPrintf(
          "  route       %s -> %s (fallback: no centroid overlap)\n",
          route.mode.c_str(), route.chosen_model.c_str());
    } else {
      out += StringPrintf(
          "  route       %s -> %s (similarity %.4f, margin %.4f)\n",
          route.mode.c_str(), route.chosen_model.c_str(), route.similarity,
          route.margin);
    }
    if (!route.ensemble_weights.empty()) {
      out += "  ensemble    ";
      for (size_t i = 0; i < route.ensemble_weights.size(); ++i) {
        if (i > 0) out += ", ";
        out += StringPrintf("%s:%.3f", route.ensemble_weights[i].first.c_str(),
                            route.ensemble_weights[i].second);
      }
      out += "\n";
    }
  }
  out += StringPrintf("  snapshot    version %llu (%zu workers x %zu categories)\n",
                      static_cast<unsigned long long>(snapshot_version),
                      num_workers, num_categories);
  out += StringPrintf("  candidates  %zu validated, k=%zu\n", num_candidates, k);
  if (used_foldin) {
    out += StringPrintf(
        "  fold-in     cache %s; CG %d iterations, residual %.3g; "
        "category = %s; %.1f us\n",
        cache_hit ? "HIT (cost below is the cached solve's)" : "MISS",
        cg_iterations, cg_residual,
        sampled_category ? "sampled" : "posterior mean", foldin_us);
  } else {
    out += "  fold-in     skipped (caller supplied the category vector)\n";
  }
  out += StringPrintf("  scan        %s over %zu candidates; %.1f us\n",
                      parallel_scan ? "blocked parallel" : "inline",
                      num_candidates, scan_us);
  if (!kernel_id.empty()) {
    out += StringPrintf("  kernel      kernel=%s, quant=%s", kernel_id.c_str(),
                        quant.c_str());
    if (quant == "int8") {
      out += StringPrintf(", oversample=%zu (rescored %zu in fp64)",
                          oversample, rescored);
    }
    out += "\n";
  }
  out += StringPrintf("  total       %.1f us\n", total_us);
  out += "  ranking (score = w_i . c_j):\n";
  for (size_t i = 0; i < breakdown.size(); ++i) {
    const CandidateBreakdown& c = breakdown[i];
    out += StringPrintf("    #%-3zu worker %-8u score %+.4f  margin %.4f",
                        i + 1, c.worker, c.score, c.margin);
    if (top_terms > 0 && !c.terms.empty()) {
      // Strongest per-category contributions, by absolute value.
      std::vector<size_t> order(c.terms.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return std::fabs(c.terms[a]) > std::fabs(c.terms[b]);
      });
      out += "  [";
      const size_t n = std::min(top_terms, order.size());
      for (size_t t = 0; t < n; ++t) {
        if (t > 0) out += ", ";
        out += StringPrintf("c%zu:%+.3f", order[t], c.terms[order[t]]);
      }
      out += "]";
    }
    out += "\n";
  }
  if (has_cutoff) {
    out += StringPrintf("  cutoff      best unselected candidate scored %+.4f\n",
                        cutoff_score);
  } else if (breakdown.size() >= num_candidates) {
    out += "  cutoff      none (every candidate was selected)\n";
  }
  return out;
}

}  // namespace crowdselect::serve
