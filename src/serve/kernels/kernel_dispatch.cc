// Runtime kernel dispatch: pick the fastest ScoreKernel the running
// CPU supports, with two override layers — the caller's force_scalar
// flag (ServeOptions) and the CROWDSELECT_FORCE_SCALAR environment
// variable — both pinning the scalar reference. The choice is made per
// engine construction, not per query, so the environment variable is
// effectively read at engine-build time.
#include "serve/kernels/score_kernel.h"

#include <cstring>

#include "util/cpuid.h"

namespace crowdselect::serve::kernels {

const ScoreKernel& DispatchScoreKernel(bool force_scalar) {
  if (force_scalar || ScalarKernelForced()) return ScalarScoreKernel();
  if (const ScoreKernel* avx2 = Avx2ScoreKernelOrNull()) return *avx2;
  if (const ScoreKernel* neon = NeonScoreKernelOrNull()) return *neon;
  return ScalarScoreKernel();
}

uint64_t ScoreKernelOrdinal(const ScoreKernel& kernel) {
  if (std::strcmp(kernel.id(), "avx2") == 0) return 1;
  if (std::strcmp(kernel.id(), "neon") == 0) return 2;
  return 0;
}

}  // namespace crowdselect::serve::kernels
