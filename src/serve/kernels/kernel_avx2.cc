// AVX2 ScoreKernel: two 256-bit accumulators cover one 8-lane panel;
// each dimension is one broadcast + two multiply/add pairs (fp) or a
// sign-extend + convert + multiply/add (int8). Deliberately
// _mm256_mul_pd + _mm256_add_pd, NOT _mm256_fmadd_pd: the determinism
// contract (score_kernel.h) requires the same unfused chain as the
// scalar reference, and this TU compiles with -ffp-contract=off so the
// compiler cannot re-fuse the pair behind our back. The panel scan is
// memory-bound at pool scale, so the fused variant would not buy
// throughput anyway.
//
// The whole TU is gated on x86-64 and compiled with -mavx2 (see
// src/CMakeLists.txt); callers reach it only through
// Avx2ScoreKernelOrNull(), which checks the *running* CPU.
#include "serve/kernels/score_kernel.h"

#include "util/cpuid.h"

#if defined(__x86_64__) && defined(__AVX2__)
#include <immintrin.h>

namespace crowdselect::serve::kernels {

namespace {

static_assert(kPanelWidth == 8,
              "AVX2 kernel is written for 8-lane panels (2 x 4 doubles)");

class Avx2Kernel final : public ScoreKernel {
 public:
  const char* id() const override { return "avx2"; }

  void ScoreBlock(const double* panel, const double* query, size_t dims,
                  double* out) const override {
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    for (size_t d = 0; d < dims; ++d) {
      const double* col = panel + d * kPanelWidth;
      const __m256d q = _mm256_set1_pd(query[d]);
      acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(_mm256_loadu_pd(col), q));
      acc_hi =
          _mm256_add_pd(acc_hi, _mm256_mul_pd(_mm256_loadu_pd(col + 4), q));
    }
    _mm256_storeu_pd(out, acc_lo);
    _mm256_storeu_pd(out + 4, acc_hi);
  }

  void ScoreBlockInt8(const int8_t* panel, const double* scales,
                      const double* query, size_t dims,
                      double* out) const override {
    __m256d acc_lo = _mm256_setzero_pd();
    __m256d acc_hi = _mm256_setzero_pd();
    for (size_t d = 0; d < dims; ++d) {
      // 8 codes -> 8 x int32 -> 2 x 4 doubles.
      const __m128i codes = _mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(panel + d * kPanelWidth));
      const __m256i wide = _mm256_cvtepi8_epi32(codes);
      const __m256d lo = _mm256_cvtepi32_pd(_mm256_castsi256_si128(wide));
      const __m256d hi = _mm256_cvtepi32_pd(_mm256_extracti128_si256(wide, 1));
      const __m256d q = _mm256_set1_pd(query[d]);
      acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(lo, q));
      acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(hi, q));
    }
    acc_lo = _mm256_mul_pd(acc_lo, _mm256_loadu_pd(scales));
    acc_hi = _mm256_mul_pd(acc_hi, _mm256_loadu_pd(scales + 4));
    _mm256_storeu_pd(out, acc_lo);
    _mm256_storeu_pd(out + 4, acc_hi);
  }
};

}  // namespace

const ScoreKernel* Avx2ScoreKernelOrNull() {
  if (!DetectCpuFeatures().avx2) return nullptr;
  static const Avx2Kernel kernel;
  return &kernel;
}

}  // namespace crowdselect::serve::kernels

#else  // !(__x86_64__ && __AVX2__)

namespace crowdselect::serve::kernels {

const ScoreKernel* Avx2ScoreKernelOrNull() { return nullptr; }

}  // namespace crowdselect::serve::kernels

#endif
