// The scoring data path behind the selection scan (paper §6, Eq. 1),
// restructured for SIMD: instead of walking row-major worker rows, the
// skill matrix is re-laid-out at snapshot-build time into *column
// panels* — groups of kPanelWidth workers whose skill values are
// interleaved per latent dimension — so a kernel scores a whole panel
// with one broadcast-multiply-accumulate per dimension, streaming both
// the panel and the query linearly (tinyBLAS-style portable tiling).
//
// Layout of one panel (W = kPanelWidth workers, K dims):
//
//   panel[d * W + l] = skills(first_worker + l, d)
//
// i.e. dimension-major, worker-interleaved. Workers past the pool size
// pad the last panel with zeros (their scale is 0 in the int8 variant);
// callers must clamp emitted lanes to the real pool.
//
// Determinism contract: every kernel computes, for each lane l,
//
//   acc = 0; for d: acc = acc + panel[d*W + l] * query[d]
//
// as a *sequential* IEEE multiply-then-add chain in dimension order —
// never fused into FMA, never reassociated. A vector kernel evaluates
// the same chain on several lanes at once, so the scalar reference and
// every SIMD kernel produce bitwise-identical scores (the kernel TUs
// compile with -ffp-contract=off to stop the compiler re-fusing the
// chain). That makes kernel choice invisible to ranking, EXPLAIN, and
// tests: the scalar kernel IS the specification.
//
// The int8 variant stores per-worker symmetric codes
// (code = round(v / scale), scale = max|row| / 127) and scores
//
//   out[l] = scale[l] * sum_d double(code[d*W+l]) * query[d]
//
// with the same sequential chain, so int8 scores are also bitwise
// identical across kernels. int8 is an approximation (|v - code*scale|
// <= scale/2 per entry); the engine rescores the top k*oversample
// candidates with the full-precision chain before the final merge.
#ifndef CROWDSELECT_SERVE_KERNELS_SCORE_KERNEL_H_
#define CROWDSELECT_SERVE_KERNELS_SCORE_KERNEL_H_

#include <cstdint>
#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace crowdselect::serve::kernels {

/// Workers per panel. 8 doubles = one cache line per dimension, two
/// 256-bit AVX2 vectors, four 128-bit NEON vectors.
inline constexpr size_t kPanelWidth = 8;

/// Bumped whenever the physical panel encoding changes; folded into
/// BlockedPanels::Signature() so fold-in cache namespaces (and anything
/// else keyed on the layout) roll over with the format.
inline constexpr uint32_t kLayoutVersion = 1;

/// The blocked, SIMD-friendly snapshot representation: full-precision
/// panels plus the int8 quantized variant (codes + per-worker scales),
/// both built once from the row-major matrix. Immutable in serving;
/// ReencodeRow exists for the copy-on-write live-update path, which
/// mutates a fresh copy before it is published.
class BlockedPanels {
 public:
  BlockedPanels() = default;

  /// Re-encodes a row-major `num_workers x K` matrix into panels.
  static BlockedPanels Build(const Matrix& row_major);

  size_t num_workers() const { return num_workers_; }
  size_t dims() const { return dims_; }
  size_t num_panels() const { return num_panels_; }

  /// Full-precision panel p (dims() * kPanelWidth doubles).
  const double* PanelFp(size_t p) const {
    return fp_.data() + p * dims_ * kPanelWidth;
  }
  /// int8 panel p (dims() * kPanelWidth codes).
  const int8_t* PanelQ8(size_t p) const {
    return q8_.data() + p * dims_ * kPanelWidth;
  }
  /// Per-lane dequantization scales of panel p (kPanelWidth doubles;
  /// padded lanes are 0).
  const double* PanelScales(size_t p) const {
    return scales_.data() + p * kPanelWidth;
  }
  /// Worker w's dequantization scale.
  double scale(size_t w) const { return scales_[w]; }

  /// Overwrites worker w's lane from `row` (dims() doubles): the
  /// full-precision lane and the int8 codes + scale are both re-encoded.
  /// Used by SkillMatrixSnapshot::WithUpdatedRows on its private copy.
  void ReencodeRow(size_t w, const double* row);

  /// Full-precision score of one worker, computed with the exact
  /// multiply-then-add chain the kernels use — bitwise identical to the
  /// lane a kernel would produce. This is the sparse-candidate path and
  /// the int8 rescore path. Defined in blocked_layout.cc (compiled with
  /// -ffp-contract=off) so the chain is never fused.
  double LaneScore(size_t w, const double* query) const;

  /// int8 approximate score of one worker, same chain as ScoreBlockInt8.
  double LaneScoreInt8(size_t w, const double* query) const;

  /// Fingerprint of the physical layout (version, panel width, dims):
  /// mixed into cache namespaces so entries written under a different
  /// layout generation can never be served.
  uint64_t Signature() const;

 private:
  size_t num_workers_ = 0;
  size_t dims_ = 0;
  size_t num_panels_ = 0;
  std::vector<double> fp_;      ///< num_panels * dims * kPanelWidth.
  std::vector<int8_t> q8_;      ///< num_panels * dims * kPanelWidth.
  std::vector<double> scales_;  ///< num_panels * kPanelWidth.
};

/// A scoring kernel: scores one panel (kPanelWidth workers) against a
/// query vector. Implementations are stateless and thread-safe; the
/// engine calls ScoreBlock from every scan thread concurrently.
class ScoreKernel {
 public:
  virtual ~ScoreKernel() = default;

  /// Stable identifier surfaced in EXPLAIN, metrics, and the flight
  /// recorder: "scalar", "avx2", or "neon".
  virtual const char* id() const = 0;

  /// out[l] = full-precision score of the panel's lane l (all
  /// kPanelWidth lanes written, padded lanes included).
  virtual void ScoreBlock(const double* panel, const double* query,
                          size_t dims, double* out) const = 0;

  /// out[l] = scales[l] * sum_d double(panel[d*W+l]) * query[d] — the
  /// int8 approximate score, same determinism contract.
  virtual void ScoreBlockInt8(const int8_t* panel, const double* scales,
                              const double* query, size_t dims,
                              double* out) const = 0;
};

/// The scalar reference kernel (always available; the specification the
/// SIMD kernels are tested against bitwise).
const ScoreKernel& ScalarScoreKernel();

/// AVX2 kernel, or nullptr when the build target or the running CPU
/// lacks AVX2.
const ScoreKernel* Avx2ScoreKernelOrNull();

/// NEON kernel, or nullptr off aarch64.
const ScoreKernel* NeonScoreKernelOrNull();

/// Runtime dispatch: the fastest kernel this CPU supports, unless
/// `force_scalar` or the CROWDSELECT_FORCE_SCALAR environment variable
/// pins the scalar reference. Never returns null.
const ScoreKernel& DispatchScoreKernel(bool force_scalar = false);

/// Ordinal used where a numeric id is needed (gauges, flight events):
/// scalar = 0, avx2 = 1, neon = 2.
uint64_t ScoreKernelOrdinal(const ScoreKernel& kernel);

}  // namespace crowdselect::serve::kernels

#endif  // CROWDSELECT_SERVE_KERNELS_SCORE_KERNEL_H_
