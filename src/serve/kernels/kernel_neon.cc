// NEON (AArch64 Advanced SIMD) ScoreKernel: four 128-bit accumulators
// cover one 8-lane panel, two double lanes each. vaddq_f64(vmulq_f64)
// rather than vfmaq_f64 — FMLA is fused, and the determinism contract
// (score_kernel.h) requires the scalar reference's unfused
// multiply-then-add chain; -ffp-contract=off on this TU keeps the
// compiler from re-fusing the pair.
#include "serve/kernels/score_kernel.h"

#include "util/cpuid.h"

#if defined(__aarch64__)
#include <arm_neon.h>

namespace crowdselect::serve::kernels {

namespace {

static_assert(kPanelWidth == 8,
              "NEON kernel is written for 8-lane panels (4 x 2 doubles)");

class NeonKernel final : public ScoreKernel {
 public:
  const char* id() const override { return "neon"; }

  void ScoreBlock(const double* panel, const double* query, size_t dims,
                  double* out) const override {
    float64x2_t acc0 = vdupq_n_f64(0.0);
    float64x2_t acc1 = vdupq_n_f64(0.0);
    float64x2_t acc2 = vdupq_n_f64(0.0);
    float64x2_t acc3 = vdupq_n_f64(0.0);
    for (size_t d = 0; d < dims; ++d) {
      const double* col = panel + d * kPanelWidth;
      const float64x2_t q = vdupq_n_f64(query[d]);
      acc0 = vaddq_f64(acc0, vmulq_f64(vld1q_f64(col), q));
      acc1 = vaddq_f64(acc1, vmulq_f64(vld1q_f64(col + 2), q));
      acc2 = vaddq_f64(acc2, vmulq_f64(vld1q_f64(col + 4), q));
      acc3 = vaddq_f64(acc3, vmulq_f64(vld1q_f64(col + 6), q));
    }
    vst1q_f64(out, acc0);
    vst1q_f64(out + 2, acc1);
    vst1q_f64(out + 4, acc2);
    vst1q_f64(out + 6, acc3);
  }

  void ScoreBlockInt8(const int8_t* panel, const double* scales,
                      const double* query, size_t dims,
                      double* out) const override {
    float64x2_t acc0 = vdupq_n_f64(0.0);
    float64x2_t acc1 = vdupq_n_f64(0.0);
    float64x2_t acc2 = vdupq_n_f64(0.0);
    float64x2_t acc3 = vdupq_n_f64(0.0);
    for (size_t d = 0; d < dims; ++d) {
      // 8 codes -> 8 x int16 -> 2 x 4 int32 -> 4 x 2 doubles.
      const int8x8_t codes = vld1_s8(panel + d * kPanelWidth);
      const int16x8_t wide = vmovl_s8(codes);
      const int32x4_t lo32 = vmovl_s16(vget_low_s16(wide));
      const int32x4_t hi32 = vmovl_s16(vget_high_s16(wide));
      const float64x2_t q = vdupq_n_f64(query[d]);
      const float64x2_t d0 = vcvtq_f64_s64(vmovl_s32(vget_low_s32(lo32)));
      const float64x2_t d1 = vcvtq_f64_s64(vmovl_s32(vget_high_s32(lo32)));
      const float64x2_t d2 = vcvtq_f64_s64(vmovl_s32(vget_low_s32(hi32)));
      const float64x2_t d3 = vcvtq_f64_s64(vmovl_s32(vget_high_s32(hi32)));
      acc0 = vaddq_f64(acc0, vmulq_f64(d0, q));
      acc1 = vaddq_f64(acc1, vmulq_f64(d1, q));
      acc2 = vaddq_f64(acc2, vmulq_f64(d2, q));
      acc3 = vaddq_f64(acc3, vmulq_f64(d3, q));
    }
    acc0 = vmulq_f64(acc0, vld1q_f64(scales));
    acc1 = vmulq_f64(acc1, vld1q_f64(scales + 2));
    acc2 = vmulq_f64(acc2, vld1q_f64(scales + 4));
    acc3 = vmulq_f64(acc3, vld1q_f64(scales + 6));
    vst1q_f64(out, acc0);
    vst1q_f64(out + 2, acc1);
    vst1q_f64(out + 4, acc2);
    vst1q_f64(out + 6, acc3);
  }
};

}  // namespace

const ScoreKernel* NeonScoreKernelOrNull() {
  if (!DetectCpuFeatures().neon) return nullptr;
  static const NeonKernel kernel;
  return &kernel;
}

}  // namespace crowdselect::serve::kernels

#else  // !__aarch64__

namespace crowdselect::serve::kernels {

const ScoreKernel* NeonScoreKernelOrNull() { return nullptr; }

}  // namespace crowdselect::serve::kernels

#endif
