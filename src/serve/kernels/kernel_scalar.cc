// The scalar reference ScoreKernel: the executable specification every
// SIMD kernel is tested against bitwise. Compiled with
// -ffp-contract=off so `acc + a * b` stays an IEEE multiply followed by
// an IEEE add — auto-vectorization across *lanes* is fine (lanes are
// independent), fusing within a lane's chain is not.
#include "serve/kernels/score_kernel.h"

namespace crowdselect::serve::kernels {

namespace {

class ScalarKernel final : public ScoreKernel {
 public:
  const char* id() const override { return "scalar"; }

  void ScoreBlock(const double* panel, const double* query, size_t dims,
                  double* out) const override {
    double acc[kPanelWidth] = {0.0};
    for (size_t d = 0; d < dims; ++d) {
      const double* col = panel + d * kPanelWidth;
      const double q = query[d];
      for (size_t l = 0; l < kPanelWidth; ++l) {
        acc[l] = acc[l] + col[l] * q;
      }
    }
    for (size_t l = 0; l < kPanelWidth; ++l) out[l] = acc[l];
  }

  void ScoreBlockInt8(const int8_t* panel, const double* scales,
                      const double* query, size_t dims,
                      double* out) const override {
    double acc[kPanelWidth] = {0.0};
    for (size_t d = 0; d < dims; ++d) {
      const int8_t* col = panel + d * kPanelWidth;
      const double q = query[d];
      for (size_t l = 0; l < kPanelWidth; ++l) {
        acc[l] = acc[l] + static_cast<double>(col[l]) * q;
      }
    }
    for (size_t l = 0; l < kPanelWidth; ++l) out[l] = scales[l] * acc[l];
  }
};

}  // namespace

const ScoreKernel& ScalarScoreKernel() {
  static const ScalarKernel kernel;
  return kernel;
}

}  // namespace crowdselect::serve::kernels
