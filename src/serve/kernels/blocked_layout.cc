// BlockedPanels encode/re-encode and the per-lane reference chains.
// This TU compiles with -ffp-contract=off (see src/CMakeLists.txt):
// LaneScore / LaneScoreInt8 must execute the exact multiply-then-add
// sequence of the kernels, and a contracted FMA here would silently
// diverge from a non-contracted kernel (or vice versa) in the last ulp
// — enough to flip a near-tie and break the bitwise path-equivalence
// the test suite pins.
#include "serve/kernels/score_kernel.h"

#include <cmath>

#include "util/logging.h"

namespace crowdselect::serve::kernels {

namespace {

/// Symmetric per-worker quantization: scale = max|row| / 127,
/// code = round(v / scale) in [-127, 127]. All-zero rows get scale 0
/// and zero codes (LaneScoreInt8 then returns exactly 0).
double RowScale(const double* row, size_t dims) {
  double max_abs = 0.0;
  for (size_t d = 0; d < dims; ++d) {
    const double a = std::fabs(row[d]);
    if (a > max_abs) max_abs = a;
  }
  return max_abs / 127.0;
}

int8_t Encode(double v, double scale) {
  if (scale == 0.0) return 0;
  const double scaled = v / scale;
  // |scaled| <= 127 by construction of the scale; clamp anyway so a
  // rounding excursion can never wrap.
  const long code = std::lrint(scaled < -127.0   ? -127.0
                               : scaled > 127.0 ? 127.0
                                                : scaled);
  return static_cast<int8_t>(code);
}

}  // namespace

BlockedPanels BlockedPanels::Build(const Matrix& row_major) {
  BlockedPanels panels;
  panels.num_workers_ = row_major.rows();
  panels.dims_ = row_major.cols();
  panels.num_panels_ =
      (panels.num_workers_ + kPanelWidth - 1) / kPanelWidth;
  panels.fp_.assign(panels.num_panels_ * panels.dims_ * kPanelWidth, 0.0);
  panels.q8_.assign(panels.num_panels_ * panels.dims_ * kPanelWidth, 0);
  panels.scales_.assign(panels.num_panels_ * kPanelWidth, 0.0);
  for (size_t w = 0; w < panels.num_workers_; ++w) {
    panels.ReencodeRow(w, row_major.RowPtr(w));
  }
  return panels;
}

void BlockedPanels::ReencodeRow(size_t w, const double* row) {
  CS_DCHECK(w < num_workers_);
  const size_t panel = w / kPanelWidth;
  const size_t lane = w % kPanelWidth;
  double* fp = fp_.data() + panel * dims_ * kPanelWidth;
  int8_t* q8 = q8_.data() + panel * dims_ * kPanelWidth;
  const double scale = RowScale(row, dims_);
  scales_[w] = scale;
  for (size_t d = 0; d < dims_; ++d) {
    fp[d * kPanelWidth + lane] = row[d];
    q8[d * kPanelWidth + lane] = Encode(row[d], scale);
  }
}

double BlockedPanels::LaneScore(size_t w, const double* query) const {
  CS_DCHECK(w < num_workers_);
  const size_t panel = w / kPanelWidth;
  const size_t lane = w % kPanelWidth;
  const double* fp = fp_.data() + panel * dims_ * kPanelWidth;
  double acc = 0.0;
  for (size_t d = 0; d < dims_; ++d) {
    acc = acc + fp[d * kPanelWidth + lane] * query[d];
  }
  return acc;
}

double BlockedPanels::LaneScoreInt8(size_t w, const double* query) const {
  CS_DCHECK(w < num_workers_);
  const size_t panel = w / kPanelWidth;
  const size_t lane = w % kPanelWidth;
  const int8_t* q8 = q8_.data() + panel * dims_ * kPanelWidth;
  double acc = 0.0;
  for (size_t d = 0; d < dims_; ++d) {
    acc = acc + static_cast<double>(q8[d * kPanelWidth + lane]) * query[d];
  }
  return scales_[w] * acc;
}

uint64_t BlockedPanels::Signature() const {
  // FNV-1a over the layout-defining constants; the *contents* are
  // deliberately excluded (the snapshot version already tracks content
  // generations — this fingerprints the physical format).
  uint64_t h = 0xCBF29CE484222325ULL;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  mix(kLayoutVersion);
  mix(kPanelWidth);
  mix(dims_);
  return h;
}

}  // namespace crowdselect::serve::kernels
