// Online shadow evaluation of the crowd model: every task resolved on
// the blue path is scored — prediction vs realized feedback — BEFORE
// the feedback folds back into the model, so the monitor measures true
// held-out quality continuously, not training fit. The monitor attaches
// to CrowdManager via the crowddb ResolvedTaskObserver tap (crowddb
// never links serve; the interface keeps the layering acyclic).
//
// Per task, predicted selection scores and realized feedback live on
// different scales (dot products vs thumbs counts), so both are min-max
// normalized within the task before comparison. Three quality signals
// per resolved task, each recorded into a rotating WindowedHistogram
// whose gauges land in the registry as quality.<model>.<signal>.*:
//
//   rmse             RMSE between normalized prediction and feedback
//                    (0 = perfect ranking signal, 1 = inverted).
//   top1_agreement   1 when the predicted-best worker also earned the
//                    best feedback, else 0.
//   calibration      Pearson correlation between normalized scores
//                    (needs >= 3 matched workers and nonzero variance).
//
// Drift detection rides the same stream:
//   * Per-worker posterior drift: an EWMA of each worker's signed
//     normalized residual (feedback - prediction), compared against the
//     worker's own *baseline* — the mean residual over its first
//     min_observations tasks. A worker the model persistently mis-prices
//     has a large residual but near-zero deviation from baseline; a
//     worker whose behaviour CHANGES (spammer onset) has a large
//     deviation. Deviations are z-scored across the population of
//     eligible workers; |z| past the threshold flags the worker.
//   * Population skill drift: an EWMA of the per-task mean raw feedback
//     z-scored against the long-run (Welford) mean — the whole crowd
//     getting better or worse than the model's training regime.
//
// Everything surfaces as registry gauges (so the time-series store and
// alert rules see it) plus a flat-JSON report for --quality-out.
#ifndef CROWDSELECT_SERVE_QUALITY_MONITOR_H_
#define CROWDSELECT_SERVE_QUALITY_MONITOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "crowddb/selector_interface.h"
#include "obs/metrics.h"
#include "obs/window.h"

namespace crowdselect::serve {

struct QualityMonitorConfig {
  std::string model_id = "model";  ///< Gauge namespace: quality.<id>.*.
  size_t window_size = 64;    ///< Tasks per rotation window.
  size_t num_windows = 6;     ///< Retained closed windows per signal.
  double ewma_alpha = 0.2;    ///< Residual EWMA smoothing (0..1].
  double drift_z_threshold = 3.0;  ///< |z| above which a worker is flagged.
  /// Flagging also requires |ewma - baseline| above this floor: in a
  /// small population the largest |z| is ~2 on pure noise (order
  /// statistics), so a relative score alone would always page on the
  /// noisiest worker. 0.25 on the normalized residual scale — half the
  /// typical spammer-onset signal, well above EWMA noise.
  double min_drift_deviation = 0.25;
  size_t min_observations = 5;  ///< Worker obs before drift eligibility.
};

/// Per-worker drift state, as returned by WorkerDrift().
struct WorkerDriftStatus {
  WorkerId worker = kInvalidWorkerId;
  double residual_ewma = 0.0;  ///< EWMA of (feedback - prediction), normalized.
  double baseline = 0.0;  ///< Mean residual over the first min_observations.
  double z_score = 0.0;   ///< Of (ewma - baseline) across eligible workers.
  uint64_t observations = 0;
  bool flagged = false;
};

/// Point-in-time summary for reports (flat-JSON friendly).
struct QualitySummary {
  std::string model_id;
  uint64_t tasks_observed = 0;
  uint64_t tasks_skipped = 0;  ///< < 2 matched workers, nothing to score.
  double rmse_mean = 0.0;      ///< Over retained windows.
  double top1_agreement_mean = 0.0;
  double calibration_mean = 0.0;
  double rmse_first_window = 0.0;  ///< Oldest retained per-window mean.
  double rmse_last_window = 0.0;   ///< Newest closed per-window mean.
  bool rmse_degraded = false;      ///< last > first by a meaningful margin.
  size_t drift_flagged = 0;
  double drift_max_abs_z = 0.0;
  double population_drift_z = 0.0;
  std::vector<WorkerId> flagged_workers;  ///< Ascending id.
};

/// Thread-safe. One instance per monitored model; attach with
/// CrowdManager::set_resolved_observer(&monitor).
class QualityMonitor : public ResolvedTaskObserver {
 public:
  explicit QualityMonitor(
      QualityMonitorConfig config = {},
      obs::MetricsRegistry* registry = &obs::MetricsRegistry::Global());

  /// Scores one resolved task. Tasks with fewer than two workers present
  /// in BOTH the prediction and the feedback are counted as skipped.
  void OnResolvedTask(
      const BagOfWords& task, const std::vector<RankedWorker>& predicted,
      const std::vector<std::pair<WorkerId, double>>& realized) override;

  /// Forces a window rotation (normally automatic every
  /// config.window_size observed tasks) — call at end of run so the
  /// final partial window reaches the gauges.
  void RotateWindows();

  QualitySummary Summary() const;

  /// Drift status of every tracked worker, ascending id. Workers below
  /// min_observations carry z_score 0 and can never be flagged.
  std::vector<WorkerDriftStatus> WorkerDrift() const;

  /// Summary() as one flat JSON object (jsonl::ParseObject-compatible:
  /// no nesting; the flagged-worker list is a comma-joined string).
  std::string SummaryJson() const;

  const QualityMonitorConfig& config() const { return config_; }
  uint64_t tasks_observed() const;

 private:
  struct WorkerState {
    double residual_ewma = 0.0;
    // Reference period: the mean residual over the worker's first
    // min_observations tasks becomes its frozen baseline, so drift is
    // "deviation from own history", not "deviation from the model".
    double baseline = 0.0;
    double baseline_sum = 0.0;
    bool baseline_set = false;
    uint64_t observations = 0;
  };

  /// Recomputes drift z-scores + gauges; called under mu_.
  void RefreshDriftLocked();

  const QualityMonitorConfig config_;
  obs::MetricsRegistry* const registry_;

  // Rotating quality windows; gauge prefix "" puts them directly at
  // quality.<model>.<signal>.{p50,p95,p99,mean,window_count,samples}.
  std::unique_ptr<obs::WindowedHistogram> rmse_window_;
  std::unique_ptr<obs::WindowedHistogram> top1_window_;
  std::unique_ptr<obs::WindowedHistogram> calibration_window_;

  obs::Counter* tasks_observed_counter_;
  obs::Counter* tasks_skipped_counter_;
  obs::Gauge* drift_flagged_gauge_;
  obs::Gauge* drift_max_z_gauge_;
  obs::Gauge* drift_workers_gauge_;
  obs::Gauge* population_z_gauge_;

  mutable std::mutex mu_;
  // OnResolvedTask scratch (guarded by mu_): reused across tasks so the
  // blue-path tap allocates nothing in steady state.
  std::vector<WorkerId> scratch_ids_;
  std::vector<double> scratch_pred_;
  std::vector<double> scratch_real_;
  uint64_t tasks_observed_ = 0;
  uint64_t tasks_skipped_ = 0;
  size_t tasks_in_window_ = 0;
  std::map<WorkerId, WorkerState> workers_;
  std::vector<WorkerId> flagged_;   ///< Ascending, refreshed per task.
  double drift_max_abs_z_ = 0.0;
  // Per-window mean RMSE history (newest last, bounded) — feeds the
  // degradation verdict in Summary().
  std::deque<double> window_rmse_means_;
  double rmse_sum_in_window_ = 0.0;
  size_t rmse_count_in_window_ = 0;
  // Population skill drift: EWMA of per-task mean raw feedback vs the
  // long-run Welford mean/variance of the same statistic.
  double population_ewma_ = 0.0;
  bool population_ewma_init_ = false;
  uint64_t population_n_ = 0;
  double population_mean_ = 0.0;
  double population_m2_ = 0.0;
  double population_z_ = 0.0;
};

}  // namespace crowdselect::serve

#endif  // CROWDSELECT_SERVE_QUALITY_MONITOR_H_
