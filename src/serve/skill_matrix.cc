#include "serve/skill_matrix.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace crowdselect::serve {

std::shared_ptr<const SkillMatrixSnapshot> SkillMatrixSnapshot::FromPosteriors(
    const std::vector<WorkerPosterior>& workers, uint64_t version) {
  const size_t k = workers.empty() ? 0 : workers.front().lambda.size();
  Matrix skills(workers.size(), k);
  for (size_t w = 0; w < workers.size(); ++w) {
    CS_CHECK(workers[w].lambda.size() == k)
        << "worker " << w << " has " << workers[w].lambda.size()
        << " skill dims, expected " << k;
    double* row = skills.RowPtr(w);
    for (size_t d = 0; d < k; ++d) row[d] = workers[w].lambda[d];
  }
  return std::shared_ptr<const SkillMatrixSnapshot>(
      new SkillMatrixSnapshot(std::move(skills), version));
}

std::shared_ptr<const SkillMatrixSnapshot> SkillMatrixSnapshot::FromFit(
    const TdpmFitResult& fit, uint64_t version) {
  return FromPosteriors(fit.state.workers, version);
}

std::shared_ptr<const SkillMatrixSnapshot> SkillMatrixSnapshot::FromMatrix(
    Matrix skills, uint64_t version) {
  return std::shared_ptr<const SkillMatrixSnapshot>(
      new SkillMatrixSnapshot(std::move(skills), version));
}

std::shared_ptr<const SkillMatrixSnapshot>
SkillMatrixSnapshot::WithUpdatedRows(
    const std::vector<std::pair<WorkerId, Vector>>& rows) const {
  Matrix next = skills_;
  // The blocked scan view rides along copy-on-write too: only the
  // touched lanes are re-encoded (fp panel entries, int8 codes, and the
  // worker's quantization scale), not the whole pool.
  kernels::BlockedPanels next_panels = panels_;
  for (const auto& [w, lambda] : rows) {
    CS_CHECK(w < next.rows()) << "unknown worker " << w;
    CS_CHECK(lambda.size() == next.cols()) << "skill dimension mismatch";
    double* row = next.RowPtr(w);
    for (size_t d = 0; d < next.cols(); ++d) row[d] = lambda[d];
    next_panels.ReencodeRow(w, row);
  }
  return std::shared_ptr<const SkillMatrixSnapshot>(new SkillMatrixSnapshot(
      std::move(next), std::move(next_panels), version_ + 1));
}

void SnapshotHandle::Publish(
    std::shared_ptr<const SkillMatrixSnapshot> snapshot) {
  static obs::Counter* publishes =
      obs::MetricsRegistry::Global().GetCounter("serve.snapshot.publishes");
  static obs::Gauge* version =
      obs::MetricsRegistry::Global().GetGauge("serve.snapshot.version");
  publishes->Increment();
  if (snapshot) version->Set(static_cast<double>(snapshot->version()));
  // cs:lock(serve.skills)
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(snapshot);
}

std::shared_ptr<const SkillMatrixSnapshot> SnapshotHandle::Acquire() const {
  // cs:lock(serve.skills)
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

}  // namespace crowdselect::serve
