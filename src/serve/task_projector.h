// The fold-in seam between the serving engine and a crowd model: a
// TaskProjector maps an incoming task's bag-of-words to the latent
// vector the model ranks against. TDPM's conjugate-gradient fold-in
// (model/fold_in.h) is one implementation; the Dawid-Skene backend's
// task-type similarity projection is another. The engine caches the
// Posterior() part (deterministic, expensive) and applies
// FinalizeCategory() per query, exactly as it always did for TDPM.
#ifndef CROWDSELECT_SERVE_TASK_PROJECTOR_H_
#define CROWDSELECT_SERVE_TASK_PROJECTOR_H_

#include <utility>

#include "model/fold_in.h"
#include "text/bag_of_words.h"
#include "util/rng.h"

namespace crowdselect::serve {

/// Abstract fold-in projector. Implementations must be immutable after
/// construction: any number of query threads call the const methods
/// concurrently.
class TaskProjector {
 public:
  virtual ~TaskProjector() = default;

  /// Deterministic posterior of the task's latent vector (`lambda`,
  /// `nu_sq` filled; `category` left empty). This is what the fold-in
  /// cache stores.
  virtual FoldInResult Posterior(const BagOfWords& bag) const = 0;

  /// Sets `result->category` from the cached posterior — sampling it
  /// (given an rng) when the model samples, else the posterior mean.
  virtual void FinalizeCategory(FoldInResult* result, Rng* rng) const = 0;

  /// Whether FinalizeCategory samples the category (surfaced in EXPLAIN).
  virtual bool samples_category() const { return false; }

  /// Dimensionality of the projected latent space (must match the
  /// published snapshot's num_categories()).
  virtual size_t num_categories() const = 0;
};

/// TDPM's projector: delegates to the conjugate-gradient TaskFolder.
/// This is a pure forwarding wrapper, so the TDPM serving path computes
/// bit-identical posteriors to the pre-interface code.
class TdpmFolderProjector final : public TaskProjector {
 public:
  explicit TdpmFolderProjector(TaskFolder folder)
      : folder_(std::move(folder)) {}

  FoldInResult Posterior(const BagOfWords& bag) const override {
    return folder_.Posterior(bag);
  }
  void FinalizeCategory(FoldInResult* result, Rng* rng) const override {
    folder_.FinalizeCategory(result, rng);
  }
  bool samples_category() const override { return folder_.samples_category(); }
  size_t num_categories() const override { return folder_.num_categories(); }

  const TaskFolder& folder() const { return folder_; }

 private:
  TaskFolder folder_;
};

}  // namespace crowdselect::serve

#endif  // CROWDSELECT_SERVE_TASK_PROJECTOR_H_
