// Immutable skill-matrix snapshots for the serving path (paper §6),
// held in two physical forms built together at snapshot-publish time:
//
//  * a row-major `num_workers x K` matrix — the introspection view
//    (EXPLAIN score decomposition, RowPtr/RowCopy, model write-back);
//  * blocked column panels (serve/kernels/score_kernel.h) — the scan
//    view the ScoreKernels stream, kPanelWidth workers interleaved per
//    dimension and padded to the tile width, plus the int8 quantized
//    variant (codes + per-worker scales) for bandwidth-bound pools.
//
// Snapshots are published copy-on-write through a SnapshotHandle: the
// crowd-manager / dispatcher thread builds the next version (a full
// rebuild after batch EM, or WithUpdatedRows() after incremental skill
// updates — which re-encodes the touched panel lanes, fp and int8
// both) and swaps it in while concurrent SelectTopK readers finish on
// the shared_ptr they already acquired — readers never block writers and
// never observe a half-written matrix.
#ifndef CROWDSELECT_SERVE_SKILL_MATRIX_H_
#define CROWDSELECT_SERVE_SKILL_MATRIX_H_

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "crowddb/records.h"
#include "linalg/matrix.h"
#include "model/tdpm_params.h"
#include "model/variational.h"
#include "serve/kernels/score_kernel.h"

namespace crowdselect::serve {

/// Immutable, contiguous view of every worker's latent skill vector.
/// Construction is the only mutation; all accessors are const and safe to
/// call from any number of threads without synchronization.
class SkillMatrixSnapshot {
 public:
  /// Flattens per-worker posteriors (batch EM state, a loaded model
  /// snapshot, or IncrementalSkillUpdater output) into a snapshot.
  static std::shared_ptr<const SkillMatrixSnapshot> FromPosteriors(
      const std::vector<WorkerPosterior>& workers, uint64_t version = 1);

  /// Convenience wrapper over a Fit() result.
  static std::shared_ptr<const SkillMatrixSnapshot> FromFit(
      const TdpmFitResult& fit, uint64_t version = 1);

  /// Adopts an already row-major `num_workers x K` matrix (synthetic
  /// benches, external model stores).
  static std::shared_ptr<const SkillMatrixSnapshot> FromMatrix(
      Matrix skills, uint64_t version = 1);

  /// Copy-on-write update: a new snapshot (version + 1) with the given
  /// rows replaced. The receiver is unchanged; concurrent readers of it
  /// are unaffected. Row vectors must have K entries and valid ids.
  std::shared_ptr<const SkillMatrixSnapshot> WithUpdatedRows(
      const std::vector<std::pair<WorkerId, Vector>>& rows) const;

  size_t num_workers() const { return skills_.rows(); }
  size_t num_categories() const { return skills_.cols(); }
  /// Monotonic publish generation, for tests and the serve.snapshot
  /// version gauge.
  uint64_t version() const { return version_; }

  /// Borrowed pointer to worker w's K skill values.
  const double* RowPtr(WorkerId w) const { return skills_.RowPtr(w); }

  /// Predictive performance w_i . c_j (Eq. 1) against a category vector.
  double Score(WorkerId w, const Vector& category) const {
    return DotSpan(skills_.RowPtr(w), category.raw(), skills_.cols());
  }

  /// Row copy (tests / diagnostics).
  Vector RowCopy(WorkerId w) const { return skills_.Row(w); }

  /// The blocked scan view (full-precision panels + int8 variant),
  /// built once at construction and immutable thereafter.
  const kernels::BlockedPanels& panels() const { return panels_; }

  /// Physical-layout fingerprint (panel width, encoding version, dims);
  /// mixed into fold-in cache namespaces so entries keyed under a
  /// different layout generation can never be served.
  uint64_t layout_signature() const { return panels_.Signature(); }

 private:
  SkillMatrixSnapshot(Matrix skills, uint64_t version)
      : skills_(std::move(skills)),
        panels_(kernels::BlockedPanels::Build(skills_)),
        version_(version) {}
  /// Copy-on-write fast path: adopts already re-encoded panels instead
  /// of rebuilding them from scratch.
  SkillMatrixSnapshot(Matrix skills, kernels::BlockedPanels panels,
                      uint64_t version)
      : skills_(std::move(skills)),
        panels_(std::move(panels)),
        version_(version) {}

  Matrix skills_;
  kernels::BlockedPanels panels_;
  uint64_t version_;
};

/// Publication slot for the current snapshot. Publish() and Acquire()
/// exchange a shared_ptr under a short critical section (pointer copy
/// only); queries then scan their acquired snapshot entirely lock-free.
class SnapshotHandle {
 public:
  /// Atomically replaces the current snapshot. Also bumps the
  /// serve.snapshot.publishes counter / version gauge.
  void Publish(std::shared_ptr<const SkillMatrixSnapshot> snapshot);

  /// The snapshot as of now (nullptr before the first Publish). The
  /// returned pointer keeps its matrix alive even if a newer version is
  /// published mid-query.
  std::shared_ptr<const SkillMatrixSnapshot> Acquire() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const SkillMatrixSnapshot> current_;
};

}  // namespace crowdselect::serve

#endif  // CROWDSELECT_SERVE_SKILL_MATRIX_H_
