// Request-scoped query introspection (the EXPLAIN machinery): a
// QueryStats passed into SelectionEngine::SelectTopK collects everything
// one crowd-selection query did — which snapshot version it scanned,
// whether the fold-in cache hit, how many CG iterations the fold-in
// cost, per-stage latencies, and the per-candidate score decomposition
// w_i . c_j for the returned top-k with ranking margins.
//
// Collection is strictly additive: a query run with stats attached
// returns the byte-identical ranking of the same query without (the
// engine scans one extra rank internally to learn the cutoff score, and
// deterministic tie-breaking makes the prefix identical).
#ifndef CROWDSELECT_SERVE_QUERY_STATS_H_
#define CROWDSELECT_SERVE_QUERY_STATS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "crowddb/selector_interface.h"

namespace crowdselect::serve {

/// One returned candidate with its score decomposed per latent category.
struct CandidateBreakdown {
  WorkerId worker = kInvalidWorkerId;
  double score = 0.0;
  /// terms[d] = w_i[d] * c_j[d]; sums to `score` (up to rounding).
  std::vector<double> terms;
  /// Lead over the next rank (the cutoff score for the last kept rank,
  /// when a cutoff is known; 0 otherwise).
  double margin = 0.0;
};

/// How the TaskTypeRouter (serve/router.h) dispatched one query. Empty
/// (`routed == false`) for queries served by a single model directly.
struct RouteStats {
  bool routed = false;
  std::string mode;          ///< "fixed", "similarity", or "ensemble".
  std::string chosen_model;  ///< Registry id of the model that served.
  /// Cosine similarity of the task against the chosen model's centroid,
  /// and its lead over the runner-up centroid.
  double similarity = 0.0;
  double margin = 0.0;
  /// True when the task matched no centroid (empty bag / zero overlap)
  /// and the router fell back to its fixed default model.
  bool fallback = false;
  /// Ensemble mode only: per-member reciprocal-rank-fusion weights,
  /// in member order.
  std::vector<std::pair<std::string, double>> ensemble_weights;
};

/// Everything the serving path recorded for one query.
struct QueryStats {
  // --- Serving model -------------------------------------------------------
  /// Registry id of the model whose engine ranked this query ("tdpm",
  /// "dawid_skene", ...). Filled by the engine from its configured id.
  std::string serving_model;
  /// Router dispatch decision, when a router sat in front of the model.
  RouteStats route;

  // --- Plan shape ----------------------------------------------------------
  uint64_t snapshot_version = 0;
  size_t num_workers = 0;     ///< Snapshot rows.
  size_t num_categories = 0;  ///< Latent dimensionality K.
  size_t num_candidates = 0;  ///< Validated candidate-set size.
  size_t k = 0;               ///< Requested ranks.
  bool parallel_scan = false; ///< Blocked pool scan vs. inline scan.

  // --- Score kernel --------------------------------------------------------
  /// ScoreKernel the engine dispatched at construction ("scalar",
  /// "avx2", "neon"). Set for every snapshot-backed query, including
  /// sparse ones (the sparse path scores through the kernel's lane
  /// chain, so the id still names the arithmetic that ran).
  std::string kernel_id;
  /// Snapshot variant the scan streamed: "fp64", or "int8" when the
  /// quantized phase-1 scan + full-precision rescore served the query.
  std::string quant;
  /// int8 only: phase-1 candidate multiplier (0 when quant == "fp64").
  size_t oversample = 0;
  /// int8 only: candidates rescored with the full-precision chain.
  size_t rescored = 0;

  // --- Fold-in -------------------------------------------------------------
  bool used_foldin = false;   ///< False for RankByCategory-style queries.
  bool cache_hit = false;
  /// CG cost of the solve that produced the served posterior. On a cache
  /// hit this is the *cached entry's* original cost (nothing was solved
  /// for this query); `cache_hit` disambiguates.
  int cg_iterations = 0;
  double cg_residual = 0.0;
  bool sampled_category = false;  ///< c_j sampled vs. posterior mean.

  // --- Latencies (microseconds) -------------------------------------------
  double foldin_us = 0.0;
  double scan_us = 0.0;
  double total_us = 0.0;

  // --- Ranking -------------------------------------------------------------
  /// The returned ranking, decomposed. breakdown.size() == result size.
  std::vector<CandidateBreakdown> breakdown;
  /// Score of the best candidate *not* selected (rank k+1), when the
  /// candidate set had one; the last kept rank's margin is measured
  /// against it.
  double cutoff_score = 0.0;
  bool has_cutoff = false;

  /// Machine-readable form (one self-contained JSON document).
  std::string ToJson() const;
  /// Human-readable EXPLAIN plan, `top_terms` strongest per-category
  /// contributions listed per candidate (0 = none).
  std::string ToText(size_t top_terms = 3) const;
};

}  // namespace crowdselect::serve

#endif  // CROWDSELECT_SERVE_QUERY_STATS_H_
