// The serving engine behind crowd-selection queries (paper §6,
// Algorithm 3, run online): fold the task into the latent space (through
// a bounded LRU cache), then rank candidates against an immutable
// skill-matrix snapshot with a blocked, thread-pool-parallel scan merged
// through per-shard top-k accumulators.
//
// The scan itself is a SIMD-dispatched ScoreKernel (serve/kernels/):
// dense candidate ranges stream the snapshot's column panels through
// the scalar / AVX2 / NEON kernel picked at engine construction, with
// an optional int8 phase-1 scan + full-precision rescore
// (ServeOptions::quant). Kernel choice never changes a ranking — every
// kernel computes the bitwise-identical lane chain (see
// serve/kernels/score_kernel.h for the determinism contract).
//
// The engine is model-agnostic: the fold-in step goes through the
// TaskProjector seam (serve/task_projector.h), so TDPM's CG fold-in and
// the Dawid-Skene type-similarity projection serve through the same
// cache, scan, and EXPLAIN machinery.
//
// Threading model: any number of query threads may call SelectTopK /
// RankByCategory / RankWithScore concurrently; one updater thread may
// concurrently PublishSnapshot(). Queries pin the snapshot they acquired,
// so a publish never invalidates an in-flight scan. SetProjector() /
// SetFolder() are initialization, not serving — call them before queries
// start.
#ifndef CROWDSELECT_SERVE_SELECTION_ENGINE_H_
#define CROWDSELECT_SERVE_SELECTION_ENGINE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "crowddb/selector_interface.h"
#include "model/fold_in.h"
#include "serve/foldin_cache.h"
#include "serve/query_stats.h"
#include "serve/skill_matrix.h"
#include "serve/task_projector.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace crowdselect::serve {

/// Which snapshot variant the dense scan streams.
enum class ScanQuant {
  /// Full-precision (fp64) blocked panels; scores are exact.
  kFp64 = 0,
  /// int8 symmetric per-worker codes for the phase-1 scan, then the top
  /// k * oversample candidates rescored with the full-precision chain
  /// before the final merge. 8x less memory traffic on the hot scan.
  kInt8 = 1,
};

/// Serving knobs, orthogonal to the model's TdpmOptions.
struct ServeOptions {
  /// Scan worker threads (0 = hardware concurrency). The pool is created
  /// lazily on the first scan that is large enough to parallelize, so
  /// engines serving small pools never spawn threads.
  size_t num_threads = 0;
  /// Fold-in cache entries; 0 disables the cache.
  size_t foldin_cache_capacity = 256;
  /// Candidate sets smaller than this are scanned inline on the query
  /// thread — below it, handing work to the pool costs more than the
  /// scan itself.
  size_t min_parallel_candidates = 4096;
  /// Candidates per parallel chunk (the grain of the blocked scan).
  size_t scan_block = 2048;
  /// Watchdog deadline for one SelectTopK call, in milliseconds; a
  /// query open longer than this is reported as a stall. Armed only
  /// while obs::Watchdog::Global() is running; <= 0 disables arming.
  double select_deadline_ms = 1000.0;
  /// Snapshot variant for dense full-pool scans. Sparse candidate
  /// subsets always score full-precision (they are gather-bound, not
  /// bandwidth-bound, so int8 buys nothing there).
  ScanQuant quant = ScanQuant::kFp64;
  /// int8 only: phase-1 candidate multiplier. The top k * oversample
  /// approximate ranks are rescored in full precision before the final
  /// merge; 4 recovers the exact fp64 top-k on the canonical workload.
  size_t oversample = 4;
  /// Pins the scalar reference kernel regardless of CPU features. The
  /// CROWDSELECT_FORCE_SCALAR environment variable (read at engine
  /// construction) does the same without a rebuild.
  bool force_scalar_kernel = false;
};

/// Lock-free-read serving engine over one published skill snapshot.
class SelectionEngine {
 public:
  explicit SelectionEngine(ServeOptions options = {});

  SelectionEngine(const SelectionEngine&) = delete;
  SelectionEngine& operator=(const SelectionEngine&) = delete;

  // --- Model lifecycle -----------------------------------------------------

  /// Swaps in a new skill snapshot; concurrent readers finish on the old
  /// version. Publishing nullptr takes the engine out of service.
  void PublishSnapshot(std::shared_ptr<const SkillMatrixSnapshot> snapshot);

  /// Current snapshot (nullptr before the first publish).
  std::shared_ptr<const SkillMatrixSnapshot> snapshot() const {
    return handle_.Acquire();
  }

  /// Attaches the fold-in projector; required for SelectTopK/Project.
  /// `model_id` names the owning model in EXPLAIN output and seeds the
  /// fold-in cache namespace. Replacing the projector (e.g. after a
  /// batch retrain) moves the cache to a fresh namespace AND clears it,
  /// so cached posteriors of the previous model can never be served.
  void SetProjector(std::unique_ptr<const TaskProjector> projector,
                    const std::string& model_id);

  /// TDPM convenience: wraps `folder` in a TdpmFolderProjector under
  /// model id "tdpm". The wrapper forwards verbatim, so this path is
  /// bit-identical to the pre-interface engine.
  void SetFolder(TaskFolder folder) {
    SetProjector(
        std::make_unique<TdpmFolderProjector>(std::move(folder)), "tdpm");
  }

  bool has_projector() const { return projector_ != nullptr; }
  bool has_folder() const { return has_projector(); }
  const TaskProjector* projector() const { return projector_.get(); }
  const std::string& model_id() const { return model_id_; }
  /// Cache namespace of the current projector (model id + generation).
  uint64_t cache_namespace() const { return cache_namespace_; }

  // --- Queries -------------------------------------------------------------

  /// Full crowd-selection query: validates candidates against the
  /// snapshot up front (an unknown candidate fails before any fold-in
  /// work and before the query is metered), projects the task through
  /// the fold-in cache, and ranks by w_i . c_j.
  ///
  /// When `stats` is non-null the query additionally records its EXPLAIN
  /// payload (snapshot version, cache hit, CG cost, stage latencies,
  /// score decomposition) into it. The returned ranking is byte-identical
  /// with and without stats; collecting the cutoff score scans one extra
  /// rank internally.
  Result<std::vector<RankedWorker>> SelectTopK(
      const BagOfWords& task, size_t k, const std::vector<WorkerId>& candidates,
      Rng* rng = nullptr, QueryStats* stats = nullptr) const;

  /// Ranks candidates against an explicit category vector (fold-in
  /// already done by the caller).
  Result<std::vector<RankedWorker>> RankByCategory(
      const Vector& category, size_t k,
      const std::vector<WorkerId>& candidates) const;

  /// Blocked parallel top-k over an arbitrary score function — the scan
  /// shared with the baseline selectors (VSM cosine etc.). Candidates
  /// must already be validated by the caller. Deterministic: the merged
  /// result is identical to a sequential scan for any shard split.
  std::vector<RankedWorker> RankWithScore(
      size_t k, const std::vector<WorkerId>& candidates,
      const std::function<double(WorkerId)>& score) const;

  /// Projects a task through the fold-in cache (posterior cached;
  /// sampling, when configured, applied per call). Exposed for benches
  /// and for TdpmSelector::ProjectTask. With `stats`, records the cache
  /// outcome and CG cost of the served posterior.
  Result<FoldInResult> Project(const BagOfWords& task, Rng* rng = nullptr,
                               QueryStats* stats = nullptr) const;

  FoldInCache* cache() const { return cache_.get(); }
  const ServeOptions& options() const { return options_; }
  /// The ScoreKernel runtime dispatch chose at construction ("scalar",
  /// "avx2", "neon"); surfaced in EXPLAIN and the serve.kernel gauge.
  const kernels::ScoreKernel& kernel() const { return *kernel_; }

 private:
  ThreadPool* pool() const;
  /// The blocked scan, templated on the score callable so the snapshot
  /// path inlines the lane chain instead of paying a std::function call
  /// per candidate. Instantiated only in the .cc.
  template <typename ScoreFn>
  std::vector<RankedWorker> RankImpl(size_t k,
                                     const std::vector<WorkerId>& candidates,
                                     const ScoreFn& score) const;
  /// Dense-range panel scan: candidates form the contiguous id range
  /// [first, first + count) and are scored panel-by-panel through the
  /// dispatched kernel (int8 when `int8_phase` — scores are then the
  /// approximate phase-1 values).
  std::vector<RankedWorker> ScanPanels(const SkillMatrixSnapshot& snap,
                                       const double* query, size_t k,
                                       WorkerId first, size_t count,
                                       bool int8_phase) const;
  std::vector<RankedWorker> ScanSnapshot(
      const SkillMatrixSnapshot& snap, const Vector& category, size_t k,
      const std::vector<WorkerId>& candidates,
      QueryStats* stats = nullptr) const;

  ServeOptions options_;
  /// Dispatched once at construction; stateless and shared.
  const kernels::ScoreKernel* kernel_;
  SnapshotHandle handle_;
  std::unique_ptr<const TaskProjector> projector_;
  std::string model_id_;
  /// Hash of (model id, projector generation, layout + quantization
  /// generation): entries written under an earlier projector — or under
  /// a different panel layout or scan-quantization configuration — live
  /// in a different namespace even before the accompanying Clear()
  /// lands.
  uint64_t cache_namespace_ = 0;
  uint64_t projector_generation_ = 0;
  std::unique_ptr<FoldInCache> cache_;
  mutable std::once_flag pool_once_;
  mutable std::unique_ptr<ThreadPool> pool_;
};

/// Returns InvalidArgument naming the first candidate id >= num_workers.
Status ValidateCandidates(const std::vector<WorkerId>& candidates,
                          size_t num_workers);

}  // namespace crowdselect::serve

#endif  // CROWDSELECT_SERVE_SELECTION_ENGINE_H_
