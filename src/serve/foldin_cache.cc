#include "serve/foldin_cache.h"

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace crowdselect::serve {

namespace {

struct CacheCounters {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
};

CacheCounters& Counters() {
  static CacheCounters counters{
      obs::MetricsRegistry::Global().GetCounter("serve.cache.hits"),
      obs::MetricsRegistry::Global().GetCounter("serve.cache.misses"),
      obs::MetricsRegistry::Global().GetCounter("serve.cache.evictions")};
  return counters;
}

void RecordCacheFlightEvent(obs::FlightEventType type, uint64_t ns,
                            uint64_t key) {
  static const uint16_t flight_name =
      obs::FlightRecorder::Global().InternName("serve.cache.lookup");
  obs::FlightRecorder::Global().Record(type, flight_name, key, ns);
}

uint64_t Fnv1aMix(uint64_t h, uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xFF;
    h *= 0x100000001B3ULL;  // FNV prime.
  }
  return h;
}

}  // namespace

uint64_t HashBag(const BagOfWords& bag) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis.
  for (const auto& e : bag.entries()) {
    h = Fnv1aMix(h, (static_cast<uint64_t>(e.term) << 32) | e.count);
  }
  return h;
}

uint64_t HashModelId(const std::string& model_id) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis.
  for (char c : model_id) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;  // FNV prime.
  }
  return h;
}

FoldInCache::FoldInCache(size_t capacity) : capacity_(capacity) {}

bool FoldInCache::Lookup(uint64_t ns, uint64_t key, FoldInResult* out) {
  // cs:lock(serve.foldin)
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) {
    ++misses_;
    Counters().misses->Increment();
    RecordCacheFlightEvent(obs::FlightEventType::kCacheMiss, ns, key);
    return false;
  }
  auto it = index_.find(Key{ns, key});
  if (it == index_.end()) {
    ++misses_;
    Counters().misses->Increment();
    RecordCacheFlightEvent(obs::FlightEventType::kCacheMiss, ns, key);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  out->lambda = it->second->lambda;
  out->nu_sq = it->second->nu_sq;
  out->category = Vector();
  // The solve cost travels with the posterior: a hit reports what its
  // entry originally cost, so EXPLAIN can show it without re-solving.
  out->cg_iterations = it->second->cg_iterations;
  out->cg_residual = it->second->cg_residual;
  ++hits_;
  Counters().hits->Increment();
  RecordCacheFlightEvent(obs::FlightEventType::kCacheHit, ns, key);
  return true;
}

void FoldInCache::Insert(uint64_t ns, uint64_t key, const FoldInResult& value) {
  if (capacity_ == 0) return;
  // cs:lock(serve.foldin)
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(Key{ns, key});
  if (it != index_.end()) {
    it->second->lambda = value.lambda;
    it->second->nu_sq = value.nu_sq;
    it->second->cg_iterations = value.cg_iterations;
    it->second->cg_residual = value.cg_residual;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    Counters().evictions->Increment();
  }
  lru_.push_front(
      Entry{Key{ns, key}, value.lambda, value.nu_sq, value.cg_iterations,
            value.cg_residual});
  index_[Key{ns, key}] = lru_.begin();
}

void FoldInCache::Clear() {
  // cs:lock(serve.foldin)
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t FoldInCache::size() const {
  // cs:lock(serve.foldin)
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t FoldInCache::hits() const {
  // cs:lock(serve.foldin)
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t FoldInCache::misses() const {
  // cs:lock(serve.foldin)
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t FoldInCache::evictions() const {
  // cs:lock(serve.foldin)
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace crowdselect::serve
