// Umbrella header for the crowdselect library: task-driven crowd-selection
// query processing (EDBT 2015 reproduction).
//
// Quickstart:
//   CrowdDatabase db;                       // the crowdsourcing database
//   ... insert workers / tasks / feedback ...
//   auto manager = CrowdManager(&db,
//       std::make_unique<TdpmSelector>(TdpmOptions{.num_categories = 10}));
//   manager.InferCrowdModel();              // Algorithm 2
//   auto crowd = manager.SelectCrowd(task_bag, /*k=*/3);  // Algorithm 3
#ifndef CROWDSELECT_CROWDSELECT_CROWDSELECT_H_
#define CROWDSELECT_CROWDSELECT_CROWDSELECT_H_

#include "baselines/drm.h"    // IWYU pragma: export
#include "baselines/lda.h"    // IWYU pragma: export
#include "baselines/plsa.h"   // IWYU pragma: export
#include "baselines/tspm.h"   // IWYU pragma: export
#include "baselines/vsm.h"    // IWYU pragma: export
#include "crowddb/crowd_database.h"      // IWYU pragma: export
#include "crowddb/crowd_manager.h"       // IWYU pragma: export
#include "crowddb/dispatcher.h"          // IWYU pragma: export
#include "crowddb/import_export.h"       // IWYU pragma: export
#include "crowddb/jsonl.h"               // IWYU pragma: export
#include "crowddb/online_pool.h"         // IWYU pragma: export
#include "crowddb/persistence.h"         // IWYU pragma: export
#include "crowddb/selector_interface.h"  // IWYU pragma: export
#include "crowddb/sharded_store.h"       // IWYU pragma: export
#include "crowddb/storage_engine.h"      // IWYU pragma: export
#include "crowddb/store_interface.h"     // IWYU pragma: export
#include "crowddb/wal.h"                 // IWYU pragma: export
#include "datagen/groups.h"         // IWYU pragma: export
#include "datagen/heterogeneous.h"  // IWYU pragma: export
#include "datagen/platform.h"       // IWYU pragma: export
#include "datagen/world.h"          // IWYU pragma: export
#include "eval/bootstrap.h"    // IWYU pragma: export
#include "eval/experiment.h"   // IWYU pragma: export
#include "eval/model_selection.h"  // IWYU pragma: export
#include "eval/metrics.h"      // IWYU pragma: export
#include "eval/reporter.h"     // IWYU pragma: export
#include "eval/split.h"        // IWYU pragma: export
#include "model/capacity_routing.h"  // IWYU pragma: export
#include "model/crowd_model.h"       // IWYU pragma: export
#include "model/dawid_skene.h"       // IWYU pragma: export
#include "model/task_clustering.h"   // IWYU pragma: export
#include "model/exploration.h" // IWYU pragma: export
#include "model/fold_in.h"     // IWYU pragma: export
#include "model/incremental_update.h"  // IWYU pragma: export
#include "model/generative.h"  // IWYU pragma: export
#include "model/model_io.h"    // IWYU pragma: export
#include "model/selection.h"   // IWYU pragma: export
#include "model/variational.h" // IWYU pragma: export
#include "obs/alerts.h"         // IWYU pragma: export
#include "obs/metrics.h"        // IWYU pragma: export
#include "obs/stats_reporter.h" // IWYU pragma: export
#include "obs/timeseries.h"     // IWYU pragma: export
#include "obs/trace.h"          // IWYU pragma: export
#include "obs/window.h"         // IWYU pragma: export
#include "serve/foldin_cache.h"      // IWYU pragma: export
#include "serve/quality_monitor.h"   // IWYU pragma: export
#include "serve/router.h"            // IWYU pragma: export
#include "serve/selection_engine.h"  // IWYU pragma: export
#include "serve/skill_matrix.h"      // IWYU pragma: export
#include "serve/store_snapshot.h"    // IWYU pragma: export
#include "util/timer.h"        // IWYU pragma: export

#endif  // CROWDSELECT_CROWDSELECT_CROWDSELECT_H_
