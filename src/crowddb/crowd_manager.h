// Crowd manager (paper Fig. 1, §2): the core orchestration component. It
// drives the crowd storage engine and an attached selection algorithm,
// runs latent skill inference over resolved tasks (red path) and serves
// incoming tasks by projecting them into the latent space and ranking
// online workers (blue path).
#ifndef CROWDSELECT_CROWDDB_CROWD_MANAGER_H_
#define CROWDSELECT_CROWDDB_CROWD_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "crowddb/crowd_database.h"
#include "crowddb/dispatcher.h"
#include "crowddb/online_pool.h"
#include "crowddb/selector_interface.h"
#include "crowddb/store_interface.h"

namespace crowdselect {

/// End-to-end crowdsourcing pipeline: submit task -> select crowd ->
/// dispatch -> collect answers -> record feedback -> (periodically)
/// re-infer the crowd model.
class CrowdManager {
 public:
  /// `store` must outlive the manager. `selector` is the attached
  /// crowd-selection algorithm (TDPM in production; baselines for study).
  /// Training reads a consistent frozen view of the store, so against the
  /// sharded engine it never blocks on (or races) concurrent writers
  /// beyond the materialization cut.
  CrowdManager(CrowdStore* store, std::unique_ptr<CrowdSelector> selector);

  /// Legacy embedding over a bare CrowdDatabase (`db` must outlive the
  /// manager).
  CrowdManager(CrowdDatabase* db, std::unique_ptr<CrowdSelector> selector);

  /// Runs (or re-runs) latent skill inference over all resolved tasks.
  Status InferCrowdModel();

  /// True once InferCrowdModel() has succeeded at least once.
  bool trained() const { return trained_; }

  /// Selects the top-k online workers for an incoming task. Does not
  /// mutate the database.
  Result<std::vector<RankedWorker>> SelectCrowd(const BagOfWords& task,
                                                size_t k) const;

  /// Full blue path: insert the task, select k online workers, dispatch,
  /// and record feedback via the supplied dispatcher.
  Result<std::vector<Answer>> ProcessTask(std::string text, size_t k,
                                          TaskDispatcher* dispatcher);

  OnlineWorkerPool* online_pool() { return &pool_; }
  const OnlineWorkerPool& online_pool() const { return pool_; }
  CrowdStore* store() { return store_; }
  /// The underlying database when constructed over one; nullptr for
  /// engine-backed managers.
  CrowdDatabase* db() { return db_; }
  const CrowdSelector& selector() const { return *selector_; }

  /// Re-infer after this many newly resolved tasks (0 disables auto
  /// re-training; ProcessTask then only folds in).
  void set_retrain_interval(size_t n) { retrain_interval_ = n; }

  /// When enabled, ProcessTask feeds each resolved task's scores back to
  /// the selector via ObserveResolvedTask (paper §4.2's incremental skill
  /// refresh) so serving reflects feedback between batch retrains.
  void set_live_skill_updates(bool enabled) { live_skill_updates_ = enabled; }

  /// Attaches a shadow-evaluation tap (nullptr detaches). ProcessTask
  /// calls it with each task's prediction and realized feedback BEFORE
  /// any fold-in, so the observer always scores the model on unseen
  /// data. The observer must outlive the manager (or be detached first).
  void set_resolved_observer(ResolvedTaskObserver* observer) {
    resolved_observer_ = observer;
  }

 private:
  std::unique_ptr<CrowdDatabaseStore> owned_adapter_;  ///< Legacy ctor only.
  CrowdStore* store_;
  CrowdDatabase* db_ = nullptr;  ///< Set by the legacy constructor.
  std::unique_ptr<CrowdSelector> selector_;
  OnlineWorkerPool pool_;
  bool trained_ = false;
  size_t retrain_interval_ = 0;
  size_t resolved_since_training_ = 0;
  bool live_skill_updates_ = false;
  ResolvedTaskObserver* resolved_observer_ = nullptr;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_CROWDDB_CROWD_MANAGER_H_
