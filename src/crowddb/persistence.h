// Binary save/load of an entire CrowdDatabase (magic "CSDB", versioned).
#ifndef CROWDSELECT_CROWDDB_PERSISTENCE_H_
#define CROWDSELECT_CROWDDB_PERSISTENCE_H_

#include <string>

#include "crowddb/crowd_database.h"
#include "util/status.h"

namespace crowdselect {

class CrowdDatabasePersistence {
 public:
  static constexpr uint32_t kMagic = 0x42445343;  // "CSDB" little-endian.
  static constexpr uint32_t kVersion = 1;

  /// Serializes `db` into `writer`.
  static void Save(const CrowdDatabase& db, BinaryWriter* writer);

  /// Writes `db` to `path` atomically.
  static Status SaveToFile(const CrowdDatabase& db, const std::string& path);

  /// Deserializes a database; rebuilds all secondary indexes.
  static Result<CrowdDatabase> Load(BinaryReader* reader);

  static Result<CrowdDatabase> LoadFromFile(const std::string& path);
};

}  // namespace crowdselect

#endif  // CROWDSELECT_CROWDDB_PERSISTENCE_H_
