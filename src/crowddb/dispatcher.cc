#include "crowddb/dispatcher.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace crowdselect {

Result<std::vector<Answer>> TaskDispatcher::Dispatch(
    TaskId task, const std::vector<RankedWorker>& selected) {
  static obs::SpanMeter meter("dispatch.task");
  static obs::Counter* tasks_counter =
      obs::MetricsRegistry::Global().GetCounter("dispatch.tasks");
  static obs::Counter* answers_counter =
      obs::MetricsRegistry::Global().GetCounter("dispatch.answers");
  static obs::Histogram* feedback_scores =
      obs::MetricsRegistry::Global().GetHistogram("dispatch.feedback_score",
                                                  obs::ScoreBucketBounds());
  obs::ScopedSpan span(meter);

  // A copy, not a borrowed pointer: against the sharded engine the record
  // has no stable address while concurrent writers run.
  CS_ASSIGN_OR_RETURN(const TaskRecord rec, store_->GetTaskCopy(task));
  std::vector<Answer> answers;
  answers.reserve(selected.size());
  for (const RankedWorker& rw : selected) {
    CS_RETURN_NOT_OK(store_->Assign(rw.worker, task));
    Answer ans;
    ans.worker = rw.worker;
    ans.text = answer_fn_(rw.worker, rec);
    ans.score = feedback_fn_(rw.worker, rec, ans.text);
    CS_RETURN_NOT_OK(store_->RecordFeedback(rw.worker, task, ans.score));
    feedback_scores->Record(ans.score);
    answers.push_back(std::move(ans));
    ++answers_collected_;
    answers_counter->Increment();
  }
  ++tasks_dispatched_;
  tasks_counter->Increment();
  return answers;
}

}  // namespace crowdselect
