#include "crowddb/dispatcher.h"

namespace crowdselect {

Result<std::vector<Answer>> TaskDispatcher::Dispatch(
    TaskId task, const std::vector<RankedWorker>& selected) {
  CS_ASSIGN_OR_RETURN(const TaskRecord* rec, db_->GetTask(task));
  std::vector<Answer> answers;
  answers.reserve(selected.size());
  for (const RankedWorker& rw : selected) {
    CS_RETURN_NOT_OK(db_->Assign(rw.worker, task));
    Answer ans;
    ans.worker = rw.worker;
    ans.text = answer_fn_(rw.worker, *rec);
    const double score = feedback_fn_(rw.worker, *rec, ans.text);
    CS_RETURN_NOT_OK(db_->RecordFeedback(rw.worker, task, score));
    answers.push_back(std::move(ans));
    ++answers_collected_;
  }
  ++tasks_dispatched_;
  return answers;
}

}  // namespace crowdselect
