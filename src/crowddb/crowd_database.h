// The crowd database from the paper's Fig. 1: stores workers, tasks, the
// sparse assignment matrix A with feedback scores S, and the crowd model
// (worker skills / task categories), supporting crowd insertion, crowd
// update and crowd retrieval.
#ifndef CROWDSELECT_CROWDDB_CROWD_DATABASE_H_
#define CROWDSELECT_CROWDDB_CROWD_DATABASE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "crowddb/records.h"
#include "text/vocabulary.h"
#include "util/status.h"

namespace crowdselect {

/// In-memory crowd database with secondary indexes by worker and by task.
/// Single-writer; concurrent readers are safe once loading/ingest finished.
class CrowdDatabase {
 public:
  CrowdDatabase() = default;

  // --- Crowd insertion -----------------------------------------------------

  /// Inserts a worker; assigns and returns its dense id.
  WorkerId AddWorker(std::string handle, bool online = true);

  /// Inserts a task from raw text; tokenizes into the shared vocabulary.
  TaskId AddTask(std::string text);

  /// Inserts a task with a pre-built bag (workload generators).
  TaskId AddTaskWithBag(std::string text, BagOfWords bag);

  /// Records that `task` was assigned to `worker` (a_ij = 1). Idempotent.
  Status Assign(WorkerId worker, TaskId task);

  /// Records the feedback score s_ij for an existing assignment and marks
  /// the task resolved.
  Status RecordFeedback(WorkerId worker, TaskId task, double score);

  // --- Crowd update --------------------------------------------------------

  /// Replaces worker w's latent skill vector. The first non-empty skills
  /// or categories write fixes the database's latent dimension K; later
  /// writes of a different length fail with InvalidArgument (empty = "no
  /// model yet" stays allowed).
  Status UpdateWorkerSkills(WorkerId worker, std::vector<double> skills);

  /// Replaces task t's latent category vector (same K rule as skills).
  Status UpdateTaskCategories(TaskId task, std::vector<double> categories);

  /// Flips a worker's online flag.
  Status SetWorkerOnline(WorkerId worker, bool online);

  // --- Crowd retrieval ------------------------------------------------------

  size_t NumWorkers() const { return workers_.size(); }
  size_t NumTasks() const { return tasks_.size(); }
  size_t NumAssignments() const { return assignments_.size(); }
  /// Assignments that carry a feedback score.
  size_t NumScoredAssignments() const { return num_scored_; }

  Result<const WorkerRecord*> GetWorker(WorkerId id) const;
  Result<const TaskRecord*> GetTask(TaskId id) const;

  /// Assignment indexes of tasks assigned to `worker`.
  const std::vector<size_t>& AssignmentsOfWorker(WorkerId worker) const;
  /// Assignment indexes of workers assigned to `task`.
  const std::vector<size_t>& AssignmentsOfTask(TaskId task) const;
  const AssignmentRecord& assignment(size_t index) const {
    return assignments_[index];
  }
  const std::vector<AssignmentRecord>& assignments() const {
    return assignments_;
  }

  /// Feedback score s_ij; NotFound when unassigned or unscored.
  Result<double> GetScore(WorkerId worker, TaskId task) const;

  /// Number of *scored* tasks a worker has resolved (their participation
  /// count, used for the Quora_n / Yahoo_n / Stack_n groups).
  size_t ParticipationOf(WorkerId worker) const;

  /// All worker ids that are currently online.
  std::vector<WorkerId> OnlineWorkers() const;

  const std::vector<WorkerRecord>& workers() const { return workers_; }
  const std::vector<TaskRecord>& tasks() const { return tasks_; }

  /// Shared vocabulary for task text.
  const Vocabulary& vocabulary() const { return vocab_; }
  Vocabulary* mutable_vocabulary() { return &vocab_; }

  /// Latent dimension K fixed by the first non-empty skills/categories
  /// write; 0 while no latent vectors exist.
  size_t latent_dim() const { return latent_dim_; }

 private:
  std::vector<WorkerRecord> workers_;
  std::vector<TaskRecord> tasks_;
  std::vector<AssignmentRecord> assignments_;
  // (worker, task) -> index into assignments_.
  std::unordered_map<uint64_t, size_t> assignment_index_;
  std::vector<std::vector<size_t>> by_worker_;
  std::vector<std::vector<size_t>> by_task_;
  size_t num_scored_ = 0;
  size_t latent_dim_ = 0;
  Vocabulary vocab_;
  Tokenizer tokenizer_{TokenizerOptions{.remove_stopwords = true}};

  static uint64_t Key(WorkerId w, TaskId t) {
    return (static_cast<uint64_t>(w) << 32) | t;
  }

  /// Fixes/validates the latent dimension for a skills or categories
  /// write of `size` entries (0 = always legal).
  Status CheckLatentDim(const char* what, size_t size);

  friend class CrowdDatabasePersistence;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_CROWDDB_CROWD_DATABASE_H_
