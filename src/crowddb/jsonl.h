// JSON-Lines import/export for the crowd database — one flat JSON object
// per line, the common interchange format for crawled Q&A datasets. The
// encoder/decoder is written from scratch and deliberately minimal: flat
// objects with string / number / boolean / null values (no nesting), which
// is exactly what the three record types need.
//
// Record shapes:
//   workers:     {"handle": "...", "online": true}
//   tasks:       {"text": "..."}
//   assignments: {"worker_id": 3, "task_id": 7, "score": 4.0}
//                (omit "score" or use null for an unscored assignment)
#ifndef CROWDSELECT_CROWDDB_JSONL_H_
#define CROWDSELECT_CROWDDB_JSONL_H_

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <variant>

#include "crowddb/crowd_database.h"
#include "util/status.h"

namespace crowdselect {

namespace jsonl {

/// A flat JSON value: string, number, boolean or null.
using Value = std::variant<std::monostate, std::string, double, bool>;
/// A flat JSON object (one JSONL record).
using Object = std::map<std::string, Value>;

/// Escapes a string for inclusion in JSON output (quotes, backslashes,
/// control characters as \uXXXX).
std::string EscapeString(const std::string& s);

/// Serializes a flat object as a single JSON line (keys sorted — Object
/// is an ordered map — so output is deterministic).
std::string WriteObject(const Object& object);

/// Parses one JSONL record. Rejects nested arrays/objects, trailing
/// garbage, and malformed literals with InvalidArgument.
Result<Object> ParseObject(const std::string& line);

}  // namespace jsonl

/// Writers for the three record streams.
void ExportWorkersJsonl(const CrowdDatabase& db, std::ostream& os);
void ExportTasksJsonl(const CrowdDatabase& db, std::ostream& os);
void ExportAssignmentsJsonl(const CrowdDatabase& db, std::ostream& os);

/// Reads the three JSONL streams into a fresh database (ids by row order,
/// matching the exporters).
Result<CrowdDatabase> ImportDatabaseJsonl(std::istream& workers,
                                          std::istream& tasks,
                                          std::istream& assignments);

/// File-based convenience (workers.jsonl / tasks.jsonl /
/// assignments.jsonl under `directory`).
Status ExportDatabaseJsonlFiles(const CrowdDatabase& db,
                                const std::string& directory);
Result<CrowdDatabase> ImportDatabaseJsonlFiles(const std::string& directory);

}  // namespace crowdselect

#endif  // CROWDSELECT_CROWDDB_JSONL_H_
