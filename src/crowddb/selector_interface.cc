#include "crowddb/selector_interface.h"

#include <algorithm>

namespace crowdselect {

namespace {

// Heap ordering used as the comparator for std::push_heap, so the *worst*
// kept candidate sits at the front. A candidate is better when its score is
// higher, or equal-scored with a lower worker id.
bool BetterThan(const RankedWorker& a, const RankedWorker& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.worker < b.worker;
}

}  // namespace

void TopKAccumulator::Offer(WorkerId worker, double score) {
  if (k_ == 0) return;
  RankedWorker candidate{worker, score};
  if (heap_.size() < k_) {
    heap_.push_back(candidate);
    std::push_heap(heap_.begin(), heap_.end(), BetterThan);
    return;
  }
  if (BetterThan(candidate, heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), BetterThan);
    heap_.back() = candidate;
    std::push_heap(heap_.begin(), heap_.end(), BetterThan);
  }
}

std::vector<RankedWorker> TopKAccumulator::Take() {
  std::sort(heap_.begin(), heap_.end(), BetterThan);
  return std::move(heap_);
}

}  // namespace crowdselect
