#include "crowddb/jsonl.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/string_util.h"

namespace crowdselect {

namespace jsonl {

std::string EscapeString(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

std::string WriteObject(const Object& object) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : object) {
    if (!first) out += ", ";
    first = false;
    out += EscapeString(key);
    out += ": ";
    if (std::holds_alternative<std::monostate>(value)) {
      out += "null";
    } else if (const auto* s = std::get_if<std::string>(&value)) {
      out += EscapeString(*s);
    } else if (const auto* b = std::get_if<bool>(&value)) {
      out += *b ? "true" : "false";
    } else {
      const double d = std::get<double>(value);
      if (d == std::floor(d) && std::fabs(d) < 1e15) {
        out += StringPrintf("%.0f", d);
      } else {
        out += StringPrintf("%.17g", d);
      }
    }
  }
  out += "}";
  return out;
}

namespace {

// Minimal recursive-descent parser over one line.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Object> Parse() {
    SkipSpace();
    if (!Consume('{')) return Err("expected '{'");
    Object object;
    SkipSpace();
    if (Consume('}')) {
      CS_RETURN_NOT_OK(ExpectEnd());
      return object;
    }
    for (;;) {
      SkipSpace();
      std::string key;
      CS_RETURN_NOT_OK(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Err("expected ':'");
      SkipSpace();
      Value value;
      CS_RETURN_NOT_OK(ParseValue(&value));
      object[key] = std::move(value);
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Err("expected ',' or '}'");
    }
    CS_RETURN_NOT_OK(ExpectEnd());
    return object;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::InvalidArgument(
        StringPrintf("JSONL parse error at byte %zu: %s", pos_, what.c_str()));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectEnd() {
    SkipSpace();
    if (pos_ != text_.size()) return Err("trailing characters");
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Err("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += h - '0';
              else if (h >= 'a' && h <= 'f') code += h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') code += h - 'A' + 10;
              else return Err("bad \\u escape");
            }
            // ASCII only (sufficient for our own output); others become
            // '?' rather than UTF-8 to keep the parser small.
            *out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return Err("unknown escape");
        }
      } else {
        *out += c;
      }
    }
    return Err("unterminated string");
  }

  Status ParseValue(Value* out) {
    if (pos_ >= text_.size()) return Err("expected value");
    const char c = text_[pos_];
    if (c == '"') {
      std::string s;
      CS_RETURN_NOT_OK(ParseString(&s));
      *out = std::move(s);
      return Status::OK();
    }
    if (c == '{' || c == '[') return Err("nested values not supported");
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = true;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = false;
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = Value{};
      return Status::OK();
    }
    // Number.
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("bad number: " + token);
    *out = d;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Object> ParseObject(const std::string& line) {
  return Parser(line).Parse();
}

}  // namespace jsonl

void ExportWorkersJsonl(const CrowdDatabase& db, std::ostream& os) {
  for (const auto& w : db.workers()) {
    jsonl::Object object;
    object["handle"] = w.handle;
    object["online"] = w.online;
    os << jsonl::WriteObject(object) << '\n';
  }
}

void ExportTasksJsonl(const CrowdDatabase& db, std::ostream& os) {
  for (const auto& t : db.tasks()) {
    jsonl::Object object;
    object["text"] = t.text;
    os << jsonl::WriteObject(object) << '\n';
  }
}

void ExportAssignmentsJsonl(const CrowdDatabase& db, std::ostream& os) {
  for (const auto& a : db.assignments()) {
    jsonl::Object object;
    object["worker_id"] = static_cast<double>(a.worker);
    object["task_id"] = static_cast<double>(a.task);
    if (a.has_score) {
      object["score"] = a.score;
    } else {
      object["score"] = jsonl::Value{};
    }
    os << jsonl::WriteObject(object) << '\n';
  }
}

namespace {

Result<double> RequireNumber(const jsonl::Object& object,
                             const std::string& key) {
  auto it = object.find(key);
  if (it == object.end()) {
    return Status::InvalidArgument("missing field: " + key);
  }
  const double* d = std::get_if<double>(&it->second);
  if (d == nullptr) {
    return Status::InvalidArgument("field is not a number: " + key);
  }
  return *d;
}

// A row id must be a non-negative integer below `limit`; doubles like 1.7
// would otherwise silently truncate to a different row.
Result<uint32_t> RequireRowId(const jsonl::Object& object,
                              const std::string& key, size_t limit) {
  CS_ASSIGN_OR_RETURN(const double d, RequireNumber(object, key));
  if (!(d >= 0) || d != std::floor(d)) {
    return Status::InvalidArgument("field is not a non-negative integer: " +
                                   key);
  }
  if (d >= static_cast<double>(limit)) {
    return Status::Corruption("assignment references unknown row");
  }
  return static_cast<uint32_t>(d);
}

Result<std::string> RequireString(const jsonl::Object& object,
                                  const std::string& key) {
  auto it = object.find(key);
  if (it == object.end()) {
    return Status::InvalidArgument("missing field: " + key);
  }
  const std::string* s = std::get_if<std::string>(&it->second);
  if (s == nullptr) {
    return Status::InvalidArgument("field is not a string: " + key);
  }
  return *s;
}

Result<std::vector<jsonl::Object>> ReadAll(std::istream& is) {
  std::vector<jsonl::Object> records;
  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (TrimAscii(line).empty()) continue;
    CS_ASSIGN_OR_RETURN(jsonl::Object object, jsonl::ParseObject(line));
    records.push_back(std::move(object));
  }
  return records;
}

}  // namespace

Result<CrowdDatabase> ImportDatabaseJsonl(std::istream& workers,
                                          std::istream& tasks,
                                          std::istream& assignments) {
  CrowdDatabase db;
  CS_ASSIGN_OR_RETURN(auto worker_records, ReadAll(workers));
  for (const auto& record : worker_records) {
    CS_ASSIGN_OR_RETURN(const std::string handle,
                        RequireString(record, "handle"));
    bool online = true;
    auto it = record.find("online");
    if (it != record.end()) {
      const bool* b = std::get_if<bool>(&it->second);
      if (b == nullptr) {
        return Status::InvalidArgument("'online' is not a boolean");
      }
      online = *b;
    }
    db.AddWorker(handle, online);
  }
  CS_ASSIGN_OR_RETURN(auto task_records, ReadAll(tasks));
  for (const auto& record : task_records) {
    CS_ASSIGN_OR_RETURN(const std::string text, RequireString(record, "text"));
    db.AddTask(text);
  }
  CS_ASSIGN_OR_RETURN(auto assignment_records, ReadAll(assignments));
  for (const auto& record : assignment_records) {
    CS_ASSIGN_OR_RETURN(const uint32_t worker,
                        RequireRowId(record, "worker_id", db.NumWorkers()));
    CS_ASSIGN_OR_RETURN(const uint32_t task,
                        RequireRowId(record, "task_id", db.NumTasks()));
    CS_RETURN_NOT_OK(db.Assign(static_cast<WorkerId>(worker),
                               static_cast<TaskId>(task)));
    auto it = record.find("score");
    if (it != record.end() &&
        !std::holds_alternative<std::monostate>(it->second)) {
      const double* score = std::get_if<double>(&it->second);
      if (score == nullptr) {
        return Status::InvalidArgument("'score' is not a number");
      }
      CS_RETURN_NOT_OK(db.RecordFeedback(static_cast<WorkerId>(worker),
                                         static_cast<TaskId>(task), *score));
    }
  }
  return db;
}

Status ExportDatabaseJsonlFiles(const CrowdDatabase& db,
                                const std::string& directory) {
  const std::string names[] = {"workers.jsonl", "tasks.jsonl",
                               "assignments.jsonl"};
  for (int i = 0; i < 3; ++i) {
    const std::string path = directory + "/" + names[i];
    std::ofstream out(path, std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + path);
    if (i == 0) ExportWorkersJsonl(db, out);
    if (i == 1) ExportTasksJsonl(db, out);
    if (i == 2) ExportAssignmentsJsonl(db, out);
    if (!out) return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Result<CrowdDatabase> ImportDatabaseJsonlFiles(const std::string& directory) {
  std::ifstream workers(directory + "/workers.jsonl");
  std::ifstream tasks(directory + "/tasks.jsonl");
  std::ifstream assignments(directory + "/assignments.jsonl");
  if (!workers || !tasks || !assignments) {
    return Status::IOError("missing JSONL files under " + directory);
  }
  return ImportDatabaseJsonl(workers, tasks, assignments);
}

}  // namespace crowdselect
