#include "crowddb/store_interface.h"

#include "util/logging.h"

namespace crowdselect {

CrowdDatabaseStore::CrowdDatabaseStore(CrowdDatabase* db) : db_(db) {
  CS_CHECK(db_ != nullptr);
}

Result<WorkerId> CrowdDatabaseStore::AddWorker(std::string handle,
                                               bool online) {
  return db_->AddWorker(std::move(handle), online);
}

Result<TaskId> CrowdDatabaseStore::AddTask(std::string text) {
  return db_->AddTask(std::move(text));
}

Status CrowdDatabaseStore::Assign(WorkerId worker, TaskId task) {
  return db_->Assign(worker, task);
}

Status CrowdDatabaseStore::RecordFeedback(WorkerId worker, TaskId task,
                                          double score) {
  return db_->RecordFeedback(worker, task, score);
}

Status CrowdDatabaseStore::UpdateWorkerSkills(WorkerId worker,
                                              std::vector<double> skills) {
  return db_->UpdateWorkerSkills(worker, std::move(skills));
}

Status CrowdDatabaseStore::UpdateTaskCategories(
    TaskId task, std::vector<double> categories) {
  return db_->UpdateTaskCategories(task, std::move(categories));
}

Status CrowdDatabaseStore::SetWorkerOnline(WorkerId worker, bool online) {
  return db_->SetWorkerOnline(worker, online);
}

size_t CrowdDatabaseStore::NumWorkers() const { return db_->NumWorkers(); }
size_t CrowdDatabaseStore::NumTasks() const { return db_->NumTasks(); }
size_t CrowdDatabaseStore::NumAssignments() const {
  return db_->NumAssignments();
}
size_t CrowdDatabaseStore::NumScoredAssignments() const {
  return db_->NumScoredAssignments();
}

Result<WorkerRecord> CrowdDatabaseStore::GetWorkerCopy(WorkerId worker) const {
  CS_ASSIGN_OR_RETURN(const WorkerRecord* rec, db_->GetWorker(worker));
  return *rec;
}

Result<TaskRecord> CrowdDatabaseStore::GetTaskCopy(TaskId task) const {
  CS_ASSIGN_OR_RETURN(const TaskRecord* rec, db_->GetTask(task));
  return *rec;
}

std::vector<WorkerId> CrowdDatabaseStore::OnlineWorkers() const {
  return db_->OnlineWorkers();
}

std::vector<std::pair<WorkerId, double>>
CrowdDatabaseStore::ScoredAnswersOfTask(TaskId task) const {
  std::vector<std::pair<WorkerId, double>> scored;
  for (size_t index : db_->AssignmentsOfTask(task)) {
    const AssignmentRecord& a = db_->assignment(index);
    if (a.has_score) scored.emplace_back(a.worker, a.score);
  }
  return scored;
}

Result<std::shared_ptr<const CrowdDatabase>> CrowdDatabaseStore::FrozenView()
    const {
  // Aliasing constructor: shares nothing, frees nothing — a borrowed view
  // with shared_ptr plumbing so both implementations return the same type.
  return std::shared_ptr<const CrowdDatabase>(
      std::shared_ptr<const CrowdDatabase>(), db_);
}

}  // namespace crowdselect
