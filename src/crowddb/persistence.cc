#include "crowddb/persistence.h"

namespace crowdselect {

void CrowdDatabasePersistence::Save(const CrowdDatabase& db,
                                    BinaryWriter* writer) {
  writer->WriteU32(kMagic);
  writer->WriteU32(kVersion);
  db.vocab_.Serialize(writer);
  writer->WriteU64(db.workers_.size());
  for (const auto& w : db.workers_) w.Serialize(writer);
  writer->WriteU64(db.tasks_.size());
  for (const auto& t : db.tasks_) t.Serialize(writer);
  writer->WriteU64(db.assignments_.size());
  for (const auto& a : db.assignments_) a.Serialize(writer);
}

Status CrowdDatabasePersistence::SaveToFile(const CrowdDatabase& db,
                                            const std::string& path) {
  BinaryWriter writer;
  Save(db, &writer);
  return writer.WriteToFile(path);
}

Result<CrowdDatabase> CrowdDatabasePersistence::Load(BinaryReader* reader) {
  uint32_t magic = 0, version = 0;
  CS_RETURN_NOT_OK(reader->ReadU32(&magic));
  if (magic != kMagic) return Status::Corruption("bad CrowdDatabase magic");
  CS_RETURN_NOT_OK(reader->ReadU32(&version));
  if (version != kVersion) {
    return Status::Corruption("unsupported CrowdDatabase version");
  }

  CrowdDatabase db;
  CS_ASSIGN_OR_RETURN(db.vocab_, Vocabulary::Deserialize(reader));

  uint64_t num_workers = 0;
  CS_RETURN_NOT_OK(reader->ReadU64(&num_workers));
  // Each worker record occupies at least one byte; anything larger is a
  // corrupted count (and would make reserve() throw).
  if (num_workers > reader->remaining()) {
    return Status::Corruption("worker count exceeds payload");
  }
  db.workers_.reserve(num_workers);
  db.by_worker_.resize(num_workers);
  for (uint64_t i = 0; i < num_workers; ++i) {
    CS_ASSIGN_OR_RETURN(WorkerRecord rec, WorkerRecord::Deserialize(reader));
    if (rec.id != i) return Status::Corruption("worker ids not dense");
    if (!rec.skills.empty()) {
      if (db.latent_dim_ == 0) db.latent_dim_ = rec.skills.size();
      if (rec.skills.size() != db.latent_dim_) {
        return Status::Corruption("inconsistent skill vector dimensions");
      }
    }
    db.workers_.push_back(std::move(rec));
  }

  uint64_t num_tasks = 0;
  CS_RETURN_NOT_OK(reader->ReadU64(&num_tasks));
  if (num_tasks > reader->remaining()) {
    return Status::Corruption("task count exceeds payload");
  }
  db.tasks_.reserve(num_tasks);
  db.by_task_.resize(num_tasks);
  for (uint64_t i = 0; i < num_tasks; ++i) {
    CS_ASSIGN_OR_RETURN(TaskRecord rec, TaskRecord::Deserialize(reader));
    if (rec.id != i) return Status::Corruption("task ids not dense");
    // Bag entries are sorted by term id, so checking the last one bounds
    // them all. Out-of-range ids would index past vocab-sized matrices
    // downstream (e.g. the beta columns in model/variational.cc).
    if (!rec.bag.empty() &&
        rec.bag.entries().back().term >= db.vocab_.size()) {
      return Status::Corruption("task bag term id exceeds vocabulary");
    }
    if (!rec.categories.empty()) {
      if (db.latent_dim_ == 0) db.latent_dim_ = rec.categories.size();
      if (rec.categories.size() != db.latent_dim_) {
        return Status::Corruption("inconsistent category vector dimensions");
      }
    }
    db.tasks_.push_back(std::move(rec));
  }

  uint64_t num_assignments = 0;
  CS_RETURN_NOT_OK(reader->ReadU64(&num_assignments));
  if (num_assignments > reader->remaining()) {
    return Status::Corruption("assignment count exceeds payload");
  }
  db.assignments_.reserve(num_assignments);
  for (uint64_t i = 0; i < num_assignments; ++i) {
    CS_ASSIGN_OR_RETURN(AssignmentRecord rec,
                        AssignmentRecord::Deserialize(reader));
    if (rec.worker >= db.workers_.size() || rec.task >= db.tasks_.size()) {
      return Status::Corruption("assignment references unknown row");
    }
    const uint64_t key = CrowdDatabase::Key(rec.worker, rec.task);
    if (db.assignment_index_.count(key)) {
      return Status::Corruption("duplicate assignment");
    }
    const size_t index = db.assignments_.size();
    if (rec.has_score) ++db.num_scored_;
    db.assignment_index_.emplace(key, index);
    db.by_worker_[rec.worker].push_back(index);
    db.by_task_[rec.task].push_back(index);
    db.assignments_.push_back(rec);
  }
  return db;
}

Result<CrowdDatabase> CrowdDatabasePersistence::LoadFromFile(
    const std::string& path) {
  CS_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(path));
  return Load(&reader);
}

}  // namespace crowdselect
