#include "crowddb/online_pool.h"

#include <algorithm>

namespace crowdselect {

void OnlineWorkerPool::CheckIn(WorkerId worker) {
  std::lock_guard<std::mutex> lock(mu_);
  online_.insert(worker);
}

void OnlineWorkerPool::CheckOut(WorkerId worker) {
  std::lock_guard<std::mutex> lock(mu_);
  online_.erase(worker);
}

bool OnlineWorkerPool::IsOnline(WorkerId worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  return online_.count(worker) > 0;
}

size_t OnlineWorkerPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return online_.size();
}

std::vector<WorkerId> OnlineWorkerPool::Snapshot() const {
  std::vector<WorkerId> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.assign(online_.begin(), online_.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void OnlineWorkerPool::CheckInAll(const std::vector<WorkerId>& workers) {
  std::lock_guard<std::mutex> lock(mu_);
  online_.insert(workers.begin(), workers.end());
}

}  // namespace crowdselect
