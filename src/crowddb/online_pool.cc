#include "crowddb/online_pool.h"

#include <algorithm>

#include "obs/metrics.h"

namespace crowdselect {

namespace {

// Pool churn metrics; the gauge tracks the online population over time.
obs::Counter* CheckinCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("pool.checkins");
  return c;
}

obs::Counter* CheckoutCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("pool.checkouts");
  return c;
}

obs::Gauge* OnlineGauge() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().GetGauge("pool.online");
  return g;
}

}  // namespace

void OnlineWorkerPool::CheckIn(WorkerId worker) {
  size_t size;
  {
    // cs:lock(crowddb.pool)
    std::lock_guard<std::mutex> lock(mu_);
    online_.insert(worker);
    size = online_.size();
  }
  CheckinCounter()->Increment();
  OnlineGauge()->Set(static_cast<double>(size));
}

void OnlineWorkerPool::CheckOut(WorkerId worker) {
  size_t size;
  {
    // cs:lock(crowddb.pool)
    std::lock_guard<std::mutex> lock(mu_);
    online_.erase(worker);
    size = online_.size();
  }
  CheckoutCounter()->Increment();
  OnlineGauge()->Set(static_cast<double>(size));
}

bool OnlineWorkerPool::IsOnline(WorkerId worker) const {
  // cs:lock(crowddb.pool)
  std::lock_guard<std::mutex> lock(mu_);
  return online_.count(worker) > 0;
}

size_t OnlineWorkerPool::size() const {
  // cs:lock(crowddb.pool)
  std::lock_guard<std::mutex> lock(mu_);
  return online_.size();
}

std::vector<WorkerId> OnlineWorkerPool::Snapshot() const {
  std::vector<WorkerId> out;
  {
    // cs:lock(crowddb.pool)
    std::lock_guard<std::mutex> lock(mu_);
    out.assign(online_.begin(), online_.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void OnlineWorkerPool::CheckInAll(const std::vector<WorkerId>& workers) {
  size_t size;
  {
    // cs:lock(crowddb.pool)
    std::lock_guard<std::mutex> lock(mu_);
    online_.insert(workers.begin(), workers.end());
    size = online_.size();
  }
  CheckinCounter()->Increment(workers.size());
  OnlineGauge()->Set(static_cast<double>(size));
}

}  // namespace crowdselect
