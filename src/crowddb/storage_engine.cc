#include "crowddb/storage_engine.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "crowddb/persistence.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "text/bag_of_words.h"
#include "util/logging.h"
#include "util/serialization.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace crowdselect {

namespace {

namespace fs = std::filesystem;

struct EngineMetrics {
  obs::Counter* mutations;
  obs::Counter* checkpoints;
  obs::Histogram* checkpoint_us;
  obs::Gauge* checkpoint_bytes;
  obs::Counter* bulk_imports;

  static const EngineMetrics& Get() {
    static const EngineMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      EngineMetrics e;
      e.mutations = reg.GetCounter("storage.engine.mutations");
      e.checkpoints = reg.GetCounter("storage.checkpoints");
      e.checkpoint_us = reg.GetHistogram("storage.checkpoint.duration_us");
      e.checkpoint_bytes = reg.GetGauge("storage.checkpoint.size_bytes");
      e.bulk_imports = reg.GetCounter("storage.bulk_imports");
      return e;
    }();
    return m;
  }
};

std::string JoinPath(const std::string& dir, const char* file) {
  return (fs::path(dir) / file).string();
}

}  // namespace

Result<CheckpointImage> ParseCheckpoint(BinaryReader* reader) {
  uint32_t magic = 0, version = 0;
  CS_RETURN_NOT_OK(reader->ReadU32(&magic));
  if (magic != CrowdStoreEngine::kCheckpointMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  CS_RETURN_NOT_OK(reader->ReadU32(&version));
  if (version != CrowdStoreEngine::kCheckpointVersion) {
    return Status::Corruption("unsupported checkpoint version");
  }
  CheckpointImage image;
  CS_RETURN_NOT_OK(reader->ReadU64(&image.seq));
  CS_ASSIGN_OR_RETURN(image.db, CrowdDatabasePersistence::Load(reader));
  return image;
}

Status ValidateManifestText(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  std::getline(in, header);
  if (header != "crowdselect-storage") {
    return Status::Corruption("unrecognized MANIFEST header");
  }
  std::string key;
  uint32_t version = 0;
  in >> key >> version;
  if (key != "format_version" ||
      version != CrowdStoreEngine::kManifestVersion) {
    return Status::Corruption(StringPrintf("unsupported storage format (%s %u)",
                                           key.c_str(), version));
  }
  return Status::OK();
}

CrowdStoreEngine::CrowdStoreEngine(std::string dir,
                                   const StorageOptions& options)
    : dir_(std::move(dir)),
      options_(options),
      store_(std::max<size_t>(1, options.num_shards)) {}

std::unique_ptr<CrowdStoreEngine> CrowdStoreEngine::OpenEphemeral(
    const StorageOptions& options) {
  return std::unique_ptr<CrowdStoreEngine>(new CrowdStoreEngine("", options));
}

Result<std::unique_ptr<CrowdStoreEngine>> CrowdStoreEngine::Open(
    const std::string& dir, const StorageOptions& options) {
  static const obs::SpanMeter meter("storage.open");
  obs::ScopedSpan span(meter);
  if (dir.empty()) return Status::InvalidArgument("empty storage directory");

  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError(
        StringPrintf("create %s: %s", dir.c_str(), ec.message().c_str()));
  }

  std::unique_ptr<CrowdStoreEngine> engine(new CrowdStoreEngine(dir, options));
  CS_RETURN_NOT_OK(engine->ValidateManifest());

  // Recovery step 1: the last checkpoint, if any.
  const std::string ckpt_path = JoinPath(dir, kCheckpointFile);
  if (fs::exists(ckpt_path, ec)) {
    CS_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(ckpt_path));
    CS_ASSIGN_OR_RETURN(CheckpointImage image, ParseCheckpoint(&reader));
    const uint64_t ckpt_seq = image.seq;
    engine->vocab_ = image.db.vocabulary();
    engine->LoadDatabase(image.db);
    // The database implies at most ckpt_seq mutations, so the sequence
    // numbers LoadDatabase handed out stay at or below it — WAL records
    // (all > ckpt_seq) win every per-field guard, as they must.
    CS_CHECK(engine->last_seq_.load(std::memory_order_relaxed) <= ckpt_seq)
        << "checkpoint implies more mutations than its sequence number";
    engine->last_seq_.store(ckpt_seq, std::memory_order_relaxed);
    engine->checkpoint_seq_.store(ckpt_seq, std::memory_order_relaxed);
    engine->open_stats_.checkpoint_loaded = true;
    engine->open_stats_.checkpoint_seq = ckpt_seq;
  }

  // Recovery step 2: replay the WAL past the checkpoint.
  const std::string wal_path = JoinPath(dir, kWalFile);
  CS_ASSIGN_OR_RETURN(
      WalReplayResult replay,
      ReplayWal(wal_path, engine->checkpoint_seq_.load(),
                [&engine](const WalRecord& record) {
                  return engine->ApplyReplayed(record);
                }));
  engine->open_stats_.wal_records_scanned = replay.records_scanned;
  engine->open_stats_.wal_records_applied = replay.records_applied;
  engine->open_stats_.wal_torn_tail = replay.torn_tail;
  if (replay.last_seq > engine->last_seq_.load(std::memory_order_relaxed)) {
    engine->last_seq_.store(replay.last_seq, std::memory_order_relaxed);
  }
  engine->mutations_since_checkpoint_.store(replay.records_applied,
                                            std::memory_order_relaxed);
  if (replay.torn_tail) {
    CS_LOG(Warning) << "WAL " << wal_path << " has a torn tail; truncating to "
                    << replay.valid_bytes << " bytes";
    CS_RETURN_NOT_OK(TruncateWal(wal_path, replay.valid_bytes));
  }

  CS_ASSIGN_OR_RETURN(
      WalWriter wal,
      WalWriter::Open(wal_path,
                      WalWriter::Options{options.sync_every_append}));
  engine->wal_.emplace(std::move(wal));
  CS_RETURN_NOT_OK(engine->WriteManifest());
  engine->UpdateShardGauges();
  return engine;
}

Status CrowdStoreEngine::ValidateManifest() const {
  const std::string path = JoinPath(dir_, kManifestFile);
  std::error_code ec;
  if (!fs::exists(path, ec)) return Status::OK();  // Fresh directory.
  CS_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(path));
  return ValidateManifestText(std::move(reader).Release());
}

Status CrowdStoreEngine::WriteManifest() const {
  // num_shards is informative — the shard mapping is recomputed on open.
  const std::string text = StringPrintf(
      "crowdselect-storage\nformat_version %u\nnum_shards %zu\n",
      kManifestVersion, store_.num_shards());
  BinaryWriter writer;
  writer.WriteBytes(text.data(), text.size());
  return writer.WriteToFile(JoinPath(dir_, kManifestFile));
}

void CrowdStoreEngine::LoadDatabase(const CrowdDatabase& db) {
  uint64_t seq = last_seq_.load(std::memory_order_relaxed);
  for (const WorkerRecord& w : db.workers()) {
    store_.ApplyAddWorker(w.id, w.handle, w.online, ++seq);
    if (!w.skills.empty()) {
      CS_CHECK_OK(store_.ApplyWorkerSkills(w.id, w.skills, ++seq));
    }
  }
  for (const TaskRecord& t : db.tasks()) {
    store_.ApplyAddTask(t.id, t.text, t.bag, ++seq);
    if (!t.categories.empty()) {
      CS_CHECK_OK(store_.ApplyTaskCategories(t.id, t.categories, ++seq));
    }
  }
  for (const AssignmentRecord& a : db.assignments()) {
    CS_CHECK_OK(store_.ApplyAssign(a.worker, a.task, ++seq).status());
    if (a.has_score) {
      CS_CHECK_OK(store_.ApplyFeedback(a.worker, a.task, a.score, ++seq));
    }
  }
  last_seq_.store(seq, std::memory_order_relaxed);
  next_worker_id_.store(static_cast<uint32_t>(db.NumWorkers()),
                        std::memory_order_relaxed);
  next_task_id_.store(static_cast<uint32_t>(db.NumTasks()),
                      std::memory_order_relaxed);
}

Status CrowdStoreEngine::ApplyReplayed(const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kAddWorker:
      store_.ApplyAddWorker(record.worker, record.text, record.flag,
                            record.seq);
      if (record.worker + 1 > next_worker_id_.load(std::memory_order_relaxed)) {
        next_worker_id_.store(record.worker + 1, std::memory_order_relaxed);
      }
      return Status::OK();
    case WalRecordType::kAddTask: {
      // Re-tokenize in replay (= append) order: term ids come out exactly
      // as the original process interned them.
      BagOfWords bag = BagOfWords::FromText(record.text, tokenizer_, &vocab_);
      store_.ApplyAddTask(record.task, record.text, std::move(bag),
                          record.seq);
      if (record.task + 1 > next_task_id_.load(std::memory_order_relaxed)) {
        next_task_id_.store(record.task + 1, std::memory_order_relaxed);
      }
      return Status::OK();
    }
    case WalRecordType::kAssign:
      return store_.ApplyAssign(record.worker, record.task, record.seq)
          .status();
    case WalRecordType::kRecordFeedback:
      return store_.ApplyFeedback(record.worker, record.task, record.score,
                                  record.seq);
    case WalRecordType::kUpdateWorkerSkills:
      return store_.ApplyWorkerSkills(record.worker, record.values,
                                      record.seq);
    case WalRecordType::kUpdateTaskCategories:
      return store_.ApplyTaskCategories(record.task, record.values,
                                        record.seq);
    case WalRecordType::kSetOnline:
      return store_.ApplySetOnline(record.worker, record.flag, record.seq);
  }
  return Status::Corruption("unknown WAL record type");
}

Result<uint64_t> CrowdStoreEngine::LogMutation(WalRecord* record) {
  // cs:lock(crowddb.wal)
  std::lock_guard lock(wal_mu_);
  const uint64_t seq = last_seq_.load(std::memory_order_relaxed) + 1;
  record->seq = seq;
  // Log-before-apply: nothing is acknowledged (and no counter moves)
  // unless the record is durable.
  if (wal_.has_value()) CS_RETURN_NOT_OK(wal_->Append(*record));
  last_seq_.store(seq, std::memory_order_release);
  mutations_since_checkpoint_.fetch_add(1, std::memory_order_relaxed);
  EngineMetrics::Get().mutations->Increment();
  {
    static const uint16_t flight_name =
        obs::FlightRecorder::Global().InternName("storage.apply");
    obs::FlightRecorder::Global().Record(
        obs::FlightEventType::kApply, flight_name, seq,
        static_cast<uint64_t>(record->type));
  }
  return seq;
}

Result<WorkerId> CrowdStoreEngine::AddWorker(std::string handle, bool online) {
  WorkerId id = kInvalidWorkerId;
  {
    // cs:lock(crowddb.apply)
    std::shared_lock lock(apply_mu_);
    WalRecord record;
    record.type = WalRecordType::kAddWorker;
    record.text = handle;
    record.flag = online;
    uint64_t seq = 0;
    {
      // cs:lock(crowddb.wal)
      std::lock_guard wal_lock(wal_mu_);
      id = next_worker_id_.load(std::memory_order_relaxed);
      record.worker = id;
      seq = last_seq_.load(std::memory_order_relaxed) + 1;
      record.seq = seq;
      if (wal_.has_value()) CS_RETURN_NOT_OK(wal_->Append(record));
      next_worker_id_.store(id + 1, std::memory_order_relaxed);
      last_seq_.store(seq, std::memory_order_release);
      mutations_since_checkpoint_.fetch_add(1, std::memory_order_relaxed);
      EngineMetrics::Get().mutations->Increment();
    }
    store_.ApplyAddWorker(id, std::move(handle), online, seq);
  }
  MaybeAutoCheckpoint();
  return id;
}

Result<TaskId> CrowdStoreEngine::AddTask(std::string text) {
  TaskId id = kInvalidTaskId;
  {
    // cs:lock(crowddb.apply)
    std::shared_lock lock(apply_mu_);
    WalRecord record;
    record.type = WalRecordType::kAddTask;
    record.text = text;
    uint64_t seq = 0;
    BagOfWords bag;
    {
      // cs:lock(crowddb.wal)
      std::lock_guard wal_lock(wal_mu_);
      id = next_task_id_.load(std::memory_order_relaxed);
      record.task = id;
      seq = last_seq_.load(std::memory_order_relaxed) + 1;
      record.seq = seq;
      if (wal_.has_value()) CS_RETURN_NOT_OK(wal_->Append(record));
      // Tokenize only after the append succeeded, still under wal_mu_:
      // vocabulary insertion order == WAL order, so recovery re-interns
      // identical term ids.
      bag = BagOfWords::FromText(text, tokenizer_, &vocab_);
      next_task_id_.store(id + 1, std::memory_order_relaxed);
      last_seq_.store(seq, std::memory_order_release);
      mutations_since_checkpoint_.fetch_add(1, std::memory_order_relaxed);
      EngineMetrics::Get().mutations->Increment();
    }
    store_.ApplyAddTask(id, std::move(text), std::move(bag), seq);
  }
  MaybeAutoCheckpoint();
  return id;
}

Status CrowdStoreEngine::Assign(WorkerId worker, TaskId task) {
  {
    // cs:lock(crowddb.apply)
    std::shared_lock lock(apply_mu_);
    if (!store_.HasWorker(worker)) {
      return Status::NotFound(StringPrintf("worker %u", worker));
    }
    if (!store_.HasTask(task)) {
      return Status::NotFound(StringPrintf("task %u", task));
    }
    if (store_.HasAssignment(worker, task)) return Status::OK();  // Idempotent.
    WalRecord record;
    record.type = WalRecordType::kAssign;
    record.worker = worker;
    record.task = task;
    CS_ASSIGN_OR_RETURN(const uint64_t seq, LogMutation(&record));
    CS_ASSIGN_OR_RETURN(const bool inserted,
                        store_.ApplyAssign(worker, task, seq));
    (void)inserted;  // false: a racing writer logged the same pair first.
  }
  MaybeAutoCheckpoint();
  return Status::OK();
}

Status CrowdStoreEngine::RecordFeedback(WorkerId worker, TaskId task,
                                        double score) {
  {
    // cs:lock(crowddb.apply)
    std::shared_lock lock(apply_mu_);
    if (!store_.HasAssignment(worker, task)) {
      return Status::FailedPrecondition(
          StringPrintf("no assignment (w=%u, t=%u)", worker, task));
    }
    WalRecord record;
    record.type = WalRecordType::kRecordFeedback;
    record.worker = worker;
    record.task = task;
    record.score = score;
    CS_ASSIGN_OR_RETURN(const uint64_t seq, LogMutation(&record));
    CS_RETURN_NOT_OK(store_.ApplyFeedback(worker, task, score, seq));
  }
  MaybeAutoCheckpoint();
  return Status::OK();
}

Status CrowdStoreEngine::UpdateWorkerSkills(WorkerId worker,
                                            std::vector<double> skills) {
  {
    // cs:lock(crowddb.apply)
    std::shared_lock lock(apply_mu_);
    if (!store_.HasWorker(worker)) {
      return Status::NotFound(StringPrintf("worker %u", worker));
    }
    if (!skills.empty()) {
      const size_t dim = store_.FixLatentDim(skills.size());
      if (dim != skills.size()) {
        return Status::InvalidArgument(
            StringPrintf("skills dimension %zu != store dimension %zu",
                         skills.size(), dim));
      }
    }
    WalRecord record;
    record.type = WalRecordType::kUpdateWorkerSkills;
    record.worker = worker;
    record.values = skills;
    CS_ASSIGN_OR_RETURN(const uint64_t seq, LogMutation(&record));
    CS_RETURN_NOT_OK(store_.ApplyWorkerSkills(worker, std::move(skills), seq));
  }
  MaybeAutoCheckpoint();
  return Status::OK();
}

Status CrowdStoreEngine::UpdateTaskCategories(TaskId task,
                                              std::vector<double> categories) {
  {
    // cs:lock(crowddb.apply)
    std::shared_lock lock(apply_mu_);
    if (!store_.HasTask(task)) {
      return Status::NotFound(StringPrintf("task %u", task));
    }
    if (!categories.empty()) {
      const size_t dim = store_.FixLatentDim(categories.size());
      if (dim != categories.size()) {
        return Status::InvalidArgument(
            StringPrintf("categories dimension %zu != store dimension %zu",
                         categories.size(), dim));
      }
    }
    WalRecord record;
    record.type = WalRecordType::kUpdateTaskCategories;
    record.task = task;
    record.values = categories;
    CS_ASSIGN_OR_RETURN(const uint64_t seq, LogMutation(&record));
    CS_RETURN_NOT_OK(
        store_.ApplyTaskCategories(task, std::move(categories), seq));
  }
  MaybeAutoCheckpoint();
  return Status::OK();
}

Status CrowdStoreEngine::SetWorkerOnline(WorkerId worker, bool online) {
  {
    // cs:lock(crowddb.apply)
    std::shared_lock lock(apply_mu_);
    if (!store_.HasWorker(worker)) {
      return Status::NotFound(StringPrintf("worker %u", worker));
    }
    WalRecord record;
    record.type = WalRecordType::kSetOnline;
    record.worker = worker;
    record.flag = online;
    CS_ASSIGN_OR_RETURN(const uint64_t seq, LogMutation(&record));
    CS_RETURN_NOT_OK(store_.ApplySetOnline(worker, online, seq));
  }
  MaybeAutoCheckpoint();
  return Status::OK();
}

Result<std::shared_ptr<const CrowdDatabase>> CrowdStoreEngine::FrozenView()
    const {
  static const obs::SpanMeter meter("storage.freeze");
  obs::ScopedSpan span(meter);
  // Exclusive: every acknowledged mutation is fully applied, so the copy
  // is a consistent cut.
  // cs:lock(crowddb.apply)
  std::unique_lock lock(apply_mu_);
  return std::shared_ptr<const CrowdDatabase>(
      std::make_shared<CrowdDatabase>(store_.Materialize(vocab_)));
}

Status CrowdStoreEngine::Checkpoint() {
  if (!durable()) return Status::OK();
  // cs:lock(crowddb.apply)
  std::unique_lock lock(apply_mu_);
  return CheckpointLocked();
}

Status CrowdStoreEngine::CheckpointLocked() {
  static const obs::SpanMeter meter("storage.checkpoint");
  obs::ScopedSpan span(meter);
  // A checkpoint that runs longer than this holds apply_mu_ exclusively
  // and starves every writer — exactly the "checkpoint stuck" incident
  // the watchdog exists to flag. No-op unless the watchdog is running.
  obs::ScopedDeadline deadline("storage.checkpoint", 30000.0);
  Timer timer;

  const uint64_t seq = last_seq_.load(std::memory_order_relaxed);
  const CrowdDatabase db = store_.Materialize(vocab_);
  BinaryWriter writer;
  writer.WriteU32(kCheckpointMagic);
  writer.WriteU32(kCheckpointVersion);
  writer.WriteU64(seq);
  CrowdDatabasePersistence::Save(db, &writer);
  const size_t bytes = writer.buffer().size();
  CS_RETURN_NOT_OK(writer.WriteToFile(JoinPath(dir_, kCheckpointFile)));

  // The checkpoint is durable (rename landed); the WAL records at or
  // below `seq` are redundant from here on. A crash between the rename
  // and the reset only replays records the sequence guard then skips.
  checkpoint_seq_.store(seq, std::memory_order_release);
  mutations_since_checkpoint_.store(0, std::memory_order_relaxed);
  CS_RETURN_NOT_OK(wal_->Reset());

  const EngineMetrics& m = EngineMetrics::Get();
  m.checkpoints->Increment();
  m.checkpoint_us->Record(timer.ElapsedMicros());
  m.checkpoint_bytes->Set(static_cast<double>(bytes));
  {
    static const uint16_t flight_name =
        obs::FlightRecorder::Global().InternName("storage.checkpoint.publish");
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kCheckpoint,
                                         flight_name, seq, bytes);
  }
  UpdateShardGauges();
  return Status::OK();
}

Status CrowdStoreEngine::BulkImport(const CrowdDatabase& db) {
  static const obs::SpanMeter meter("storage.bulk_import");
  obs::ScopedSpan span(meter);
  // cs:lock(crowddb.apply)
  std::unique_lock lock(apply_mu_);
  if (store_.num_workers() != 0 || store_.num_tasks() != 0) {
    return Status::FailedPrecondition("bulk import requires an empty store");
  }
  vocab_ = db.vocabulary();
  LoadDatabase(db);
  EngineMetrics::Get().bulk_imports->Increment();
  // The imported records bypassed the WAL; a checkpoint at the post-load
  // sequence makes them durable in one shot.
  if (durable()) return CheckpointLocked();
  return Status::OK();
}

void CrowdStoreEngine::MaybeAutoCheckpoint() {
  if (!durable() || options_.auto_checkpoint_every == 0) return;
  if (mutations_since_checkpoint_.load(std::memory_order_relaxed) <
      options_.auto_checkpoint_every) {
    return;
  }
  const Status s = Checkpoint();
  if (!s.ok()) {
    CS_LOG(Warning) << "auto-checkpoint failed: " << s.ToString();
  }
}

void CrowdStoreEngine::UpdateShardGauges() const {
  auto& reg = obs::MetricsRegistry::Global();
  for (size_t i = 0; i < store_.num_shards(); ++i) {
    const ShardedCrowdStore::ShardCounts counts = store_.CountsOfShard(i);
    reg.GetGauge(StringPrintf("storage.shard.%zu.workers", i))
        ->Set(static_cast<double>(counts.workers));
    reg.GetGauge(StringPrintf("storage.shard.%zu.tasks", i))
        ->Set(static_cast<double>(counts.tasks));
    reg.GetGauge(StringPrintf("storage.shard.%zu.assignments", i))
        ->Set(static_cast<double>(counts.assignments));
  }
}

}  // namespace crowdselect
