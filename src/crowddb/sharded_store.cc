#include "crowddb/sharded_store.h"

#include <algorithm>
#include <mutex>

#include "util/logging.h"
#include "util/string_util.h"

namespace crowdselect {

namespace {

/// Locks two shard mutexes exclusively in a globally consistent order
/// (ascending shard index; a single lock when both are the same shard).
class DualLock {
 public:
  /// Orders by shard index, not address: indexes are stable across engine
  /// instances (and process restarts), so the acquisition order lockdep
  /// records for shard i vs shard j never depends on where the allocator
  /// happened to place this run's shards.
  DualLock(uint32_t a_index, lockdep::SharedMutex* a_mu, uint32_t b_index,
           lockdep::SharedMutex* b_mu) {
    first_ = a_mu;
    second_ = a_index == b_index ? nullptr : b_mu;
    if (second_ != nullptr && b_index < a_index) {
      std::swap(first_, second_);
    }
    // Both shard locks are taken in ascending shard-index order (the swap
    // above), so any two DualLocks agree on acquisition order and the
    // same-class nesting below cannot deadlock.
    // cs:lock(crowddb.shard)
    first_->lock();
    // cs:lock(crowddb.shard) cslint: allow(lock-order) ascending-index order
    if (second_ != nullptr) second_->lock();
  }
  ~DualLock() {
    if (second_ != nullptr) second_->unlock();
    first_->unlock();
  }
  DualLock(const DualLock&) = delete;
  DualLock& operator=(const DualLock&) = delete;

 private:
  lockdep::SharedMutex* first_;
  lockdep::SharedMutex* second_;
};

}  // namespace

ShardedCrowdStore::ShardedCrowdStore(size_t num_shards) {
  CS_CHECK(num_shards > 0);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(static_cast<uint32_t>(i)));
  }
}

size_t ShardedCrowdStore::ShardOf(uint32_t id, size_t num_shards) {
  // splitmix64 finalizer: dense ids spread uniformly and the mapping is
  // stable across processes (recovery re-shards identically).
  uint64_t x = id;
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x = x ^ (x >> 31);
  return static_cast<size_t>(x % num_shards);
}

void ShardedCrowdStore::ApplyAddWorker(WorkerId id, std::string handle,
                                       bool online, uint64_t seq) {
  Shard& shard = WorkerShard(id);
  // cs:lock(crowddb.shard)
  std::unique_lock lock(shard.mu);
  auto [it, inserted] = shard.workers.try_emplace(id);
  if (!inserted) return;  // Replay of an already-loaded record.
  it->second.rec = WorkerRecord{id, std::move(handle), online, {}};
  it->second.online_seq = seq;
  lock.unlock();
  num_workers_.fetch_add(1, std::memory_order_acq_rel);
}

void ShardedCrowdStore::ApplyAddTask(TaskId id, std::string text,
                                     BagOfWords bag, uint64_t seq) {
  (void)seq;
  Shard& shard = TaskShard(id);
  // cs:lock(crowddb.shard)
  std::unique_lock lock(shard.mu);
  auto [it, inserted] = shard.tasks.try_emplace(id);
  if (!inserted) return;
  it->second.rec.id = id;
  it->second.rec.text = std::move(text);
  it->second.rec.bag = std::move(bag);
  lock.unlock();
  num_tasks_.fetch_add(1, std::memory_order_acq_rel);
}

Result<bool> ShardedCrowdStore::ApplyAssign(WorkerId worker, TaskId task,
                                            uint64_t seq) {
  Shard& task_shard = TaskShard(task);
  Shard& worker_shard = WorkerShard(worker);
  DualLock lock(task_shard.index, &task_shard.mu, worker_shard.index,
                &worker_shard.mu);
  auto task_it = task_shard.tasks.find(task);
  if (task_it == task_shard.tasks.end()) {
    return Status::NotFound(StringPrintf("task %u", task));
  }
  auto worker_it = worker_shard.workers.find(worker);
  if (worker_it == worker_shard.workers.end()) {
    return Status::NotFound(StringPrintf("worker %u", worker));
  }
  for (const AssignmentEntry& e : task_it->second.assignments) {
    if (e.worker == worker) return false;  // Idempotent.
  }
  task_it->second.assignments.push_back(
      AssignmentEntry{worker, false, 0.0, seq, 0});
  worker_it->second.tasks.push_back(task);
  num_assignments_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

Status ShardedCrowdStore::ApplyFeedback(WorkerId worker, TaskId task,
                                        double score, uint64_t seq) {
  Shard& task_shard = TaskShard(task);
  Shard& worker_shard = WorkerShard(worker);
  DualLock lock(task_shard.index, &task_shard.mu, worker_shard.index,
                &worker_shard.mu);
  auto task_it = task_shard.tasks.find(task);
  if (task_it == task_shard.tasks.end()) {
    return Status::FailedPrecondition(
        StringPrintf("no assignment (w=%u, t=%u)", worker, task));
  }
  AssignmentEntry* entry = nullptr;
  for (AssignmentEntry& e : task_it->second.assignments) {
    if (e.worker == worker) {
      entry = &e;
      break;
    }
  }
  if (entry == nullptr) {
    return Status::FailedPrecondition(
        StringPrintf("no assignment (w=%u, t=%u)", worker, task));
  }
  if (!entry->has_score) {
    entry->has_score = true;
    num_scored_.fetch_add(1, std::memory_order_acq_rel);
    auto worker_it = worker_shard.workers.find(worker);
    if (worker_it != worker_shard.workers.end()) {
      ++worker_it->second.scored_count;
    }
  }
  // Last write (in sequence order) wins, whatever order applies land in.
  if (seq >= entry->score_seq) {
    entry->score = score;
    entry->score_seq = seq;
  }
  task_it->second.rec.resolved = true;
  return Status::OK();
}

Status ShardedCrowdStore::ApplyWorkerSkills(WorkerId worker,
                                            std::vector<double> skills,
                                            uint64_t seq) {
  if (!skills.empty()) FixLatentDim(skills.size());
  Shard& shard = WorkerShard(worker);
  // cs:lock(crowddb.shard)
  std::unique_lock lock(shard.mu);
  auto it = shard.workers.find(worker);
  if (it == shard.workers.end()) {
    return Status::NotFound(StringPrintf("worker %u", worker));
  }
  if (seq >= it->second.skills_seq) {
    it->second.rec.skills = std::move(skills);
    it->second.skills_seq = seq;
  }
  return Status::OK();
}

Status ShardedCrowdStore::ApplyTaskCategories(TaskId task,
                                              std::vector<double> categories,
                                              uint64_t seq) {
  if (!categories.empty()) FixLatentDim(categories.size());
  Shard& shard = TaskShard(task);
  // cs:lock(crowddb.shard)
  std::unique_lock lock(shard.mu);
  auto it = shard.tasks.find(task);
  if (it == shard.tasks.end()) {
    return Status::NotFound(StringPrintf("task %u", task));
  }
  if (seq >= it->second.categories_seq) {
    it->second.rec.categories = std::move(categories);
    it->second.categories_seq = seq;
  }
  return Status::OK();
}

Status ShardedCrowdStore::ApplySetOnline(WorkerId worker, bool online,
                                         uint64_t seq) {
  Shard& shard = WorkerShard(worker);
  // cs:lock(crowddb.shard)
  std::unique_lock lock(shard.mu);
  auto it = shard.workers.find(worker);
  if (it == shard.workers.end()) {
    return Status::NotFound(StringPrintf("worker %u", worker));
  }
  if (seq >= it->second.online_seq) {
    it->second.rec.online = online;
    it->second.online_seq = seq;
  }
  return Status::OK();
}

size_t ShardedCrowdStore::FixLatentDim(size_t dim) {
  size_t expected = 0;
  if (latent_dim_.compare_exchange_strong(expected, dim,
                                          std::memory_order_acq_rel)) {
    return dim;
  }
  return expected;
}

bool ShardedCrowdStore::HasWorker(WorkerId worker) const {
  const Shard& shard = WorkerShard(worker);
  // cs:lock(crowddb.shard)
  std::shared_lock lock(shard.mu);
  return shard.workers.count(worker) > 0;
}

bool ShardedCrowdStore::HasTask(TaskId task) const {
  const Shard& shard = TaskShard(task);
  // cs:lock(crowddb.shard)
  std::shared_lock lock(shard.mu);
  return shard.tasks.count(task) > 0;
}

bool ShardedCrowdStore::HasAssignment(WorkerId worker, TaskId task) const {
  const Shard& shard = TaskShard(task);
  // cs:lock(crowddb.shard)
  std::shared_lock lock(shard.mu);
  auto it = shard.tasks.find(task);
  if (it == shard.tasks.end()) return false;
  for (const AssignmentEntry& e : it->second.assignments) {
    if (e.worker == worker) return true;
  }
  return false;
}

Result<WorkerRecord> ShardedCrowdStore::GetWorkerCopy(WorkerId worker) const {
  const Shard& shard = WorkerShard(worker);
  // cs:lock(crowddb.shard)
  std::shared_lock lock(shard.mu);
  auto it = shard.workers.find(worker);
  if (it == shard.workers.end()) {
    return Status::NotFound(StringPrintf("worker %u", worker));
  }
  return it->second.rec;
}

Result<TaskRecord> ShardedCrowdStore::GetTaskCopy(TaskId task) const {
  const Shard& shard = TaskShard(task);
  // cs:lock(crowddb.shard)
  std::shared_lock lock(shard.mu);
  auto it = shard.tasks.find(task);
  if (it == shard.tasks.end()) {
    return Status::NotFound(StringPrintf("task %u", task));
  }
  return it->second.rec;
}

std::vector<std::pair<WorkerId, double>> ShardedCrowdStore::ScoredAnswersOfTask(
    TaskId task) const {
  std::vector<std::pair<WorkerId, double>> scored;
  const Shard& shard = TaskShard(task);
  // cs:lock(crowddb.shard)
  std::shared_lock lock(shard.mu);
  auto it = shard.tasks.find(task);
  if (it == shard.tasks.end()) return scored;
  for (const AssignmentEntry& e : it->second.assignments) {
    if (e.has_score) scored.emplace_back(e.worker, e.score);
  }
  return scored;
}

size_t ShardedCrowdStore::ParticipationOf(WorkerId worker) const {
  const Shard& shard = WorkerShard(worker);
  // cs:lock(crowddb.shard)
  std::shared_lock lock(shard.mu);
  auto it = shard.workers.find(worker);
  return it == shard.workers.end() ? 0 : it->second.scored_count;
}

std::vector<WorkerId> ShardedCrowdStore::OnlineWorkers() const {
  std::vector<WorkerId> online;
  // lock-order: one shard lock at a time, ascending shard index; no two
  // shard locks are ever held together here.
  for (const auto& shard : shards_) {
    // cs:lock(crowddb.shard)
    std::shared_lock lock(shard->mu);
    for (const auto& [id, state] : shard->workers) {
      if (state.rec.online) online.push_back(id);
    }
  }
  std::sort(online.begin(), online.end());
  return online;
}

void ShardedCrowdStore::ForEachWorkerInShard(
    size_t shard_index,
    const std::function<void(const WorkerRecord&)>& fn) const {
  CS_CHECK(shard_index < shards_.size());
  const Shard& shard = *shards_[shard_index];
  // cs:lock(crowddb.shard)
  std::shared_lock lock(shard.mu);
  for (const auto& [id, state] : shard.workers) fn(state.rec);
}

CrowdDatabase ShardedCrowdStore::Materialize(const Vocabulary& vocab) const {
  CrowdDatabase db;
  *db.mutable_vocabulary() = vocab;

  // Dense id ranges: the engine allocates contiguously and excludes
  // writers while materializing, so every id below the counter is present.
  const size_t worker_count = num_workers();
  const size_t task_count = num_tasks();
  // lock-order: one shard lock at a time per iteration, released before
  // the next shard's is taken.
  for (WorkerId id = 0; id < worker_count; ++id) {
    const Shard& shard = WorkerShard(id);
    // cs:lock(crowddb.shard)
    std::shared_lock lock(shard.mu);
    auto it = shard.workers.find(id);
    CS_CHECK(it != shard.workers.end()) << "worker ids not dense";
    const WorkerRecord& rec = it->second.rec;
    db.AddWorker(rec.handle, rec.online);
    if (!rec.skills.empty()) CS_CHECK_OK(db.UpdateWorkerSkills(id, rec.skills));
  }
  struct FlatAssignment {
    uint64_t seq;
    WorkerId worker;
    TaskId task;
    bool has_score;
    double score;
  };
  std::vector<FlatAssignment> flat;
  flat.reserve(num_assignments());
  // lock-order: as above — a single shard lock per iteration.
  for (TaskId id = 0; id < task_count; ++id) {
    const Shard& shard = TaskShard(id);
    // cs:lock(crowddb.shard)
    std::shared_lock lock(shard.mu);
    auto it = shard.tasks.find(id);
    CS_CHECK(it != shard.tasks.end()) << "task ids not dense";
    const TaskRecord& rec = it->second.rec;
    db.AddTaskWithBag(rec.text, rec.bag);
    if (!rec.categories.empty()) {
      CS_CHECK_OK(db.UpdateTaskCategories(id, rec.categories));
    }
    for (const AssignmentEntry& e : it->second.assignments) {
      flat.push_back(
          FlatAssignment{e.assign_seq, e.worker, id, e.has_score, e.score});
    }
  }
  // Reconstruct the assignment log in its original (sequence) order so
  // secondary indexes and exports match the unsharded database bit for
  // bit.
  std::sort(flat.begin(), flat.end(),
            [](const FlatAssignment& a, const FlatAssignment& b) {
              return a.seq < b.seq;
            });
  for (const FlatAssignment& a : flat) {
    CS_CHECK_OK(db.Assign(a.worker, a.task));
    if (a.has_score) CS_CHECK_OK(db.RecordFeedback(a.worker, a.task, a.score));
  }
  return db;
}

ShardedCrowdStore::ShardCounts ShardedCrowdStore::CountsOfShard(
    size_t shard_index) const {
  CS_CHECK(shard_index < shards_.size());
  const Shard& shard = *shards_[shard_index];
  // cs:lock(crowddb.shard)
  std::shared_lock lock(shard.mu);
  ShardCounts counts;
  counts.workers = shard.workers.size();
  counts.tasks = shard.tasks.size();
  for (const auto& [id, state] : shard.tasks) {
    counts.assignments += state.assignments.size();
  }
  return counts;
}

}  // namespace crowdselect
