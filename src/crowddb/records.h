// Record types for the crowdsourcing database (paper §4.1): workers, tasks,
// the assignment matrix A and the feedback-score matrix S, stored sparsely.
#ifndef CROWDSELECT_CROWDDB_RECORDS_H_
#define CROWDSELECT_CROWDDB_RECORDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/bag_of_words.h"
#include "util/serialization.h"

namespace crowdselect {

using WorkerId = uint32_t;
using TaskId = uint32_t;
inline constexpr WorkerId kInvalidWorkerId = UINT32_MAX;
inline constexpr TaskId kInvalidTaskId = UINT32_MAX;

/// A crowd worker. The latent skill vector (the crowd model, Table W in the
/// paper's Fig. 2) is stored alongside the worker so that "crowd update"
/// after each resolved task is a single-row write.
struct WorkerRecord {
  WorkerId id = kInvalidWorkerId;
  std::string handle;          ///< External display name.
  bool online = true;          ///< Whether the worker can receive tasks now.
  std::vector<double> skills;  ///< Latent skills w_i; empty until inferred.

  void Serialize(BinaryWriter* writer) const;
  static Result<WorkerRecord> Deserialize(BinaryReader* reader);
};

/// A crowdsourced task: raw text plus its bag-of-words representation and,
/// once inferred, its latent category vector c_j.
struct TaskRecord {
  TaskId id = kInvalidTaskId;
  std::string text;
  BagOfWords bag;
  bool resolved = false;           ///< True once answers were collected.
  std::vector<double> categories;  ///< Latent categories c_j; empty until inferred.

  void Serialize(BinaryWriter* writer) const;
  static Result<TaskRecord> Deserialize(BinaryReader* reader);
};

/// One cell of the assignment matrix A together with its feedback score
/// s_ij (paper §4.1.4-4.1.5). `has_score` distinguishes "assigned, awaiting
/// feedback" from "scored".
struct AssignmentRecord {
  WorkerId worker = kInvalidWorkerId;
  TaskId task = kInvalidTaskId;
  bool has_score = false;
  double score = 0.0;

  void Serialize(BinaryWriter* writer) const;
  static Result<AssignmentRecord> Deserialize(BinaryReader* reader);
};

}  // namespace crowdselect

#endif  // CROWDSELECT_CROWDDB_RECORDS_H_
