// ShardedCrowdStore: the in-memory heart of the storage engine. Workers,
// tasks, and assignments are partitioned across N shards by a stable hash
// of the id space; each shard carries its own reader-writer lock, so
// concurrent RecordFeedback / Assign / SetWorkerOnline writers touching
// different shards proceed in parallel instead of serializing (or racing)
// on one structure.
//
// Placement: a worker lives in shard_of(worker_id); a task — and every
// assignment of that task — lives in shard_of(task_id), so the
// dispatcher's per-task feedback loop is shard-local. The worker side
// keeps a task-id list plus a scored-answer counter, updated under the
// worker's shard lock (two-shard operations lock in a globally consistent
// ascending-address order to stay deadlock-free — enforced at runtime by
// util/lockdep.h in debug/TSan builds).
//
// Mutations are *applies*: the caller (CrowdStoreEngine) has already
// allocated the id, fixed the global order with a sequence number, and
// logged the record. Per-field sequence guards make applies commutative —
// whatever order racing writers apply in, the highest-sequence write wins,
// which is exactly the state WAL replay (in sequence order) reconstructs.
#ifndef CROWDSELECT_CROWDDB_SHARDED_STORE_H_
#define CROWDSELECT_CROWDDB_SHARDED_STORE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "crowddb/crowd_database.h"
#include "crowddb/records.h"
#include "util/lockdep.h"
#include "util/status.h"

namespace crowdselect {

class ShardedCrowdStore {
 public:
  explicit ShardedCrowdStore(size_t num_shards);

  /// Stable shard placement: a mixed hash of the id, so densely allocated
  /// ids spread instead of striping.
  static size_t ShardOf(uint32_t id, size_t num_shards);

  // --- Applies (id + seq supplied by the engine) ---------------------------

  void ApplyAddWorker(WorkerId id, std::string handle, bool online,
                      uint64_t seq);
  void ApplyAddTask(TaskId id, std::string text, BagOfWords bag,
                    uint64_t seq);
  /// Returns true when the assignment was newly inserted (false: already
  /// present, the apply is an idempotent no-op).
  Result<bool> ApplyAssign(WorkerId worker, TaskId task, uint64_t seq);
  Status ApplyFeedback(WorkerId worker, TaskId task, double score,
                       uint64_t seq);
  Status ApplyWorkerSkills(WorkerId worker, std::vector<double> skills,
                           uint64_t seq);
  Status ApplyTaskCategories(TaskId task, std::vector<double> categories,
                             uint64_t seq);
  Status ApplySetOnline(WorkerId worker, bool online, uint64_t seq);

  // --- Point reads (shard-local shared lock) -------------------------------

  bool HasWorker(WorkerId worker) const;
  bool HasTask(TaskId task) const;
  bool HasAssignment(WorkerId worker, TaskId task) const;
  Result<WorkerRecord> GetWorkerCopy(WorkerId worker) const;
  Result<TaskRecord> GetTaskCopy(TaskId task) const;
  std::vector<std::pair<WorkerId, double>> ScoredAnswersOfTask(
      TaskId task) const;
  /// Scored answers of `worker` (participation count).
  size_t ParticipationOf(WorkerId worker) const;

  // --- Scans ---------------------------------------------------------------

  /// All online worker ids, scanned one shard at a time (each shard under
  /// its shared lock; no global stop-the-world).
  std::vector<WorkerId> OnlineWorkers() const;

  /// Visits every worker resident in `shard` under that shard's shared
  /// lock. The record reference is only valid inside the callback.
  void ForEachWorkerInShard(size_t shard,
                            const std::function<void(const WorkerRecord&)>& fn)
      const;

  /// Materializes a dense CrowdDatabase (ids 0..n-1, assignments in
  /// sequence order). The caller must exclude writers for the result to be
  /// a consistent cut — the engine holds its apply lock exclusively.
  CrowdDatabase Materialize(const Vocabulary& vocab) const;

  // --- Counters ------------------------------------------------------------

  size_t num_workers() const {
    return num_workers_.load(std::memory_order_acquire);
  }
  size_t num_tasks() const {
    return num_tasks_.load(std::memory_order_acquire);
  }
  size_t num_assignments() const {
    return num_assignments_.load(std::memory_order_acquire);
  }
  size_t num_scored() const {
    return num_scored_.load(std::memory_order_acquire);
  }
  /// Dimension K of the latent vectors, fixed by the first non-empty
  /// skills/categories write; 0 until then.
  size_t latent_dim() const {
    return latent_dim_.load(std::memory_order_acquire);
  }
  /// Fixes K when unset; returns the dimension now in force.
  size_t FixLatentDim(size_t dim);

  size_t num_shards() const { return shards_.size(); }
  /// (workers, tasks, assignments) resident in `shard`, for the
  /// storage.shard.* gauges.
  struct ShardCounts {
    size_t workers = 0;
    size_t tasks = 0;
    size_t assignments = 0;
  };
  ShardCounts CountsOfShard(size_t shard) const;

 private:
  struct WorkerState {
    WorkerRecord rec;
    std::vector<TaskId> tasks;  ///< Tasks ever assigned to this worker.
    size_t scored_count = 0;
    uint64_t skills_seq = 0;
    uint64_t online_seq = 0;
  };
  struct AssignmentEntry {
    WorkerId worker = kInvalidWorkerId;
    bool has_score = false;
    double score = 0.0;
    uint64_t assign_seq = 0;  ///< Global order of the Assign.
    uint64_t score_seq = 0;   ///< Seq of the winning feedback write.
  };
  struct TaskState {
    TaskRecord rec;
    std::vector<AssignmentEntry> assignments;
    uint64_t categories_seq = 0;
  };
  struct Shard {
    explicit Shard(uint32_t shard_index)
        : index(shard_index), mu("crowddb.shard", shard_index) {}
    /// Position in shards_; DualLock orders two-shard acquisitions by it.
    const uint32_t index;
    mutable lockdep::SharedMutex mu;
    std::unordered_map<WorkerId, WorkerState> workers;
    std::unordered_map<TaskId, TaskState> tasks;
  };

  Shard& WorkerShard(WorkerId id) {
    return *shards_[ShardOf(id, shards_.size())];
  }
  const Shard& WorkerShard(WorkerId id) const {
    return *shards_[ShardOf(id, shards_.size())];
  }
  Shard& TaskShard(TaskId id) { return *shards_[ShardOf(id, shards_.size())]; }
  const Shard& TaskShard(TaskId id) const {
    return *shards_[ShardOf(id, shards_.size())];
  }

  // Shards are held by unique_ptr so the store is movable despite the
  // embedded mutexes.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> num_workers_{0};
  std::atomic<size_t> num_tasks_{0};
  std::atomic<size_t> num_assignments_{0};
  std::atomic<size_t> num_scored_{0};
  std::atomic<size_t> latent_dim_{0};
};

}  // namespace crowdselect

#endif  // CROWDSELECT_CROWDDB_SHARDED_STORE_H_
