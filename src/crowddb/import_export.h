// CSV import/export for the crowd database, so resolved-task histories
// can be wrangled in and out of external tools (the paper's datasets were
// crawls; real deployments load them from flat files).
//
// Formats (all RFC-4180-style CSV with a header row):
//   workers.csv     handle,online
//   tasks.csv       text
//   assignments.csv worker_id,task_id,score   (empty score = unscored)
#ifndef CROWDSELECT_CROWDDB_IMPORT_EXPORT_H_
#define CROWDSELECT_CROWDDB_IMPORT_EXPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "crowddb/crowd_database.h"
#include "util/status.h"

namespace crowdselect {

namespace csv {

/// Quotes a field when it contains commas, quotes or newlines.
std::string EscapeField(const std::string& field);

/// Parses one CSV record (handles quoted fields, embedded commas/quotes).
/// Multi-line fields are not supported; a lone CR is stripped.
Result<std::vector<std::string>> ParseLine(const std::string& line);

}  // namespace csv

/// Writes the worker table as CSV.
void ExportWorkersCsv(const CrowdDatabase& db, std::ostream& os);
/// Writes the task table as CSV.
void ExportTasksCsv(const CrowdDatabase& db, std::ostream& os);
/// Writes the assignment/feedback matrix as sparse CSV triples.
void ExportAssignmentsCsv(const CrowdDatabase& db, std::ostream& os);

/// Reads the three CSV streams into a fresh database. Ids are assigned by
/// row order, matching what the exporters wrote. Fails with
/// Status::InvalidArgument on malformed rows and Status::Corruption on
/// dangling references.
Result<CrowdDatabase> ImportDatabaseCsv(std::istream& workers,
                                        std::istream& tasks,
                                        std::istream& assignments);

/// Convenience: exports all three files under `directory` (workers.csv,
/// tasks.csv, assignments.csv).
Status ExportDatabaseCsvFiles(const CrowdDatabase& db,
                              const std::string& directory);

/// Convenience: imports the three files written by ExportDatabaseCsvFiles.
Result<CrowdDatabase> ImportDatabaseCsvFiles(const std::string& directory);

}  // namespace crowdselect

#endif  // CROWDSELECT_CROWDDB_IMPORT_EXPORT_H_
