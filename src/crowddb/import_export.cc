#include "crowddb/import_export.h"

#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/string_util.h"

namespace crowdselect {

namespace csv {

std::string EscapeField(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

Result<std::vector<std::string>> ParseLine(const std::string& raw) {
  std::string line = raw;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return Status::InvalidArgument("quote inside unquoted field: " + raw);
      }
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted field: " + raw);
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace csv

void ExportWorkersCsv(const CrowdDatabase& db, std::ostream& os) {
  os << "handle,online\n";
  for (const auto& w : db.workers()) {
    os << csv::EscapeField(w.handle) << ',' << (w.online ? 1 : 0) << '\n';
  }
}

void ExportTasksCsv(const CrowdDatabase& db, std::ostream& os) {
  os << "text\n";
  for (const auto& t : db.tasks()) {
    os << csv::EscapeField(t.text) << '\n';
  }
}

void ExportAssignmentsCsv(const CrowdDatabase& db, std::ostream& os) {
  os << "worker_id,task_id,score\n";
  for (const auto& a : db.assignments()) {
    os << a.worker << ',' << a.task << ',';
    if (a.has_score) os << a.score;
    os << '\n';
  }
}

namespace {

Result<std::vector<std::vector<std::string>>> ReadCsv(
    std::istream& is, size_t expected_fields, const char* what) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty() || (line.size() == 1 && line[0] == '\r')) continue;
    CS_ASSIGN_OR_RETURN(std::vector<std::string> fields, csv::ParseLine(line));
    if (first) {
      first = false;  // Header row.
      continue;
    }
    if (fields.size() != expected_fields) {
      return Status::InvalidArgument(
          StringPrintf("%s row has %zu fields, expected %zu: %s", what,
                       fields.size(), expected_fields, line.c_str()));
    }
    rows.push_back(std::move(fields));
  }
  return rows;
}

Result<uint32_t> ParseId(const std::string& s, const char* what) {
  if (s.empty()) return Status::InvalidArgument(std::string(what) + " empty");
  char* end = nullptr;
  const unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v > UINT32_MAX) {
    return Status::InvalidArgument(std::string(what) + " not an id: " + s);
  }
  return static_cast<uint32_t>(v);
}

}  // namespace

Result<CrowdDatabase> ImportDatabaseCsv(std::istream& workers,
                                        std::istream& tasks,
                                        std::istream& assignments) {
  CrowdDatabase db;
  CS_ASSIGN_OR_RETURN(auto worker_rows, ReadCsv(workers, 2, "workers"));
  for (const auto& row : worker_rows) {
    db.AddWorker(row[0], row[1] == "1" || row[1] == "true");
  }
  CS_ASSIGN_OR_RETURN(auto task_rows, ReadCsv(tasks, 1, "tasks"));
  for (const auto& row : task_rows) {
    db.AddTask(row[0]);
  }
  CS_ASSIGN_OR_RETURN(auto rows, ReadCsv(assignments, 3, "assignments"));
  for (const auto& row : rows) {
    CS_ASSIGN_OR_RETURN(const uint32_t worker, ParseId(row[0], "worker_id"));
    CS_ASSIGN_OR_RETURN(const uint32_t task, ParseId(row[1], "task_id"));
    if (worker >= db.NumWorkers() || task >= db.NumTasks()) {
      return Status::Corruption(
          StringPrintf("assignment (%u, %u) references unknown row", worker,
                       task));
    }
    CS_RETURN_NOT_OK(db.Assign(worker, task));
    if (!row[2].empty()) {
      char* end = nullptr;
      const double score = std::strtod(row[2].c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("bad score: " + row[2]);
      }
      CS_RETURN_NOT_OK(db.RecordFeedback(worker, task, score));
    }
  }
  return db;
}

Status ExportDatabaseCsvFiles(const CrowdDatabase& db,
                              const std::string& directory) {
  const std::string names[] = {"workers.csv", "tasks.csv", "assignments.csv"};
  for (int i = 0; i < 3; ++i) {
    const std::string path = directory + "/" + names[i];
    std::ofstream out(path, std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + path);
    if (i == 0) ExportWorkersCsv(db, out);
    if (i == 1) ExportTasksCsv(db, out);
    if (i == 2) ExportAssignmentsCsv(db, out);
    if (!out) return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Result<CrowdDatabase> ImportDatabaseCsvFiles(const std::string& directory) {
  std::ifstream workers(directory + "/workers.csv");
  std::ifstream tasks(directory + "/tasks.csv");
  std::ifstream assignments(directory + "/assignments.csv");
  if (!workers || !tasks || !assignments) {
    return Status::IOError("missing CSV files under " + directory);
  }
  return ImportDatabaseCsv(workers, tasks, assignments);
}

}  // namespace crowdselect
