// Abstract crowd-selection interface: every algorithm in the paper's
// evaluation (TDPM, VSM, DRM, TSPM) implements this so the crowd manager,
// evaluation harness and benchmarks treat them uniformly.
#ifndef CROWDSELECT_CROWDDB_SELECTOR_INTERFACE_H_
#define CROWDSELECT_CROWDDB_SELECTOR_INTERFACE_H_

#include <string>
#include <utility>
#include <vector>

#include "crowddb/crowd_database.h"
#include "text/bag_of_words.h"
#include "util/status.h"

namespace crowdselect {

/// A worker and its selection score, descending-score order.
struct RankedWorker {
  WorkerId worker = kInvalidWorkerId;
  double score = 0.0;
};

/// Interface for task-driven crowd-selection algorithms.
class CrowdSelector {
 public:
  virtual ~CrowdSelector() = default;

  /// Algorithm name ("TDPM", "VSM", ...), used by reports.
  virtual std::string Name() const = 0;

  /// Fits the selector on the resolved tasks (T, A, S) in `db`.
  /// The database must outlive the selector.
  virtual Status Train(const CrowdDatabase& db) = 0;

  /// Ranks `candidates` for a new task and returns the top `k` by score.
  /// `task` is the bag-of-words of the incoming task (vocabulary shared
  /// with the training database; unseen terms are ignored).
  virtual Result<std::vector<RankedWorker>> SelectTopK(
      const BagOfWords& task, size_t k,
      const std::vector<WorkerId>& candidates) const = 0;

  /// Feedback hook (paper §4.2): a dispatched task has been resolved and
  /// `scored` pairs each involved worker with its feedback score.
  /// Selectors that support online skill refresh override this; the
  /// default ignores the observation, so batch-only algorithms stay
  /// unchanged until the next Train().
  virtual Status ObserveResolvedTask(
      const BagOfWords& task,
      const std::vector<std::pair<WorkerId, double>>& scored) {
    (void)task;
    (void)scored;
    return Status::OK();
  }
};

/// Passive tap on the resolve path: the crowd manager hands every
/// resolved task's *prediction* (the ranked workers the selector chose,
/// with scores) and *realization* (the feedback each worker earned) to
/// the attached observer BEFORE the scores are folded back into the
/// model. That ordering is the whole point — the observer scores the
/// model against data the model has not yet seen, a true online
/// held-out evaluation (serve::QualityMonitor implements this; crowddb
/// only knows the interface so the layering stays acyclic).
class ResolvedTaskObserver {
 public:
  virtual ~ResolvedTaskObserver() = default;

  /// Called once per resolved task. `predicted` is the selector's ranked
  /// output (descending score); `realized` pairs the dispatched workers
  /// with their feedback scores. Must not call back into the manager.
  virtual void OnResolvedTask(
      const BagOfWords& task, const std::vector<RankedWorker>& predicted,
      const std::vector<std::pair<WorkerId, double>>& realized) = 0;
};

/// Keeps the top-k of a ranked stream. Ties broken by lower worker id so
/// results are deterministic across runs.
class TopKAccumulator {
 public:
  explicit TopKAccumulator(size_t k) : k_(k) {}

  void Offer(WorkerId worker, double score);

  /// Sorted descending by score (ascending id among ties).
  std::vector<RankedWorker> Take();

 private:
  size_t k_;
  std::vector<RankedWorker> heap_;  // Min-heap on (score, -id).
};

}  // namespace crowdselect

#endif  // CROWDSELECT_CROWDDB_SELECTOR_INTERFACE_H_
