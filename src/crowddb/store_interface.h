// The storage-engine interface every write-path consumer (crowd manager,
// dispatcher, CLI) talks to. Two implementations exist:
//
//   * CrowdDatabaseStore — a thin adapter over the original in-memory
//     CrowdDatabase (single-writer, no durability), keeping the legacy
//     embedding (`CrowdManager(&db, ...)`) working unchanged.
//   * CrowdStoreEngine  — the sharded, WAL-backed engine
//     (crowddb/storage_engine.h) with crash recovery and concurrent
//     writers.
//
// Reads return record *copies*: a sharded store cannot hand out stable
// references while concurrent writers mutate the shard. FrozenView() is
// the bulk-read escape hatch — a consistent CrowdDatabase materialization
// for training and analytics.
#ifndef CROWDSELECT_CROWDDB_STORE_INTERFACE_H_
#define CROWDSELECT_CROWDDB_STORE_INTERFACE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "crowddb/crowd_database.h"
#include "util/status.h"

namespace crowdselect {

/// Abstract crowd storage: the mutations of the paper's crowd
/// insertion/update paths plus the point reads the serving path needs.
class CrowdStore {
 public:
  virtual ~CrowdStore() = default;

  // --- Crowd insertion / update -------------------------------------------
  virtual Result<WorkerId> AddWorker(std::string handle, bool online) = 0;
  virtual Result<TaskId> AddTask(std::string text) = 0;
  virtual Status Assign(WorkerId worker, TaskId task) = 0;
  virtual Status RecordFeedback(WorkerId worker, TaskId task,
                                double score) = 0;
  virtual Status UpdateWorkerSkills(WorkerId worker,
                                    std::vector<double> skills) = 0;
  virtual Status UpdateTaskCategories(TaskId task,
                                      std::vector<double> categories) = 0;
  virtual Status SetWorkerOnline(WorkerId worker, bool online) = 0;

  // --- Crowd retrieval ----------------------------------------------------
  virtual size_t NumWorkers() const = 0;
  virtual size_t NumTasks() const = 0;
  virtual size_t NumAssignments() const = 0;
  virtual size_t NumScoredAssignments() const = 0;
  virtual Result<WorkerRecord> GetWorkerCopy(WorkerId worker) const = 0;
  virtual Result<TaskRecord> GetTaskCopy(TaskId task) const = 0;
  virtual std::vector<WorkerId> OnlineWorkers() const = 0;
  /// (worker, score) pairs of the scored assignments of `task`.
  virtual std::vector<std::pair<WorkerId, double>> ScoredAnswersOfTask(
      TaskId task) const = 0;

  /// A consistent point-in-time view of the whole store as a
  /// CrowdDatabase, for batch training and bulk export. Implementations
  /// either alias live state (adapter) or materialize a copy (engine).
  virtual Result<std::shared_ptr<const CrowdDatabase>> FrozenView() const = 0;
};

/// Adapter: the legacy single-writer CrowdDatabase behind the CrowdStore
/// interface. `db` must outlive the adapter. FrozenView() aliases the live
/// database without copying — callers must not mutate concurrently, which
/// is exactly the contract CrowdDatabase already had.
class CrowdDatabaseStore : public CrowdStore {
 public:
  explicit CrowdDatabaseStore(CrowdDatabase* db);

  Result<WorkerId> AddWorker(std::string handle, bool online) override;
  Result<TaskId> AddTask(std::string text) override;
  Status Assign(WorkerId worker, TaskId task) override;
  Status RecordFeedback(WorkerId worker, TaskId task, double score) override;
  Status UpdateWorkerSkills(WorkerId worker,
                            std::vector<double> skills) override;
  Status UpdateTaskCategories(TaskId task,
                              std::vector<double> categories) override;
  Status SetWorkerOnline(WorkerId worker, bool online) override;

  size_t NumWorkers() const override;
  size_t NumTasks() const override;
  size_t NumAssignments() const override;
  size_t NumScoredAssignments() const override;
  Result<WorkerRecord> GetWorkerCopy(WorkerId worker) const override;
  Result<TaskRecord> GetTaskCopy(TaskId task) const override;
  std::vector<WorkerId> OnlineWorkers() const override;
  std::vector<std::pair<WorkerId, double>> ScoredAnswersOfTask(
      TaskId task) const override;
  Result<std::shared_ptr<const CrowdDatabase>> FrozenView() const override;

  CrowdDatabase* db() { return db_; }

 private:
  CrowdDatabase* db_;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_CROWDDB_STORE_INTERFACE_H_
