#include "crowddb/crowd_manager.h"

#include "obs/window.h"
#include "util/logging.h"
#include "util/timer.h"

namespace crowdselect {

CrowdManager::CrowdManager(CrowdStore* store,
                           std::unique_ptr<CrowdSelector> selector)
    : store_(store), selector_(std::move(selector)) {
  CS_CHECK(store_ != nullptr);
  CS_CHECK(selector_ != nullptr);
  pool_.CheckInAll(store_->OnlineWorkers());
}

CrowdManager::CrowdManager(CrowdDatabase* db,
                           std::unique_ptr<CrowdSelector> selector)
    : owned_adapter_(std::make_unique<CrowdDatabaseStore>(db)),
      store_(owned_adapter_.get()),
      db_(db),
      selector_(std::move(selector)) {
  CS_CHECK(selector_ != nullptr);
  pool_.CheckInAll(store_->OnlineWorkers());
}

Status CrowdManager::InferCrowdModel() {
  // A consistent cut: against the sharded engine this materializes a
  // frozen copy, so training never sees a half-applied mutation.
  CS_ASSIGN_OR_RETURN(std::shared_ptr<const CrowdDatabase> view,
                      store_->FrozenView());
  CS_RETURN_NOT_OK(selector_->Train(*view));
  trained_ = true;
  resolved_since_training_ = 0;
  return Status::OK();
}

Result<std::vector<RankedWorker>> CrowdManager::SelectCrowd(
    const BagOfWords& task, size_t k) const {
  if (!trained_) {
    return Status::FailedPrecondition(
        "crowd model not inferred yet; call InferCrowdModel()");
  }
  return selector_->SelectTopK(task, k, pool_.Snapshot());
}

Result<std::vector<Answer>> CrowdManager::ProcessTask(
    std::string text, size_t k, TaskDispatcher* dispatcher) {
  // End-to-end blue-path latency (select + dispatch + feedback) under its
  // own SLO window, next to the selection-only serve.select endpoint.
  ScopedTimer slo([](double elapsed_seconds) {
    obs::SloTracker::Global().Record("crowd.process_task",
                                     elapsed_seconds * 1e6);
  });
  CS_ASSIGN_OR_RETURN(const TaskId id, store_->AddTask(std::move(text)));
  CS_ASSIGN_OR_RETURN(const TaskRecord rec, store_->GetTaskCopy(id));
  CS_ASSIGN_OR_RETURN(std::vector<RankedWorker> selected,
                      SelectCrowd(rec.bag, k));
  CS_ASSIGN_OR_RETURN(std::vector<Answer> answers,
                      dispatcher->Dispatch(id, selected));
  if (resolved_observer_ != nullptr || live_skill_updates_) {
    // The dispatcher just recorded every score it returned, and this is
    // a fresh task id — the answers ARE the task's scored set. Reusing
    // them skips a store round-trip per task (which on the sharded
    // engine costs more than the shadow evaluation it feeds).
    std::vector<std::pair<WorkerId, double>> scored;
    scored.reserve(answers.size());
    for (const Answer& a : answers) scored.emplace_back(a.worker, a.score);
    // Shadow evaluation first: the observer must see the prediction
    // against feedback the selector has not folded in yet.
    if (resolved_observer_ != nullptr) {
      resolved_observer_->OnResolvedTask(rec.bag, selected, scored);
    }
    if (live_skill_updates_) {
      CS_RETURN_NOT_OK(selector_->ObserveResolvedTask(rec.bag, scored));
    }
  }
  ++resolved_since_training_;
  if (retrain_interval_ > 0 && resolved_since_training_ >= retrain_interval_) {
    CS_RETURN_NOT_OK(InferCrowdModel());
  }
  return answers;
}

}  // namespace crowdselect
