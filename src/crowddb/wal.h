// Binary write-ahead log for the crowd database (docs/storage.md). Every
// mutation of a durable CrowdStoreEngine is appended here as one typed,
// CRC-framed record *before* it is applied to the in-memory shards, so a
// crash loses nothing that was acknowledged: recovery = last checkpoint +
// replay of the records with a newer sequence number.
//
// On-disk framing, per record (all little-endian):
//
//   u32 payload_length
//   u32 masked CRC-32C of the payload
//   payload:
//     u64 sequence number (monotonic across the store's lifetime)
//     u8  record type (WalRecordType)
//     ... type-specific fields (see WalRecord::SerializePayload)
//
// Replay is tolerant of a torn tail: a truncated header/payload or a CRC
// mismatch ends the log — the valid prefix is recovered and the file is
// truncated back to it before the next append.
#ifndef CROWDSELECT_CROWDDB_WAL_H_
#define CROWDSELECT_CROWDDB_WAL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "crowddb/records.h"
#include "util/status.h"

namespace crowdselect {

/// Mutation kinds the log can carry — one per CrowdStore write operation.
enum class WalRecordType : uint8_t {
  kAddWorker = 1,
  kAddTask = 2,
  kAssign = 3,
  kRecordFeedback = 4,
  kUpdateWorkerSkills = 5,
  kUpdateTaskCategories = 6,
  kSetOnline = 7,
};

/// One logged mutation. A single struct covers every type; which fields
/// are meaningful depends on `type`:
///   kAddWorker             worker, text (handle), flag (online)
///   kAddTask               task, text (raw task text; replay re-tokenizes)
///   kAssign                worker, task
///   kRecordFeedback        worker, task, score
///   kUpdateWorkerSkills    worker, values
///   kUpdateTaskCategories  task, values
///   kSetOnline             worker, flag
struct WalRecord {
  uint64_t seq = 0;
  WalRecordType type = WalRecordType::kAddWorker;
  WorkerId worker = kInvalidWorkerId;
  TaskId task = kInvalidTaskId;
  bool flag = false;
  double score = 0.0;
  std::string text;
  std::vector<double> values;

  /// Serializes seq + type + the type's fields (no framing).
  void SerializePayload(BinaryWriter* writer) const;
  /// Inverse of SerializePayload; rejects unknown types and trailing bytes.
  static Result<WalRecord> DeserializePayload(BinaryReader* reader);

  /// Serializes the full framed record (length + CRC + payload).
  void SerializeFramed(BinaryWriter* writer) const;
};

/// Append-side of the log. Not thread-safe — the owning engine serializes
/// appends under its WAL mutex (which also fixes the global mutation
/// order).
class WalWriter {
 public:
  struct Options {
    /// fsync() after every append. Off by default: the WAL is flushed to
    /// the OS per record (surviving process crashes), syncing is for
    /// machine-crash durability and costs ~ms per append.
    bool sync_every_append = false;
  };

  WalWriter() = default;
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Opens `path` for appending, creating it if absent.
  static Result<WalWriter> Open(const std::string& path, Options options);
  static Result<WalWriter> Open(const std::string& path) {
    return Open(path, Options());
  }

  /// Frames and appends one record; flushed to the OS before returning.
  Status Append(const WalRecord& record);

  /// Flushes and fsyncs the file.
  Status Sync();

  /// Truncates the log to empty (after a checkpoint made its records
  /// redundant) and keeps appending to the same path.
  Status Reset();

  /// Bytes appended through this writer since Open()/Reset().
  uint64_t bytes_appended() const { return bytes_appended_; }
  const std::string& path() const { return path_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  Options options_;
  uint64_t bytes_appended_ = 0;
};

/// Outcome of scanning a log file.
struct WalReplayResult {
  uint64_t records_scanned = 0;  ///< Valid records seen (applied or skipped).
  uint64_t records_applied = 0;  ///< Records passed to the callback.
  uint64_t valid_bytes = 0;      ///< Length of the intact prefix.
  uint64_t last_seq = 0;         ///< Highest sequence number seen.
  bool torn_tail = false;        ///< Trailing bytes after the intact prefix.
};

/// Replays `path`, invoking `apply` for every intact record whose sequence
/// number exceeds `min_seq_exclusive` (records at or below it are already
/// in the checkpoint). A missing file is an empty log. The scan stops at
/// the first torn or corrupt record; everything before it is the recovered
/// prefix. The file itself is not modified — callers truncate to
/// `valid_bytes` before appending again (see TruncateWal).
Result<WalReplayResult> ReplayWal(
    const std::string& path, uint64_t min_seq_exclusive,
    const std::function<Status(const WalRecord&)>& apply);

/// ReplayWal over an in-memory log image instead of a file: the scan core
/// that ReplayWal wraps, exposed for tests and the WAL fuzzer.
Result<WalReplayResult> ReplayWalBuffer(
    std::string bytes, uint64_t min_seq_exclusive,
    const std::function<Status(const WalRecord&)>& apply);

/// Truncates `path` to `valid_bytes` (drops a torn tail).
Status TruncateWal(const std::string& path, uint64_t valid_bytes);

}  // namespace crowdselect

#endif  // CROWDSELECT_CROWDDB_WAL_H_
