#include "crowddb/crowd_database.h"

#include "util/string_util.h"

namespace crowdselect {

namespace {
const std::vector<size_t> kEmptyIndex;
}  // namespace

WorkerId CrowdDatabase::AddWorker(std::string handle, bool online) {
  const WorkerId id = static_cast<WorkerId>(workers_.size());
  workers_.push_back(WorkerRecord{id, std::move(handle), online, {}});
  by_worker_.emplace_back();
  return id;
}

TaskId CrowdDatabase::AddTask(std::string text) {
  BagOfWords bag = BagOfWords::FromText(text, tokenizer_, &vocab_);
  return AddTaskWithBag(std::move(text), std::move(bag));
}

TaskId CrowdDatabase::AddTaskWithBag(std::string text, BagOfWords bag) {
  const TaskId id = static_cast<TaskId>(tasks_.size());
  TaskRecord rec;
  rec.id = id;
  rec.text = std::move(text);
  rec.bag = std::move(bag);
  tasks_.push_back(std::move(rec));
  by_task_.emplace_back();
  return id;
}

Status CrowdDatabase::Assign(WorkerId worker, TaskId task) {
  if (worker >= workers_.size()) {
    return Status::NotFound(StringPrintf("worker %u", worker));
  }
  if (task >= tasks_.size()) {
    return Status::NotFound(StringPrintf("task %u", task));
  }
  const uint64_t key = Key(worker, task);
  if (assignment_index_.count(key)) return Status::OK();  // Idempotent.
  const size_t index = assignments_.size();
  assignments_.push_back(AssignmentRecord{worker, task, false, 0.0});
  assignment_index_.emplace(key, index);
  by_worker_[worker].push_back(index);
  by_task_[task].push_back(index);
  return Status::OK();
}

Status CrowdDatabase::RecordFeedback(WorkerId worker, TaskId task,
                                     double score) {
  auto it = assignment_index_.find(Key(worker, task));
  if (it == assignment_index_.end()) {
    return Status::FailedPrecondition(
        StringPrintf("no assignment (w=%u, t=%u)", worker, task));
  }
  AssignmentRecord& rec = assignments_[it->second];
  if (!rec.has_score) {
    rec.has_score = true;
    ++num_scored_;
  }
  rec.score = score;
  tasks_[task].resolved = true;
  return Status::OK();
}

Status CrowdDatabase::UpdateWorkerSkills(WorkerId worker,
                                         std::vector<double> skills) {
  if (worker >= workers_.size()) {
    return Status::NotFound(StringPrintf("worker %u", worker));
  }
  CS_RETURN_NOT_OK(CheckLatentDim("skills", skills.size()));
  workers_[worker].skills = std::move(skills);
  return Status::OK();
}

Status CrowdDatabase::UpdateTaskCategories(TaskId task,
                                           std::vector<double> categories) {
  if (task >= tasks_.size()) {
    return Status::NotFound(StringPrintf("task %u", task));
  }
  CS_RETURN_NOT_OK(CheckLatentDim("categories", categories.size()));
  tasks_[task].categories = std::move(categories);
  return Status::OK();
}

Status CrowdDatabase::CheckLatentDim(const char* what, size_t size) {
  if (size == 0) return Status::OK();  // "No latent vector" stays legal.
  if (latent_dim_ == 0) {
    latent_dim_ = size;  // First non-empty write fixes K.
    return Status::OK();
  }
  if (size != latent_dim_) {
    return Status::InvalidArgument(
        StringPrintf("%s vector has %zu entries, database latent dimension "
                     "is %zu",
                     what, size, latent_dim_));
  }
  return Status::OK();
}

Status CrowdDatabase::SetWorkerOnline(WorkerId worker, bool online) {
  if (worker >= workers_.size()) {
    return Status::NotFound(StringPrintf("worker %u", worker));
  }
  workers_[worker].online = online;
  return Status::OK();
}

Result<const WorkerRecord*> CrowdDatabase::GetWorker(WorkerId id) const {
  if (id >= workers_.size()) {
    return Status::NotFound(StringPrintf("worker %u", id));
  }
  return &workers_[id];
}

Result<const TaskRecord*> CrowdDatabase::GetTask(TaskId id) const {
  if (id >= tasks_.size()) {
    return Status::NotFound(StringPrintf("task %u", id));
  }
  return &tasks_[id];
}

const std::vector<size_t>& CrowdDatabase::AssignmentsOfWorker(
    WorkerId worker) const {
  if (worker >= by_worker_.size()) return kEmptyIndex;
  return by_worker_[worker];
}

const std::vector<size_t>& CrowdDatabase::AssignmentsOfTask(
    TaskId task) const {
  if (task >= by_task_.size()) return kEmptyIndex;
  return by_task_[task];
}

Result<double> CrowdDatabase::GetScore(WorkerId worker, TaskId task) const {
  auto it = assignment_index_.find(Key(worker, task));
  if (it == assignment_index_.end()) {
    return Status::NotFound(
        StringPrintf("no assignment (w=%u, t=%u)", worker, task));
  }
  const AssignmentRecord& rec = assignments_[it->second];
  if (!rec.has_score) {
    return Status::NotFound(
        StringPrintf("assignment (w=%u, t=%u) has no feedback", worker, task));
  }
  return rec.score;
}

size_t CrowdDatabase::ParticipationOf(WorkerId worker) const {
  if (worker >= by_worker_.size()) return 0;
  size_t n = 0;
  for (size_t index : by_worker_[worker]) {
    if (assignments_[index].has_score) ++n;
  }
  return n;
}

std::vector<WorkerId> CrowdDatabase::OnlineWorkers() const {
  std::vector<WorkerId> out;
  for (const auto& w : workers_) {
    if (w.online) out.push_back(w.id);
  }
  return out;
}

}  // namespace crowdselect
