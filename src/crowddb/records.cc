#include "crowddb/records.h"

namespace crowdselect {

void WorkerRecord::Serialize(BinaryWriter* writer) const {
  writer->WriteU32(id);
  writer->WriteString(handle);
  writer->WriteU8(online ? 1 : 0);
  writer->WriteDoubleVec(skills);
}

Result<WorkerRecord> WorkerRecord::Deserialize(BinaryReader* reader) {
  WorkerRecord rec;
  CS_RETURN_NOT_OK(reader->ReadU32(&rec.id));
  CS_RETURN_NOT_OK(reader->ReadString(&rec.handle));
  uint8_t online = 0;
  CS_RETURN_NOT_OK(reader->ReadU8(&online));
  rec.online = online != 0;
  CS_RETURN_NOT_OK(reader->ReadDoubleVec(&rec.skills));
  return rec;
}

void TaskRecord::Serialize(BinaryWriter* writer) const {
  writer->WriteU32(id);
  writer->WriteString(text);
  bag.Serialize(writer);
  writer->WriteU8(resolved ? 1 : 0);
  writer->WriteDoubleVec(categories);
}

Result<TaskRecord> TaskRecord::Deserialize(BinaryReader* reader) {
  TaskRecord rec;
  CS_RETURN_NOT_OK(reader->ReadU32(&rec.id));
  CS_RETURN_NOT_OK(reader->ReadString(&rec.text));
  CS_ASSIGN_OR_RETURN(rec.bag, BagOfWords::Deserialize(reader));
  uint8_t resolved = 0;
  CS_RETURN_NOT_OK(reader->ReadU8(&resolved));
  rec.resolved = resolved != 0;
  CS_RETURN_NOT_OK(reader->ReadDoubleVec(&rec.categories));
  return rec;
}

void AssignmentRecord::Serialize(BinaryWriter* writer) const {
  writer->WriteU32(worker);
  writer->WriteU32(task);
  writer->WriteU8(has_score ? 1 : 0);
  writer->WriteDouble(score);
}

Result<AssignmentRecord> AssignmentRecord::Deserialize(BinaryReader* reader) {
  AssignmentRecord rec;
  CS_RETURN_NOT_OK(reader->ReadU32(&rec.worker));
  CS_RETURN_NOT_OK(reader->ReadU32(&rec.task));
  uint8_t has = 0;
  CS_RETURN_NOT_OK(reader->ReadU8(&has));
  rec.has_score = has != 0;
  CS_RETURN_NOT_OK(reader->ReadDouble(&rec.score));
  return rec;
}

}  // namespace crowdselect
