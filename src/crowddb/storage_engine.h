// CrowdStoreEngine: the layered storage engine for the crowd database
// (docs/storage.md) — a ShardedCrowdStore for concurrent in-memory state,
// a write-ahead log for durability, and checkpointing that fuses the
// CrowdDatabase snapshot format with WAL truncation behind an atomic
// rename. Crash recovery = last checkpoint + replay of the WAL records
// with a newer sequence number; the replay tolerates a torn tail.
//
// Directory layout (durable mode):
//   <dir>/CHECKPOINT   "CSCK" header (magic, version, sequence) + a
//                      CrowdDatabasePersistence payload; atomically
//                      replaced (tmp + rename) on every Checkpoint().
//   <dir>/wal.log      CRC-framed mutation records (crowddb/wal.h),
//                      truncated after a successful checkpoint.
//   <dir>/MANIFEST     layout/format header, written atomically.
//
// Concurrency protocol (lock order: apply_mu_ -> wal_mu_ -> shard locks):
//   * Every mutation holds apply_mu_ *shared*: allocate id + sequence and
//     append to the WAL under wal_mu_ (the global mutation order), then
//     apply to the shard(s) under their own locks. Writers to different
//     shards only serialize for the microseconds of the WAL append.
//   * Checkpoint() / FrozenView() / BulkImport() hold apply_mu_
//     *exclusive*: every acknowledged mutation is fully applied, so the
//     materialized CrowdDatabase is a consistent cut at a known sequence.
//   * Per-shard skill scans (serve/store_snapshot.h) take one shard lock
//     at a time — snapshot building never stops the world.
#ifndef CROWDSELECT_CROWDDB_STORAGE_ENGINE_H_
#define CROWDSELECT_CROWDDB_STORAGE_ENGINE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "crowddb/sharded_store.h"
#include "crowddb/store_interface.h"
#include "crowddb/wal.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "util/lockdep.h"
#include "util/serialization.h"
#include "util/status.h"

namespace crowdselect {

struct StorageOptions {
  /// Shards for the in-memory store. More shards = less writer contention;
  /// the mapping is recomputed on open, so the count can change between
  /// runs of the same directory.
  size_t num_shards = 8;
  /// fsync the WAL after every append (machine-crash durability). Off by
  /// default: appends are still flushed per record, surviving process
  /// crashes.
  bool sync_every_append = false;
  /// Checkpoint automatically after this many mutations (0 = manual).
  size_t auto_checkpoint_every = 0;
};

/// What Open() found on disk — surfaced for the CLI's dbinfo and tests.
struct StorageOpenStats {
  bool checkpoint_loaded = false;
  uint64_t checkpoint_seq = 0;
  uint64_t wal_records_scanned = 0;
  uint64_t wal_records_applied = 0;
  bool wal_torn_tail = false;
};

/// Parsed contents of a CHECKPOINT file (CSCK header + database payload).
struct CheckpointImage {
  uint64_t seq = 0;
  CrowdDatabase db;
};

/// Parses a CSCK checkpoint image: magic, version, sequence number, then
/// the CrowdDatabasePersistence payload. Shared by recovery and the
/// checkpoint fuzzer; never trusts a length or count from the input.
Result<CheckpointImage> ParseCheckpoint(BinaryReader* reader);

/// Validates the text of a MANIFEST file (header line + format_version).
Status ValidateManifestText(const std::string& text);

class CrowdStoreEngine : public CrowdStore {
 public:
  static constexpr uint32_t kCheckpointMagic = 0x4B435343;  // "CSCK".
  static constexpr uint32_t kCheckpointVersion = 1;
  static constexpr uint32_t kManifestVersion = 1;
  static constexpr const char* kCheckpointFile = "CHECKPOINT";
  static constexpr const char* kWalFile = "wal.log";
  static constexpr const char* kManifestFile = "MANIFEST";

  /// Opens (or creates) a durable store under `dir`: loads the checkpoint
  /// if present, replays the WAL past the checkpoint sequence, truncates a
  /// torn tail, and starts appending.
  static Result<std::unique_ptr<CrowdStoreEngine>> Open(
      const std::string& dir, const StorageOptions& options = {});

  /// A purely in-memory engine (no directory, no WAL): the sharded
  /// concurrent store without durability, for tests and transient runs.
  static std::unique_ptr<CrowdStoreEngine> OpenEphemeral(
      const StorageOptions& options = {});

  // --- CrowdStore interface ------------------------------------------------

  Result<WorkerId> AddWorker(std::string handle, bool online) override;
  Result<TaskId> AddTask(std::string text) override;
  Status Assign(WorkerId worker, TaskId task) override;
  Status RecordFeedback(WorkerId worker, TaskId task, double score) override;
  Status UpdateWorkerSkills(WorkerId worker,
                            std::vector<double> skills) override;
  Status UpdateTaskCategories(TaskId task,
                              std::vector<double> categories) override;
  Status SetWorkerOnline(WorkerId worker, bool online) override;

  size_t NumWorkers() const override { return store_.num_workers(); }
  size_t NumTasks() const override { return store_.num_tasks(); }
  size_t NumAssignments() const override { return store_.num_assignments(); }
  size_t NumScoredAssignments() const override { return store_.num_scored(); }
  Result<WorkerRecord> GetWorkerCopy(WorkerId worker) const override {
    return store_.GetWorkerCopy(worker);
  }
  Result<TaskRecord> GetTaskCopy(TaskId task) const override {
    return store_.GetTaskCopy(task);
  }
  std::vector<WorkerId> OnlineWorkers() const override {
    return store_.OnlineWorkers();
  }
  std::vector<std::pair<WorkerId, double>> ScoredAnswersOfTask(
      TaskId task) const override {
    return store_.ScoredAnswersOfTask(task);
  }

  /// Materializes a consistent CrowdDatabase copy (exclusive cut).
  Result<std::shared_ptr<const CrowdDatabase>> FrozenView() const override;

  // --- Engine operations ---------------------------------------------------

  /// Writes a CHECKPOINT at the current sequence, then truncates the WAL.
  /// No-op (OK) for ephemeral stores.
  Status Checkpoint();

  /// Loads an entire CrowdDatabase into an *empty* store, bypassing the
  /// WAL (bulk load), then checkpoints so the data is durable. Fails with
  /// FailedPrecondition on a non-empty store.
  Status BulkImport(const CrowdDatabase& db);

  bool durable() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }
  const StorageOptions& options() const { return options_; }
  const StorageOpenStats& open_stats() const { return open_stats_; }
  uint64_t last_sequence() const {
    return last_seq_.load(std::memory_order_acquire);
  }
  uint64_t checkpoint_sequence() const {
    return checkpoint_seq_.load(std::memory_order_acquire);
  }

  // --- Per-shard scans (serve-path snapshot building) ----------------------

  size_t num_shards() const { return store_.num_shards(); }
  /// Latent dimension K (0 until skills/categories were written).
  size_t latent_dim() const { return store_.latent_dim(); }
  /// Visits every worker in `shard` under that shard's shared lock only.
  void ForEachWorkerInShard(
      size_t shard,
      const std::function<void(const WorkerRecord&)>& fn) const {
    store_.ForEachWorkerInShard(shard, fn);
  }
  ShardedCrowdStore::ShardCounts CountsOfShard(size_t shard) const {
    return store_.CountsOfShard(shard);
  }

  /// Refreshes the storage.shard.<i>.* record gauges.
  void UpdateShardGauges() const;

 private:
  CrowdStoreEngine(std::string dir, const StorageOptions& options);

  /// Allocation + WAL append under wal_mu_; rolls the id/sequence counters
  /// back if the append fails, so acknowledged ids stay dense.
  Result<uint64_t> LogMutation(WalRecord* record);

  /// Applies one replayed WAL record (Open() only; no logging, no locks
  /// beyond the shards').
  Status ApplyReplayed(const WalRecord& record);

  /// Loads `db` into the shards without logging; used by checkpoint
  /// loading and BulkImport. Caller must exclude writers.
  void LoadDatabase(const CrowdDatabase& db);

  Status ValidateManifest() const;
  Status WriteManifest() const;
  Status CheckpointLocked();  ///< Body of Checkpoint(); apply_mu_ held.
  void MaybeAutoCheckpoint();

  std::string dir_;  ///< Empty for ephemeral engines.
  StorageOptions options_;
  ShardedCrowdStore store_;

  /// Writers shared, consistent cuts exclusive (see file comment).
  /// Lockdep-instrumented: the documented apply -> wal -> shard order is
  /// enforced at runtime in debug/TSan builds.
  mutable lockdep::SharedMutex apply_mu_{"crowddb.apply"};
  /// Global mutation order: id allocation + WAL append + tokenization.
  lockdep::Mutex wal_mu_{"crowddb.wal"};
  std::optional<WalWriter> wal_;

  // Guarded by wal_mu_ for writes; atomics so readers don't lock.
  std::atomic<uint64_t> last_seq_{0};
  std::atomic<uint32_t> next_worker_id_{0};
  std::atomic<uint32_t> next_task_id_{0};
  std::atomic<uint64_t> checkpoint_seq_{0};
  std::atomic<uint64_t> mutations_since_checkpoint_{0};

  /// Task-text vocabulary; mutated only under wal_mu_ (tokenization is
  /// part of the global mutation order so replay rebuilds identical term
  /// ids), read under exclusive apply_mu_.
  Vocabulary vocab_;
  Tokenizer tokenizer_{TokenizerOptions{.remove_stopwords = true}};

  StorageOpenStats open_stats_;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_CROWDDB_STORAGE_ENGINE_H_
