// Task dispatcher (paper Fig. 1): distributes a task to the selected
// workers, collects their answers, and writes assignments + feedback scores
// back into the crowd storage engine.
#ifndef CROWDSELECT_CROWDDB_DISPATCHER_H_
#define CROWDSELECT_CROWDDB_DISPATCHER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "crowddb/selector_interface.h"
#include "crowddb/store_interface.h"

namespace crowdselect {

/// One collected answer.
struct Answer {
  WorkerId worker = kInvalidWorkerId;
  std::string text;
  double score = 0.0;  ///< Realized feedback score, as recorded.
};

/// Callback that produces a worker's answer text for a task. In production
/// this is the human worker; in this reproduction it is a simulated
/// answerer (see datagen/answers.h).
using AnswerFn = std::function<std::string(WorkerId, const TaskRecord&)>;

/// Callback that scores an answer (thumbs-up count, best-answer Jaccard...).
using FeedbackFn =
    std::function<double(WorkerId, const TaskRecord&, const std::string&)>;

/// Synchronous dispatcher: Dispatch() assigns, collects, scores and marks
/// the task resolved in one call. Writes go through the CrowdStore
/// interface, so the same dispatcher drives the legacy in-memory database
/// and the sharded WAL-backed engine; against the engine, the per-task
/// feedback loop is shard-local.
class TaskDispatcher {
 public:
  /// `store` must outlive the dispatcher.
  TaskDispatcher(CrowdStore* store, AnswerFn answer_fn, FeedbackFn feedback_fn)
      : store_(store),
        answer_fn_(std::move(answer_fn)),
        feedback_fn_(std::move(feedback_fn)) {}

  /// Legacy embedding: dispatch directly against a CrowdDatabase (which
  /// must outlive the dispatcher).
  TaskDispatcher(CrowdDatabase* db, AnswerFn answer_fn, FeedbackFn feedback_fn)
      : owned_adapter_(std::make_unique<CrowdDatabaseStore>(db)),
        store_(owned_adapter_.get()),
        answer_fn_(std::move(answer_fn)),
        feedback_fn_(std::move(feedback_fn)) {}

  /// Distributes `task` to `selected` workers; returns the answers.
  Result<std::vector<Answer>> Dispatch(TaskId task,
                                       const std::vector<RankedWorker>& selected);

  size_t tasks_dispatched() const { return tasks_dispatched_; }
  size_t answers_collected() const { return answers_collected_; }

 private:
  std::unique_ptr<CrowdDatabaseStore> owned_adapter_;  ///< Legacy ctor only.
  CrowdStore* store_;
  AnswerFn answer_fn_;
  FeedbackFn feedback_fn_;
  size_t tasks_dispatched_ = 0;
  size_t answers_collected_ = 0;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_CROWDDB_DISPATCHER_H_
