#include "crowddb/wal.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/serialization.h"
#include "util/string_util.h"
#include "util/timer.h"

#ifdef __unix__
#include <unistd.h>
#endif

namespace crowdselect {

namespace {

struct WalMetrics {
  obs::Counter* appends;
  obs::Counter* append_bytes;
  obs::Histogram* append_us;
  obs::Counter* replayed;
  obs::Counter* torn_tails;

  static const WalMetrics& Get() {
    static const WalMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return WalMetrics{
          registry.GetCounter("storage.wal.appends"),
          registry.GetCounter("storage.wal.append_bytes"),
          registry.GetHistogram("storage.wal.append_us",
                                obs::ServeLatencyBucketBounds()),
          registry.GetCounter("storage.wal.replayed_records"),
          registry.GetCounter("storage.wal.torn_tails"),
      };
    }();
    return metrics;
  }
};

Status SyncFile(std::FILE* file) {
#ifdef __unix__
  if (::fsync(::fileno(file)) != 0) {
    return Status::IOError("fsync of WAL failed");
  }
#else
  (void)file;
#endif
  return Status::OK();
}

}  // namespace

void WalRecord::SerializePayload(BinaryWriter* writer) const {
  writer->WriteU64(seq);
  writer->WriteU8(static_cast<uint8_t>(type));
  switch (type) {
    case WalRecordType::kAddWorker:
      writer->WriteU32(worker);
      writer->WriteString(text);
      writer->WriteU8(flag ? 1 : 0);
      break;
    case WalRecordType::kAddTask:
      writer->WriteU32(task);
      writer->WriteString(text);
      break;
    case WalRecordType::kAssign:
      writer->WriteU32(worker);
      writer->WriteU32(task);
      break;
    case WalRecordType::kRecordFeedback:
      writer->WriteU32(worker);
      writer->WriteU32(task);
      writer->WriteDouble(score);
      break;
    case WalRecordType::kUpdateWorkerSkills:
      writer->WriteU32(worker);
      writer->WriteDoubleVec(values);
      break;
    case WalRecordType::kUpdateTaskCategories:
      writer->WriteU32(task);
      writer->WriteDoubleVec(values);
      break;
    case WalRecordType::kSetOnline:
      writer->WriteU32(worker);
      writer->WriteU8(flag ? 1 : 0);
      break;
  }
}

Result<WalRecord> WalRecord::DeserializePayload(BinaryReader* reader) {
  WalRecord rec;
  CS_RETURN_NOT_OK(reader->ReadU64(&rec.seq));
  uint8_t type = 0;
  CS_RETURN_NOT_OK(reader->ReadU8(&type));
  uint8_t flag = 0;
  switch (static_cast<WalRecordType>(type)) {
    case WalRecordType::kAddWorker:
      rec.type = WalRecordType::kAddWorker;
      CS_RETURN_NOT_OK(reader->ReadU32(&rec.worker));
      CS_RETURN_NOT_OK(reader->ReadString(&rec.text));
      CS_RETURN_NOT_OK(reader->ReadU8(&flag));
      rec.flag = flag != 0;
      break;
    case WalRecordType::kAddTask:
      rec.type = WalRecordType::kAddTask;
      CS_RETURN_NOT_OK(reader->ReadU32(&rec.task));
      CS_RETURN_NOT_OK(reader->ReadString(&rec.text));
      break;
    case WalRecordType::kAssign:
      rec.type = WalRecordType::kAssign;
      CS_RETURN_NOT_OK(reader->ReadU32(&rec.worker));
      CS_RETURN_NOT_OK(reader->ReadU32(&rec.task));
      break;
    case WalRecordType::kRecordFeedback:
      rec.type = WalRecordType::kRecordFeedback;
      CS_RETURN_NOT_OK(reader->ReadU32(&rec.worker));
      CS_RETURN_NOT_OK(reader->ReadU32(&rec.task));
      CS_RETURN_NOT_OK(reader->ReadDouble(&rec.score));
      break;
    case WalRecordType::kUpdateWorkerSkills:
      rec.type = WalRecordType::kUpdateWorkerSkills;
      CS_RETURN_NOT_OK(reader->ReadU32(&rec.worker));
      CS_RETURN_NOT_OK(reader->ReadDoubleVec(&rec.values));
      break;
    case WalRecordType::kUpdateTaskCategories:
      rec.type = WalRecordType::kUpdateTaskCategories;
      CS_RETURN_NOT_OK(reader->ReadU32(&rec.task));
      CS_RETURN_NOT_OK(reader->ReadDoubleVec(&rec.values));
      break;
    case WalRecordType::kSetOnline:
      rec.type = WalRecordType::kSetOnline;
      CS_RETURN_NOT_OK(reader->ReadU32(&rec.worker));
      CS_RETURN_NOT_OK(reader->ReadU8(&flag));
      rec.flag = flag != 0;
      break;
    default:
      return Status::Corruption(
          StringPrintf("unknown WAL record type %u", type));
  }
  if (!reader->AtEnd()) {
    return Status::Corruption("trailing bytes in WAL record payload");
  }
  return rec;
}

void WalRecord::SerializeFramed(BinaryWriter* writer) const {
  BinaryWriter payload;
  SerializePayload(&payload);
  const std::string& bytes = payload.buffer();
  writer->WriteU32(static_cast<uint32_t>(bytes.size()));
  writer->WriteU32(MaskCrc32(Crc32c(bytes)));
  writer->WriteBytes(bytes.data(), bytes.size());
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      path_(std::move(other.path_)),
      options_(other.options_),
      bytes_appended_(other.bytes_appended_) {}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::move(other.path_);
    options_ = other.options_;
    bytes_appended_ = other.bytes_appended_;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<WalWriter> WalWriter::Open(const std::string& path, Options options) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IOError("cannot open WAL " + path + " for append");
  }
  WalWriter writer;
  writer.file_ = file;
  writer.path_ = path;
  writer.options_ = options;
  return writer;
}

Status WalWriter::Append(const WalRecord& record) {
  CS_CHECK(file_ != nullptr) << "WalWriter not open";
  Timer timer;
  BinaryWriter framed;
  record.SerializeFramed(&framed);
  const std::string& bytes = framed.buffer();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Status::IOError("short write to WAL " + path_);
  }
  // Per-record flush: an acknowledged mutation survives a process crash.
  // sync_every_append additionally survives machine crashes.
  if (std::fflush(file_) != 0) {
    return Status::IOError("flush of WAL " + path_ + " failed");
  }
  if (options_.sync_every_append) CS_RETURN_NOT_OK(SyncFile(file_));
  bytes_appended_ += bytes.size();
  const WalMetrics& metrics = WalMetrics::Get();
  metrics.appends->Increment();
  metrics.append_bytes->Increment(bytes.size());
  metrics.append_us->Record(timer.ElapsedMicros());
  {
    static const uint16_t flight_name =
        obs::FlightRecorder::Global().InternName("storage.wal.append");
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kWalAppend,
                                         flight_name, record.seq,
                                         bytes.size());
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  CS_CHECK(file_ != nullptr) << "WalWriter not open";
  if (std::fflush(file_) != 0) {
    return Status::IOError("flush of WAL " + path_ + " failed");
  }
  return SyncFile(file_);
}

Status WalWriter::Reset() {
  CS_CHECK(file_ != nullptr) << "WalWriter not open";
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot truncate WAL " + path_);
  }
  bytes_appended_ = 0;
  return Status::OK();
}

Result<WalReplayResult> ReplayWal(
    const std::string& path, uint64_t min_seq_exclusive,
    const std::function<Status(const WalRecord&)>& apply) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return WalReplayResult{};
  CS_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(path));
  return ReplayWalBuffer(std::move(reader).Release(), min_seq_exclusive,
                         apply);
}

Result<WalReplayResult> ReplayWalBuffer(
    std::string bytes, uint64_t min_seq_exclusive,
    const std::function<Status(const WalRecord&)>& apply) {
  WalReplayResult result;
  BinaryReader reader(std::move(bytes));

  const WalMetrics& metrics = WalMetrics::Get();
  while (!reader.AtEnd()) {
    // Frame header. Anything short, oversized, or failing the CRC ends the
    // intact prefix — a torn tail from a crash mid-append, not an error.
    uint32_t length = 0, masked_crc = 0;
    if (!reader.ReadU32(&length).ok() || !reader.ReadU32(&masked_crc).ok() ||
        length > reader.remaining()) {
      result.torn_tail = true;
      break;
    }
    std::string payload;
    CS_RETURN_NOT_OK(reader.ReadBytes(&payload, length));
    if (Crc32c(payload) != UnmaskCrc32(masked_crc)) {
      result.torn_tail = true;
      break;
    }
    BinaryReader payload_reader(std::move(payload));
    auto record = WalRecord::DeserializePayload(&payload_reader);
    if (!record.ok()) {
      // The frame passed its CRC but the payload is malformed: this is
      // genuine corruption (or a format skew), not a torn tail.
      return record.status();
    }
    ++result.records_scanned;
    result.valid_bytes += 8 + length;
    result.last_seq = std::max(result.last_seq, record->seq);
    if (record->seq > min_seq_exclusive) {
      CS_RETURN_NOT_OK(apply(*record));
      ++result.records_applied;
      metrics.replayed->Increment();
    }
  }
  if (reader.remaining() > 0) result.torn_tail = true;
  if (result.torn_tail) metrics.torn_tails->Increment();
  return result;
}

Status TruncateWal(const std::string& path, uint64_t valid_bytes) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return Status::OK();
  std::filesystem::resize_file(path, valid_bytes, ec);
  if (ec) {
    return Status::IOError("cannot truncate WAL " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

}  // namespace crowdselect
