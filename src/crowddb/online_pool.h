// Online worker pool: tracks which workers are currently reachable so the
// crowd manager only ranks online candidates (paper §2: "the crowd manager
// returns the workers online as the candidate crowd").
#ifndef CROWDSELECT_CROWDDB_ONLINE_POOL_H_
#define CROWDSELECT_CROWDDB_ONLINE_POOL_H_

#include <mutex>
#include <unordered_set>
#include <vector>

#include "crowddb/records.h"

namespace crowdselect {

/// Thread-safe set of online workers with snapshot retrieval.
class OnlineWorkerPool {
 public:
  /// Marks a worker online. Idempotent.
  void CheckIn(WorkerId worker);
  /// Marks a worker offline. Idempotent.
  void CheckOut(WorkerId worker);

  bool IsOnline(WorkerId worker) const;
  size_t size() const;

  /// Stable (sorted) snapshot of the current online set.
  std::vector<WorkerId> Snapshot() const;

  /// Bulk check-in (dataset bootstrap).
  void CheckInAll(const std::vector<WorkerId>& workers);

 private:
  mutable std::mutex mu_;
  std::unordered_set<WorkerId> online_;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_CROWDDB_ONLINE_POOL_H_
