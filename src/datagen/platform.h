// Synthetic crowdsourcing-platform simulators standing in for the paper's
// Quora / Yahoo! Answer / Stack Overflow crawls (§7.1; substitution
// documented in DESIGN.md §3). Each platform differs in scale, question
// length, vocabulary character and — crucially — feedback model:
// thumbs-up counts (Quora, Stack Overflow) vs best-answer + Jaccard
// (Yahoo! Answer), exactly the two §4.1.5 definitions.
#ifndef CROWDSELECT_DATAGEN_PLATFORM_H_
#define CROWDSELECT_DATAGEN_PLATFORM_H_

#include <string>
#include <vector>

#include "crowddb/crowd_database.h"
#include "datagen/answers.h"
#include "datagen/world.h"

namespace crowdselect {

enum class Platform { kQuora, kYahooAnswer, kStackOverflow };

const char* PlatformName(Platform platform);

/// Feedback models from paper §4.1.5.
enum class FeedbackModel {
  kThumbsUp,    ///< s_ij = non-negative integer thumbs-up count.
  kBestAnswer,  ///< best answerer gets 1; others Jaccard vs the best answer.
};

struct PlatformConfig {
  WorldConfig world;
  AnswerSimConfig answers;
  FeedbackModel feedback = FeedbackModel::kThumbsUp;
  /// Scale factor vs the paper's crawl, recorded in reports.
  double scale_factor = 1.0;
};

/// Scaled-down defaults mirroring the paper's Table 2 structure.
PlatformConfig DefaultPlatformConfig(Platform platform);

/// A generated dataset: the populated crowd database plus the ground truth
/// the evaluation needs (true skills, true per-answer quality).
struct SyntheticDataset {
  Platform platform = Platform::kQuora;
  PlatformConfig config;
  CrowdDatabase db;
  GroundTruthWorld world;
  /// Realized feedback score per (task, slot), aligned with
  /// world.assignment (this is what RecordFeedback stored).
  std::vector<std::vector<double>> feedback;

  /// The "right worker" of a task: the answerer with the highest realized
  /// feedback (the best answerer / highest-scored answer, §7.2.2).
  /// Returns the slot index into world.assignment[task].
  size_t RightWorkerSlot(size_t task) const;
  WorkerId RightWorker(size_t task) const;
};

/// Generates a full platform dataset. Deterministic in (platform, seed).
Result<SyntheticDataset> GeneratePlatformDataset(Platform platform,
                                                 const PlatformConfig& config,
                                                 uint64_t seed);

/// Default-config convenience overload.
Result<SyntheticDataset> GeneratePlatformDataset(Platform platform,
                                                 uint64_t seed);

}  // namespace crowdselect

#endif  // CROWDSELECT_DATAGEN_PLATFORM_H_
