#include "datagen/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace crowdselect {

ZipfDistribution::ZipfDistribution(size_t n, double exponent)
    : exponent_(exponent) {
  CS_CHECK(n > 0) << "Zipf over empty support";
  weights_.resize(n);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t r = 0; r < n; ++r) {
    weights_[r] = std::pow(static_cast<double>(r + 1), -exponent);
    acc += weights_[r];
    cdf_[r] = acc;
  }
  total_ = acc;
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->Uniform() * total_;
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return std::min<size_t>(static_cast<size_t>(it - cdf_.begin()),
                          weights_.size() - 1);
}

double ZipfDistribution::Pmf(size_t r) const {
  CS_DCHECK(r < weights_.size());
  return weights_[r] / total_;
}

}  // namespace crowdselect
