// Zipf-distributed sampling, used for worker participation (a few very
// active workers, a long tail) and for topic vocabularies.
#ifndef CROWDSELECT_DATAGEN_ZIPF_H_
#define CROWDSELECT_DATAGEN_ZIPF_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace crowdselect {

/// Zipf(s) over ranks {0, ..., n-1}: P(rank r) proportional to
/// 1 / (r+1)^s. Sampling is O(log n) via the cached CDF.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double exponent);

  size_t Sample(Rng* rng) const;

  /// Probability of rank r.
  double Pmf(size_t r) const;

  /// The unnormalized weights 1/(r+1)^s (useful as mixture weights).
  const std::vector<double>& weights() const { return weights_; }

  size_t size() const { return weights_.size(); }
  double exponent() const { return exponent_; }

 private:
  double exponent_;
  std::vector<double> weights_;
  std::vector<double> cdf_;
  double total_ = 0.0;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_DATAGEN_ZIPF_H_
