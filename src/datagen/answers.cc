#include "datagen/answers.h"

#include <algorithm>
#include <cmath>

namespace crowdselect {

double AnswerSimulator::QualityOf(double performance) const {
  const double q = 1.0 / (1.0 + std::exp(-performance / config_.quality_scale));
  return std::clamp(q, config_.min_quality, config_.max_quality);
}

BagOfWords AnswerSimulator::SimulateAnswer(const Vector& task_categories,
                                           double performance,
                                           Rng* rng) const {
  const double quality = QualityOf(performance);
  const size_t vocab = generator_->params().vocab_size();
  const double len = rng->Normal(config_.mean_answer_length,
                                 config_.answer_length_stddev);
  const size_t num_tokens = static_cast<size_t>(std::max(4.0, len));

  const Vector softmax = task_categories.Softmax();
  std::vector<double> topic_weights(softmax.data());

  BagOfWords bag;
  for (size_t p = 0; p < num_tokens; ++p) {
    if (rng->Bernoulli(quality)) {
      // On-topic token: category from the task's mixture, term from the
      // ground-truth language model.
      const size_t z = rng->Discrete(topic_weights);
      bag.Add(generator_->SampleTermFromCategory(z, rng));
    } else {
      // Noise token: uniform over the vocabulary.
      bag.Add(static_cast<TermId>(rng->UniformInt(vocab)));
    }
  }
  return bag;
}

}  // namespace crowdselect
