// Simulated answer texts. The Yahoo! Answer feedback model (paper §4.1.5)
// needs actual answer *content*: the best answerer gets score 1 and every
// other worker is scored by the Jaccard distance between their answer and
// the best answer. We synthesize answers whose fidelity to the task's
// topical language model increases with the worker's true performance, so
// Jaccard similarity to the best answer correlates with quality — the
// same signal the paper's crawled data carries.
#ifndef CROWDSELECT_DATAGEN_ANSWERS_H_
#define CROWDSELECT_DATAGEN_ANSWERS_H_

#include "model/generative.h"
#include "text/bag_of_words.h"
#include "util/rng.h"

namespace crowdselect {

struct AnswerSimConfig {
  /// Mean token count of an answer.
  double mean_answer_length = 24.0;
  double answer_length_stddev = 6.0;
  /// Quality = clamp(logistic(performance / quality_scale), min, max):
  /// the probability that each answer token is drawn from the task's
  /// topical language model rather than uniform noise. Performance is on
  /// the w . softmax(c) scale (roughly [0, 2*skill_mean]).
  double quality_scale = 1.5;
  double min_quality = 0.05;
  double max_quality = 0.97;
};

/// Generates answer bags against a fixed ground-truth language model.
class AnswerSimulator {
 public:
  AnswerSimulator(const TdpmGenerator* generator, AnswerSimConfig config)
      : generator_(generator), config_(config) {}

  /// Maps a true predictive performance w_i . c_j to token fidelity.
  double QualityOf(double performance) const;

  /// Simulates one answer: on-topic tokens come from the task's mixture
  /// language model (via the generator), noise tokens are uniform.
  BagOfWords SimulateAnswer(const Vector& task_categories, double performance,
                            Rng* rng) const;

 private:
  const TdpmGenerator* generator_;  ///< Not owned.
  AnswerSimConfig config_;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_DATAGEN_ANSWERS_H_
