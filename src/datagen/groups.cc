#include "datagen/groups.h"

#include <unordered_set>

#include "util/string_util.h"

namespace crowdselect {

WorkerGroup MakeGroup(const CrowdDatabase& db, size_t threshold,
                      const std::string& prefix) {
  WorkerGroup group;
  group.threshold = threshold;
  group.name = prefix + StringPrintf("%zu", threshold);
  for (WorkerId w = 0; w < db.NumWorkers(); ++w) {
    if (db.ParticipationOf(w) >= threshold) group.members.push_back(w);
  }
  return group;
}

double GroupTaskCoverage(const CrowdDatabase& db, const WorkerGroup& group) {
  std::unordered_set<WorkerId> members(group.members.begin(),
                                       group.members.end());
  size_t resolved = 0, covered = 0;
  for (const auto& task : db.tasks()) {
    if (!task.resolved) continue;
    ++resolved;
    for (size_t index : db.AssignmentsOfTask(task.id)) {
      const AssignmentRecord& a = db.assignment(index);
      if (a.has_score && members.count(a.worker)) {
        ++covered;
        break;
      }
    }
  }
  return resolved == 0 ? 0.0
                       : static_cast<double>(covered) /
                             static_cast<double>(resolved);
}

std::vector<GroupStats> GroupSweep(const CrowdDatabase& db,
                                   const std::vector<size_t>& thresholds) {
  std::vector<GroupStats> out;
  out.reserve(thresholds.size());
  for (size_t t : thresholds) {
    const WorkerGroup group = MakeGroup(db, t, "g");
    GroupStats stats;
    stats.threshold = t;
    stats.size = group.members.size();
    stats.coverage = GroupTaskCoverage(db, group);
    out.push_back(stats);
  }
  return out;
}

}  // namespace crowdselect
