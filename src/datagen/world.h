// Ground-truth world construction: builds the TDPM model parameters a
// synthetic platform draws from — topic-sliced Zipf vocabularies, Gaussian
// worker skills with per-category strengths/weaknesses, and the assignment
// structure (power-law participation, popularity-skewed answer counts).
#ifndef CROWDSELECT_DATAGEN_WORLD_H_
#define CROWDSELECT_DATAGEN_WORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/generative.h"
#include "model/tdpm_params.h"
#include "util/rng.h"

namespace crowdselect {

/// Knobs describing the structural statistics of a ground-truth world.
struct WorldConfig {
  size_t num_workers = 300;
  size_t num_tasks = 1500;
  /// Number of *true* latent categories.
  size_t num_categories = 8;
  size_t vocab_size = 1000;
  /// Fraction of vocabulary shared across all categories (stopword-ish
  /// mass; higher = harder to infer categories from text).
  double shared_vocab_fraction = 0.15;
  /// Zipf exponent inside each category's vocabulary slice.
  double vocab_zipf_exponent = 1.05;
  /// Mean / stddev of task token counts (platform-specific: Yahoo short,
  /// Quora long).
  double mean_task_length = 12.0;
  double task_length_stddev = 4.0;
  /// Mean skill level and spread of workers across categories.
  double skill_mean = 2.0;
  double skill_stddev = 1.2;
  /// Correlation between adjacent categories' skills (full-Sigma worlds).
  double skill_correlation = 0.3;
  /// Concentration of task category vectors (higher = more single-topic).
  double category_concentration = 1.5;
  /// Feedback noise tau.
  double tau = 0.5;
  /// When true (default), a worker's true performance on a task is
  /// w_i . softmax(c_j) — the paper's Fig. 2 semantics, where the
  /// category vector acts as *proportions* (0.9 CS / 0.1 Math) and the
  /// score is the proportion-weighted skill. When false, the raw
  /// w_i . c_j of the generative model is used.
  bool score_on_softmax_categories = true;
  /// Zipf exponent of worker participation (activity skew).
  double participation_zipf_exponent = 1.1;
  /// Uniform skill bonus given to active workers, scaled by their
  /// (normalized, square-rooted) participation weight. Reproduces the
  /// paper's §7.3.1 observation that "the active workers are usually the
  /// providers of the best answers"; 0 disables the correlation.
  double activity_skill_boost = 1.5;
  /// Baseline answers per task; popular tasks get proportionally more.
  double mean_answers_per_task = 3.0;
  /// Fraction of tasks that are "popular" (attract more, and more active,
  /// answerers).
  double popular_task_fraction = 0.2;
  /// Answer-count multiplier for popular tasks.
  double popular_answer_boost = 2.5;
};

/// A fully sampled ground-truth world plus the structure needed to turn it
/// into a platform dataset.
struct GroundTruthWorld {
  WorldConfig config;
  TdpmModelParams params;             ///< The generating parameters.
  GeneratedWorld draw;                ///< Skills, tasks, raw scores.
  std::vector<std::vector<uint32_t>> assignment;  ///< Task -> workers.
  std::vector<bool> task_popular;     ///< Popularity flag per task.
  /// True predictive performance w_i . c_j per (task, slot) aligned with
  /// `assignment`.
  std::vector<std::vector<double>> true_performance;
};

/// Builds the generating parameters (beta with topic-sliced Zipf
/// vocabularies, correlated skill prior) from a config.
TdpmModelParams BuildWorldParams(const WorldConfig& config, Rng* rng);

/// Samples a complete world: parameters, assignment structure and the
/// Algorithm 1 draw.
Result<GroundTruthWorld> SampleWorld(const WorldConfig& config, uint64_t seed);

}  // namespace crowdselect

#endif  // CROWDSELECT_DATAGEN_WORLD_H_
