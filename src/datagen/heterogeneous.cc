#include "datagen/heterogeneous.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "datagen/zipf.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace crowdselect {

namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

Status Validate(const HeterogeneousConfig& c) {
  if (c.num_types == 0) return Status::InvalidArgument("num_types must be > 0");
  if (c.num_workers == 0 || c.num_tasks == 0) {
    return Status::InvalidArgument("need at least one worker and one task");
  }
  if (c.vocab_per_type == 0) {
    return Status::InvalidArgument("vocab_per_type must be > 0");
  }
  if (c.answers_per_task == 0) {
    return Status::InvalidArgument("answers_per_task must be > 0");
  }
  const double fractions =
      c.specialist_fraction + c.spammer_fraction + c.adversarial_fraction;
  if (c.specialist_fraction < 0 || c.spammer_fraction < 0 ||
      c.adversarial_fraction < 0 || fractions > 1.0 + 1e-9) {
    return Status::InvalidArgument(
        "profile fractions must be non-negative and sum to <= 1");
  }
  return Status::OK();
}

/// Shuffled profile labels honoring the configured mix.
std::vector<WorkerProfile> DrawProfiles(const HeterogeneousConfig& c,
                                        Rng* rng) {
  const size_t n = c.num_workers;
  const size_t spammers =
      static_cast<size_t>(std::floor(c.spammer_fraction * n));
  const size_t adversarial =
      static_cast<size_t>(std::floor(c.adversarial_fraction * n));
  const size_t specialists =
      static_cast<size_t>(std::floor(c.specialist_fraction * n));
  std::vector<WorkerProfile> profiles;
  profiles.reserve(n);
  for (size_t i = 0; i < spammers; ++i) {
    profiles.push_back(WorkerProfile::kSpammer);
  }
  for (size_t i = 0; i < adversarial; ++i) {
    profiles.push_back(WorkerProfile::kAdversarial);
  }
  for (size_t i = 0; i < specialists; ++i) {
    profiles.push_back(WorkerProfile::kSpecialist);
  }
  while (profiles.size() < n) profiles.push_back(WorkerProfile::kGeneralist);
  rng->Shuffle(&profiles);
  return profiles;
}

}  // namespace

const char* WorkerProfileName(WorkerProfile profile) {
  switch (profile) {
    case WorkerProfile::kSpecialist: return "specialist";
    case WorkerProfile::kGeneralist: return "generalist";
    case WorkerProfile::kSpammer: return "spammer";
    case WorkerProfile::kAdversarial: return "adversarial";
  }
  return "unknown";
}

Result<HeterogeneousDataset> GenerateHeterogeneousDataset(
    const HeterogeneousConfig& config) {
  CS_RETURN_NOT_OK(Validate(config));
  Rng rng(config.seed);

  HeterogeneousDataset out;
  out.config = config;
  SyntheticDataset& ds = out.dataset;
  ds.platform = Platform::kQuora;
  ds.config = DefaultPlatformConfig(Platform::kQuora);
  ds.config.world.num_workers = config.num_workers;
  ds.config.world.num_tasks = config.num_tasks;
  ds.config.world.num_categories = config.num_types;
  ds.world.config = ds.config.world;

  // --- Vocabulary: a shared slice plus one exclusive slice per type. -------
  CrowdDatabase& db = ds.db;
  std::vector<TermId> shared_terms;
  shared_terms.reserve(config.shared_vocab);
  for (size_t v = 0; v < config.shared_vocab; ++v) {
    shared_terms.push_back(
        db.mutable_vocabulary()->Intern(StringPrintf("common_%zu", v)));
  }
  std::vector<std::vector<TermId>> type_terms(config.num_types);
  for (size_t t = 0; t < config.num_types; ++t) {
    type_terms[t].reserve(config.vocab_per_type);
    for (size_t v = 0; v < config.vocab_per_type; ++v) {
      type_terms[t].push_back(
          db.mutable_vocabulary()->Intern(StringPrintf("t%zu_term_%zu", t, v)));
    }
  }

  // --- Workers with ground-truth per-type quality. -------------------------
  out.worker_profile = DrawProfiles(config, &rng);
  out.preferred_type.resize(config.num_workers);
  out.true_quality.assign(config.num_workers,
                          std::vector<double>(config.num_types, 0.0));
  for (size_t w = 0; w < config.num_workers; ++w) {
    const WorkerProfile profile = out.worker_profile[w];
    const uint32_t preferred =
        static_cast<uint32_t>(rng.UniformInt(config.num_types));
    out.preferred_type[w] = preferred;
    for (size_t t = 0; t < config.num_types; ++t) {
      double q = 0.0;
      switch (profile) {
        case WorkerProfile::kSpecialist:
          q = (t == preferred) ? rng.Uniform(0.78, 0.95)
                               : rng.Uniform(0.15, 0.35);
          break;
        case WorkerProfile::kGeneralist:
          q = rng.Uniform(0.45, 0.60);
          break;
        case WorkerProfile::kSpammer:
          // Realized feedback is U(0,1) regardless of type.
          q = 0.5;
          break;
        case WorkerProfile::kAdversarial:
          q = rng.Uniform(0.05, 0.15);
          break;
      }
      out.true_quality[w][t] = q;
    }
    db.AddWorker(StringPrintf("w%zu_%s", w, WorkerProfileName(profile)));
  }

  // --- Tasks: Zipf type mix, tokens from own + shared slices. --------------
  const ZipfDistribution type_mix(config.num_types, config.type_zipf_exponent);
  const ZipfDistribution own_term(config.vocab_per_type, 1.05);
  const ZipfDistribution shared_term(std::max<size_t>(config.shared_vocab, 1),
                                     1.0);
  out.task_type.resize(config.num_tasks);
  for (size_t j = 0; j < config.num_tasks; ++j) {
    const uint32_t type = static_cast<uint32_t>(type_mix.Sample(&rng));
    out.task_type[j] = type;
    const size_t length = static_cast<size_t>(std::max(
        4.0,
        std::round(rng.Normal(config.mean_task_length,
                              std::max(1.0, config.mean_task_length / 4.0)))));
    BagOfWords bag;
    std::string text;
    for (size_t l = 0; l < length; ++l) {
      TermId term;
      if (config.shared_vocab > 0 &&
          !rng.Bernoulli(config.own_vocab_fraction)) {
        term = shared_terms[shared_term.Sample(&rng)];
      } else {
        term = type_terms[type][own_term.Sample(&rng)];
      }
      bag.Add(term);
      if (!text.empty()) text += ' ';
      text += db.vocabulary().TermOf(term);
    }
    db.AddTaskWithBag(std::move(text), std::move(bag));
  }

  // --- Assignments + feedback: skewed participation. -----------------------
  const size_t answers =
      std::min<size_t>(config.answers_per_task, config.num_workers);
  const ZipfDistribution participation(config.num_workers,
                                       config.participation_zipf_exponent);
  // Decouple activity rank from worker id (and thus from profile) by
  // shuffling who sits at which activity rank.
  std::vector<size_t> rank_to_worker(config.num_workers);
  for (size_t w = 0; w < config.num_workers; ++w) rank_to_worker[w] = w;
  rng.Shuffle(&rank_to_worker);

  ds.world.assignment.assign(config.num_tasks, {});
  ds.feedback.assign(config.num_tasks, {});
  for (size_t j = 0; j < config.num_tasks; ++j) {
    const uint32_t type = out.task_type[j];
    std::vector<uint32_t> chosen;
    chosen.reserve(answers);
    size_t guard = 0;
    while (chosen.size() < answers && guard < 64 * answers) {
      ++guard;
      const uint32_t w = static_cast<uint32_t>(
          rank_to_worker[participation.Sample(&rng)]);
      if (std::find(chosen.begin(), chosen.end(), w) != chosen.end()) continue;
      chosen.push_back(w);
    }
    // Pathological participation skew can starve the sampler; fill the
    // remainder deterministically.
    for (uint32_t w = 0; chosen.size() < answers; ++w) {
      if (std::find(chosen.begin(), chosen.end(), w) == chosen.end()) {
        chosen.push_back(w);
      }
    }
    for (uint32_t w : chosen) {
      double score;
      if (out.worker_profile[w] == WorkerProfile::kSpammer) {
        score = rng.Uniform();
      } else {
        score = Clamp01(
            rng.Normal(out.true_quality[w][type], config.skill_noise));
      }
      CS_RETURN_NOT_OK(db.Assign(w, static_cast<TaskId>(j)));
      CS_RETURN_NOT_OK(db.RecordFeedback(w, static_cast<TaskId>(j), score));
      ds.world.assignment[j].push_back(w);
      ds.feedback[j].push_back(score);
    }
  }
  return out;
}

}  // namespace crowdselect
