#include "datagen/world.h"

#include <algorithm>
#include <cmath>

#include "datagen/zipf.h"
#include "util/logging.h"

namespace crowdselect {

TdpmModelParams BuildWorldParams(const WorldConfig& config, Rng* rng) {
  const size_t k = config.num_categories;
  const size_t v = config.vocab_size;
  TdpmModelParams params;

  // Worker-skill prior: mean skill_mean everywhere, banded correlation so
  // adjacent categories (e.g. "databases" and "distributed systems") have
  // related skills.
  params.mu_w = Vector(k, config.skill_mean);
  params.sigma_w = Matrix(k, k);
  const double var = config.skill_stddev * config.skill_stddev;
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = 0; b < k; ++b) {
      if (a == b) {
        params.sigma_w(a, b) = var;
      } else if ((a + 1 == b) || (b + 1 == a)) {
        params.sigma_w(a, b) = config.skill_correlation * var;
      }
    }
  }

  // Task-category prior: zero-mean with concentration controlling how
  // peaked softmax(c) is (higher variance = more single-topic tasks).
  params.mu_c = Vector(k, 0.0);
  params.sigma_c = Matrix::Identity(k);
  params.sigma_c *= config.category_concentration;

  params.tau = config.tau;

  // Language model: a shared slice (ambient words every category uses)
  // plus per-category Zipf slices with light bleed-through.
  const size_t shared = static_cast<size_t>(
      static_cast<double>(v) * config.shared_vocab_fraction);
  const size_t per_topic = k > 0 ? (v - shared) / k : 0;
  CS_CHECK(per_topic > 0) << "vocab too small for the category count";
  params.beta = Matrix(k, v);
  const ZipfDistribution shared_zipf(std::max<size_t>(shared, 1), 1.0);
  const ZipfDistribution topic_zipf(per_topic, config.vocab_zipf_exponent);
  for (size_t topic = 0; topic < k; ++topic) {
    // 20% of each topic's mass goes to the shared slice.
    const double shared_mass = shared > 0 ? 0.2 : 0.0;
    for (size_t r = 0; r < shared; ++r) {
      params.beta(topic, r) = shared_mass * shared_zipf.Pmf(r);
    }
    // 75% to its own slice, 5% bleeding into a random other slice so
    // category boundaries are not trivially separable.
    const size_t own_begin = shared + topic * per_topic;
    for (size_t r = 0; r < per_topic; ++r) {
      params.beta(topic, own_begin + r) += 0.75 * topic_zipf.Pmf(r);
    }
    const size_t other = k > 1 ? (topic + 1 + rng->UniformInt(k - 1)) % k : topic;
    const size_t other_begin = shared + other * per_topic;
    for (size_t r = 0; r < per_topic; ++r) {
      params.beta(topic, other_begin + r) += 0.05 * topic_zipf.Pmf(r);
    }
    // Renormalize the row (leftover tail positions get epsilon mass).
    double row = 0.0;
    for (size_t t = 0; t < v; ++t) row += params.beta(topic, t);
    for (size_t t = 0; t < v; ++t) {
      params.beta(topic, t) =
          (params.beta(topic, t) + 1e-9) / (row + 1e-9 * static_cast<double>(v));
    }
  }
  return params;
}

Result<GroundTruthWorld> SampleWorld(const WorldConfig& config,
                                     uint64_t seed) {
  if (config.num_workers == 0 || config.num_tasks == 0) {
    return Status::InvalidArgument("world needs workers and tasks");
  }
  Rng rng(seed);
  GroundTruthWorld world;
  world.config = config;
  world.params = BuildWorldParams(config, &rng);

  // Participation weights: worker rank r gets Zipf weight, so a handful of
  // workers answer most tasks (matches the paper's Fig. 3/5/7 statistics).
  ZipfDistribution participation(config.num_workers,
                                 config.participation_zipf_exponent);

  // Assignment structure: popular tasks draw more answerers; answerers are
  // sampled proportionally to participation weight (so popular questions
  // are disproportionately answered by active workers).
  world.assignment.resize(config.num_tasks);
  world.task_popular.resize(config.num_tasks);
  std::vector<size_t> lengths(config.num_tasks);
  for (size_t j = 0; j < config.num_tasks; ++j) {
    world.task_popular[j] = rng.Bernoulli(config.popular_task_fraction);
    const double lambda =
        config.mean_answers_per_task *
        (world.task_popular[j] ? config.popular_answer_boost : 1.0);
    // At least one answerer per task.
    const int answers = std::max(1, rng.Poisson(lambda));
    auto& slots = world.assignment[j];
    for (int a = 0; a < answers && slots.size() < config.num_workers; ++a) {
      // Rejection on duplicates keeps the set distinct.
      for (int tries = 0; tries < 64; ++tries) {
        const uint32_t w = static_cast<uint32_t>(participation.Sample(&rng));
        if (std::find(slots.begin(), slots.end(), w) == slots.end()) {
          slots.push_back(w);
          break;
        }
      }
    }
    const double len =
        rng.Normal(config.mean_task_length, config.task_length_stddev);
    lengths[j] = static_cast<size_t>(std::max(3.0, len));
  }

  TdpmGenerator generator(world.params);
  CS_ASSIGN_OR_RETURN(
      world.draw,
      generator.Generate(world.assignment, lengths, config.num_workers, &rng));

  // Couple activity to competence: worker rank r (the Zipf participation
  // rank) earns a uniform skill bonus fading with rank. Note that
  // world.draw.scores keeps the raw pre-boost draw; all dataset-facing
  // feedback flows through true_performance below.
  if (config.activity_skill_boost != 0.0) {
    for (size_t i = 0; i < config.num_workers; ++i) {
      const double normalized =
          participation.weights()[i] / participation.weights()[0];
      const double bonus = config.activity_skill_boost * std::sqrt(normalized);
      for (size_t d = 0; d < config.num_categories; ++d) {
        world.draw.worker_skills[i][d] += bonus;
      }
    }
  }

  // Record the noiseless predictive performance for ground-truth labels.
  world.true_performance.resize(config.num_tasks);
  for (size_t j = 0; j < config.num_tasks; ++j) {
    auto& perf = world.true_performance[j];
    perf.reserve(world.assignment[j].size());
    const Vector categories =
        config.score_on_softmax_categories
            ? world.draw.tasks[j].categories.Softmax()
            : world.draw.tasks[j].categories;
    for (uint32_t w : world.assignment[j]) {
      perf.push_back(world.draw.worker_skills[w].Dot(categories));
    }
  }
  return world;
}

}  // namespace crowdselect
