// Heterogeneous workload generator for the task-type router: tasks come
// from a Zipf-distributed mix of distinct types (disjoint vocabulary
// slices plus shared mass), and the worker pool mixes specialists
// (strong on one type, weak elsewhere), generalists, spammers (uniform-
// random answer quality regardless of the task — the Lin/Mausam/Weld
// adversary model's benign form) and adversarial workers (systematically
// low quality). A single global skill matrix underfits this mix; the
// per-type router should not, which is exactly what the router tests
// and the eval comparison measure.
#ifndef CROWDSELECT_DATAGEN_HETEROGENEOUS_H_
#define CROWDSELECT_DATAGEN_HETEROGENEOUS_H_

#include <cstdint>
#include <vector>

#include "datagen/platform.h"
#include "util/status.h"

namespace crowdselect {

struct HeterogeneousConfig {
  size_t num_types = 4;
  size_t num_workers = 120;
  size_t num_tasks = 600;
  /// Vocabulary terms exclusive to each type, plus a shared slice that
  /// every type draws from (stopword-ish mass).
  size_t vocab_per_type = 60;
  size_t shared_vocab = 20;
  /// Zipf exponent of the task-type mix (0 = uniform; higher = one
  /// dominant type with a long tail).
  double type_zipf_exponent = 0.8;
  /// Fraction of a task's tokens drawn from its own type's slice (the
  /// rest come from the shared slice).
  double own_vocab_fraction = 0.8;
  double mean_task_length = 12.0;
  size_t answers_per_task = 5;
  /// Zipf exponent of worker participation (activity skew).
  double participation_zipf_exponent = 0.7;

  // --- Worker profile mix (fractions of the pool) --------------------------
  /// Strong on one preferred type, weak on the others.
  double specialist_fraction = 0.55;
  /// Uniform-random answer quality: U(0,1) regardless of task type.
  double spammer_fraction = 0.15;
  /// Systematically low quality on every task.
  double adversarial_fraction = 0.05;
  // The remainder are generalists: mediocre on every type.

  /// Gaussian noise on realized feedback around the profile's true
  /// quality.
  double skill_noise = 0.08;
  uint64_t seed = 7;
};

/// Ground-truth worker behaviour classes.
enum class WorkerProfile : uint8_t {
  kSpecialist = 0,
  kGeneralist = 1,
  kSpammer = 2,
  kAdversarial = 3,
};

const char* WorkerProfileName(WorkerProfile profile);

/// The generated workload plus the ground truth the router tests need.
/// `dataset` is shaped exactly like a platform dataset (db populated,
/// world.assignment and feedback aligned), so eval/MakeSplit and
/// RunExperiment work unchanged.
struct HeterogeneousDataset {
  HeterogeneousConfig config;
  SyntheticDataset dataset;
  /// Ground-truth type per task.
  std::vector<uint32_t> task_type;
  std::vector<WorkerProfile> worker_profile;
  /// Preferred type per worker (specialists; for others, the type they
  /// are nominally best at, which for spammers is meaningless).
  std::vector<uint32_t> preferred_type;
  /// True expected quality of worker w on a type-t task in [0, 1]
  /// (spammers: 0.5, the mean of their uniform draw).
  std::vector<std::vector<double>> true_quality;
};

/// Deterministic in `config.seed`.
Result<HeterogeneousDataset> GenerateHeterogeneousDataset(
    const HeterogeneousConfig& config);

}  // namespace crowdselect

#endif  // CROWDSELECT_DATAGEN_HETEROGENEOUS_H_
