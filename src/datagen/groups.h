// Participation-threshold worker groups (paper §7.3: Quora_n, Yahoo_n,
// Stack_n) and their statistics (group size, task coverage — Figs. 3/5/7).
#ifndef CROWDSELECT_DATAGEN_GROUPS_H_
#define CROWDSELECT_DATAGEN_GROUPS_H_

#include <string>
#include <vector>

#include "crowddb/crowd_database.h"

namespace crowdselect {

/// The workers who resolved more than / at least `threshold` tasks.
struct WorkerGroup {
  size_t threshold = 1;
  std::vector<WorkerId> members;
  std::string name;  ///< e.g. "Quora5".
};

/// Builds the group of workers whose participation (number of scored
/// assignments) is >= threshold, named `<prefix><threshold>`.
WorkerGroup MakeGroup(const CrowdDatabase& db, size_t threshold,
                      const std::string& prefix);

/// Task coverage: fraction of resolved tasks that at least one group
/// member has resolved (paper §7.3.1).
double GroupTaskCoverage(const CrowdDatabase& db, const WorkerGroup& group);

struct GroupStats {
  size_t threshold = 0;
  size_t size = 0;
  double coverage = 0.0;
};

/// Sweeps thresholds and reports size + coverage per group (the data
/// behind Figs. 3, 5 and 7).
std::vector<GroupStats> GroupSweep(const CrowdDatabase& db,
                                   const std::vector<size_t>& thresholds);

}  // namespace crowdselect

#endif  // CROWDSELECT_DATAGEN_GROUPS_H_
