#include "datagen/platform.h"

#include <algorithm>
#include <cmath>

#include "text/jaccard.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace crowdselect {

const char* PlatformName(Platform platform) {
  switch (platform) {
    case Platform::kQuora:
      return "Quora";
    case Platform::kYahooAnswer:
      return "Yahoo!Answer";
    case Platform::kStackOverflow:
      return "StackOverflow";
  }
  return "?";
}

PlatformConfig DefaultPlatformConfig(Platform platform) {
  PlatformConfig config;
  switch (platform) {
    case Platform::kQuora:
      // Paper: 444k questions, 95k users, 887k answers (~2 answers/task,
      // ~4.7 tasks/user). Long, well-written questions; thumbs-up scores.
      config.world.num_workers = 320;
      config.world.num_tasks = 1800;
      config.world.mean_answers_per_task = 2.0;
      config.world.vocab_size = 1100;
      config.world.mean_task_length = 13.0;
      config.world.task_length_stddev = 4.0;
      config.world.shared_vocab_fraction = 0.15;
      config.feedback = FeedbackModel::kThumbsUp;
      config.scale_factor = 444000.0 / 1800.0;
      break;
    case Platform::kYahooAnswer:
      // Paper: 8866k questions, 1004k users, 26903k answers (~3 answers/
      // task). Short questions (the paper notes VSM suffers here);
      // best-answer feedback.
      config.world.num_workers = 600;
      config.world.num_tasks = 3200;
      config.world.mean_answers_per_task = 3.0;
      config.world.vocab_size = 1400;
      config.world.mean_task_length = 6.0;
      config.world.task_length_stddev = 2.0;
      config.world.shared_vocab_fraction = 0.30;  // Chatty shared words.
      config.feedback = FeedbackModel::kBestAnswer;
      config.answers.mean_answer_length = 18.0;
      config.scale_factor = 8866000.0 / 3200.0;
      break;
    case Platform::kStackOverflow:
      // Paper: 83k questions, 15k users, 236k answers (~2.8 answers/task).
      // Tag-like, low-ambiguity vocabulary (the paper notes VSM is
      // competitive because questions carry curated tags); score feedback.
      config.world.num_workers = 220;
      config.world.num_tasks = 1300;
      config.world.mean_answers_per_task = 2.8;
      config.world.vocab_size = 480;
      config.world.mean_task_length = 8.0;
      config.world.task_length_stddev = 2.5;
      config.world.shared_vocab_fraction = 0.05;  // Crisp tag vocabulary.
      config.world.vocab_zipf_exponent = 1.2;
      config.feedback = FeedbackModel::kThumbsUp;
      config.scale_factor = 83000.0 / 1300.0;
      break;
  }
  return config;
}

size_t SyntheticDataset::RightWorkerSlot(size_t task) const {
  CS_CHECK(task < feedback.size() && !feedback[task].empty());
  size_t best = 0;
  for (size_t s = 1; s < feedback[task].size(); ++s) {
    if (feedback[task][s] > feedback[task][best]) best = s;
  }
  return best;
}

WorkerId SyntheticDataset::RightWorker(size_t task) const {
  return world.assignment[task][RightWorkerSlot(task)];
}

Result<SyntheticDataset> GeneratePlatformDataset(Platform platform,
                                                 const PlatformConfig& config,
                                                 uint64_t seed) {
  SyntheticDataset dataset;
  dataset.platform = platform;
  dataset.config = config;
  CS_ASSIGN_OR_RETURN(dataset.world, SampleWorld(config.world, seed));
  const GroundTruthWorld& world = dataset.world;

  // Intern the synthetic vocabulary so term ids match the world's. Term
  // naming mirrors each platform's flavour (tags vs words).
  const char* prefix =
      platform == Platform::kStackOverflow ? "tag" : "word";
  Vocabulary* vocab = dataset.db.mutable_vocabulary();
  for (size_t v = 0; v < config.world.vocab_size; ++v) {
    const TermId id = vocab->Intern(StringPrintf("%s%zu", prefix, v));
    CS_CHECK(id == v);
  }

  // Workers.
  for (size_t i = 0; i < config.world.num_workers; ++i) {
    dataset.db.AddWorker(StringPrintf("%s_user_%zu", PlatformName(platform), i));
  }

  // Tasks: text is the rendered token sequence (kept human-greppable).
  Rng rng(seed ^ 0x5EEDFACEULL);
  for (size_t j = 0; j < world.draw.tasks.size(); ++j) {
    const GeneratedTask& task = world.draw.tasks[j];
    std::string text;
    for (TermId term : task.tokens) {
      if (!text.empty()) text += ' ';
      text += vocab->TermOf(term);
    }
    const TaskId id = dataset.db.AddTaskWithBag(std::move(text), task.bag);
    CS_CHECK(id == j);
  }

  // Assignments + platform-specific feedback.
  TdpmGenerator generator(world.params);
  AnswerSimulator answer_sim(&generator, config.answers);
  dataset.feedback.resize(world.assignment.size());
  for (size_t j = 0; j < world.assignment.size(); ++j) {
    const auto& slots = world.assignment[j];
    auto& feedback = dataset.feedback[j];
    feedback.resize(slots.size());

    if (config.feedback == FeedbackModel::kThumbsUp) {
      // Thumbs-up: the generated Normal score, truncated to a
      // non-negative integer count (§4.1.5 "Thumbs-up").
      for (size_t slot = 0; slot < slots.size(); ++slot) {
        const double raw = world.true_performance[j][slot] +
                           rng.Normal(0.0, world.params.tau);
        feedback[slot] = std::max(0.0, std::round(raw));
      }
    } else {
      // Best answer (§4.1.5 "Best Answer"): simulate answer texts; the
      // asker marks the (noisily) best one; everyone else is scored by
      // Jaccard similarity to it.
      std::vector<BagOfWords> answers(slots.size());
      std::vector<double> realized(slots.size());
      for (size_t slot = 0; slot < slots.size(); ++slot) {
        const double perf = world.true_performance[j][slot];
        realized[slot] = perf + rng.Normal(0.0, world.params.tau);
        answers[slot] =
            answer_sim.SimulateAnswer(world.draw.tasks[j].categories,
                                      perf, &rng);
      }
      const size_t best = static_cast<size_t>(
          std::max_element(realized.begin(), realized.end()) -
          realized.begin());
      for (size_t slot = 0; slot < slots.size(); ++slot) {
        feedback[slot] =
            slot == best ? 1.0
                         : JaccardSimilarity(answers[slot], answers[best]);
      }
    }

    for (size_t slot = 0; slot < slots.size(); ++slot) {
      CS_RETURN_NOT_OK(dataset.db.Assign(slots[slot], static_cast<TaskId>(j)));
      CS_RETURN_NOT_OK(dataset.db.RecordFeedback(
          slots[slot], static_cast<TaskId>(j), feedback[slot]));
    }
  }
  return dataset;
}

Result<SyntheticDataset> GeneratePlatformDataset(Platform platform,
                                                 uint64_t seed) {
  return GeneratePlatformDataset(platform, DefaultPlatformConfig(platform),
                                 seed);
}

}  // namespace crowdselect
