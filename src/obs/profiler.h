// SIGPROF sampling CPU profiler: Start() arms an ITIMER_PROF interval
// timer; each tick's signal handler captures a raw backtrace into a
// fixed lock-free sample store (no allocation in the handler).
// Stop() disarms the timer; CollapsedStacks() aggregates identical
// stacks and symbolizes frames (dladdr + demangling, hex fallback)
// into the collapsed-stack text consumed by flamegraph.pl:
//
//   crowdselect_cli debug-dump --queries 10000 --profile-out prof.txt
//   flamegraph.pl prof.txt > prof.svg
//
// ITIMER_PROF counts CPU time (user+system), so idle threads produce
// no samples — the profile answers "where do cycles go", not "where
// does wall time go". Unsupported platforms (no <execinfo.h> /
// setitimer) report FailedPrecondition from Start().
#ifndef CROWDSELECT_OBS_PROFILER_H_
#define CROWDSELECT_OBS_PROFILER_H_

#include <cstdint>
#include <string>

#include "util/lockdep.h"
#include "util/status.h"

namespace crowdselect::obs {

class SamplingProfiler {
 public:
  /// Capacity of the fixed sample store; at the default 1 kHz that is
  /// ~16 s of CPU time. Further samples are counted as dropped.
  static constexpr size_t kMaxSamples = 1u << 14;
  static constexpr int kMaxFrames = 32;

  static SamplingProfiler& Global();

  SamplingProfiler() = default;
  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  /// Arms the timer at one sample per `interval_us` of CPU time and
  /// resets the sample store. AlreadyExists when running;
  /// FailedPrecondition on unsupported platforms.
  Status Start(double interval_us = 1000.0);

  /// Disarms the timer and restores the previous SIGPROF disposition.
  /// FailedPrecondition when not running.
  Status Stop();

  bool running() const;

  /// Samples retained (capped at kMaxSamples) and dropped past the cap.
  uint64_t samples() const;
  uint64_t dropped() const;

  /// Collapsed-stack text: one "frame;frame;...;frame count" line per
  /// distinct stack, root first. Call after Stop().
  std::string CollapsedStacks() const;

  /// CollapsedStacks() to a file (tmp + rename).
  Status WriteCollapsedFile(const std::string& path) const;

 private:
  // Serializes Start/Stop; leaf lock. Lock order: obs.profiler is
  // never held while acquiring any other lock.
  mutable lockdep::Mutex mu_{"obs.profiler"};
  bool running_ = false;
};

}  // namespace crowdselect::obs

#endif  // CROWDSELECT_OBS_PROFILER_H_
