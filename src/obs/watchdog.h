// Stall watchdog: operations that should finish within a deadline arm
// themselves (Arm()/ScopedDeadline) in a process-wide registry; a
// background thread scans the registry on a short tick and, when an
// armed operation overruns its deadline, emits a flight-recorder
// "stall" event, increments the watchdog.stalls_total counter, and
// logs a warning with the operation name and overrun. Each armed
// operation fires at most once; Disarm() (the normal completion path)
// simply removes it.
//
// The watchdog is opt-in: when Start() has not been called, Arm() is a
// cheap no-op returning 0, so call sites can arm unconditionally.
#ifndef CROWDSELECT_OBS_WATCHDOG_H_
#define CROWDSELECT_OBS_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <thread>
#include <unordered_map>

#include "util/lockdep.h"

namespace crowdselect::obs {

class Watchdog {
 public:
  static Watchdog& Global();

  Watchdog() = default;
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;
  ~Watchdog() { Stop(); }

  /// Spawns the scanner thread (idempotent while running). `tick_ms`
  /// bounds detection latency: a stall is reported at most one tick
  /// after its deadline passes.
  void Start(double tick_ms = 50.0);

  /// Joins the scanner thread. Idempotent; armed operations stay
  /// registered and are scanned again after a restart.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Registers an operation that should complete within `deadline_ms`.
  /// Returns a token for Disarm(), or 0 when the watchdog is stopped
  /// (Disarm(0) is a no-op). `name` is interned in the flight recorder.
  uint64_t Arm(const char* name, double deadline_ms);

  void Disarm(uint64_t token);

  /// Stalls reported since process start (mirrors watchdog.stalls_total).
  uint64_t stalls() const { return stalls_.load(std::memory_order_relaxed); }

  /// Operations currently armed (tests).
  size_t armed() const;

  /// Runs one scan pass on the caller's thread — deterministic testing
  /// without the background thread.
  void ScanOnce();

 private:
  struct Armed {
    uint16_t name_id = 0;
    std::chrono::steady_clock::time_point deadline;
    bool fired = false;
  };

  void Loop(double tick_ms, uint64_t my_gen);
  void ScanLocked(std::chrono::steady_clock::time_point now);

  std::atomic<bool> running_{false};
  std::atomic<uint64_t> stalls_{0};
  std::atomic<uint64_t> next_token_{1};

  // Guards armed_ and the thread lifecycle; leaf lock (nothing else is
  // acquired while held). Lock order: obs.watchdog after any caller
  // locks, never before them.
  mutable lockdep::Mutex mu_{"obs.watchdog"};
  std::condition_variable_any cv_;
  // Run generation, guarded by mu_. Each loop thread captures the
  // value current when it was spawned and exits once Stop() bumps it;
  // a Start() racing with a Stop()'s join cannot revive the old loop.
  uint64_t run_gen_ = 0;
  std::unordered_map<uint64_t, Armed> armed_;
  std::thread thread_;
};

/// RAII deadline: arms on construction, disarms on destruction. A
/// no-op when the watchdog is stopped or `deadline_ms <= 0`.
class ScopedDeadline {
 public:
  ScopedDeadline(const char* name, double deadline_ms)
      : token_(deadline_ms > 0 ? Watchdog::Global().Arm(name, deadline_ms)
                               : 0) {}
  ~ScopedDeadline() {
    if (token_ != 0) Watchdog::Global().Disarm(token_);
  }

  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  uint64_t token_;
};

}  // namespace crowdselect::obs

#endif  // CROWDSELECT_OBS_WATCHDOG_H_
