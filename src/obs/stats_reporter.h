// Serializes an observability snapshot — every counter, gauge (with
// history), histogram, and an aggregated per-span-name summary — as one
// JSON document, for `crowdselect_cli --stats-out`, the bench harness,
// and tests. Also exports raw spans in Chrome trace_event format and the
// metrics sections in Prometheus text exposition format (scrapeable by a
// node-exporter textfile collector or any file-tailing agent without
// parsing our JSON).
#ifndef CROWDSELECT_OBS_STATS_REPORTER_H_
#define CROWDSELECT_OBS_STATS_REPORTER_H_

#include <atomic>
#include <condition_variable>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace crowdselect::obs {

/// Reads from a registry + trace collector (the globals by default) and
/// writes snapshots. Stateless: every call takes a fresh snapshot.
class StatsReporter {
 public:
  explicit StatsReporter(MetricsRegistry* registry = &MetricsRegistry::Global(),
                         TraceCollector* traces = &TraceCollector::Global())
      : registry_(registry), traces_(traces) {}

  /// Full snapshot as pretty-printed JSON:
  ///   {"counters": {name: value},
  ///    "gauges": {name: {"value": v, "history": [...]}},
  ///    "histograms": {name: {"count","sum","min","max","mean","p50",
  ///                          "p90","p99","buckets":[{"le","count"}]}},
  ///    "spans": [{"name","count","total_us","mean_us","max_us"}],
  ///    "dropped_spans": n,
  ///    "alerts": {"firing": n, "rules": [{"name","metric","state",
  ///               "value","breach_streak","transitions"}]}}
  std::string ToJson() const;

  /// ToJson() to a file; parent directory must exist.
  Status WriteJsonFile(const std::string& path) const;

  /// Raw spans as Chrome trace_event JSON (chrome://tracing, Perfetto).
  std::string ToChromeTraceJson() const;
  Status WriteChromeTraceFile(const std::string& path) const;

  /// Counters, gauges and histograms in Prometheus text exposition format
  /// (version 0.0.4). Names are prefixed `crowdselect_` and sanitized to
  /// the Prometheus charset (dots and other illegal characters become
  /// underscores); histograms expose the classic cumulative
  /// `_bucket{le=...}` / `_sum` / `_count` triple. Every family carries a
  /// `# HELP` line sourced from docs/metrics_registry.txt's description
  /// column (obs/metric_help.h). Loaded alert rules append one labeled
  /// `crowdselect_alert_state{rule="..."}` family (0 ok / 1 pending /
  /// 2 firing). Gauge histories and span aggregates are JSON-only —
  /// Prometheus carries current values.
  std::string ToPrometheusText() const;

  /// ToPrometheusText() to a file, written atomically (temp file + rename)
  /// so a concurrent scraper never reads a half-written exposition.
  Status WritePrometheusFile(const std::string& path) const;

 private:
  MetricsRegistry* registry_;
  TraceCollector* traces_;
};

/// Background thread that re-writes a Prometheus exposition file every
/// `interval_seconds` (plus once on Stop/destruction), turning any
/// long-running command — `crowdselect_cli simulate`, the bench harness —
/// into a scrape target for the textfile collector.
class PeriodicStatsExporter {
 public:
  /// Validating factory: rejects `interval_seconds <= 0` (and NaN) with
  /// InvalidArgument instead of silently clamping, so a misconfigured
  /// `--prom-interval-ms 0` fails loudly at startup. Prefer this over
  /// the constructor, which keeps the legacy clamp-to-1s behaviour.
  static Result<std::unique_ptr<PeriodicStatsExporter>> Create(
      std::string path, double interval_seconds,
      StatsReporter reporter = StatsReporter());

  PeriodicStatsExporter(std::string path, double interval_seconds,
                        StatsReporter reporter = StatsReporter());
  ~PeriodicStatsExporter();

  PeriodicStatsExporter(const PeriodicStatsExporter&) = delete;
  PeriodicStatsExporter& operator=(const PeriodicStatsExporter&) = delete;

  /// Stops the thread and writes one final exposition. Idempotent.
  /// Returns the status of the final write.
  Status Stop();

  /// Completed background writes so far (tests).
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }

 private:
  void Loop(double interval_seconds);

  const std::string path_;
  StatsReporter reporter_;
  std::atomic<uint64_t> writes_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

/// Serializes a standalone metrics snapshot (no trace data) as JSON with
/// the same shape as StatsReporter::ToJson()'s first three sections.
std::string SnapshotToJson(const MetricsSnapshot& snapshot);

}  // namespace crowdselect::obs

#endif  // CROWDSELECT_OBS_STATS_REPORTER_H_
