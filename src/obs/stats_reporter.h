// Serializes an observability snapshot — every counter, gauge (with
// history), histogram, and an aggregated per-span-name summary — as one
// JSON document, for `crowdselect_cli --stats-out`, the bench harness,
// and tests. Also exports raw spans in Chrome trace_event format.
#ifndef CROWDSELECT_OBS_STATS_REPORTER_H_
#define CROWDSELECT_OBS_STATS_REPORTER_H_

#include <iosfwd>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace crowdselect::obs {

/// Reads from a registry + trace collector (the globals by default) and
/// writes snapshots. Stateless: every call takes a fresh snapshot.
class StatsReporter {
 public:
  explicit StatsReporter(MetricsRegistry* registry = &MetricsRegistry::Global(),
                         TraceCollector* traces = &TraceCollector::Global())
      : registry_(registry), traces_(traces) {}

  /// Full snapshot as pretty-printed JSON:
  ///   {"counters": {name: value},
  ///    "gauges": {name: {"value": v, "history": [...]}},
  ///    "histograms": {name: {"count","sum","min","max","mean","p50",
  ///                          "p90","p99","buckets":[{"le","count"}]}},
  ///    "spans": [{"name","count","total_us","mean_us","max_us"}],
  ///    "dropped_spans": n}
  std::string ToJson() const;

  /// ToJson() to a file; parent directory must exist.
  Status WriteJsonFile(const std::string& path) const;

  /// Raw spans as Chrome trace_event JSON (chrome://tracing, Perfetto).
  std::string ToChromeTraceJson() const;
  Status WriteChromeTraceFile(const std::string& path) const;

 private:
  MetricsRegistry* registry_;
  TraceCollector* traces_;
};

/// Serializes a standalone metrics snapshot (no trace data) as JSON with
/// the same shape as StatsReporter::ToJson()'s first three sections.
std::string SnapshotToJson(const MetricsSnapshot& snapshot);

}  // namespace crowdselect::obs

#endif  // CROWDSELECT_OBS_STATS_REPORTER_H_
