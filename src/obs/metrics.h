// Process-wide metrics: named counters, gauges, and fixed-bucket
// histograms behind a thread-safe registry. The hot path (Increment /
// Record / Set) is lock-free — a relaxed atomic op per call — so the
// E-step's pool threads can meter themselves without serializing.
// Registration and snapshots take a mutex; instrument pointers returned
// by the registry stay valid for the registry's lifetime, so call sites
// resolve a name once and hold the pointer.
//
// Everything can be no-op'd at runtime: MetricsRegistry::SetEnabled(false)
// turns every instrument owned by that registry into a cheap branch.
#ifndef CROWDSELECT_OBS_METRICS_H_
#define CROWDSELECT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace crowdselect::obs {

/// Monotonic event counter.
class Counter {
 public:
  // cs:signal-safe — incremented from the profiler's SIGPROF handler.
  void Increment(uint64_t delta = 1) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  std::atomic<uint64_t> value_{0};
  const std::atomic<bool>* enabled_;
};

/// Last-value instrument that also keeps a bounded history of every Set()
/// (the per-iteration ELBO trace, the online-pool size over time...).
/// Set() takes a mutex for the history append; it is meant for
/// once-per-iteration cadence, not per-observation hot loops.
class Gauge {
 public:
  void Set(double value);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  /// Every value passed to Set(), oldest first, capped at kMaxHistory
  /// (older entries are discarded once the cap is hit).
  std::vector<double> History() const;
  void Reset();

  static constexpr size_t kMaxHistory = 4096;

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  std::atomic<double> value_{0.0};
  mutable std::mutex mu_;
  // Ring once kMaxHistory is reached: head_ is the next overwrite slot
  // (= the oldest entry). Erasing from the front instead would memmove
  // the whole 4 KB history on every Set — gauges updated per task (the
  // quality monitor's drift gauges, SLO windows) turn that into real
  // per-request cost.
  std::vector<double> history_;
  size_t history_head_ = 0;
  const std::atomic<bool>* enabled_;
};

/// Fixed-bucket histogram: bucket i counts values <= bounds[i] (and above
/// bounds[i-1]); one overflow bucket catches the rest. Record() is a
/// bucket search plus relaxed atomic adds — no locks, safe from any
/// thread.
class Histogram {
 public:
  void Record(double value);

  uint64_t TotalCount() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Min() const;
  double Max() const;
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<uint64_t> BucketCounts() const;
  void Reset();

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>* enabled, std::vector<double> bounds);

  std::vector<double> bounds_;  ///< Ascending upper bounds.
  std::vector<std::atomic<uint64_t>> buckets_;  ///< bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  const std::atomic<bool>* enabled_;
};

/// Default bucket ladder for latencies in microseconds: 1us .. 10s,
/// roughly 1-2-5 per decade.
const std::vector<double>& LatencyBucketBounds();

/// Geometric (log-scale) bucket ladder: `steps_per_decade` bounds per
/// decade from `min_bound` up to and including `max_bound`. Bounds are
/// exact powers of 10^(1/steps_per_decade), so ladders with the same
/// parameters are identical across processes.
std::vector<double> LogBucketBounds(double min_bound, double max_bound,
                                    int steps_per_decade);

/// Bucket ladder for serve-path latencies: log-scale from 0.1us to 10s at
/// four steps per decade. The serving hot path spans cache hits (single-
/// digit microseconds) to cold fold-ins (milliseconds); the default
/// 1-2-5 ladder is too coarse to resolve tail quantiles across that
/// range, this one keeps every bucket within ~78% of its neighbor.
const std::vector<double>& ServeLatencyBucketBounds();

/// Default bucket ladder for feedback scores (0..inf, linear-ish).
const std::vector<double>& ScoreBucketBounds();

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

struct CounterSample {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
  std::vector<double> history;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;  ///< bounds.size() + 1 entries.
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  /// Bucket-interpolated quantile estimate, q in [0, 1].
  double Quantile(double q) const;
};

/// Point-in-time copy of every instrument in a registry; safe to read,
/// serialize, or diff while the instruments keep moving.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  const CounterSample* FindCounter(std::string_view name) const;
  const GaugeSample* FindGauge(std::string_view name) const;
  const HistogramSample* FindHistogram(std::string_view name) const;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Owns named instruments. Get*() registers on first use and returns a
/// stable pointer; concurrent Get*() for the same name return the same
/// instrument. Instrument reads/writes never block a snapshot.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide default registry used by all built-in
  /// instrumentation.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// First registration fixes the bucket bounds; later callers get the
  /// existing instrument regardless of `bounds`. Defaults to the latency
  /// ladder.
  Histogram* GetHistogram(std::string_view name,
                          const std::vector<double>& bounds = LatencyBucketBounds());

  /// Runtime kill switch: when disabled, every instrument owned by this
  /// registry turns its mutating calls into no-ops. Reads still work.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  MetricsSnapshot Snapshot() const;

  /// Current value of every counter and gauge, name-sorted, without gauge
  /// histories or histogram buckets — the cheap read path the time-series
  /// sampler polls on every tick (Snapshot() copies up to 4096 history
  /// doubles per gauge, which is far too heavy for a 1s cadence).
  std::vector<std::pair<std::string, double>> CurrentValues() const;

  /// Zeroes every instrument (counts, sums, gauge histories). Names and
  /// instrument pointers survive — only values reset.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{true};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace crowdselect::obs

#endif  // CROWDSELECT_OBS_METRICS_H_
