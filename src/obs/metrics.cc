#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace crowdselect::obs {

namespace {

// Atomic min/max for doubles via CAS; `first` flags an untouched slot so
// the first recorded value seeds both extremes.
void AtomicMin(std::atomic<double>* slot, double value) {
  double cur = slot->load(std::memory_order_relaxed);
  while (value < cur &&
         !slot->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* slot, double value) {
  double cur = slot->load(std::memory_order_relaxed);
  while (value > cur &&
         !slot->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicAdd(std::atomic<double>* slot, double value) {
  double cur = slot->load(std::memory_order_relaxed);
  while (!slot->compare_exchange_weak(cur, cur + value,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

void Gauge::Set(double value) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  value_.store(value, std::memory_order_relaxed);
  // cs:lock(obs.metrics.gauge)
  std::lock_guard<std::mutex> lock(mu_);
  if (history_.size() < kMaxHistory) {
    history_.push_back(value);
  } else {
    history_[history_head_] = value;
    history_head_ = (history_head_ + 1) % kMaxHistory;
  }
}

std::vector<double> Gauge::History() const {
  // cs:lock(obs.metrics.gauge)
  std::lock_guard<std::mutex> lock(mu_);
  if (history_head_ == 0) return history_;
  std::vector<double> out;
  out.reserve(history_.size());
  out.insert(out.end(), history_.begin() + static_cast<long>(history_head_),
             history_.end());
  out.insert(out.end(), history_.begin(),
             history_.begin() + static_cast<long>(history_head_));
  return out;
}

void Gauge::Reset() {
  value_.store(0.0, std::memory_order_relaxed);
  // cs:lock(obs.metrics.gauge)
  std::lock_guard<std::mutex> lock(mu_);
  history_.clear();
  history_head_ = 0;
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(const std::atomic<bool>* enabled,
                     std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()),
      enabled_(enabled) {
  CS_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  CS_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
}

void Histogram::Record(double value) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

double Histogram::Min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return TotalCount() == 0 ? 0.0 : v;
}

double Histogram::Max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return TotalCount() == 0 ? 0.0 : v;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

const std::vector<double>& LatencyBucketBounds() {
  static const std::vector<double> kBounds = {
      1,     2,     5,     10,    20,    50,    100,   200,
      500,   1e3,   2e3,   5e3,   1e4,   2e4,   5e4,   1e5,
      2e5,   5e5,   1e6,   2e6,   5e6,   1e7};
  return kBounds;
}

std::vector<double> LogBucketBounds(double min_bound, double max_bound,
                                    int steps_per_decade) {
  CS_CHECK(min_bound > 0.0 && max_bound > min_bound && steps_per_decade > 0)
      << "log bucket ladder needs 0 < min < max and steps_per_decade >= 1";
  std::vector<double> bounds;
  // Generate from the exponent so accumulated multiplication error cannot
  // produce a non-monotonic ladder.
  const double log_min = std::log10(min_bound);
  for (int i = 0;; ++i) {
    const double b = std::pow(10.0, log_min + i / static_cast<double>(steps_per_decade));
    if (b > max_bound * (1.0 + 1e-12)) break;
    bounds.push_back(b);
  }
  if (bounds.empty() || bounds.back() < max_bound * (1.0 - 1e-12)) {
    bounds.push_back(max_bound);
  }
  return bounds;
}

const std::vector<double>& ServeLatencyBucketBounds() {
  static const std::vector<double> kBounds = LogBucketBounds(0.1, 1e7, 4);
  return kBounds;
}

const std::vector<double>& ScoreBucketBounds() {
  static const std::vector<double> kBounds = {0.0, 0.5, 1.0, 2.0,  4.0,
                                              8.0, 16.0, 32.0, 64.0};
  return kBounds;
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

double HistogramSample::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    const uint64_t in_bucket = bucket_counts[i];
    if (static_cast<double>(cumulative + in_bucket) >= target &&
        in_bucket > 0) {
      // Linear interpolation inside the bucket; the overflow bucket and
      // the first bucket fall back to the recorded extremes.
      const double lo = i == 0 ? std::min(min, bounds[0]) : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : std::max(max, lo);
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return max;
}

const CounterSample* MetricsSnapshot::FindCounter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSample* MetricsSnapshot::FindGauge(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSample* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  // cslint: allow(naked-new): leaked singleton, outlives all threads.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  // cs:lock(obs.metrics.registry)
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(&enabled_)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  // cs:lock(obs.metrics.registry)
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const std::vector<double>& bounds) {
  // cs:lock(obs.metrics.registry)
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(&enabled_, bounds)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // cs:lock(obs.metrics.registry)
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.push_back(CounterSample{name, counter->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.push_back(GaugeSample{name, gauge->Value(), gauge->History()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.bounds = hist->bounds();
    s.bucket_counts = hist->BucketCounts();
    s.count = hist->TotalCount();
    s.sum = hist->Sum();
    s.min = hist->Min();
    s.max = hist->Max();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::CurrentValues()
    const {
  // cs:lock(obs.metrics.registry)
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, static_cast<double>(counter->Value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->Value());
  }
  // counters_ and gauges_ are each sorted; one merge keeps the whole list
  // name-ordered so samplers emit deterministic series order.
  std::inplace_merge(
      out.begin(), out.begin() + static_cast<std::ptrdiff_t>(counters_.size()),
      out.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void MetricsRegistry::ResetAll() {
  // cs:lock(obs.metrics.registry)
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace crowdselect::obs
