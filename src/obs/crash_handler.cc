#include "obs/crash_handler.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>

#include "obs/flight_recorder.h"
#include "util/logging.h"

#if defined(__unix__) || defined(__APPLE__)
#define CROWDSELECT_CRASH_HANDLER_POSIX 1
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>
#else
#define CROWDSELECT_CRASH_HANDLER_POSIX 0
#endif

namespace crowdselect::obs {

namespace {

// All handler state is plain fixed-size storage written once at install
// time, so the signal handler never allocates or locks.
struct CrashState {
  std::atomic<bool> installed{false};
  std::atomic<int> dumping{0};
  // Resolved at install time: FlightRecorder::Global() hides a static-
  // local init guard (__cxa_guard_acquire can self-deadlock inside a
  // handler) and a first-call allocation, so the handler must never be
  // the first caller — it uses this cached pointer instead.
  FlightRecorder* recorder = nullptr;
  char dump_path[512] = {};
  char build_info[256] = {};
  char config[1024] = {};
};

CrashState g_crash;

// Copies `src` into `dst`, truncating, replacing JSON-hostile bytes so
// the handler can splice the string into a JSON document verbatim.
void CopySanitized(char* dst, size_t dst_size, const std::string& src) {
  const size_t n = std::min(src.size(), dst_size - 1);
  for (size_t i = 0; i < n; ++i) {
    const unsigned char c = static_cast<unsigned char>(src[i]);
    dst[i] = (c < 0x20 || c == '"' || c == '\\' || c >= 0x7f)
                 ? '_'
                 : static_cast<char>(c);
  }
  dst[n] = '\0';
}

#if CROWDSELECT_CRASH_HANDLER_POSIX

// cs:signal-safe
const char* SignalName(int signo) {
  switch (signo) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    default: return "signal";
  }
}

// Async-signal-safe: open + DumpToFd + close. First caller wins; a
// fault inside the dump (or abort() after the terminate dump) sees the
// guard already taken and falls straight through to the default
// disposition.
// cs:signal-safe
void WriteCrashDumpFromHandler(const char* reason) {
  int expected = 0;
  if (!g_crash.dumping.compare_exchange_strong(expected, 1,
                                               std::memory_order_acq_rel)) {
    return;
  }
  if (g_crash.recorder == nullptr) return;
  const int fd = ::open(g_crash.dump_path, O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd >= 0) {
    g_crash.recorder->DumpToFd(fd, reason, g_crash.build_info,
                               g_crash.config);
    ::close(fd);
  }
}

// cs:signal-safe
void CrashSignalHandler(int signo, siginfo_t* /*info*/, void* /*ctx*/) {
  WriteCrashDumpFromHandler(SignalName(signo));
  // SA_RESETHAND restored the default disposition; die with it so the
  // parent still observes the real termination signal.
  ::raise(signo);
}

// cs:signal-safe
void CrashTerminateHandler() {
  WriteCrashDumpFromHandler("terminate");
  std::abort();
}

#endif  // CROWDSELECT_CRASH_HANDLER_POSIX

}  // namespace

Status InstallCrashHandler(const CrashHandlerOptions& options) {
  if (options.dump_dir.empty()) {
    return Status::InvalidArgument("crash handler requires a dump_dir");
  }
#if !CROWDSELECT_CRASH_HANDLER_POSIX
  return Status::FailedPrecondition(
      "crash handler requires POSIX signals on this platform");
#else
  std::error_code ec;
  std::filesystem::create_directories(options.dump_dir, ec);
  if (ec) {
    return Status::IOError("cannot create crash dump dir " +
                           options.dump_dir + ": " + ec.message());
  }
  const std::string path = options.dump_dir + "/crash_" +
                           std::to_string(::getpid()) + ".jsonl";
  if (path.size() >= sizeof(g_crash.dump_path)) {
    return Status::InvalidArgument("crash dump path too long: " + path);
  }
  std::memcpy(g_crash.dump_path, path.c_str(), path.size() + 1);
  CopySanitized(g_crash.build_info, sizeof(g_crash.build_info),
                options.build_info);
  CopySanitized(g_crash.config, sizeof(g_crash.config), options.config);
  // Force the recorder singleton into existence while we can still
  // allocate; the handler reads the cached pointer only.
  g_crash.recorder = &FlightRecorder::Global();

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = CrashSignalHandler;
  action.sa_flags = SA_SIGINFO | SA_RESETHAND;
  sigemptyset(&action.sa_mask);
  const int signals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};
  for (const int signo : signals) {
    if (::sigaction(signo, &action, nullptr) != 0) {
      return Status::IOError(std::string("sigaction failed for ") +
                             SignalName(signo));
    }
  }
  std::set_terminate(CrashTerminateHandler);
  g_crash.installed.store(true, std::memory_order_release);
  CS_LOG(Info) << "crash handler installed, dump path " << path;
  return Status::OK();
#endif
}

bool CrashHandlerInstalled() {
  return g_crash.installed.load(std::memory_order_acquire);
}

std::string CrashDumpPath() {
  if (!CrashHandlerInstalled()) return "";
  return g_crash.dump_path;
}

Status WriteDiagnosticDump(const std::string& path, const char* reason) {
  return FlightRecorder::Global().WriteJsonlFile(path, reason);
}

}  // namespace crowdselect::obs
