#include "obs/metric_help.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace crowdselect::obs {

namespace {

struct HelpEntry {
  std::string_view name;
  std::string_view help;
};

constexpr HelpEntry kHelpTable[] = {
#include "metric_help_gen.inc"
};

constexpr size_t kHelpTableSize = sizeof(kHelpTable) / sizeof(kHelpTable[0]);

}  // namespace

std::string MetricHelp(std::string_view metric) {
  // Exact entries and wildcards share the table; the registry is sorted,
  // so exact lookup is a binary search over the full table (wildcard
  // names like "quality.*" never equal a real metric name).
  const auto it = std::lower_bound(
      kHelpTable, kHelpTable + kHelpTableSize, metric,
      [](const HelpEntry& e, std::string_view name) { return e.name < name; });
  if (it != kHelpTable + kHelpTableSize && it->name == metric &&
      !it->help.empty()) {
    return std::string(it->help);
  }
  // Longest matching wildcard ("storage.shard.*" beats "storage.*" if
  // both existed).
  std::string_view best_help;
  size_t best_len = 0;
  for (const HelpEntry& e : kHelpTable) {
    if (e.name.size() < 2 || e.name.back() != '*' || e.help.empty()) continue;
    const std::string_view prefix = e.name.substr(0, e.name.size() - 1);
    if (metric.size() >= prefix.size() &&
        metric.substr(0, prefix.size()) == prefix &&
        prefix.size() >= best_len) {
      best_help = e.help;
      best_len = prefix.size();
    }
  }
  if (!best_help.empty()) return std::string(best_help);
  return "crowdselect metric " + std::string(metric) +
         " (no description registered).";
}

size_t MetricHelpTableSize() { return kHelpTableSize; }

}  // namespace crowdselect::obs
