// Always-on "black box" flight recorder: every thread owns a lock-free
// ring of compact structured events (span begin/end, WAL appends,
// checkpoint publishes, cache hits, snapshot swaps, watchdog stalls).
// The hot path is four relaxed atomic word stores plus one release
// cursor store — no mutex, no allocation — so it is safe to leave
// enabled in production and safe to call from contexts where a lock
// would deadlock.
//
// Two readers exist:
//   * Dump()/WriteJsonlFile() merge all rings chronologically into
//     JSONL for the `debug-dump` CLI command and `--flightrec-out`.
//   * DumpToFd() is async-signal-safe (write() + hand-rolled decimal
//     formatting only) and is what the crash handler calls from inside
//     a SIGSEGV handler. Both emit the exact same line format.
//
// Ring slots are std::atomic<uint64_t> words written with relaxed
// stores and published by a release store of the cursor; readers that
// race with writers (the crash handler) may see a stale slot at the
// write frontier but never undefined behaviour, and normal dumps
// quiesce nothing — the ring simply overwrites oldest-first.
#ifndef CROWDSELECT_OBS_FLIGHT_RECORDER_H_
#define CROWDSELECT_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/lockdep.h"
#include "util/status.h"

namespace crowdselect::obs {

/// Event kinds recorded in the flight ring. Values are stable — they
/// appear packed in ring words and symbolically in dump output.
enum class FlightEventType : uint8_t {
  kSpanBegin = 0,     ///< ScopedSpan opened (a = span id).
  kSpanEnd = 1,       ///< ScopedSpan closed (a = duration us).
  kWalAppend = 2,     ///< WAL record appended (a = seq, b = bytes).
  kCheckpoint = 3,    ///< Checkpoint published (a = seq, b = bytes).
  kCacheHit = 4,      ///< Fold-in cache hit (a = key).
  kCacheMiss = 5,     ///< Fold-in cache miss (a = key).
  kSnapshotSwap = 6,  ///< Serve snapshot published (a = version).
  kApply = 7,         ///< Mutation applied to the store (a = seq, b = kind).
  kQuery = 8,         ///< Select query admitted (a = task id, b = k).
  kScanChunk = 9,     ///< Parallel top-k scan chunk (a = begin, b = end).
  kStall = 10,        ///< Watchdog deadline exceeded (a = overrun us).
  kMark = 11,         ///< Free-form marker (debug-dump, tests).
  kRouteDecision = 12,  ///< Router dispatched a query (a = member, b = mode).
  kAlert = 13,  ///< Alert rule changed state (a = rule index, b = new state).
  kKernelScan = 14,  ///< Dense panel scan (a = kernel ordinal, b = quant).
};

/// Stable lowercase name for a FlightEventType ("span_begin", ...).
/// Returns a static string; async-signal-safe.
const char* FlightEventTypeName(FlightEventType type);

/// A decoded flight event, as returned by Snapshot().
struct FlightEvent {
  uint64_t ts_ns = 0;  ///< Nanoseconds since the recorder's time origin.
  FlightEventType type = FlightEventType::kMark;
  uint16_t name_id = 0;
  uint32_t thread_index = 0;
  uint64_t a = 0;
  uint64_t b = 0;
};

namespace internal {

/// Per-thread event ring. Leaked on thread exit (never freed) so the
/// crash handler can walk every ring that ever existed without
/// synchronizing with thread teardown.
struct FlightRing {
  static constexpr size_t kMaxOpenSpans = 32;

  explicit FlightRing(size_t capacity_pow2);
  /// Frees `words`. Only ever runs for rings that were never
  /// registered; registered rings are intentionally leaked.
  ~FlightRing();

  const size_t capacity;  ///< Power of two.
  const size_t mask;      ///< capacity - 1.
  uint32_t thread_index = 0;
  std::atomic<uint64_t> cursor{0};  ///< Next slot index (monotonic).
  /// capacity * 4 words; slot i occupies words [4i, 4i+4). Leaked with
  /// the ring.
  std::atomic<uint64_t>* const words;

  /// Open-span stack for crash dumps: name ids of spans currently open
  /// on this thread, maintained by ScopedSpan via Push/PopSpan.
  std::atomic<uint32_t> open_depth{0};
  std::atomic<uint16_t> open_names[kMaxOpenSpans];
};

}  // namespace internal

/// Process-wide flight recorder. All methods are thread-safe; Record()
/// and the span-stack hooks are lock-free and async-signal-safe once
/// the calling thread's ring exists (the first event on a thread
/// allocates and registers the ring under a mutex).
class FlightRecorder {
 public:
  static constexpr size_t kMaxThreads = 256;
  static constexpr size_t kMaxNames = 1024;

  static FlightRecorder& Global();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Per-thread ring capacity in events, rounded up to a power of two
  /// with a floor of 16. Applies to rings created after the call
  /// (existing rings keep their size). Default 4096.
  void SetCapacityPerThread(size_t events);

  /// Interns `name` (copied) and returns its id; idempotent per string.
  /// Takes the intern mutex — call at registration time, not per event.
  /// Returns 0 (the reserved "?" name) once kMaxNames is exhausted.
  uint16_t InternName(const char* name);

  /// Static string for an interned id; async-signal-safe.
  const char* NameOf(uint16_t id) const;

  /// Records one event on the calling thread's ring. Lock-free.
  void Record(FlightEventType type, uint16_t name_id, uint64_t a = 0,
              uint64_t b = 0);

  /// Open-span stack maintenance, called by ScopedSpan. PushSpan also
  /// records kSpanBegin; PopSpan records kSpanEnd with the duration.
  void PushSpan(uint16_t name_id, uint64_t span_id);
  void PopSpan(uint16_t name_id, uint64_t duration_us);

  /// Nanoseconds since the recorder's time origin (steady clock).
  uint64_t NowNs() const;

  /// Decodes every retained event across all rings, merged by time.
  std::vector<FlightEvent> Snapshot() const;

  /// Total events recorded since process start (not capped by ring
  /// capacity; overwritten events still count).
  uint64_t total_events() const;

  /// One JSON object per line: header, open-span stacks, then events in
  /// chronological order — the exact format DumpToFd() emits.
  std::string Dump(const char* reason) const;

  /// Writes Dump() atomically (tmp + rename).
  Status WriteJsonlFile(const std::string& path, const char* reason) const;

  /// Async-signal-safe dump to an open file descriptor: uses only
  /// write() and stack buffers. `reason`, `build_info` and `config`
  /// must be NUL-terminated strings that are safe to read in a signal
  /// handler (static or preformatted at install time); build_info and
  /// config may be nullptr.
  void DumpToFd(int fd, const char* reason, const char* build_info,
                const char* config) const;

  /// Test hook: drops the calling thread's cached ring pointer (and
  /// its registry-exhausted flag) so the next Record() registers a
  /// fresh ring (simulates a new thread).
  static void ResetThreadForTest();

 private:
  FlightRecorder();

  internal::FlightRing* LocalRing();
  void DecodeRing(const internal::FlightRing& ring,
                  std::vector<FlightEvent>* out) const;

  std::chrono::steady_clock::time_point origin_;
  std::atomic<bool> enabled_{true};
  std::atomic<size_t> capacity_{4096};
  std::atomic<uint64_t> total_events_{0};

  // Ring registry: fixed-size array of leaked ring pointers readable
  // without locks (and from signal handlers); ring_count_ is published
  // with release after the slot store. registry_mu_ serializes writers.
  lockdep::Mutex registry_mu_{"obs.flightrec"};
  std::atomic<internal::FlightRing*> rings_[kMaxThreads] = {};
  std::atomic<uint32_t> ring_count_{0};

  // Name intern table: names_[id] is a stable, never-freed C string;
  // name_count_ published with release. Interning takes registry_mu_.
  std::atomic<const char*> names_[kMaxNames] = {};
  std::atomic<uint32_t> name_count_{0};
};

}  // namespace crowdselect::obs

#endif  // CROWDSELECT_OBS_FLIGHT_RECORDER_H_
