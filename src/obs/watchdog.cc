#include "obs/watchdog.h"

#include <mutex>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace crowdselect::obs {

namespace {

struct WatchdogMetrics {
  Counter* stalls =
      MetricsRegistry::Global().GetCounter("watchdog.stalls_total");
};

WatchdogMetrics& GetWatchdogMetrics() {
  static WatchdogMetrics metrics;
  return metrics;
}

}  // namespace

Watchdog& Watchdog::Global() {
  // Leaked singleton; armed entries may be disarmed from threads
  // that outlive static destruction order. cslint: allow(naked-new)
  static Watchdog* watchdog = new Watchdog();
  return *watchdog;
}

void Watchdog::Start(double tick_ms) {
  // cs:lock(obs.watchdog)
  std::unique_lock<lockdep::Mutex> lock(mu_);
  // thread_ is joinable iff running_ is true: Start sets both under
  // mu_, and Stop clears both in one critical section below.
  if (running_.load(std::memory_order_acquire)) return;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&Watchdog::Loop, this, tick_ms <= 0 ? 50.0 : tick_ms,
                        run_gen_);
}

void Watchdog::Stop() {
  std::thread to_join;
  {
    // cs:lock(obs.watchdog)
    std::unique_lock<lockdep::Mutex> lock(mu_);
    if (!thread_.joinable()) return;
    // Bumping the generation stops this loop thread and only it: a
    // Start() that sneaks in before the join below spawns a new thread
    // on the new generation without resurrecting the old one, and sees
    // running_ already cleared here rather than after the join.
    ++run_gen_;
    running_.store(false, std::memory_order_release);
    cv_.notify_all();
    to_join = std::move(thread_);
  }
  to_join.join();
}

uint64_t Watchdog::Arm(const char* name, double deadline_ms) {
  if (!running()) return 0;
  const uint16_t name_id = FlightRecorder::Global().InternName(name);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(static_cast<int64_t>(deadline_ms * 1000.0));
  const uint64_t token = next_token_.fetch_add(1, std::memory_order_relaxed);
  // cs:lock(obs.watchdog)
  std::unique_lock<lockdep::Mutex> lock(mu_);
  armed_.emplace(token, Armed{name_id, deadline, false});
  return token;
}

void Watchdog::Disarm(uint64_t token) {
  if (token == 0) return;
  // cs:lock(obs.watchdog)
  std::unique_lock<lockdep::Mutex> lock(mu_);
  armed_.erase(token);
}

size_t Watchdog::armed() const {
  // cs:lock(obs.watchdog)
  std::unique_lock<lockdep::Mutex> lock(mu_);
  return armed_.size();
}

void Watchdog::ScanLocked(std::chrono::steady_clock::time_point now) {
  for (auto& [token, op] : armed_) {
    if (op.fired || now < op.deadline) continue;
    op.fired = true;
    const uint64_t overrun_us =
        static_cast<uint64_t>(std::chrono::duration_cast<
                                  std::chrono::microseconds>(now - op.deadline)
                                  .count());
    FlightRecorder::Global().Record(FlightEventType::kStall, op.name_id,
                                    overrun_us, token);
    stalls_.fetch_add(1, std::memory_order_relaxed);
    GetWatchdogMetrics().stalls->Increment();
    CS_LOG(Warning) << "watchdog: operation "
                    << FlightRecorder::Global().NameOf(op.name_id)
                    << " exceeded its deadline by " << overrun_us << " us";
  }
}

void Watchdog::ScanOnce() {
  // cs:lock(obs.watchdog)
  std::unique_lock<lockdep::Mutex> lock(mu_);
  ScanLocked(std::chrono::steady_clock::now());
}

void Watchdog::Loop(double tick_ms, uint64_t my_gen) {
  const auto tick =
      std::chrono::microseconds(static_cast<int64_t>(tick_ms * 1000.0));
  // lock-order: obs.watchdog is a leaf lock — the scan body only
  // touches the flight recorder (lock-free) and metrics counters.
  // cs:lock(obs.watchdog)
  std::unique_lock<lockdep::Mutex> lock(mu_);
  while (run_gen_ == my_gen) {
    cv_.wait_for(lock, tick);
    if (run_gen_ != my_gen) break;
    ScanLocked(std::chrono::steady_clock::now());
  }
}

}  // namespace crowdselect::obs
