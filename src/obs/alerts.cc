#include "obs/alerts.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/flight_recorder.h"

namespace crowdselect::obs {

namespace {

// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Status ParseError(size_t line_no, const std::string& detail) {
  return Status::InvalidArgument("alert rules line " + std::to_string(line_no) +
                                 ": " + detail);
}

}  // namespace

const char* AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kOk:
      return "ok";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
  }
  return "?";
}

Result<std::vector<AlertRule>> ParseAlertRules(const std::string& text) {
  std::vector<AlertRule> rules;
  std::istringstream lines(text);
  std::string raw;
  size_t line_no = 0;
  while (std::getline(lines, raw)) {
    ++line_no;
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::string line = Trim(raw);
    if (line.empty()) continue;

    std::istringstream tok(line);
    std::string kw;
    AlertRule rule;
    if (!(tok >> kw) || kw != "alert") {
      return ParseError(line_no, "expected 'alert <name> when ...'");
    }
    if (!(tok >> rule.name)) return ParseError(line_no, "missing rule name");
    if (!(tok >> kw) || kw != "when") {
      return ParseError(line_no, "expected 'when' after the rule name");
    }

    // The condition expression — everything after 'when'. rate(m, W)
    // may contain spaces, so parse from the raw remainder, not tokens.
    std::string expr;
    std::getline(tok, expr);
    expr = Trim(expr);

    bool is_rate = false;
    std::string remainder;
    if (expr.rfind("rate(", 0) == 0) {
      const size_t close = expr.find(')');
      if (close == std::string::npos) {
        return ParseError(line_no, "rate( without closing ')'");
      }
      const std::string inner = expr.substr(5, close - 5);
      const size_t comma = inner.find(',');
      if (comma == std::string::npos) {
        return ParseError(line_no, "rate() needs 'rate(<metric>, <window>)'");
      }
      rule.metric = Trim(inner.substr(0, comma));
      const std::string window_str = Trim(inner.substr(comma + 1));
      try {
        rule.rate_window = static_cast<size_t>(std::stoul(window_str));
      } catch (...) {
        return ParseError(line_no, "bad rate() window '" + window_str + "'");
      }
      if (rule.rate_window < 2) {
        return ParseError(line_no, "rate() window must be >= 2 points");
      }
      is_rate = true;
      remainder = Trim(expr.substr(close + 1));
    } else {
      const size_t space = expr.find_first_of(" \t");
      if (space == std::string::npos) {
        return ParseError(line_no, "expected '<metric> <op> <value>'");
      }
      rule.metric = expr.substr(0, space);
      remainder = Trim(expr.substr(space));
    }
    if (rule.metric.empty()) return ParseError(line_no, "empty metric name");

    std::istringstream rest(remainder);
    std::string op;
    if (!(rest >> op) || (op != ">" && op != "<")) {
      return ParseError(line_no, "expected comparison '>' or '<'");
    }
    if (op == ">") {
      rule.kind = is_rate ? AlertRule::Kind::kRateAbove : AlertRule::Kind::kAbove;
    } else {
      rule.kind = is_rate ? AlertRule::Kind::kRateBelow : AlertRule::Kind::kBelow;
    }
    std::string value_str;
    if (!(rest >> value_str)) return ParseError(line_no, "missing threshold");
    try {
      rule.threshold = std::stod(value_str);
    } catch (...) {
      return ParseError(line_no, "bad threshold '" + value_str + "'");
    }
    std::string tail;
    if (rest >> tail) {
      if (tail != "for") {
        return ParseError(line_no, "unexpected trailing '" + tail + "'");
      }
      std::string hold_str;
      if (!(rest >> hold_str)) return ParseError(line_no, "missing 'for' count");
      try {
        rule.hold_down = static_cast<size_t>(std::stoul(hold_str));
      } catch (...) {
        return ParseError(line_no, "bad 'for' count '" + hold_str + "'");
      }
      if (rule.hold_down < 1) {
        return ParseError(line_no, "'for' count must be >= 1");
      }
      if (rest >> tail) {
        return ParseError(line_no, "unexpected trailing '" + tail + "'");
      }
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

AlertEngine& AlertEngine::Global() {
  // cslint: allow(naked-new): leaked singleton, outlives all threads.
  static AlertEngine* engine = new AlertEngine();
  return *engine;
}

Status AlertEngine::AddRule(const AlertRule& rule) {
  if (rule.name.empty()) return Status::InvalidArgument("alert rule needs a name");
  if (rule.metric.empty()) {
    return Status::InvalidArgument("alert rule '" + rule.name +
                                   "' needs a metric");
  }
  if (rule.hold_down < 1) {
    return Status::InvalidArgument("alert rule '" + rule.name +
                                   "': hold_down must be >= 1");
  }
  if (rule.rate_window < 2 && (rule.kind == AlertRule::Kind::kRateAbove ||
                               rule.kind == AlertRule::Kind::kRateBelow)) {
    return Status::InvalidArgument("alert rule '" + rule.name +
                                   "': rate window must be >= 2");
  }
  // Intern before taking mu_ — InternName takes the recorder's mutex.
  const uint16_t flight_name =
      FlightRecorder::Global().InternName(("alert." + rule.name).c_str());
  // cs:lock(obs.alerts)
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (e.rule.name == rule.name) {
      return Status::AlreadyExists("duplicate alert rule '" + rule.name + "'");
    }
  }
  Entry entry;
  entry.rule = rule;
  entry.flight_name = flight_name;
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Status AlertEngine::LoadRulesFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open alert rules file: " + path);
  std::ostringstream contents;
  contents << in.rdbuf();
  auto rules = ParseAlertRules(contents.str());
  if (!rules.ok()) return rules.status();
  for (const AlertRule& rule : *rules) {
    CS_RETURN_NOT_OK(AddRule(rule));
  }
  return Status::OK();
}

size_t AlertEngine::EvaluateAll(MetricsRegistry* registry,
                                const TimeSeriesStore* series) {
  // Resolve every metric before taking mu_: CurrentValues() and Points()
  // take the registry / store mutexes, and holding mu_ across them would
  // order alert -> registry for no benefit.
  struct Resolved {
    double value = 0.0;
    bool known = false;
  };
  std::vector<std::pair<AlertRule, size_t>> specs;  // rule, entry index
  {
    // cs:lock(obs.alerts)
    std::lock_guard<std::mutex> lock(mu_);
    specs.reserve(entries_.size());
    for (size_t i = 0; i < entries_.size(); ++i) {
      specs.emplace_back(entries_[i].rule, i);
    }
  }

  std::vector<std::pair<std::string, double>> values;
  if (registry != nullptr) values = registry->CurrentValues();
  const auto lookup = [&values](const std::string& name, double* out) {
    const auto it = std::lower_bound(
        values.begin(), values.end(), name,
        [](const auto& kv, const std::string& n) { return kv.first < n; });
    if (it == values.end() || it->first != name) return false;
    *out = it->second;
    return true;
  };

  std::vector<Resolved> resolved(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const AlertRule& rule = specs[i].first;
    Resolved& r = resolved[i];
    if (rule.kind == AlertRule::Kind::kRateAbove ||
        rule.kind == AlertRule::Kind::kRateBelow) {
      if (series == nullptr) continue;
      const std::vector<TimeSeriesPoint> points = series->Points(rule.metric);
      if (points.size() < 2) continue;
      const size_t window = std::min(rule.rate_window, points.size());
      const TimeSeriesPoint& first = points[points.size() - window];
      const TimeSeriesPoint& last = points.back();
      const double dt = last.t - first.t;
      if (dt <= 0.0) continue;
      r.value = (last.v - first.v) / dt;
      r.known = true;
    } else {
      if (lookup(rule.metric, &r.value)) {
        r.known = true;
      } else if (series != nullptr) {
        // Series fallback: a metric sampled into the store by a
        // different process stage still drives threshold rules.
        const std::vector<TimeSeriesPoint> points = series->Points(rule.metric);
        if (!points.empty()) {
          r.value = points.back().v;
          r.known = true;
        }
      }
    }
  }

  size_t firing = 0;
  size_t missing = 0;
  {
    // cs:lock(obs.alerts)
    std::lock_guard<std::mutex> lock(mu_);
    ++evaluations_;
    for (size_t i = 0; i < specs.size(); ++i) {
      const size_t index = specs[i].second;
      if (index >= entries_.size()) continue;  // Clear() raced; skip.
      Entry& entry = entries_[index];
      if (entry.rule.name != specs[i].first.name) continue;
      const Resolved& r = resolved[i];
      if (!r.known) {
        ++missing;
        // An unresolvable metric never breaches: drop any streak so a
        // rule whose series stops being sampled returns to ok.
        entry.last_value_known = false;
        entry.breach_streak = 0;
        if (entry.state != AlertState::kOk) {
          TransitionLocked(index, &entry, AlertState::kOk);
        }
        continue;
      }
      entry.last_value = r.value;
      entry.last_value_known = true;
      bool breach = false;
      switch (entry.rule.kind) {
        case AlertRule::Kind::kAbove:
        case AlertRule::Kind::kRateAbove:
          breach = r.value > entry.rule.threshold;
          break;
        case AlertRule::Kind::kBelow:
        case AlertRule::Kind::kRateBelow:
          breach = r.value < entry.rule.threshold;
          break;
      }
      if (breach) {
        ++entry.breach_streak;
        if (entry.breach_streak >= entry.rule.hold_down) {
          if (entry.state != AlertState::kFiring) {
            TransitionLocked(index, &entry, AlertState::kFiring);
          }
        } else if (entry.state == AlertState::kOk) {
          TransitionLocked(index, &entry, AlertState::kPending);
        }
      } else {
        entry.breach_streak = 0;
        if (entry.state != AlertState::kOk) {
          TransitionLocked(index, &entry, AlertState::kOk);
        }
      }
      if (entry.state == AlertState::kFiring) ++firing;
    }
  }

  if (registry != nullptr) {
    registry->GetCounter("alert.evaluations")->Increment();
    if (missing > 0) {
      registry->GetCounter("alert.missing_metric")
          ->Increment(static_cast<uint64_t>(missing));
    }
    registry->GetGauge("alert.firing")->Set(static_cast<double>(firing));
  }
  return firing;
}

void AlertEngine::TransitionLocked(size_t index, Entry* entry,
                                   AlertState next) {
  entry->state = next;
  ++entry->transitions;
  FlightRecorder::Global().Record(FlightEventType::kAlert, entry->flight_name,
                                  /*a=*/index,
                                  /*b=*/static_cast<uint64_t>(next));
  MetricsRegistry::Global().GetCounter("alert.transitions")->Increment();
}

std::vector<AlertStatus> AlertEngine::Snapshot() const {
  // cs:lock(obs.alerts)
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AlertStatus> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    AlertStatus s;
    s.rule = e.rule;
    s.state = e.state;
    s.last_value = e.last_value;
    s.last_value_known = e.last_value_known;
    s.breach_streak = e.breach_streak;
    s.transitions = e.transitions;
    out.push_back(std::move(s));
  }
  return out;
}

size_t AlertEngine::FiringCount() const {
  // cs:lock(obs.alerts)
  std::lock_guard<std::mutex> lock(mu_);
  size_t firing = 0;
  for (const Entry& e : entries_) {
    if (e.state == AlertState::kFiring) ++firing;
  }
  return firing;
}

size_t AlertEngine::NumRules() const {
  // cs:lock(obs.alerts)
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t AlertEngine::evaluations() const {
  // cs:lock(obs.alerts)
  std::lock_guard<std::mutex> lock(mu_);
  return evaluations_;
}

void AlertEngine::Clear() {
  // cs:lock(obs.alerts)
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  evaluations_ = 0;
}

}  // namespace crowdselect::obs
