#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/flight_recorder.h"
#include "obs/json_escape.h"

namespace crowdselect::obs {

namespace {

// Per-thread open-span state. The buffer is shared with the collector so
// spans survive thread exit (moved to the retired list by the destructor).
struct ThreadTraceState {
  std::shared_ptr<internal::ThreadTraceBuffer> buffer;
  uint32_t thread_index = 0;
  uint64_t current_parent = 0;
  uint32_t depth = 0;

  ~ThreadTraceState() {
    if (buffer) TraceCollector::Global().Retire(std::move(buffer));
  }
};

thread_local ThreadTraceState t_trace;

}  // namespace

// ---------------------------------------------------------------------------
// TraceCollector
// ---------------------------------------------------------------------------

TraceCollector::TraceCollector()
    : origin_(std::chrono::steady_clock::now()) {}

TraceCollector& TraceCollector::Global() {
  // cslint: allow(naked-new): leaked singleton, must outlive thread_locals.
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

double TraceCollector::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

internal::ThreadTraceBuffer* TraceCollector::LocalBuffer() {
  if (!t_trace.buffer) {
    t_trace.buffer = std::make_shared<internal::ThreadTraceBuffer>();
    t_trace.thread_index =
        next_thread_index_.fetch_add(1, std::memory_order_relaxed);
    // cs:lock(obs.trace.registry)
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(t_trace.buffer);
  }
  return t_trace.buffer.get();
}

void TraceCollector::Retire(std::shared_ptr<internal::ThreadTraceBuffer> buffer) {
  // cs:lock(obs.trace.registry)
  std::lock_guard<std::mutex> lock(mu_);
  {
    // cs:lock(obs.trace.buffer)
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    retired_.insert(retired_.end(),
                    std::make_move_iterator(buffer->spans.begin()),
                    std::make_move_iterator(buffer->spans.end()));
    buffer->spans.clear();
  }
  buffers_.erase(std::remove(buffers_.begin(), buffers_.end(), buffer),
                 buffers_.end());
}

void TraceCollector::Push(SpanRecord span) {
  if (total_spans_.load(std::memory_order_relaxed) >=
      capacity_.load(std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  total_spans_.fetch_add(1, std::memory_order_relaxed);
  internal::ThreadTraceBuffer* buffer = LocalBuffer();
  // cs:lock(obs.trace.buffer)
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->spans.push_back(std::move(span));
}

std::vector<SpanRecord> TraceCollector::Snapshot() const {
  std::vector<SpanRecord> out;
  {
    // cs:lock(obs.trace.registry)
    std::lock_guard<std::mutex> lock(mu_);
    out = retired_;
    // lock-order: collector mu_ before any per-thread buffer mu, one
    // buffer at a time (same order as Clear()).
    for (const auto& buffer : buffers_) {
      // cs:lock(obs.trace.buffer)
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      out.insert(out.end(), buffer->spans.begin(), buffer->spans.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us < b.start_us;
            });
  return out;
}

void TraceCollector::Clear() {
  // cs:lock(obs.trace.registry)
  std::lock_guard<std::mutex> lock(mu_);
  retired_.clear();
  // lock-order: collector mu_ before any per-thread buffer mu (same
  // order as Snapshot()).
  for (const auto& buffer : buffers_) {
    // cs:lock(obs.trace.buffer)
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->spans.clear();
  }
  total_spans_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// SpanMeter / ScopedSpan
// ---------------------------------------------------------------------------

SpanMeter::SpanMeter(const char* span_name, MetricsRegistry* registry)
    : SpanMeter(span_name, LatencyBucketBounds(), registry) {}

SpanMeter::SpanMeter(const char* span_name, const std::vector<double>& bounds,
                     MetricsRegistry* registry)
    : name(span_name),
      latency_us(registry->GetHistogram(
          std::string("span.") + span_name + ".us", bounds)),
      calls(registry->GetCounter(std::string("span.") + span_name +
                                 ".calls")),
      flight_name_id(FlightRecorder::Global().InternName(span_name)) {}

ScopedSpan::ScopedSpan(const char* name, const SpanMeter* meter)
    : name_(name), meter_(meter) {
  TraceCollector& collector = TraceCollector::Global();
  FlightRecorder& flight = FlightRecorder::Global();
  const bool tracing = collector.enabled();
  const bool metering = MetricsRegistry::Global().enabled();
  const bool flying = flight.enabled();
  if (!tracing && !metering && !flying) return;
  active_ = true;
  if (tracing) {
    collector.LocalBuffer();  // Ensure thread registration before timing.
    id_ = collector.next_span_id_.fetch_add(1, std::memory_order_relaxed);
    saved_parent_ = t_trace.current_parent;
    depth_ = t_trace.depth;
    t_trace.current_parent = id_;
    ++t_trace.depth;
  }
  if (flying) {
    flight_id_ = meter_ != nullptr ? meter_->flight_name_id
                                   : flight.InternName(name_);
    flight.PushSpan(flight_id_, id_);
    flight_open_ = true;
  }
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  const double duration_us =
      std::chrono::duration<double, std::micro>(end - start_).count();

  if (flight_open_) {
    FlightRecorder::Global().PopSpan(
        flight_id_, static_cast<uint64_t>(duration_us < 0 ? 0 : duration_us));
  }

  TraceCollector& collector = TraceCollector::Global();
  if (id_ != 0) {  // A trace span was opened.
    t_trace.current_parent = saved_parent_;
    --t_trace.depth;
    if (collector.enabled()) {
      SpanRecord record;
      record.id = id_;
      record.parent = saved_parent_;
      record.name = name_;
      record.thread_index = t_trace.thread_index;
      record.depth = depth_;
      record.start_us =
          std::chrono::duration<double, std::micro>(start_ - collector.origin_)
              .count();
      record.duration_us = duration_us;
      collector.Push(std::move(record));
    }
  }

  MetricsRegistry& registry = MetricsRegistry::Global();
  if (registry.enabled()) {
    if (meter_ != nullptr) {
      meter_->latency_us->Record(duration_us);
      meter_->calls->Increment();
    } else {
      const std::string base = std::string("span.") + name_;
      registry.GetHistogram(base + ".us")->Record(duration_us);
      registry.GetCounter(base + ".calls")->Increment();
    }
  }
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

std::string SpansToChromeTraceJson(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\":[";
  char buf[192];
  bool first = true;
  for (const SpanRecord& span : spans) {
    // Span names are dotted identifiers in practice, but callers may
    // register any byte sequence — escape (and append unbounded, outside
    // the fixed-size numeric buffer) so hostile names cannot break the
    // document.
    out += first ? "{\"name\":" : ",{\"name\":";
    out += JsonQuote(span.name);
    std::snprintf(buf, sizeof(buf),
                  ",\"cat\":\"crowdselect\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%u,"
                  "\"args\":{\"id\":%llu,\"parent\":%llu}}",
                  span.start_us, span.duration_us, span.thread_index,
                  static_cast<unsigned long long>(span.id),
                  static_cast<unsigned long long>(span.parent));
    out += buf;
    first = false;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace crowdselect::obs
