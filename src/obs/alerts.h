// Declarative alert rules over metrics and time series. A rule names a
// metric (counter or gauge) or a time-series, a condition (absolute
// threshold or rate of change over the series' recent points), and a
// hold-down: the rule must breach for N consecutive evaluations before
// it transitions pending -> firing, so a single noisy sample never
// pages. Evaluation is caller-driven — once per workload tick in
// `simulate`, per model in `evaluate`, or wherever the host's cadence
// lives — which keeps replayed runs deterministic.
//
// Rule file grammar (one rule per line, '#' comments):
//
//   alert <name> when <metric> > <value> [for <N>]
//   alert <name> when <metric> < <value> [for <N>]
//   alert <name> when rate(<metric>, <W>) > <value> [for <N>]
//   alert <name> when rate(<metric>, <W>) < <value> [for <N>]
//
// rate(m, W) is the per-t-unit slope (last - first) / (t_last -
// t_first) over the last W points of series m in the TimeSeriesStore,
// so rate rules need the metric sampled into the store (simulate's
// per-task tick does this; see obs/timeseries.h).
//
// State machine per rule: ok -> pending on first breach, pending ->
// firing after `for N` consecutive breaches (N=1 fires immediately),
// any -> ok the evaluation the condition stops breaching. Every
// transition increments alert.transitions and records a kAlert flight
// event; the firing count lands in the alert.firing gauge, and the
// stats reporter renders a `firing` section in both the JSON report and
// the Prometheus exposition (crowdselect_alert_state{rule="..."}).
#ifndef CROWDSELECT_OBS_ALERTS_H_
#define CROWDSELECT_OBS_ALERTS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "util/status.h"

namespace crowdselect::obs {

enum class AlertState : uint8_t { kOk = 0, kPending = 1, kFiring = 2 };

/// Stable lowercase name ("ok", "pending", "firing").
const char* AlertStateName(AlertState state);

/// One declarative rule. `metric` is resolved against gauges first, then
/// counters, then the time-series store's latest point; a metric absent
/// from all three keeps the rule at ok (and counts
/// alert.missing_metric).
struct AlertRule {
  enum class Kind : uint8_t {
    kAbove,      ///< value > threshold breaches.
    kBelow,      ///< value < threshold breaches.
    kRateAbove,  ///< rate over the series window > threshold breaches.
    kRateBelow,  ///< rate over the series window < threshold breaches.
  };

  std::string name;    ///< Rule id, unique within the engine.
  std::string metric;  ///< Metric / series the rule watches.
  Kind kind = Kind::kAbove;
  double threshold = 0.0;
  size_t hold_down = 1;    ///< Consecutive breaches before firing (>= 1).
  size_t rate_window = 5;  ///< Points in the rate() window (rate kinds).
};

/// Rule + live state, as returned by Snapshot().
struct AlertStatus {
  AlertRule rule;
  AlertState state = AlertState::kOk;
  double last_value = 0.0;       ///< Metric (or rate) at the last evaluation.
  bool last_value_known = false;  ///< False until the metric resolves once.
  size_t breach_streak = 0;      ///< Consecutive breaching evaluations.
  uint64_t transitions = 0;      ///< State changes since the rule was added.
};

/// Parses the rule-file grammar above. Returns every rule or the first
/// syntax error (with line number).
Result<std::vector<AlertRule>> ParseAlertRules(const std::string& text);

/// Thread-safe rule engine. Rules are added once (AddRule/LoadRulesFile)
/// and evaluated on the host's cadence (EvaluateAll).
class AlertEngine {
 public:
  /// The process-wide engine the CLI flags and stats reporter use.
  static AlertEngine& Global();

  AlertEngine() = default;
  AlertEngine(const AlertEngine&) = delete;
  AlertEngine& operator=(const AlertEngine&) = delete;

  /// Registers a rule. InvalidArgument for empty name/metric, nonpositive
  /// hold_down or rate_window, or a duplicate rule name.
  Status AddRule(const AlertRule& rule);

  /// ParseAlertRules over the file's contents, then AddRule each.
  Status LoadRulesFile(const std::string& path);

  /// Evaluates every rule against `registry` (+ `series` for rate rules
  /// and series fallback; may be null to disable both). Returns the
  /// number of rules now firing.
  size_t EvaluateAll(MetricsRegistry* registry = &MetricsRegistry::Global(),
                     const TimeSeriesStore* series = &TimeSeriesStore::Global());

  /// Rules + state, in registration order.
  std::vector<AlertStatus> Snapshot() const;

  size_t FiringCount() const;
  size_t NumRules() const;
  uint64_t evaluations() const;

  /// Drops every rule and resets the evaluation counters (tests, and a
  /// fresh --alert-rules load in a long-lived process).
  void Clear();

 private:
  struct Entry {
    AlertRule rule;
    AlertState state = AlertState::kOk;
    double last_value = 0.0;
    bool last_value_known = false;
    size_t breach_streak = 0;
    uint64_t transitions = 0;
    uint16_t flight_name = 0;  ///< Interned "alert.<name>" for kAlert events.
  };

  void TransitionLocked(size_t index, Entry* entry, AlertState next);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  uint64_t evaluations_ = 0;
};

}  // namespace crowdselect::obs

#endif  // CROWDSELECT_OBS_ALERTS_H_
