#include "obs/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "obs/json_escape.h"

namespace crowdselect::obs {

namespace {

// JSON numbers cannot be inf/nan; clamp like the stats reporter does.
std::string Num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

TimeSeriesStore& TimeSeriesStore::Global() {
  // cslint: allow(naked-new): leaked singleton, outlives all threads.
  static TimeSeriesStore* store = new TimeSeriesStore();
  return *store;
}

void TimeSeriesStore::set_capacity_per_series(size_t points) {
  // cs:lock(obs.timeseries.store)
  std::lock_guard<std::mutex> lock(mu_);
  capacity_per_series_ = std::max<size_t>(2, points);
}

size_t TimeSeriesStore::capacity_per_series() const {
  // cs:lock(obs.timeseries.store)
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_per_series_;
}

void TimeSeriesStore::set_max_series(size_t n) {
  // cs:lock(obs.timeseries.store)
  std::lock_guard<std::mutex> lock(mu_);
  max_series_ = std::max<size_t>(1, n);
}

bool TimeSeriesStore::AppendLocked(std::string_view series, double t,
                                   double v) {
  auto it = series_.find(series);
  if (it == series_.end()) {
    if (series_.size() >= max_series_) {
      MetricsRegistry::Global()
          .GetCounter("timeseries.dropped_series")
          ->Increment();
      return false;
    }
    Series s;
    s.capacity = capacity_per_series_;
    s.ring.reserve(s.capacity);
    it = series_.emplace(std::string(series), std::move(s)).first;
  }
  Series& s = it->second;
  if (s.ring.size() < s.capacity) {
    s.ring.push_back(TimeSeriesPoint{t, v});
  } else {
    s.ring[s.next] = TimeSeriesPoint{t, v};
  }
  s.next = (s.next + 1) % s.capacity;
  ++s.appended;
  ++total_points_;
  return true;
}

bool TimeSeriesStore::Append(std::string_view series, double t, double v) {
  // cs:lock(obs.timeseries.store)
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(series, t, v);
}

size_t TimeSeriesStore::SampleRegistry(double t, MetricsRegistry* registry) {
  // Pull the flat values before taking mu_: CurrentValues() holds the
  // registry mutex, and a gauge refresh elsewhere may want it while we
  // append. Never hold both.
  const std::vector<std::pair<std::string, double>> values =
      registry->CurrentValues();
  size_t appended = 0;
  {
    // cs:lock(obs.timeseries.store)
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, value] : values) {
      // The store's own bookkeeping metrics are excluded: sampling them
      // would mint one new point per tick per meta-metric and the
      // series count would feed back into itself.
      if (name.rfind("timeseries.", 0) == 0) continue;
      if (AppendLocked(name, t, value)) ++appended;
    }
  }
  MetricsRegistry::Global().GetCounter("timeseries.samples")->Increment();
  MetricsRegistry::Global()
      .GetGauge("timeseries.series")
      ->Set(static_cast<double>(num_series()));
  return appended;
}

void TimeSeriesStore::StartSampling(double interval_seconds,
                                    MetricsRegistry* registry) {
  // cs:lock(obs.timeseries.sampler)
  std::unique_lock<lockdep::Mutex> lock(sampler_mu_);
  if (sampler_thread_.joinable()) return;
  sampler_stopping_ = false;
  sampler_thread_ =
      std::thread(&TimeSeriesStore::SamplingLoop, this,
                  interval_seconds > 0 ? interval_seconds : 1.0, registry);
}

void TimeSeriesStore::StopSampling() {
  std::thread to_join;
  {
    // cs:lock(obs.timeseries.sampler)
    std::unique_lock<lockdep::Mutex> lock(sampler_mu_);
    if (!sampler_thread_.joinable()) return;
    sampler_stopping_ = true;
    sampler_cv_.notify_all();
    to_join = std::move(sampler_thread_);
  }
  to_join.join();
}

bool TimeSeriesStore::sampling_running() const {
  // cs:lock(obs.timeseries.sampler)
  std::unique_lock<lockdep::Mutex> lock(sampler_mu_);
  return sampler_thread_.joinable();
}

void TimeSeriesStore::SamplingLoop(double interval_seconds,
                                   MetricsRegistry* registry) {
  const auto start = std::chrono::steady_clock::now();
  const auto interval = std::chrono::microseconds(
      static_cast<int64_t>(interval_seconds * 1e6));
  for (;;) {
    {
      // lock-order: obs.timeseries.sampler is released before
      // SampleRegistry touches the registry or store mutex (leaf lock).
      // cs:lock(obs.timeseries.sampler)
      std::unique_lock<lockdep::Mutex> lock(sampler_mu_);
      sampler_cv_.wait_for(lock, interval);
      if (sampler_stopping_) return;
    }
    const double t = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    SampleRegistry(t, registry);
  }
}

std::vector<std::string> TimeSeriesStore::SeriesNames() const {
  // cs:lock(obs.timeseries.store)
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, s] : series_) names.push_back(name);
  return names;
}

std::vector<TimeSeriesPoint> TimeSeriesStore::Points(
    std::string_view series) const {
  // cs:lock(obs.timeseries.store)
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end()) return {};
  const Series& s = it->second;
  std::vector<TimeSeriesPoint> out;
  out.reserve(s.ring.size());
  // Oldest-first: once the ring wrapped, `next` points at the oldest slot.
  const size_t start = s.ring.size() < s.capacity ? 0 : s.next;
  for (size_t i = 0; i < s.ring.size(); ++i) {
    out.push_back(s.ring[(start + i) % s.ring.size()]);
  }
  return out;
}

uint64_t TimeSeriesStore::total_points() const {
  // cs:lock(obs.timeseries.store)
  std::lock_guard<std::mutex> lock(mu_);
  return total_points_;
}

size_t TimeSeriesStore::num_series() const {
  // cs:lock(obs.timeseries.store)
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

void TimeSeriesStore::Clear() {
  // cs:lock(obs.timeseries.store)
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
  total_points_ = 0;
}

std::string TimeSeriesStore::ToJsonl() const {
  std::string out;
  // Snapshot the name list first, then read series one at a time through
  // Points(): the dump never holds mu_ across the whole serialization.
  for (const std::string& name : SeriesNames()) {
    const std::string quoted = JsonQuote(name);
    for (const TimeSeriesPoint& p : Points(name)) {
      out += "{\"series\": " + quoted + ", \"t\": " + Num(p.t) +
             ", \"v\": " + Num(p.v) + "}\n";
    }
  }
  return out;
}

Status TimeSeriesStore::WriteJsonlFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp);
    if (!file.is_open()) {
      return Status::IOError("cannot open timeseries output file: " + tmp);
    }
    file << ToJsonl();
    file.close();
    if (!file.good()) {
      return Status::IOError("failed writing timeseries output file: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("failed renaming " + tmp + " to " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

}  // namespace crowdselect::obs
