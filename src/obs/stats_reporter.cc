#include "obs/stats_reporter.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

namespace crowdselect::obs {

namespace {

// JSON numbers cannot be inf/nan; clamp to null-safe 0 (only reachable
// for empty histograms, which report 0 extremes anyway).
std::string Num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string Num(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

// Metric names are dotted identifiers; escape defensively regardless.
std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void AppendCounters(const MetricsSnapshot& snap, std::string* out) {
  *out += "  \"counters\": {";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    *out += i == 0 ? "\n" : ",\n";
    *out += "    " + Quote(snap.counters[i].name) + ": " +
            Num(snap.counters[i].value);
  }
  *out += snap.counters.empty() ? "}" : "\n  }";
}

void AppendGauges(const MetricsSnapshot& snap, std::string* out) {
  *out += "  \"gauges\": {";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    const GaugeSample& g = snap.gauges[i];
    *out += i == 0 ? "\n" : ",\n";
    *out += "    " + Quote(g.name) + ": {\"value\": " + Num(g.value) +
            ", \"history\": [";
    for (size_t j = 0; j < g.history.size(); ++j) {
      if (j > 0) *out += ", ";
      *out += Num(g.history[j]);
    }
    *out += "]}";
  }
  *out += snap.gauges.empty() ? "}" : "\n  }";
}

void AppendHistograms(const MetricsSnapshot& snap, std::string* out) {
  *out += "  \"histograms\": {";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSample& h = snap.histograms[i];
    *out += i == 0 ? "\n" : ",\n";
    *out += "    " + Quote(h.name) + ": {\"count\": " + Num(h.count) +
            ", \"sum\": " + Num(h.sum) + ", \"min\": " + Num(h.min) +
            ", \"max\": " + Num(h.max) + ", \"mean\": " + Num(h.Mean()) +
            ", \"p50\": " + Num(h.Quantile(0.5)) +
            ", \"p90\": " + Num(h.Quantile(0.9)) +
            ", \"p99\": " + Num(h.Quantile(0.99)) + ", \"buckets\": [";
    // Elide empty buckets to keep snapshots readable; the full ladder is
    // recoverable from the bounds documented in DESIGN.md.
    bool first = true;
    for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
      if (h.bucket_counts[b] == 0) continue;
      if (!first) *out += ", ";
      first = false;
      const std::string le =
          b < h.bounds.size() ? Num(h.bounds[b]) : "\"inf\"";
      *out += "{\"le\": " + le + ", \"count\": " + Num(h.bucket_counts[b]) +
              "}";
    }
    *out += "]}";
  }
  *out += snap.histograms.empty() ? "}" : "\n  }";
}

struct SpanAgg {
  uint64_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;
};

}  // namespace

std::string SnapshotToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n";
  AppendCounters(snapshot, &out);
  out += ",\n";
  AppendGauges(snapshot, &out);
  out += ",\n";
  AppendHistograms(snapshot, &out);
  out += "\n}\n";
  return out;
}

std::string StatsReporter::ToJson() const {
  const MetricsSnapshot snap = registry_->Snapshot();
  const std::vector<SpanRecord> spans = traces_->Snapshot();

  std::map<std::string, SpanAgg> by_name;
  for (const SpanRecord& span : spans) {
    SpanAgg& agg = by_name[span.name];
    ++agg.count;
    agg.total_us += span.duration_us;
    agg.max_us = std::max(agg.max_us, span.duration_us);
  }

  std::string out = "{\n";
  AppendCounters(snap, &out);
  out += ",\n";
  AppendGauges(snap, &out);
  out += ",\n";
  AppendHistograms(snap, &out);
  out += ",\n  \"spans\": [";
  bool first = true;
  for (const auto& [name, agg] : by_name) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": " + Quote(name) + ", \"count\": " +
           Num(agg.count) + ", \"total_us\": " + Num(agg.total_us) +
           ", \"mean_us\": " +
           Num(agg.total_us / static_cast<double>(agg.count)) +
           ", \"max_us\": " + Num(agg.max_us) + "}";
  }
  out += by_name.empty() ? "]" : "\n  ]";
  out += ",\n  \"dropped_spans\": " + Num(traces_->dropped());
  out += "\n}\n";
  return out;
}

Status StatsReporter::WriteJsonFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open stats output file: " + path);
  }
  file << ToJson();
  file.close();
  if (!file.good()) {
    return Status::IOError("failed writing stats output file: " + path);
  }
  return Status::OK();
}

std::string StatsReporter::ToChromeTraceJson() const {
  return SpansToChromeTraceJson(traces_->Snapshot());
}

Status StatsReporter::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open trace output file: " + path);
  }
  file << ToChromeTraceJson();
  file.close();
  if (!file.good()) {
    return Status::IOError("failed writing trace output file: " + path);
  }
  return Status::OK();
}

}  // namespace crowdselect::obs
