#include "obs/stats_reporter.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

#include "obs/alerts.h"
#include "obs/json_escape.h"
#include "obs/metric_help.h"

namespace crowdselect::obs {

namespace {

// JSON numbers cannot be inf/nan; clamp to null-safe 0 (only reachable
// for empty histograms, which report 0 extremes anyway).
std::string Num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string Num(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

// Metric names are dotted identifiers; escape defensively regardless.
std::string Quote(const std::string& s) { return JsonQuote(s); }

void AppendCounters(const MetricsSnapshot& snap, std::string* out) {
  *out += "  \"counters\": {";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    *out += i == 0 ? "\n" : ",\n";
    *out += "    " + Quote(snap.counters[i].name) + ": " +
            Num(snap.counters[i].value);
  }
  *out += snap.counters.empty() ? "}" : "\n  }";
}

void AppendGauges(const MetricsSnapshot& snap, std::string* out) {
  *out += "  \"gauges\": {";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    const GaugeSample& g = snap.gauges[i];
    *out += i == 0 ? "\n" : ",\n";
    *out += "    " + Quote(g.name) + ": {\"value\": " + Num(g.value) +
            ", \"history\": [";
    for (size_t j = 0; j < g.history.size(); ++j) {
      if (j > 0) *out += ", ";
      *out += Num(g.history[j]);
    }
    *out += "]}";
  }
  *out += snap.gauges.empty() ? "}" : "\n  }";
}

void AppendHistograms(const MetricsSnapshot& snap, std::string* out) {
  *out += "  \"histograms\": {";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSample& h = snap.histograms[i];
    *out += i == 0 ? "\n" : ",\n";
    *out += "    " + Quote(h.name) + ": {\"count\": " + Num(h.count) +
            ", \"sum\": " + Num(h.sum) + ", \"min\": " + Num(h.min) +
            ", \"max\": " + Num(h.max) + ", \"mean\": " + Num(h.Mean()) +
            ", \"p50\": " + Num(h.Quantile(0.5)) +
            ", \"p90\": " + Num(h.Quantile(0.9)) +
            ", \"p99\": " + Num(h.Quantile(0.99)) + ", \"buckets\": [";
    // Elide empty buckets to keep snapshots readable; the full ladder is
    // recoverable from the bounds documented in DESIGN.md.
    bool first = true;
    for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
      if (h.bucket_counts[b] == 0) continue;
      if (!first) *out += ", ";
      first = false;
      const std::string le =
          b < h.bounds.size() ? Num(h.bounds[b]) : "\"inf\"";
      *out += "{\"le\": " + le + ", \"count\": " + Num(h.bucket_counts[b]) +
              "}";
    }
    *out += "]}";
  }
  *out += snap.histograms.empty() ? "}" : "\n  }";
}

struct SpanAgg {
  uint64_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;
};

}  // namespace

std::string SnapshotToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n";
  AppendCounters(snapshot, &out);
  out += ",\n";
  AppendGauges(snapshot, &out);
  out += ",\n";
  AppendHistograms(snapshot, &out);
  out += "\n}\n";
  return out;
}

std::string StatsReporter::ToJson() const {
  const MetricsSnapshot snap = registry_->Snapshot();
  const std::vector<SpanRecord> spans = traces_->Snapshot();

  std::map<std::string, SpanAgg> by_name;
  for (const SpanRecord& span : spans) {
    SpanAgg& agg = by_name[span.name];
    ++agg.count;
    agg.total_us += span.duration_us;
    agg.max_us = std::max(agg.max_us, span.duration_us);
  }

  std::string out = "{\n";
  AppendCounters(snap, &out);
  out += ",\n";
  AppendGauges(snap, &out);
  out += ",\n";
  AppendHistograms(snap, &out);
  out += ",\n  \"spans\": [";
  bool first = true;
  for (const auto& [name, agg] : by_name) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": " + Quote(name) + ", \"count\": " +
           Num(agg.count) + ", \"total_us\": " + Num(agg.total_us) +
           ", \"mean_us\": " +
           Num(agg.total_us / static_cast<double>(agg.count)) +
           ", \"max_us\": " + Num(agg.max_us) + "}";
  }
  out += by_name.empty() ? "]" : "\n  ]";
  out += ",\n  \"dropped_spans\": " + Num(traces_->dropped());

  // Alert rules + states, so one stats dump carries the full "why did
  // it page" story next to the metrics that tripped it.
  const std::vector<AlertStatus> alerts = AlertEngine::Global().Snapshot();
  size_t firing = 0;
  for (const AlertStatus& a : alerts) {
    if (a.state == AlertState::kFiring) ++firing;
  }
  out += ",\n  \"alerts\": {\"firing\": " + Num(static_cast<uint64_t>(firing)) +
         ", \"rules\": [";
  first = true;
  for (const AlertStatus& a : alerts) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": " + Quote(a.rule.name) + ", \"metric\": " +
           Quote(a.rule.metric) + ", \"state\": " +
           Quote(AlertStateName(a.state)) + ", \"value\": " +
           Num(a.last_value) + ", \"breach_streak\": " +
           Num(static_cast<uint64_t>(a.breach_streak)) +
           ", \"transitions\": " + Num(a.transitions) + "}";
  }
  out += alerts.empty() ? "]}" : "\n  ]}";
  out += "\n}\n";
  return out;
}

Status StatsReporter::WriteJsonFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open stats output file: " + path);
  }
  file << ToJson();
  file.close();
  if (!file.good()) {
    return Status::IOError("failed writing stats output file: " + path);
  }
  return Status::OK();
}

std::string StatsReporter::ToChromeTraceJson() const {
  return SpansToChromeTraceJson(traces_->Snapshot());
}

Status StatsReporter::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open trace output file: " + path);
  }
  file << ToChromeTraceJson();
  file.close();
  if (!file.good()) {
    return Status::IOError("failed writing trace output file: " + path);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

namespace {

// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; everything else
// (dots, dashes, hostile bytes) collapses to '_'.
std::string PromName(const std::string& name) {
  std::string out = "crowdselect_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

// Prometheus floats: inf/nan have spellings, unlike JSON.
std::string PromNum(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

// HELP text escaping per the exposition format: backslash and newline.
std::string PromHelp(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// Label values additionally escape the double quote.
std::string PromLabelValue(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '"') {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string StatsReporter::ToPrometheusText() const {
  const MetricsSnapshot snap = registry_->Snapshot();
  std::string out;
  // Every family gets "# HELP" (from the registry's description column
  // via MetricHelp) and "# TYPE" before its first sample — scrapers and
  // the format e2e test rely on that ordering.
  for (const CounterSample& c : snap.counters) {
    const std::string name = PromName(c.name);
    out += "# HELP " + name + " " + PromHelp(MetricHelp(c.name)) + "\n";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + Num(c.value) + "\n";
  }
  for (const GaugeSample& g : snap.gauges) {
    const std::string name = PromName(g.name);
    out += "# HELP " + name + " " + PromHelp(MetricHelp(g.name)) + "\n";
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + PromNum(g.value) + "\n";
  }
  for (const HistogramSample& h : snap.histograms) {
    const std::string name = PromName(h.name);
    out += "# HELP " + name + " " + PromHelp(MetricHelp(h.name)) + "\n";
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
      cumulative += h.bucket_counts[b];
      const std::string le =
          b < h.bounds.size() ? PromNum(h.bounds[b]) : "+Inf";
      out += name + "_bucket{le=\"" + le + "\"} " + Num(cumulative) + "\n";
    }
    out += name + "_sum " + PromNum(h.sum) + "\n";
    out += name + "_count " + Num(h.count) + "\n";
  }
  // Per-rule alert states as one labeled family (0 = ok, 1 = pending,
  // 2 = firing) — rendered only when rules are loaded so rule-less runs
  // keep a byte-stable exposition.
  const std::vector<AlertStatus> alerts = AlertEngine::Global().Snapshot();
  if (!alerts.empty()) {
    out += "# HELP crowdselect_alert_state Alert rule state "
           "(0 = ok, 1 = pending, 2 = firing).\n";
    out += "# TYPE crowdselect_alert_state gauge\n";
    for (const AlertStatus& a : alerts) {
      out += "crowdselect_alert_state{rule=\"" + PromLabelValue(a.rule.name) +
             "\"} " + Num(static_cast<uint64_t>(a.state)) + "\n";
    }
  }
  return out;
}

Status StatsReporter::WritePrometheusFile(const std::string& path) const {
  // Atomic replace: scrape agents tail the target path; they must never
  // observe a truncated exposition.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp);
    if (!file.is_open()) {
      return Status::IOError("cannot open prometheus output file: " + tmp);
    }
    file << ToPrometheusText();
    file.close();
    if (!file.good()) {
      return Status::IOError("failed writing prometheus output file: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("failed renaming " + tmp + " to " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// PeriodicStatsExporter
// ---------------------------------------------------------------------------

Result<std::unique_ptr<PeriodicStatsExporter>> PeriodicStatsExporter::Create(
    std::string path, double interval_seconds, StatsReporter reporter) {
  if (path.empty()) {
    return Status::InvalidArgument("exporter path must not be empty");
  }
  if (!(interval_seconds > 0)) {  // Also rejects NaN.
    return Status::InvalidArgument(
        "exporter interval must be > 0 seconds (got " +
        std::to_string(interval_seconds) + ")");
  }
  return std::make_unique<PeriodicStatsExporter>(std::move(path),
                                                 interval_seconds, reporter);
}

PeriodicStatsExporter::PeriodicStatsExporter(std::string path,
                                             double interval_seconds,
                                             StatsReporter reporter)
    : path_(std::move(path)), reporter_(reporter) {
  thread_ = std::thread([this, interval_seconds] { Loop(interval_seconds); });
}

void PeriodicStatsExporter::Loop(double interval_seconds) {
  const auto interval = std::chrono::duration<double>(
      interval_seconds > 0 ? interval_seconds : 1.0);
  // cs:lock(obs.stats)
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) break;
    lock.unlock();
    if (reporter_.WritePrometheusFile(path_).ok()) {
      writes_.fetch_add(1, std::memory_order_relaxed);
    }
    // lock-order: reacquiring the exporter's only mutex; nothing else is
    // held across the file write.
    lock.lock();
  }
}

Status PeriodicStatsExporter::Stop() {
  {
    // cs:lock(obs.stats)
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::OK();
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  {
    // cs:lock(obs.stats)
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  const Status st = reporter_.WritePrometheusFile(path_);
  if (st.ok()) writes_.fetch_add(1, std::memory_order_relaxed);
  return st;
}

PeriodicStatsExporter::~PeriodicStatsExporter() {
  // Destructors cannot propagate the final-write status; callers that care
  // about it invoke Stop() themselves first.
  (void)Stop();
}

}  // namespace crowdselect::obs
