#include "obs/flight_recorder.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "obs/metrics.h"

namespace crowdselect::obs {

namespace {

// Raw pointer, never freed: the ring must stay readable by the crash
// handler after this thread exits.
thread_local internal::FlightRing* t_flight_ring = nullptr;

// Set once the ring registry fills up so overflow threads stop
// retrying (and re-paying the registry lock) on every event.
thread_local bool t_flight_ring_exhausted = false;

constexpr size_t kMaxNameLen = 120;

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// --- Async-signal-safe formatting helpers. No allocation, no locale,
// no snprintf; every Append* writes at `p` and returns the new end.

// cs:signal-safe
char* AppendStr(char* p, const char* s) {
  while (*s != '\0') *p++ = *s++;
  return p;
}

// Bounded variant for strings whose length the formatter does not
// control (crash-handler build/config text): truncates at `limit`.
// cs:signal-safe
char* AppendStrBounded(char* p, const char* limit, const char* s) {
  while (*s != '\0' && p < limit) *p++ = *s++;
  return p;
}

// cs:signal-safe
char* AppendDec(char* p, uint64_t v) {
  char tmp[20];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) *p++ = tmp[--n];
  return p;
}

// Microsecond timestamp with millisecond-of-a-microsecond precision:
// "<ns/1000>.<ns%1000 zero-padded to 3>".
// cs:signal-safe
char* AppendTsUs(char* p, uint64_t ts_ns) {
  p = AppendDec(p, ts_ns / 1000);
  *p++ = '.';
  const uint64_t frac = ts_ns % 1000;
  *p++ = static_cast<char>('0' + frac / 100);
  *p++ = static_cast<char>('0' + (frac / 10) % 10);
  *p++ = static_cast<char>('0' + frac % 10);
  return p;
}

struct FlightMetrics {
  Counter* events =
      MetricsRegistry::Global().GetCounter("flightrec.events");
};

FlightMetrics& GetFlightMetrics() {
  static FlightMetrics metrics;
  return metrics;
}

}  // namespace

// cs:signal-safe
const char* FlightEventTypeName(FlightEventType type) {
  switch (type) {
    case FlightEventType::kSpanBegin: return "span_begin";
    case FlightEventType::kSpanEnd: return "span_end";
    case FlightEventType::kWalAppend: return "wal_append";
    case FlightEventType::kCheckpoint: return "checkpoint";
    case FlightEventType::kCacheHit: return "cache_hit";
    case FlightEventType::kCacheMiss: return "cache_miss";
    case FlightEventType::kSnapshotSwap: return "snapshot_swap";
    case FlightEventType::kApply: return "apply";
    case FlightEventType::kQuery: return "query";
    case FlightEventType::kScanChunk: return "scan_chunk";
    case FlightEventType::kStall: return "stall";
    case FlightEventType::kMark: return "mark";
    case FlightEventType::kRouteDecision: return "route_decision";
    case FlightEventType::kAlert: return "alert";
    case FlightEventType::kKernelScan: return "kernel_scan";
  }
  return "unknown";
}

namespace internal {

FlightRing::FlightRing(size_t capacity_pow2)
    : capacity(capacity_pow2),
      mask(capacity_pow2 - 1),
      // Raw array of atomics (no make_unique for atomic aggregates
      // pre-C++20 value-init); leaked with the ring so the crash
      // handler can always read it. cslint: allow(naked-new)
      words(new std::atomic<uint64_t>[capacity_pow2 * 4]()) {
  for (size_t i = 0; i < kMaxOpenSpans; ++i) {
    open_names[i].store(0, std::memory_order_relaxed);
  }
}

// Pairs with the raw array in the constructor; only ever runs for
// rings that were never registered. cslint: allow(naked-new)
FlightRing::~FlightRing() { delete[] words; }

}  // namespace internal

FlightRecorder::FlightRecorder()
    : origin_(std::chrono::steady_clock::now()) {
  // Reserve name id 0 as the unknown-name sentinel.
  names_[0].store("?", std::memory_order_relaxed);
  name_count_.store(1, std::memory_order_release);
}

FlightRecorder& FlightRecorder::Global() {
  // Leaked singleton: must outlive thread_locals and stay valid
  // inside signal handlers. cslint: allow(naked-new)
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

uint64_t FlightRecorder::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

void FlightRecorder::SetCapacityPerThread(size_t events) {
  capacity_.store(RoundUpPow2(std::max<size_t>(events, 16)),
                  std::memory_order_relaxed);
}

uint16_t FlightRecorder::InternName(const char* name) {
  // cs:lock(obs.flightrec)
  std::lock_guard<lockdep::Mutex> lock(registry_mu_);
  const uint32_t count = name_count_.load(std::memory_order_relaxed);
  for (uint32_t i = 0; i < count; ++i) {
    const char* existing = names_[i].load(std::memory_order_relaxed);
    if (std::strcmp(existing, name) == 0) return static_cast<uint16_t>(i);
  }
  if (count >= kMaxNames) return 0;
  // Copy, cap, and sanitize so dump emitters can splice the name into
  // JSON without escaping (signal handlers cannot escape).
  const size_t len = std::min(std::strlen(name), kMaxNameLen);
  // Interned C string, intentionally leaked so NameOf() stays
  // valid inside signal handlers forever. cslint: allow(naked-new)
  char* copy = new char[len + 1];
  for (size_t i = 0; i < len; ++i) {
    const unsigned char c = static_cast<unsigned char>(name[i]);
    copy[i] = (c < 0x20 || c == '"' || c == '\\' || c >= 0x7f)
                  ? '_'
                  : static_cast<char>(c);
  }
  copy[len] = '\0';
  names_[count].store(copy, std::memory_order_relaxed);
  name_count_.store(count + 1, std::memory_order_release);
  return static_cast<uint16_t>(count);
}

// cs:signal-safe
const char* FlightRecorder::NameOf(uint16_t id) const {
  if (id >= name_count_.load(std::memory_order_acquire)) return "?";
  return names_[id].load(std::memory_order_relaxed);
}

internal::FlightRing* FlightRecorder::LocalRing() {
  if (t_flight_ring != nullptr) return t_flight_ring;
  if (t_flight_ring_exhausted) return nullptr;
  const size_t capacity = capacity_.load(std::memory_order_relaxed);
  // cs:lock(obs.flightrec)
  std::lock_guard<lockdep::Mutex> lock(registry_mu_);
  const uint32_t index = ring_count_.load(std::memory_order_relaxed);
  if (index >= kMaxThreads) {
    t_flight_ring_exhausted = true;
    return nullptr;
  }
  // Slot reserved before allocating, so a full registry never churns
  // ring memory. Registered rings are intentionally leaked so crash
  // dumps can include events from exited threads. cslint: allow(naked-new)
  internal::FlightRing* ring = new internal::FlightRing(capacity);
  ring->thread_index = index;
  rings_[index].store(ring, std::memory_order_release);
  ring_count_.store(index + 1, std::memory_order_release);
  t_flight_ring = ring;
  return ring;
}

void FlightRecorder::ResetThreadForTest() {
  t_flight_ring = nullptr;
  t_flight_ring_exhausted = false;
}

void FlightRecorder::Record(FlightEventType type, uint16_t name_id,
                            uint64_t a, uint64_t b) {
  if (!enabled()) return;
  internal::FlightRing* ring = LocalRing();
  if (ring == nullptr) return;
  const uint64_t ts = NowNs();
  const uint64_t index = ring->cursor.load(std::memory_order_relaxed);
  std::atomic<uint64_t>* slot = ring->words + (index & ring->mask) * 4;
  const uint64_t packed = (static_cast<uint64_t>(type) << 56) |
                          (static_cast<uint64_t>(name_id) << 40) |
                          static_cast<uint64_t>(ring->thread_index);
  slot[0].store(ts, std::memory_order_relaxed);
  slot[1].store(packed, std::memory_order_relaxed);
  slot[2].store(a, std::memory_order_relaxed);
  slot[3].store(b, std::memory_order_relaxed);
  ring->cursor.store(index + 1, std::memory_order_release);
  total_events_.fetch_add(1, std::memory_order_relaxed);
  GetFlightMetrics().events->Increment();
}

void FlightRecorder::PushSpan(uint16_t name_id, uint64_t span_id) {
  if (!enabled()) return;
  internal::FlightRing* ring = LocalRing();
  if (ring == nullptr) return;
  const uint32_t depth = ring->open_depth.load(std::memory_order_relaxed);
  if (depth < internal::FlightRing::kMaxOpenSpans) {
    ring->open_names[depth].store(name_id, std::memory_order_relaxed);
  }
  ring->open_depth.store(depth + 1, std::memory_order_release);
  Record(FlightEventType::kSpanBegin, name_id, span_id, 0);
}

void FlightRecorder::PopSpan(uint16_t name_id, uint64_t duration_us) {
  internal::FlightRing* ring = LocalRing();
  if (ring == nullptr) return;
  const uint32_t depth = ring->open_depth.load(std::memory_order_relaxed);
  if (depth > 0) {
    ring->open_depth.store(depth - 1, std::memory_order_release);
  }
  Record(FlightEventType::kSpanEnd, name_id, duration_us, 0);
}

// cs:signal-safe
uint64_t FlightRecorder::total_events() const {
  return total_events_.load(std::memory_order_relaxed);
}

void FlightRecorder::DecodeRing(const internal::FlightRing& ring,
                                std::vector<FlightEvent>* out) const {
  const uint64_t cursor = ring.cursor.load(std::memory_order_acquire);
  const uint64_t valid = std::min<uint64_t>(cursor, ring.capacity);
  for (uint64_t k = cursor - valid; k < cursor; ++k) {
    const std::atomic<uint64_t>* slot = ring.words + (k & ring.mask) * 4;
    FlightEvent event;
    event.ts_ns = slot[0].load(std::memory_order_relaxed);
    const uint64_t packed = slot[1].load(std::memory_order_relaxed);
    event.type = static_cast<FlightEventType>((packed >> 56) & 0xff);
    event.name_id = static_cast<uint16_t>((packed >> 40) & 0xffff);
    event.thread_index = static_cast<uint32_t>(packed & 0xffffffffu);
    event.a = slot[2].load(std::memory_order_relaxed);
    event.b = slot[3].load(std::memory_order_relaxed);
    out->push_back(event);
  }
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  const uint32_t n =
      std::min<uint32_t>(ring_count_.load(std::memory_order_acquire),
                         kMaxThreads);
  for (uint32_t i = 0; i < n; ++i) {
    const internal::FlightRing* ring =
        rings_[i].load(std::memory_order_acquire);
    if (ring != nullptr) DecodeRing(*ring, &out);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

namespace {

// Shared dump formatter: called with a line emitter so the normal path
// (std::string) and the crash path (write() to an fd) produce
// byte-identical output. Everything here is async-signal-safe as long
// as `sink` is; the per-ring state lives in fixed stack arrays.
template <typename Sink>
// cs:signal-safe
void FormatDump(const FlightRecorder& recorder,
                const std::atomic<internal::FlightRing*>* rings,
                uint32_t ring_count, uint64_t total_events,
                const char* reason, const char* build_info,
                const char* config, Sink&& sink) {
  // Sized so the header line holds the crash handler's build_info
  // (<= 255B) and config (<= 1023B) untruncated; `text_limit` reserves
  // room for the fixed JSON text and numeric fields, so even larger
  // inputs truncate instead of overrunning the handler's stack.
  char line[1664];
  char* const text_limit = line + sizeof(line) - 256;
  char* p = line;

  const internal::FlightRing* ring_ptr[FlightRecorder::kMaxThreads];
  uint64_t pos[FlightRecorder::kMaxThreads];
  uint64_t end[FlightRecorder::kMaxThreads];
  const uint32_t n =
      std::min<uint32_t>(ring_count, FlightRecorder::kMaxThreads);
  uint32_t live = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const internal::FlightRing* ring =
        rings[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const uint64_t cursor = ring->cursor.load(std::memory_order_acquire);
    const uint64_t valid = std::min<uint64_t>(cursor, ring->capacity);
    ring_ptr[live] = ring;
    pos[live] = cursor - valid;
    end[live] = cursor;
    ++live;
  }

  // Header.
  p = AppendStr(p, "{\"type\":\"flight_dump\",\"reason\":\"");
  p = AppendStrBounded(p, text_limit, reason != nullptr ? reason : "unknown");
  p = AppendStr(p, "\",\"pid\":");
  p = AppendDec(p, static_cast<uint64_t>(::getpid()));
  p = AppendStr(p, ",\"build\":\"");
  if (build_info != nullptr) p = AppendStrBounded(p, text_limit, build_info);
  p = AppendStr(p, "\",\"config\":\"");
  if (config != nullptr) p = AppendStrBounded(p, text_limit, config);
  p = AppendStr(p, "\",\"total_events\":");
  p = AppendDec(p, total_events);
  p = AppendStr(p, ",\"threads\":");
  p = AppendDec(p, live);
  p = AppendStr(p, "}\n");
  // The sink is caller-supplied; the crash path passes a raw write()
  // loop (see DumpToFd), the normal path a std::string append.
  // cslint: allow(signal-safety) sink is the caller's emitter
  sink(line, static_cast<size_t>(p - line));

  // Active span stack per thread, innermost last.
  for (uint32_t i = 0; i < live; ++i) {
    const internal::FlightRing* ring = ring_ptr[i];
    p = line;
    p = AppendStr(p, "{\"type\":\"open_spans\",\"thread\":");
    p = AppendDec(p, ring->thread_index);
    const uint32_t depth = ring->open_depth.load(std::memory_order_acquire);
    const uint32_t shown =
        std::min<uint32_t>(depth, internal::FlightRing::kMaxOpenSpans);
    p = AppendStr(p, ",\"depth\":");
    p = AppendDec(p, depth);
    p = AppendStr(p, ",\"spans\":\"");
    for (uint32_t d = 0; d < shown; ++d) {
      if (d > 0) *p++ = ';';
      p = AppendStr(p, recorder.NameOf(ring->open_names[d].load(
                            std::memory_order_relaxed)));
      // Names are capped at intern time, but keep a hard margin so a
      // deep stack of long names cannot overrun the line buffer.
      if (p - line > static_cast<ptrdiff_t>(sizeof(line)) - 160) break;
    }
    p = AppendStr(p, "\"}\n");
    // cslint: allow(signal-safety) same caller-supplied sink as above.
    sink(line, static_cast<size_t>(p - line));
  }

  // Chronological k-way merge across rings, oldest first.
  for (;;) {
    uint32_t best = live;
    uint64_t best_ts = 0;
    for (uint32_t i = 0; i < live; ++i) {
      if (pos[i] >= end[i]) continue;
      const uint64_t ts =
          ring_ptr[i]
              ->words[(pos[i] & ring_ptr[i]->mask) * 4]
              .load(std::memory_order_relaxed);
      if (best == live || ts < best_ts) {
        best = i;
        best_ts = ts;
      }
    }
    if (best == live) break;
    const internal::FlightRing* ring = ring_ptr[best];
    const std::atomic<uint64_t>* slot =
        ring->words + (pos[best] & ring->mask) * 4;
    ++pos[best];
    const uint64_t ts = slot[0].load(std::memory_order_relaxed);
    const uint64_t packed = slot[1].load(std::memory_order_relaxed);
    const uint64_t a = slot[2].load(std::memory_order_relaxed);
    const uint64_t b = slot[3].load(std::memory_order_relaxed);
    const FlightEventType type =
        static_cast<FlightEventType>((packed >> 56) & 0xff);
    const uint16_t name_id = static_cast<uint16_t>((packed >> 40) & 0xffff);
    p = line;
    p = AppendStr(p, "{\"type\":\"event\",\"ts_us\":");
    p = AppendTsUs(p, ts);
    p = AppendStr(p, ",\"thread\":");
    p = AppendDec(p, packed & 0xffffffffu);
    p = AppendStr(p, ",\"event\":\"");
    p = AppendStr(p, FlightEventTypeName(type));
    p = AppendStr(p, "\",\"name\":\"");
    p = AppendStr(p, recorder.NameOf(name_id));
    p = AppendStr(p, "\",\"a\":");
    p = AppendDec(p, a);
    p = AppendStr(p, ",\"b\":");
    p = AppendDec(p, b);
    p = AppendStr(p, "}\n");
    // cslint: allow(signal-safety) same caller-supplied sink as above.
    sink(line, static_cast<size_t>(p - line));
  }
}

}  // namespace

std::string FlightRecorder::Dump(const char* reason) const {
  std::string out;
  FormatDump(*this, rings_, ring_count_.load(std::memory_order_acquire),
             total_events(), reason, "", "",
             [&out](const char* line, size_t len) { out.append(line, len); });
  return out;
}

Status FlightRecorder::WriteJsonlFile(const std::string& path,
                                      const char* reason) const {
  const std::string body = Dump(reason);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + tmp + " for writing");
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != body.size() || !close_ok) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

// cs:signal-safe
void FlightRecorder::DumpToFd(int fd, const char* reason,
                              const char* build_info,
                              const char* config) const {
  FormatDump(*this, rings_, ring_count_.load(std::memory_order_acquire),
             total_events(), reason, build_info, config,
             [fd](const char* line, size_t len) {
               size_t off = 0;
               while (off < len) {
                 const ssize_t n = ::write(fd, line + off, len - off);
                 if (n > 0) {
                   off += static_cast<size_t>(n);
                 } else if (n < 0 && errno != EINTR) {
                   return;
                 }
               }
             });
}

}  // namespace crowdselect::obs
