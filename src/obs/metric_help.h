// Metric descriptions for Prometheus "# HELP" lines, compiled from
// docs/metrics_registry.txt by tools/gen_metric_help.cmake. The
// registry is the single source of truth: cslint enforces that every
// metric literal appears there, and this table turns the same file's
// description column into exporter help text — a metric can not ship
// without at least a registry entry, and its HELP line rides along.
#ifndef CROWDSELECT_OBS_METRIC_HELP_H_
#define CROWDSELECT_OBS_METRIC_HELP_H_

#include <string>
#include <string_view>

namespace crowdselect::obs {

/// Description for `metric` (the dotted internal name, not the
/// Prometheus-sanitized one). Resolution order: exact registry entry,
/// then the longest matching wildcard entry ("quality.*" matches
/// quality.tdpm.rmse.p50), then a generic fallback — never empty, so
/// every exposition family can carry a HELP line.
std::string MetricHelp(std::string_view metric);

/// Number of entries in the compiled help table (tests).
size_t MetricHelpTableSize();

}  // namespace crowdselect::obs

#endif  // CROWDSELECT_OBS_METRIC_HELP_H_
