#include "obs/json_escape.h"

#include <cstdio>

namespace crowdselect::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += JsonEscape(s);
  out += '"';
  return out;
}

}  // namespace crowdselect::obs
