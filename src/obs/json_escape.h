// JSON string escaping shared by every obs serializer (stats JSON,
// Chrome trace export, EXPLAIN output). Metric and span names are dotted
// identifiers in practice, but the serializers must stay correct for any
// byte sequence a caller registers.
#ifndef CROWDSELECT_OBS_JSON_ESCAPE_H_
#define CROWDSELECT_OBS_JSON_ESCAPE_H_

#include <string>
#include <string_view>

namespace crowdselect::obs {

/// Escapes `s` for inclusion inside a JSON string literal: quote,
/// backslash, and control characters (as \uXXXX or the short forms \n,
/// \t, \r, \b, \f). Does not add the surrounding quotes.
std::string JsonEscape(std::string_view s);

/// JsonEscape() wrapped in double quotes — a complete JSON string token.
std::string JsonQuote(std::string_view s);

}  // namespace crowdselect::obs

#endif  // CROWDSELECT_OBS_JSON_ESCAPE_H_
