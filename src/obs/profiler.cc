#ifndef _GNU_SOURCE
#define _GNU_SOURCE  // dladdr
#endif

#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

#if defined(__unix__) && __has_include(<execinfo.h>)
#define CROWDSELECT_PROFILER_SUPPORTED 1
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#else
#define CROWDSELECT_PROFILER_SUPPORTED 0
#endif

namespace crowdselect::obs {

namespace {

// Fixed sample store written by the SIGPROF handler. Publication
// protocol: the handler claims a slot with a relaxed fetch_add on
// `cursor`, writes the raw frames, then release-stores the frame count
// into `ready[slot]`; readers acquire-load `ready` before touching the
// frames, so the plain frame writes are ordered without any handler-
// side locking.
struct SampleStore {
  std::atomic<uint64_t> cursor{0};
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint8_t> ready[SamplingProfiler::kMaxSamples];
  void* frames[SamplingProfiler::kMaxSamples][SamplingProfiler::kMaxFrames];
};

SampleStore g_samples;

struct ProfilerMetrics {
  Counter* samples = MetricsRegistry::Global().GetCounter("profiler.samples");
  Counter* dropped = MetricsRegistry::Global().GetCounter("profiler.dropped");
};

ProfilerMetrics& GetProfilerMetrics() {
  static ProfilerMetrics metrics;
  return metrics;
}

#if CROWDSELECT_PROFILER_SUPPORTED

// Pre-resolved in Start() so the handler's Increment is just a relaxed
// fetch_add (no registry lookup in signal context).
Counter* g_samples_counter = nullptr;
Counter* g_dropped_counter = nullptr;
struct sigaction g_prev_sigprof;
struct itimerval g_prev_timer;

// cs:signal-safe
void ProfSignalHandler(int /*signo*/, siginfo_t* /*info*/, void* /*ctx*/) {
  const int saved_errno = errno;
  const uint64_t index =
      g_samples.cursor.fetch_add(1, std::memory_order_relaxed);
  if (index >= SamplingProfiler::kMaxSamples) {
    g_samples.dropped.fetch_add(1, std::memory_order_relaxed);
    if (g_dropped_counter != nullptr) g_dropped_counter->Increment();
    errno = saved_errno;
    return;
  }
  // glibc's backtrace is reentrant after its first (pre-loading) call,
  // which Start() makes before arming the timer.
  const int depth =  // cslint: allow(signal-safety) warmed up pre-arm
      ::backtrace(g_samples.frames[index], SamplingProfiler::kMaxFrames);
  g_samples.ready[index].store(
      static_cast<uint8_t>(std::max(depth, 0)), std::memory_order_release);
  if (g_samples_counter != nullptr) g_samples_counter->Increment();
  errno = saved_errno;
}

// Best-effort symbol for a return address: function name via dladdr
// (demangled when possible), else the module basename + offset, else
// the raw address. Semicolons and spaces are reserved separators in
// the collapsed format and get replaced.
std::string SymbolizeFrame(void* pc) {
  char buf[64];
  Dl_info info;
  if (::dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    std::string name = info.dli_sname;
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) name = demangled;
    std::free(demangled);  // NOLINT: __cxa_demangle mallocs.
    for (char& c : name) {
      if (c == ';' || c == ' ' || c == '\n') c = '_';
    }
    return name;
  }
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(
                    reinterpret_cast<uintptr_t>(pc)));
  return buf;
}

#endif  // CROWDSELECT_PROFILER_SUPPORTED

}  // namespace

SamplingProfiler& SamplingProfiler::Global() {
  // Leaked singleton paired with the static sample store; the SIGPROF
  // handler must outlive static destructors. cslint: allow(naked-new)
  static SamplingProfiler* profiler = new SamplingProfiler();
  return *profiler;
}

bool SamplingProfiler::running() const {
  // cs:lock(obs.profiler)
  std::lock_guard<lockdep::Mutex> lock(mu_);
  return running_;
}

uint64_t SamplingProfiler::samples() const {
  return std::min<uint64_t>(g_samples.cursor.load(std::memory_order_acquire),
                            kMaxSamples);
}

uint64_t SamplingProfiler::dropped() const {
  return g_samples.dropped.load(std::memory_order_relaxed);
}

Status SamplingProfiler::Start(double interval_us) {
#if !CROWDSELECT_PROFILER_SUPPORTED
  (void)interval_us;
  return Status::FailedPrecondition(
      "sampling profiler requires setitimer + backtrace on this platform");
#else
  if (interval_us < 100.0) {
    return Status::InvalidArgument(
        "profiler interval must be >= 100 us (got " +
        std::to_string(interval_us) + ")");
  }
  // cs:lock(obs.profiler)
  std::lock_guard<lockdep::Mutex> lock(mu_);
  if (running_) return Status::AlreadyExists("profiler already running");

  // Reset the store; stale ready flags from a previous run must not
  // leak old frames into the new profile.
  g_samples.cursor.store(0, std::memory_order_relaxed);
  g_samples.dropped.store(0, std::memory_order_relaxed);
  for (size_t i = 0; i < kMaxSamples; ++i) {
    g_samples.ready[i].store(0, std::memory_order_relaxed);
  }
  g_samples_counter = GetProfilerMetrics().samples;
  g_dropped_counter = GetProfilerMetrics().dropped;

  // First backtrace call loads libgcc's unwinder; doing it here keeps
  // the signal handler's call reentrant.
  void* warmup[4];
  (void)::backtrace(warmup, 4);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = ProfSignalHandler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (::sigaction(SIGPROF, &action, &g_prev_sigprof) != 0) {
    return Status::IOError("sigaction(SIGPROF) failed");
  }

  struct itimerval timer;
  const long usec = static_cast<long>(interval_us);
  timer.it_interval.tv_sec = usec / 1000000;
  timer.it_interval.tv_usec = usec % 1000000;
  timer.it_value = timer.it_interval;
  if (::setitimer(ITIMER_PROF, &timer, &g_prev_timer) != 0) {
    (void)::sigaction(SIGPROF, &g_prev_sigprof, nullptr);  // Best effort.
    return Status::IOError("setitimer(ITIMER_PROF) failed");
  }
  running_ = true;
  return Status::OK();
#endif
}

Status SamplingProfiler::Stop() {
#if !CROWDSELECT_PROFILER_SUPPORTED
  return Status::FailedPrecondition("sampling profiler unsupported");
#else
  // cs:lock(obs.profiler)
  std::lock_guard<lockdep::Mutex> lock(mu_);
  if (!running_) return Status::FailedPrecondition("profiler not running");
  struct itimerval off;
  std::memset(&off, 0, sizeof(off));
  if (::setitimer(ITIMER_PROF, &off, nullptr) != 0) {
    return Status::IOError("setitimer(ITIMER_PROF, off) failed");
  }
  // In-flight SIGPROF may still be pending; the handler stays valid
  // (static storage), we just restore the previous disposition.
  (void)::sigaction(SIGPROF, &g_prev_sigprof, nullptr);  // Best effort.
  running_ = false;
  return Status::OK();
#endif
}

std::string SamplingProfiler::CollapsedStacks() const {
#if !CROWDSELECT_PROFILER_SUPPORTED
  return "";
#else
  const uint64_t count = samples();
  // Aggregate by raw pc sequence first so each distinct stack is
  // symbolized once.
  std::map<std::vector<void*>, uint64_t> stacks;
  for (uint64_t i = 0; i < count; ++i) {
    const int depth = g_samples.ready[i].load(std::memory_order_acquire);
    // Skip the two signal-dispatch frames (handler + trampoline).
    if (depth <= 2) continue;
    std::vector<void*> stack(g_samples.frames[i] + 2,
                             g_samples.frames[i] + depth);
    std::reverse(stack.begin(), stack.end());  // Root first.
    ++stacks[stack];
  }
  // Re-aggregate after symbolization: distinct pcs inside one function
  // symbolize to the same frame name, so pc-distinct stacks can merge.
  std::map<void*, std::string> symbols;
  std::map<std::string, uint64_t> lines;
  for (const auto& [stack, n] : stacks) {
    std::string line;
    for (void* pc : stack) {
      auto it = symbols.find(pc);
      if (it == symbols.end()) {
        it = symbols.emplace(pc, SymbolizeFrame(pc)).first;
      }
      if (!line.empty()) line += ';';
      line += it->second;
    }
    lines[line] += n;
  }
  std::string out;
  for (const auto& [line, n] : lines) {
    out += line;
    out += ' ';
    out += std::to_string(n);
    out += '\n';
  }
  return out;
#endif
}

Status SamplingProfiler::WriteCollapsedFile(const std::string& path) const {
  const std::string body = CollapsedStacks();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open " + tmp + " for writing");
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != body.size() || !close_ok) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

}  // namespace crowdselect::obs
