// Bounded in-memory time-series store: metrics gain *history* instead of
// only instantaneous values. Each named series is a fixed-capacity ring
// of (t, v) points — once full, appending overwrites oldest-first, so
// memory is bounded no matter how long the process runs. Sampling is
// caller-driven (SampleRegistry once per workload tick keeps replayed
// runs deterministic) or background (a thread polling every N seconds
// for long-lived servers); both walk MetricsRegistry::CurrentValues(),
// the cheap no-history read path, so a tick never copies gauge
// histories or histogram buckets.
//
// The export format is JSONL with one *flat* object per point —
// {"series":"serve.queries","t":12,"v":340} — deliberately matching
// what jsonl::ParseObject can read back, so the `crowdselect report`
// command and downstream tooling never need a nested-JSON parser.
//
// Alert rate() rules (obs/alerts.h) read their windows from this store,
// and the quality monitor's gauges land here like any other metric, so
// one dump carries latency, quality, and alert history side by side.
#ifndef CROWDSELECT_OBS_TIMESERIES_H_
#define CROWDSELECT_OBS_TIMESERIES_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/lockdep.h"
#include "util/status.h"

namespace crowdselect::obs {

/// One sample of one series. `t` is whatever unit the sampler chose —
/// task index for simulate ticks, seconds since sampling start for the
/// background thread; a store mixes units only if its callers do.
struct TimeSeriesPoint {
  double t = 0.0;
  double v = 0.0;
};

/// Thread-safe bounded store of named series. All methods may be called
/// concurrently; Append is a mutex + ring store, meant for per-tick
/// cadence (not per-observation hot loops — those belong in Counter /
/// Histogram, which this store then samples).
class TimeSeriesStore {
 public:
  /// The process-wide store the CLI flags and alert engine use.
  static TimeSeriesStore& Global();

  TimeSeriesStore() = default;
  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;
  ~TimeSeriesStore() { StopSampling(); }

  /// Ring capacity for series created after the call (existing series
  /// keep their ring). Clamped to >= 2. Default 1024 points.
  void set_capacity_per_series(size_t points);
  size_t capacity_per_series() const;

  /// Hard cap on distinct series; appends to new series beyond it are
  /// dropped (counted in timeseries.dropped_series). Default 4096.
  void set_max_series(size_t n);

  /// Appends one point to `series`, creating the series on first use.
  /// Returns false when the series cap rejected a new series.
  bool Append(std::string_view series, double t, double v);

  /// Appends every counter and gauge in `registry` at time `t` (one
  /// point per instrument, series named after the metric). Returns the
  /// number of points appended.
  size_t SampleRegistry(double t,
                        MetricsRegistry* registry = &MetricsRegistry::Global());

  /// Spawns a thread calling SampleRegistry every `interval_seconds`
  /// with t = seconds since StartSampling. Idempotent while running;
  /// intervals <= 0 clamp to 1s. Pairs with StopSampling() (also run by
  /// the destructor).
  void StartSampling(double interval_seconds,
                     MetricsRegistry* registry = &MetricsRegistry::Global());

  /// Joins the sampling thread. Idempotent; safe when never started.
  void StopSampling();

  bool sampling_running() const;

  /// Registered series names, sorted.
  std::vector<std::string> SeriesNames() const;

  /// Retained points of `series`, oldest first (empty for unknown).
  std::vector<TimeSeriesPoint> Points(std::string_view series) const;

  /// Total points ever appended / retained series count.
  uint64_t total_points() const;
  size_t num_series() const;

  /// Drops every series and point (capacity settings survive).
  void Clear();

  /// One flat JSON object per line, series in name order, points oldest
  /// first: {"series":"<name>","t":<t>,"v":<v>}.
  std::string ToJsonl() const;

  /// ToJsonl() to a file, written atomically (tmp + rename) so a
  /// concurrent reader never sees a torn dump.
  Status WriteJsonlFile(const std::string& path) const;

 private:
  struct Series {
    std::vector<TimeSeriesPoint> ring;  ///< Fixed capacity once created.
    size_t capacity = 0;
    size_t next = 0;      ///< Ring slot the next append writes.
    uint64_t appended = 0;  ///< Total appends (>= ring.size()).
  };

  bool AppendLocked(std::string_view series, double t, double v);
  void SamplingLoop(double interval_seconds, MetricsRegistry* registry);

  mutable std::mutex mu_;
  size_t capacity_per_series_ = 1024;
  size_t max_series_ = 4096;
  uint64_t total_points_ = 0;
  std::map<std::string, Series, std::less<>> series_;

  // Background sampling state; separate from mu_ so the loop never holds
  // a lock across SampleRegistry (which takes mu_ per append). Lock
  // order: obs.timeseries.sampler is a leaf — never held while acquiring
  // mu_ or the registry mutex.
  mutable lockdep::Mutex sampler_mu_{"obs.timeseries.sampler"};
  std::condition_variable_any sampler_cv_;
  bool sampler_stopping_ = false;
  std::thread sampler_thread_;
};

}  // namespace crowdselect::obs

#endif  // CROWDSELECT_OBS_TIMESERIES_H_
