// Lightweight in-process tracing: ScopedSpan is an RAII timer that
// records a completed span — name, wall-clock interval, thread, and
// parent span — into a per-thread buffer owned by the process-wide
// TraceCollector. Nesting is tracked per thread, so the EM loop's span
// tree (em.fit > em.iteration > em.e_step.workers ...) reconstructs
// directly from parent ids.
//
// Every completed span also feeds the metrics registry: a latency
// histogram `span.<name>.us` and a counter `span.<name>.calls`, so
// snapshots carry per-phase timing breakdowns even after traces are
// cleared. Hot call sites should hold a SpanMeter so the name lookup
// happens once, not per span.
//
// Define CROWDSELECT_DISABLE_OBS to compile the CS_SPAN macros out
// entirely; at runtime, TraceCollector::SetEnabled(false) makes spans
// no-ops and MetricsRegistry::SetEnabled(false) silences the derived
// metrics.
#ifndef CROWDSELECT_OBS_TRACE_H_
#define CROWDSELECT_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace crowdselect::obs {

/// One completed span.
struct SpanRecord {
  uint64_t id = 0;      ///< Process-unique, > 0.
  uint64_t parent = 0;  ///< Enclosing span on the same thread; 0 = root.
  std::string name;
  uint32_t thread_index = 0;  ///< Dense per-process thread number.
  uint32_t depth = 0;         ///< Nesting depth on its thread (root = 0).
  double start_us = 0.0;      ///< Since the collector's time origin.
  double duration_us = 0.0;
};

namespace internal {

/// Span sink for one thread. The owning thread appends; Snapshot()
/// readers copy under the buffer mutex. Uncontended in steady state.
struct ThreadTraceBuffer {
  std::mutex mu;
  std::vector<SpanRecord> spans;
};

}  // namespace internal

/// Process-wide span sink with bounded retention. Collection is on by
/// default; the cap (default 64k spans) drops the newest spans once hit
/// and counts the drops, so long-running processes cannot grow without
/// bound.
class TraceCollector {
 public:
  static TraceCollector& Global();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Maximum retained spans across all threads.
  void SetCapacity(size_t capacity) {
    capacity_.store(capacity, std::memory_order_relaxed);
  }

  /// Copies every retained span (live thread buffers + spans from exited
  /// threads), ordered by start time.
  std::vector<SpanRecord> Snapshot() const;

  /// Drops all retained spans (keeps enabled/capacity settings).
  void Clear();

  /// Spans discarded because the capacity cap was hit.
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Microseconds since the collector's time origin; the time base of
  /// SpanRecord::start_us.
  double NowUs() const;

  // Implementation hooks for ScopedSpan and the thread-local buffer
  // registry (trace.cc); not part of the public surface.
  /// Returns the calling thread's buffer, registering it on first use.
  internal::ThreadTraceBuffer* LocalBuffer();
  void Retire(std::shared_ptr<internal::ThreadTraceBuffer> buffer);
  void Push(SpanRecord span);

 private:
  friend class ScopedSpan;

  TraceCollector();

  std::chrono::steady_clock::time_point origin_;
  std::atomic<bool> enabled_{true};
  std::atomic<size_t> capacity_{1u << 16};
  std::atomic<size_t> total_spans_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint32_t> next_thread_index_{0};

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<internal::ThreadTraceBuffer>> buffers_;
  std::vector<SpanRecord> retired_;  ///< Spans from exited threads.
};

/// Pre-resolved registry instruments for one span name; construct once
/// (e.g. as a function-local static) so the per-span cost is two clock
/// reads, the buffer append, and two atomic adds.
struct SpanMeter {
  explicit SpanMeter(const char* span_name,
                     MetricsRegistry* registry = &MetricsRegistry::Global());
  /// Same, with explicit bucket bounds for the latency histogram (e.g.
  /// ServeLatencyBucketBounds() for serve.* spans). First registration of
  /// a name wins, as with MetricsRegistry::GetHistogram.
  SpanMeter(const char* span_name, const std::vector<double>& bounds,
            MetricsRegistry* registry = &MetricsRegistry::Global());

  const char* name;
  Histogram* latency_us;    ///< "span.<name>.us"
  Counter* calls;           ///< "span.<name>.calls"
  uint16_t flight_name_id;  ///< Pre-interned FlightRecorder name.
};

/// RAII span: opens on construction, records on destruction. Inactive
/// (zero-cost beyond one branch) when the collector is disabled.
class ScopedSpan {
 public:
  /// Resolves registry instruments by name on every construction; fine
  /// for per-phase spans, use the SpanMeter overload in loops.
  explicit ScopedSpan(const char* name)
      : ScopedSpan(name, nullptr) {}
  ScopedSpan(const SpanMeter& meter) : ScopedSpan(meter.name, &meter) {}
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  ScopedSpan(const char* name, const SpanMeter* meter);

  const char* name_;
  const SpanMeter* meter_;
  bool active_ = false;
  bool flight_open_ = false;  ///< A flight-recorder span was pushed.
  uint16_t flight_id_ = 0;
  uint64_t id_ = 0;
  uint64_t saved_parent_ = 0;
  uint32_t depth_ = 0;
  std::chrono::steady_clock::time_point start_;
};

/// Serializes spans in Chrome trace_event JSON (load the file in
/// chrome://tracing or https://ui.perfetto.dev).
std::string SpansToChromeTraceJson(const std::vector<SpanRecord>& spans);

#ifdef CROWDSELECT_DISABLE_OBS
#define CS_SPAN(var, name) \
  do {                     \
  } while (0)
#else
/// Declares a scoped span local named `var` covering the rest of the
/// enclosing block.
#define CS_SPAN(var, name) ::crowdselect::obs::ScopedSpan var(name)
#endif

}  // namespace crowdselect::obs

#endif  // CROWDSELECT_OBS_TRACE_H_
