#include "obs/window.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "util/logging.h"

namespace crowdselect::obs {

WindowedHistogram::WindowedHistogram(std::string name, size_t num_windows,
                                     std::vector<double> bounds,
                                     MetricsRegistry* registry,
                                     std::string gauge_prefix)
    : name_(std::move(name)),
      num_windows_(num_windows),
      bounds_(std::move(bounds)),
      p50_(registry->GetGauge(gauge_prefix + name_ + ".p50")),
      p95_(registry->GetGauge(gauge_prefix + name_ + ".p95")),
      p99_(registry->GetGauge(gauge_prefix + name_ + ".p99")),
      mean_(registry->GetGauge(gauge_prefix + name_ + ".mean")),
      window_count_(registry->GetGauge(gauge_prefix + name_ + ".window_count")),
      samples_(registry->GetGauge(gauge_prefix + name_ + ".samples")) {
  CS_CHECK(num_windows_ >= 1) << "windowed histogram needs >= 1 window";
  CS_CHECK(!bounds_.empty() && std::is_sorted(bounds_.begin(), bounds_.end()))
      << "windowed histogram bounds must be non-empty and ascending";
  open_ = EmptyWindow();
}

WindowedHistogram::Window WindowedHistogram::EmptyWindow() const {
  Window w;
  w.buckets.assign(bounds_.size() + 1, 0);
  w.min = std::numeric_limits<double>::infinity();
  w.max = -std::numeric_limits<double>::infinity();
  return w;
}

void WindowedHistogram::Record(double value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  // cs:lock(obs.slo.window)
  std::lock_guard<std::mutex> lock(mu_);
  ++open_.buckets[bucket];
  ++open_.count;
  open_.sum += value;
  open_.min = std::min(open_.min, value);
  open_.max = std::max(open_.max, value);
}

void WindowedHistogram::Rotate() {
  // cs:lock(obs.slo.window)
  std::lock_guard<std::mutex> lock(mu_);
  closed_.push_back(std::move(open_));
  open_ = EmptyWindow();
  while (closed_.size() > num_windows_) closed_.pop_front();
  ++rotations_;
  RefreshGaugesLocked();
}

HistogramSample WindowedHistogram::MergeLocked(bool include_open) const {
  HistogramSample s;
  s.name = name_;
  s.bounds = bounds_;
  s.bucket_counts.assign(bounds_.size() + 1, 0);
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  auto add = [&](const Window& w) {
    for (size_t i = 0; i < w.buckets.size(); ++i) {
      s.bucket_counts[i] += w.buckets[i];
    }
    s.count += w.count;
    s.sum += w.sum;
    if (w.count > 0) {
      min = std::min(min, w.min);
      max = std::max(max, w.max);
    }
  };
  for (const Window& w : closed_) add(w);
  if (include_open) add(open_);
  s.min = s.count == 0 ? 0.0 : min;
  s.max = s.count == 0 ? 0.0 : max;
  return s;
}

void WindowedHistogram::RefreshGaugesLocked() {
  const HistogramSample merged = MergeLocked(/*include_open=*/false);
  // An all-empty window set reports 0 — "no traffic", which SLO dashboards
  // must distinguish from "fast" via the window_count / samples gauges.
  p50_->Set(merged.count == 0 ? 0.0 : merged.Quantile(0.50));
  p95_->Set(merged.count == 0 ? 0.0 : merged.Quantile(0.95));
  p99_->Set(merged.count == 0 ? 0.0 : merged.Quantile(0.99));
  mean_->Set(merged.Mean());
  window_count_->Set(static_cast<double>(merged.count));
  // Rotate() just pushed the freshly-closed window onto the back.
  samples_->Set(closed_.empty()
                    ? 0.0
                    : static_cast<double>(closed_.back().count));
}

HistogramSample WindowedHistogram::Merged(bool include_open) const {
  // cs:lock(obs.slo.window)
  std::lock_guard<std::mutex> lock(mu_);
  return MergeLocked(include_open);
}

uint64_t WindowedHistogram::rotations() const {
  // cs:lock(obs.slo.window)
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

// ---------------------------------------------------------------------------
// SloTracker
// ---------------------------------------------------------------------------

SloTracker& SloTracker::Global() {
  // cslint: allow(naked-new): leaked singleton, outlives all threads.
  static SloTracker* tracker = new SloTracker();
  return *tracker;
}

WindowedHistogram* SloTracker::GetWindow(std::string_view endpoint) {
  // cs:lock(obs.slo.window)
  std::lock_guard<std::mutex> lock(mu_);
  auto it = windows_.find(endpoint);
  if (it == windows_.end()) {
    it = windows_
             .emplace(std::string(endpoint),
                      std::make_unique<WindowedHistogram>(
                          std::string(endpoint), default_num_windows_,
                          ServeLatencyBucketBounds()))
             .first;
  }
  return it->second.get();
}

void SloTracker::Record(std::string_view endpoint, double latency_us) {
  GetWindow(endpoint)->Record(latency_us);
}

void SloTracker::RotateAll() {
  std::vector<WindowedHistogram*> windows;
  {
    // cs:lock(obs.slo.window)
    std::lock_guard<std::mutex> lock(mu_);
    windows.reserve(windows_.size());
    for (const auto& [name, w] : windows_) windows.push_back(w.get());
  }
  for (WindowedHistogram* w : windows) w->Rotate();
}

void SloTracker::StartBackgroundRotation(double interval_seconds) {
  // cs:lock(obs.slo.rotation)
  std::unique_lock<lockdep::Mutex> lock(rotation_mu_);
  if (rotation_thread_.joinable()) return;
  rotation_stopping_ = false;
  rotation_thread_ = std::thread(&SloTracker::RotationLoop, this,
                                 interval_seconds > 0 ? interval_seconds
                                                      : 1.0);
}

void SloTracker::StopBackgroundRotation() {
  std::thread to_join;
  {
    // cs:lock(obs.slo.rotation)
    std::unique_lock<lockdep::Mutex> lock(rotation_mu_);
    if (!rotation_thread_.joinable()) return;
    rotation_stopping_ = true;
    rotation_cv_.notify_all();
    to_join = std::move(rotation_thread_);
  }
  to_join.join();
}

bool SloTracker::background_rotation_running() const {
  // cs:lock(obs.slo.rotation)
  std::unique_lock<lockdep::Mutex> lock(rotation_mu_);
  return rotation_thread_.joinable();
}

void SloTracker::RotationLoop(double interval_seconds) {
  const auto interval = std::chrono::microseconds(
      static_cast<int64_t>(interval_seconds * 1e6));
  for (;;) {
    {
      // lock-order: obs.slo.rotation is released before RotateAll()
      // touches the tracker map or any window mutex (leaf lock).
      // cs:lock(obs.slo.rotation)
      std::unique_lock<lockdep::Mutex> lock(rotation_mu_);
      rotation_cv_.wait_for(lock, interval);
      if (rotation_stopping_) return;
    }
    RotateAll();
  }
}

void SloTracker::set_default_num_windows(size_t n) {
  // cs:lock(obs.slo.window)
  std::lock_guard<std::mutex> lock(mu_);
  default_num_windows_ = std::max<size_t>(1, n);
}

size_t SloTracker::default_num_windows() const {
  // cs:lock(obs.slo.window)
  std::lock_guard<std::mutex> lock(mu_);
  return default_num_windows_;
}

std::vector<std::string> SloTracker::Endpoints() const {
  // cs:lock(obs.slo.window)
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(windows_.size());
  for (const auto& [name, w] : windows_) names.push_back(name);
  return names;
}

}  // namespace crowdselect::obs
