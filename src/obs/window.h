// Sliding-window latency tracking for SLO monitoring: a WindowedHistogram
// keeps the last N rotation windows of a fixed-bucket histogram and, on
// every rotation, refreshes p50/p95/p99 (and window-count) gauges in the
// metrics registry from the merged retained windows. Unlike the plain
// process-lifetime Histogram, quantiles reported here decay — a latency
// spike ages out after `num_windows` rotations instead of polluting the
// percentiles forever.
//
// Rotation is caller-driven (per M queries, per tick of a workload loop,
// or a wall-clock timer at the call site); the class itself never looks
// at a clock, so tests and replayed workloads are deterministic.
//
// SloTracker is the process-wide endpoint table: Record(endpoint, us)
// lazily creates one WindowedHistogram per endpoint (serve.select,
// serve.select.vsm, crowd.process_task, ...) and RotateAll() advances
// every window in lockstep.
#ifndef CROWDSELECT_OBS_WINDOW_H_
#define CROWDSELECT_OBS_WINDOW_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/lockdep.h"

namespace crowdselect::obs {

/// Fixed-bucket histogram over a ring of rotation windows. Record() fills
/// the current (open) window; Rotate() closes it into the ring, drops the
/// oldest window beyond `num_windows`, and refreshes the quantile gauges
/// from the merged *closed* windows. All methods are thread-safe; Record
/// takes a mutex, so this is for per-query cadence, not inner loops.
class WindowedHistogram {
 public:
  /// Gauges are registered as "<prefix><name>.p50" / ".p95" / ".p99" /
  /// ".mean" / ".window_count" / ".samples" in `registry`; the default
  /// prefix "slo." keeps the SLO endpoints' historical names, the
  /// quality monitor passes "" so its windows surface as quality.*.
  /// ".window_count" is the merged sample count across all retained
  /// windows, ".samples" only the most recently *closed* window — an
  /// idle endpoint shows samples == 0 one rotation after traffic stops,
  /// while window_count decays over the full ring. Both exist so an
  /// empty-window p99 of 0 is distinguishable from a fast healthy one.
  WindowedHistogram(std::string name, size_t num_windows,
                    std::vector<double> bounds,
                    MetricsRegistry* registry = &MetricsRegistry::Global(),
                    std::string gauge_prefix = "slo.");

  void Record(double value);

  /// Closes the current window into the ring and refreshes the gauges.
  /// Rotating with an empty current window is valid — it ages out old
  /// samples (and eventually zeroes the gauges) during idle periods.
  void Rotate();

  /// Merged sample over the retained closed windows (what the gauges were
  /// computed from at the last Rotate), plus the open window when
  /// `include_open` — for callers that want up-to-the-sample quantiles.
  HistogramSample Merged(bool include_open = false) const;

  const std::string& name() const { return name_; }
  size_t num_windows() const { return num_windows_; }
  uint64_t rotations() const;

 private:
  struct Window {
    std::vector<uint64_t> buckets;  ///< bounds.size() + 1.
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  Window EmptyWindow() const;
  HistogramSample MergeLocked(bool include_open) const;
  void RefreshGaugesLocked();

  const std::string name_;
  const size_t num_windows_;
  const std::vector<double> bounds_;
  Gauge* p50_;
  Gauge* p95_;
  Gauge* p99_;
  Gauge* mean_;
  Gauge* window_count_;
  Gauge* samples_;

  mutable std::mutex mu_;
  Window open_;
  std::deque<Window> closed_;  ///< Front = oldest.
  uint64_t rotations_ = 0;
};

/// Process-wide endpoint -> WindowedHistogram table. Endpoints register
/// lazily on first Record with the serve latency ladder and
/// `default_num_windows()` windows.
class SloTracker {
 public:
  static SloTracker& Global();

  SloTracker() = default;
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;
  ~SloTracker() { StopBackgroundRotation(); }

  /// Records a latency (microseconds) for `endpoint`, creating its window
  /// on first use.
  void Record(std::string_view endpoint, double latency_us);

  /// The window for `endpoint`, creating it on first use.
  WindowedHistogram* GetWindow(std::string_view endpoint);

  /// Advances every registered endpoint's window in lockstep.
  void RotateAll();

  /// Spawns a thread that calls RotateAll() every `interval_seconds`,
  /// so quantile gauges age out even when the serve path goes idle and
  /// nothing drives rotation. Idempotent while running; intervals <= 0
  /// are clamped to 1s. Pairs with StopBackgroundRotation() (also run
  /// by the destructor) for a clean joinable shutdown.
  void StartBackgroundRotation(double interval_seconds);

  /// Joins the rotation thread. Idempotent; safe when never started.
  void StopBackgroundRotation();

  bool background_rotation_running() const;

  /// Window count applied to endpoints created after the call (existing
  /// windows keep their ring). Default 6.
  void set_default_num_windows(size_t n);
  size_t default_num_windows() const;

  /// Registered endpoint names, sorted.
  std::vector<std::string> Endpoints() const;

 private:
  void RotationLoop(double interval_seconds);

  mutable std::mutex mu_;
  size_t default_num_windows_ = 6;
  std::map<std::string, std::unique_ptr<WindowedHistogram>, std::less<>>
      windows_;

  // Background rotation state. Separate from mu_ so the loop never
  // holds a lock across RotateAll() (which takes mu_ and the per-window
  // mutexes). Lock order: obs.slo.rotation is a leaf — never held while
  // acquiring mu_ or any window lock.
  mutable lockdep::Mutex rotation_mu_{"obs.slo.rotation"};
  std::condition_variable_any rotation_cv_;
  bool rotation_stopping_ = false;
  std::thread rotation_thread_;
};

}  // namespace crowdselect::obs

#endif  // CROWDSELECT_OBS_WINDOW_H_
