// Async-signal-safe crash diagnostics: InstallCrashHandler() hooks
// SIGSEGV / SIGABRT / SIGBUS / SIGFPE / SIGILL and std::terminate, and
// on the first fatal event writes a flight-recorder dump — header with
// build/config info, per-thread active span stacks, and the retained
// event tail — to `<dump_dir>/crash_<pid>.jsonl` before re-raising the
// signal with its default disposition (so exit codes and core dumps
// are unchanged).
//
// Signal-safety contract: everything the handler touches is
// precomputed at install time (dump path, build/config strings) or
// lock-free (the flight recorder rings); the handler itself uses only
// open/write/close and FlightRecorder::DumpToFd. A second fault while
// dumping is ignored via an atomic reentrancy guard.
#ifndef CROWDSELECT_OBS_CRASH_HANDLER_H_
#define CROWDSELECT_OBS_CRASH_HANDLER_H_

#include <string>

#include "util/status.h"

namespace crowdselect::obs {

struct CrashHandlerOptions {
  /// Directory for crash dumps; created if missing. Required.
  std::string dump_dir;
  /// Free-form build identification ("crowdselect 1.0.0 release").
  /// Quotes/backslashes are sanitized to '_' so the handler can splice
  /// the string into JSON without escaping.
  std::string build_info;
  /// Free-form config summary (typically the CLI invocation).
  std::string config;
};

/// Installs the signal + terminate handlers. Safe to call more than
/// once (the last options win). Returns InvalidArgument when dump_dir
/// is empty, IOError when the directory cannot be created, and
/// FailedPrecondition on platforms without POSIX signals.
Status InstallCrashHandler(const CrashHandlerOptions& options);

/// True once InstallCrashHandler succeeded in this process.
bool CrashHandlerInstalled();

/// The dump file the handler would write ("" when not installed).
std::string CrashDumpPath();

/// Writes the same dump the crash handler would write, on demand and
/// outside any signal context, to `path`. Used by `debug-dump` and
/// tests to validate the format.
Status WriteDiagnosticDump(const std::string& path, const char* reason);

}  // namespace crowdselect::obs

#endif  // CROWDSELECT_OBS_CRASH_HANDLER_H_
