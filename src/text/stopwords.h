// Small English stopword list for optional filtering of task text.
#ifndef CROWDSELECT_TEXT_STOPWORDS_H_
#define CROWDSELECT_TEXT_STOPWORDS_H_

#include <string_view>

namespace crowdselect {

/// True when `token` (already lower-cased) is a stopword.
bool IsStopword(std::string_view token);

/// Number of stopwords in the built-in list.
size_t StopwordCount();

}  // namespace crowdselect

#endif  // CROWDSELECT_TEXT_STOPWORDS_H_
