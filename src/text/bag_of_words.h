// Bag-of-words task representation (paper §4.1.1):
// t_j = {(v_1, #v_1), ..., (v_L, #v_L)}.
#ifndef CROWDSELECT_TEXT_BAG_OF_WORDS_H_
#define CROWDSELECT_TEXT_BAG_OF_WORDS_H_

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "util/serialization.h"

namespace crowdselect {

/// Sparse term-count vector, kept sorted by TermId for deterministic
/// iteration and fast merge operations.
class BagOfWords {
 public:
  BagOfWords() = default;

  /// Tokenizes `text`, interning new terms into `vocab`.
  static BagOfWords FromText(std::string_view text, const Tokenizer& tokenizer,
                             Vocabulary* vocab);

  /// Tokenizes `text` against a frozen vocabulary; unknown terms dropped.
  static BagOfWords FromTextFrozen(std::string_view text,
                                   const Tokenizer& tokenizer,
                                   const Vocabulary& vocab);

  /// Adds `count` occurrences of a term.
  void Add(TermId term, uint32_t count = 1);

  /// Occurrences of `term` (0 when absent).
  uint32_t Count(TermId term) const;

  /// Number of distinct terms.
  size_t DistinctTerms() const { return entries_.size(); }
  /// Total token count L (sum of all counts).
  uint64_t TotalTokens() const { return total_; }
  bool empty() const { return entries_.empty(); }

  struct Entry {
    TermId term;
    uint32_t count;
    bool operator==(const Entry&) const = default;
  };
  /// Entries sorted by term id.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Merges another bag into this one (used for the VSM worker profile
  /// t_w^i = union of resolved tasks).
  void Merge(const BagOfWords& other);

  /// Cosine similarity between raw count vectors; 0 when either is empty.
  double CosineSimilarity(const BagOfWords& other) const;

  void Serialize(BinaryWriter* writer) const;
  static Result<BagOfWords> Deserialize(BinaryReader* reader);

  bool operator==(const BagOfWords& o) const { return entries_ == o.entries_; }

 private:
  std::vector<Entry> entries_;  // Sorted by term.
  uint64_t total_ = 0;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_TEXT_BAG_OF_WORDS_H_
