#include "text/jaccard.h"

namespace crowdselect {

double JaccardSimilarity(const BagOfWords& a, const BagOfWords& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t i = 0, j = 0, both = 0;
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  while (i < ea.size() && j < eb.size()) {
    if (ea[i].term < eb[j].term) {
      ++i;
    } else if (eb[j].term < ea[i].term) {
      ++j;
    } else {
      ++both;
      ++i;
      ++j;
    }
  }
  const size_t uni = ea.size() + eb.size() - both;
  return uni == 0 ? 1.0 : static_cast<double>(both) / static_cast<double>(uni);
}

double JaccardDistance(const BagOfWords& a, const BagOfWords& b) {
  return 1.0 - JaccardSimilarity(a, b);
}

}  // namespace crowdselect
