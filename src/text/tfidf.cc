#include "text/tfidf.h"

#include <cmath>

namespace crowdselect {

TfIdfModel TfIdfModel::Fit(const std::vector<BagOfWords>& corpus) {
  TfIdfModel model;
  model.num_documents_ = corpus.size();
  for (const auto& bag : corpus) {
    for (const auto& e : bag.entries()) {
      ++model.document_frequency_[e.term];
    }
  }
  return model;
}

double TfIdfModel::Idf(TermId term) const {
  auto it = document_frequency_.find(term);
  const double df = it == document_frequency_.end() ? 0.0 : it->second;
  return std::log((1.0 + static_cast<double>(num_documents_)) / (1.0 + df)) +
         1.0;
}

std::unordered_map<TermId, double> TfIdfModel::Transform(
    const BagOfWords& bag) const {
  std::unordered_map<TermId, double> out;
  out.reserve(bag.DistinctTerms());
  for (const auto& e : bag.entries()) {
    out[e.term] = static_cast<double>(e.count) * Idf(e.term);
  }
  return out;
}

double TfIdfModel::CosineSimilarity(const BagOfWords& a,
                                    const BagOfWords& b) const {
  if (a.empty() || b.empty()) return 0.0;
  const auto wa = Transform(a);
  const auto wb = Transform(b);
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto& [term, w] : wa) {
    na += w * w;
    auto it = wb.find(term);
    if (it != wb.end()) dot += w * it->second;
  }
  for (const auto& [term, w] : wb) nb += w * w;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace crowdselect
