// Tokenization of task text into vocabulary terms (paper §4.1.1: a task is a
// bag of vocabularies, e.g. "What are the advantages of B+ Tree over B
// Tree?" -> {advantage, b, b+, over, tree x2, what}).
#ifndef CROWDSELECT_TEXT_TOKENIZER_H_
#define CROWDSELECT_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace crowdselect {

struct TokenizerOptions {
  /// Lower-case all tokens (ASCII).
  bool lowercase = true;
  /// Drop tokens shorter than this many characters.
  size_t min_token_length = 1;
  /// Apply a light suffix stemmer (plural/gerund stripping), so that
  /// "advantages" -> "advantage" as in the paper's running example.
  bool stem = true;
  /// Remove stopwords (see stopwords.h).
  bool remove_stopwords = false;
};

/// Splits text into tokens. Token characters are [a-z0-9+#]; '+' and '#'
/// are kept so programming terms like "b+", "c++" and "c#" survive (needed
/// for the Stack Overflow tag-style vocabulary).
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {}) : options_(options) {}

  std::vector<std::string> Tokenize(std::string_view text) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

/// Light English suffix stemmer: -ies/-es/-s, -ing, -ed. Deliberately
/// conservative (never empties a token below 3 characters).
std::string StemToken(std::string token);

}  // namespace crowdselect

#endif  // CROWDSELECT_TEXT_TOKENIZER_H_
