// Jaccard similarity/distance over term sets. The Yahoo! Answer feedback
// model (paper §4.1.5) scores non-best answers by Jaccard distance between
// their answer text and the best answer.
#ifndef CROWDSELECT_TEXT_JACCARD_H_
#define CROWDSELECT_TEXT_JACCARD_H_

#include "text/bag_of_words.h"

namespace crowdselect {

/// |A ∩ B| / |A ∪ B| over the *distinct term sets* of two bags.
/// Returns 1.0 when both are empty (identical empty sets).
double JaccardSimilarity(const BagOfWords& a, const BagOfWords& b);

/// 1 - JaccardSimilarity.
double JaccardDistance(const BagOfWords& a, const BagOfWords& b);

}  // namespace crowdselect

#endif  // CROWDSELECT_TEXT_JACCARD_H_
