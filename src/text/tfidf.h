// TF-IDF weighting over a corpus of bags; used by the VSM baseline variant
// and by dataset diagnostics.
#ifndef CROWDSELECT_TEXT_TFIDF_H_
#define CROWDSELECT_TEXT_TFIDF_H_

#include <unordered_map>
#include <vector>

#include "text/bag_of_words.h"

namespace crowdselect {

/// Corpus-level document-frequency statistics with smoothed idf:
/// idf(v) = log((1 + N) / (1 + df(v))) + 1.
class TfIdfModel {
 public:
  /// Builds document frequencies from a corpus.
  static TfIdfModel Fit(const std::vector<BagOfWords>& corpus);

  /// Sparse tf-idf weights for a bag (tf = raw count).
  std::unordered_map<TermId, double> Transform(const BagOfWords& bag) const;

  /// Cosine similarity in tf-idf space.
  double CosineSimilarity(const BagOfWords& a, const BagOfWords& b) const;

  double Idf(TermId term) const;
  size_t num_documents() const { return num_documents_; }

 private:
  std::unordered_map<TermId, uint32_t> document_frequency_;
  size_t num_documents_ = 0;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_TEXT_TFIDF_H_
