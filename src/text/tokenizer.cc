#include "text/tokenizer.h"

#include <cctype>

#include "text/stopwords.h"
#include "util/string_util.h"

namespace crowdselect {

namespace {

bool IsTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '+' || c == '#';
}

}  // namespace

std::string StemToken(std::string token) {
  auto ends_with = [&](std::string_view suffix) {
    return token.size() >= suffix.size() &&
           token.compare(token.size() - suffix.size(), suffix.size(),
                         suffix) == 0;
  };
  // Order matters: try the longest suffixes first.
  if (ends_with("ies") && token.size() > 5) {
    token.replace(token.size() - 3, 3, "y");
  } else if (ends_with("sses") && token.size() > 6) {
    token.erase(token.size() - 2);
  } else if (ends_with("ing") && token.size() > 6) {
    token.erase(token.size() - 3);
  } else if (ends_with("ed") && token.size() > 5) {
    token.erase(token.size() - 2);
  } else if (ends_with("s") && !ends_with("ss") && !ends_with("us") &&
             token.size() > 3) {
    token.erase(token.size() - 1);
  }
  return token;
}

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (current.empty()) return;
    std::string tok = options_.lowercase ? ToLowerAscii(current) : current;
    current.clear();
    if (options_.stem) tok = StemToken(std::move(tok));
    if (tok.size() < options_.min_token_length) return;
    if (options_.remove_stopwords && IsStopword(tok)) return;
    tokens.push_back(std::move(tok));
  };
  for (char c : text) {
    if (IsTokenChar(c)) {
      current.push_back(c);
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

}  // namespace crowdselect
