#include "text/stopwords.h"

#include <string>
#include <unordered_set>

namespace crowdselect {

namespace {

const std::unordered_set<std::string>& StopwordSet() {
  // cslint: allow(naked-new): leaked function-local singleton.
  static const auto* kSet = new std::unordered_set<std::string>{
      "a",    "an",   "and",  "are",  "as",   "at",    "be",   "but",
      "by",   "can",  "do",   "doe",  "for",  "from",  "ha",   "had",
      "have", "how",  "i",    "if",   "in",   "is",    "it",   "its",
      "me",   "my",   "no",   "not",  "of",   "on",    "or",   "over",
      "so",   "than", "that", "the",  "their", "them", "then", "there",
      "these", "they", "this", "to",   "wa",   "what",  "when", "where",
      "which", "who",  "why",  "will", "with", "would", "you",  "your"};
  return *kSet;
}

}  // namespace

bool IsStopword(std::string_view token) {
  return StopwordSet().count(std::string(token)) > 0;
}

size_t StopwordCount() { return StopwordSet().size(); }

}  // namespace crowdselect
