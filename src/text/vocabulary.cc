#include "text/vocabulary.h"

#include "util/logging.h"

namespace crowdselect {

TermId Vocabulary::Intern(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  CS_CHECK(id != kInvalidTermId) << "vocabulary overflow";
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  auto it = index_.find(std::string(term));
  return it == index_.end() ? kInvalidTermId : it->second;
}

const std::string& Vocabulary::TermOf(TermId id) const {
  CS_CHECK(id < terms_.size()) << "invalid term id " << id;
  return terms_[id];
}

void Vocabulary::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(terms_.size());
  for (const auto& t : terms_) writer->WriteString(t);
}

Result<Vocabulary> Vocabulary::Deserialize(BinaryReader* reader) {
  uint64_t n = 0;
  CS_RETURN_NOT_OK(reader->ReadU64(&n));
  // Every term costs at least its 8-byte length prefix; a larger count is
  // a corrupted header.
  if (n > reader->remaining() / sizeof(uint64_t)) {
    return Status::Corruption("vocabulary size exceeds payload");
  }
  Vocabulary vocab;
  for (uint64_t i = 0; i < n; ++i) {
    std::string term;
    CS_RETURN_NOT_OK(reader->ReadString(&term));
    const TermId id = vocab.Intern(term);
    if (id != i) return Status::Corruption("duplicate term in vocabulary");
  }
  return vocab;
}

}  // namespace crowdselect
