#include "text/bag_of_words.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace crowdselect {

BagOfWords BagOfWords::FromText(std::string_view text,
                                const Tokenizer& tokenizer, Vocabulary* vocab) {
  BagOfWords bag;
  for (const auto& tok : tokenizer.Tokenize(text)) {
    bag.Add(vocab->Intern(tok));
  }
  return bag;
}

BagOfWords BagOfWords::FromTextFrozen(std::string_view text,
                                      const Tokenizer& tokenizer,
                                      const Vocabulary& vocab) {
  BagOfWords bag;
  for (const auto& tok : tokenizer.Tokenize(text)) {
    const TermId id = vocab.Lookup(tok);
    if (id != kInvalidTermId) bag.Add(id);
  }
  return bag;
}

void BagOfWords::Add(TermId term, uint32_t count) {
  if (count == 0) return;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), term,
      [](const Entry& e, TermId t) { return e.term < t; });
  if (it != entries_.end() && it->term == term) {
    it->count += count;
  } else {
    entries_.insert(it, Entry{term, count});
  }
  total_ += count;
}

uint32_t BagOfWords::Count(TermId term) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), term,
      [](const Entry& e, TermId t) { return e.term < t; });
  return (it != entries_.end() && it->term == term) ? it->count : 0;
}

void BagOfWords::Merge(const BagOfWords& other) {
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  size_t i = 0, j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j == other.entries_.size() ||
        (i < entries_.size() && entries_[i].term < other.entries_[j].term)) {
      merged.push_back(entries_[i++]);
    } else if (i == entries_.size() ||
               other.entries_[j].term < entries_[i].term) {
      merged.push_back(other.entries_[j++]);
    } else {
      merged.push_back(Entry{entries_[i].term,
                             entries_[i].count + other.entries_[j].count});
      ++i;
      ++j;
    }
  }
  entries_ = std::move(merged);
  total_ += other.total_;
}

double BagOfWords::CosineSimilarity(const BagOfWords& other) const {
  if (entries_.empty() || other.entries_.empty()) return 0.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  size_t i = 0, j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    if (entries_[i].term < other.entries_[j].term) {
      ++i;
    } else if (other.entries_[j].term < entries_[i].term) {
      ++j;
    } else {
      dot += static_cast<double>(entries_[i].count) * other.entries_[j].count;
      ++i;
      ++j;
    }
  }
  for (const auto& e : entries_) na += static_cast<double>(e.count) * e.count;
  for (const auto& e : other.entries_) {
    nb += static_cast<double>(e.count) * e.count;
  }
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

void BagOfWords::Serialize(BinaryWriter* writer) const {
  writer->WriteU64(entries_.size());
  for (const auto& e : entries_) {
    writer->WriteU32(e.term);
    writer->WriteU32(e.count);
  }
}

Result<BagOfWords> BagOfWords::Deserialize(BinaryReader* reader) {
  uint64_t n = 0;
  CS_RETURN_NOT_OK(reader->ReadU64(&n));
  // Each entry is exactly two u32s; a larger count is a corrupted header.
  if (n > reader->remaining() / (2 * sizeof(uint32_t))) {
    return Status::Corruption("bag-of-words entry count exceeds payload");
  }
  BagOfWords bag;
  bag.entries_.reserve(n);
  TermId prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t term = 0, count = 0;
    CS_RETURN_NOT_OK(reader->ReadU32(&term));
    CS_RETURN_NOT_OK(reader->ReadU32(&count));
    if (i > 0 && term <= prev) {
      return Status::Corruption("bag-of-words terms not strictly increasing");
    }
    if (count == 0) return Status::Corruption("zero count in bag-of-words");
    bag.entries_.push_back(Entry{term, count});
    bag.total_ += count;
    prev = term;
  }
  return bag;
}

}  // namespace crowdselect
