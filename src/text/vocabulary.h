// String-interning vocabulary: maps terms to dense u32 ids, as required by
// the bag-of-words task representation (paper §4.1.1).
#ifndef CROWDSELECT_TEXT_VOCABULARY_H_
#define CROWDSELECT_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/serialization.h"
#include "util/status.h"

namespace crowdselect {

/// Dense term id. kInvalidTermId marks "not in vocabulary".
using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = UINT32_MAX;

/// Bidirectional term <-> id mapping. Ids are assigned densely in insertion
/// order, so they index directly into the language-model rows beta[k][v].
class Vocabulary {
 public:
  /// Returns the id for `term`, inserting it if absent.
  TermId Intern(std::string_view term);

  /// Returns the id for `term` or kInvalidTermId when absent.
  TermId Lookup(std::string_view term) const;

  /// Term for an id; id must be valid.
  const std::string& TermOf(TermId id) const;

  size_t size() const { return terms_.size(); }
  bool Contains(std::string_view term) const {
    return Lookup(term) != kInvalidTermId;
  }

  void Serialize(BinaryWriter* writer) const;
  static Result<Vocabulary> Deserialize(BinaryReader* reader);

 private:
  std::vector<std::string> terms_;
  std::unordered_map<std::string, TermId> index_;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_TEXT_VOCABULARY_H_
