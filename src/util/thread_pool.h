// Fixed-size thread pool used to parallelize per-worker / per-task E-step
// updates and the experiment sweeps.
#ifndef CROWDSELECT_UTIL_THREAD_POOL_H_
#define CROWDSELECT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace crowdselect {

/// Simple FIFO thread pool. Submit() enqueues a job; Wait() blocks until
/// every submitted job has finished. Destruction waits for completion.
class ThreadPool {
 public:
  /// `num_threads == 0` selects hardware_concurrency() (min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job for execution on some pool thread.
  void Submit(std::function<void()> job);

  /// Blocks until the queue is empty and no job is running.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Falls back to inline execution for n <= 1.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // Signals workers: job available/stop.
  std::condition_variable idle_cv_;   // Signals Wait(): all drained.
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_UTIL_THREAD_POOL_H_
