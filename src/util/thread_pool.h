// Fixed-size thread pool used to parallelize per-worker / per-task E-step
// updates and the experiment sweeps.
#ifndef CROWDSELECT_UTIL_THREAD_POOL_H_
#define CROWDSELECT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace crowdselect {

/// Simple FIFO thread pool. Submit() enqueues a job; Wait() blocks until
/// every submitted job has finished. Destruction waits for completion.
class ThreadPool {
 public:
  /// `num_threads == 0` selects hardware_concurrency() (min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job for execution on some pool thread.
  void Submit(std::function<void()> job);

  /// Blocks until the queue is empty and no job is running.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Falls back to inline execution for n <= 1. Each index costs one
  /// shared-counter fetch-add; fine for heavy bodies (E-step solves), use
  /// the grain-size overload for cheap ones.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Chunked ParallelFor: workers claim `grain` consecutive indices per
  /// shared-counter fetch-add instead of one, so cheap bodies (dot
  /// products in the selection scan) do not thrash the counter cache
  /// line. `grain == 0` is treated as 1.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t)>& fn);

  /// Range form of the chunked overload: fn(begin, end) is called once
  /// per claimed chunk with 0 <= begin < end <= n. Chunks partition
  /// [0, n) exactly; the per-chunk callback lets callers keep chunk-local
  /// state (e.g. a per-shard top-k accumulator merged at the end).
  void ParallelForChunks(size_t n, size_t grain,
                         const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // Signals workers: job available/stop.
  std::condition_variable idle_cv_;   // Signals Wait(): all drained.
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_UTIL_THREAD_POOL_H_
