#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace crowdselect {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || threads_.size() == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Block-cyclic sharding: one job per thread, striding over indices.
  const size_t shards = std::min(n, threads_.size());
  std::atomic<size_t> next{0};
  for (size_t s = 0; s < shards; ++s) {
    Submit([&next, n, &fn] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t)>& fn) {
  ParallelForChunks(n, grain, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForChunks(
    size_t n, size_t grain, const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks == 1 || threads_.size() == 1) {
    fn(0, n);
    return;
  }
  std::atomic<size_t> next{0};
  const size_t shards = std::min(num_chunks, threads_.size());
  for (size_t s = 0; s < shards; ++s) {
    Submit([&next, n, grain, num_chunks, &fn] {
      for (;;) {
        const size_t c = next.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks) return;
        const size_t begin = c * grain;
        fn(begin, std::min(n, begin + grain));
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      // lock-order: the pool mutex is the only lock this thread holds;
      // it is dropped before the job runs.
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained.
      job = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    job();
    {
      // lock-order: pool mutex only, taken fresh after the job finished.
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace crowdselect
