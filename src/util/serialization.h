// Little-endian binary serialization for model and database persistence.
// Format discipline: every persisted artifact starts with a 4-byte magic and
// a version u32; readers validate both and fail with Status::Corruption.
#ifndef CROWDSELECT_UTIL_SERIALIZATION_H_
#define CROWDSELECT_UTIL_SERIALIZATION_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace crowdselect {

/// Append-only binary encoder.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteString(const std::string& s) {
    WriteU64(s.size());
    buf_.append(s);
  }
  void WriteDoubleVec(const std::vector<double>& v) {
    WriteU64(v.size());
    if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(double));
  }
  void WriteU32Vec(const std::vector<uint32_t>& v) {
    WriteU64(v.size());
    if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(uint32_t));
  }
  /// Appends `n` raw bytes with no length prefix (callers that frame
  /// payloads themselves, e.g. the WAL).
  void WriteBytes(const void* p, size_t n) { WriteRaw(p, n); }

  const std::string& buffer() const { return buf_; }
  std::string Release() { return std::move(buf_); }

  /// Writes the buffer to `path` atomically (tmp file + rename).
  Status WriteToFile(const std::string& path) const;

 private:
  void WriteRaw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// Bounds-checked binary decoder over an in-memory buffer.
class BinaryReader {
 public:
  explicit BinaryReader(std::string data) : data_(std::move(data)) {}

  /// Reads an entire file into a reader.
  static Result<BinaryReader> FromFile(const std::string& path);

  Status ReadU8(uint8_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadI64(int64_t* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadDouble(double* v) { return ReadRaw(v, sizeof(*v)); }
  Status ReadString(std::string* s);
  Status ReadDoubleVec(std::vector<double>* v);
  Status ReadU32Vec(std::vector<uint32_t>* v);
  /// Reads exactly `n` raw bytes (no length prefix) into `out`.
  Status ReadBytes(std::string* out, size_t n) {
    if (n > remaining()) return Status::Corruption("unexpected end of buffer");
    out->assign(data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  /// True when every byte has been consumed.
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  /// Consumes the reader, handing back the full underlying buffer
  /// (including any bytes already read).
  std::string Release() && { return std::move(data_); }

 private:
  Status ReadRaw(void* p, size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::Corruption("unexpected end of buffer");
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  std::string data_;
  size_t pos_ = 0;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_UTIL_SERIALIZATION_H_
