// Deterministic, seedable random number generation (xoshiro256**) with the
// samplers the model and workload generators need. We do not use
// <random>'s distributions because their output differs across standard
// library implementations; experiments must be bit-reproducible.
#ifndef CROWDSELECT_UTIL_RNG_H_
#define CROWDSELECT_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace crowdselect {

/// xoshiro256** PRNG with derived samplers. Not thread-safe; use one
/// instance per thread (see Split()).
class Rng {
 public:
  /// Seeds the state via splitmix64 so that nearby seeds give
  /// uncorrelated streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Derives an independent generator; deterministic in (state, salt).
  Rng Split(uint64_t salt);

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);
  /// Bernoulli draw.
  bool Bernoulli(double p);

  /// Standard normal via the polar Box-Muller method (caches the spare).
  double Normal();
  /// Normal(mean, stddev).
  double Normal(double mean, double stddev);

  /// Gamma(shape, scale=1) via Marsaglia & Tsang; shape > 0.
  double Gamma(double shape);
  /// Dirichlet(alpha) sample; alpha.size() >= 1, all entries > 0.
  std::vector<double> Dirichlet(const std::vector<double>& alpha);
  /// Poisson(lambda) via inversion (small lambda) or PTRS-style rejection.
  int Poisson(double lambda);

  /// Samples an index from unnormalized non-negative weights.
  /// Requires a strictly positive total weight.
  size_t Discrete(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_UTIL_RNG_H_
