#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace crowdselect {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

// Installed sink; guarded by g_log_mutex. Never destroyed so logging from
// static destructors stays safe.
LogSink* SinkSlot() {
  static LogSink* slot = new LogSink();
  return slot;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  *SinkSlot() = std::move(sink);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    const std::string line = stream_.str();
    std::lock_guard<std::mutex> lock(g_log_mutex);
    const LogSink& sink = *SinkSlot();
    if (sink) {
      sink(level_, line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
      std::fflush(stderr);
    }
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace crowdselect
