#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace crowdselect {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

Rng Rng::Split(uint64_t salt) {
  return Rng(Next() ^ (salt * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL));
}

double Rng::Uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  CS_DCHECK(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * mul;
  has_spare_normal_ = true;
  return u * mul;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Gamma(double shape) {
  CS_DCHECK(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia & Tsang trick).
    const double u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::Dirichlet(const std::vector<double>& alpha) {
  CS_DCHECK(!alpha.empty());
  std::vector<double> out(alpha.size());
  double sum = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    out[i] = Gamma(alpha[i]);
    sum += out[i];
  }
  if (sum <= 0.0) {
    // Degenerate draw (all gammas underflowed); fall back to uniform.
    const double uniform = 1.0 / static_cast<double>(out.size());
    for (auto& x : out) x = uniform;
    return out;
  }
  for (auto& x : out) x /= sum;
  return out;
}

int Rng::Poisson(double lambda) {
  CS_DCHECK(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-lambda);
    double prod = Uniform();
    int n = 0;
    while (prod > limit) {
      prod *= Uniform();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction; adequate for the
  // workload generators (lambda >= 30).
  const double x = Normal(lambda, std::sqrt(lambda));
  return x < 0.0 ? 0 : static_cast<int>(x + 0.5);
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  CS_DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CS_DCHECK(w >= 0.0);
    total += w;
  }
  CS_CHECK(total > 0.0) << "Discrete() requires positive total weight";
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack.
}

}  // namespace crowdselect
