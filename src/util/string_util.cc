#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace crowdselect {

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::vector<std::string> SplitAny(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view TrimAscii(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

}  // namespace crowdselect
