#include "util/cpuid.h"

#include <cstdlib>
#include <cstring>

namespace crowdselect {

namespace {

CpuFeatures Detect() {
  CpuFeatures features;
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports reads CPUID once per process under the hood
  // and works identically on GCC and Clang.
  features.avx2 = __builtin_cpu_supports("avx2") != 0;
  features.fma = __builtin_cpu_supports("fma") != 0;
#elif defined(__aarch64__)
  // Advanced SIMD is architecturally mandatory on AArch64.
  features.neon = true;
#endif
  return features;
}

}  // namespace

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

bool ScalarKernelForced() {
  const char* value = std::getenv(kForceScalarEnvVar);
  if (value == nullptr) return false;
  return value[0] != '\0' && std::strcmp(value, "0") != 0;
}

}  // namespace crowdselect
