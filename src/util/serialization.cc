#include "util/serialization.h"

#include <cstdio>
#include <fstream>

namespace crowdselect {

Status BinaryWriter::WriteToFile(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp + " for writing");
    out.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    if (!out) return Status::IOError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("rename " + tmp + " -> " + path + " failed");
  }
  return Status::OK();
}

Result<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open " + path + " for reading");
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::string data(static_cast<size_t>(size), '\0');
  if (size > 0 && !in.read(data.data(), size)) {
    return Status::IOError("short read from " + path);
  }
  return BinaryReader(std::move(data));
}

Status BinaryReader::ReadString(std::string* s) {
  uint64_t n = 0;
  CS_RETURN_NOT_OK(ReadU64(&n));
  if (n > remaining()) return Status::Corruption("string length exceeds buffer");
  s->assign(data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status BinaryReader::ReadDoubleVec(std::vector<double>* v) {
  uint64_t n = 0;
  CS_RETURN_NOT_OK(ReadU64(&n));
  // Compare by division: `n * sizeof(double)` can wrap for a corrupt
  // count, sneaking past the guard into resize().
  if (n > remaining() / sizeof(double)) {
    return Status::Corruption("double vector length exceeds buffer");
  }
  v->resize(n);
  if (n > 0) {
    std::memcpy(v->data(), data_.data() + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
  }
  return Status::OK();
}

Status BinaryReader::ReadU32Vec(std::vector<uint32_t>* v) {
  uint64_t n = 0;
  CS_RETURN_NOT_OK(ReadU64(&n));
  if (n > remaining() / sizeof(uint32_t)) {
    return Status::Corruption("u32 vector length exceeds buffer");
  }
  v->resize(n);
  if (n > 0) {
    std::memcpy(v->data(), data_.data() + pos_, n * sizeof(uint32_t));
    pos_ += n * sizeof(uint32_t);
  }
  return Status::OK();
}

}  // namespace crowdselect
