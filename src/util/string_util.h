// Small string helpers shared across modules.
#ifndef CROWDSELECT_UTIL_STRING_UTIL_H_
#define CROWDSELECT_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace crowdselect {

/// ASCII lower-casing (the corpora are synthetic ASCII).
std::string ToLowerAscii(std::string_view s);

/// Splits on any of the characters in `delims`; drops empty pieces.
std::vector<std::string> SplitAny(std::string_view s, std::string_view delims);

/// Trims ASCII whitespace from both ends.
std::string_view TrimAscii(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

}  // namespace crowdselect

#endif  // CROWDSELECT_UTIL_STRING_UTIL_H_
