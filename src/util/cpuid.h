// Runtime CPU-feature detection for the SIMD score kernels
// (serve/kernels/): which vector extensions this machine actually has,
// independent of what the binary was compiled for. The serving engine
// dispatches its ScoreKernel off these bits at construction, so one
// binary runs the AVX2 kernel on machines that have it and falls back
// to the scalar reference everywhere else.
//
// `CROWDSELECT_FORCE_SCALAR` in the environment (any value other than
// "0" or empty) pins dispatch to the scalar kernel regardless of the
// hardware — the escape hatch CI uses to keep the fallback path green
// on AVX2 machines, and operators use to rule the SIMD path in or out
// when debugging a ranking discrepancy.
#ifndef CROWDSELECT_UTIL_CPUID_H_
#define CROWDSELECT_UTIL_CPUID_H_

namespace crowdselect {

/// Vector extensions available on the running CPU (not the compile
/// target). All fields false on architectures the build knows nothing
/// about.
struct CpuFeatures {
  bool avx2 = false;  ///< x86-64 AVX2 (256-bit integer + double lanes).
  bool fma = false;   ///< x86-64 FMA3 (informational; kernels avoid fusing).
  bool neon = false;  ///< AArch64 Advanced SIMD (baseline on aarch64).
};

/// Detects once and caches; cheap to call per engine construction.
const CpuFeatures& DetectCpuFeatures();

/// True when CROWDSELECT_FORCE_SCALAR is set to anything but "" or "0".
/// Re-reads the environment on every call so tests (and long-lived
/// processes toggling the variable before building an engine) see the
/// current value, not a cached one.
bool ScalarKernelForced();

/// Name of the environment variable, for help text and error messages.
inline constexpr char kForceScalarEnvVar[] = "CROWDSELECT_FORCE_SCALAR";

}  // namespace crowdselect

#endif  // CROWDSELECT_UTIL_CPUID_H_
