#include "util/lockdep.h"

#include <atomic>
#include <deque>

#include "util/string_util.h"

namespace crowdselect::lockdep {

namespace {

/// Class registry: names are interned once and live forever (lock nodes
/// outlive any individual mutex).
struct ClassRegistry {
  std::mutex mu;
  std::vector<std::string> names;
  std::unordered_map<std::string, LockClassId> by_name;

  static ClassRegistry& Get() {
    static ClassRegistry* registry = new ClassRegistry();  // Never destroyed.
    return *registry;
  }
};

/// One entry of a thread's held stack. `count` folds shared
/// re-acquisitions of the same node into a single entry.
struct HeldLock {
  uint64_t node = 0;
  bool shared = false;
  int count = 0;
};

std::vector<HeldLock>& HeldStack() {
  static thread_local std::vector<HeldLock> held;
  return held;
}

std::string NodeName(uint64_t node) {
  const auto cls = static_cast<LockClassId>(node >> 32);
  const auto rank = static_cast<uint32_t>(node & 0xFFFFFFFFu);
  std::string name = LockClassName(cls);
  if (rank != 0) name += StringPrintf("[%u]", rank);
  return name;
}

}  // namespace

LockClassId RegisterLockClass(const std::string& name) {
  ClassRegistry& registry = ClassRegistry::Get();
  std::lock_guard lock(registry.mu);
  auto it = registry.by_name.find(name);
  if (it != registry.by_name.end()) return it->second;
  const auto id = static_cast<LockClassId>(registry.names.size());
  registry.names.push_back(name);
  registry.by_name.emplace(name, id);
  return id;
}

std::string LockClassName(LockClassId id) {
  ClassRegistry& registry = ClassRegistry::Get();
  std::lock_guard lock(registry.mu);
  if (id >= registry.names.size()) return "<unknown>";
  return registry.names[id];
}

Tracker& Tracker::Global() {
  static Tracker* tracker = new Tracker();  // Never destroyed.
  return *tracker;
}

bool Tracker::PathExists(uint64_t from, uint64_t to) const {
  if (from == to) return true;
  std::unordered_set<uint64_t> visited{from};
  std::deque<uint64_t> frontier{from};
  while (!frontier.empty()) {
    const uint64_t node = frontier.front();
    frontier.pop_front();
    auto it = edges_.find(node);
    if (it == edges_.end()) continue;
    for (const uint64_t next : it->second) {
      if (next == to) return true;
      if (visited.insert(next).second) frontier.push_back(next);
    }
  }
  return false;
}

Status Tracker::OnAcquire(LockId id, bool shared) {
  const uint64_t node = id.packed();
  std::vector<HeldLock>& held = HeldStack();

  for (HeldLock& h : held) {
    if (h.node != node) continue;
    if (shared && h.shared) {
      // Reader re-entry on the same node: shared_mutex readers do not
      // exclude each other, so this cannot self-deadlock.
      ++h.count;
      return Status::OK();
    }
    return Status::FailedPrecondition(StringPrintf(
        "lockdep: %s of %s while already holding it %s (self-deadlock)",
        shared ? "shared re-acquisition" : "exclusive re-acquisition",
        NodeName(node).c_str(), h.shared ? "shared" : "exclusive"));
  }

  {
    std::lock_guard lock(mu_);
    // Would edge held -> node close a cycle? Check before inserting so a
    // rejected acquisition leaves the graph unchanged.
    for (const HeldLock& h : held) {
      if (PathExists(node, h.node)) {
        return Status::FailedPrecondition(StringPrintf(
            "lockdep: acquiring %s while holding %s inverts the recorded "
            "lock order (%s was previously held while %s was acquired)",
            NodeName(node).c_str(), NodeName(h.node).c_str(),
            NodeName(node).c_str(), NodeName(h.node).c_str()));
      }
    }
    for (const HeldLock& h : held) edges_[h.node].insert(node);
  }

  held.push_back(HeldLock{node, shared, 1});
  return Status::OK();
}

void Tracker::OnRelease(LockId id) {
  const uint64_t node = id.packed();
  std::vector<HeldLock>& held = HeldStack();
  // Innermost holding first: releases normally unwind in LIFO order.
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->node != node) continue;
    if (--it->count == 0) held.erase(std::next(it).base());
    return;
  }
  CS_CHECK(false) << "lockdep: release of " << NodeName(node)
                  << " which this thread does not hold";
}

Status Tracker::CheckNoLocksHeld(const char* where) const {
  const std::vector<HeldLock>& held = HeldStack();
  if (held.empty()) return Status::OK();
  return Status::FailedPrecondition(StringPrintf(
      "lockdep: %s entered while holding %s (and %zu other lock(s))", where,
      NodeName(held.back().node).c_str(), held.size() - 1));
}

size_t Tracker::HeldByCurrentThread() const { return HeldStack().size(); }

void Tracker::ResetGraphForTest() {
  std::lock_guard lock(mu_);
  edges_.clear();
}

#if CROWDSELECT_LOCKDEP_ENABLED
namespace internal {
uint32_t NextAnonymousRank() {
  static std::atomic<uint32_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace internal
#endif

}  // namespace crowdselect::lockdep
