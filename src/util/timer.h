// Wall-clock stopwatch used by the runtime benchmarks and examples.
#ifndef CROWDSELECT_UTIL_TIMER_H_
#define CROWDSELECT_UTIL_TIMER_H_

#include <chrono>
#include <functional>
#include <utility>

namespace crowdselect {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII stopwatch: measures from construction to destruction and reports
/// the elapsed seconds to its target exactly once. Targets: a `double*`
/// that is either assigned or accumulated into (timing one phase vs.
/// summing a loop's iterations), or an arbitrary sink callback — e.g. an
/// obs::Histogram via `[h](double s) { h->Record(s * 1e6); }`.
class ScopedTimer {
 public:
  enum class Mode { kAssign, kAccumulate };

  explicit ScopedTimer(double* out_seconds, Mode mode = Mode::kAssign)
      : out_(out_seconds), mode_(mode) {}
  explicit ScopedTimer(std::function<void(double elapsed_seconds)> sink)
      : sink_(std::move(sink)) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (cancelled_) return;
    const double elapsed = timer_.ElapsedSeconds();
    if (out_ != nullptr) {
      *out_ = mode_ == Mode::kAccumulate ? *out_ + elapsed : elapsed;
    }
    if (sink_) sink_(elapsed);
  }

  /// Elapsed so far, without stopping.
  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

  /// Suppresses reporting (e.g. on an error path).
  void Cancel() { cancelled_ = true; }

 private:
  Timer timer_;
  double* out_ = nullptr;
  Mode mode_ = Mode::kAssign;
  std::function<void(double)> sink_;
  bool cancelled_ = false;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_UTIL_TIMER_H_
