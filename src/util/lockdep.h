// Runtime lock-order checker (a miniature of the Linux kernel's lockdep).
//
// Every instrumented mutex belongs to a *lock class* (a name such as
// "crowddb.apply" or "crowddb.shard") plus an instance *rank* (the shard
// index), which together identify a node in a global acquisition graph.
// Each time a thread acquires a lock while holding others, the tracker
// records held -> acquired edges; an acquisition that would close a cycle
// in that graph is a potential deadlock and CS_CHECK-fails immediately,
// with both lock names in the message — even if the actual interleaving
// that deadlocks never happens in this run.
//
// Shared (reader) re-acquisition of a lock the thread already holds shared
// is allowed (shared_mutex readers do not exclude each other); exclusive
// re-acquisition and shared->exclusive upgrades fail.
//
// Cost model: the instrumented wrappers below compile to bare
// std::shared_mutex / std::mutex forwarding (zero overhead) unless
// CROWDSELECT_LOCKDEP_ENABLED is 1 — which it is in debug (!NDEBUG) and
// ThreadSanitizer builds, or when CROWDSELECT_LOCKDEP is defined
// explicitly. The Tracker core itself is always compiled so its unit
// tests run in every build flavor.
#ifndef CROWDSELECT_UTIL_LOCKDEP_H_
#define CROWDSELECT_UTIL_LOCKDEP_H_

#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

#if !defined(CROWDSELECT_LOCKDEP_ENABLED)
#if defined(CROWDSELECT_LOCKDEP) || defined(__SANITIZE_THREAD__) || \
    !defined(NDEBUG)
#define CROWDSELECT_LOCKDEP_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CROWDSELECT_LOCKDEP_ENABLED 1
#else
#define CROWDSELECT_LOCKDEP_ENABLED 0
#endif
#else
#define CROWDSELECT_LOCKDEP_ENABLED 0
#endif
#endif

namespace crowdselect::lockdep {

using LockClassId = uint32_t;

/// Interns `name` (idempotent: the same name always maps to the same id).
LockClassId RegisterLockClass(const std::string& name);

/// Name registered for `id` ("<unknown>" for an id never registered).
std::string LockClassName(LockClassId id);

/// A node in the acquisition graph: lock class + instance rank. Instances
/// of the same class that may be held together (the shards) must carry
/// distinct ranks; unrelated classes just use rank 0.
struct LockId {
  LockClassId cls = 0;
  uint32_t rank = 0;

  uint64_t packed() const { return (uint64_t{cls} << 32) | rank; }
};

/// The global acquisition-graph tracker. Thread-safe; the per-thread held
/// stack lives in thread-local storage, only the edge set is shared.
class Tracker {
 public:
  static Tracker& Global();

  /// Records that the calling thread is about to acquire `id`. Returns
  /// FailedPrecondition — naming both ends of the inversion — when the
  /// acquisition would close a cycle in the graph, or when the thread
  /// already holds `id` in an incompatible mode. On success the lock is
  /// pushed onto the thread's held stack. Call *before* blocking on the
  /// real mutex so the report fires instead of the deadlock.
  Status OnAcquire(LockId id, bool shared);

  /// Pops `id` from the calling thread's held stack (innermost holding).
  void OnRelease(LockId id);

  /// FailedPrecondition naming the held lock if the calling thread holds
  /// any tracked lock; OK otherwise. For paths (snapshot building) that
  /// must never run under engine locks.
  Status CheckNoLocksHeld(const char* where) const;

  /// Distinct tracked locks currently held by the calling thread.
  size_t HeldByCurrentThread() const;

  /// Drops every recorded edge (not the class registry). Tests only.
  void ResetGraphForTest();

 private:
  Tracker() = default;

  bool PathExists(uint64_t from, uint64_t to) const;  // Caller holds mu_.

  mutable std::mutex mu_;
  /// Adjacency: edge a->b means "a was held while b was acquired".
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> edges_;
};

/// CS_CHECK-fails when the calling thread holds any tracked lock.
/// Compiled out in Release.
#if CROWDSELECT_LOCKDEP_ENABLED
inline void AssertNoLocksHeld(const char* where) {
  const Status st = Tracker::Global().CheckNoLocksHeld(where);
  CS_CHECK(st.ok()) << st.message();
}
#else
inline void AssertNoLocksHeld(const char* /*where*/) {}
#endif

#if CROWDSELECT_LOCKDEP_ENABLED

namespace internal {
/// Rank source for instruments constructed without an explicit class:
/// every anonymous instance gets its own node so unrelated anonymous
/// locks never alias in the graph.
uint32_t NextAnonymousRank();
}  // namespace internal

/// std::shared_mutex with acquisition-order tracking. Drop-in for the
/// standard type under std::unique_lock / std::shared_lock / std::
/// lock_guard (Lockable + SharedLockable).
class SharedMutex {
 public:
  SharedMutex()
      : id_{RegisterLockClass("lockdep.anonymous"),
            internal::NextAnonymousRank()} {}
  explicit SharedMutex(const char* class_name, uint32_t rank = 0)
      : id_{RegisterLockClass(class_name), rank} {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() {
    Record(/*shared=*/false);
    mu_.lock();
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    Record(/*shared=*/false);
    return true;
  }
  void unlock() {
    mu_.unlock();
    Tracker::Global().OnRelease(id_);
  }
  void lock_shared() {
    Record(/*shared=*/true);
    mu_.lock_shared();
  }
  bool try_lock_shared() {
    if (!mu_.try_lock_shared()) return false;
    Record(/*shared=*/true);
    return true;
  }
  void unlock_shared() {
    mu_.unlock_shared();
    Tracker::Global().OnRelease(id_);
  }

  LockId lockdep_id() const { return id_; }

 private:
  void Record(bool shared) {
    const Status st = Tracker::Global().OnAcquire(id_, shared);
    CS_CHECK(st.ok()) << st.message();
  }

  std::shared_mutex mu_;
  LockId id_;
};

/// std::mutex with acquisition-order tracking.
class Mutex {
 public:
  Mutex()
      : id_{RegisterLockClass("lockdep.anonymous"),
            internal::NextAnonymousRank()} {}
  explicit Mutex(const char* class_name, uint32_t rank = 0)
      : id_{RegisterLockClass(class_name), rank} {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() {
    const Status st = Tracker::Global().OnAcquire(id_, /*shared=*/false);
    CS_CHECK(st.ok()) << st.message();
    mu_.lock();
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    const Status st = Tracker::Global().OnAcquire(id_, /*shared=*/false);
    CS_CHECK(st.ok()) << st.message();
    return true;
  }
  void unlock() {
    mu_.unlock();
    Tracker::Global().OnRelease(id_);
  }

  LockId lockdep_id() const { return id_; }

 private:
  std::mutex mu_;
  LockId id_;
};

#else  // !CROWDSELECT_LOCKDEP_ENABLED

/// Release builds: bare forwarding, the name/rank constructor arguments
/// evaporate and the wrappers cost exactly a std::shared_mutex.
class SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* /*class_name*/, uint32_t /*rank*/ = 0) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }
  void lock_shared() { mu_.lock_shared(); }
  bool try_lock_shared() { return mu_.try_lock_shared(); }
  void unlock_shared() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

class Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* /*class_name*/, uint32_t /*rank*/ = 0) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

#endif  // CROWDSELECT_LOCKDEP_ENABLED

}  // namespace crowdselect::lockdep

#endif  // CROWDSELECT_UTIL_LOCKDEP_H_
