// Status / Result error model in the RocksDB/Arrow style: no exceptions
// across API boundaries; fallible operations return Status or Result<T>.
#ifndef CROWDSELECT_UTIL_STATUS_H_
#define CROWDSELECT_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace crowdselect {

/// Error category for a failed operation.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kCorruption = 7,
  kNotConverged = 8,
  kInternal = 9,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// Cheap to copy in the OK case (no allocation). Construct failures through
/// the named factories, e.g. `Status::InvalidArgument("k must be > 0")`.
///
/// [[nodiscard]]: a dropped Status is a swallowed error. Call sites that
/// genuinely cannot act on a failure must say so with `(void)` plus a
/// comment (enforced by tools/cslint).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// Message attached at construction; empty for OK.
  const std::string& message() const { return message_; }
  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotConverged() const { return code_ == StatusCode::kNotConverged; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a failure Status. Never holds both.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `return 42;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a failure status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

/// Propagates a failure status out of the enclosing function.
#define CS_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::crowdselect::Status _st = (expr);        \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a Result<T> expression, propagating failure; otherwise binds
/// the unwrapped value to `lhs`.
#define CS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

#define CS_ASSIGN_OR_RETURN(lhs, expr) \
  CS_ASSIGN_OR_RETURN_IMPL(CS_CONCAT_(_cs_result_, __LINE__), lhs, expr)

#define CS_CONCAT_INNER_(a, b) a##b
#define CS_CONCAT_(a, b) CS_CONCAT_INNER_(a, b)

}  // namespace crowdselect

#endif  // CROWDSELECT_UTIL_STATUS_H_
