#include "util/crc32.h"

#include <array>

namespace crowdselect {

namespace {

// Reflected CRC-32C table (polynomial 0x1EDC6F41, reflected 0x82F63B78),
// generated at startup so the source stays reviewable.
std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t initial) {
  static const std::array<uint32_t, 256> table = MakeTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~initial;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace crowdselect
