// CRC-32C (Castagnoli polynomial, the one used by RocksDB / LevelDB log
// formats) for write-ahead-log record framing. Software table
// implementation — fast enough for the WAL's per-record payloads, with no
// dependency on SSE4.2 intrinsics.
#ifndef CROWDSELECT_UTIL_CRC32_H_
#define CROWDSELECT_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace crowdselect {

/// CRC-32C of `data`, optionally continuing from a previous value
/// (`Crc32c(b, Crc32c(a))` == `Crc32c(ab)`).
uint32_t Crc32c(const void* data, size_t n, uint32_t initial = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t initial = 0) {
  return Crc32c(data.data(), data.size(), initial);
}

/// CRCs stored next to the data they cover invite "CRC of a CRC" bugs when
/// records are re-framed; masking (per the LevelDB log format) makes a
/// stored CRC distinguishable from a computed one.
inline uint32_t MaskCrc32(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline uint32_t UnmaskCrc32(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace crowdselect

#endif  // CROWDSELECT_UTIL_CRC32_H_
