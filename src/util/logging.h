// Minimal leveled logger plus CHECK macros, in the Arrow/RocksDB spirit.
#ifndef CROWDSELECT_UTIL_LOGGING_H_
#define CROWDSELECT_UTIL_LOGGING_H_

#include <cassert>
#include <cstdlib>
#include <sstream>
#include <string>

namespace crowdselect {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global log threshold; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits on destruction. Fatal lines abort.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

#define CS_LOG(level)                                                     \
  ::crowdselect::internal::LogMessage(::crowdselect::LogLevel::k##level, \
                                      __FILE__, __LINE__)

/// Invariant check, active in all build types (unlike assert).
#define CS_CHECK(cond)                                            \
  if (!(cond))                                                    \
  CS_LOG(Fatal) << "Check failed: " #cond " "

#define CS_CHECK_OK(expr)                                         \
  do {                                                            \
    ::crowdselect::Status _s = (expr);                            \
    if (!_s.ok()) CS_LOG(Fatal) << "Status not OK: " << _s.ToString(); \
  } while (0)

#define CS_DCHECK(cond) assert(cond)

}  // namespace crowdselect

#endif  // CROWDSELECT_UTIL_LOGGING_H_
