// Minimal leveled logger plus CHECK macros, in the Arrow/RocksDB spirit.
#ifndef CROWDSELECT_UTIL_LOGGING_H_
#define CROWDSELECT_UTIL_LOGGING_H_

#include <cassert>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace crowdselect {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global log threshold; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Receives every emitted log line (already formatted, without a trailing
/// newline). Fatal messages still abort after the sink returns.
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Replaces the destination of log output. Pass nullptr (or an empty
/// function) to restore the stderr default. Not thread-safe against
/// concurrent logging — install sinks at startup or around quiescent
/// points (tests).
void SetLogSink(LogSink sink);

namespace internal {

/// Stream-style log line; emits on destruction. Fatal lines abort.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows a LogMessage stream so CHECK macros can be single
/// expressions (the glog trick): `&` binds looser than `<<`, so the
/// whole stream chain evaluates first, then collapses to void to match
/// the ternary's other branch.
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal

#define CS_LOG(level)                                                     \
  ::crowdselect::internal::LogMessage(::crowdselect::LogLevel::k##level, \
                                      __FILE__, __LINE__)

/// Invariant check, active in all build types (unlike assert). Expands to
/// a single expression, so `CS_CHECK(x); else ...` is a compile error and
/// the macro cannot hijack an `else` belonging to an enclosing `if`. The
/// condition is evaluated exactly once.
#define CS_CHECK(cond)                                            \
  (cond) ? (void)0                                                \
         : ::crowdselect::internal::LogMessageVoidify() &         \
               CS_LOG(Fatal) << "Check failed: " #cond " "

#define CS_CHECK_OK(expr)                                         \
  do {                                                            \
    ::crowdselect::Status _s = (expr);                            \
    if (!_s.ok()) {                                               \
      CS_LOG(Fatal) << "Status not OK: " << _s.ToString();        \
    }                                                             \
  } while (0)

/// Debug-only invariant check with the same streaming/single-expression
/// form as CS_CHECK. Enabled (condition evaluated exactly once) in !NDEBUG
/// builds; in Release the condition is short-circuited away — never
/// evaluated at run time, but still compiled, so variables used only in a
/// CS_DCHECK do not become -Wunused warnings and type errors surface in
/// every build flavor. Do not rely on side effects of the condition.
#if !defined(NDEBUG) || defined(CROWDSELECT_DCHECK_ALWAYS_ON)
#define CS_DCHECK_IS_ON() 1
#define CS_DCHECK(cond) CS_CHECK(cond)
#else
#define CS_DCHECK_IS_ON() 0
#define CS_DCHECK(cond) CS_CHECK(true || (cond))
#endif

}  // namespace crowdselect

#endif  // CROWDSELECT_UTIL_LOGGING_H_
