// Choosing the number of latent categories K. The paper sweeps K = 10..50
// and observes precision "increases and then becomes convergent"; this
// helper automates the choice on a validation split.
#ifndef CROWDSELECT_EVAL_MODEL_SELECTION_H_
#define CROWDSELECT_EVAL_MODEL_SELECTION_H_

#include <vector>

#include "eval/experiment.h"
#include "eval/split.h"

namespace crowdselect {

struct CategorySelectionOptions {
  std::vector<size_t> candidates = {5, 10, 20, 30, 40, 50};
  /// Stop the sweep early once increasing K improves validation ACCU by
  /// less than this (the paper's convergence observation).
  double min_improvement = 0.005;
  uint64_t seed = 97;
};

struct CategorySelectionResult {
  size_t best_k = 0;
  double best_accu = 0.0;
  /// (K, validation ACCU) per evaluated candidate, in sweep order.
  std::vector<std::pair<size_t, double>> sweep;
};

/// Trains TDPM per candidate K on the split's training database and picks
/// the K with the best validation ACCU, stopping early at convergence.
Result<CategorySelectionResult> SelectNumCategories(
    const EvalSplit& split, const CategorySelectionOptions& options = {});

}  // namespace crowdselect

#endif  // CROWDSELECT_EVAL_MODEL_SELECTION_H_
