// Bootstrap confidence intervals for the evaluation metrics, so bench
// tables can report whether TDPM's margin over a baseline is larger than
// the test-question sampling noise.
#ifndef CROWDSELECT_EVAL_BOOTSTRAP_H_
#define CROWDSELECT_EVAL_BOOTSTRAP_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace crowdselect {

/// One evaluated test question: the right worker's 0-based rank among
/// `num_candidates` ranked candidates.
struct RankSample {
  size_t rank0 = 0;
  size_t num_candidates = 0;
};

struct BootstrapInterval {
  double mean = 0.0;
  double lo = 0.0;  ///< Lower percentile bound.
  double hi = 0.0;  ///< Upper percentile bound.
};

struct BootstrapOptions {
  int resamples = 2000;
  /// Two-sided confidence level, e.g. 0.95.
  double confidence = 0.95;
  uint64_t seed = 0xB007;
};

/// Percentile-bootstrap interval for the mean ACCU of a sample set.
Result<BootstrapInterval> BootstrapAccu(const std::vector<RankSample>& samples,
                                        const BootstrapOptions& options = {});

/// Percentile-bootstrap interval for TopK recall.
Result<BootstrapInterval> BootstrapTopK(const std::vector<RankSample>& samples,
                                        size_t k,
                                        const BootstrapOptions& options = {});

/// Paired-bootstrap estimate of P(metric_a > metric_b) for two algorithms
/// evaluated on the SAME test questions (samples aligned by index).
/// Returns the fraction of resamples where algorithm A's mean ACCU
/// exceeds B's — a one-sided superiority probability.
Result<double> PairedBootstrapAccuSuperiority(
    const std::vector<RankSample>& a, const std::vector<RankSample>& b,
    const BootstrapOptions& options = {});

}  // namespace crowdselect

#endif  // CROWDSELECT_EVAL_BOOTSTRAP_H_
