#include "eval/model_selection.h"

#include <algorithm>

#include "model/selection.h"

namespace crowdselect {

Result<CategorySelectionResult> SelectNumCategories(
    const EvalSplit& split, const CategorySelectionOptions& options) {
  if (options.candidates.empty()) {
    return Status::InvalidArgument("no candidate K values");
  }
  if (split.cases.empty()) {
    return Status::InvalidArgument("empty validation split");
  }

  CategorySelectionResult result;
  double prev_accu = -1.0;
  for (size_t k : options.candidates) {
    TdpmOptions model_options;
    model_options.num_categories = k;
    model_options.seed = options.seed;
    model_options.max_em_iterations = 30;
    model_options.num_threads = 0;
    TdpmSelector selector(model_options);
    CS_RETURN_NOT_OK(selector.Train(split.train_db));

    MetricAccumulator metrics;
    for (const EvalCase& c : split.cases) {
      CS_ASSIGN_OR_RETURN(const TaskRecord* task,
                          split.train_db.GetTask(c.task));
      CS_ASSIGN_OR_RETURN(
          std::vector<RankedWorker> ranking,
          selector.SelectTopK(task->bag, c.candidates.size(), c.candidates));
      const auto it = std::find_if(
          ranking.begin(), ranking.end(), [&](const RankedWorker& r) {
            return r.worker == c.right_worker;
          });
      metrics.Add(static_cast<size_t>(it - ranking.begin()), ranking.size());
    }
    const double accu = metrics.MeanAccu();
    result.sweep.emplace_back(k, accu);
    if (accu > result.best_accu) {
      result.best_accu = accu;
      result.best_k = k;
    }
    // The paper's convergence-in-K observation: stop once the curve
    // flattens.
    if (prev_accu >= 0.0 && accu - prev_accu < options.min_improvement &&
        result.sweep.size() >= 2) {
      break;
    }
    prev_accu = accu;
  }
  return result;
}

}  // namespace crowdselect
