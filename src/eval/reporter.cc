#include "eval/reporter.h"

#include <algorithm>
#include <ostream>

#include "util/string_util.h"

namespace crowdselect {

void TableReporter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TableReporter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TableReporter::Cell(double value, int precision) {
  return StringPrintf("%.*f", precision, value);
}

void TableReporter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c >= widths.size()) widths.resize(c + 1, 0);
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  auto print_rule = [&] {
    os << "+";
    for (size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };

  os << "\n== " << title_ << " ==\n";
  print_rule();
  if (!header_.empty()) {
    print_row(header_);
    print_rule();
  }
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

}  // namespace crowdselect
