// Train/test splitting for the crowd-selection evaluation (paper §7.3:
// "we randomly choose 10k questions for each group where the right worker
// for each testing question must be in the group").
#ifndef CROWDSELECT_EVAL_SPLIT_H_
#define CROWDSELECT_EVAL_SPLIT_H_

#include <vector>

#include "datagen/groups.h"
#include "datagen/platform.h"

namespace crowdselect {

/// One test question: the candidates are the workers who answered it (and
/// are in the evaluated group); the right worker is the best answerer.
struct EvalCase {
  TaskId task = kInvalidTaskId;
  WorkerId right_worker = kInvalidWorkerId;
  std::vector<WorkerId> candidates;
};

struct EvalSplit {
  /// Copy of the dataset's database with the test tasks' assignments
  /// removed (their text remains, their feedback is hidden).
  CrowdDatabase train_db;
  std::vector<EvalCase> cases;
};

struct SplitOptions {
  size_t num_test_tasks = 200;
  /// A task is eligible only with at least this many in-group answerers
  /// (ACCU needs |R| >= 2 to discriminate).
  size_t min_candidates = 3;
  uint64_t seed = 1234;
};

/// Samples eligible test tasks and builds the training database.
Result<EvalSplit> MakeSplit(const SyntheticDataset& dataset,
                            const WorkerGroup& group,
                            const SplitOptions& options);

}  // namespace crowdselect

#endif  // CROWDSELECT_EVAL_SPLIT_H_
