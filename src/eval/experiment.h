// Experiment runner: trains a set of crowd-selection algorithms on a
// split and measures precision (ACCU), recall (TopK) and selection time —
// the quantities behind every table and runtime figure in paper §7.3.
#ifndef CROWDSELECT_EVAL_EXPERIMENT_H_
#define CROWDSELECT_EVAL_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "crowddb/selector_interface.h"
#include "eval/metrics.h"
#include "eval/split.h"
#include "model/crowd_model.h"

namespace crowdselect {

/// Builds a fresh (untrained) selector; experiments own their selectors so
/// repeated runs with different K are independent.
using SelectorFactory = std::function<std::unique_ptr<CrowdSelector>()>;

/// Standard factory set (VSM, TSPM, DRM, TDPM in the paper's table order)
/// with `k` latent categories and a deterministic seed.
std::vector<SelectorFactory> StandardSelectorFactories(size_t k,
                                                       uint64_t seed);

/// Factories from the crowd-model registry, one per id ("tdpm",
/// "dawid_skene", "router", "ensemble", or anything registered), all
/// sharing `config`. Unknown ids fail here, not mid-experiment.
Result<std::vector<SelectorFactory>> ModelSelectorFactories(
    const std::vector<std::string>& ids, const ModelConfig& config);

struct AlgorithmResult {
  std::string name;
  double mean_accu = 0.0;
  double top1 = 0.0;
  double top2 = 0.0;
  double train_seconds = 0.0;
  /// Mean per-question selection latency (project + rank), milliseconds.
  double select_millis = 0.0;
  size_t num_cases = 0;
};

/// Trains each selector on the split's training database and evaluates it
/// over the split's test cases.
Result<std::vector<AlgorithmResult>> RunExperiment(
    const EvalSplit& split, const std::vector<SelectorFactory>& factories);

}  // namespace crowdselect

#endif  // CROWDSELECT_EVAL_EXPERIMENT_H_
