// Repeated random sub-sampling validation: run the experiment over R
// independent train/test splits and report mean and standard deviation of
// each metric, so single-split noise cannot fabricate (or hide) an
// algorithm ordering.
#ifndef CROWDSELECT_EVAL_REPEATED_SPLITS_H_
#define CROWDSELECT_EVAL_REPEATED_SPLITS_H_

#include <string>
#include <vector>

#include "eval/experiment.h"

namespace crowdselect {

struct RepeatedSplitOptions {
  int repetitions = 5;
  SplitOptions split;  ///< Per-repetition split; seed is varied per run.
};

/// Aggregated metric: mean and (population) standard deviation over runs.
struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
};

struct RepeatedAlgorithmResult {
  std::string name;
  MetricSummary accu;
  MetricSummary top1;
  MetricSummary top2;
  int repetitions = 0;
};

/// Runs RunExperiment over `repetitions` fresh splits of `dataset` x
/// `group` and aggregates per-algorithm metrics.
Result<std::vector<RepeatedAlgorithmResult>> RunRepeatedSplits(
    const SyntheticDataset& dataset, const WorkerGroup& group,
    const std::vector<SelectorFactory>& factories,
    const RepeatedSplitOptions& options = {});

}  // namespace crowdselect

#endif  // CROWDSELECT_EVAL_REPEATED_SPLITS_H_
