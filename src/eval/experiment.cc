#include "eval/experiment.h"

#include <algorithm>

#include "baselines/drm.h"
#include "baselines/tspm.h"
#include "baselines/vsm.h"
#include "model/selection.h"
#include "util/logging.h"
#include "util/timer.h"

namespace crowdselect {

std::vector<SelectorFactory> StandardSelectorFactories(size_t k,
                                                       uint64_t seed) {
  std::vector<SelectorFactory> factories;
  factories.push_back([] { return std::make_unique<VsmSelector>(); });
  factories.push_back([k, seed] {
    TspmOptions options;
    options.lda.num_topics = k;
    options.lda.seed = seed;
    return std::make_unique<TspmSelector>(options);
  });
  factories.push_back([k, seed] {
    DrmOptions options;
    options.plsa.num_topics = k;
    options.plsa.seed = seed;
    return std::make_unique<DrmSelector>(options);
  });
  factories.push_back([k, seed] {
    TdpmOptions options;
    options.num_categories = k;
    options.seed = seed;
    options.max_em_iterations = 30;
    options.num_threads = 0;  // Use all cores for the E-step.
    return std::make_unique<TdpmSelector>(options);
  });
  return factories;
}

Result<std::vector<SelectorFactory>> ModelSelectorFactories(
    const std::vector<std::string>& ids, const ModelConfig& config) {
  // Validate every id up front so a typo fails before any training runs.
  for (const std::string& id : ids) {
    if (!CrowdModelRegistry::Global().Has(id)) {
      CS_RETURN_NOT_OK(
          CrowdModelRegistry::Global().Create(id, config).status());
    }
  }
  std::vector<SelectorFactory> factories;
  factories.reserve(ids.size());
  for (const std::string& id : ids) {
    factories.push_back([id, config]() -> std::unique_ptr<CrowdSelector> {
      auto model = CrowdModelRegistry::Global().Create(id, config);
      CS_CHECK_OK(model.status());  // Ids were validated above.
      return std::move(*model);
    });
  }
  return factories;
}

Result<std::vector<AlgorithmResult>> RunExperiment(
    const EvalSplit& split, const std::vector<SelectorFactory>& factories) {
  std::vector<AlgorithmResult> results;
  results.reserve(factories.size());
  for (const auto& factory : factories) {
    std::unique_ptr<CrowdSelector> selector = factory();
    AlgorithmResult result;
    result.name = selector->Name();

    {
      ScopedTimer train_timer(&result.train_seconds);
      CS_RETURN_NOT_OK(selector->Train(split.train_db));
    }

    MetricAccumulator metrics;
    double select_seconds = 0.0;
    for (const EvalCase& test_case : split.cases) {
      CS_ASSIGN_OR_RETURN(const TaskRecord* task,
                          split.train_db.GetTask(test_case.task));
      std::vector<RankedWorker> ranking;
      {
        ScopedTimer select_timer(&select_seconds,
                                 ScopedTimer::Mode::kAccumulate);
        CS_ASSIGN_OR_RETURN(
            ranking,
            selector->SelectTopK(task->bag, test_case.candidates.size(),
                                 test_case.candidates));
      }
      const auto it = std::find_if(
          ranking.begin(), ranking.end(), [&](const RankedWorker& r) {
            return r.worker == test_case.right_worker;
          });
      // The right worker is always a candidate, so it must be ranked.
      const size_t rank0 = static_cast<size_t>(it - ranking.begin());
      metrics.Add(rank0, ranking.size());
    }
    result.num_cases = metrics.count();
    result.mean_accu = metrics.MeanAccu();
    result.top1 = metrics.TopK(1);
    result.top2 = metrics.TopK(2);
    result.select_millis =
        split.cases.empty()
            ? 0.0
            : select_seconds * 1e3 / static_cast<double>(split.cases.size());
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace crowdselect
