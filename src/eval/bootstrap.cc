#include "eval/bootstrap.h"

#include <algorithm>
#include <cmath>

#include "eval/metrics.h"
#include "util/rng.h"

namespace crowdselect {

namespace {

Status ValidateInputs(const std::vector<RankSample>& samples,
                      const BootstrapOptions& options) {
  if (samples.empty()) return Status::InvalidArgument("no samples");
  if (options.resamples <= 0) {
    return Status::InvalidArgument("resamples must be positive");
  }
  if (options.confidence <= 0.0 || options.confidence >= 1.0) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  for (const auto& s : samples) {
    if (s.num_candidates > 0 && s.rank0 >= s.num_candidates) {
      return Status::InvalidArgument("rank0 out of range");
    }
  }
  return Status::OK();
}

// Runs a percentile bootstrap of `statistic` (a per-sample value, of which
// we bootstrap the mean).
BootstrapInterval PercentileBootstrap(const std::vector<double>& values,
                                      const BootstrapOptions& options) {
  Rng rng(options.seed);
  const size_t n = values.size();
  double base = 0.0;
  for (double v : values) base += v;
  base /= static_cast<double>(n);

  std::vector<double> means(options.resamples);
  for (int r = 0; r < options.resamples; ++r) {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += values[rng.UniformInt(n)];
    }
    means[r] = acc / static_cast<double>(n);
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - options.confidence) / 2.0;
  const auto pick = [&](double q) {
    const double pos = q * static_cast<double>(means.size() - 1);
    return means[static_cast<size_t>(std::llround(pos))];
  };
  BootstrapInterval interval;
  interval.mean = base;
  interval.lo = pick(alpha);
  interval.hi = pick(1.0 - alpha);
  return interval;
}

}  // namespace

Result<BootstrapInterval> BootstrapAccu(const std::vector<RankSample>& samples,
                                        const BootstrapOptions& options) {
  CS_RETURN_NOT_OK(ValidateInputs(samples, options));
  std::vector<double> values;
  values.reserve(samples.size());
  for (const auto& s : samples) values.push_back(Accu(s.rank0, s.num_candidates));
  return PercentileBootstrap(values, options);
}

Result<BootstrapInterval> BootstrapTopK(const std::vector<RankSample>& samples,
                                        size_t k,
                                        const BootstrapOptions& options) {
  CS_RETURN_NOT_OK(ValidateInputs(samples, options));
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  std::vector<double> values;
  values.reserve(samples.size());
  for (const auto& s : samples) values.push_back(s.rank0 < k ? 1.0 : 0.0);
  return PercentileBootstrap(values, options);
}

Result<double> PairedBootstrapAccuSuperiority(
    const std::vector<RankSample>& a, const std::vector<RankSample>& b,
    const BootstrapOptions& options) {
  CS_RETURN_NOT_OK(ValidateInputs(a, options));
  CS_RETURN_NOT_OK(ValidateInputs(b, options));
  if (a.size() != b.size()) {
    return Status::InvalidArgument("paired bootstrap needs aligned samples");
  }
  std::vector<double> diff(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    diff[i] = Accu(a[i].rank0, a[i].num_candidates) -
              Accu(b[i].rank0, b[i].num_candidates);
  }
  Rng rng(options.seed);
  int wins = 0;
  for (int r = 0; r < options.resamples; ++r) {
    double acc = 0.0;
    for (size_t i = 0; i < diff.size(); ++i) {
      acc += diff[rng.UniformInt(diff.size())];
    }
    if (acc > 0.0) ++wins;
  }
  return static_cast<double>(wins) / static_cast<double>(options.resamples);
}

}  // namespace crowdselect
