#include "eval/metrics.h"

#include "util/logging.h"

namespace crowdselect {

double Accu(size_t rank0, size_t num_candidates) {
  CS_DCHECK(rank0 < num_candidates || num_candidates == 0);
  if (num_candidates <= 1) return 1.0;
  return static_cast<double>(num_candidates - rank0 - 1) /
         static_cast<double>(num_candidates - 1);
}

void MetricAccumulator::Add(size_t rank0, size_t num_candidates) {
  ++count_;
  accu_sum_ += Accu(rank0, num_candidates);
  if (rank_histogram_.size() <= rank0) rank_histogram_.resize(rank0 + 1, 0);
  ++rank_histogram_[rank0];
}

double MetricAccumulator::MeanAccu() const {
  return count_ == 0 ? 0.0 : accu_sum_ / static_cast<double>(count_);
}

double MetricAccumulator::TopK(size_t k) const {
  if (count_ == 0) return 0.0;
  size_t hits = 0;
  for (size_t r = 0; r < rank_histogram_.size() && r < k; ++r) {
    hits += rank_histogram_[r];
  }
  return static_cast<double>(hits) / static_cast<double>(count_);
}

}  // namespace crowdselect
