// Fixed-width table reporter so benches print tables shaped like the
// paper's (Tables 2-8).
#ifndef CROWDSELECT_EVAL_REPORTER_H_
#define CROWDSELECT_EVAL_REPORTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace crowdselect {

/// Accumulates rows of string cells and prints an aligned ASCII table.
class TableReporter {
 public:
  explicit TableReporter(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  /// Convenience: formats doubles to 3 decimals.
  static std::string Cell(double value, int precision = 3);

  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_EVAL_REPORTER_H_
