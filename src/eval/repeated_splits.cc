#include "eval/repeated_splits.h"

#include <cmath>

namespace crowdselect {

namespace {

MetricSummary Summarize(const std::vector<double>& values) {
  MetricSummary summary;
  if (values.empty()) return summary;
  for (double v : values) summary.mean += v;
  summary.mean /= static_cast<double>(values.size());
  double acc = 0.0;
  for (double v : values) {
    acc += (v - summary.mean) * (v - summary.mean);
  }
  summary.stddev = std::sqrt(acc / static_cast<double>(values.size()));
  return summary;
}

}  // namespace

Result<std::vector<RepeatedAlgorithmResult>> RunRepeatedSplits(
    const SyntheticDataset& dataset, const WorkerGroup& group,
    const std::vector<SelectorFactory>& factories,
    const RepeatedSplitOptions& options) {
  if (options.repetitions <= 0) {
    return Status::InvalidArgument("repetitions must be positive");
  }
  if (factories.empty()) {
    return Status::InvalidArgument("no selector factories");
  }

  // values[algorithm][metric] over runs.
  std::vector<std::vector<double>> accu(factories.size());
  std::vector<std::vector<double>> top1(factories.size());
  std::vector<std::vector<double>> top2(factories.size());
  std::vector<std::string> names(factories.size());

  for (int r = 0; r < options.repetitions; ++r) {
    SplitOptions split_options = options.split;
    split_options.seed = options.split.seed + 0x9E37 * static_cast<uint64_t>(r);
    CS_ASSIGN_OR_RETURN(EvalSplit split,
                        MakeSplit(dataset, group, split_options));
    CS_ASSIGN_OR_RETURN(std::vector<AlgorithmResult> run,
                        RunExperiment(split, factories));
    if (run.size() != factories.size()) {
      return Status::Internal("experiment returned unexpected result count");
    }
    for (size_t a = 0; a < run.size(); ++a) {
      names[a] = run[a].name;
      accu[a].push_back(run[a].mean_accu);
      top1[a].push_back(run[a].top1);
      top2[a].push_back(run[a].top2);
    }
  }

  std::vector<RepeatedAlgorithmResult> results(factories.size());
  for (size_t a = 0; a < factories.size(); ++a) {
    results[a].name = names[a];
    results[a].accu = Summarize(accu[a]);
    results[a].top1 = Summarize(top1[a]);
    results[a].top2 = Summarize(top2[a]);
    results[a].repetitions = options.repetitions;
  }
  return results;
}

}  // namespace crowdselect
