// Job-quality metrics from paper §7.2.2: ACCU (precision) and TopK
// (recall).
#ifndef CROWDSELECT_EVAL_METRICS_H_
#define CROWDSELECT_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace crowdselect {

/// ACCU for one test task: the relative rank of the right worker among
/// |R| ranked candidates. `rank0` is the right worker's 0-based rank.
/// ACCU = (|R| - rank0 - 1) / (|R| - 1); 1.0 when ranked first, 0.0 when
/// ranked last. Degenerate |R| <= 1 scores 1.0.
double Accu(size_t rank0, size_t num_candidates);

/// Streaming accumulator over test tasks for ACCU and TopK.
class MetricAccumulator {
 public:
  /// Records one test task's outcome.
  void Add(size_t rank0, size_t num_candidates);

  size_t count() const { return count_; }
  /// Mean ACCU over recorded tasks (0 when empty).
  double MeanAccu() const;
  /// TopK recall: fraction of tasks whose right worker ranked within the
  /// first k (1-based k >= 1).
  double TopK(size_t k) const;

 private:
  size_t count_ = 0;
  double accu_sum_ = 0.0;
  std::vector<size_t> rank_histogram_;  ///< rank_histogram_[r] = #tasks at rank r.
};

}  // namespace crowdselect

#endif  // CROWDSELECT_EVAL_METRICS_H_
