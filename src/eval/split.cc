#include "eval/split.h"

#include <algorithm>
#include <unordered_set>

#include "util/rng.h"

namespace crowdselect {

Result<EvalSplit> MakeSplit(const SyntheticDataset& dataset,
                            const WorkerGroup& group,
                            const SplitOptions& options) {
  if (group.members.empty()) {
    return Status::InvalidArgument("empty worker group");
  }
  const std::unordered_set<WorkerId> members(group.members.begin(),
                                             group.members.end());
  const CrowdDatabase& db = dataset.db;

  // Eligible tasks: right worker in group, enough in-group answerers.
  std::vector<EvalCase> eligible;
  for (size_t j = 0; j < dataset.world.assignment.size(); ++j) {
    const auto& slots = dataset.world.assignment[j];
    if (slots.empty()) continue;
    const WorkerId right = dataset.RightWorker(j);
    if (!members.count(right)) continue;
    EvalCase test_case;
    test_case.task = static_cast<TaskId>(j);
    test_case.right_worker = right;
    for (WorkerId w : slots) {
      if (members.count(w)) test_case.candidates.push_back(w);
    }
    if (test_case.candidates.size() < options.min_candidates) continue;
    eligible.push_back(std::move(test_case));
  }
  if (eligible.empty()) {
    return Status::FailedPrecondition(
        "no eligible test tasks for this group");
  }

  Rng rng(options.seed);
  rng.Shuffle(&eligible);
  if (eligible.size() > options.num_test_tasks) {
    eligible.resize(options.num_test_tasks);
  }

  std::unordered_set<TaskId> test_tasks;
  for (const auto& c : eligible) test_tasks.insert(c.task);

  // Rebuild the database without the test tasks' assignments. Task rows
  // stay (the corpus is public; only their outcomes are hidden).
  EvalSplit split;
  split.cases = std::move(eligible);
  CrowdDatabase& train = split.train_db;
  *train.mutable_vocabulary() = db.vocabulary();
  for (const auto& w : db.workers()) {
    train.AddWorker(w.handle, w.online);
  }
  for (const auto& t : db.tasks()) {
    train.AddTaskWithBag(t.text, t.bag);
  }
  for (const AssignmentRecord& a : db.assignments()) {
    if (test_tasks.count(a.task)) continue;
    CS_RETURN_NOT_OK(train.Assign(a.worker, a.task));
    if (a.has_score) {
      CS_RETURN_NOT_OK(train.RecordFeedback(a.worker, a.task, a.score));
    }
  }
  return split;
}

}  // namespace crowdselect
