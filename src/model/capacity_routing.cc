#include "model/capacity_routing.h"

#include <algorithm>
#include <unordered_map>

namespace crowdselect {

Result<BatchAssignment> RouteBatch(
    const std::vector<RoutableTask>& tasks,
    const std::vector<WorkerPosterior>& posteriors,
    const std::vector<WorkerId>& candidates,
    const CapacityRoutingOptions& options) {
  if (options.per_worker_capacity == 0) {
    return Status::InvalidArgument("per_worker_capacity must be >= 1");
  }
  for (WorkerId w : candidates) {
    if (w >= posteriors.size()) {
      return Status::InvalidArgument("candidate worker has no posterior");
    }
  }

  struct Pair {
    double score;
    uint32_t task;
    WorkerId worker;
  };
  std::vector<Pair> pairs;
  pairs.reserve(tasks.size() * candidates.size());
  for (uint32_t t = 0; t < tasks.size(); ++t) {
    if (tasks[t].category.size() == 0) {
      return Status::InvalidArgument("task with empty category vector");
    }
    for (WorkerId w : candidates) {
      if (posteriors[w].lambda.size() != tasks[t].category.size()) {
        return Status::InvalidArgument("category/skill dimension mismatch");
      }
      pairs.push_back(
          {posteriors[w].lambda.Dot(tasks[t].category), t, w});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.task != b.task) return a.task < b.task;
    return a.worker < b.worker;
  });

  BatchAssignment result;
  result.assignment.resize(tasks.size());
  std::unordered_map<WorkerId, size_t> load;
  std::vector<size_t> still_needed(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    still_needed[t] = tasks[t].workers_needed;
  }
  for (const Pair& p : pairs) {
    if (still_needed[p.task] == 0) continue;
    if (load[p.worker] >= options.per_worker_capacity) continue;
    result.assignment[p.task].push_back(p.worker);
    result.total_score += p.score;
    ++load[p.worker];
    --still_needed[p.task];
  }
  for (size_t needed : still_needed) result.unfilled_slots += needed;
  return result;
}

}  // namespace crowdselect
