// Capacity-constrained batch crowd-selection (extension). The paper's
// Eq. 1 routes each task independently, so a burst of similar tasks all
// lands on the same top worker. Real platforms cap concurrent work per
// worker; this module assigns a *batch* of tasks under per-worker
// capacities, maximizing total predictive performance greedily (globally
// best (task, worker) pairs first — the classic 1/2-approximation for
// assignment-type objectives under capacity constraints).
#ifndef CROWDSELECT_MODEL_CAPACITY_ROUTING_H_
#define CROWDSELECT_MODEL_CAPACITY_ROUTING_H_

#include <vector>

#include "crowddb/selector_interface.h"
#include "model/tdpm_params.h"

namespace crowdselect {

/// One task of the batch to route: its projected category vector plus how
/// many distinct workers it needs (the paper's k).
struct RoutableTask {
  Vector category;
  size_t workers_needed = 1;
};

struct CapacityRoutingOptions {
  /// Maximum tasks routed to any single worker within the batch.
  size_t per_worker_capacity = 1;
};

/// assignment[t] lists the workers chosen for task t (may be shorter than
/// workers_needed when capacities are exhausted).
struct BatchAssignment {
  std::vector<std::vector<WorkerId>> assignment;
  double total_score = 0.0;
  /// Slots that could not be filled (capacity exhausted).
  size_t unfilled_slots = 0;
};

/// Greedy global assignment: consider all (task, worker) scores
/// w . c_t in descending order; accept a pair when the task still needs
/// workers, the worker has remaining capacity, and the pair is new.
/// Deterministic: ties break on (task, worker) index.
Result<BatchAssignment> RouteBatch(
    const std::vector<RoutableTask>& tasks,
    const std::vector<WorkerPosterior>& posteriors,
    const std::vector<WorkerId>& candidates,
    const CapacityRoutingOptions& options = {});

}  // namespace crowdselect

#endif  // CROWDSELECT_MODEL_CAPACITY_ROUTING_H_
