// Variational EM for TDPM (paper §5, Algorithm 2).
//
// The E-step alternates closed-form coordinate updates for the worker
// posteriors (Eqs. 10-11) and token responsibilities/bound parameters
// (Eqs. 12-13) with a conjugate-gradient subproblem for each task's
// category mean lambda_c (Eq. 14) and a fixed-point iteration for its
// variances nu_c^2 (Eq. 15). The M-step applies the closed forms of
// Eqs. 16-21. See DESIGN.md for the corrected derivations.
#ifndef CROWDSELECT_MODEL_VARIATIONAL_H_
#define CROWDSELECT_MODEL_VARIATIONAL_H_

#include <utility>
#include <vector>

#include "crowddb/crowd_database.h"
#include "model/generative.h"
#include "model/tdpm_params.h"
#include "util/thread_pool.h"

namespace crowdselect {

/// Model-agnostic training view of the resolved tasks (T, A, S).
struct TdpmTrainData {
  /// One resolved task document.
  struct TaskDoc {
    /// Distinct (term, count) pairs, sorted by term id.
    std::vector<std::pair<TermId, uint32_t>> terms;
    /// Total token count L_j.
    double total_tokens = 0.0;
  };
  /// One scored assignment cell (a_ij = 1 with feedback s_ij).
  struct Observation {
    uint32_t worker = 0;
    uint32_t task = 0;
    double score = 0.0;
  };

  std::vector<TaskDoc> tasks;
  std::vector<Observation> observations;
  /// Observation indexes grouped by worker / by task.
  std::vector<std::vector<uint32_t>> obs_of_worker;
  std::vector<std::vector<uint32_t>> obs_of_task;
  size_t num_workers = 0;
  size_t vocab_size = 0;

  /// Extracts all *scored* assignments and their tasks from a database.
  /// `task_ids_out`, when non-null, receives the database TaskId of each
  /// extracted task (training-task index -> TaskId).
  static TdpmTrainData FromDatabase(const CrowdDatabase& db,
                                    std::vector<TaskId>* task_ids_out = nullptr);

  /// Builds training data directly from a generated world (tests).
  static TdpmTrainData FromWorld(const GeneratedWorld& world,
                                 size_t num_workers, size_t vocab_size);

  /// Basic integrity checks (index bounds, non-empty tasks).
  Status Validate() const;
};

/// Outcome of a Fit() run.
struct TdpmFitResult {
  TdpmModelParams params;
  TdpmVariationalState state;
  /// Evidence lower bound after each EM iteration.
  std::vector<double> elbo_history;
  int iterations = 0;
  bool converged = false;
};

/// Algorithm 2: iterative optimization of variational and model parameters.
class TdpmTrainer {
 public:
  explicit TdpmTrainer(TdpmOptions options);

  /// Runs variational EM to convergence (or the iteration cap).
  Result<TdpmFitResult> Fit(const TdpmTrainData& data) const;

  const TdpmOptions& options() const { return options_; }

 private:
  TdpmOptions options_;
};

namespace internal {

/// Shared aggregates for one task's (lambda_c, nu_c) subproblem. Also used
/// by the fold-in path (which simply has no score observations).
struct LambdaCProblem {
  const Matrix* sigma_c_inv = nullptr;
  const Vector* mu_c = nullptr;
  /// H = sum_i (lambda_w lambda_w^T + diag(nu_w^2)) / tau^2 over the
  /// task's scored workers; empty (0x0) when there are none.
  Matrix h;
  /// b = sum_i s_ij lambda_w / tau^2.
  Vector b;
  /// Count-weighted responsibility sums: sum_v n_v phi(v, .).
  Vector phi_weight_sum;
  /// Total tokens L_j.
  double total_tokens = 0.0;
  /// Current bound parameter eps_j.
  double eps = 1.0;
  /// Current variances nu_c^2 (held fixed while optimizing lambda).
  Vector nu_sq;

  /// Negative per-task evidence bound as a function of lambda (convex).
  double Objective(const Vector& lambda, Vector* grad) const;

  /// Damped fixed point for nu_c^2 (Eq. 15 corrected), updating `nu_sq`.
  void UpdateNuSq(const Vector& lambda, int iterations, double floor);
};

/// Runs the conjugate-gradient driver for one (lambda_c) subproblem
/// starting from `init`. Shared by the batch E-step and the fold-in path,
/// which build the same LambdaCProblem (fold-in just has no score terms).
CgResult SolveLambdaC(const LambdaCProblem& problem, const Vector& init,
                      const CgOptions& options);

/// phi and eps updates (Eqs. 12-13) for one task given lambda_c and beta.
/// `log_beta` is the K x V matrix of log beta values.
void UpdatePhiAndEps(const TdpmTrainData::TaskDoc& doc, const Vector& lambda,
                     const Vector& nu_sq, const Matrix& log_beta,
                     Matrix* phi, double* eps);

}  // namespace internal

}  // namespace crowdselect

#endif  // CROWDSELECT_MODEL_VARIATIONAL_H_
