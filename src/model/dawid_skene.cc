#include "model/dawid_skene.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/matrix.h"
#include "model/variational.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/task_projector.h"
#include "util/logging.h"

namespace crowdselect {

namespace {

/// Fold-in for Dawid-Skene serving: the task's latent vector is its
/// normalized cosine similarity against each type centroid, so the
/// snapshot scan computes a similarity-weighted per-type skill. Uniform
/// weights for tasks with no vocabulary overlap (every worker then
/// ranks by mean skill, a sane cold-start order).
class DsTypeProjector final : public serve::TaskProjector {
 public:
  explicit DsTypeProjector(TaskClustering clustering)
      : clustering_(std::move(clustering)) {}

  FoldInResult Posterior(const BagOfWords& bag) const override {
    const size_t t = clustering_.num_clusters();
    std::vector<double> sims = clustering_.Similarities(bag);
    double sum = 0.0;
    for (double& s : sims) {
      if (s < 0.0) s = 0.0;
      sum += s;
    }
    FoldInResult result;
    result.lambda.Resize(t);
    if (sum <= 0.0) {
      for (size_t c = 0; c < t; ++c) result.lambda[c] = 1.0 / t;
    } else {
      for (size_t c = 0; c < t; ++c) result.lambda[c] = sims[c] / sum;
    }
    result.nu_sq.Resize(t);  // Point estimate: no posterior variance.
    result.cg_iterations = 0;
    result.cg_residual = 0.0;
    return result;
  }

  void FinalizeCategory(FoldInResult* result, Rng* rng) const override {
    (void)rng;  // Deterministic projection; nothing to sample.
    result->category = result->lambda;
  }

  size_t num_categories() const override {
    return clustering_.num_clusters();
  }

 private:
  const TaskClustering clustering_;
};

/// Smoothed confusion row pi[z][.] from raw counts.
void ConfusionFromCounts(const std::vector<double>& counts, size_t num_labels,
                         double smoothing, std::vector<double>* pi) {
  pi->assign(num_labels * num_labels, 0.0);
  for (size_t z = 0; z < num_labels; ++z) {
    double row = 0.0;
    for (size_t l = 0; l < num_labels; ++l) row += counts[z * num_labels + l];
    const double denom = row + num_labels * smoothing;
    for (size_t l = 0; l < num_labels; ++l) {
      (*pi)[z * num_labels + l] =
          (counts[z * num_labels + l] + smoothing) / denom;
    }
  }
}

}  // namespace

std::vector<double> QuantileBinEdges(std::vector<double> scores,
                                     size_t num_labels) {
  CS_CHECK(num_labels >= 1);
  std::vector<double> edges(num_labels - 1,
                            std::numeric_limits<double>::infinity());
  if (scores.empty() || num_labels == 1) return edges;
  std::sort(scores.begin(), scores.end());
  for (size_t i = 0; i + 1 < num_labels; ++i) {
    // Upper edge of bin i at the (i+1)/L quantile.
    const double q = static_cast<double>(i + 1) / num_labels;
    size_t idx = static_cast<size_t>(q * scores.size());
    if (idx >= scores.size()) idx = scores.size() - 1;
    edges[i] = scores[idx];
  }
  return edges;
}

uint32_t DiscretizeScore(double score, const std::vector<double>& edges) {
  for (uint32_t i = 0; i < edges.size(); ++i) {
    if (score < edges[i]) return i;
  }
  return static_cast<uint32_t>(edges.size());
}

DawidSkeneFit FitDawidSkene(const std::vector<DsObservation>& observations,
                            size_t num_workers, size_t num_tasks,
                            size_t num_labels,
                            const DawidSkeneOptions& options) {
  const size_t L = num_labels;
  DawidSkeneFit fit;
  fit.confusion.assign(num_workers, std::vector<double>(L * L, 1.0 / L));
  fit.class_prior.assign(L, 1.0 / L);
  fit.task_posterior.assign(num_tasks, std::vector<double>(L, 1.0 / L));
  if (observations.empty() || num_tasks == 0) return fit;

  std::vector<std::vector<uint32_t>> obs_of_task(num_tasks);
  for (uint32_t i = 0; i < observations.size(); ++i) {
    const DsObservation& o = observations[i];
    CS_CHECK(o.worker < num_workers && o.task < num_tasks && o.label < L);
    obs_of_task[o.task].push_back(i);
  }

  // Majority-vote initialization: q_j(z) tracks the observed label
  // histogram. This anchors class z to "performance label z" — EM then
  // cannot converge to a permuted solution, which is what makes the
  // planted-confusion recovery test meaningful.
  for (size_t j = 0; j < num_tasks; ++j) {
    if (obs_of_task[j].empty()) continue;
    std::vector<double>& q = fit.task_posterior[j];
    q.assign(L, 0.1);
    for (uint32_t i : obs_of_task[j]) q[observations[i].label] += 1.0;
    double sum = 0.0;
    for (double v : q) sum += v;
    for (double& v : q) v /= sum;
  }

  double prev_ll = -std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < options.max_em_iterations; ++iter) {
    // M-step: posterior-weighted confusion counts and class prior.
    std::vector<std::vector<double>> counts(
        num_workers, std::vector<double>(L * L, 0.0));
    std::vector<double> prior_counts(L, 0.0);
    for (const DsObservation& o : observations) {
      const std::vector<double>& q = fit.task_posterior[o.task];
      for (size_t z = 0; z < L; ++z) counts[o.worker][z * L + o.label] += q[z];
    }
    for (size_t j = 0; j < num_tasks; ++j) {
      if (obs_of_task[j].empty()) continue;
      for (size_t z = 0; z < L; ++z) {
        prior_counts[z] += fit.task_posterior[j][z];
      }
    }
    for (size_t w = 0; w < num_workers; ++w) {
      ConfusionFromCounts(counts[w], L, options.smoothing, &fit.confusion[w]);
    }
    {
      double sum = 0.0;
      for (size_t z = 0; z < L; ++z) sum += prior_counts[z] + options.smoothing;
      for (size_t z = 0; z < L; ++z) {
        fit.class_prior[z] = (prior_counts[z] + options.smoothing) / sum;
      }
    }

    // E-step in the log domain, accumulating the data log-likelihood.
    double ll = 0.0;
    for (size_t j = 0; j < num_tasks; ++j) {
      if (obs_of_task[j].empty()) continue;
      std::vector<double> logq(L);
      for (size_t z = 0; z < L; ++z) logq[z] = std::log(fit.class_prior[z]);
      for (uint32_t i : obs_of_task[j]) {
        const DsObservation& o = observations[i];
        for (size_t z = 0; z < L; ++z) {
          logq[z] += std::log(fit.confusion[o.worker][z * L + o.label]);
        }
      }
      const double mx = *std::max_element(logq.begin(), logq.end());
      double sum = 0.0;
      for (size_t z = 0; z < L; ++z) {
        fit.task_posterior[j][z] = std::exp(logq[z] - mx);
        sum += fit.task_posterior[j][z];
      }
      for (size_t z = 0; z < L; ++z) fit.task_posterior[j][z] /= sum;
      ll += mx + std::log(sum);
    }
    fit.log_likelihood = ll;
    fit.iterations = static_cast<int>(iter) + 1;
    if (ll - prev_ll <
        options.tolerance * static_cast<double>(observations.size())) {
      fit.converged = true;
      break;
    }
    prev_ll = ll;
  }
  return fit;
}

DawidSkeneModel::DawidSkeneModel(DawidSkeneOptions options,
                                 serve::ServeOptions serve_options)
    : options_(options),
      engine_(std::make_unique<serve::SelectionEngine>(serve_options)),
      rng_(options.seed) {}

double DawidSkeneModel::SkillFromStats(const WorkerTypeStats& stats,
                                       size_t type) const {
  const size_t L = options_.num_labels;
  std::vector<double> pi;
  ConfusionFromCounts(stats.counts, L, options_.smoothing, &pi);
  // Expected performed-label value under the type's quality-class prior:
  // E[v_l] = sum_z p_t(z) sum_l pi_w[z][l] v_l.
  double raw = 0.0;
  const std::vector<double>& prior = fits_[type].class_prior;
  for (size_t z = 0; z < L; ++z) {
    double row = 0.0;
    for (size_t l = 0; l < L; ++l) row += pi[z * L + l] * label_values_[l];
    raw += prior[z] * row;
  }
  // Shrink thinly-observed workers toward the type mean so one lucky
  // score cannot dominate a type's ranking.
  const double n = stats.num_observations;
  return (n * raw + options_.shrinkage * type_mean_skill_[type]) /
         (n + options_.shrinkage);
}

void DawidSkeneModel::PublishSkills() {
  Matrix skills(num_workers_, num_types_);
  for (size_t w = 0; w < num_workers_; ++w) {
    for (size_t t = 0; t < num_types_; ++t) {
      skills(w, t) = SkillFromStats(stats_[w * num_types_ + t], t);
    }
  }
  engine_->PublishSnapshot(
      serve::SkillMatrixSnapshot::FromMatrix(std::move(skills),
                                             ++snapshot_version_));
}

double DawidSkeneModel::WorkerSkill(WorkerId worker, size_t type) const {
  CS_CHECK(trained_ && worker < num_workers_ && type < num_types_);
  return SkillFromStats(stats_[worker * num_types_ + type], type);
}

Status DawidSkeneModel::Train(const CrowdDatabase& db) {
  static obs::SpanMeter meter("model.train");
  static obs::Counter* runs =
      obs::MetricsRegistry::Global().GetCounter("model.train.runs");
  obs::ScopedSpan span(meter);

  TdpmTrainData data = TdpmTrainData::FromDatabase(db);
  CS_RETURN_NOT_OK(data.Validate());
  if (data.observations.empty()) {
    return Status::InvalidArgument("no scored assignments to train on");
  }
  num_workers_ = data.num_workers;

  // 1. Cluster the training tasks into types on their term vectors.
  std::vector<BagOfWords> bags(data.tasks.size());
  for (size_t j = 0; j < data.tasks.size(); ++j) {
    for (const auto& [term, count] : data.tasks[j].terms) {
      bags[j].Add(term, count);
    }
  }
  Rng cluster_rng(options_.seed);
  clustering_ = ClusterTasksByType(bags, data.vocab_size, options_.num_types,
                                   &cluster_rng);
  num_types_ = clustering_.num_clusters();

  // 2. Discretize feedback scores into L quality labels by quantiles,
  // with each label's value set to its bin's empirical mean score.
  const size_t L = options_.num_labels;
  std::vector<double> scores;
  scores.reserve(data.observations.size());
  for (const auto& o : data.observations) scores.push_back(o.score);
  bin_edges_ = QuantileBinEdges(scores, L);
  label_values_.assign(L, 0.0);
  {
    std::vector<double> sums(L, 0.0);
    std::vector<size_t> counts(L, 0);
    double lo = scores[0], hi = scores[0];
    for (double s : scores) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
      const uint32_t l = DiscretizeScore(s, bin_edges_);
      sums[l] += s;
      ++counts[l];
    }
    for (size_t l = 0; l < L; ++l) {
      label_values_[l] = counts[l] > 0
                             ? sums[l] / counts[l]
                             : lo + (l + 0.5) * (hi - lo) / L;
    }
  }

  // 3. Per-type Dawid-Skene EM over that type's observations.
  fits_.assign(num_types_, DawidSkeneFit());
  std::vector<std::vector<DsObservation>> per_type(num_types_);
  std::vector<std::vector<uint32_t>> type_task_index(num_types_);
  std::vector<uint32_t> local_task(data.tasks.size(), 0);
  for (size_t j = 0; j < data.tasks.size(); ++j) {
    const uint32_t t = clustering_.assignment[j];
    local_task[j] = static_cast<uint32_t>(type_task_index[t].size());
    type_task_index[t].push_back(static_cast<uint32_t>(j));
  }
  for (const auto& o : data.observations) {
    const uint32_t t = clustering_.assignment[o.task];
    per_type[t].push_back(DsObservation{
        o.worker, local_task[o.task], DiscretizeScore(o.score, bin_edges_)});
  }
  double total_ll = 0.0;
  int total_iters = 0;
  for (size_t t = 0; t < num_types_; ++t) {
    fits_[t] = FitDawidSkene(per_type[t], num_workers_,
                             type_task_index[t].size(), L, options_);
    total_ll += fits_[t].log_likelihood;
    total_iters += fits_[t].iterations;
  }
  obs::MetricsRegistry::Global()
      .GetGauge("model.ds.em_iterations")
      ->Set(total_iters);
  obs::MetricsRegistry::Global()
      .GetGauge("model.ds.log_likelihood")
      ->Set(total_ll);

  // 4. Seed the live-update sufficient statistics with the training
  // fit's posterior-weighted counts.
  stats_.assign(num_workers_ * num_types_, WorkerTypeStats());
  for (auto& s : stats_) s.counts.assign(L * L, 0.0);
  for (size_t t = 0; t < num_types_; ++t) {
    for (const DsObservation& o : per_type[t]) {
      WorkerTypeStats& s = stats_[o.worker * num_types_ + t];
      const std::vector<double>& q = fits_[t].task_posterior[o.task];
      for (size_t z = 0; z < L; ++z) s.counts[z * L + o.label] += q[z];
      s.num_observations += 1.0;
    }
  }

  // 5. Type-mean raw skills (the shrinkage targets), over observed
  // workers only; fall back to the mid label value for unobserved types.
  type_mean_skill_.assign(num_types_, 0.0);
  double global_mean = 0.0;
  for (double v : label_values_) global_mean += v;
  global_mean /= L;
  for (size_t t = 0; t < num_types_; ++t) {
    // Temporarily zero so SkillFromStats reports the unshrunk value.
    type_mean_skill_[t] = 0.0;
    double sum = 0.0;
    size_t n = 0;
    for (size_t w = 0; w < num_workers_; ++w) {
      const WorkerTypeStats& s = stats_[w * num_types_ + t];
      if (s.num_observations <= 0.0) continue;
      // Unshrunk expected value: shrinkage target weight is 0 here
      // because type_mean_skill_[t] is 0.
      std::vector<double> pi;
      ConfusionFromCounts(s.counts, L, options_.smoothing, &pi);
      double raw = 0.0;
      for (size_t z = 0; z < L; ++z) {
        double row = 0.0;
        for (size_t l = 0; l < L; ++l) row += pi[z * L + l] * label_values_[l];
        raw += fits_[t].class_prior[z] * row;
      }
      sum += raw;
      ++n;
    }
    type_mean_skill_[t] = n > 0 ? sum / n : global_mean;
  }

  // 6. Attach the type projector and publish the workers x types skill
  // snapshot through the shared copy-on-write machinery.
  engine_->SetProjector(std::make_unique<DsTypeProjector>(clustering_),
                        ModelId());
  trained_ = true;
  PublishSkills();
  runs->Increment();
  return Status::OK();
}

Result<std::vector<RankedWorker>> DawidSkeneModel::SelectTopKExplained(
    const BagOfWords& task, size_t k, const std::vector<WorkerId>& candidates,
    serve::QueryStats* stats) const {
  static obs::Counter* queries =
      obs::MetricsRegistry::Global().GetCounter("model.ds.queries");
  if (!trained_) return Status::FailedPrecondition("model not trained");
  queries->Increment();
  return engine_->SelectTopK(task, k, candidates, &rng_, stats);
}

Result<FoldInResult> DawidSkeneModel::FoldInTask(const BagOfWords& task) const {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  return engine_->Project(task, &rng_);
}

Status DawidSkeneModel::ObserveResolvedTask(
    const BagOfWords& task,
    const std::vector<std::pair<WorkerId, double>>& scored) {
  static obs::Counter* updates =
      obs::MetricsRegistry::Global().GetCounter("model.observe.updates");
  if (!trained_) return Status::FailedPrecondition("model not trained");
  if (scored.empty()) return Status::OK();
  for (const auto& [w, score] : scored) {
    if (w >= num_workers_) {
      return Status::InvalidArgument("unknown worker in resolved task");
    }
  }
  const size_t L = options_.num_labels;
  const uint32_t t = clustering_.Assign(task);

  // One E-step for the new task's quality class under the current
  // confusion matrices, then fold posterior-weighted counts into each
  // scored worker's statistics.
  std::vector<double> logq(L);
  for (size_t z = 0; z < L; ++z) logq[z] = std::log(fits_[t].class_prior[z]);
  std::vector<uint32_t> labels(scored.size());
  for (size_t i = 0; i < scored.size(); ++i) {
    labels[i] = DiscretizeScore(scored[i].second, bin_edges_);
    std::vector<double> pi;
    ConfusionFromCounts(stats_[scored[i].first * num_types_ + t].counts, L,
                        options_.smoothing, &pi);
    for (size_t z = 0; z < L; ++z) {
      logq[z] += std::log(pi[z * L + labels[i]]);
    }
  }
  const double mx = *std::max_element(logq.begin(), logq.end());
  std::vector<double> q(L);
  double sum = 0.0;
  for (size_t z = 0; z < L; ++z) {
    q[z] = std::exp(logq[z] - mx);
    sum += q[z];
  }
  for (size_t z = 0; z < L; ++z) q[z] /= sum;

  std::vector<std::pair<WorkerId, Vector>> rows;
  rows.reserve(scored.size());
  for (size_t i = 0; i < scored.size(); ++i) {
    const WorkerId w = scored[i].first;
    WorkerTypeStats& s = stats_[w * num_types_ + t];
    for (size_t z = 0; z < L; ++z) s.counts[z * L + labels[i]] += q[z];
    s.num_observations += 1.0;
    Vector row(num_types_);
    for (size_t tt = 0; tt < num_types_; ++tt) {
      row[tt] = SkillFromStats(stats_[w * num_types_ + tt], tt);
    }
    rows.emplace_back(w, std::move(row));
  }
  std::shared_ptr<const serve::SkillMatrixSnapshot> current =
      engine_->snapshot();
  CS_CHECK(current != nullptr);
  engine_->PublishSnapshot(current->WithUpdatedRows(rows));
  snapshot_version_ = engine_->snapshot()->version();
  updates->Increment();
  return Status::OK();
}

}  // namespace crowdselect
