// Task-type discovery shared by the Dawid-Skene backend and the
// task-type router: spherical k-means over normalized term-frequency
// vectors. Cosine similarity is the natural metric for bag-of-words
// tasks (it is what the paper's VSM baseline ranks with), and keeping
// the centroids in the vocabulary space lets the router score an
// incoming task against each model's centroid with one sparse pass.
#ifndef CROWDSELECT_MODEL_TASK_CLUSTERING_H_
#define CROWDSELECT_MODEL_TASK_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "linalg/vector.h"
#include "text/bag_of_words.h"
#include "util/rng.h"

namespace crowdselect {

/// A fitted task-type clustering: unit-L2 centroids in vocabulary space
/// plus the training assignment.
struct TaskClustering {
  /// Unit-norm centroids, each of dimension `vocab_size`.
  std::vector<Vector> centroids;
  /// Cluster index per input task, parallel to the `bags` argument.
  std::vector<uint32_t> assignment;

  size_t num_clusters() const { return centroids.size(); }

  /// Cosine similarity of `bag` against every centroid (centroids are
  /// unit-norm, so this is one sparse dot per centroid divided by the
  /// bag norm). All zeros for an empty bag.
  std::vector<double> Similarities(const BagOfWords& bag) const;

  /// Argmax of Similarities(); `similarity`/`margin` (lead over the
  /// runner-up) are optional out-params. Returns 0 with similarity 0 for
  /// an empty bag or a bag with no vocabulary overlap.
  uint32_t Assign(const BagOfWords& bag, double* similarity = nullptr,
                  double* margin = nullptr) const;
};

/// Spherical k-means over `bags` (terms must be < vocab_size).
/// Deterministic given `rng`'s state: seeds with k-means++-style
/// farthest-point sampling, iterates assign/recenter to convergence or
/// `max_iterations`, and reseeds empty clusters from the worst-fit task.
/// `num_clusters` is clamped to the number of non-empty bags (minimum 1).
TaskClustering ClusterTasksByType(const std::vector<BagOfWords>& bags,
                                  size_t vocab_size, size_t num_clusters,
                                  Rng* rng, size_t max_iterations = 25);

}  // namespace crowdselect

#endif  // CROWDSELECT_MODEL_TASK_CLUSTERING_H_
