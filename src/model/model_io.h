// Serialization of a trained TDPM model (magic "CSTM", versioned), so a
// crowd manager can persist inference results and reload them on restart.
#ifndef CROWDSELECT_MODEL_MODEL_IO_H_
#define CROWDSELECT_MODEL_MODEL_IO_H_

#include <string>

#include "model/tdpm_params.h"
#include "util/serialization.h"

namespace crowdselect {

/// A persistable trained model: parameters plus the per-worker posteriors
/// needed at selection time. Task posteriors are not persisted (they are
/// re-derivable via fold-in).
struct TdpmModelSnapshot {
  TdpmModelParams params;
  std::vector<WorkerPosterior> workers;

  static constexpr uint32_t kMagic = 0x4D545343;  // "CSTM" little-endian.
  static constexpr uint32_t kVersion = 1;

  void Serialize(BinaryWriter* writer) const;
  static Result<TdpmModelSnapshot> Deserialize(BinaryReader* reader);

  Status SaveToFile(const std::string& path) const;
  static Result<TdpmModelSnapshot> LoadFromFile(const std::string& path);
};

namespace internal {
void SerializeVector(const Vector& v, BinaryWriter* writer);
Status DeserializeVector(BinaryReader* reader, Vector* v);
void SerializeMatrix(const Matrix& m, BinaryWriter* writer);
Status DeserializeMatrix(BinaryReader* reader, Matrix* m);
}  // namespace internal

}  // namespace crowdselect

#endif  // CROWDSELECT_MODEL_MODEL_IO_H_
