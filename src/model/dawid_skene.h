// Dawid-Skene crowd model with per-worker confusion matrices, adapted to
// graded feedback: feedback scores are quantile-binned into L quality
// labels, tasks are clustered into T types (model/task_clustering.h),
// and per type each worker gets an LxL confusion matrix
// pi_w[z][l] = P(worker performs at label l | task quality class z)
// estimated by the classic Dawid-Skene EM (majority-vote init anchors
// the label identity). A worker's per-type skill is the expected label
// value under the type's class prior, shrunk toward the type mean for
// thinly-observed workers.
//
// Serving reuses the whole TDPM machinery: skills form a workers x T
// SkillMatrixSnapshot (copy-on-write publishes), fold-in projects a task
// to its normalized type-similarity weights through the engine's cache,
// and ranking is the same blocked snapshot scan — score = skill_w . c_j
// where c_j are the task's type weights.
#ifndef CROWDSELECT_MODEL_DAWID_SKENE_H_
#define CROWDSELECT_MODEL_DAWID_SKENE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "model/crowd_model.h"
#include "model/task_clustering.h"
#include "serve/selection_engine.h"
#include "util/rng.h"

namespace crowdselect {

/// Knobs for the Dawid-Skene backend (mapped from ModelConfig by the
/// registry factory).
struct DawidSkeneOptions {
  size_t num_labels = 4;
  size_t num_types = 4;
  size_t max_em_iterations = 100;
  /// Additive (Laplace) smoothing for confusion counts and class priors.
  double smoothing = 1.0;
  /// EM stops when the per-observation log-likelihood gain drops below
  /// this.
  double tolerance = 1e-6;
  /// Shrinkage pseudo-count toward the type-mean skill.
  double shrinkage = 4.0;
  uint64_t seed = 42;
};

/// One discretized observation: `worker` performed at quality `label` on
/// `task`.
struct DsObservation {
  uint32_t worker = 0;
  uint32_t task = 0;
  uint32_t label = 0;
};

/// A fitted Dawid-Skene model over one pool of observations.
struct DawidSkeneFit {
  /// Per worker, row-major LxL: confusion[w][z * L + l].
  std::vector<std::vector<double>> confusion;
  /// Class prior p(z), length L.
  std::vector<double> class_prior;
  /// Per task, posterior q_j(z), length L.
  std::vector<std::vector<double>> task_posterior;
  double log_likelihood = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Classic Dawid-Skene EM: majority-vote initialization of the task
/// posteriors (anchoring label identity), then alternating confusion /
/// prior M-steps with posterior E-steps until the log-likelihood
/// plateaus. Workers or tasks with no observations get uniform rows.
/// Exposed as a free function so the planted-confusion-matrix recovery
/// test can exercise EM without a database.
DawidSkeneFit FitDawidSkene(const std::vector<DsObservation>& observations,
                            size_t num_workers, size_t num_tasks,
                            size_t num_labels, const DawidSkeneOptions& options);

/// Quantile bin edges over `scores` for `num_labels` bins: edges[i] is
/// the upper bound of bin i (the last bin is unbounded). Degenerate
/// score distributions collapse gracefully (equal edges -> lower bins
/// empty).
std::vector<double> QuantileBinEdges(std::vector<double> scores,
                                     size_t num_labels);

/// Label of `score` under `edges` (first bin whose upper edge admits it).
uint32_t DiscretizeScore(double score, const std::vector<double>& edges);

/// The Dawid-Skene backend behind the CrowdModel interface.
class DawidSkeneModel : public CrowdModel {
 public:
  explicit DawidSkeneModel(DawidSkeneOptions options,
                           serve::ServeOptions serve_options = {});

  std::string Name() const override { return "DawidSkene"; }
  std::string ModelId() const override { return "dawid_skene"; }

  Status Train(const CrowdDatabase& db) override;

  Result<std::vector<RankedWorker>> SelectTopKExplained(
      const BagOfWords& task, size_t k,
      const std::vector<WorkerId>& candidates,
      serve::QueryStats* stats) const override;

  Result<FoldInResult> FoldInTask(const BagOfWords& task) const override;

  /// Live update (the CrowdModel feedback hook): assigns the task a hard
  /// type, infers its quality class with one E-step under the current
  /// confusion matrices, folds the posterior-weighted counts into each
  /// scored worker's statistics, and publishes the refreshed skill rows
  /// copy-on-write.
  Status ObserveResolvedTask(
      const BagOfWords& task,
      const std::vector<std::pair<WorkerId, double>>& scored) override;

  std::shared_ptr<const serve::SkillMatrixSnapshot> CurrentSnapshot()
      const override {
    return engine_->snapshot();
  }
  bool trained() const override { return trained_; }

  serve::SelectionEngine* engine() { return engine_.get(); }
  const serve::SelectionEngine* engine() const { return engine_.get(); }

  /// Fitted task-type clustering (valid after Train()).
  const TaskClustering& clustering() const { return clustering_; }
  /// Per-type fit diagnostics (valid after Train()).
  const std::vector<DawidSkeneFit>& fits() const { return fits_; }
  /// Per-type per-worker skill (post shrinkage), as published.
  double WorkerSkill(WorkerId worker, size_t type) const;

 private:
  /// Worker x type sufficient statistics for live updates.
  struct WorkerTypeStats {
    /// Posterior-weighted confusion counts, row-major LxL.
    std::vector<double> counts;
    double num_observations = 0.0;
  };

  double SkillFromStats(const WorkerTypeStats& stats, size_t type) const;
  void PublishSkills();

  DawidSkeneOptions options_;
  std::unique_ptr<serve::SelectionEngine> engine_;
  TaskClustering clustering_;
  std::vector<double> bin_edges_;
  /// Representative score of each label (bin mean over training data).
  std::vector<double> label_values_;
  std::vector<DawidSkeneFit> fits_;  ///< One per type.
  /// stats_[worker * num_types + type].
  std::vector<WorkerTypeStats> stats_;
  /// Mean raw skill per type (shrinkage target).
  std::vector<double> type_mean_skill_;
  size_t num_workers_ = 0;
  size_t num_types_ = 0;
  uint64_t snapshot_version_ = 0;
  bool trained_ = false;
  mutable Rng rng_;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_MODEL_DAWID_SKENE_H_
