// The pluggable crowd-model interface: everything the serving stack
// needs from a trained model of worker ability. TDPM (model/selection.h)
// is the paper's algorithm; Dawid-Skene confusion matrices
// (model/dawid_skene.h) and the task-type router (serve/router.h) are
// alternative backends behind the same contract, created by registry id
// so hosts (CLI, crowd manager, eval harness, benches) never name a
// concrete class.
//
// Contract, on top of CrowdSelector:
//   Train(db)              batch fit over resolved tasks
//   FoldInTask(bag)        project a new task into the latent space
//   ScoreCandidates(...)   rank every candidate (top-k = all)
//   SelectTopKExplained    SelectTopK + the EXPLAIN QueryStats payload
//   ObserveResolvedTask    live skill refresh (inherited; default no-op)
//   CurrentSnapshot()      the published copy-on-write skill snapshot
//
// Thread-safety contract: Train() and ObserveResolvedTask() are
// single-writer; SelectTopK / SelectTopKExplained / FoldInTask may run
// concurrently with each other and with ObserveResolvedTask(), because
// serving goes through the engine's copy-on-write snapshot publish.
#ifndef CROWDSELECT_MODEL_CROWD_MODEL_H_
#define CROWDSELECT_MODEL_CROWD_MODEL_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "crowddb/selector_interface.h"
#include "model/fold_in.h"
#include "model/tdpm_params.h"
#include "serve/query_stats.h"
#include "serve/selection_engine.h"
#include "serve/skill_matrix.h"

namespace crowdselect {

/// Model-construction knobs shared by every backend, plus the
/// backend-specific sections. One flat struct (rather than per-model
/// option types at the seam) so the CLI and eval harness can configure
/// any registry id uniformly.
struct ModelConfig {
  /// Latent-space options (categories, EM iterations, seed, threads).
  /// TDPM consumes all of it; other backends reuse `seed` and
  /// `num_threads`.
  TdpmOptions tdpm;
  /// Serving-engine knobs (cache capacity, scan parallelism).
  serve::ServeOptions serve;

  // --- Dawid-Skene backend -------------------------------------------------
  /// Discretized answer-quality labels L (feedback scores are quantile-
  /// binned into L classes; each worker gets an LxL confusion matrix per
  /// task type).
  size_t ds_num_labels = 4;
  /// Task types T clustered from task term vectors; skills are per-type.
  size_t ds_num_types = 4;
  size_t ds_max_em_iterations = 100;
  /// Additive smoothing for confusion-matrix counts.
  double ds_smoothing = 1.0;

  // --- Task-type router ----------------------------------------------------
  /// Clusters the training tasks into this many types, one TDPM per
  /// cluster ("router" registry id).
  size_t router_num_clusters = 3;
  /// Reciprocal-rank-fusion constant for ensemble blending.
  double router_rrf_k = 60.0;
  /// Ensemble weight-sharpening exponent (see RouterOptions).
  double router_ensemble_gamma = 4.0;
};

/// Abstract crowd model: a CrowdSelector that additionally exposes
/// fold-in, EXPLAIN-instrumented selection, and its published snapshot.
class CrowdModel : public CrowdSelector {
 public:
  /// Registry id this model was created under ("tdpm", "dawid_skene",
  /// "router", "ensemble"). Distinct from Name(), the report label.
  virtual std::string ModelId() const = 0;

  /// Projects a new task into the model's latent space (through the
  /// serving engine's fold-in cache where the backend has one).
  virtual Result<FoldInResult> FoldInTask(const BagOfWords& task) const = 0;

  /// SelectTopK plus the EXPLAIN payload; `stats` may be null, and the
  /// returned ranking is byte-identical either way.
  virtual Result<std::vector<RankedWorker>> SelectTopKExplained(
      const BagOfWords& task, size_t k,
      const std::vector<WorkerId>& candidates,
      serve::QueryStats* stats) const = 0;

  /// Scores every candidate: a full ranking, not a cut.
  Result<std::vector<RankedWorker>> ScoreCandidates(
      const BagOfWords& task, const std::vector<WorkerId>& candidates) const {
    return SelectTopKExplained(task, candidates.size(), candidates, nullptr);
  }

  /// The currently-published copy-on-write skill snapshot (null before
  /// Train()). Routers return the snapshot of their default member.
  virtual std::shared_ptr<const serve::SkillMatrixSnapshot> CurrentSnapshot()
      const = 0;

  virtual bool trained() const = 0;

  /// Default SelectTopK: the explained path without stats.
  Result<std::vector<RankedWorker>> SelectTopK(
      const BagOfWords& task, size_t k,
      const std::vector<WorkerId>& candidates) const override {
    return SelectTopKExplained(task, k, candidates, nullptr);
  }
};

/// String-keyed factory registry. Builtins ("tdpm", "dawid_skene",
/// "router", "ensemble") are registered by this library's own TU, so any
/// binary that links the registry sees them — no static-initializer
/// tricks that a static-library link could strip.
class CrowdModelRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<CrowdModel>(const ModelConfig&)>;

  static CrowdModelRegistry& Global();

  /// Registers (or replaces) a factory under `id`.
  void Register(const std::string& id, Factory factory);

  /// Instantiates an untrained model. NotFound for unknown ids, with the
  /// known ids listed in the message.
  Result<std::unique_ptr<CrowdModel>> Create(const std::string& id,
                                             const ModelConfig& config) const;

  bool Has(const std::string& id) const;

  /// Registered ids, sorted.
  std::vector<std::string> Ids() const;

 private:
  CrowdModelRegistry();

  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_MODEL_CROWD_MODEL_H_
