#include "model/fold_in.h"

#include <cmath>

#include "linalg/cholesky.h"
#include "model/variational.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace crowdselect {

Result<TaskFolder> TaskFolder::Create(const TdpmModelParams& params,
                                      TdpmOptions options) {
  CS_RETURN_NOT_OK(options.Validate());
  if (params.num_categories() != options.num_categories) {
    return Status::InvalidArgument("options.num_categories != model K");
  }
  TaskFolder folder;
  folder.options_ = std::move(options);
  folder.mu_c_ = params.mu_c;
  CS_ASSIGN_OR_RETURN(Cholesky chol,
                      Cholesky::FactorizeWithJitter(params.sigma_c));
  folder.sigma_c_inv_ = chol.Inverse();
  folder.prior_nu_sq_ = Vector(params.num_categories());
  for (size_t i = 0; i < params.num_categories(); ++i) {
    folder.prior_nu_sq_[i] = params.sigma_c(i, i);
  }
  folder.log_beta_ = Matrix(params.beta.rows(), params.beta.cols());
  for (size_t i = 0; i < params.beta.rows(); ++i) {
    for (size_t v = 0; v < params.beta.cols(); ++v) {
      folder.log_beta_(i, v) = std::log(std::max(params.beta(i, v), 1e-300));
    }
  }
  return folder;
}

FoldInResult TaskFolder::FoldIn(const BagOfWords& bag, Rng* rng) const {
  FoldInResult result = Posterior(bag);
  FinalizeCategory(&result, rng);
  return result;
}

FoldInResult TaskFolder::Posterior(const BagOfWords& bag) const {
  // Selection hot path: resolve instrument names once per process.
  static obs::SpanMeter meter("foldin.project");
  static obs::Counter* cg_iterations =
      obs::MetricsRegistry::Global().GetCounter("foldin.cg.iterations");
  static obs::Counter* empty_tasks =
      obs::MetricsRegistry::Global().GetCounter("foldin.empty_tasks");
  obs::ScopedSpan span(meter);

  const size_t k = num_categories();
  FoldInResult result;

  // Build the document restricted to the known vocabulary.
  TdpmTrainData::TaskDoc doc;
  for (const auto& e : bag.entries()) {
    if (e.term < log_beta_.cols()) {
      doc.terms.emplace_back(e.term, e.count);
      doc.total_tokens += e.count;
    }
  }

  if (doc.terms.empty()) {
    empty_tasks->Increment();
    result.lambda = mu_c_;
    result.nu_sq = prior_nu_sq_;
  } else {
    internal::LambdaCProblem problem;
    problem.sigma_c_inv = &sigma_c_inv_;
    problem.mu_c = &mu_c_;
    problem.total_tokens = doc.total_tokens;
    problem.nu_sq = Vector(k, 1.0);

    Vector lambda = mu_c_;
    Matrix phi(doc.terms.size(), k, 1.0 / static_cast<double>(k));
    double eps = static_cast<double>(k);

    // Algorithm 3 lines 2-5: alternate (phi, eps) and (lambda, nu).
    for (int it = 0; it < 3; ++it) {
      internal::UpdatePhiAndEps(doc, lambda, problem.nu_sq, log_beta_, &phi,
                                &eps);
      problem.eps = eps;
      problem.phi_weight_sum = Vector(k);
      for (size_t p = 0; p < doc.terms.size(); ++p) {
        const double n = doc.terms[p].second;
        for (size_t d = 0; d < k; ++d) {
          problem.phi_weight_sum[d] += n * phi(p, d);
        }
      }
      CgResult cg = internal::SolveLambdaC(problem, lambda, options_.cg);
      cg_iterations->Increment(static_cast<uint64_t>(cg.iterations));
      result.cg_iterations += cg.iterations;
      result.cg_residual = cg.gradient_norm;
      lambda = cg.x;
      problem.UpdateNuSq(lambda, options_.nu_c_iterations,
                         options_.variance_floor);
    }
    result.lambda = std::move(lambda);
    result.nu_sq = problem.nu_sq;
  }
  return result;
}

void TaskFolder::FinalizeCategory(FoldInResult* result, Rng* rng) const {
  // Algorithm 3 line 6: c_j ~ Normal(lambda, diag(nu^2)), or the mean.
  if (options_.sample_category_at_selection && rng != nullptr) {
    const size_t k = result->lambda.size();
    result->category = Vector(k);
    for (size_t i = 0; i < k; ++i) {
      result->category[i] =
          rng->Normal(result->lambda[i], std::sqrt(result->nu_sq[i]));
    }
  } else {
    result->category = result->lambda;
  }
}

}  // namespace crowdselect
