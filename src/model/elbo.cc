#include "model/elbo.h"

#include <cmath>

#include "linalg/cholesky.h"
#include "util/logging.h"

namespace crowdselect {

namespace {

constexpr double kLog2Pi = 1.8378770664093453;  // log(2*pi)

// E_q[log Normal(x | mu, Sigma)] for q(x) = Normal(lambda, diag(nu_sq)).
double GaussianCrossEntropyTerm(const Vector& lambda, const Vector& nu_sq,
                                const Vector& mu, const Matrix& sigma_inv,
                                double sigma_logdet) {
  const size_t k = lambda.size();
  Vector diff = lambda;
  diff -= mu;
  double quad = diff.Dot(sigma_inv.Multiply(diff));
  double trace = 0.0;
  for (size_t i = 0; i < k; ++i) trace += sigma_inv(i, i) * nu_sq[i];
  return -0.5 * (static_cast<double>(k) * kLog2Pi + sigma_logdet + quad +
                 trace);
}

// Entropy of Normal(lambda, diag(nu_sq)).
double GaussianEntropy(const Vector& nu_sq) {
  double acc = 0.0;
  for (size_t i = 0; i < nu_sq.size(); ++i) {
    acc += 0.5 * (1.0 + kLog2Pi + std::log(std::max(nu_sq[i], 1e-300)));
  }
  return acc;
}

}  // namespace

double ComputeElbo(const TdpmTrainData& data, const TdpmModelParams& params,
                   const TdpmVariationalState& state,
                   const std::vector<double>& scores) {
  CS_CHECK(scores.size() == data.observations.size());
  const size_t k = params.num_categories();

  auto chol_w = Cholesky::FactorizeWithJitter(params.sigma_w);
  auto chol_c = Cholesky::FactorizeWithJitter(params.sigma_c);
  CS_CHECK(chol_w.ok() && chol_c.ok());
  const Matrix sigma_w_inv = chol_w->Inverse();
  const Matrix sigma_c_inv = chol_c->Inverse();
  const double logdet_w = chol_w->LogDet();
  const double logdet_c = chol_c->LogDet();

  double elbo = 0.0;

  // Worker prior cross-entropy + entropy.
  for (const auto& w : state.workers) {
    elbo += GaussianCrossEntropyTerm(w.lambda, w.nu_sq, params.mu_w,
                                     sigma_w_inv, logdet_w);
    elbo += GaussianEntropy(w.nu_sq);
  }

  // Task prior cross-entropy + entropy; token terms.
  for (size_t j = 0; j < data.tasks.size(); ++j) {
    const auto& doc = data.tasks[j];
    const TaskPosterior& t = state.tasks[j];
    elbo += GaussianCrossEntropyTerm(t.lambda, t.nu_sq, params.mu_c,
                                     sigma_c_inv, logdet_c);
    elbo += GaussianEntropy(t.nu_sq);

    // E'[log p(Z|C)]: sum_p phi^T lambda - L * (eps^{-1} sum_k
    // exp(lambda_k + nu_k^2/2) - 1 + log eps).
    double exp_sum = 0.0;
    for (size_t d = 0; d < k; ++d) {
      exp_sum += std::exp(t.lambda[d] + 0.5 * t.nu_sq[d]);
    }
    elbo -= doc.total_tokens *
            (exp_sum / t.eps - 1.0 + std::log(std::max(t.eps, 1e-300)));

    for (size_t p = 0; p < doc.terms.size(); ++p) {
      const double n = doc.terms[p].second;
      const TermId v = doc.terms[p].first;
      for (size_t d = 0; d < k; ++d) {
        const double phi = t.phi(p, d);
        if (phi <= 0.0) continue;
        // E[log p(z)] token part + E[log p(v|z, beta)] + H[q(z)].
        elbo += n * phi *
                (t.lambda[d] +
                 std::log(std::max(params.beta(d, v), 1e-300)) -
                 std::log(phi));
      }
    }
  }

  // Feedback-score likelihood.
  const double tau_sq = params.tau * params.tau;
  for (size_t o = 0; o < data.observations.size(); ++o) {
    const auto& obs = data.observations[o];
    const WorkerPosterior& w = state.workers[obs.worker];
    const TaskPosterior& t = state.tasks[obs.task];
    const double mean = w.lambda.Dot(t.lambda);
    double second = mean * mean;
    for (size_t d = 0; d < k; ++d) {
      second += w.lambda[d] * w.lambda[d] * t.nu_sq[d] +
                t.lambda[d] * t.lambda[d] * w.nu_sq[d] +
                w.nu_sq[d] * t.nu_sq[d];
    }
    const double moment =
        scores[o] * scores[o] - 2.0 * scores[o] * mean + second;
    elbo += -0.5 * (kLog2Pi + std::log(tau_sq)) - moment / (2.0 * tau_sq);
  }
  return elbo;
}

}  // namespace crowdselect
