// Incremental worker-skill updates (paper §4.2, requirement (2): "After
// solving the task, the skills of workers involved can be updated").
//
// After a newly dispatched task is resolved and scored, the affected
// workers' posteriors are refreshed with the closed-form update of
// Eqs. 10-11 — using the task's folded-in category posterior — without
// re-running batch EM. The model parameters (priors, beta, tau) stay
// fixed until the next scheduled batch refresh.
#ifndef CROWDSELECT_MODEL_INCREMENTAL_UPDATE_H_
#define CROWDSELECT_MODEL_INCREMENTAL_UPDATE_H_

#include <vector>

#include "linalg/cholesky.h"
#include "model/fold_in.h"
#include "model/tdpm_params.h"

namespace crowdselect {

/// One scored resolution attributed to a worker: the task's category
/// posterior (from fold-in or batch inference) plus the feedback score.
struct SkillObservation {
  Vector category_mean;   ///< lambda_c of the task.
  Vector category_var;    ///< nu_c^2 of the task.
  double score = 0.0;     ///< s_ij.
};

/// Maintains per-worker sufficient statistics so each new observation is
/// an O(K^2) accumulate plus an O(K^3) solve — independent of history
/// length.
class IncrementalSkillUpdater {
 public:
  /// Snapshot of the trained model's priors. Fails if Sigma_w is not SPD.
  static Result<IncrementalSkillUpdater> Create(const TdpmModelParams& params);

  /// Per-worker accumulator state.
  struct WorkerState {
    Matrix precision;  ///< Sigma_w^{-1} + sum (lambda_c lambda_c^T + diag(nu_c^2))/tau^2.
    Vector rhs;        ///< Sigma_w^{-1} mu_w + sum s * lambda_c / tau^2.
    size_t num_observations = 0;
  };

  /// Fresh state holding only the prior.
  WorkerState NewWorkerState() const;

  /// Prior-seeded state reproducing an existing history (e.g. extracted
  /// from the batch trainer's observations).
  WorkerState StateFromHistory(const std::vector<SkillObservation>& history) const;

  /// Folds one new observation into `state`.
  void Observe(const SkillObservation& obs, WorkerState* state) const;

  /// Current posterior (Eqs. 10-11) implied by `state`.
  Result<WorkerPosterior> Posterior(const WorkerState& state) const;

  size_t num_categories() const { return mu_w_.size(); }

 private:
  IncrementalSkillUpdater() = default;

  Vector mu_w_;
  Matrix sigma_w_inv_;
  Vector sigma_w_inv_mu_;
  double inv_tau_sq_ = 1.0;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_MODEL_INCREMENTAL_UPDATE_H_
