// Incremental latent-category inference (paper §6, Algorithm 3 phase 1):
// projects a *new* task into the learned latent category space without
// re-running batch inference. The subproblem is the training E-step for
// lambda_c / nu_c with the feedback-score terms removed (Eqs. 22-23).
#ifndef CROWDSELECT_MODEL_FOLD_IN_H_
#define CROWDSELECT_MODEL_FOLD_IN_H_

#include "linalg/matrix.h"
#include "model/tdpm_params.h"
#include "text/bag_of_words.h"
#include "util/rng.h"
#include "util/status.h"

namespace crowdselect {

/// Result of projecting one task.
struct FoldInResult {
  Vector lambda;  ///< Posterior mean of the latent category vector.
  Vector nu_sq;   ///< Posterior variances.
  /// Category vector to use for selection: the posterior mean, or a
  /// sample from Normal(lambda, diag(nu_sq)) when the options request
  /// sampling (Algorithm 3 line 6).
  Vector category;
  /// Cost of the CG subproblem that produced this posterior: total inner
  /// iterations across the outer alternations, and the final gradient
  /// max-norm. Both 0 for empty tasks (prior fallback). Travels with the
  /// posterior through the serving fold-in cache, so a cache hit can
  /// still report what its entry originally cost (see QueryStats).
  int cg_iterations = 0;
  double cg_residual = 0.0;
};

/// Reusable fold-in engine. Construction precomputes Sigma_c^{-1} and
/// log(beta); FoldIn() is then cheap enough for per-query use, which is
/// what the paper's running-time figures measure.
class TaskFolder {
 public:
  /// `params` is copied; options control the CG subproblem and whether
  /// the selection-time category is sampled or the mean.
  static Result<TaskFolder> Create(const TdpmModelParams& params,
                                   TdpmOptions options);

  /// Projects a bag-of-words onto the latent category space. Terms beyond
  /// the training vocabulary are ignored; a task with no known terms
  /// falls back to the prior (lambda = mu_c).
  FoldInResult FoldIn(const BagOfWords& bag, Rng* rng = nullptr) const;

  /// The deterministic posterior part of FoldIn(): fills `lambda` and
  /// `nu_sq` but leaves `category` empty. This is the expensive CG
  /// subproblem and is what the serving engine's fold-in cache stores —
  /// sampling (when enabled) must stay per-query, so it is applied
  /// afterwards by FinalizeCategory().
  FoldInResult Posterior(const BagOfWords& bag) const;

  /// Algorithm 3 line 6: sets `result->category` to a sample from
  /// Normal(lambda, diag(nu_sq)) when the options request sampling and an
  /// rng is supplied, else to the posterior mean.
  void FinalizeCategory(FoldInResult* result, Rng* rng = nullptr) const;

  size_t num_categories() const { return mu_c_.size(); }

  /// Whether FinalizeCategory samples c_j (given an rng) instead of using
  /// the posterior mean — surfaced in EXPLAIN output.
  bool samples_category() const {
    return options_.sample_category_at_selection;
  }

 private:
  TaskFolder() = default;

  Vector mu_c_;
  Matrix sigma_c_inv_;
  Vector prior_nu_sq_;  ///< diag(Sigma_c) as the no-evidence fallback.
  Matrix log_beta_;
  TdpmOptions options_;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_MODEL_FOLD_IN_H_
