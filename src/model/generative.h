// The generative process of Algorithm 1: samples worker skills, task
// categories, task vocabularies and feedback scores from the TDPM model.
// Used (a) by the workload generators to create ground-truth worlds and
// (b) by the tests to verify that inference recovers planted structure.
#ifndef CROWDSELECT_MODEL_GENERATIVE_H_
#define CROWDSELECT_MODEL_GENERATIVE_H_

#include <vector>

#include "linalg/cholesky.h"
#include "model/tdpm_params.h"
#include "text/bag_of_words.h"
#include "util/rng.h"

namespace crowdselect {

/// Sample from Normal(mu, Sigma) via the Cholesky factor of Sigma.
Result<Vector> SampleMultivariateNormal(const Vector& mu, const Matrix& sigma,
                                        Rng* rng);

/// One sampled task: its latent category vector, token-level category
/// assignments z_p and the drawn term ids.
struct GeneratedTask {
  Vector categories;            ///< c_j.
  std::vector<size_t> z;        ///< Latent category per token.
  std::vector<TermId> tokens;   ///< Drawn vocabulary term per token.
  BagOfWords bag;               ///< Aggregated counts of `tokens`.
};

/// One sampled feedback score s_ij for an assignment (i, j).
struct GeneratedScore {
  uint32_t worker = 0;
  uint32_t task = 0;
  double score = 0.0;
};

/// A complete draw from the generative process over a fixed assignment
/// structure.
struct GeneratedWorld {
  std::vector<Vector> worker_skills;       ///< w_i per worker.
  std::vector<GeneratedTask> tasks;        ///< per task.
  std::vector<GeneratedScore> scores;      ///< per assignment a_ij = 1.
};

/// Generator implementing Algorithm 1 against fixed model parameters.
class TdpmGenerator {
 public:
  /// `params` must have consistent K across all members and a row-
  /// stochastic beta.
  explicit TdpmGenerator(TdpmModelParams params);

  /// Samples w_i ~ Normal(mu_w, Sigma_w) (Eq. 2).
  Result<Vector> SampleWorkerSkills(Rng* rng) const;

  /// Samples c_j ~ Normal(mu_c, Sigma_c) (Eq. 3) plus its tokens
  /// (Eqs. 4-5); `num_tokens` is the task length L.
  Result<GeneratedTask> SampleTask(size_t num_tokens, Rng* rng) const;

  /// Samples s_ij ~ Normal(w_i . c_j, tau) (Eq. 6).
  double SampleScore(const Vector& worker_skills, const Vector& categories,
                     Rng* rng) const;

  /// Samples one term from beta_k in O(log V) (Eq. 5); used by the answer
  /// simulator to emit on-topic answer tokens.
  TermId SampleTermFromCategory(size_t category, Rng* rng) const;

  /// Full Algorithm 1: `assignment[j]` lists the workers employed on task
  /// j (A_j); `task_lengths[j]` is L_j.
  Result<GeneratedWorld> Generate(
      const std::vector<std::vector<uint32_t>>& assignment,
      const std::vector<size_t>& task_lengths, size_t num_workers,
      Rng* rng) const;

  const TdpmModelParams& params() const { return params_; }

 private:
  TdpmModelParams params_;
  Matrix sigma_w_chol_;  ///< Cached lower Cholesky factor of Sigma_w.
  Matrix sigma_c_chol_;
  /// Per-category cumulative term distribution for O(log V) token draws.
  std::vector<std::vector<double>> beta_cdf_;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_MODEL_GENERATIVE_H_
