#include "model/selection.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace crowdselect {

TdpmSelector::TdpmSelector(TdpmOptions options)
    : options_(std::move(options)) {}

Status TdpmSelector::Train(const CrowdDatabase& db) {
  TdpmTrainData data = TdpmTrainData::FromDatabase(db, &trained_task_ids_);
  TdpmTrainer trainer(options_);
  CS_ASSIGN_OR_RETURN(fit_, trainer.Fit(data));
  CS_ASSIGN_OR_RETURN(TaskFolder folder,
                      TaskFolder::Create(fit_.params, options_));
  folder_.emplace(std::move(folder));
  trained_ = true;
  return Status::OK();
}

const Vector& TdpmSelector::WorkerSkills(WorkerId worker) const {
  CS_CHECK(trained_) << "TdpmSelector not trained";
  CS_CHECK(worker < fit_.state.workers.size()) << "unknown worker " << worker;
  return fit_.state.workers[worker].lambda;
}

Result<FoldInResult> TdpmSelector::ProjectTask(const BagOfWords& task) const {
  if (!trained_) return Status::FailedPrecondition("selector not trained");
  return folder_->FoldIn(task, &rng_);
}

Result<std::vector<RankedWorker>> TdpmSelector::SelectTopK(
    const BagOfWords& task, size_t k,
    const std::vector<WorkerId>& candidates) const {
  static obs::SpanMeter meter("select.topk");
  static obs::Counter* queries =
      obs::MetricsRegistry::Global().GetCounter("select.queries");
  obs::ScopedSpan span(meter);
  queries->Increment();
  CS_ASSIGN_OR_RETURN(FoldInResult projected, ProjectTask(task));
  // Eq. 1: R = argmax_{|R|=k} sum_{i in R} w_i (c_j)^T, i.e. the k workers
  // with the largest predictive performance.
  TopKAccumulator acc(k);
  for (WorkerId w : candidates) {
    if (w >= fit_.state.workers.size()) {
      return Status::InvalidArgument("candidate worker unknown to the model");
    }
    acc.Offer(w, fit_.state.workers[w].lambda.Dot(projected.category));
  }
  return acc.Take();
}

Status TdpmSelector::WriteBack(CrowdDatabase* db) const {
  if (!trained_) return Status::FailedPrecondition("selector not trained");
  if (db->NumWorkers() != fit_.state.workers.size()) {
    return Status::InvalidArgument("database does not match trained model");
  }
  for (WorkerId w = 0; w < fit_.state.workers.size(); ++w) {
    CS_RETURN_NOT_OK(
        db->UpdateWorkerSkills(w, fit_.state.workers[w].lambda.data()));
  }
  for (size_t j = 0; j < trained_task_ids_.size(); ++j) {
    CS_RETURN_NOT_OK(db->UpdateTaskCategories(
        trained_task_ids_[j], fit_.state.tasks[j].lambda.data()));
  }
  return Status::OK();
}

}  // namespace crowdselect
