#include "model/selection.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace crowdselect {

TdpmSelector::TdpmSelector(TdpmOptions options,
                           serve::ServeOptions serve_options)
    : options_(std::move(options)),
      engine_(std::make_unique<serve::SelectionEngine>(serve_options)) {}

Status TdpmSelector::Train(const CrowdDatabase& db) {
  TdpmTrainData data = TdpmTrainData::FromDatabase(db, &trained_task_ids_);
  TdpmTrainer trainer(options_);
  CS_ASSIGN_OR_RETURN(fit_, trainer.Fit(data));
  CS_ASSIGN_OR_RETURN(TaskFolder folder,
                      TaskFolder::Create(fit_.params, options_));
  // SetFolder drops any cached fold-ins of the previous model, and the
  // snapshot version keeps growing across retrains so readers can tell
  // the publishes apart.
  engine_->SetFolder(std::move(folder));
  engine_->PublishSnapshot(
      serve::SkillMatrixSnapshot::FromFit(fit_, ++snapshot_version_));
  worker_history_.assign(data.num_workers, {});
  for (const TdpmTrainData::Observation& obs : data.observations) {
    worker_history_[obs.worker].emplace_back(obs.task, obs.score);
  }
  updater_.reset();
  worker_states_.clear();
  trained_ = true;
  return Status::OK();
}

const Vector& TdpmSelector::WorkerSkills(WorkerId worker) const {
  CS_CHECK(trained_) << "TdpmSelector not trained";
  CS_CHECK(worker < fit_.state.workers.size()) << "unknown worker " << worker;
  return fit_.state.workers[worker].lambda;
}

Result<FoldInResult> TdpmSelector::ProjectTask(const BagOfWords& task) const {
  if (!trained_) return Status::FailedPrecondition("selector not trained");
  return engine_->Project(task, &rng_);
}

Result<std::vector<RankedWorker>> TdpmSelector::SelectTopKExplained(
    const BagOfWords& task, size_t k, const std::vector<WorkerId>& candidates,
    serve::QueryStats* stats) const {
  static obs::SpanMeter meter("select.topk");
  static obs::Counter* queries =
      obs::MetricsRegistry::Global().GetCounter("select.queries");
  if (!trained_) return Status::FailedPrecondition("selector not trained");
  // Validation precedes the query meter and all fold-in work, so a
  // malformed query is rejected cheaply and never counted as served.
  CS_RETURN_NOT_OK(
      serve::ValidateCandidates(candidates, fit_.state.workers.size()));
  obs::ScopedSpan span(meter);
  queries->Increment();
  // Eq. 1: R = argmax_{|R|=k} sum_{i in R} w_i (c_j)^T, evaluated by the
  // engine's blocked scan over the published snapshot.
  return engine_->SelectTopK(task, k, candidates, &rng_, stats);
}

Status TdpmSelector::EnsureUpdater() {
  if (updater_.has_value()) return Status::OK();
  CS_ASSIGN_OR_RETURN(IncrementalSkillUpdater updater,
                      IncrementalSkillUpdater::Create(fit_.params));
  updater_.emplace(std::move(updater));
  worker_states_.assign(fit_.state.workers.size(), std::nullopt);
  return Status::OK();
}

void TdpmSelector::EnsureWorkerState(WorkerId worker) {
  if (worker_states_[worker].has_value()) return;
  std::vector<SkillObservation> history;
  history.reserve(worker_history_[worker].size());
  for (const auto& [task_index, score] : worker_history_[worker]) {
    history.push_back(SkillObservation{fit_.state.tasks[task_index].lambda,
                                       fit_.state.tasks[task_index].nu_sq,
                                       score});
  }
  worker_states_[worker] = updater_->StateFromHistory(history);
}

Status TdpmSelector::ObserveResolvedTask(
    const BagOfWords& task,
    const std::vector<std::pair<WorkerId, double>>& scored) {
  if (!trained_) return Status::FailedPrecondition("selector not trained");
  if (scored.empty()) return Status::OK();
  std::vector<WorkerId> workers;
  workers.reserve(scored.size());
  for (const auto& [w, score] : scored) workers.push_back(w);
  CS_RETURN_NOT_OK(
      serve::ValidateCandidates(workers, fit_.state.workers.size()));
  CS_RETURN_NOT_OK(EnsureUpdater());
  CS_ASSIGN_OR_RETURN(FoldInResult projected, engine_->Project(task, &rng_));
  SkillObservation obs;
  obs.category_mean = projected.lambda;
  obs.category_var = projected.nu_sq;
  std::vector<std::pair<WorkerId, Vector>> rows;
  rows.reserve(scored.size());
  for (const auto& [w, score] : scored) {
    EnsureWorkerState(w);
    obs.score = score;
    updater_->Observe(obs, &*worker_states_[w]);
    CS_ASSIGN_OR_RETURN(WorkerPosterior posterior,
                        updater_->Posterior(*worker_states_[w]));
    // Keep the batch-fit view coherent so WorkerSkills()/WriteBack()
    // reflect the refreshed posterior too.
    fit_.state.workers[w] = std::move(posterior);
    rows.emplace_back(w, fit_.state.workers[w].lambda);
  }
  std::shared_ptr<const serve::SkillMatrixSnapshot> current =
      engine_->snapshot();
  CS_CHECK(current != nullptr);
  engine_->PublishSnapshot(current->WithUpdatedRows(rows));
  snapshot_version_ = engine_->snapshot()->version();
  return Status::OK();
}

void TdpmSelector::PublishWorkerPosteriors(
    const std::vector<WorkerPosterior>& workers) {
  CS_CHECK(trained_) << "TdpmSelector not trained";
  CS_CHECK(workers.size() == fit_.state.workers.size())
      << "worker count mismatch";
  fit_.state.workers = workers;
  // External updates invalidate any lazily seeded incremental states.
  updater_.reset();
  worker_states_.clear();
  engine_->PublishSnapshot(
      serve::SkillMatrixSnapshot::FromPosteriors(workers,
                                                 ++snapshot_version_));
}

Status TdpmSelector::WriteBack(CrowdDatabase* db) const {
  if (!trained_) return Status::FailedPrecondition("selector not trained");
  if (db->NumWorkers() != fit_.state.workers.size()) {
    return Status::InvalidArgument("database does not match trained model");
  }
  for (WorkerId w = 0; w < fit_.state.workers.size(); ++w) {
    CS_RETURN_NOT_OK(
        db->UpdateWorkerSkills(w, fit_.state.workers[w].lambda.data()));
  }
  for (size_t j = 0; j < trained_task_ids_.size(); ++j) {
    CS_RETURN_NOT_OK(db->UpdateTaskCategories(
        trained_task_ids_[j], fit_.state.tasks[j].lambda.data()));
  }
  return Status::OK();
}

}  // namespace crowdselect
