#include "model/generative.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace crowdselect {

Result<Vector> SampleMultivariateNormal(const Vector& mu, const Matrix& sigma,
                                        Rng* rng) {
  CS_ASSIGN_OR_RETURN(Cholesky chol, Cholesky::FactorizeWithJitter(sigma));
  Vector z(mu.size());
  for (size_t i = 0; i < z.size(); ++i) z[i] = rng->Normal();
  Vector out = mu;
  // out += L z.
  const Matrix& l = chol.lower();
  for (size_t i = 0; i < mu.size(); ++i) {
    double acc = 0.0;
    for (size_t j = 0; j <= i; ++j) acc += l(i, j) * z[j];
    out[i] += acc;
  }
  return out;
}

namespace {

// Samples from the lower-triangular factor directly (avoids refactorizing).
Vector SampleWithFactor(const Vector& mu, const Matrix& l, Rng* rng) {
  Vector z(mu.size());
  for (size_t i = 0; i < z.size(); ++i) z[i] = rng->Normal();
  Vector out = mu;
  for (size_t i = 0; i < mu.size(); ++i) {
    double acc = 0.0;
    for (size_t j = 0; j <= i; ++j) acc += l(i, j) * z[j];
    out[i] += acc;
  }
  return out;
}

}  // namespace

TdpmGenerator::TdpmGenerator(TdpmModelParams params)
    : params_(std::move(params)) {
  auto chol_w = Cholesky::FactorizeWithJitter(params_.sigma_w);
  CS_CHECK(chol_w.ok()) << "Sigma_w not PSD: " << chol_w.status().ToString();
  sigma_w_chol_ = chol_w->lower();
  auto chol_c = Cholesky::FactorizeWithJitter(params_.sigma_c);
  CS_CHECK(chol_c.ok()) << "Sigma_c not PSD: " << chol_c.status().ToString();
  sigma_c_chol_ = chol_c->lower();

  beta_cdf_.resize(params_.num_categories());
  for (size_t k = 0; k < params_.num_categories(); ++k) {
    auto& cdf = beta_cdf_[k];
    cdf.resize(params_.vocab_size());
    double acc = 0.0;
    for (size_t t = 0; t < params_.vocab_size(); ++t) {
      acc += params_.beta(k, t);
      cdf[t] = acc;
    }
  }
}

Result<Vector> TdpmGenerator::SampleWorkerSkills(Rng* rng) const {
  return SampleWithFactor(params_.mu_w, sigma_w_chol_, rng);
}

Result<GeneratedTask> TdpmGenerator::SampleTask(size_t num_tokens,
                                                Rng* rng) const {
  GeneratedTask task;
  task.categories = SampleWithFactor(params_.mu_c, sigma_c_chol_, rng);

  // z_p ~ Discrete(logistic(c_j)) (Eq. 4).
  const Vector softmax = task.categories.Softmax();
  const size_t v = params_.vocab_size();
  if (v == 0) return Status::FailedPrecondition("empty vocabulary");
  task.z.reserve(num_tokens);
  task.tokens.reserve(num_tokens);
  std::vector<double> topic_weights(softmax.data());
  for (size_t p = 0; p < num_tokens; ++p) {
    const size_t zp = rng->Discrete(topic_weights);
    CS_DCHECK(zp < params_.num_categories());
    // v_p ~ beta_{z_p} (Eq. 5), via inverse CDF on the cached prefix sums.
    const auto& cdf = beta_cdf_[zp];
    const double u = rng->Uniform() * cdf.back();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const TermId term = static_cast<TermId>(
        std::min<size_t>(static_cast<size_t>(it - cdf.begin()), v - 1));
    task.z.push_back(zp);
    task.tokens.push_back(term);
    task.bag.Add(term);
  }
  return task;
}

double TdpmGenerator::SampleScore(const Vector& worker_skills,
                                  const Vector& categories, Rng* rng) const {
  // s_ij ~ Normal(w_i . c_j, tau) (Eq. 6).
  return rng->Normal(worker_skills.Dot(categories), params_.tau);
}

TermId TdpmGenerator::SampleTermFromCategory(size_t category, Rng* rng) const {
  CS_DCHECK(category < beta_cdf_.size());
  const auto& cdf = beta_cdf_[category];
  const double u = rng->Uniform() * cdf.back();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return static_cast<TermId>(std::min<size_t>(
      static_cast<size_t>(it - cdf.begin()), cdf.size() - 1));
}

Result<GeneratedWorld> TdpmGenerator::Generate(
    const std::vector<std::vector<uint32_t>>& assignment,
    const std::vector<size_t>& task_lengths, size_t num_workers,
    Rng* rng) const {
  if (assignment.size() != task_lengths.size()) {
    return Status::InvalidArgument(
        "assignment and task_lengths must have one entry per task");
  }
  GeneratedWorld world;
  world.worker_skills.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    CS_ASSIGN_OR_RETURN(Vector skills, SampleWorkerSkills(rng));
    world.worker_skills.push_back(std::move(skills));
  }
  world.tasks.reserve(assignment.size());
  for (size_t j = 0; j < assignment.size(); ++j) {
    CS_ASSIGN_OR_RETURN(GeneratedTask task, SampleTask(task_lengths[j], rng));
    world.tasks.push_back(std::move(task));
  }
  for (size_t j = 0; j < assignment.size(); ++j) {
    for (uint32_t i : assignment[j]) {
      if (i >= num_workers) {
        return Status::InvalidArgument("assignment references unknown worker");
      }
      GeneratedScore score;
      score.worker = i;
      score.task = static_cast<uint32_t>(j);
      score.score = SampleScore(world.worker_skills[i],
                                world.tasks[j].categories, rng);
      world.scores.push_back(score);
    }
  }
  return world;
}

}  // namespace crowdselect
