// Exploration-aware crowd-selection (extension; see DESIGN.md ablations).
//
// Greedy Eq.-1 selection never tries workers the model is uncertain
// about, so a newly joined expert is starved of tasks. This module adds
// two classic remedies on top of the TDPM posterior, which — unlike point
// -estimate models — carries per-worker uncertainty (nu_w^2) for free:
//   * UCB:      score = lambda_w . c + beta * sqrt(sum_k c_k^2 nu_w_k^2)
//   * Thompson: score = w~ . c with w~ ~ Normal(lambda_w, diag(nu_w^2))
#ifndef CROWDSELECT_MODEL_EXPLORATION_H_
#define CROWDSELECT_MODEL_EXPLORATION_H_

#include <vector>

#include "crowddb/selector_interface.h"
#include "model/tdpm_params.h"
#include "util/rng.h"

namespace crowdselect {

enum class ExplorationPolicy {
  kGreedy,    ///< Paper's Eq. 1: posterior-mean ranking.
  kUcb,       ///< Optimism bonus scaled by posterior std.
  kThompson,  ///< Posterior sampling.
};

struct ExplorationOptions {
  ExplorationPolicy policy = ExplorationPolicy::kGreedy;
  /// UCB exploration coefficient (ignored by the other policies).
  double ucb_beta = 1.0;
  uint64_t seed = 0xACE;
};

/// Ranks workers under an exploration policy given their posteriors and a
/// task's category vector. Stateless apart from the Thompson RNG.
class ExplorationRanker {
 public:
  explicit ExplorationRanker(ExplorationOptions options)
      : options_(options), rng_(options.seed) {}

  /// Predictive mean of worker w on category c: lambda . c.
  static double PredictiveMean(const WorkerPosterior& w, const Vector& c);
  /// Predictive variance contributed by skill uncertainty:
  /// sum_k c_k^2 nu_k^2.
  static double PredictiveVariance(const WorkerPosterior& w, const Vector& c);

  /// Exploration score of one worker under the configured policy.
  double Score(const WorkerPosterior& w, const Vector& category);

  /// Top-k candidates under the policy (deterministic for greedy/UCB;
  /// stochastic for Thompson).
  std::vector<RankedWorker> SelectTopK(
      const std::vector<WorkerPosterior>& posteriors, const Vector& category,
      size_t k, const std::vector<WorkerId>& candidates);

  const ExplorationOptions& options() const { return options_; }

 private:
  ExplorationOptions options_;
  Rng rng_;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_MODEL_EXPLORATION_H_
