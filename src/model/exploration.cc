#include "model/exploration.h"

#include <cmath>

#include "util/logging.h"

namespace crowdselect {

double ExplorationRanker::PredictiveMean(const WorkerPosterior& w,
                                         const Vector& c) {
  return w.lambda.Dot(c);
}

double ExplorationRanker::PredictiveVariance(const WorkerPosterior& w,
                                             const Vector& c) {
  CS_DCHECK(w.nu_sq.size() == c.size());
  double acc = 0.0;
  for (size_t d = 0; d < c.size(); ++d) acc += c[d] * c[d] * w.nu_sq[d];
  return acc;
}

double ExplorationRanker::Score(const WorkerPosterior& w,
                                const Vector& category) {
  switch (options_.policy) {
    case ExplorationPolicy::kGreedy:
      return PredictiveMean(w, category);
    case ExplorationPolicy::kUcb:
      return PredictiveMean(w, category) +
             options_.ucb_beta * std::sqrt(PredictiveVariance(w, category));
    case ExplorationPolicy::kThompson: {
      double acc = 0.0;
      for (size_t d = 0; d < category.size(); ++d) {
        acc += category[d] *
               rng_.Normal(w.lambda[d], std::sqrt(w.nu_sq[d]));
      }
      return acc;
    }
  }
  return 0.0;
}

std::vector<RankedWorker> ExplorationRanker::SelectTopK(
    const std::vector<WorkerPosterior>& posteriors, const Vector& category,
    size_t k, const std::vector<WorkerId>& candidates) {
  TopKAccumulator acc(k);
  for (WorkerId w : candidates) {
    CS_CHECK(w < posteriors.size()) << "unknown worker " << w;
    acc.Offer(w, Score(posteriors[w], category));
  }
  return acc.Take();
}

}  // namespace crowdselect
