// Evidence lower bound L'(q) for TDPM (paper §5.2). Used as Algorithm 2's
// convergence criterion and, in the tests, to verify that each EM iteration
// is (approximately) monotone.
#ifndef CROWDSELECT_MODEL_ELBO_H_
#define CROWDSELECT_MODEL_ELBO_H_

#include <vector>

#include "model/tdpm_params.h"
#include "model/variational.h"

namespace crowdselect {

/// Computes the full evidence lower bound
///   L'(q) = E_q[log p(W, C, Z, V, S)] + H[q]
/// with the softmax log-normalizer replaced by its Taylor bound in eps
/// (paper §5.2). `scores` holds the (possibly ablated) feedback score of
/// each observation, aligned with data.observations.
double ComputeElbo(const TdpmTrainData& data, const TdpmModelParams& params,
                   const TdpmVariationalState& state,
                   const std::vector<double>& scores);

}  // namespace crowdselect

#endif  // CROWDSELECT_MODEL_ELBO_H_
