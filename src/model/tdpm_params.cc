#include "model/tdpm_params.h"

#include "util/string_util.h"

namespace crowdselect {

Status TdpmOptions::Validate() const {
  if (num_categories == 0) {
    return Status::InvalidArgument("num_categories must be >= 1");
  }
  if (max_em_iterations <= 0) {
    return Status::InvalidArgument("max_em_iterations must be positive");
  }
  if (em_tolerance < 0.0) {
    return Status::InvalidArgument("em_tolerance must be non-negative");
  }
  if (variance_floor <= 0.0) {
    return Status::InvalidArgument("variance_floor must be positive");
  }
  if (beta_smoothing <= 0.0) {
    return Status::InvalidArgument("beta_smoothing must be positive");
  }
  if (nu_c_iterations <= 0) {
    return Status::InvalidArgument("nu_c_iterations must be positive");
  }
  return Status::OK();
}

TdpmModelParams TdpmModelParams::Init(size_t k, size_t vocab_size) {
  TdpmModelParams params;
  params.mu_w = Vector(k, 0.0);
  params.sigma_w = Matrix::Identity(k);
  params.mu_c = Vector(k, 0.0);
  params.sigma_c = Matrix::Identity(k);
  params.tau = 1.0;
  params.beta = Matrix(k, vocab_size,
                       vocab_size > 0 ? 1.0 / static_cast<double>(vocab_size)
                                      : 0.0);
  return params;
}

}  // namespace crowdselect
