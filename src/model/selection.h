// TDPM crowd-selection (paper §6, Algorithm 3 + Eq. 1): the paper's
// proposed algorithm behind the common CrowdSelector interface.
#ifndef CROWDSELECT_MODEL_SELECTION_H_
#define CROWDSELECT_MODEL_SELECTION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crowddb/selector_interface.h"
#include "model/fold_in.h"
#include "model/variational.h"

namespace crowdselect {

/// Task-Driven Probabilistic Model selector.
///
/// Train() runs variational EM (Algorithm 2) over the resolved tasks in
/// the database; SelectTopK() projects the incoming task into the latent
/// category space (Algorithm 3) and ranks workers by the predictive
/// performance w_i . c_j (Eq. 1), keeping the top k with a bounded heap.
class TdpmSelector : public CrowdSelector {
 public:
  explicit TdpmSelector(TdpmOptions options);

  std::string Name() const override { return "TDPM"; }
  Status Train(const CrowdDatabase& db) override;
  Result<std::vector<RankedWorker>> SelectTopK(
      const BagOfWords& task, size_t k,
      const std::vector<WorkerId>& candidates) const override;

  /// Latent skills of a worker (posterior mean); prior mean for workers
  /// with no scored history. Train() must have succeeded.
  const Vector& WorkerSkills(WorkerId worker) const;

  /// Projects a task (exposed for the incremental example & benches).
  Result<FoldInResult> ProjectTask(const BagOfWords& task) const;

  /// Fit diagnostics of the last Train() call.
  const TdpmFitResult& fit() const { return fit_; }
  bool trained() const { return trained_; }

  /// Writes the inferred skills / categories back into `db` ("crowd
  /// update" in the paper's Fig. 1). `db` must be the trained database.
  Status WriteBack(CrowdDatabase* db) const;

 private:
  TdpmOptions options_;
  TdpmFitResult fit_;
  std::optional<TaskFolder> folder_;
  std::vector<TaskId> trained_task_ids_;  ///< training index -> TaskId.
  bool trained_ = false;
  mutable Rng rng_{0xC0FFEE};  ///< Only used when sampling categories.
};

}  // namespace crowdselect

#endif  // CROWDSELECT_MODEL_SELECTION_H_
