// TDPM crowd-selection (paper §6, Algorithm 3 + Eq. 1): the paper's
// proposed algorithm behind the common CrowdSelector interface, served
// through the serving engine (immutable skill snapshots, fold-in cache,
// blocked parallel scan).
#ifndef CROWDSELECT_MODEL_SELECTION_H_
#define CROWDSELECT_MODEL_SELECTION_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "crowddb/selector_interface.h"
#include "model/crowd_model.h"
#include "model/fold_in.h"
#include "model/incremental_update.h"
#include "model/variational.h"
#include "serve/selection_engine.h"

namespace crowdselect {

/// Task-Driven Probabilistic Model selector.
///
/// Train() runs variational EM (Algorithm 2) over the resolved tasks in
/// the database, then hands the result to a serve::SelectionEngine: the
/// worker posterior means become an immutable SkillMatrixSnapshot and the
/// fold-in projector is attached. SelectTopK() projects the incoming task
/// into the latent category space (Algorithm 3, through the engine's
/// fold-in cache) and ranks workers by the predictive performance
/// w_i . c_j (Eq. 1) with the engine's blocked parallel top-k scan.
///
/// ObserveResolvedTask() refreshes the involved workers' posteriors with
/// the closed-form incremental update (§4.2) and publishes a new snapshot
/// version, so serving picks up resolved feedback without batch EM.
class TdpmSelector : public CrowdModel {
 public:
  explicit TdpmSelector(TdpmOptions options,
                        serve::ServeOptions serve_options = {});

  std::string Name() const override { return "TDPM"; }
  std::string ModelId() const override { return "tdpm"; }
  Status Train(const CrowdDatabase& db) override;

  /// SelectTopK with the EXPLAIN payload: identical ranking, plus the
  /// engine's request-scoped QueryStats (snapshot version, cache outcome,
  /// CG cost, stage latencies, score decomposition) in `*stats`.
  Result<std::vector<RankedWorker>> SelectTopKExplained(
      const BagOfWords& task, size_t k,
      const std::vector<WorkerId>& candidates,
      serve::QueryStats* stats) const override;

  /// CrowdModel fold-in: ProjectTask under its interface name.
  Result<FoldInResult> FoldInTask(const BagOfWords& task) const override {
    return ProjectTask(task);
  }

  std::shared_ptr<const serve::SkillMatrixSnapshot> CurrentSnapshot()
      const override {
    return engine_->snapshot();
  }

  /// Incremental skill refresh (paper §4.2): folds the resolved task in,
  /// applies Eqs. 10-11 to each scored worker, and publishes an updated
  /// snapshot. Worker histories are seeded from the last batch fit.
  Status ObserveResolvedTask(
      const BagOfWords& task,
      const std::vector<std::pair<WorkerId, double>>& scored) override;

  /// Latent skills of a worker (posterior mean); prior mean for workers
  /// with no scored history. Train() must have succeeded.
  const Vector& WorkerSkills(WorkerId worker) const;

  /// Projects a task (exposed for the incremental example & benches).
  /// Goes through the engine's fold-in cache.
  Result<FoldInResult> ProjectTask(const BagOfWords& task) const;

  /// Replaces all worker posteriors (e.g. computed externally with an
  /// IncrementalSkillUpdater) and publishes a new snapshot version.
  void PublishWorkerPosteriors(const std::vector<WorkerPosterior>& workers);

  /// Fit diagnostics of the last Train() call.
  const TdpmFitResult& fit() const { return fit_; }
  bool trained() const override { return trained_; }

  /// The serving engine (never null). Exposed for benches and for hosts
  /// that want to publish snapshots or inspect the fold-in cache.
  serve::SelectionEngine* engine() { return engine_.get(); }
  const serve::SelectionEngine* engine() const { return engine_.get(); }

  /// Writes the inferred skills / categories back into `db` ("crowd
  /// update" in the paper's Fig. 1). `db` must be the trained database.
  Status WriteBack(CrowdDatabase* db) const;

 private:
  Status EnsureUpdater();
  void EnsureWorkerState(WorkerId worker);

  TdpmOptions options_;
  TdpmFitResult fit_;
  std::unique_ptr<serve::SelectionEngine> engine_;
  std::vector<TaskId> trained_task_ids_;  ///< training index -> TaskId.
  /// Per-worker scored training history: (training task index, score).
  /// Seeds the incremental updater's sufficient statistics.
  std::vector<std::vector<std::pair<uint32_t, double>>> worker_history_;
  uint64_t snapshot_version_ = 0;
  bool trained_ = false;
  mutable Rng rng_{0xC0FFEE};  ///< Only used when sampling categories.
  /// Live-update machinery, built lazily on first ObserveResolvedTask().
  std::optional<IncrementalSkillUpdater> updater_;
  std::vector<std::optional<IncrementalSkillUpdater::WorkerState>>
      worker_states_;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_MODEL_SELECTION_H_
