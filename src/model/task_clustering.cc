#include "model/task_clustering.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace crowdselect {

namespace {

double BagNorm(const BagOfWords& bag) {
  double sq = 0.0;
  for (const auto& e : bag.entries()) {
    sq += static_cast<double>(e.count) * static_cast<double>(e.count);
  }
  return std::sqrt(sq);
}

/// Sparse dot of a raw count bag with a dense vector.
double BagDot(const BagOfWords& bag, const Vector& dense) {
  double dot = 0.0;
  for (const auto& e : bag.entries()) {
    if (e.term < dense.size()) dot += e.count * dense[e.term];
  }
  return dot;
}

void Normalize(Vector* v) {
  const double norm = v->Norm();
  if (norm > 0.0) *v *= 1.0 / norm;
}

}  // namespace

std::vector<double> TaskClustering::Similarities(const BagOfWords& bag) const {
  std::vector<double> sims(centroids.size(), 0.0);
  const double norm = BagNorm(bag);
  if (norm == 0.0) return sims;
  for (size_t c = 0; c < centroids.size(); ++c) {
    sims[c] = BagDot(bag, centroids[c]) / norm;
  }
  return sims;
}

uint32_t TaskClustering::Assign(const BagOfWords& bag, double* similarity,
                                double* margin) const {
  const std::vector<double> sims = Similarities(bag);
  uint32_t best = 0;
  double best_sim = sims.empty() ? 0.0 : sims[0];
  double second = 0.0;
  for (uint32_t c = 1; c < sims.size(); ++c) {
    if (sims[c] > best_sim) {
      second = best_sim;
      best_sim = sims[c];
      best = c;
    } else if (sims[c] > second) {
      second = sims[c];
    }
  }
  if (similarity != nullptr) *similarity = best_sim;
  if (margin != nullptr) *margin = sims.size() > 1 ? best_sim - second : best_sim;
  return best;
}

TaskClustering ClusterTasksByType(const std::vector<BagOfWords>& bags,
                                  size_t vocab_size, size_t num_clusters,
                                  Rng* rng, size_t max_iterations) {
  CS_CHECK(rng != nullptr);
  TaskClustering out;
  out.assignment.assign(bags.size(), 0);

  std::vector<size_t> nonempty;
  for (size_t i = 0; i < bags.size(); ++i) {
    if (!bags[i].empty()) nonempty.push_back(i);
  }
  const size_t k =
      std::max<size_t>(1, std::min(num_clusters, std::max<size_t>(
                                                     1, nonempty.size())));
  out.centroids.assign(k, Vector(vocab_size));
  if (nonempty.empty()) {
    return out;  // Degenerate corpus: one zero centroid, all tasks type 0.
  }

  // Seed: first centroid uniformly among non-empty tasks, the rest by
  // farthest-point sampling under cosine distance (k-means++ flavour,
  // deterministic given the rng).
  auto set_centroid_from_bag = [&](size_t c, const BagOfWords& bag) {
    Vector& cent = out.centroids[c];
    cent.Resize(vocab_size);
    for (const auto& e : bag.entries()) {
      if (e.term < vocab_size) cent[e.term] = e.count;
    }
    Normalize(&cent);
  };
  std::vector<size_t> seeds;
  seeds.push_back(nonempty[rng->UniformInt(nonempty.size())]);
  set_centroid_from_bag(0, bags[seeds[0]]);
  for (size_t c = 1; c < k; ++c) {
    size_t farthest = nonempty[0];
    double farthest_dist = -1.0;
    for (size_t i : nonempty) {
      double best_sim = -1.0;
      for (size_t s = 0; s < c; ++s) {
        const double sim =
            BagDot(bags[i], out.centroids[s]) / BagNorm(bags[i]);
        best_sim = std::max(best_sim, sim);
      }
      const double dist = 1.0 - best_sim;
      if (dist > farthest_dist) {
        farthest_dist = dist;
        farthest = i;
      }
    }
    seeds.push_back(farthest);
    set_centroid_from_bag(c, bags[farthest]);
  }

  // Lloyd iterations with cosine assignment and renormalized means.
  for (size_t iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    for (size_t i : nonempty) {
      uint32_t best = 0;
      double best_sim = -2.0;
      const double norm = BagNorm(bags[i]);
      for (uint32_t c = 0; c < k; ++c) {
        const double sim = BagDot(bags[i], out.centroids[c]) / norm;
        if (sim > best_sim) {
          best_sim = sim;
          best = c;
        }
      }
      if (out.assignment[i] != best) {
        out.assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    std::vector<Vector> sums(k, Vector(vocab_size));
    std::vector<size_t> counts(k, 0);
    for (size_t i : nonempty) {
      const uint32_t c = out.assignment[i];
      const double norm = BagNorm(bags[i]);
      for (const auto& e : bags[i].entries()) {
        if (e.term < vocab_size) sums[c][e.term] += e.count / norm;
      }
      ++counts[c];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Reseed an empty cluster from the task worst-fit by its current
        // centroid, so k survives degenerate seeding.
        size_t worst = nonempty[0];
        double worst_sim = 2.0;
        for (size_t i : nonempty) {
          const double sim = BagDot(bags[i], out.centroids[out.assignment[i]]) /
                             BagNorm(bags[i]);
          if (sim < worst_sim) {
            worst_sim = sim;
            worst = i;
          }
        }
        set_centroid_from_bag(c, bags[worst]);
        continue;
      }
      out.centroids[c] = std::move(sums[c]);
      Normalize(&out.centroids[c]);
    }
  }
  return out;
}

}  // namespace crowdselect
