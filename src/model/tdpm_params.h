// Parameter containers for the Task-Driven Probabilistic Model (TDPM):
// the model parameters phi = {mu_w, Sigma_w, mu_c, Sigma_c, tau, beta}
// (paper §4.3) and the variational parameters phi' = {lambda_w, nu_w^2,
// lambda_c, nu_c^2, phi, eps} (paper §5.1).
#ifndef CROWDSELECT_MODEL_TDPM_PARAMS_H_
#define CROWDSELECT_MODEL_TDPM_PARAMS_H_

#include <cstdint>
#include <vector>

#include "linalg/conjugate_gradient.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace crowdselect {

/// Hyper-parameters and solver knobs for TDPM training.
struct TdpmOptions {
  /// Number of latent categories K (the paper sweeps 10..50).
  size_t num_categories = 10;
  /// Outer variational EM iterations (Algorithm 2's n_max).
  int max_em_iterations = 50;
  /// Stop when the relative ELBO improvement falls below this
  /// (Algorithm 2's epsilon).
  double em_tolerance = 1e-5;
  /// Conjugate-gradient settings for the (lambda_c) subproblem. The
  /// subproblem is convex and warm-started from the previous outer
  /// iteration, so a modest budget suffices.
  CgOptions cg{.max_iterations = 60, .gradient_tolerance = 1e-4};
  /// Inner fixed-point iterations for nu_c^2.
  int nu_c_iterations = 8;
  /// Constrain Sigma_w / Sigma_c to diagonal ("special way" in §4.3.1;
  /// ablation A2). Full covariance is the paper's general form.
  bool diagonal_covariance = false;
  /// When false, the feedback-score terms are removed from inference and
  /// skills are estimated from content only (ablation A1).
  bool use_feedback = true;
  /// Floor for tau^2 and the nu^2 variances, for numeric safety.
  double variance_floor = 1e-6;
  /// Floor applied to the diagonals of Sigma_w / Sigma_c after each
  /// M-step. Short documents provide little spread in lambda_c, so the
  /// empirical covariance update can enter a shrinkage spiral (Sigma -> 0
  /// collapses every posterior onto the prior mean); the floor keeps the
  /// latent space alive. Set to 0 for the paper's literal update.
  double prior_variance_floor = 0.1;
  /// Additive smoothing for the language model rows beta_k.
  double beta_smoothing = 1e-3;
  /// RNG seed for initialization.
  uint64_t seed = 42;
  /// Worker threads for the per-worker / per-task E-step (0 = hardware).
  size_t num_threads = 1;
  /// When true, Algorithm 3 samples c_j ~ Normal(lambda_c, nu_c^2) as
  /// written in the paper; when false it uses the posterior mean
  /// (deterministic, and what the evaluation uses).
  bool sample_category_at_selection = false;

  /// Validates ranges (K >= 1 etc.).
  Status Validate() const;
};

/// Model parameters phi.
struct TdpmModelParams {
  Vector mu_w;      ///< Prior mean of worker skills, size K.
  Matrix sigma_w;   ///< Prior covariance of worker skills, K x K.
  Vector mu_c;      ///< Prior mean of task categories, size K.
  Matrix sigma_c;   ///< Prior covariance of task categories, K x K.
  double tau = 1.0; ///< Feedback-score noise standard deviation.
  /// Language model: beta(k, v) = p(term v | category k); rows sum to 1.
  Matrix beta;

  size_t num_categories() const { return mu_w.size(); }
  size_t vocab_size() const { return beta.cols(); }

  /// Identity-covariance, zero-mean initialization with a uniform
  /// language model.
  static TdpmModelParams Init(size_t k, size_t vocab_size);
};

/// Per-worker variational posterior q(w_i) = Normal(lambda, diag(nu_sq)).
struct WorkerPosterior {
  Vector lambda;  ///< Posterior mean of skills.
  Vector nu_sq;   ///< Posterior (diagonal) variances.
};

/// Per-task variational posterior q(c_j) plus the token-level parameters.
struct TaskPosterior {
  Vector lambda;  ///< Posterior mean of the latent category vector.
  Vector nu_sq;   ///< Posterior variances.
  double eps = 1.0;  ///< Taylor-bound parameter eps_j (Eq. 13).
  /// phi(p, k): responsibility of category k for the p-th *distinct* term
  /// of the task (identical tokens share one row). Row p aligns with the
  /// task's BagOfWords entries order.
  Matrix phi;
};

/// Full variational state over M workers and N tasks.
struct TdpmVariationalState {
  std::vector<WorkerPosterior> workers;
  std::vector<TaskPosterior> tasks;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_MODEL_TDPM_PARAMS_H_
