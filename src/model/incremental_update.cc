#include "model/incremental_update.h"

#include "obs/metrics.h"

namespace crowdselect {

Result<IncrementalSkillUpdater> IncrementalSkillUpdater::Create(
    const TdpmModelParams& params) {
  IncrementalSkillUpdater updater;
  updater.mu_w_ = params.mu_w;
  CS_ASSIGN_OR_RETURN(Cholesky chol,
                      Cholesky::FactorizeWithJitter(params.sigma_w));
  updater.sigma_w_inv_ = chol.Inverse();
  updater.sigma_w_inv_mu_ = updater.sigma_w_inv_.Multiply(params.mu_w);
  if (params.tau <= 0.0) {
    return Status::InvalidArgument("tau must be positive");
  }
  updater.inv_tau_sq_ = 1.0 / (params.tau * params.tau);
  return updater;
}

IncrementalSkillUpdater::WorkerState
IncrementalSkillUpdater::NewWorkerState() const {
  WorkerState state;
  state.precision = sigma_w_inv_;
  state.rhs = sigma_w_inv_mu_;
  return state;
}

IncrementalSkillUpdater::WorkerState
IncrementalSkillUpdater::StateFromHistory(
    const std::vector<SkillObservation>& history) const {
  WorkerState state = NewWorkerState();
  for (const auto& obs : history) Observe(obs, &state);
  return state;
}

void IncrementalSkillUpdater::Observe(const SkillObservation& obs,
                                      WorkerState* state) const {
  // `obs` (the parameter) shadows the namespace here; qualify from root.
  static ::crowdselect::obs::Counter* observations =
      ::crowdselect::obs::MetricsRegistry::Global().GetCounter(
          "incremental.observations");
  observations->Increment();
  CS_DCHECK(obs.category_mean.size() == num_categories());
  CS_DCHECK(obs.category_var.size() == num_categories());
  state->precision.AddOuter(obs.category_mean, inv_tau_sq_);
  state->precision.AddDiagonal(obs.category_var, inv_tau_sq_);
  state->rhs.Axpy(obs.score * inv_tau_sq_, obs.category_mean);
  ++state->num_observations;
}

Result<WorkerPosterior> IncrementalSkillUpdater::Posterior(
    const WorkerState& state) const {
  // Deliberately not span-instrumented: this is the O(K^2)-per-observation
  // fast path (§4.2 req. (2)), microseconds per call — a span would tax it
  // double digits percent. The observation counter above suffices.
  CS_ASSIGN_OR_RETURN(Cholesky chol,
                      Cholesky::FactorizeWithJitter(state.precision));
  WorkerPosterior posterior;
  posterior.lambda = chol.Solve(state.rhs);
  posterior.nu_sq = Vector(num_categories());
  for (size_t d = 0; d < num_categories(); ++d) {
    // Eq. 11: only the diagonal precision contributes.
    posterior.nu_sq[d] = 1.0 / state.precision(d, d);
  }
  return posterior;
}

}  // namespace crowdselect
