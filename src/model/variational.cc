#include "model/variational.h"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.h"
#include "model/elbo.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace crowdselect {

// ---------------------------------------------------------------------------
// Training-data extraction
// ---------------------------------------------------------------------------

TdpmTrainData TdpmTrainData::FromDatabase(const CrowdDatabase& db,
                                          std::vector<TaskId>* task_ids_out) {
  TdpmTrainData data;
  data.num_workers = db.NumWorkers();
  data.vocab_size = db.vocabulary().size();
  data.obs_of_worker.resize(data.num_workers);

  // Dense re-indexing of tasks that have at least one scored assignment.
  std::vector<uint32_t> task_index(db.NumTasks(), UINT32_MAX);
  if (task_ids_out) task_ids_out->clear();
  // UINT32_MAX - 1 marks "seen but skipped" (empty bag, e.g. a question
  // that tokenized to nothing): such tasks carry no text evidence and are
  // excluded from training rather than failing validation.
  constexpr uint32_t kSkipped = UINT32_MAX - 1;
  for (const AssignmentRecord& a : db.assignments()) {
    if (!a.has_score) continue;
    if (task_index[a.task] == kSkipped) continue;
    if (task_index[a.task] == UINT32_MAX) {
      const TaskRecord& rec = db.tasks()[a.task];
      if (rec.bag.empty()) {
        task_index[a.task] = kSkipped;
        continue;
      }
      task_index[a.task] = static_cast<uint32_t>(data.tasks.size());
      TaskDoc doc;
      doc.terms.reserve(rec.bag.DistinctTerms());
      for (const auto& e : rec.bag.entries()) {
        doc.terms.emplace_back(e.term, e.count);
      }
      doc.total_tokens = static_cast<double>(rec.bag.TotalTokens());
      data.tasks.push_back(std::move(doc));
      data.obs_of_task.emplace_back();
      if (task_ids_out) task_ids_out->push_back(a.task);
    }
    const uint32_t j = task_index[a.task];
    const uint32_t obs_index = static_cast<uint32_t>(data.observations.size());
    data.observations.push_back(Observation{a.worker, j, a.score});
    data.obs_of_worker[a.worker].push_back(obs_index);
    data.obs_of_task[j].push_back(obs_index);
  }
  return data;
}

TdpmTrainData TdpmTrainData::FromWorld(const GeneratedWorld& world,
                                       size_t num_workers, size_t vocab_size) {
  TdpmTrainData data;
  data.num_workers = num_workers;
  data.vocab_size = vocab_size;
  data.obs_of_worker.resize(num_workers);
  data.obs_of_task.resize(world.tasks.size());
  data.tasks.reserve(world.tasks.size());
  for (const GeneratedTask& t : world.tasks) {
    TaskDoc doc;
    for (const auto& e : t.bag.entries()) {
      doc.terms.emplace_back(e.term, e.count);
    }
    doc.total_tokens = static_cast<double>(t.bag.TotalTokens());
    data.tasks.push_back(std::move(doc));
  }
  for (const GeneratedScore& s : world.scores) {
    const uint32_t obs_index = static_cast<uint32_t>(data.observations.size());
    data.observations.push_back(Observation{s.worker, s.task, s.score});
    data.obs_of_worker[s.worker].push_back(obs_index);
    data.obs_of_task[s.task].push_back(obs_index);
  }
  return data;
}

Status TdpmTrainData::Validate() const {
  if (obs_of_worker.size() != num_workers) {
    return Status::Corruption("obs_of_worker size mismatch");
  }
  if (obs_of_task.size() != tasks.size()) {
    return Status::Corruption("obs_of_task size mismatch");
  }
  for (const auto& doc : tasks) {
    if (doc.terms.empty()) {
      return Status::InvalidArgument("task with empty bag-of-words");
    }
    for (const auto& [term, count] : doc.terms) {
      if (term >= vocab_size) return Status::Corruption("term out of range");
      if (count == 0) return Status::Corruption("zero term count");
    }
  }
  for (const auto& obs : observations) {
    if (obs.worker >= num_workers || obs.task >= tasks.size()) {
      return Status::Corruption("observation index out of range");
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Per-task subproblem
// ---------------------------------------------------------------------------

namespace internal {

double LambdaCProblem::Objective(const Vector& lambda, Vector* grad) const {
  const size_t k = lambda.size();
  CS_DCHECK(grad != nullptr && grad->size() == k);

  // Prior: 1/2 (lambda - mu_c)^T Sigma_c^{-1} (lambda - mu_c).
  Vector diff = lambda;
  diff -= *mu_c;
  Vector prior_grad = sigma_c_inv->Multiply(diff);
  double value = 0.5 * diff.Dot(prior_grad);

  // Score terms: 1/2 lambda^T H lambda - b^T lambda.
  Vector score_grad(k);
  if (h.rows() == k) {
    score_grad = h.Multiply(lambda);
    value += 0.5 * lambda.Dot(score_grad) - b.Dot(lambda);
    score_grad -= b;
  }

  // Token term: -phi_weight_sum^T lambda.
  value -= phi_weight_sum.Dot(lambda);

  // Softmax Taylor bound: (L/eps) sum_k exp(lambda_k + nu_k^2 / 2).
  const double scale = total_tokens / eps;
  double bound = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double e = std::exp(lambda[i] + 0.5 * nu_sq[i]);
    bound += e;
    (*grad)[i] = prior_grad[i] + score_grad[i] - phi_weight_sum[i] + scale * e;
  }
  value += scale * bound;
  return value;
}

void LambdaCProblem::UpdateNuSq(const Vector& lambda, int iterations,
                                double floor) {
  const size_t k = lambda.size();
  // a_k = sum_i (lambda_w_k^2 + nu_w_k^2)/tau^2 + (Sigma_c^{-1})_kk, i.e.
  // the coefficient of nu^2 in the bound; H already aggregates the first
  // part on its diagonal.
  for (int it = 0; it < iterations; ++it) {
    for (size_t i = 0; i < k; ++i) {
      const double a = (h.rows() == k ? h(i, i) : 0.0) + (*sigma_c_inv)(i, i);
      const double pressure =
          (total_tokens / eps) * std::exp(lambda[i] + 0.5 * nu_sq[i]);
      const double target = 1.0 / (a + pressure);
      // Damped update keeps the fixed point stable when pressure is large.
      nu_sq[i] = std::max(floor, 0.5 * nu_sq[i] + 0.5 * target);
    }
  }
}

void UpdatePhiAndEps(const TdpmTrainData::TaskDoc& doc, const Vector& lambda,
                     const Vector& nu_sq, const Matrix& log_beta, Matrix* phi,
                     double* eps) {
  const size_t k = lambda.size();
  CS_DCHECK(phi->rows() == doc.terms.size() && phi->cols() == k);

  // Eq. 13: eps_j = sum_k exp(lambda_k + nu_k^2 / 2).
  double eps_acc = 0.0;
  for (size_t i = 0; i < k; ++i) {
    eps_acc += std::exp(lambda[i] + 0.5 * nu_sq[i]);
  }
  *eps = std::max(eps_acc, 1e-300);

  // Eq. 12 (corrected): phi_{p,k} proportional to exp(lambda_k) *
  // beta_{k, v_p}; computed in log space with a max-shift.
  std::vector<double> logits(k);
  for (size_t p = 0; p < doc.terms.size(); ++p) {
    const TermId v = doc.terms[p].first;
    double max_logit = -1e300;
    for (size_t i = 0; i < k; ++i) {
      logits[i] = lambda[i] + log_beta(i, v);
      max_logit = std::max(max_logit, logits[i]);
    }
    double z = 0.0;
    for (size_t i = 0; i < k; ++i) {
      logits[i] = std::exp(logits[i] - max_logit);
      z += logits[i];
    }
    for (size_t i = 0; i < k; ++i) (*phi)(p, i) = logits[i] / z;
  }
}

CgResult SolveLambdaC(const LambdaCProblem& problem, const Vector& init,
                      const CgOptions& options) {
  return MinimizeCg(
      [&problem](const Vector& x, Vector* grad) {
        return problem.Objective(x, grad);
      },
      init, options);
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Trainer
// ---------------------------------------------------------------------------

namespace {

using internal::LambdaCProblem;
using internal::UpdatePhiAndEps;

// Initializes the variational state deterministically from the seed:
// small random means break symmetry across categories.
TdpmVariationalState InitState(const TdpmTrainData& data, size_t k,
                               uint64_t seed) {
  TdpmVariationalState state;
  Rng rng(seed);
  state.workers.resize(data.num_workers);
  for (auto& w : state.workers) {
    w.lambda = Vector(k);
    for (size_t i = 0; i < k; ++i) w.lambda[i] = 0.1 * rng.Normal();
    w.nu_sq = Vector(k, 1.0);
  }
  state.tasks.resize(data.tasks.size());
  for (size_t j = 0; j < data.tasks.size(); ++j) {
    auto& t = state.tasks[j];
    t.lambda = Vector(k);
    for (size_t i = 0; i < k; ++i) t.lambda[i] = 0.1 * rng.Normal();
    t.nu_sq = Vector(k, 1.0);
    t.eps = static_cast<double>(k);
    t.phi = Matrix(data.tasks[j].terms.size(), k,
                   1.0 / static_cast<double>(k));
  }
  return state;
}

// Seeds beta from the empirical term distributions with per-category
// random perturbation (symmetric initialization would never separate
// categories).
Matrix InitBeta(const TdpmTrainData& data, size_t k, double smoothing,
                uint64_t seed) {
  Rng rng(seed ^ 0xBEBEBEBEULL);
  std::vector<double> term_totals(data.vocab_size, 0.0);
  double total = 0.0;
  for (const auto& doc : data.tasks) {
    for (const auto& [term, count] : doc.terms) {
      term_totals[term] += count;
      total += count;
    }
  }
  Matrix beta(k, data.vocab_size);
  for (size_t i = 0; i < k; ++i) {
    double row_sum = 0.0;
    for (size_t v = 0; v < data.vocab_size; ++v) {
      const double base = total > 0.0 ? term_totals[v] / total
                                      : 1.0 / static_cast<double>(data.vocab_size);
      const double x = (base + smoothing) * (0.5 + rng.Uniform());
      beta(i, v) = x;
      row_sum += x;
    }
    for (size_t v = 0; v < data.vocab_size; ++v) beta(i, v) /= row_sum;
  }
  return beta;
}

Matrix LogOf(const Matrix& m) {
  Matrix out(m.rows(), m.cols());
  for (size_t i = 0; i < m.rows(); ++i) {
    for (size_t j = 0; j < m.cols(); ++j) {
      out(i, j) = std::log(std::max(m(i, j), 1e-300));
    }
  }
  return out;
}

}  // namespace

TdpmTrainer::TdpmTrainer(TdpmOptions options) : options_(std::move(options)) {}

Result<TdpmFitResult> TdpmTrainer::Fit(const TdpmTrainData& data) const {
  CS_RETURN_NOT_OK(options_.Validate());
  CS_RETURN_NOT_OK(data.Validate());
  if (data.tasks.empty()) {
    return Status::FailedPrecondition("no resolved tasks to train on");
  }
  const size_t k = options_.num_categories;

  // Observability: per-phase spans plus counters for the CG subproblems
  // (metric names are catalogued in DESIGN.md §"Observability").
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter* cg_iterations = reg.GetCounter("em.cg.iterations");
  obs::Counter* cg_solves = reg.GetCounter("em.cg.solves");
  obs::Counter* cg_converged = reg.GetCounter("em.cg.converged");
  obs::Counter* em_iterations = reg.GetCounter("em.iterations");
  obs::Gauge* elbo_gauge = reg.GetGauge("em.elbo");
  reg.GetCounter("em.fits")->Increment();
  CS_SPAN(fit_span, "em.fit");

  TdpmFitResult result;
  result.params = TdpmModelParams::Init(k, data.vocab_size);
  result.params.beta =
      InitBeta(data, k, options_.beta_smoothing, options_.seed);
  result.state = InitState(data, k, options_.seed);

  // Ablation A1: content-only inference replaces every feedback score with
  // a constant, removing the quality signal but keeping the structure.
  std::vector<double> scores(data.observations.size());
  for (size_t o = 0; o < data.observations.size(); ++o) {
    scores[o] = options_.use_feedback ? data.observations[o].score : 1.0;
  }

  ThreadPool pool(options_.num_threads);
  TdpmModelParams& params = result.params;
  TdpmVariationalState& state = result.state;

  double prev_elbo = -1e300;
  for (int iteration = 0; iteration < options_.max_em_iterations; ++iteration) {
    CS_SPAN(iteration_span, "em.iteration");
    em_iterations->Increment();
    // Cached per-iteration quantities.
    CS_ASSIGN_OR_RETURN(Cholesky chol_w,
                        Cholesky::FactorizeWithJitter(params.sigma_w));
    CS_ASSIGN_OR_RETURN(Cholesky chol_c,
                        Cholesky::FactorizeWithJitter(params.sigma_c));
    const Matrix sigma_w_inv = chol_w.Inverse();
    const Matrix sigma_c_inv = chol_c.Inverse();
    const Vector sigma_w_inv_mu = sigma_w_inv.Multiply(params.mu_w);
    const Matrix log_beta = LogOf(params.beta);
    const double inv_tau_sq = 1.0 / (params.tau * params.tau);

    // --- E-step: worker posteriors (Eqs. 10-11) --------------------------
    {
      CS_SPAN(worker_step_span, "em.e_step.workers");
      pool.ParallelFor(data.num_workers, [&](size_t i) {
        WorkerPosterior& w = state.workers[i];
        if (data.obs_of_worker[i].empty()) {
          // No evidence: posterior equals the prior.
          w.lambda = params.mu_w;
          for (size_t d = 0; d < k; ++d) {
            w.nu_sq[d] = std::max(options_.variance_floor,
                                  1.0 / std::max(sigma_w_inv(d, d), 1e-12));
          }
          return;
        }
        Matrix m = sigma_w_inv;
        Vector rhs = sigma_w_inv_mu;
        for (uint32_t o : data.obs_of_worker[i]) {
          const auto& obs = data.observations[o];
          const TaskPosterior& t = state.tasks[obs.task];
          m.AddOuter(t.lambda, inv_tau_sq);
          m.AddDiagonal(t.nu_sq, inv_tau_sq);
          rhs.Axpy(scores[o] * inv_tau_sq, t.lambda);
        }
        auto solve = Cholesky::FactorizeWithJitter(m);
        CS_CHECK(solve.ok()) << solve.status().ToString();
        w.lambda = solve->Solve(rhs);
        for (size_t d = 0; d < k; ++d) {
          // Eq. 11 uses only the diagonal precision contribution.
          w.nu_sq[d] = std::max(options_.variance_floor, 1.0 / m(d, d));
        }
      });
    }

    // --- E-step: task posteriors (Eqs. 12-15) ----------------------------
    {
      CS_SPAN(task_step_span, "em.e_step.tasks");
      pool.ParallelFor(data.tasks.size(), [&](size_t j) {
        const TdpmTrainData::TaskDoc& doc = data.tasks[j];
        TaskPosterior& t = state.tasks[j];

        LambdaCProblem problem;
        problem.sigma_c_inv = &sigma_c_inv;
        problem.mu_c = &params.mu_c;
        problem.total_tokens = doc.total_tokens;
        problem.nu_sq = t.nu_sq;
        if (!data.obs_of_task[j].empty()) {
          problem.h = Matrix(k, k);
          problem.b = Vector(k);
          for (uint32_t o : data.obs_of_task[j]) {
            const auto& obs = data.observations[o];
            const WorkerPosterior& w = state.workers[obs.worker];
            problem.h.AddOuter(w.lambda, inv_tau_sq);
            problem.h.AddDiagonal(w.nu_sq, inv_tau_sq);
            problem.b.Axpy(scores[o] * inv_tau_sq, w.lambda);
          }
        }

        // Two inner rounds of (phi, eps) <-> (lambda, nu) coordinate ascent.
        for (int inner = 0; inner < 2; ++inner) {
          UpdatePhiAndEps(doc, t.lambda, t.nu_sq, log_beta, &t.phi, &t.eps);
          problem.eps = t.eps;
          problem.phi_weight_sum = Vector(k);
          for (size_t p = 0; p < doc.terms.size(); ++p) {
            const double n = doc.terms[p].second;
            for (size_t d = 0; d < k; ++d) {
              problem.phi_weight_sum[d] += n * t.phi(p, d);
            }
          }
          CgResult cg = internal::SolveLambdaC(problem, t.lambda, options_.cg);
          cg_solves->Increment();
          cg_iterations->Increment(static_cast<uint64_t>(cg.iterations));
          if (cg.converged) cg_converged->Increment();
          t.lambda = cg.x;
          problem.UpdateNuSq(t.lambda, options_.nu_c_iterations,
                             options_.variance_floor);
          t.nu_sq = problem.nu_sq;
        }
        UpdatePhiAndEps(doc, t.lambda, t.nu_sq, log_beta, &t.phi, &t.eps);
      });
    }

    // --- M-step (Eqs. 16-21) ---------------------------------------------
    {
      CS_SPAN(m_step_span, "em.m_step");
      // mu_w, Sigma_w.
      Vector mu_w(k);
      for (const auto& w : state.workers) mu_w += w.lambda;
      mu_w *= 1.0 / static_cast<double>(data.num_workers);
      Matrix sigma_w(k, k);
      for (const auto& w : state.workers) {
        Vector d = w.lambda;
        d -= mu_w;
        sigma_w.AddOuter(d);
        sigma_w.AddDiagonal(w.nu_sq, 1.0);
      }
      sigma_w *= 1.0 / static_cast<double>(data.num_workers);
      // mu_c, Sigma_c.
      Vector mu_c(k);
      for (const auto& t : state.tasks) mu_c += t.lambda;
      mu_c *= 1.0 / static_cast<double>(state.tasks.size());
      Matrix sigma_c(k, k);
      for (const auto& t : state.tasks) {
        Vector d = t.lambda;
        d -= mu_c;
        sigma_c.AddOuter(d);
        sigma_c.AddDiagonal(t.nu_sq, 1.0);
      }
      sigma_c *= 1.0 / static_cast<double>(state.tasks.size());
      if (options_.diagonal_covariance) {
        for (size_t a = 0; a < k; ++a) {
          for (size_t b = 0; b < k; ++b) {
            if (a != b) {
              sigma_w(a, b) = 0.0;
              sigma_c(a, b) = 0.0;
            }
          }
        }
      }
      // Guard against the shrinkage spiral (see TdpmOptions::
      // prior_variance_floor): keep each prior variance above the floor.
      for (size_t a = 0; a < k; ++a) {
        sigma_w(a, a) = std::max(sigma_w(a, a), options_.prior_variance_floor);
        sigma_c(a, a) = std::max(sigma_c(a, a), options_.prior_variance_floor);
      }
      params.mu_w = std::move(mu_w);
      params.sigma_w = std::move(sigma_w);
      params.mu_c = std::move(mu_c);
      params.sigma_c = std::move(sigma_c);

      // tau^2 (Eq. 20, exact second moment).
      if (!data.observations.empty()) {
        double acc = 0.0;
        for (size_t o = 0; o < data.observations.size(); ++o) {
          const auto& obs = data.observations[o];
          const WorkerPosterior& w = state.workers[obs.worker];
          const TaskPosterior& t = state.tasks[obs.task];
          const double mean = w.lambda.Dot(t.lambda);
          double second = mean * mean;
          for (size_t d = 0; d < k; ++d) {
            second += w.lambda[d] * w.lambda[d] * t.nu_sq[d] +
                      t.lambda[d] * t.lambda[d] * w.nu_sq[d] +
                      w.nu_sq[d] * t.nu_sq[d];
          }
          acc += scores[o] * scores[o] - 2.0 * scores[o] * mean + second;
        }
        params.tau = std::sqrt(std::max(
            options_.variance_floor,
            acc / static_cast<double>(data.observations.size())));
      }

      // beta (Eq. 21) with additive smoothing.
      Matrix beta(k, data.vocab_size, options_.beta_smoothing);
      for (size_t j = 0; j < data.tasks.size(); ++j) {
        const auto& doc = data.tasks[j];
        const TaskPosterior& t = state.tasks[j];
        for (size_t p = 0; p < doc.terms.size(); ++p) {
          const double n = doc.terms[p].second;
          for (size_t d = 0; d < k; ++d) {
            beta(d, doc.terms[p].first) += n * t.phi(p, d);
          }
        }
      }
      for (size_t d = 0; d < k; ++d) {
        double row = 0.0;
        for (size_t v = 0; v < data.vocab_size; ++v) row += beta(d, v);
        for (size_t v = 0; v < data.vocab_size; ++v) beta(d, v) /= row;
      }
      params.beta = std::move(beta);
    }

    // --- Convergence check on the evidence bound -------------------------
    double elbo = 0.0;
    {
      CS_SPAN(elbo_span, "em.elbo");
      elbo = ComputeElbo(data, params, state, scores);
    }
    elbo_gauge->Set(elbo);
    result.elbo_history.push_back(elbo);
    result.iterations = iteration + 1;
    const double rel =
        std::fabs(elbo - prev_elbo) / (1.0 + std::fabs(prev_elbo));
    if (iteration > 0 && rel < options_.em_tolerance) {
      result.converged = true;
      break;
    }
    prev_elbo = elbo;
  }
  return result;
}

}  // namespace crowdselect
