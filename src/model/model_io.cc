#include "model/model_io.h"

namespace crowdselect {

namespace internal {

void SerializeVector(const Vector& v, BinaryWriter* writer) {
  writer->WriteDoubleVec(v.data());
}

Status DeserializeVector(BinaryReader* reader, Vector* v) {
  std::vector<double> data;
  CS_RETURN_NOT_OK(reader->ReadDoubleVec(&data));
  *v = Vector(std::move(data));
  return Status::OK();
}

void SerializeMatrix(const Matrix& m, BinaryWriter* writer) {
  writer->WriteU64(m.rows());
  writer->WriteU64(m.cols());
  writer->WriteDoubleVec(m.data());
}

Status DeserializeMatrix(BinaryReader* reader, Matrix* m) {
  uint64_t rows = 0, cols = 0;
  CS_RETURN_NOT_OK(reader->ReadU64(&rows));
  CS_RETURN_NOT_OK(reader->ReadU64(&cols));
  std::vector<double> data;
  CS_RETURN_NOT_OK(reader->ReadDoubleVec(&data));
  if (data.size() != rows * cols) {
    return Status::Corruption("matrix payload size mismatch");
  }
  *m = Matrix(rows, cols);
  m->data() = std::move(data);
  return Status::OK();
}

}  // namespace internal

using internal::DeserializeMatrix;
using internal::DeserializeVector;
using internal::SerializeMatrix;
using internal::SerializeVector;

void TdpmModelSnapshot::Serialize(BinaryWriter* writer) const {
  writer->WriteU32(kMagic);
  writer->WriteU32(kVersion);
  SerializeVector(params.mu_w, writer);
  SerializeMatrix(params.sigma_w, writer);
  SerializeVector(params.mu_c, writer);
  SerializeMatrix(params.sigma_c, writer);
  writer->WriteDouble(params.tau);
  SerializeMatrix(params.beta, writer);
  writer->WriteU64(workers.size());
  for (const auto& w : workers) {
    SerializeVector(w.lambda, writer);
    SerializeVector(w.nu_sq, writer);
  }
}

Result<TdpmModelSnapshot> TdpmModelSnapshot::Deserialize(BinaryReader* reader) {
  uint32_t magic = 0, version = 0;
  CS_RETURN_NOT_OK(reader->ReadU32(&magic));
  if (magic != kMagic) return Status::Corruption("bad TDPM model magic");
  CS_RETURN_NOT_OK(reader->ReadU32(&version));
  if (version != kVersion) {
    return Status::Corruption("unsupported TDPM model version");
  }
  TdpmModelSnapshot snap;
  CS_RETURN_NOT_OK(DeserializeVector(reader, &snap.params.mu_w));
  CS_RETURN_NOT_OK(DeserializeMatrix(reader, &snap.params.sigma_w));
  CS_RETURN_NOT_OK(DeserializeVector(reader, &snap.params.mu_c));
  CS_RETURN_NOT_OK(DeserializeMatrix(reader, &snap.params.sigma_c));
  CS_RETURN_NOT_OK(reader->ReadDouble(&snap.params.tau));
  CS_RETURN_NOT_OK(DeserializeMatrix(reader, &snap.params.beta));
  uint64_t num_workers = 0;
  CS_RETURN_NOT_OK(reader->ReadU64(&num_workers));
  if (num_workers > reader->remaining()) {
    return Status::Corruption("worker count exceeds payload");
  }
  snap.workers.resize(num_workers);
  for (auto& w : snap.workers) {
    CS_RETURN_NOT_OK(DeserializeVector(reader, &w.lambda));
    CS_RETURN_NOT_OK(DeserializeVector(reader, &w.nu_sq));
    if (w.lambda.size() != snap.params.num_categories() ||
        w.nu_sq.size() != snap.params.num_categories()) {
      return Status::Corruption("worker posterior size mismatch");
    }
  }
  return snap;
}

Status TdpmModelSnapshot::SaveToFile(const std::string& path) const {
  BinaryWriter writer;
  Serialize(&writer);
  return writer.WriteToFile(path);
}

Result<TdpmModelSnapshot> TdpmModelSnapshot::LoadFromFile(
    const std::string& path) {
  CS_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(path));
  return Deserialize(&reader);
}

}  // namespace crowdselect
