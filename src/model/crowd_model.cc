#include "model/crowd_model.h"

#include <utility>

#include "model/dawid_skene.h"
#include "model/selection.h"
#include "obs/metrics.h"
#include "serve/router.h"
#include "util/string_util.h"

namespace crowdselect {

namespace {

DawidSkeneOptions DsOptionsFrom(const ModelConfig& config) {
  DawidSkeneOptions options;
  options.num_labels = config.ds_num_labels;
  options.num_types = config.ds_num_types;
  options.max_em_iterations = config.ds_max_em_iterations;
  options.smoothing = config.ds_smoothing;
  options.seed = config.tdpm.seed;
  return options;
}

/// Per-cluster TDPM members behind a router; `mode` decides hard
/// dispatch ("router") vs. RRF blending ("ensemble").
std::unique_ptr<CrowdModel> MakeRouted(const ModelConfig& config,
                                       serve::RouteMode mode) {
  serve::RouterOptions options;
  options.mode = mode;
  options.rrf_k = config.router_rrf_k;
  options.ensemble_gamma = config.router_ensemble_gamma;
  options.seed = config.tdpm.seed;
  auto router = std::make_unique<serve::TaskTypeRouter>(options);
  const size_t members =
      config.router_num_clusters > 0 ? config.router_num_clusters : 1;
  for (size_t m = 0; m < members; ++m) {
    // Distinct seeds so members do not mirror each other's EM paths on
    // identical sub-corpora.
    ModelConfig member_config = config;
    member_config.tdpm.seed = config.tdpm.seed + m;
    router->AddModel(std::make_unique<TdpmSelector>(member_config.tdpm,
                                                    member_config.serve));
  }
  return router;
}

}  // namespace

CrowdModelRegistry::CrowdModelRegistry() {
  // Builtins live in the same TU as the registry, so linking the
  // registry always links them — a static-library build cannot strip
  // them the way it would strip self-registering TUs.
  factories_["tdpm"] = [](const ModelConfig& config) {
    return std::make_unique<TdpmSelector>(config.tdpm, config.serve);
  };
  factories_["dawid_skene"] = [](const ModelConfig& config) {
    return std::make_unique<DawidSkeneModel>(DsOptionsFrom(config),
                                             config.serve);
  };
  factories_["router"] = [](const ModelConfig& config) {
    return MakeRouted(config, serve::RouteMode::kSimilarity);
  };
  factories_["ensemble"] = [](const ModelConfig& config) {
    return MakeRouted(config, serve::RouteMode::kEnsemble);
  };
}

CrowdModelRegistry& CrowdModelRegistry::Global() {
  static CrowdModelRegistry registry;
  return registry;
}

void CrowdModelRegistry::Register(const std::string& id, Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  factories_[id] = std::move(factory);
}

Result<std::unique_ptr<CrowdModel>> CrowdModelRegistry::Create(
    const std::string& id, const ModelConfig& config) const {
  static obs::Counter* created =
      obs::MetricsRegistry::Global().GetCounter("model.created");
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(id);
    if (it == factories_.end()) {
      std::string known;
      for (const auto& [known_id, unused] : factories_) {
        if (!known.empty()) known += ", ";
        known += known_id;
      }
      return Status::NotFound(
          StringPrintf("unknown crowd model \"%s\" (known: %s)", id.c_str(),
                       known.c_str()));
    }
    factory = it->second;
  }
  std::unique_ptr<CrowdModel> model = factory(config);
  if (model == nullptr) {
    return Status::Internal(
        StringPrintf("factory for \"%s\" returned null", id.c_str()));
  }
  created->Increment();
  return model;
}

bool CrowdModelRegistry::Has(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(id) > 0;
}

std::vector<std::string> CrowdModelRegistry::Ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(factories_.size());
  for (const auto& [id, unused] : factories_) ids.push_back(id);
  return ids;
}

}  // namespace crowdselect
