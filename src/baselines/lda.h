// Latent Dirichlet Allocation (Blei/Ng/Jordan, JMLR'03) with mean-field
// variational EM, implemented from scratch: the topic-model substrate of
// the TSPM baseline [8, 33].
#ifndef CROWDSELECT_BASELINES_LDA_H_
#define CROWDSELECT_BASELINES_LDA_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "text/bag_of_words.h"
#include "util/status.h"

namespace crowdselect {

struct LdaOptions {
  size_t num_topics = 10;
  /// Symmetric Dirichlet prior on per-document topic proportions.
  double alpha = 0.1;
  int max_em_iterations = 40;
  /// Per-document variational iterations inside each E-step / fold-in.
  int doc_iterations = 20;
  double doc_tolerance = 1e-5;
  /// Stop EM when relative corpus-bound improvement is below this.
  double tolerance = 1e-5;
  double term_smoothing = 1e-3;
  uint64_t seed = 11;
};

using LdaDocument = std::vector<std::pair<TermId, uint32_t>>;

/// Digamma function (Psi), accurate for x > 0 (recurrence + asymptotic).
double Digamma(double x);

/// Fitted LDA model.
class Lda {
 public:
  static Result<Lda> Fit(const std::vector<LdaDocument>& docs,
                         size_t vocab_size, const LdaOptions& options);

  /// Expected topic proportions E[theta_d] of training document d.
  Vector DocTopics(size_t doc) const;
  /// p(w|z), topics x vocab.
  const Matrix& topic_term() const { return topic_term_; }
  size_t num_topics() const { return options_.num_topics; }
  size_t num_documents() const { return gamma_.rows(); }

  /// Variational fold-in of an unseen document; returns E[theta].
  Vector FoldIn(const LdaDocument& doc) const;
  Vector FoldIn(const BagOfWords& bag) const;

  /// Per-iteration corpus variational bound (up to constants).
  const std::vector<double>& bound_history() const { return bound_history_; }

 private:
  Lda() = default;

  /// Runs the per-document variational loop; returns the doc's likelihood
  /// term and writes gamma and (optionally) the term-topic sufficient
  /// statistics into `term_mass`.
  double InferDocument(const LdaDocument& doc, Vector* gamma,
                       Matrix* term_mass) const;

  LdaOptions options_;
  Matrix gamma_;       ///< Variational Dirichlet params, docs x topics.
  Matrix topic_term_;  ///< p(w|z), rows sum to 1.
  std::vector<double> bound_history_;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_BASELINES_LDA_H_
