#include "baselines/plsa.h"

#include <cmath>

#include "util/logging.h"

namespace crowdselect {

namespace {

// One EM pass over a single document's topic mixture with fixed p(w|z).
// Returns the doc's contribution to the log-likelihood.
double EmStepForDocument(const PlsaDocument& doc, const Matrix& topic_term,
                         Vector* doc_topics, Vector* new_mass) {
  const size_t k = doc_topics->size();
  double loglik = 0.0;
  for (size_t d = 0; d < k; ++d) (*new_mass)[d] = 0.0;
  std::vector<double> posterior(k);
  for (const auto& [term, count] : doc) {
    double z = 0.0;
    for (size_t d = 0; d < k; ++d) {
      posterior[d] = (*doc_topics)[d] * topic_term(d, term);
      z += posterior[d];
    }
    if (z <= 0.0) continue;
    loglik += count * std::log(z);
    for (size_t d = 0; d < k; ++d) {
      (*new_mass)[d] += count * posterior[d] / z;
    }
  }
  return loglik;
}

void NormalizeInPlace(Vector* v) {
  const double s = v->Sum();
  if (s <= 0.0) {
    const double u = 1.0 / static_cast<double>(v->size());
    for (size_t i = 0; i < v->size(); ++i) (*v)[i] = u;
    return;
  }
  *v *= 1.0 / s;
}

}  // namespace

Result<Plsa> Plsa::Fit(const std::vector<PlsaDocument>& docs,
                       size_t vocab_size, const PlsaOptions& options) {
  if (options.num_topics == 0) {
    return Status::InvalidArgument("num_topics must be >= 1");
  }
  if (docs.empty()) return Status::InvalidArgument("no documents");
  for (const auto& doc : docs) {
    for (const auto& [term, count] : doc) {
      if (term >= vocab_size) return Status::InvalidArgument("term id out of range");
      if (count == 0) return Status::InvalidArgument("zero count");
    }
  }

  const size_t k = options.num_topics;
  Plsa model;
  model.options_ = options;
  Rng rng(options.seed);

  // Random row-stochastic initialization.
  model.doc_topic_ = Matrix(docs.size(), k);
  for (size_t j = 0; j < docs.size(); ++j) {
    double row = 0.0;
    for (size_t d = 0; d < k; ++d) {
      model.doc_topic_(j, d) = 0.5 + rng.Uniform();
      row += model.doc_topic_(j, d);
    }
    for (size_t d = 0; d < k; ++d) model.doc_topic_(j, d) /= row;
  }
  model.topic_term_ = Matrix(k, vocab_size);
  for (size_t d = 0; d < k; ++d) {
    double row = 0.0;
    for (size_t v = 0; v < vocab_size; ++v) {
      model.topic_term_(d, v) = 0.5 + rng.Uniform();
      row += model.topic_term_(d, v);
    }
    for (size_t v = 0; v < vocab_size; ++v) model.topic_term_(d, v) /= row;
  }

  std::vector<double> posterior(k);
  double prev_loglik = -1e300;
  for (int it = 0; it < options.max_iterations; ++it) {
    Matrix term_mass(k, vocab_size, options.term_smoothing);
    double loglik = 0.0;
    for (size_t j = 0; j < docs.size(); ++j) {
      Vector doc_mass(k);
      for (const auto& [term, count] : docs[j]) {
        double z = 0.0;
        for (size_t d = 0; d < k; ++d) {
          posterior[d] = model.doc_topic_(j, d) * model.topic_term_(d, term);
          z += posterior[d];
        }
        if (z <= 0.0) continue;
        loglik += count * std::log(z);
        for (size_t d = 0; d < k; ++d) {
          const double r = count * posterior[d] / z;
          doc_mass[d] += r;
          term_mass(d, term) += r;
        }
      }
      NormalizeInPlace(&doc_mass);
      model.doc_topic_.SetRow(j, doc_mass);
    }
    for (size_t d = 0; d < k; ++d) {
      double row = 0.0;
      for (size_t v = 0; v < vocab_size; ++v) row += term_mass(d, v);
      for (size_t v = 0; v < vocab_size; ++v) {
        model.topic_term_(d, v) = term_mass(d, v) / row;
      }
    }
    model.loglik_history_.push_back(loglik);
    if (it > 0 && std::fabs(loglik - prev_loglik) <=
                      options.tolerance * (1.0 + std::fabs(prev_loglik))) {
      break;
    }
    prev_loglik = loglik;
  }
  return model;
}

Vector Plsa::DocTopics(size_t doc) const {
  CS_CHECK(doc < doc_topic_.rows());
  return doc_topic_.Row(doc);
}

Vector Plsa::FoldIn(const PlsaDocument& doc) const {
  const size_t k = options_.num_topics;
  Vector mixture(k, 1.0 / static_cast<double>(k));
  if (doc.empty()) return mixture;
  Vector mass(k);
  for (int it = 0; it < options_.fold_in_iterations; ++it) {
    EmStepForDocument(doc, topic_term_, &mixture, &mass);
    mixture = mass;
    NormalizeInPlace(&mixture);
  }
  return mixture;
}

Vector Plsa::FoldIn(const BagOfWords& bag) const {
  PlsaDocument doc;
  doc.reserve(bag.DistinctTerms());
  for (const auto& e : bag.entries()) {
    if (e.term < topic_term_.cols()) doc.emplace_back(e.term, e.count);
  }
  return FoldIn(doc);
}

}  // namespace crowdselect
