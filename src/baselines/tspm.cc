#include "baselines/tspm.h"

#include <algorithm>

#include "util/logging.h"

namespace crowdselect {

Vector TspmSelector::TaskTopics(size_t doc_index) const {
  return options_.backend == LdaBackend::kGibbs
             ? gibbs_->DocTopics(doc_index)
             : lda_->DocTopics(doc_index);
}

Vector TspmSelector::FoldInTopics(const BagOfWords& bag) const {
  return options_.backend == LdaBackend::kGibbs
             ? gibbs_->FoldIn(bag, &fold_rng_)
             : lda_->FoldIn(bag);
}

Status TspmSelector::Train(const CrowdDatabase& db) {
  std::vector<LdaDocument> docs;
  std::vector<uint32_t> task_to_doc(db.NumTasks(), UINT32_MAX);
  for (const AssignmentRecord& a : db.assignments()) {
    if (!a.has_score || task_to_doc[a.task] != UINT32_MAX) continue;
    task_to_doc[a.task] = static_cast<uint32_t>(docs.size());
    LdaDocument doc;
    for (const auto& e : db.tasks()[a.task].bag.entries()) {
      doc.emplace_back(e.term, e.count);
    }
    docs.push_back(std::move(doc));
  }
  if (docs.empty()) return Status::FailedPrecondition("no resolved tasks");

  if (options_.backend == LdaBackend::kGibbs) {
    GibbsLdaOptions gibbs_options = options_.gibbs;
    gibbs_options.num_topics = options_.lda.num_topics;
    CS_ASSIGN_OR_RETURN(
        GibbsLda model,
        GibbsLda::Fit(docs, db.vocabulary().size(), gibbs_options));
    gibbs_.emplace(std::move(model));
  } else {
    CS_ASSIGN_OR_RETURN(Lda model,
                        Lda::Fit(docs, db.vocabulary().size(), options_.lda));
    lda_.emplace(std::move(model));
  }

  const size_t k = options_.lda.num_topics;
  skills_.assign(db.NumWorkers(), Vector(k, 1.0 / static_cast<double>(k)));
  std::vector<Vector> mass(db.NumWorkers(), Vector(k));
  for (const AssignmentRecord& a : db.assignments()) {
    if (!a.has_score) continue;
    const Vector topics = TaskTopics(task_to_doc[a.task]);
    const double weight =
        options_.feedback_weighted ? std::max(a.score, 0.0) : 1.0;
    mass[a.worker].Axpy(weight, topics);
  }
  for (WorkerId w = 0; w < db.NumWorkers(); ++w) {
    const double total = mass[w].Sum();
    if (total > 0.0) {
      skills_[w] = mass[w] * (1.0 / total);
    }
  }
  trained_ = true;
  return Status::OK();
}

const Vector& TspmSelector::WorkerSkills(WorkerId worker) const {
  CS_CHECK(trained_ && worker < skills_.size());
  return skills_[worker];
}

Result<std::vector<RankedWorker>> TspmSelector::SelectTopK(
    const BagOfWords& task, size_t k,
    const std::vector<WorkerId>& candidates) const {
  if (!trained_) return Status::FailedPrecondition("TSPM not trained");
  const Vector categories = FoldInTopics(task);
  TopKAccumulator acc(k);
  for (WorkerId w : candidates) {
    if (w >= skills_.size()) {
      return Status::InvalidArgument("candidate worker unknown to the model");
    }
    acc.Offer(w, skills_[w].Dot(categories));
  }
  return acc.Take();
}

}  // namespace crowdselect
