// Topic-Sensitive Probabilistic Model baseline (Guo et al., CIKM'08 [8];
// Zhou et al., CIKM'12 [33]): Multinomial worker skills estimated on an
// LDA latent category space (paper §7.2.1). Like DRM it suffers the
// normalization limitation the paper targets.
//
// Two interchangeable LDA estimators are provided — mean-field
// variational EM (default, lda.h) and collapsed Gibbs sampling
// (lda_gibbs.h) — so the TDPM comparison can be shown to be robust to the
// baseline's inference method.
#ifndef CROWDSELECT_BASELINES_TSPM_H_
#define CROWDSELECT_BASELINES_TSPM_H_

#include <optional>
#include <string>
#include <vector>

#include "baselines/lda.h"
#include "baselines/lda_gibbs.h"
#include "crowddb/selector_interface.h"

namespace crowdselect {

enum class LdaBackend {
  kVariational,  ///< Blei-style mean-field EM.
  kGibbs,        ///< Collapsed Gibbs sampling.
};

struct TspmOptions {
  LdaOptions lda;
  /// Used instead of `lda` when backend == kGibbs. The topic count is
  /// taken from `lda.num_topics` either way.
  GibbsLdaOptions gibbs;
  LdaBackend backend = LdaBackend::kVariational;
  /// Weight each solved task's topic proportions by its feedback score.
  bool feedback_weighted = true;
};

class TspmSelector : public CrowdSelector {
 public:
  explicit TspmSelector(TspmOptions options) : options_(std::move(options)) {}

  std::string Name() const override {
    return options_.backend == LdaBackend::kGibbs ? "TSPM-Gibbs" : "TSPM";
  }
  Status Train(const CrowdDatabase& db) override;
  Result<std::vector<RankedWorker>> SelectTopK(
      const BagOfWords& task, size_t k,
      const std::vector<WorkerId>& candidates) const override;

  /// The worker's multinomial skill vector (sums to 1).
  const Vector& WorkerSkills(WorkerId worker) const;
  /// Variational model; only valid for backend == kVariational.
  const Lda& lda() const { return *lda_; }
  /// Gibbs model; only valid for backend == kGibbs.
  const GibbsLda& gibbs_lda() const { return *gibbs_; }

 private:
  Vector TaskTopics(size_t doc_index) const;
  Vector FoldInTopics(const BagOfWords& bag) const;

  TspmOptions options_;
  std::optional<Lda> lda_;
  std::optional<GibbsLda> gibbs_;
  std::vector<Vector> skills_;
  bool trained_ = false;
  mutable Rng fold_rng_{0x915};  ///< Gibbs fold-in randomness.
};

}  // namespace crowdselect

#endif  // CROWDSELECT_BASELINES_TSPM_H_
