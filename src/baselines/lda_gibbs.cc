#include "baselines/lda_gibbs.h"

#include <cmath>

#include "util/logging.h"

namespace crowdselect {

namespace {

// Token-level view of the corpus: one entry per token occurrence.
struct Token {
  uint32_t doc;
  TermId term;
};

}  // namespace

Result<GibbsLda> GibbsLda::Fit(const std::vector<LdaDocument>& docs,
                               size_t vocab_size,
                               const GibbsLdaOptions& options) {
  if (options.num_topics == 0) {
    return Status::InvalidArgument("num_topics must be >= 1");
  }
  if (options.alpha <= 0.0 || options.eta <= 0.0) {
    return Status::InvalidArgument("alpha and eta must be positive");
  }
  if (docs.empty()) return Status::InvalidArgument("no documents");

  // Flatten to tokens.
  std::vector<Token> tokens;
  for (uint32_t d = 0; d < docs.size(); ++d) {
    for (const auto& [term, count] : docs[d]) {
      if (term >= vocab_size) {
        return Status::InvalidArgument("term id out of range");
      }
      if (count == 0) return Status::InvalidArgument("zero count");
      for (uint32_t c = 0; c < count; ++c) tokens.push_back({d, term});
    }
  }
  if (tokens.empty()) return Status::InvalidArgument("empty corpus");

  const size_t k = options.num_topics;
  Rng rng(options.seed);

  // Count tables.
  std::vector<uint32_t> z(tokens.size());
  Matrix n_dk(docs.size(), k);
  Matrix n_kv(k, vocab_size);
  std::vector<double> n_k(k, 0.0);
  for (size_t i = 0; i < tokens.size(); ++i) {
    const uint32_t topic = static_cast<uint32_t>(rng.UniformInt(k));
    z[i] = topic;
    n_dk(tokens[i].doc, topic) += 1.0;
    n_kv(topic, tokens[i].term) += 1.0;
    n_k[topic] += 1.0;
  }

  GibbsLda model;
  model.options_ = options;
  model.doc_topic_ = Matrix(docs.size(), k);
  model.topic_term_ = Matrix(k, vocab_size);
  int samples_taken = 0;

  std::vector<double> weights(k);
  const double v_eta = static_cast<double>(vocab_size) * options.eta;
  const int total_sweeps = options.burn_in_sweeps + options.sample_sweeps;
  for (int sweep = 0; sweep < total_sweeps; ++sweep) {
    for (size_t i = 0; i < tokens.size(); ++i) {
      const uint32_t d = tokens[i].doc;
      const TermId v = tokens[i].term;
      const uint32_t old_topic = z[i];
      // Remove the token from the counts.
      n_dk(d, old_topic) -= 1.0;
      n_kv(old_topic, v) -= 1.0;
      n_k[old_topic] -= 1.0;
      // Collapsed conditional.
      for (size_t t = 0; t < k; ++t) {
        weights[t] = (n_dk(d, t) + options.alpha) *
                     (n_kv(t, v) + options.eta) / (n_k[t] + v_eta);
      }
      const uint32_t new_topic = static_cast<uint32_t>(rng.Discrete(weights));
      z[i] = new_topic;
      n_dk(d, new_topic) += 1.0;
      n_kv(new_topic, v) += 1.0;
      n_k[new_topic] += 1.0;
    }
    if (sweep >= options.burn_in_sweeps) {
      // Accumulate theta / phi estimates from this state.
      for (uint32_t d = 0; d < docs.size(); ++d) {
        double doc_total = 0.0;
        for (size_t t = 0; t < k; ++t) doc_total += n_dk(d, t);
        for (size_t t = 0; t < k; ++t) {
          model.doc_topic_(d, t) +=
              (n_dk(d, t) + options.alpha) /
              (doc_total + static_cast<double>(k) * options.alpha);
        }
      }
      for (size_t t = 0; t < k; ++t) {
        for (size_t v = 0; v < vocab_size; ++v) {
          model.topic_term_(t, v) +=
              (n_kv(t, v) + options.eta) / (n_k[t] + v_eta);
        }
      }
      ++samples_taken;
    }
  }
  CS_CHECK(samples_taken > 0) << "sample_sweeps must be positive";
  model.doc_topic_ *= 1.0 / samples_taken;
  model.topic_term_ *= 1.0 / samples_taken;
  // Renormalize rows exactly (averaging keeps them very close already).
  for (size_t t = 0; t < k; ++t) {
    double row = 0.0;
    for (size_t v = 0; v < vocab_size; ++v) row += model.topic_term_(t, v);
    for (size_t v = 0; v < vocab_size; ++v) model.topic_term_(t, v) /= row;
  }
  return model;
}

Vector GibbsLda::DocTopics(size_t doc) const {
  CS_CHECK(doc < doc_topic_.rows());
  Vector theta = doc_topic_.Row(doc);
  theta *= 1.0 / theta.Sum();
  return theta;
}

Vector GibbsLda::FoldIn(const LdaDocument& doc, Rng* rng) const {
  const size_t k = options_.num_topics;
  Vector theta(k, 1.0 / static_cast<double>(k));
  std::vector<Token> tokens;
  for (const auto& [term, count] : doc) {
    if (term >= topic_term_.cols()) continue;
    for (uint32_t c = 0; c < count; ++c) tokens.push_back({0, term});
  }
  if (tokens.empty()) return theta;

  std::vector<uint32_t> z(tokens.size());
  std::vector<double> counts(k, 0.0);
  for (size_t i = 0; i < tokens.size(); ++i) {
    z[i] = static_cast<uint32_t>(rng->UniformInt(k));
    counts[z[i]] += 1.0;
  }
  std::vector<double> weights(k);
  Vector accum(k);
  int samples = 0;
  for (int sweep = 0; sweep < options_.fold_in_sweeps; ++sweep) {
    for (size_t i = 0; i < tokens.size(); ++i) {
      counts[z[i]] -= 1.0;
      for (size_t t = 0; t < k; ++t) {
        weights[t] =
            (counts[t] + options_.alpha) * topic_term_(t, tokens[i].term);
      }
      z[i] = static_cast<uint32_t>(rng->Discrete(weights));
      counts[z[i]] += 1.0;
    }
    if (sweep >= options_.fold_in_sweeps / 2) {
      for (size_t t = 0; t < k; ++t) {
        accum[t] += counts[t] + options_.alpha;
      }
      ++samples;
    }
  }
  accum *= 1.0 / accum.Sum();
  return accum;
}

Vector GibbsLda::FoldIn(const BagOfWords& bag, Rng* rng) const {
  LdaDocument doc;
  for (const auto& e : bag.entries()) {
    if (e.term < topic_term_.cols()) doc.emplace_back(e.term, e.count);
  }
  return FoldIn(doc, rng);
}

}  // namespace crowdselect
