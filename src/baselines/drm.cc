#include "baselines/drm.h"

#include <algorithm>

#include "util/logging.h"

namespace crowdselect {

Status DrmSelector::Train(const CrowdDatabase& db) {
  // Topic-model the resolved tasks with PLSA.
  std::vector<PlsaDocument> docs;
  std::vector<uint32_t> task_to_doc(db.NumTasks(), UINT32_MAX);
  for (const AssignmentRecord& a : db.assignments()) {
    if (!a.has_score || task_to_doc[a.task] != UINT32_MAX) continue;
    task_to_doc[a.task] = static_cast<uint32_t>(docs.size());
    PlsaDocument doc;
    for (const auto& e : db.tasks()[a.task].bag.entries()) {
      doc.emplace_back(e.term, e.count);
    }
    docs.push_back(std::move(doc));
  }
  if (docs.empty()) return Status::FailedPrecondition("no resolved tasks");
  CS_ASSIGN_OR_RETURN(Plsa plsa,
                      Plsa::Fit(docs, db.vocabulary().size(), options_.plsa));
  plsa_.emplace(std::move(plsa));

  // Worker skill multinomial: (feedback-weighted) mean of the topic
  // mixtures of the tasks the worker resolved, normalized to one.
  const size_t k = options_.plsa.num_topics;
  skills_.assign(db.NumWorkers(), Vector(k, 1.0 / static_cast<double>(k)));
  std::vector<Vector> mass(db.NumWorkers(), Vector(k));
  for (const AssignmentRecord& a : db.assignments()) {
    if (!a.has_score) continue;
    const Vector topics = plsa_->DocTopics(task_to_doc[a.task]);
    const double weight =
        options_.feedback_weighted ? std::max(a.score, 0.0) : 1.0;
    mass[a.worker].Axpy(weight, topics);
  }
  for (WorkerId w = 0; w < db.NumWorkers(); ++w) {
    const double total = mass[w].Sum();
    if (total > 0.0) {
      skills_[w] = mass[w] * (1.0 / total);
    }
  }
  trained_ = true;
  return Status::OK();
}

const Vector& DrmSelector::WorkerSkills(WorkerId worker) const {
  CS_CHECK(trained_ && worker < skills_.size());
  return skills_[worker];
}

Result<std::vector<RankedWorker>> DrmSelector::SelectTopK(
    const BagOfWords& task, size_t k,
    const std::vector<WorkerId>& candidates) const {
  if (!trained_) return Status::FailedPrecondition("DRM not trained");
  const Vector categories = plsa_->FoldIn(task);
  TopKAccumulator acc(k);
  for (WorkerId w : candidates) {
    if (w >= skills_.size()) {
      return Status::InvalidArgument("candidate worker unknown to the model");
    }
    acc.Offer(w, skills_[w].Dot(categories));
  }
  return acc.Take();
}

}  // namespace crowdselect
