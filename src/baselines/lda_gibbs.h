// Collapsed Gibbs sampling for LDA (Griffiths & Steyvers, PNAS'04),
// implemented from scratch: an alternative estimator for the TSPM
// baseline's latent category space, used to check that the comparison
// against TDPM is not an artifact of variational inference.
#ifndef CROWDSELECT_BASELINES_LDA_GIBBS_H_
#define CROWDSELECT_BASELINES_LDA_GIBBS_H_

#include <cstdint>
#include <vector>

#include "baselines/lda.h"  // LdaDocument.
#include "linalg/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace crowdselect {

struct GibbsLdaOptions {
  size_t num_topics = 10;
  /// Symmetric Dirichlet priors on topics-per-doc / terms-per-topic.
  double alpha = 0.1;
  double eta = 0.01;
  int burn_in_sweeps = 150;
  /// Post-burn-in sweeps whose states are averaged into the estimates.
  int sample_sweeps = 50;
  /// Gibbs sweeps when folding in an unseen document.
  int fold_in_sweeps = 30;
  uint64_t seed = 13;
};

/// Fitted collapsed-Gibbs LDA model with averaged posterior estimates.
class GibbsLda {
 public:
  static Result<GibbsLda> Fit(const std::vector<LdaDocument>& docs,
                              size_t vocab_size,
                              const GibbsLdaOptions& options);

  /// Posterior-mean topic proportions of training document d.
  Vector DocTopics(size_t doc) const;
  /// Posterior-mean p(term|topic), topics x vocab.
  const Matrix& topic_term() const { return topic_term_; }
  size_t num_topics() const { return options_.num_topics; }
  size_t num_documents() const { return doc_topic_.rows(); }

  /// Folds an unseen document in by Gibbs-sampling its token topics with
  /// the trained topic-term distribution held fixed.
  Vector FoldIn(const LdaDocument& doc, Rng* rng) const;
  Vector FoldIn(const BagOfWords& bag, Rng* rng) const;

 private:
  GibbsLda() = default;

  GibbsLdaOptions options_;
  Matrix doc_topic_;   ///< Averaged theta, documents x topics.
  Matrix topic_term_;  ///< Averaged phi, topics x vocab.
};

}  // namespace crowdselect

#endif  // CROWDSELECT_BASELINES_LDA_GIBBS_H_
