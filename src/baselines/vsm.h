// Vector Space Model baseline (paper §7.2.1): ranks workers by cosine
// similarity between the incoming task and the union of the bags of the
// tasks each worker has resolved.
#ifndef CROWDSELECT_BASELINES_VSM_H_
#define CROWDSELECT_BASELINES_VSM_H_

#include <string>
#include <vector>

#include "crowddb/selector_interface.h"
#include "serve/selection_engine.h"
#include "text/tfidf.h"

namespace crowdselect {

struct VsmOptions {
  /// When true, weight the cosine by tf-idf instead of raw counts. The
  /// paper's formula uses raw counts (default false).
  bool use_tfidf = false;
  /// Serving knobs for the engine's blocked top-k scan.
  serve::ServeOptions serve;
};

class VsmSelector : public CrowdSelector {
 public:
  explicit VsmSelector(VsmOptions options = {})
      : options_(options), engine_(options.serve) {}

  std::string Name() const override { return "VSM"; }
  Status Train(const CrowdDatabase& db) override;
  Result<std::vector<RankedWorker>> SelectTopK(
      const BagOfWords& task, size_t k,
      const std::vector<WorkerId>& candidates) const override;

  /// The aggregated profile bag t_w^i of a worker.
  const BagOfWords& WorkerProfile(WorkerId worker) const;

 private:
  VsmOptions options_;
  /// Shared blocked parallel top-k scan (no snapshot/folder attached;
  /// only RankWithScore is used).
  serve::SelectionEngine engine_;
  std::vector<BagOfWords> profiles_;
  TfIdfModel tfidf_;
  bool trained_ = false;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_BASELINES_VSM_H_
