#include "baselines/vsm.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "text/tfidf.h"
#include "util/logging.h"
#include "util/timer.h"

namespace crowdselect {

Status VsmSelector::Train(const CrowdDatabase& db) {
  profiles_.assign(db.NumWorkers(), BagOfWords());
  std::vector<BagOfWords> corpus;
  corpus.reserve(db.NumTasks());
  for (const auto& task : db.tasks()) corpus.push_back(task.bag);
  tfidf_ = TfIdfModel::Fit(corpus);
  // t_w^i = union over resolved tasks with a_ij = 1.
  for (const AssignmentRecord& a : db.assignments()) {
    if (!a.has_score) continue;
    profiles_[a.worker].Merge(db.tasks()[a.task].bag);
  }
  trained_ = true;
  return Status::OK();
}

const BagOfWords& VsmSelector::WorkerProfile(WorkerId worker) const {
  CS_CHECK(trained_ && worker < profiles_.size());
  return profiles_[worker];
}

Result<std::vector<RankedWorker>> VsmSelector::SelectTopK(
    const BagOfWords& task, size_t k,
    const std::vector<WorkerId>& candidates) const {
  // Same serve.* instrumentation shape as the TDPM path (span + query
  // counter on the serve latency ladder, plus an SLO window), so
  // baseline-vs-TDPM latency comparisons come from one pipeline: compare
  // slo.serve.select.* against slo.serve.select.vsm.*.
  static obs::SpanMeter meter("serve.select.vsm",
                              obs::ServeLatencyBucketBounds());
  static obs::Counter* queries =
      obs::MetricsRegistry::Global().GetCounter("serve.queries.vsm");
  if (!trained_) return Status::FailedPrecondition("VSM not trained");
  CS_RETURN_NOT_OK(serve::ValidateCandidates(candidates, profiles_.size()));
  obs::ScopedSpan span(meter);
  Timer timer;
  queries->Increment();
  auto ranked =
      engine_.RankWithScore(k, candidates, [this, &task](WorkerId w) {
        return options_.use_tfidf ? tfidf_.CosineSimilarity(task, profiles_[w])
                                  : task.CosineSimilarity(profiles_[w]);
      });
  obs::SloTracker::Global().Record("serve.select.vsm", timer.ElapsedMicros());
  return ranked;
}

}  // namespace crowdselect
