#include "baselines/lda.h"

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace crowdselect {

double Digamma(double x) {
  CS_DCHECK(x > 0.0);
  // Shift into the asymptotic region, then apply the expansion.
  double result = 0.0;
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
  return result;
}

double Lda::InferDocument(const LdaDocument& doc, Vector* gamma,
                          Matrix* term_mass) const {
  const size_t k = options_.num_topics;
  double total_tokens = 0.0;
  for (const auto& [term, count] : doc) total_tokens += count;

  // gamma init: alpha + L/K.
  for (size_t d = 0; d < k; ++d) {
    (*gamma)[d] = options_.alpha + total_tokens / static_cast<double>(k);
  }
  std::vector<double> exp_digamma(k);
  std::vector<double> phi(k);
  Matrix doc_phi(doc.size(), k);

  double likelihood = 0.0;
  for (int it = 0; it < options_.doc_iterations; ++it) {
    for (size_t d = 0; d < k; ++d) {
      exp_digamma[d] = std::exp(Digamma((*gamma)[d]));
    }
    Vector new_gamma(k, options_.alpha);
    likelihood = 0.0;
    for (size_t p = 0; p < doc.size(); ++p) {
      const auto& [term, count] = doc[p];
      double z = 0.0;
      for (size_t d = 0; d < k; ++d) {
        phi[d] = exp_digamma[d] * topic_term_(d, term);
        z += phi[d];
      }
      if (z <= 0.0) continue;
      likelihood += count * std::log(z);
      for (size_t d = 0; d < k; ++d) {
        const double r = phi[d] / z;
        doc_phi(p, d) = r;
        new_gamma[d] += count * r;
      }
    }
    double delta = 0.0;
    for (size_t d = 0; d < k; ++d) {
      delta += std::fabs(new_gamma[d] - (*gamma)[d]);
    }
    *gamma = new_gamma;
    if (delta / static_cast<double>(k) < options_.doc_tolerance) break;
  }

  if (term_mass != nullptr) {
    for (size_t p = 0; p < doc.size(); ++p) {
      const auto& [term, count] = doc[p];
      for (size_t d = 0; d < k; ++d) {
        (*term_mass)(d, term) += count * doc_phi(p, d);
      }
    }
  }
  return likelihood;
}

Result<Lda> Lda::Fit(const std::vector<LdaDocument>& docs, size_t vocab_size,
                     const LdaOptions& options) {
  if (options.num_topics == 0) {
    return Status::InvalidArgument("num_topics must be >= 1");
  }
  if (options.alpha <= 0.0) {
    return Status::InvalidArgument("alpha must be positive");
  }
  if (docs.empty()) return Status::InvalidArgument("no documents");
  for (const auto& doc : docs) {
    for (const auto& [term, count] : doc) {
      if (term >= vocab_size) {
        return Status::InvalidArgument("term id out of range");
      }
      if (count == 0) return Status::InvalidArgument("zero count");
    }
  }

  const size_t k = options.num_topics;
  Lda model;
  model.options_ = options;
  Rng rng(options.seed);

  model.topic_term_ = Matrix(k, vocab_size);
  for (size_t d = 0; d < k; ++d) {
    double row = 0.0;
    for (size_t v = 0; v < vocab_size; ++v) {
      model.topic_term_(d, v) = 0.5 + rng.Uniform();
      row += model.topic_term_(d, v);
    }
    for (size_t v = 0; v < vocab_size; ++v) model.topic_term_(d, v) /= row;
  }
  model.gamma_ = Matrix(docs.size(), k, options.alpha);

  double prev_bound = -1e300;
  Vector gamma(k);
  for (int it = 0; it < options.max_em_iterations; ++it) {
    Matrix term_mass(k, vocab_size, options.term_smoothing);
    double bound = 0.0;
    for (size_t j = 0; j < docs.size(); ++j) {
      bound += model.InferDocument(docs[j], &gamma, &term_mass);
      model.gamma_.SetRow(j, gamma);
    }
    for (size_t d = 0; d < k; ++d) {
      double row = 0.0;
      for (size_t v = 0; v < vocab_size; ++v) row += term_mass(d, v);
      for (size_t v = 0; v < vocab_size; ++v) {
        model.topic_term_(d, v) = term_mass(d, v) / row;
      }
    }
    model.bound_history_.push_back(bound);
    if (it > 0 && std::fabs(bound - prev_bound) <=
                      options.tolerance * (1.0 + std::fabs(prev_bound))) {
      break;
    }
    prev_bound = bound;
  }
  return model;
}

Vector Lda::DocTopics(size_t doc) const {
  CS_CHECK(doc < gamma_.rows());
  Vector theta = gamma_.Row(doc);
  const double total = theta.Sum();
  theta *= 1.0 / total;
  return theta;
}

Vector Lda::FoldIn(const LdaDocument& doc) const {
  const size_t k = options_.num_topics;
  Vector gamma(k, options_.alpha);
  if (!doc.empty()) InferDocument(doc, &gamma, nullptr);
  const double total = gamma.Sum();
  gamma *= 1.0 / total;
  return gamma;
}

Vector Lda::FoldIn(const BagOfWords& bag) const {
  LdaDocument doc;
  doc.reserve(bag.DistinctTerms());
  for (const auto& e : bag.entries()) {
    if (e.term < topic_term_.cols()) doc.emplace_back(e.term, e.count);
  }
  return FoldIn(doc);
}

}  // namespace crowdselect
