// Dual Role Model baseline (Xu et al., SIGIR'12 [28]): models worker skills
// as a *Multinomial* distribution over latent categories estimated with
// PLSA (paper §7.2.1). This is exactly the model whose normalization the
// paper criticizes: because sum_k w_k = 1, skill values are not comparable
// across workers on a specific category.
#ifndef CROWDSELECT_BASELINES_DRM_H_
#define CROWDSELECT_BASELINES_DRM_H_

#include <optional>
#include <string>
#include <vector>

#include "baselines/plsa.h"
#include "crowddb/selector_interface.h"

namespace crowdselect {

struct DrmOptions {
  PlsaOptions plsa;
  /// Weight each solved task's topic mixture by its feedback score when
  /// aggregating a worker's skill multinomial.
  bool feedback_weighted = true;
};

class DrmSelector : public CrowdSelector {
 public:
  explicit DrmSelector(DrmOptions options) : options_(std::move(options)) {}

  std::string Name() const override { return "DRM"; }
  Status Train(const CrowdDatabase& db) override;
  Result<std::vector<RankedWorker>> SelectTopK(
      const BagOfWords& task, size_t k,
      const std::vector<WorkerId>& candidates) const override;

  /// The worker's multinomial skill vector (sums to 1).
  const Vector& WorkerSkills(WorkerId worker) const;
  const Plsa& plsa() const { return *plsa_; }

 private:
  DrmOptions options_;
  std::optional<Plsa> plsa_;
  std::vector<Vector> skills_;  ///< Normalized, one per worker.
  bool trained_ = false;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_BASELINES_DRM_H_
