// Probabilistic Latent Semantic Analysis (Hofmann, SIGIR'99), implemented
// from scratch: the topic-model substrate of the DRM baseline [28].
#ifndef CROWDSELECT_BASELINES_PLSA_H_
#define CROWDSELECT_BASELINES_PLSA_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "text/bag_of_words.h"
#include "util/rng.h"
#include "util/status.h"

namespace crowdselect {

struct PlsaOptions {
  size_t num_topics = 10;
  int max_iterations = 60;
  /// Stop when relative log-likelihood improvement drops below this.
  double tolerance = 1e-5;
  /// Additive smoothing on p(w|z) to avoid zero probabilities.
  double term_smoothing = 1e-3;
  uint64_t seed = 7;
  /// EM iterations when folding in an unseen document.
  int fold_in_iterations = 15;
};

/// A sparse document: (term, count) pairs.
using PlsaDocument = std::vector<std::pair<TermId, uint32_t>>;

/// Fitted PLSA model: p(z|d) per training document and p(w|z).
class Plsa {
 public:
  /// Fits with EM. `vocab_size` bounds term ids.
  static Result<Plsa> Fit(const std::vector<PlsaDocument>& docs,
                          size_t vocab_size, const PlsaOptions& options);

  /// Topic mixture of training document d (row of p(z|d)).
  Vector DocTopics(size_t doc) const;
  /// p(w|z) matrix, topics x vocab.
  const Matrix& topic_term() const { return topic_term_; }
  size_t num_topics() const { return options_.num_topics; }
  size_t num_documents() const { return doc_topic_.rows(); }

  /// Folds an unseen document in: EM over p(z|d_new) with p(w|z) fixed.
  Vector FoldIn(const PlsaDocument& doc) const;
  Vector FoldIn(const BagOfWords& bag) const;

  /// Training log-likelihood after each iteration.
  const std::vector<double>& loglik_history() const { return loglik_history_; }

 private:
  Plsa() = default;

  PlsaOptions options_;
  Matrix doc_topic_;   ///< p(z|d), documents x topics (rows sum to 1).
  Matrix topic_term_;  ///< p(w|z), topics x vocab (rows sum to 1).
  std::vector<double> loglik_history_;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_BASELINES_PLSA_H_
