// Nonlinear conjugate-gradient minimizer. The paper's E-step has no closed
// form for (lambda_c, nu_c) and prescribes conjugate gradient on the
// negative evidence bound (Eqs. 14-15, 22-23); this is that solver.
#ifndef CROWDSELECT_LINALG_CONJUGATE_GRADIENT_H_
#define CROWDSELECT_LINALG_CONJUGATE_GRADIENT_H_

#include <functional>

#include "linalg/vector.h"
#include "util/status.h"

namespace crowdselect {

/// Objective interface: evaluate f(x) and its gradient at x.
/// Returns the function value; writes the gradient into *grad
/// (pre-sized to x.size()).
using ObjectiveFn = std::function<double(const Vector& x, Vector* grad)>;

struct CgOptions {
  int max_iterations = 200;
  /// Converged when the gradient max-norm drops below this.
  double gradient_tolerance = 1e-6;
  /// Converged when |f_new - f_old| <= value_tolerance * (1 + |f_old|).
  double value_tolerance = 1e-10;
  /// Armijo backtracking line-search parameters.
  double armijo_c1 = 1e-4;
  double backtrack_factor = 0.5;
  int max_line_search_steps = 40;
  double initial_step = 1.0;
};

struct CgResult {
  Vector x;                  ///< Final iterate.
  double value = 0.0;        ///< f at the final iterate.
  double gradient_norm = 0.0;  ///< Max-norm of the final gradient.
  int iterations = 0;
  bool converged = false;
};

/// Minimizes f starting from x0 with Polak-Ribiere+ conjugate gradient and
/// Armijo backtracking. Always returns the best iterate found; `converged`
/// is false when the iteration budget ran out first (callers in the E-step
/// accept inexact subproblem solutions, as coordinate ascent re-solves them
/// every outer iteration).
CgResult MinimizeCg(const ObjectiveFn& f, const Vector& x0,
                    const CgOptions& options = {});

}  // namespace crowdselect

#endif  // CROWDSELECT_LINALG_CONJUGATE_GRADIENT_H_
