#include "linalg/cholesky.h"

#include <cmath>

namespace crowdselect {

Result<Cholesky> Cholesky::Factorize(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  if (a.SymmetryError() > 1e-8 * (1.0 + a.MaxAbs())) {
    return Status::InvalidArgument("Cholesky requires a symmetric matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::InvalidArgument("matrix is not positive definite");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / ljj;
    }
  }
  return Cholesky(std::move(l), /*jitter=*/0.0);
}

Result<Cholesky> Cholesky::FactorizeWithJitter(const Matrix& a,
                                               double initial_jitter,
                                               int max_tries) {
  auto direct = Factorize(a);
  if (direct.ok()) return direct;
  if (direct.status().message() == "Cholesky requires a square matrix" ||
      direct.status().message() == "Cholesky requires a symmetric matrix") {
    return direct.status();
  }
  double jitter = initial_jitter * (1.0 + a.MaxAbs());
  for (int t = 0; t < max_tries; ++t, jitter *= 10.0) {
    Matrix repaired = a;
    repaired.AddDiagonal(jitter);
    auto attempt = Factorize(repaired);
    if (attempt.ok()) {
      Cholesky chol = std::move(attempt).value();
      chol.jitter_ = jitter;
      return chol;
    }
  }
  return Status::InvalidArgument(
      "matrix not positive definite even after jitter repair");
}

Vector Cholesky::Solve(const Vector& b) const {
  CS_DCHECK(b.size() == size());
  const size_t n = size();
  // Forward substitution: L y = b.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (size_t k = 0; k < i; ++k) acc -= l_(i, k) * y[k];
    y[i] = acc / l_(i, i);
  }
  // Back substitution: L^T x = y.
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (size_t k = ii + 1; k < n; ++k) acc -= l_(k, ii) * x[k];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::Solve(const Matrix& b) const {
  CS_DCHECK(b.rows() == size());
  Matrix out(b.rows(), b.cols());
  Vector col(b.rows());
  for (size_t j = 0; j < b.cols(); ++j) {
    for (size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    Vector x = Solve(col);
    for (size_t i = 0; i < b.rows(); ++i) out(i, j) = x[i];
  }
  return out;
}

Matrix Cholesky::Inverse() const { return Solve(Matrix::Identity(size())); }

double Cholesky::LogDet() const {
  double acc = 0.0;
  for (size_t i = 0; i < size(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

Result<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  CS_ASSIGN_OR_RETURN(Cholesky chol, Cholesky::FactorizeWithJitter(a));
  return chol.Solve(b);
}

Result<Matrix> InverseSpd(const Matrix& a) {
  CS_ASSIGN_OR_RETURN(Cholesky chol, Cholesky::FactorizeWithJitter(a));
  return chol.Inverse();
}

}  // namespace crowdselect
