// Cholesky factorization for symmetric positive-definite systems: the E-step
// update for lambda_w (Eq. 10) solves a K x K SPD system per worker, and the
// M-step needs log|Sigma| and Sigma^{-1}.
#ifndef CROWDSELECT_LINALG_CHOLESKY_H_
#define CROWDSELECT_LINALG_CHOLESKY_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace crowdselect {

/// Lower-triangular Cholesky factor of an SPD matrix, with solve/inverse/
/// logdet. Factorization fails with InvalidArgument when the input is not
/// (numerically) positive definite; see FactorizeWithJitter for repair.
class Cholesky {
 public:
  /// Factors A = L L^T. A must be square and symmetric.
  static Result<Cholesky> Factorize(const Matrix& a);

  /// Factors A + jitter*I, escalating jitter by 10x up to max_tries times
  /// until the factorization succeeds. Used on empirical covariances that
  /// are only positive semi-definite.
  static Result<Cholesky> FactorizeWithJitter(const Matrix& a,
                                              double initial_jitter = 1e-9,
                                              int max_tries = 12);

  /// Solves A x = b.
  Vector Solve(const Vector& b) const;
  /// Solves A X = B column-wise.
  Matrix Solve(const Matrix& b) const;
  /// A^{-1} (via solves against identity).
  Matrix Inverse() const;
  /// log |A| = 2 * sum log L_ii.
  double LogDet() const;

  size_t size() const { return l_.rows(); }
  const Matrix& lower() const { return l_; }
  /// Jitter that was added to the diagonal (0 when Factorize succeeded
  /// without repair).
  double jitter() const { return jitter_; }

 private:
  explicit Cholesky(Matrix l, double jitter) : l_(std::move(l)), jitter_(jitter) {}

  Matrix l_;
  double jitter_ = 0.0;
};

/// Convenience: solves the SPD system A x = b with jitter repair.
Result<Vector> SolveSpd(const Matrix& a, const Vector& b);

/// Convenience: inverse of an SPD matrix with jitter repair.
Result<Matrix> InverseSpd(const Matrix& a);

}  // namespace crowdselect

#endif  // CROWDSELECT_LINALG_CHOLESKY_H_
