#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

namespace crowdselect {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::Outer(const Vector& a, const Vector& b) {
  Matrix m(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) m(i, j) = a[i] * b[j];
  }
  return m;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  CS_DCHECK(rows_ == o.rows_ && cols_ == o.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  CS_DCHECK(rows_ == o.rows_ && cols_ == o.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix Matrix::operator+(const Matrix& o) const {
  Matrix out = *this;
  out += o;
  return out;
}

Matrix Matrix::operator-(const Matrix& o) const {
  Matrix out = *this;
  out -= o;
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  out *= s;
  return out;
}

void Matrix::AddDiagonal(double s) {
  CS_DCHECK(rows_ == cols_);
  for (size_t i = 0; i < rows_; ++i) data_[i * cols_ + i] += s;
}

void Matrix::AddDiagonal(const Vector& d, double s) {
  CS_DCHECK(rows_ == cols_ && d.size() == rows_);
  for (size_t i = 0; i < rows_; ++i) data_[i * cols_ + i] += s * d[i];
}

void Matrix::AddOuter(const Vector& a, double s) {
  CS_DCHECK(rows_ == cols_ && a.size() == rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double sai = s * a[i];
    for (size_t j = 0; j < cols_; ++j) data_[i * cols_ + j] += sai * a[j];
  }
}

Vector Matrix::Multiply(const Vector& v) const {
  CS_DCHECK(cols_ == v.size());
  Vector out(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    const double* row = &data_[i * cols_];
    for (size_t j = 0; j < cols_; ++j) acc += row[j] * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& o) const {
  CS_DCHECK(cols_ == o.rows_);
  Matrix out(rows_, o.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = data_[i * cols_ + k];
      if (aik == 0.0) continue;
      const double* brow = &o.data_[k * o.cols_];
      double* orow = &out.data_[i * o.cols_];
      for (size_t j = 0; j < o.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

Vector Matrix::Row(size_t r) const {
  CS_DCHECK(r < rows_);
  Vector out(cols_);
  for (size_t j = 0; j < cols_; ++j) out[j] = data_[r * cols_ + j];
  return out;
}

void Matrix::SetRow(size_t r, const Vector& v) {
  CS_DCHECK(r < rows_ && v.size() == cols_);
  for (size_t j = 0; j < cols_; ++j) data_[r * cols_ + j] = v[j];
}

double Matrix::FrobeniusDistance(const Matrix& o) const {
  CS_DCHECK(rows_ == o.rows_ && cols_ == o.cols_);
  double acc = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - o.data_[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double Matrix::MaxAbs() const {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::fabs(x));
  return acc;
}

double Matrix::Trace() const {
  CS_DCHECK(rows_ == cols_);
  double acc = 0.0;
  for (size_t i = 0; i < rows_; ++i) acc += data_[i * cols_ + i];
  return acc;
}

double Matrix::SymmetryError() const {
  CS_DCHECK(rows_ == cols_);
  double acc = 0.0;
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = i + 1; j < cols_; ++j) {
      acc = std::max(acc, std::fabs((*this)(i, j) - (*this)(j, i)));
    }
  }
  return acc;
}

void Matrix::Symmetrize() {
  CS_DCHECK(rows_ == cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = i + 1; j < cols_; ++j) {
      const double avg = 0.5 * ((*this)(i, j) + (*this)(j, i));
      (*this)(i, j) = avg;
      (*this)(j, i) = avg;
    }
  }
}

}  // namespace crowdselect
