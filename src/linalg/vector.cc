#include "linalg/vector.h"

#include <algorithm>
#include <cmath>

namespace crowdselect {

Vector& Vector::operator+=(const Vector& o) {
  CS_DCHECK(size() == o.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& o) {
  CS_DCHECK(size() == o.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Vector& Vector::CwiseMulInPlace(const Vector& o) {
  CS_DCHECK(size() == o.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= o.data_[i];
  return *this;
}

Vector Vector::operator+(const Vector& o) const {
  Vector out = *this;
  out += o;
  return out;
}

Vector Vector::operator-(const Vector& o) const {
  Vector out = *this;
  out -= o;
  return out;
}

Vector Vector::operator*(double s) const {
  Vector out = *this;
  out *= s;
  return out;
}

double Vector::Dot(const Vector& o) const {
  CS_DCHECK(size() == o.size());
  double acc = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) acc += data_[i] * o.data_[i];
  return acc;
}

double Vector::Norm() const { return std::sqrt(SquaredNorm()); }

double Vector::SquaredNorm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return acc;
}

double Vector::Sum() const {
  double acc = 0.0;
  for (double x : data_) acc += x;
  return acc;
}

double Vector::MaxAbs() const {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::fabs(x));
  return acc;
}

void Vector::Axpy(double s, const Vector& o) {
  CS_DCHECK(size() == o.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += s * o.data_[i];
}

Vector Vector::CwiseExp() const {
  Vector out(size());
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = std::exp(data_[i]);
  return out;
}

Vector Vector::Softmax() const {
  Vector out(size());
  if (empty()) return out;
  const double m = *std::max_element(data_.begin(), data_.end());
  double z = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = std::exp(data_[i] - m);
    z += out.data_[i];
  }
  for (double& x : out.data_) x /= z;
  return out;
}

}  // namespace crowdselect
