#include "linalg/vector.h"

#include <algorithm>
#include <cmath>

namespace crowdselect {

Vector& Vector::operator+=(const Vector& o) {
  CS_DCHECK(size() == o.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& o) {
  CS_DCHECK(size() == o.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Vector& Vector::CwiseMulInPlace(const Vector& o) {
  CS_DCHECK(size() == o.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= o.data_[i];
  return *this;
}

Vector Vector::operator+(const Vector& o) const {
  Vector out = *this;
  out += o;
  return out;
}

Vector Vector::operator-(const Vector& o) const {
  Vector out = *this;
  out -= o;
  return out;
}

Vector Vector::operator*(double s) const {
  Vector out = *this;
  out *= s;
  return out;
}

double Vector::Dot(const Vector& o) const {
  // Sequential accumulation on purpose: training numerics stay bit-stable.
  CS_DCHECK(size() == o.size());
  double acc = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) acc += data_[i] * o.data_[i];
  return acc;
}

double DotSpan(const double* a, const double* b, size_t n) {
  // Four independent accumulators so the loop is not serialized on one
  // floating-point dependency chain (and vectorizes cleanly).
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

double Vector::Norm() const { return std::sqrt(SquaredNorm()); }

double Vector::SquaredNorm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return acc;
}

double Vector::Sum() const {
  double acc = 0.0;
  for (double x : data_) acc += x;
  return acc;
}

double Vector::MaxAbs() const {
  double acc = 0.0;
  for (double x : data_) acc = std::max(acc, std::fabs(x));
  return acc;
}

void Vector::Axpy(double s, const Vector& o) {
  CS_DCHECK(size() == o.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += s * o.data_[i];
}

Vector Vector::CwiseExp() const {
  Vector out(size());
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = std::exp(data_[i]);
  return out;
}

Vector Vector::Softmax() const {
  Vector out(size());
  if (empty()) return out;
  const double m = *std::max_element(data_.begin(), data_.end());
  double z = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = std::exp(data_[i] - m);
    z += out.data_[i];
  }
  for (double& x : out.data_) x /= z;
  return out;
}

}  // namespace crowdselect
