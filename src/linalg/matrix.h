// Dense row-major matrix used for the K x K priors and their updates.
#ifndef CROWDSELECT_LINALG_MATRIX_H_
#define CROWDSELECT_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

#include "linalg/vector.h"
#include "util/logging.h"

namespace crowdselect {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Identity of size n.
  static Matrix Identity(size_t n);
  /// Diagonal matrix from a vector.
  static Matrix Diagonal(const Vector& d);
  /// Outer product a * b^T.
  static Matrix Outer(const Vector& a, const Vector& b);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) {
    CS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    CS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);
  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(double s) const;

  /// Adds s to every diagonal entry (requires square).
  void AddDiagonal(double s);
  /// Adds s * d[i] to diagonal entry i.
  void AddDiagonal(const Vector& d, double s = 1.0);
  /// this += s * a * a^T (rank-1 update; requires square of size a.size()).
  void AddOuter(const Vector& a, double s = 1.0);

  /// Matrix-vector product.
  Vector Multiply(const Vector& v) const;
  /// Matrix-matrix product.
  Matrix Multiply(const Matrix& o) const;
  /// Transpose.
  Matrix Transposed() const;

  /// Row r as a vector copy.
  Vector Row(size_t r) const;
  void SetRow(size_t r, const Vector& v);

  /// Borrowed pointer to row r's contiguous storage (cols() doubles).
  /// Invalidated by any reallocation of the matrix.
  const double* RowPtr(size_t r) const {
    CS_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  double* RowPtr(size_t r) {
    CS_DCHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  /// Frobenius norm of (this - o).
  double FrobeniusDistance(const Matrix& o) const;
  /// Largest absolute entry.
  double MaxAbs() const;
  /// Trace (requires square).
  double Trace() const;
  /// max |A - A^T| entry; 0 for exactly symmetric matrices.
  double SymmetryError() const;
  /// Averages A and A^T in place (requires square).
  void Symmetrize();

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace crowdselect

#endif  // CROWDSELECT_LINALG_MATRIX_H_
