// Dense double vector with the operations the variational algorithm needs.
#ifndef CROWDSELECT_LINALG_VECTOR_H_
#define CROWDSELECT_LINALG_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "util/logging.h"

namespace crowdselect {

/// Dense vector of doubles. Sizes are fixed after construction unless
/// explicitly Resize()d; element access is bounds-checked in debug builds.
class Vector {
 public:
  Vector() = default;
  explicit Vector(size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> init) : data_(init) {}
  explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  void Resize(size_t n, double fill = 0.0) { data_.assign(n, fill); }

  double& operator[](size_t i) {
    CS_DCHECK(i < data_.size());
    return data_[i];
  }
  double operator[](size_t i) const {
    CS_DCHECK(i < data_.size());
    return data_[i];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// In-place arithmetic; sizes must match.
  Vector& operator+=(const Vector& o);
  Vector& operator-=(const Vector& o);
  Vector& operator*=(double s);
  /// Element-wise product (Hadamard).
  Vector& CwiseMulInPlace(const Vector& o);

  Vector operator+(const Vector& o) const;
  Vector operator-(const Vector& o) const;
  Vector operator*(double s) const;

  /// Dot product; sizes must match.
  double Dot(const Vector& o) const;
  /// Euclidean norm.
  double Norm() const;
  /// Squared Euclidean norm.
  double SquaredNorm() const;
  /// Sum of entries.
  double Sum() const;
  /// Largest absolute entry (0 for empty).
  double MaxAbs() const;

  /// this += s * o  (axpy).
  void Axpy(double s, const Vector& o);

  /// Returns exp of each entry.
  Vector CwiseExp() const;

  /// Softmax of the entries (numerically stabilized by max subtraction).
  Vector Softmax() const;

  bool operator==(const Vector& o) const { return data_ == o.data_; }

  /// Raw contiguous storage, for kernels that scan many vectors (the
  /// serving engine's skill-matrix rows).
  const double* raw() const { return data_.data(); }
  double* raw() { return data_.data(); }

 private:
  std::vector<double> data_;
};

/// Dot product over raw contiguous spans: the serving scan kernel. The
/// caller guarantees both spans hold at least n doubles.
double DotSpan(const double* a, const double* b, size_t n);

}  // namespace crowdselect

#endif  // CROWDSELECT_LINALG_VECTOR_H_
