#include "linalg/gradient_check.h"

#include <algorithm>
#include <cmath>

namespace crowdselect {

GradientCheckReport CheckGradient(const ObjectiveFn& f, const Vector& x,
                                  double h) {
  GradientCheckReport report;
  Vector analytic(x.size());
  f(x, &analytic);

  Vector scratch(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    Vector xp = x;
    Vector xm = x;
    xp[i] += h;
    xm[i] -= h;
    const double fp = f(xp, &scratch);
    const double fm = f(xm, &scratch);
    const double numeric = (fp - fm) / (2.0 * h);
    const double abs_err = std::fabs(analytic[i] - numeric);
    const double rel_err =
        abs_err / std::max({1.0, std::fabs(analytic[i]), std::fabs(numeric)});
    report.max_abs_error = std::max(report.max_abs_error, abs_err);
    if (rel_err > report.max_rel_error) {
      report.max_rel_error = rel_err;
      report.worst_coordinate = i;
    }
  }
  return report;
}

}  // namespace crowdselect
