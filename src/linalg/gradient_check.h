// Central-difference gradient checking; used by the test suite to verify the
// re-derived analytic gradients of the evidence bound (see DESIGN.md §1,
// "Corrections to the paper's appendix").
#ifndef CROWDSELECT_LINALG_GRADIENT_CHECK_H_
#define CROWDSELECT_LINALG_GRADIENT_CHECK_H_

#include "linalg/conjugate_gradient.h"
#include "linalg/vector.h"

namespace crowdselect {

struct GradientCheckReport {
  /// Largest absolute difference between the analytic and numeric gradient.
  double max_abs_error = 0.0;
  /// Largest relative difference, max over coordinates of
  /// |g_a - g_n| / max(1, |g_a|, |g_n|).
  double max_rel_error = 0.0;
  /// Coordinate where max_rel_error occurred.
  size_t worst_coordinate = 0;
};

/// Compares the analytic gradient of `f` at `x` against a central
/// difference with step `h`.
GradientCheckReport CheckGradient(const ObjectiveFn& f, const Vector& x,
                                  double h = 1e-5);

}  // namespace crowdselect

#endif  // CROWDSELECT_LINALG_GRADIENT_CHECK_H_
