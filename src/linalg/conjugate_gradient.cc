#include "linalg/conjugate_gradient.h"

#include <algorithm>
#include <cmath>

namespace crowdselect {

CgResult MinimizeCg(const ObjectiveFn& f, const Vector& x0,
                    const CgOptions& options) {
  CgResult result;
  Vector x = x0;
  Vector grad(x.size());
  double fx = f(x, &grad);

  Vector direction = grad * -1.0;
  Vector prev_grad = grad;

  result.x = x;
  result.value = fx;
  result.gradient_norm = grad.MaxAbs();

  for (int it = 0; it < options.max_iterations; ++it) {
    result.iterations = it + 1;
    if (grad.MaxAbs() < options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    // Ensure a descent direction; restart with steepest descent otherwise.
    double dir_dot_grad = direction.Dot(grad);
    if (dir_dot_grad >= 0.0 || !std::isfinite(dir_dot_grad)) {
      direction = grad * -1.0;
      dir_dot_grad = direction.Dot(grad);
    }

    // Armijo backtracking along `direction`.
    double step = options.initial_step;
    double f_new = fx;
    Vector x_new = x;
    bool accepted = false;
    for (int ls = 0; ls < options.max_line_search_steps; ++ls) {
      x_new = x;
      x_new.Axpy(step, direction);
      Vector dummy(x.size());  // Gradient not needed during backtracking.
      f_new = f(x_new, &dummy);
      if (std::isfinite(f_new) &&
          f_new <= fx + options.armijo_c1 * step * dir_dot_grad) {
        accepted = true;
        break;
      }
      step *= options.backtrack_factor;
    }
    if (!accepted) {
      // Line search failed: the current point is (numerically) a minimizer
      // along every direction we can probe.
      result.converged = grad.MaxAbs() < 1e2 * options.gradient_tolerance;
      break;
    }

    const double f_old = fx;
    x = std::move(x_new);
    prev_grad = grad;
    fx = f(x, &grad);

    if (fx < result.value) {
      result.x = x;
      result.value = fx;
      result.gradient_norm = grad.MaxAbs();
    }

    if (std::fabs(f_old - fx) <=
        options.value_tolerance * (1.0 + std::fabs(f_old))) {
      result.converged = true;
      break;
    }

    // Polak-Ribiere+ update.
    Vector grad_diff = grad - prev_grad;
    const double denom = prev_grad.Dot(prev_grad);
    double beta = denom > 0.0 ? std::max(0.0, grad.Dot(grad_diff) / denom) : 0.0;
    direction *= beta;
    direction -= grad;
  }

  result.gradient_norm = grad.MaxAbs();
  if (fx <= result.value) {
    result.x = x;
    result.value = fx;
  }
  return result;
}

}  // namespace crowdselect
