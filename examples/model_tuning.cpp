// Model tuning walkthrough: choose the number of latent categories K on a
// validation split (the paper sweeps K=10..50 by hand), then confirm the
// final configuration with repeated random splits and bootstrap
// confidence intervals — the workflow a practitioner would follow before
// deploying the selector.
#include <cstdio>

#include "crowdselect/crowdselect.h"
#include "eval/repeated_splits.h"

using namespace crowdselect;

int main() {
  // A medium synthetic platform.
  PlatformConfig config = DefaultPlatformConfig(Platform::kQuora);
  config.world.num_workers = 60;
  config.world.num_tasks = 500;
  config.world.vocab_size = 350;
  config.world.num_categories = 5;
  config.world.mean_answers_per_task = 3.5;
  auto dataset = GeneratePlatformDataset(Platform::kQuora, config, 314);
  CS_CHECK(dataset.ok());
  const WorkerGroup group = MakeGroup(dataset->db, 1, "Quora");

  // Step 1: choose K on a validation split.
  SplitOptions split_options;
  split_options.num_test_tasks = 60;
  auto split = MakeSplit(*dataset, group, split_options);
  CS_CHECK(split.ok());
  CategorySelectionOptions selection_options;
  selection_options.candidates = {2, 5, 10, 20};
  auto choice = SelectNumCategories(*split, selection_options);
  CS_CHECK(choice.ok());
  std::printf("K sweep (validation ACCU):\n");
  for (const auto& [k, accu] : choice->sweep) {
    std::printf("  K=%-3zu ACCU=%.3f%s\n", k, accu,
                k == choice->best_k ? "   <- selected" : "");
  }

  // Step 2: robustness check — repeated random splits with the chosen K.
  std::printf("\nRepeated random splits (5 runs) at K=%zu:\n", choice->best_k);
  RepeatedSplitOptions repeated;
  repeated.repetitions = 5;
  repeated.split.num_test_tasks = 60;
  auto results = RunRepeatedSplits(
      *dataset, group, StandardSelectorFactories(choice->best_k, 97),
      repeated);
  CS_CHECK(results.ok());
  for (const auto& r : *results) {
    std::printf("  %-5s ACCU %.3f +/- %.3f   Top1 %.3f +/- %.3f\n",
                r.name.c_str(), r.accu.mean, r.accu.stddev, r.top1.mean,
                r.top1.stddev);
  }

  // Step 3: bootstrap CI for the winner on one split.
  TdpmOptions options;
  options.num_categories = choice->best_k;
  options.max_em_iterations = 20;
  options.num_threads = 0;
  TdpmSelector selector(options);
  CS_CHECK_OK(selector.Train(split->train_db));
  std::vector<RankSample> samples;
  for (const auto& c : split->cases) {
    const BagOfWords& bag = split->train_db.GetTask(c.task).value()->bag;
    auto ranking =
        selector.SelectTopK(bag, c.candidates.size(), c.candidates);
    CS_CHECK(ranking.ok());
    size_t rank0 = 0;
    for (size_t i = 0; i < ranking->size(); ++i) {
      if ((*ranking)[i].worker == c.right_worker) rank0 = i;
    }
    samples.push_back({rank0, ranking->size()});
  }
  auto ci = BootstrapAccu(samples);
  CS_CHECK(ci.ok());
  std::printf("\nTDPM final: ACCU %.3f, 95%% bootstrap CI [%.3f, %.3f] over "
              "%zu test questions\n",
              ci->mean, ci->lo, ci->hi, samples.size());
  return 0;
}
