// Tour of the crowdsourcing-database substrate: crowd insertion, update
// and retrieval; secondary indexes; feedback bookkeeping; binary
// persistence with atomic writes; and the trained-model snapshot format.
#include <cstdio>
#include <filesystem>

#include "crowdselect/crowdselect.h"

using namespace crowdselect;

int main() {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string db_path = (dir / "tour.csdb").string();
  const std::string model_path = (dir / "tour.cstm").string();

  // --- Crowd insertion ------------------------------------------------
  CrowdDatabase db;
  const WorkerId alice = db.AddWorker("alice");
  const WorkerId bob = db.AddWorker("bob");
  db.AddWorker("carol", /*online=*/false);
  const TaskId t0 = db.AddTask("why is my btree index not used by the planner");
  const TaskId t1 = db.AddTask("eigenvalues of a symmetric matrix are real");
  CS_CHECK_OK(db.Assign(alice, t0));
  CS_CHECK_OK(db.Assign(bob, t0));
  CS_CHECK_OK(db.Assign(bob, t1));
  CS_CHECK_OK(db.RecordFeedback(alice, t0, 4.0));
  CS_CHECK_OK(db.RecordFeedback(bob, t0, 1.0));
  CS_CHECK_OK(db.RecordFeedback(bob, t1, 5.0));
  std::printf("inserted: %zu workers, %zu tasks, %zu assignments (%zu scored)\n",
              db.NumWorkers(), db.NumTasks(), db.NumAssignments(),
              db.NumScoredAssignments());

  // --- Crowd retrieval --------------------------------------------------
  std::printf("alice participation: %zu | bob participation: %zu\n",
              db.ParticipationOf(alice), db.ParticipationOf(bob));
  std::printf("score(bob, t1) = %.1f\n", *db.GetScore(bob, t1));
  std::printf("online workers:");
  for (WorkerId w : db.OnlineWorkers()) {
    std::printf(" %s", db.GetWorker(w).value()->handle.c_str());
  }
  std::printf("\n");
  std::printf("vocabulary holds %zu distinct terms; 'btree' -> id %u\n",
              db.vocabulary().size(), db.vocabulary().Lookup("btree"));

  // --- Crowd update: infer skills and write them back -------------------
  TdpmOptions options;
  options.num_categories = 2;
  options.max_em_iterations = 15;
  TdpmSelector selector(options);
  CS_CHECK_OK(selector.Train(db));
  CS_CHECK_OK(selector.WriteBack(&db));
  const auto& skills = db.GetWorker(bob).value()->skills;
  std::printf("bob's inferred latent skills: (%.2f, %.2f)\n", skills[0],
              skills[1]);

  // --- Persistence -------------------------------------------------------
  CS_CHECK_OK(CrowdDatabasePersistence::SaveToFile(db, db_path));
  TdpmModelSnapshot snapshot;
  snapshot.params = selector.fit().params;
  snapshot.workers = selector.fit().state.workers;
  CS_CHECK_OK(snapshot.SaveToFile(model_path));
  std::printf("persisted database -> %s (%ju bytes), model -> %s (%ju bytes)\n",
              db_path.c_str(),
              static_cast<uintmax_t>(std::filesystem::file_size(db_path)),
              model_path.c_str(),
              static_cast<uintmax_t>(std::filesystem::file_size(model_path)));

  // --- Reload and keep serving -------------------------------------------
  auto reloaded = CrowdDatabasePersistence::LoadFromFile(db_path);
  CS_CHECK(reloaded.ok());
  auto model = TdpmModelSnapshot::LoadFromFile(model_path);
  CS_CHECK(model.ok());
  auto folder = TaskFolder::Create(model->params, options);
  CS_CHECK(folder.ok());

  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords probe = BagOfWords::FromTextFrozen(
      "btree index tuning question", tokenizer, reloaded->vocabulary());
  const FoldInResult projected = folder->FoldIn(probe);
  TopKAccumulator top(1);
  for (WorkerId w : reloaded->OnlineWorkers()) {
    top.Offer(w, Vector(model->workers[w].lambda).Dot(projected.category));
  }
  const auto best = top.Take();
  std::printf("after reload, best online worker for a btree question: %s\n",
              reloaded->GetWorker(best[0].worker).value()->handle.c_str());

  std::filesystem::remove(db_path);
  std::filesystem::remove(model_path);
  return 0;
}
