// Question-routing scenario: a synthetic Quora-like platform where every
// incoming question is routed to the top-k online workers, answers are
// collected, and the crowd model is refreshed periodically — the full
// architecture of the paper's Figure 1, with a side-by-side comparison
// against trustworthiness-style routing (most-thumbs-up-overall).
#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_set>

#include "crowdselect/crowdselect.h"

using namespace crowdselect;

int main() {
  // A scaled-down Quora.
  PlatformConfig config = DefaultPlatformConfig(Platform::kQuora);
  config.world.num_workers = 50;
  config.world.num_tasks = 700;
  config.world.vocab_size = 500;
  config.world.num_categories = 6;
  config.world.mean_answers_per_task = 3.5;
  // A specialist-heavy world: skills vary a lot across categories and are
  // uncorrelated, and tasks are strongly single-topic, so "globally
  // trusted" workers genuinely differ from the right worker per task.
  config.world.skill_stddev = 2.2;
  config.world.skill_correlation = 0.0;
  config.world.category_concentration = 4.0;
  auto dataset = GeneratePlatformDataset(Platform::kQuora, config, 2026);
  CS_CHECK(dataset.ok()) << dataset.status().ToString();
  CrowdDatabase& db = dataset->db;
  std::printf("Generated platform: %zu workers, %zu resolved questions, "
              "%zu answers\n\n",
              db.NumWorkers(), db.NumTasks(), db.NumAssignments());

  // Train the task-driven crowd model.
  TdpmOptions options;
  options.num_categories = 6;
  options.max_em_iterations = 20;
  options.num_threads = 0;
  CrowdManager manager(&db, std::make_unique<TdpmSelector>(options));
  CS_CHECK_OK(manager.InferCrowdModel());

  // Route among the active crowd (participation >= 5): the paper's
  // experiments show selection from active workers is both faster to a
  // good answer and far better estimated. Inactive workers go offline.
  const WorkerGroup active = MakeGroup(db, 5, "Quora");
  {
    std::unordered_set<WorkerId> keep(active.members.begin(),
                                      active.members.end());
    for (WorkerId w = 0; w < db.NumWorkers(); ++w) {
      if (!keep.count(w)) manager.online_pool()->CheckOut(w);
    }
  }
  std::printf("Routing among %zu active workers (participation >= 5)\n\n",
              manager.online_pool()->size());

  // Trustworthiness baseline: rank workers by average feedback earned,
  // independent of the task (what the paper's introduction argues
  // against).
  std::map<WorkerId, std::pair<double, int>> totals;
  for (const auto& a : db.assignments()) {
    if (!a.has_score) continue;
    totals[a.worker].first += a.score;
    totals[a.worker].second += 1;
  }
  auto trustworthiness = [&](WorkerId w) {
    auto it = totals.find(w);
    return it == totals.end() || it->second.second == 0
               ? 0.0
               : it->second.first / it->second.second;
  };

  // Route 200 fresh questions drawn from the same ground-truth world and
  // score each router by the true performance of its picked worker.
  TdpmGenerator generator(dataset->world.params);
  Rng rng(99);
  double tdpm_perf = 0.0, trust_perf = 0.0, oracle_perf = 0.0;
  const int num_queries = 200;
  const auto online = db.OnlineWorkers();
  for (int q = 0; q < num_queries; ++q) {
    auto task = generator.SampleTask(14, &rng);
    CS_CHECK(task.ok());
    const Vector proportions = task->categories.Softmax();

    auto picked = manager.SelectCrowd(task->bag, 1);
    CS_CHECK(picked.ok());
    const WorkerId tdpm_pick = (*picked)[0].worker;
    tdpm_perf += dataset->world.draw.worker_skills[tdpm_pick].Dot(proportions);

    WorkerId trust_pick = online[0];
    double best_trust = -1.0;
    double best_oracle = -1e300;
    for (WorkerId w : online) {
      if (trustworthiness(w) > best_trust) {
        best_trust = trustworthiness(w);
        trust_pick = w;
      }
      best_oracle = std::max(
          best_oracle, dataset->world.draw.worker_skills[w].Dot(proportions));
    }
    trust_perf += dataset->world.draw.worker_skills[trust_pick].Dot(proportions);
    oracle_perf += best_oracle;
  }

  std::printf("Mean true performance of the routed worker over %d fresh "
              "questions:\n", num_queries);
  std::printf("  task-driven (TDPM)          : %.3f\n", tdpm_perf / num_queries);
  std::printf("  trustworthiness (global avg): %.3f\n", trust_perf / num_queries);
  std::printf("  oracle (true best worker)   : %.3f\n", oracle_perf / num_queries);
  std::printf("\nTask-driven selection captures most of the oracle gap that "
              "task-agnostic trustworthiness leaves on the table.\n");
  return 0;
}
