// Quickstart: the paper's running example end to end.
//
// Builds a small crowd database of resolved Q&A tasks with feedback
// scores, infers the crowd model (Algorithm 2), and asks the central
// question of the paper for a brand-new task — "What are the advantages
// of B+ Tree over B Tree?" — who is the right worker to ask?
#include <cstdio>

#include "crowdselect/crowdselect.h"

using namespace crowdselect;

int main() {
  CrowdDatabase db;

  // Seven workers, as in the paper's Figure 2.
  const char* handles[] = {"w1", "w2", "w3", "w4", "w5", "w6", "w7"};
  for (const char* h : handles) db.AddWorker(h);

  // Resolved history: w3/w4 shine on database questions, w1/w6 on
  // cooking questions, the rest are middling. Feedback = thumbs-up.
  struct Resolved {
    const char* text;
    double scores[7];  // one per worker; negative = did not answer.
  };
  const Resolved history[] = {
      {"how does a btree index split pages", {0, 3, 4, 4, 2, -1, 3}},
      {"clustered index versus heap table scan", {-1, 2, 5, 4, 1, 0, 2}},
      {"write ahead log and checkpoint in storage engines", {0, 3, 4, 5, -1, 1, 2}},
      {"query planner chooses index scan", {1, 2, 4, 4, 2, 0, -1}},
      {"how long to roast a chicken evenly", {5, 1, 0, -1, 2, 4, 1}},
      {"best way to caramelize onions slowly", {4, 0, -1, 0, 1, 5, 1}},
      {"sourdough starter feeding schedule", {5, 1, 0, 0, -1, 4, 0}},
      {"knife sharpening angle for a chef knife", {4, 1, 1, -1, 2, 5, 0}},
  };
  for (const auto& r : history) {
    const TaskId t = db.AddTask(r.text);
    for (WorkerId w = 0; w < 7; ++w) {
      if (r.scores[w] < 0) continue;  // a_ij = 0.
      CS_CHECK_OK(db.Assign(w, t));
      CS_CHECK_OK(db.RecordFeedback(w, t, r.scores[w]));
    }
  }

  // Attach the TDPM selector to a crowd manager and infer "who knows
  // what" from the resolved tasks (Algorithm 2).
  TdpmOptions options;
  options.num_categories = 2;
  options.max_em_iterations = 30;
  CrowdManager manager(&db, std::make_unique<TdpmSelector>(options));
  CS_CHECK_OK(manager.InferCrowdModel());

  // The paper's query task, never seen before (Algorithm 3 + Eq. 1).
  const std::string question = "What are the advantages of B+ Tree over B Tree?";
  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords bag =
      BagOfWords::FromTextFrozen(question, tokenizer, db.vocabulary());

  auto crowd = manager.SelectCrowd(bag, 3);
  CS_CHECK(crowd.ok()) << crowd.status().ToString();

  std::printf("Task: %s\n", question.c_str());
  std::printf("Top-3 crowd selection (task-driven):\n");
  for (const auto& rw : *crowd) {
    std::printf("  %-4s predictive performance %.3f\n",
                db.GetWorker(rw.worker).value()->handle.c_str(), rw.score);
  }
  std::printf("\nExpected: the database specialists (w3, w4) outrank the "
              "cooking specialists despite similar total thumbs-up.\n");
  return 0;
}
