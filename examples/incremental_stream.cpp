// Incremental crowd-selection under a live task stream (paper section 6):
// tasks arrive continuously; each is projected into the existing latent
// category space in milliseconds (Algorithm 3) instead of re-running batch
// inference; workers check in and out of the online pool; the model is
// refreshed only every N resolved tasks.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "crowdselect/crowdselect.h"
#include "util/timer.h"

using namespace crowdselect;

int main() {
  PlatformConfig config = DefaultPlatformConfig(Platform::kStackOverflow);
  config.world.num_workers = 80;
  config.world.num_tasks = 500;
  config.world.vocab_size = 300;
  config.world.num_categories = 5;
  auto dataset = GeneratePlatformDataset(Platform::kStackOverflow, config, 7);
  CS_CHECK(dataset.ok()) << dataset.status().ToString();
  CrowdDatabase& db = dataset->db;

  TdpmOptions options;
  options.num_categories = 5;
  options.max_em_iterations = 15;
  options.num_threads = 0;
  CrowdManager manager(&db, std::make_unique<TdpmSelector>(options));
  manager.set_retrain_interval(40);  // Batch refresh every 40 resolutions.

  Timer train_timer;
  CS_CHECK_OK(manager.InferCrowdModel());
  std::printf("Initial batch inference over %zu resolved tasks: %.2f s\n\n",
              db.NumTasks(), train_timer.ElapsedSeconds());

  // Ground-truth-backed simulated workers answer whatever is dispatched.
  TdpmGenerator generator(dataset->world.params);
  Rng rng(123);
  TaskDispatcher dispatcher(
      &db,
      [](WorkerId w, const TaskRecord&) {
        return "answer from worker " + std::to_string(w);
      },
      [&](WorkerId w, const TaskRecord& rec, const std::string&) {
        // Realized thumbs-up from the true world (noisy).
        Tokenizer tokenizer;
        BagOfWords bag = rec.bag;
        // The true category of a streamed task is unknown to the system;
        // approximate the realized quality by the worker's mean skill.
        double mean_skill = 0.0;
        const auto& skills = dataset->world.draw.worker_skills[w];
        for (size_t d = 0; d < skills.size(); ++d) mean_skill += skills[d];
        mean_skill /= static_cast<double>(skills.size());
        return std::max(0.0, std::round(mean_skill + rng.Normal(0.0, 0.5)));
      });

  // Stream 100 arriving tasks; churn the online pool as we go.
  Timer stream_timer;
  size_t dispatched = 0;
  double fold_ms_total = 0.0;
  for (int arrival = 0; arrival < 100; ++arrival) {
    // Random worker churn: ~5% of workers toggle between tasks.
    for (int c = 0; c < 4; ++c) {
      const WorkerId w = static_cast<WorkerId>(rng.UniformInt(db.NumWorkers()));
      if (manager.online_pool()->IsOnline(w)) {
        manager.online_pool()->CheckOut(w);
      } else {
        manager.online_pool()->CheckIn(w);
      }
    }

    auto task = generator.SampleTask(9, &rng);
    CS_CHECK(task.ok());
    std::string text;
    for (TermId term : task->tokens) {
      if (!text.empty()) text += ' ';
      text += db.vocabulary().TermOf(term);
    }

    Timer fold_timer;
    auto answers = manager.ProcessTask(text, 3, &dispatcher);
    fold_ms_total += fold_timer.ElapsedMillis();
    CS_CHECK(answers.ok()) << answers.status().ToString();
    dispatched += answers->size();

    if (arrival % 25 == 24) {
      std::printf("  after %3d arrivals: %zu answers collected, online pool "
                  "size %zu, mean latency %.2f ms/task\n",
                  arrival + 1, dispatched, manager.online_pool()->size(),
                  fold_ms_total / (arrival + 1));
    }
  }
  std::printf("\nStream of 100 tasks processed in %.2f s (includes two "
              "scheduled model refreshes at the 40-task interval).\n",
              stream_timer.ElapsedSeconds());
  return 0;
}
