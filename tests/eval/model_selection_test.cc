#include "eval/model_selection.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace crowdselect {
namespace {

EvalSplit MakeTinySplit() {
  PlatformConfig config = DefaultPlatformConfig(Platform::kQuora);
  config.world.num_workers = 25;
  config.world.num_tasks = 150;
  config.world.vocab_size = 120;
  config.world.num_categories = 3;
  config.world.mean_answers_per_task = 4.0;
  auto dataset = GeneratePlatformDataset(Platform::kQuora, config, 77);
  CS_CHECK(dataset.ok());
  WorkerGroup group = MakeGroup(dataset->db, 1, "Quora");
  SplitOptions split_options;
  split_options.num_test_tasks = 30;
  auto split = MakeSplit(*dataset, group, split_options);
  CS_CHECK(split.ok());
  return std::move(split).value();
}

TEST(ModelSelectionTest, ValidatesInputs) {
  EvalSplit split = MakeTinySplit();
  CategorySelectionOptions options;
  options.candidates.clear();
  EXPECT_TRUE(
      SelectNumCategories(split, options).status().IsInvalidArgument());

  EvalSplit empty;
  empty.train_db = split.train_db;  // Cases empty.
  EXPECT_TRUE(SelectNumCategories(empty).status().IsInvalidArgument());
}

TEST(ModelSelectionTest, PicksBestValidationK) {
  EvalSplit split = MakeTinySplit();
  CategorySelectionOptions options;
  options.candidates = {2, 4, 8};
  options.min_improvement = -1.0;  // Disable early stop: sweep everything.
  auto result = SelectNumCategories(split, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->sweep.size(), 3u);
  double best = 0.0;
  size_t best_k = 0;
  for (const auto& [k, accu] : result->sweep) {
    if (accu > best) {
      best = accu;
      best_k = k;
    }
  }
  EXPECT_EQ(result->best_k, best_k);
  EXPECT_DOUBLE_EQ(result->best_accu, best);
  EXPECT_GT(result->best_accu, 0.4);  // Sanity: above random-ish.
}

TEST(ModelSelectionTest, EarlyStopsOnConvergence) {
  EvalSplit split = MakeTinySplit();
  CategorySelectionOptions options;
  options.candidates = {2, 4, 8, 16, 32};
  options.min_improvement = 1.0;  // Any non-huge gain stops the sweep.
  auto result = SelectNumCategories(split, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->sweep.size(), options.candidates.size());
}

}  // namespace
}  // namespace crowdselect
