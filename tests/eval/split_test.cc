#include "eval/split.h"

#include <gtest/gtest.h>

#include "util/logging.h"

#include <unordered_set>

namespace crowdselect {
namespace {

SyntheticDataset TinyDataset(uint64_t seed) {
  PlatformConfig config = DefaultPlatformConfig(Platform::kQuora);
  config.world.num_workers = 25;
  config.world.num_tasks = 120;
  config.world.vocab_size = 120;
  config.world.num_categories = 3;
  config.world.mean_answers_per_task = 4.0;
  auto dataset = GeneratePlatformDataset(Platform::kQuora, config, seed);
  CS_CHECK(dataset.ok()) << dataset.status().ToString();
  return std::move(dataset).value();
}

TEST(SplitTest, CasesSatisfyEligibilityRules) {
  SyntheticDataset dataset = TinyDataset(1);
  WorkerGroup group = MakeGroup(dataset.db, 2, "Quora");
  SplitOptions options;
  options.num_test_tasks = 20;
  options.min_candidates = 3;
  auto split = MakeSplit(dataset, group, options);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_LE(split->cases.size(), 20u);
  EXPECT_FALSE(split->cases.empty());

  std::unordered_set<WorkerId> members(group.members.begin(),
                                       group.members.end());
  for (const auto& c : split->cases) {
    EXPECT_GE(c.candidates.size(), 3u);
    EXPECT_TRUE(members.count(c.right_worker));
    bool right_in_candidates = false;
    for (WorkerId w : c.candidates) {
      EXPECT_TRUE(members.count(w));
      if (w == c.right_worker) right_in_candidates = true;
    }
    EXPECT_TRUE(right_in_candidates);
  }
}

TEST(SplitTest, TestTasksHiddenFromTraining) {
  SyntheticDataset dataset = TinyDataset(2);
  WorkerGroup group = MakeGroup(dataset.db, 1, "Quora");
  SplitOptions options;
  options.num_test_tasks = 15;
  auto split = MakeSplit(dataset, group, options);
  ASSERT_TRUE(split.ok());
  for (const auto& c : split->cases) {
    // No assignments (and hence no feedback) survive for test tasks.
    EXPECT_TRUE(split->train_db.AssignmentsOfTask(c.task).empty());
    // Task text/bag still present for selectors that need the corpus.
    EXPECT_FALSE(split->train_db.GetTask(c.task).value()->bag.empty());
  }
  // Training db keeps all workers and tasks.
  EXPECT_EQ(split->train_db.NumWorkers(), dataset.db.NumWorkers());
  EXPECT_EQ(split->train_db.NumTasks(), dataset.db.NumTasks());
  EXPECT_LT(split->train_db.NumAssignments(), dataset.db.NumAssignments());
}

TEST(SplitTest, VocabularySharedWithOriginal) {
  SyntheticDataset dataset = TinyDataset(3);
  WorkerGroup group = MakeGroup(dataset.db, 1, "Quora");
  auto split = MakeSplit(dataset, group, SplitOptions{});
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train_db.vocabulary().size(),
            dataset.db.vocabulary().size());
}

TEST(SplitTest, DeterministicForSeed) {
  SyntheticDataset dataset = TinyDataset(4);
  WorkerGroup group = MakeGroup(dataset.db, 1, "Quora");
  SplitOptions options;
  options.seed = 99;
  auto s1 = MakeSplit(dataset, group, options);
  auto s2 = MakeSplit(dataset, group, options);
  ASSERT_TRUE(s1.ok() && s2.ok());
  ASSERT_EQ(s1->cases.size(), s2->cases.size());
  for (size_t i = 0; i < s1->cases.size(); ++i) {
    EXPECT_EQ(s1->cases[i].task, s2->cases[i].task);
  }
}

TEST(SplitTest, EmptyGroupRejected) {
  SyntheticDataset dataset = TinyDataset(5);
  WorkerGroup empty;
  EXPECT_TRUE(
      MakeSplit(dataset, empty, SplitOptions{}).status().IsInvalidArgument());
}

TEST(SplitTest, ImpossibleEligibilityFailsCleanly) {
  SyntheticDataset dataset = TinyDataset(6);
  WorkerGroup group = MakeGroup(dataset.db, 1, "Quora");
  SplitOptions options;
  options.min_candidates = 50;  // More than any task's answerers.
  EXPECT_TRUE(
      MakeSplit(dataset, group, options).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace crowdselect
