#include "eval/reporter.h"

#include <gtest/gtest.h>

#include <sstream>

namespace crowdselect {
namespace {

TEST(ReporterTest, FormatsAlignedTable) {
  TableReporter table("Demo Table");
  table.SetHeader({"Algorithm", "ACCU"});
  table.AddRow({"VSM", "0.859"});
  table.AddRow({"TDPM", "0.945"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo Table"), std::string::npos);
  EXPECT_NE(out.find("| Algorithm | ACCU  |"), std::string::npos);
  EXPECT_NE(out.find("| TDPM      | 0.945 |"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(ReporterTest, CellFormatsPrecision) {
  EXPECT_EQ(TableReporter::Cell(0.94567), "0.946");
  EXPECT_EQ(TableReporter::Cell(1.0), "1.000");
  EXPECT_EQ(TableReporter::Cell(0.5, 1), "0.5");
}

TEST(ReporterTest, RaggedRowsHandled) {
  TableReporter table("Ragged");
  table.SetHeader({"a", "b"});
  table.AddRow({"only one"});
  table.AddRow({"x", "y", "extra"});
  std::ostringstream os;
  table.Print(os);  // Must not crash; pads missing cells.
  EXPECT_NE(os.str().find("only one"), std::string::npos);
  EXPECT_NE(os.str().find("extra"), std::string::npos);
}

TEST(ReporterTest, EmptyTablePrintsTitle) {
  TableReporter table("Empty");
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("Empty"), std::string::npos);
}

}  // namespace
}  // namespace crowdselect
