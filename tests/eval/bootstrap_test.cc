#include "eval/bootstrap.h"

#include <gtest/gtest.h>

namespace crowdselect {
namespace {

std::vector<RankSample> UniformRanks(size_t n, size_t candidates) {
  // Ranks cycling 0..candidates-1: mean ACCU exactly 0.5.
  std::vector<RankSample> samples;
  for (size_t i = 0; i < n; ++i) {
    samples.push_back({i % candidates, candidates});
  }
  return samples;
}

TEST(BootstrapTest, ValidatesInputs) {
  EXPECT_TRUE(BootstrapAccu({}).status().IsInvalidArgument());
  BootstrapOptions bad;
  bad.resamples = 0;
  EXPECT_TRUE(BootstrapAccu({{0, 3}}, bad).status().IsInvalidArgument());
  bad = BootstrapOptions{};
  bad.confidence = 1.5;
  EXPECT_TRUE(BootstrapAccu({{0, 3}}, bad).status().IsInvalidArgument());
  EXPECT_TRUE(BootstrapAccu({{5, 3}}).status().IsInvalidArgument());
  EXPECT_TRUE(BootstrapTopK({{0, 3}}, 0).status().IsInvalidArgument());
}

TEST(BootstrapTest, MeanMatchesPointEstimate) {
  auto interval = BootstrapAccu(UniformRanks(400, 5));
  ASSERT_TRUE(interval.ok());
  EXPECT_NEAR(interval->mean, 0.5, 1e-12);
  EXPECT_LE(interval->lo, interval->mean);
  EXPECT_GE(interval->hi, interval->mean);
}

TEST(BootstrapTest, IntervalShrinksWithMoreSamples) {
  auto small = BootstrapAccu(UniformRanks(40, 5));
  auto large = BootstrapAccu(UniformRanks(4000, 5));
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_LT(large->hi - large->lo, small->hi - small->lo);
}

TEST(BootstrapTest, DegenerateSamplesGiveZeroWidth) {
  std::vector<RankSample> perfect(50, {0, 4});  // Always rank 0.
  auto interval = BootstrapAccu(perfect);
  ASSERT_TRUE(interval.ok());
  EXPECT_DOUBLE_EQ(interval->mean, 1.0);
  EXPECT_DOUBLE_EQ(interval->lo, 1.0);
  EXPECT_DOUBLE_EQ(interval->hi, 1.0);
}

TEST(BootstrapTest, TopKInterval) {
  // 1 in 4 tasks has rank0 = 0 -> Top1 = 0.25.
  auto interval = BootstrapTopK(UniformRanks(400, 4), 1);
  ASSERT_TRUE(interval.ok());
  EXPECT_NEAR(interval->mean, 0.25, 1e-12);
  EXPECT_GT(interval->lo, 0.15);
  EXPECT_LT(interval->hi, 0.35);
}

TEST(BootstrapTest, DeterministicForSeed) {
  auto a = BootstrapAccu(UniformRanks(100, 5));
  auto b = BootstrapAccu(UniformRanks(100, 5));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->lo, b->lo);
  EXPECT_DOUBLE_EQ(a->hi, b->hi);
}

TEST(PairedBootstrapTest, ClearWinnerScoresNearOne) {
  std::vector<RankSample> good(60, {0, 5});  // ACCU 1.
  std::vector<RankSample> bad(60, {4, 5});   // ACCU 0.
  auto p = PairedBootstrapAccuSuperiority(good, bad);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(*p, 1.0);
  auto q = PairedBootstrapAccuSuperiority(bad, good);
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(*q, 0.0);
}

TEST(PairedBootstrapTest, TiedAlgorithmsNearHalf) {
  // Alternating winner with equal margins: diff mean 0.
  std::vector<RankSample> a, b;
  for (int i = 0; i < 200; ++i) {
    a.push_back({static_cast<size_t>(i % 2 == 0 ? 0 : 4), 5});
    b.push_back({static_cast<size_t>(i % 2 == 0 ? 4 : 0), 5});
  }
  auto p = PairedBootstrapAccuSuperiority(a, b);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.5, 0.1);
}

TEST(PairedBootstrapTest, RequiresAlignedSamples) {
  EXPECT_TRUE(PairedBootstrapAccuSuperiority(UniformRanks(10, 3),
                                             UniformRanks(12, 3))
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace crowdselect
