#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace crowdselect {
namespace {

TEST(AccuTest, BoundaryValues) {
  // Right worker ranked first out of 10 -> 1.0; last -> 0.0.
  EXPECT_DOUBLE_EQ(Accu(0, 10), 1.0);
  EXPECT_DOUBLE_EQ(Accu(9, 10), 0.0);
  EXPECT_DOUBLE_EQ(Accu(4, 10), 5.0 / 9.0);
}

TEST(AccuTest, DegenerateCandidateSets) {
  EXPECT_DOUBLE_EQ(Accu(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(Accu(0, 0), 1.0);
}

TEST(AccuTest, TwoCandidates) {
  EXPECT_DOUBLE_EQ(Accu(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(Accu(1, 2), 0.0);
}

TEST(MetricAccumulatorTest, MeanAccu) {
  MetricAccumulator acc;
  acc.Add(0, 5);  // 1.0
  acc.Add(4, 5);  // 0.0
  acc.Add(2, 5);  // 0.5
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.MeanAccu(), 0.5);
}

TEST(MetricAccumulatorTest, TopKRecall) {
  MetricAccumulator acc;
  acc.Add(0, 5);
  acc.Add(1, 5);
  acc.Add(1, 5);
  acc.Add(3, 5);
  EXPECT_DOUBLE_EQ(acc.TopK(1), 0.25);
  EXPECT_DOUBLE_EQ(acc.TopK(2), 0.75);
  EXPECT_DOUBLE_EQ(acc.TopK(4), 1.0);
  EXPECT_DOUBLE_EQ(acc.TopK(10), 1.0);
}

TEST(MetricAccumulatorTest, EmptyAccumulator) {
  MetricAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.MeanAccu(), 0.0);
  EXPECT_DOUBLE_EQ(acc.TopK(1), 0.0);
}

TEST(MetricAccumulatorTest, Top1ImpliesTop2Monotonicity) {
  MetricAccumulator acc;
  for (size_t r : {0u, 1u, 2u, 0u, 3u, 1u}) acc.Add(r, 6);
  EXPECT_LE(acc.TopK(1), acc.TopK(2));
  EXPECT_LE(acc.TopK(2), acc.TopK(3));
}

}  // namespace
}  // namespace crowdselect
