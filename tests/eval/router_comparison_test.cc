// The experiment behind EXPERIMENTS.md §"Task-type routing": on a
// heterogeneous workload (Zipf task-type mix, specialist-heavy worker
// pool with spammers and adversarial workers), per-type routing must
// beat the single global TDPM on precision@k. A single split is noisy,
// so the comparison aggregates over several deterministic dataset
// seeds — still a regression test, not a coin flip.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "datagen/heterogeneous.h"
#include "eval/experiment.h"
#include "eval/split.h"

namespace crowdselect {
namespace {

HeterogeneousConfig Workload(uint64_t seed) {
  HeterogeneousConfig config;
  config.num_types = 3;
  config.num_workers = 60;
  config.num_tasks = 300;
  config.seed = seed;
  return config;
}

ModelConfig Config() {
  ModelConfig config;
  config.tdpm.num_categories = 6;
  config.tdpm.max_em_iterations = 20;
  config.tdpm.seed = 42;
  config.tdpm.num_threads = 0;
  config.router_num_clusters = 3;
  config.ds_num_types = 3;
  return config;
}

TEST(RouterComparisonTest, RoutingBeatsGlobalTdpmOnHeterogeneousWorkload) {
  std::map<std::string, double> accu, top1;
  const uint64_t kSeeds[] = {21, 22, 23, 24, 25};
  for (uint64_t seed : kSeeds) {
    auto data = GenerateHeterogeneousDataset(Workload(seed));
    ASSERT_TRUE(data.ok());
    const WorkerGroup group = MakeGroup(data->dataset.db, 1, "Hetero");
    SplitOptions split_options;
    split_options.num_test_tasks = 100;
    auto split = MakeSplit(data->dataset, group, split_options);
    ASSERT_TRUE(split.ok());
    ASSERT_GE(split->cases.size(), 50u);

    auto factories =
        ModelSelectorFactories({"tdpm", "router", "ensemble"}, Config());
    ASSERT_TRUE(factories.ok());
    auto results = RunExperiment(*split, *factories);
    ASSERT_TRUE(results.ok());
    ASSERT_EQ(results->size(), 3u);
    for (const AlgorithmResult& r : *results) {
      accu[r.name] += r.mean_accu;
      top1[r.name] += r.top1;
    }
  }

  // Sanity: everything does far better than random on this workload.
  EXPECT_GT(accu["TDPM"] / 5.0, 0.7);

  // The PR acceptance criterion: per-type routing and the ensemble beat
  // the single global model on precision@k, averaged over the seeds.
  EXPECT_GT(accu["Router"], accu["TDPM"])
      << "router " << accu["Router"] << " vs tdpm " << accu["TDPM"];
  EXPECT_GT(top1["Router"], top1["TDPM"])
      << "router " << top1["Router"] << " vs tdpm " << top1["TDPM"];
  EXPECT_GT(accu["Ensemble"], accu["TDPM"])
      << "ensemble " << accu["Ensemble"] << " vs tdpm " << accu["TDPM"];
  EXPECT_GT(top1["Ensemble"], top1["TDPM"])
      << "ensemble " << top1["Ensemble"] << " vs tdpm " << top1["TDPM"];
}

}  // namespace
}  // namespace crowdselect
