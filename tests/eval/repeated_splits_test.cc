#include "eval/repeated_splits.h"

#include <gtest/gtest.h>

#include "baselines/vsm.h"
#include "model/selection.h"
#include "util/logging.h"

namespace crowdselect {
namespace {

SyntheticDataset TinyDataset() {
  PlatformConfig config = DefaultPlatformConfig(Platform::kQuora);
  config.world.num_workers = 20;
  config.world.num_tasks = 120;
  config.world.vocab_size = 100;
  config.world.num_categories = 3;
  config.world.mean_answers_per_task = 4.0;
  auto dataset = GeneratePlatformDataset(Platform::kQuora, config, 88);
  CS_CHECK(dataset.ok());
  return std::move(dataset).value();
}

std::vector<SelectorFactory> TinyFactories() {
  std::vector<SelectorFactory> factories;
  factories.push_back([] { return std::make_unique<VsmSelector>(); });
  factories.push_back([] {
    TdpmOptions options;
    options.num_categories = 3;
    options.max_em_iterations = 6;
    return std::make_unique<TdpmSelector>(options);
  });
  return factories;
}

TEST(RepeatedSplitsTest, ValidatesInputs) {
  SyntheticDataset dataset = TinyDataset();
  WorkerGroup group = MakeGroup(dataset.db, 1, "Q");
  RepeatedSplitOptions options;
  options.repetitions = 0;
  EXPECT_TRUE(RunRepeatedSplits(dataset, group, TinyFactories(), options)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(RunRepeatedSplits(dataset, group, {}, RepeatedSplitOptions{})
                  .status()
                  .IsInvalidArgument());
}

TEST(RepeatedSplitsTest, AggregatesAcrossRuns) {
  SyntheticDataset dataset = TinyDataset();
  WorkerGroup group = MakeGroup(dataset.db, 1, "Q");
  RepeatedSplitOptions options;
  options.repetitions = 3;
  options.split.num_test_tasks = 20;
  auto results = RunRepeatedSplits(dataset, group, TinyFactories(), options);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 2u);
  EXPECT_EQ((*results)[0].name, "VSM");
  EXPECT_EQ((*results)[1].name, "TDPM");
  for (const auto& r : *results) {
    EXPECT_EQ(r.repetitions, 3);
    EXPECT_GE(r.accu.mean, 0.0);
    EXPECT_LE(r.accu.mean, 1.0);
    EXPECT_GE(r.accu.stddev, 0.0);
    EXPECT_LE(r.top1.mean, r.top2.mean + 1e-12);
  }
}

TEST(RepeatedSplitsTest, SplitsActuallyDiffer) {
  // With different seeds per run the metric must show some variation
  // (stddev > 0) for at least one algorithm unless the metric is
  // saturated.
  SyntheticDataset dataset = TinyDataset();
  WorkerGroup group = MakeGroup(dataset.db, 1, "Q");
  RepeatedSplitOptions options;
  options.repetitions = 4;
  options.split.num_test_tasks = 15;
  auto results = RunRepeatedSplits(dataset, group, TinyFactories(), options);
  ASSERT_TRUE(results.ok());
  double total_stddev = 0.0;
  for (const auto& r : *results) total_stddev += r.accu.stddev;
  EXPECT_GT(total_stddev, 0.0);
}

TEST(RepeatedSplitsTest, DeterministicForSameOptions) {
  SyntheticDataset dataset = TinyDataset();
  WorkerGroup group = MakeGroup(dataset.db, 1, "Q");
  RepeatedSplitOptions options;
  options.repetitions = 2;
  options.split.num_test_tasks = 15;
  auto a = RunRepeatedSplits(dataset, group, TinyFactories(), options);
  auto b = RunRepeatedSplits(dataset, group, TinyFactories(), options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ((*a)[1].accu.mean, (*b)[1].accu.mean);
}

}  // namespace
}  // namespace crowdselect
