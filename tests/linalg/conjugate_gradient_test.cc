#include "linalg/conjugate_gradient.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/gradient_check.h"
#include "linalg/matrix.h"
#include "util/rng.h"

namespace crowdselect {
namespace {

TEST(ConjugateGradientTest, MinimizesConvexQuadratic) {
  // f(x) = 1/2 x^T A x - b^T x with known minimizer A^{-1} b.
  Matrix a = Matrix::Diagonal(Vector{1.0, 4.0, 9.0});
  Vector b{1.0, 2.0, 3.0};
  auto f = [&](const Vector& x, Vector* grad) {
    Vector ax = a.Multiply(x);
    *grad = ax - b;
    return 0.5 * x.Dot(ax) - b.Dot(x);
  };
  CgResult result = MinimizeCg(f, Vector(3, 0.0));
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 1.0, 1e-4);
  EXPECT_NEAR(result.x[1], 0.5, 1e-4);
  EXPECT_NEAR(result.x[2], 1.0 / 3.0, 1e-4);
}

TEST(ConjugateGradientTest, MinimizesRosenbrockLikeNonConvex) {
  // Rosenbrock: minimum at (1, 1).
  auto f = [](const Vector& x, Vector* grad) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    (*grad)[0] = -2.0 * a - 400.0 * x[0] * b;
    (*grad)[1] = 200.0 * b;
    return a * a + 100.0 * b * b;
  };
  CgOptions options;
  options.max_iterations = 5000;
  options.gradient_tolerance = 1e-7;
  options.value_tolerance = 1e-16;
  CgResult result = MinimizeCg(f, Vector{-1.2, 1.0}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-2);
  EXPECT_NEAR(result.x[1], 1.0, 2e-2);
  EXPECT_LT(result.value, 1e-4);
}

TEST(ConjugateGradientTest, ConvergesImmediatelyAtMinimum) {
  auto f = [](const Vector& x, Vector* grad) {
    (*grad)[0] = 2.0 * x[0];
    return x[0] * x[0];
  };
  CgResult result = MinimizeCg(f, Vector{0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 1);
}

TEST(ConjugateGradientTest, MonotoneNonIncreasingBestValue) {
  // The reported value must never exceed f(x0).
  Rng rng(9);
  Matrix a(4, 4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) a(i, j) = rng.Normal();
  }
  Matrix spd = a.Multiply(a.Transposed());
  spd.AddDiagonal(0.1);
  Vector b(4);
  for (size_t i = 0; i < 4; ++i) b[i] = rng.Normal();
  auto f = [&](const Vector& x, Vector* grad) {
    Vector ax = spd.Multiply(x);
    *grad = ax - b;
    return 0.5 * x.Dot(ax) - b.Dot(x);
  };
  Vector x0(4, 3.0);
  Vector g0(4);
  const double f0 = f(x0, &g0);
  CgResult result = MinimizeCg(f, x0);
  EXPECT_LE(result.value, f0);
}

TEST(ConjugateGradientTest, SoftmaxBoundStyleObjective) {
  // The exact shape of the per-task subproblem: quadratic + sum of exps.
  auto f = [](const Vector& x, Vector* grad) {
    double value = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      const double e = std::exp(x[i]);
      value += 0.5 * x[i] * x[i] + e - 2.0 * x[i];
      (*grad)[i] = x[i] + e - 2.0;
    }
    return value;
  };
  CgResult result = MinimizeCg(f, Vector(6, 0.0));
  EXPECT_TRUE(result.converged);
  // Stationarity: x + e^x = 2 -> x ~ 0.4428.
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR(result.x[i], 0.44285, 1e-3);
}

TEST(GradientCheckTest, DetectsCorrectGradient) {
  auto f = [](const Vector& x, Vector* grad) {
    (*grad)[0] = std::cos(x[0]);
    (*grad)[1] = 2.0 * x[1];
    return std::sin(x[0]) + x[1] * x[1];
  };
  auto report = CheckGradient(f, Vector{0.3, -1.2});
  EXPECT_LT(report.max_rel_error, 1e-6);
}

TEST(GradientCheckTest, DetectsWrongGradient) {
  auto f = [](const Vector& x, Vector* grad) {
    (*grad)[0] = 1.0;  // Wrong: true gradient is 2x.
    return x[0] * x[0];
  };
  auto report = CheckGradient(f, Vector{2.0});
  EXPECT_GT(report.max_rel_error, 0.1);
}

}  // namespace
}  // namespace crowdselect
