#include "linalg/vector.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crowdselect {
namespace {

TEST(VectorTest, ConstructionAndAccess) {
  Vector v(3, 1.5);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.5);
  v[1] = -2.0;
  EXPECT_DOUBLE_EQ(v[1], -2.0);

  Vector init{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(init[2], 3.0);
}

TEST(VectorTest, Arithmetic) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, 5.0, 6.0};
  Vector sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 5.0);
  EXPECT_DOUBLE_EQ(sum[2], 9.0);
  Vector diff = b - a;
  EXPECT_DOUBLE_EQ(diff[1], 3.0);
  Vector scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled[2], 6.0);
  a += b;
  EXPECT_DOUBLE_EQ(a[0], 5.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a[0], 1.0);
}

TEST(VectorTest, DotNormSum) {
  Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.Dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(a.Sum(), 7.0);
  Vector b{-1.0, 2.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 5.0);
  EXPECT_DOUBLE_EQ(b.MaxAbs(), 2.0);
}

TEST(VectorTest, Axpy) {
  Vector a{1.0, 1.0};
  Vector b{2.0, 3.0};
  a.Axpy(0.5, b);
  EXPECT_DOUBLE_EQ(a[0], 2.0);
  EXPECT_DOUBLE_EQ(a[1], 2.5);
}

TEST(VectorTest, CwiseOps) {
  Vector a{0.0, 1.0};
  Vector e = a.CwiseExp();
  EXPECT_DOUBLE_EQ(e[0], 1.0);
  EXPECT_DOUBLE_EQ(e[1], std::exp(1.0));

  Vector m{2.0, 3.0};
  m.CwiseMulInPlace(Vector{4.0, 5.0});
  EXPECT_DOUBLE_EQ(m[0], 8.0);
  EXPECT_DOUBLE_EQ(m[1], 15.0);
}

TEST(VectorTest, SoftmaxSumsToOneAndOrders) {
  Vector v{1.0, 2.0, 3.0};
  Vector s = v.Softmax();
  EXPECT_NEAR(s.Sum(), 1.0, 1e-12);
  EXPECT_LT(s[0], s[1]);
  EXPECT_LT(s[1], s[2]);
}

TEST(VectorTest, SoftmaxStableUnderLargeValues) {
  Vector v{1000.0, 1001.0};
  Vector s = v.Softmax();
  EXPECT_NEAR(s.Sum(), 1.0, 1e-12);
  EXPECT_GT(s[1], s[0]);
  EXPECT_TRUE(std::isfinite(s[0]));
}

TEST(VectorTest, SoftmaxShiftInvariance) {
  Vector a{0.5, -1.0, 2.0};
  Vector b{100.5, 99.0, 102.0};  // a + 100.
  Vector sa = a.Softmax();
  Vector sb = b.Softmax();
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(sa[i], sb[i], 1e-12);
}

TEST(VectorTest, EmptyVectorEdgeCases) {
  Vector v;
  EXPECT_TRUE(v.empty());
  EXPECT_DOUBLE_EQ(v.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(v.MaxAbs(), 0.0);
  EXPECT_TRUE(v.Softmax().empty());
}

}  // namespace
}  // namespace crowdselect
