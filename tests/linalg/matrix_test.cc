#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace crowdselect {
namespace {

TEST(MatrixTest, IdentityAndDiagonal) {
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(id.Trace(), 3.0);

  Matrix d = Matrix::Diagonal(Vector{2.0, 5.0});
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 0.0);
}

TEST(MatrixTest, OuterProduct) {
  Matrix o = Matrix::Outer(Vector{1.0, 2.0}, Vector{3.0, 4.0, 5.0});
  EXPECT_EQ(o.rows(), 2u);
  EXPECT_EQ(o.cols(), 3u);
  EXPECT_DOUBLE_EQ(o(1, 2), 10.0);
  EXPECT_DOUBLE_EQ(o(0, 0), 3.0);
}

TEST(MatrixTest, AddOuterMatchesExplicit) {
  Matrix m(2, 2);
  Vector a{1.0, -2.0};
  m.AddOuter(a, 0.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(m(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 2.0);
}

TEST(MatrixTest, AddDiagonal) {
  Matrix m = Matrix::Identity(2);
  m.AddDiagonal(3.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 4.0);
  m.AddDiagonal(Vector{1.0, 2.0}, 2.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 8.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(MatrixTest, MatrixVectorProduct) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  Vector v{1.0, 0.0, -1.0};
  Vector r = m.Multiply(v);
  EXPECT_DOUBLE_EQ(r[0], -2.0);
  EXPECT_DOUBLE_EQ(r[1], -2.0);
}

TEST(MatrixTest, MatrixMatrixProduct) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  Matrix b = Matrix::Identity(2);
  b *= 2.0;
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 8.0);

  // Associativity check against vector multiply.
  Vector v{1.0, -1.0};
  Vector lhs = c.Multiply(v);
  Vector rhs = a.Multiply(b.Multiply(v));
  EXPECT_DOUBLE_EQ(lhs[0], rhs[0]);
  EXPECT_DOUBLE_EQ(lhs[1], rhs[1]);
}

TEST(MatrixTest, Transpose) {
  Matrix m(2, 3);
  m(0, 2) = 7.0;
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 0), 7.0);
}

TEST(MatrixTest, RowAccess) {
  Matrix m(2, 2);
  m.SetRow(1, Vector{9.0, 8.0});
  Vector r = m.Row(1);
  EXPECT_DOUBLE_EQ(r[0], 9.0);
  EXPECT_DOUBLE_EQ(r[1], 8.0);
}

TEST(MatrixTest, SymmetryHelpers) {
  Matrix m(2, 2);
  m(0, 1) = 1.0;
  m(1, 0) = 3.0;
  EXPECT_DOUBLE_EQ(m.SymmetryError(), 2.0);
  m.Symmetrize();
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.SymmetryError(), 0.0);
}

TEST(MatrixTest, FrobeniusDistance) {
  Matrix a = Matrix::Identity(2);
  Matrix b = Matrix::Identity(2);
  b(0, 0) = 4.0;
  EXPECT_DOUBLE_EQ(a.FrobeniusDistance(b), 3.0);
  EXPECT_DOUBLE_EQ(b.MaxAbs(), 4.0);
}

}  // namespace
}  // namespace crowdselect
