#include "linalg/cholesky.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace crowdselect {
namespace {

Matrix RandomSpd(size_t n, Rng* rng, double diag_boost = 0.5) {
  // A A^T + boost * I is SPD.
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = rng->Normal();
  }
  Matrix spd = a.Multiply(a.Transposed());
  spd.AddDiagonal(diag_boost);
  return spd;
}

TEST(CholeskyTest, FactorReconstructsMatrix) {
  Rng rng(1);
  const Matrix a = RandomSpd(5, &rng);
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.ok());
  const Matrix& l = chol->lower();
  Matrix rebuilt = l.Multiply(l.Transposed());
  EXPECT_LT(rebuilt.FrobeniusDistance(a), 1e-9);
  EXPECT_DOUBLE_EQ(chol->jitter(), 0.0);
}

TEST(CholeskyTest, SolveSatisfiesSystem) {
  Rng rng(2);
  const Matrix a = RandomSpd(6, &rng);
  Vector b(6);
  for (size_t i = 0; i < 6; ++i) b[i] = rng.Normal();
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.ok());
  const Vector x = chol->Solve(b);
  const Vector ax = a.Multiply(x);
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(CholeskyTest, InverseTimesMatrixIsIdentity) {
  Rng rng(3);
  const Matrix a = RandomSpd(4, &rng);
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.ok());
  const Matrix inv = chol->Inverse();
  const Matrix prod = a.Multiply(inv);
  EXPECT_LT(prod.FrobeniusDistance(Matrix::Identity(4)), 1e-9);
}

TEST(CholeskyTest, LogDetMatchesDiagonalCase) {
  Matrix d = Matrix::Diagonal(Vector{2.0, 3.0, 4.0});
  auto chol = Cholesky::Factorize(d);
  ASSERT_TRUE(chol.ok());
  EXPECT_NEAR(chol->LogDet(), std::log(24.0), 1e-12);
}

TEST(CholeskyTest, RejectsNonSquare) {
  Matrix m(2, 3);
  EXPECT_TRUE(Cholesky::Factorize(m).status().IsInvalidArgument());
}

TEST(CholeskyTest, RejectsAsymmetric) {
  Matrix m = Matrix::Identity(2);
  m(0, 1) = 0.5;  // Not mirrored.
  EXPECT_TRUE(Cholesky::Factorize(m).status().IsInvalidArgument());
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix m = Matrix::Identity(2);
  m(1, 1) = -1.0;
  EXPECT_FALSE(Cholesky::Factorize(m).ok());
}

TEST(CholeskyTest, JitterRepairsSingularMatrix) {
  // Rank-1 PSD matrix: singular but repairable.
  Matrix m(2, 2);
  m.AddOuter(Vector{1.0, 1.0});
  auto chol = Cholesky::FactorizeWithJitter(m);
  ASSERT_TRUE(chol.ok());
  EXPECT_GT(chol->jitter(), 0.0);
  // Solve still roughly consistent.
  Vector x = chol->Solve(Vector{2.0, 2.0});
  EXPECT_NEAR(x[0] + x[1], 2.0, 1e-3);
}

TEST(CholeskyTest, JitterDoesNotAlterWellConditionedMatrix) {
  Rng rng(4);
  const Matrix a = RandomSpd(3, &rng, 1.0);
  auto chol = Cholesky::FactorizeWithJitter(a);
  ASSERT_TRUE(chol.ok());
  EXPECT_DOUBLE_EQ(chol->jitter(), 0.0);
}

TEST(CholeskyTest, SolveSpdAndInverseSpdHelpers) {
  Rng rng(5);
  const Matrix a = RandomSpd(4, &rng);
  Vector b(4);
  for (size_t i = 0; i < 4; ++i) b[i] = rng.Normal();
  auto x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  const Vector ax = a.Multiply(*x);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);

  auto inv = InverseSpd(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_LT(a.Multiply(*inv).FrobeniusDistance(Matrix::Identity(4)), 1e-9);
}

// Property sweep: solve accuracy across sizes.
class CholeskySizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CholeskySizeSweep, SolveAccurateAtSize) {
  const size_t n = GetParam();
  Rng rng(100 + n);
  const Matrix a = RandomSpd(n, &rng);
  Vector b(n);
  for (size_t i = 0; i < n; ++i) b[i] = rng.Normal();
  auto chol = Cholesky::Factorize(a);
  ASSERT_TRUE(chol.ok());
  const Vector x = chol->Solve(b);
  const Vector ax = a.Multiply(x);
  double err = 0.0;
  for (size_t i = 0; i < n; ++i) err = std::max(err, std::fabs(ax[i] - b[i]));
  EXPECT_LT(err, 1e-7) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeSweep,
                         ::testing::Values(1, 2, 3, 5, 10, 20, 50));

}  // namespace
}  // namespace crowdselect
