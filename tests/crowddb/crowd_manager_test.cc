#include "crowddb/crowd_manager.h"

#include <gtest/gtest.h>

namespace crowdselect {
namespace {

// Deterministic stub selector: scores a worker by (worker id + 1) *
// task token count, so tests can predict rankings without a real model.
class StubSelector : public CrowdSelector {
 public:
  std::string Name() const override { return "Stub"; }
  Status Train(const CrowdDatabase& db) override {
    trained_tasks_ = db.NumScoredAssignments();
    ++train_calls_;
    return Status::OK();
  }
  Result<std::vector<RankedWorker>> SelectTopK(
      const BagOfWords& task, size_t k,
      const std::vector<WorkerId>& candidates) const override {
    TopKAccumulator acc(k);
    for (WorkerId w : candidates) {
      acc.Offer(w, static_cast<double>(w + 1) *
                       static_cast<double>(task.TotalTokens()));
    }
    return acc.Take();
  }
  int train_calls() const { return train_calls_; }
  size_t trained_tasks() const { return trained_tasks_; }

 private:
  int train_calls_ = 0;
  size_t trained_tasks_ = 0;
};

CrowdDatabase SeedDb() {
  CrowdDatabase db;
  db.AddWorker("a");
  db.AddWorker("b");
  db.AddWorker("c", /*online=*/false);
  return db;
}

TEST(CrowdManagerTest, SelectRequiresTraining) {
  CrowdDatabase db = SeedDb();
  CrowdManager manager(&db, std::make_unique<StubSelector>());
  BagOfWords bag;
  bag.Add(0);
  EXPECT_TRUE(manager.SelectCrowd(bag, 1).status().IsFailedPrecondition());
  ASSERT_TRUE(manager.InferCrowdModel().ok());
  EXPECT_TRUE(manager.trained());
  EXPECT_TRUE(manager.SelectCrowd(bag, 1).ok());
}

TEST(CrowdManagerTest, OnlyOnlineWorkersAreCandidates) {
  CrowdDatabase db = SeedDb();
  CrowdManager manager(&db, std::make_unique<StubSelector>());
  ASSERT_TRUE(manager.InferCrowdModel().ok());
  BagOfWords bag;
  bag.Add(0);
  auto crowd = manager.SelectCrowd(bag, 10);
  ASSERT_TRUE(crowd.ok());
  // Worker 2 is offline; stub ranks by id so 1 > 0.
  ASSERT_EQ(crowd->size(), 2u);
  EXPECT_EQ((*crowd)[0].worker, 1u);
  EXPECT_EQ((*crowd)[1].worker, 0u);

  manager.online_pool()->CheckIn(2);
  crowd = manager.SelectCrowd(bag, 10);
  ASSERT_EQ(crowd->size(), 3u);
  EXPECT_EQ((*crowd)[0].worker, 2u);
}

TEST(CrowdManagerTest, ProcessTaskEndToEnd) {
  CrowdDatabase db = SeedDb();
  CrowdManager manager(&db, std::make_unique<StubSelector>());
  ASSERT_TRUE(manager.InferCrowdModel().ok());

  TaskDispatcher dispatcher(
      &db,
      [](WorkerId w, const TaskRecord&) {
        return "answer from " + std::to_string(w);
      },
      [](WorkerId w, const TaskRecord&, const std::string&) {
        return static_cast<double>(w);
      });
  auto answers = manager.ProcessTask("how do b+ trees work", 2, &dispatcher);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_EQ(answers->size(), 2u);
  EXPECT_EQ(db.NumTasks(), 1u);
  EXPECT_EQ(db.NumScoredAssignments(), 2u);
  EXPECT_TRUE(db.GetTask(0).value()->resolved);
}

TEST(CrowdManagerTest, AutoRetrainAfterInterval) {
  CrowdDatabase db = SeedDb();
  auto selector = std::make_unique<StubSelector>();
  StubSelector* raw = selector.get();
  CrowdManager manager(&db, std::move(selector));
  manager.set_retrain_interval(2);
  ASSERT_TRUE(manager.InferCrowdModel().ok());
  EXPECT_EQ(raw->train_calls(), 1);

  TaskDispatcher dispatcher(
      &db, [](WorkerId, const TaskRecord&) { return std::string("x"); },
      [](WorkerId, const TaskRecord&, const std::string&) { return 1.0; });
  ASSERT_TRUE(manager.ProcessTask("q one", 1, &dispatcher).ok());
  EXPECT_EQ(raw->train_calls(), 1);
  ASSERT_TRUE(manager.ProcessTask("q two", 1, &dispatcher).ok());
  EXPECT_EQ(raw->train_calls(), 2);  // Interval reached.
  EXPECT_EQ(raw->trained_tasks(), 2u);
}

}  // namespace
}  // namespace crowdselect
