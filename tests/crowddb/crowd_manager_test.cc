#include "crowddb/crowd_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace crowdselect {
namespace {

// Deterministic stub selector: scores a worker by (worker id + 1) *
// task token count, so tests can predict rankings without a real model.
class StubSelector : public CrowdSelector {
 public:
  std::string Name() const override { return "Stub"; }
  Status Train(const CrowdDatabase& db) override {
    trained_tasks_ = db.NumScoredAssignments();
    ++train_calls_;
    return Status::OK();
  }
  Result<std::vector<RankedWorker>> SelectTopK(
      const BagOfWords& task, size_t k,
      const std::vector<WorkerId>& candidates) const override {
    TopKAccumulator acc(k);
    for (WorkerId w : candidates) {
      acc.Offer(w, static_cast<double>(w + 1) *
                       static_cast<double>(task.TotalTokens()));
    }
    return acc.Take();
  }
  int train_calls() const { return train_calls_; }
  size_t trained_tasks() const { return trained_tasks_; }

 private:
  int train_calls_ = 0;
  size_t trained_tasks_ = 0;
};

CrowdDatabase SeedDb() {
  CrowdDatabase db;
  db.AddWorker("a");
  db.AddWorker("b");
  db.AddWorker("c", /*online=*/false);
  return db;
}

TEST(CrowdManagerTest, SelectRequiresTraining) {
  CrowdDatabase db = SeedDb();
  CrowdManager manager(&db, std::make_unique<StubSelector>());
  BagOfWords bag;
  bag.Add(0);
  EXPECT_TRUE(manager.SelectCrowd(bag, 1).status().IsFailedPrecondition());
  ASSERT_TRUE(manager.InferCrowdModel().ok());
  EXPECT_TRUE(manager.trained());
  EXPECT_TRUE(manager.SelectCrowd(bag, 1).ok());
}

TEST(CrowdManagerTest, OnlyOnlineWorkersAreCandidates) {
  CrowdDatabase db = SeedDb();
  CrowdManager manager(&db, std::make_unique<StubSelector>());
  ASSERT_TRUE(manager.InferCrowdModel().ok());
  BagOfWords bag;
  bag.Add(0);
  auto crowd = manager.SelectCrowd(bag, 10);
  ASSERT_TRUE(crowd.ok());
  // Worker 2 is offline; stub ranks by id so 1 > 0.
  ASSERT_EQ(crowd->size(), 2u);
  EXPECT_EQ((*crowd)[0].worker, 1u);
  EXPECT_EQ((*crowd)[1].worker, 0u);

  manager.online_pool()->CheckIn(2);
  crowd = manager.SelectCrowd(bag, 10);
  ASSERT_EQ(crowd->size(), 3u);
  EXPECT_EQ((*crowd)[0].worker, 2u);
}

TEST(CrowdManagerTest, ProcessTaskEndToEnd) {
  CrowdDatabase db = SeedDb();
  CrowdManager manager(&db, std::make_unique<StubSelector>());
  ASSERT_TRUE(manager.InferCrowdModel().ok());

  TaskDispatcher dispatcher(
      &db,
      [](WorkerId w, const TaskRecord&) {
        return "answer from " + std::to_string(w);
      },
      [](WorkerId w, const TaskRecord&, const std::string&) {
        return static_cast<double>(w);
      });
  auto answers = manager.ProcessTask("how do b+ trees work", 2, &dispatcher);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_EQ(answers->size(), 2u);
  EXPECT_EQ(db.NumTasks(), 1u);
  EXPECT_EQ(db.NumScoredAssignments(), 2u);
  EXPECT_TRUE(db.GetTask(0).value()->resolved);
}

// Records the observer callbacks CrowdManager makes on resolve, sharing
// an event log with ObservingSelector so tests can assert ordering.
class RecordingObserver : public ResolvedTaskObserver {
 public:
  explicit RecordingObserver(std::vector<std::string>* events)
      : events_(events) {}
  void OnResolvedTask(
      const BagOfWords& task, const std::vector<RankedWorker>& predicted,
      const std::vector<std::pair<WorkerId, double>>& realized) override {
    (void)task;
    events_->push_back("observer");
    last_predicted_ = predicted;
    last_realized_ = realized;
  }
  const std::vector<RankedWorker>& last_predicted() const {
    return last_predicted_;
  }
  const std::vector<std::pair<WorkerId, double>>& last_realized() const {
    return last_realized_;
  }

 private:
  std::vector<std::string>* events_;
  std::vector<RankedWorker> last_predicted_;
  std::vector<std::pair<WorkerId, double>> last_realized_;
};

class ObservingSelector : public StubSelector {
 public:
  explicit ObservingSelector(std::vector<std::string>* events)
      : events_(events) {}
  Status ObserveResolvedTask(
      const BagOfWords& task,
      const std::vector<std::pair<WorkerId, double>>& scored) override {
    events_->push_back("fold_in");
    return StubSelector::ObserveResolvedTask(task, scored);
  }

 private:
  std::vector<std::string>* events_;
};

TEST(CrowdManagerTest, ResolvedObserverSeesTheTaskBeforeFoldIn) {
  CrowdDatabase db = SeedDb();
  std::vector<std::string> events;
  CrowdManager manager(&db, std::make_unique<ObservingSelector>(&events));
  manager.set_live_skill_updates(true);
  RecordingObserver observer(&events);
  manager.set_resolved_observer(&observer);
  ASSERT_TRUE(manager.InferCrowdModel().ok());

  TaskDispatcher dispatcher(
      &db, [](WorkerId, const TaskRecord&) { return std::string("x"); },
      [](WorkerId w, const TaskRecord&, const std::string&) {
        return static_cast<double>(w) + 1.0;
      });
  ASSERT_TRUE(manager.ProcessTask("observe ordering", 2, &dispatcher).ok());

  // The shadow evaluator must score the prediction BEFORE the feedback
  // folds into the model, so it measures held-out quality.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "observer");
  EXPECT_EQ(events[1], "fold_in");

  // The observer receives the selected crowd and the realized scores.
  ASSERT_EQ(observer.last_predicted().size(), 2u);
  ASSERT_EQ(observer.last_realized().size(), 2u);
  EXPECT_EQ(observer.last_realized()[0].second,
            static_cast<double>(observer.last_realized()[0].first) + 1.0);

  // Detaching stops the callbacks.
  manager.set_resolved_observer(nullptr);
  ASSERT_TRUE(manager.ProcessTask("after detach", 1, &dispatcher).ok());
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[2], "fold_in");
}

TEST(CrowdManagerTest, ObserverFiresWithoutLiveSkillUpdates) {
  CrowdDatabase db = SeedDb();
  std::vector<std::string> events;
  CrowdManager manager(&db, std::make_unique<StubSelector>());
  RecordingObserver observer(&events);
  manager.set_resolved_observer(&observer);
  ASSERT_TRUE(manager.InferCrowdModel().ok());
  TaskDispatcher dispatcher(
      &db, [](WorkerId, const TaskRecord&) { return std::string("x"); },
      [](WorkerId, const TaskRecord&, const std::string&) { return 1.0; });
  ASSERT_TRUE(manager.ProcessTask("observer only", 2, &dispatcher).ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], "observer");
}

TEST(CrowdManagerTest, AutoRetrainAfterInterval) {
  CrowdDatabase db = SeedDb();
  auto selector = std::make_unique<StubSelector>();
  StubSelector* raw = selector.get();
  CrowdManager manager(&db, std::move(selector));
  manager.set_retrain_interval(2);
  ASSERT_TRUE(manager.InferCrowdModel().ok());
  EXPECT_EQ(raw->train_calls(), 1);

  TaskDispatcher dispatcher(
      &db, [](WorkerId, const TaskRecord&) { return std::string("x"); },
      [](WorkerId, const TaskRecord&, const std::string&) { return 1.0; });
  ASSERT_TRUE(manager.ProcessTask("q one", 1, &dispatcher).ok());
  EXPECT_EQ(raw->train_calls(), 1);
  ASSERT_TRUE(manager.ProcessTask("q two", 1, &dispatcher).ok());
  EXPECT_EQ(raw->train_calls(), 2);  // Interval reached.
  EXPECT_EQ(raw->trained_tasks(), 2u);
}

}  // namespace
}  // namespace crowdselect
