#include "crowddb/online_pool.h"

#include <gtest/gtest.h>

#include <thread>

namespace crowdselect {
namespace {

TEST(OnlinePoolTest, CheckInOut) {
  OnlineWorkerPool pool;
  EXPECT_EQ(pool.size(), 0u);
  pool.CheckIn(3);
  pool.CheckIn(1);
  pool.CheckIn(3);  // Idempotent.
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_TRUE(pool.IsOnline(3));
  EXPECT_FALSE(pool.IsOnline(2));
  pool.CheckOut(3);
  EXPECT_FALSE(pool.IsOnline(3));
  pool.CheckOut(3);  // Idempotent.
  EXPECT_EQ(pool.size(), 1u);
}

TEST(OnlinePoolTest, SnapshotIsSorted) {
  OnlineWorkerPool pool;
  pool.CheckInAll({9, 2, 5, 2});
  EXPECT_EQ(pool.Snapshot(), (std::vector<WorkerId>{2, 5, 9}));
}

TEST(OnlinePoolTest, ConcurrentCheckInsAreSafe) {
  OnlineWorkerPool pool;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < 250; ++i) {
        pool.CheckIn(static_cast<WorkerId>(t * 250 + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(pool.size(), 2000u);
}

}  // namespace
}  // namespace crowdselect
