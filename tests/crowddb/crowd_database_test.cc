#include "crowddb/crowd_database.h"

#include <gtest/gtest.h>

namespace crowdselect {
namespace {

CrowdDatabase SmallDb() {
  CrowdDatabase db;
  db.AddWorker("alice");
  db.AddWorker("bob", /*online=*/false);
  db.AddWorker("carol");
  db.AddTask("What are the advantages of B+ Tree over B Tree?");
  db.AddTask("How to integrate by parts?");
  return db;
}

TEST(CrowdDatabaseTest, InsertionAssignsDenseIds) {
  CrowdDatabase db = SmallDb();
  EXPECT_EQ(db.NumWorkers(), 3u);
  EXPECT_EQ(db.NumTasks(), 2u);
  auto w = db.GetWorker(1);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ((*w)->handle, "bob");
  EXPECT_FALSE((*w)->online);
  auto t = db.GetTask(0);
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE((*t)->resolved);
  EXPECT_GT((*t)->bag.TotalTokens(), 0u);
}

TEST(CrowdDatabaseTest, TaskTextIsTokenizedIntoSharedVocabulary) {
  CrowdDatabase db = SmallDb();
  // Stopwords removed by the db tokenizer; "tree" should be present.
  EXPECT_TRUE(db.vocabulary().Contains("tree"));
  EXPECT_FALSE(db.vocabulary().Contains("the"));
  auto t = db.GetTask(0);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->bag.Count(db.vocabulary().Lookup("tree")), 2u);
}

TEST(CrowdDatabaseTest, UnknownIdsAreNotFound) {
  CrowdDatabase db = SmallDb();
  EXPECT_TRUE(db.GetWorker(99).status().IsNotFound());
  EXPECT_TRUE(db.GetTask(99).status().IsNotFound());
  EXPECT_TRUE(db.Assign(99, 0).IsNotFound());
  EXPECT_TRUE(db.Assign(0, 99).IsNotFound());
  EXPECT_TRUE(db.UpdateWorkerSkills(99, {}).IsNotFound());
  EXPECT_TRUE(db.UpdateTaskCategories(99, {}).IsNotFound());
  EXPECT_TRUE(db.SetWorkerOnline(99, true).IsNotFound());
}

TEST(CrowdDatabaseTest, AssignmentIsIdempotent) {
  CrowdDatabase db = SmallDb();
  ASSERT_TRUE(db.Assign(0, 0).ok());
  ASSERT_TRUE(db.Assign(0, 0).ok());
  EXPECT_EQ(db.NumAssignments(), 1u);
}

TEST(CrowdDatabaseTest, FeedbackRequiresAssignment) {
  CrowdDatabase db = SmallDb();
  EXPECT_TRUE(db.RecordFeedback(0, 0, 3.0).IsFailedPrecondition());
  ASSERT_TRUE(db.Assign(0, 0).ok());
  ASSERT_TRUE(db.RecordFeedback(0, 0, 3.0).ok());
  auto score = db.GetScore(0, 0);
  ASSERT_TRUE(score.ok());
  EXPECT_DOUBLE_EQ(*score, 3.0);
  EXPECT_TRUE(db.GetTask(0).value()->resolved);
  EXPECT_EQ(db.NumScoredAssignments(), 1u);
}

TEST(CrowdDatabaseTest, FirstSkillWriteFixesTheLatentDimension) {
  CrowdDatabase db = SmallDb();
  EXPECT_EQ(db.latent_dim(), 0u);
  ASSERT_TRUE(db.UpdateWorkerSkills(0, {1.0, 2.0, 3.0}).ok());
  EXPECT_EQ(db.latent_dim(), 3u);
  // Same K: fine, for both skills and categories.
  ASSERT_TRUE(db.UpdateWorkerSkills(1, {4.0, 5.0, 6.0}).ok());
  ASSERT_TRUE(db.UpdateTaskCategories(0, {0.1, 0.2, 0.7}).ok());
  // Different K: InvalidArgument, and the database is unchanged.
  EXPECT_TRUE(db.UpdateWorkerSkills(2, {1.0}).IsInvalidArgument());
  EXPECT_TRUE(db.UpdateTaskCategories(1, {1.0, 2.0}).IsInvalidArgument());
  EXPECT_TRUE(db.GetWorker(2).value()->skills.empty());
  EXPECT_TRUE(db.GetTask(1).value()->categories.empty());
  EXPECT_EQ(db.latent_dim(), 3u);
}

TEST(CrowdDatabaseTest, CategoriesCanFixTheLatentDimensionFirst) {
  CrowdDatabase db = SmallDb();
  ASSERT_TRUE(db.UpdateTaskCategories(0, {0.5, 0.5}).ok());
  EXPECT_EQ(db.latent_dim(), 2u);
  EXPECT_TRUE(db.UpdateWorkerSkills(0, {1.0, 2.0, 3.0}).IsInvalidArgument());
  ASSERT_TRUE(db.UpdateWorkerSkills(0, {1.0, 2.0}).ok());
}

TEST(CrowdDatabaseTest, EmptyLatentVectorsAreAlwaysLegal) {
  CrowdDatabase db = SmallDb();
  ASSERT_TRUE(db.UpdateWorkerSkills(0, {1.0, 2.0}).ok());
  // Empty = "no model for this row", valid at any K.
  ASSERT_TRUE(db.UpdateWorkerSkills(0, {}).ok());
  ASSERT_TRUE(db.UpdateTaskCategories(0, {}).ok());
  EXPECT_EQ(db.latent_dim(), 2u);
}

TEST(CrowdDatabaseTest, FeedbackOverwriteDoesNotDoubleCount) {
  CrowdDatabase db = SmallDb();
  ASSERT_TRUE(db.Assign(0, 0).ok());
  ASSERT_TRUE(db.RecordFeedback(0, 0, 3.0).ok());
  ASSERT_TRUE(db.RecordFeedback(0, 0, 5.0).ok());
  EXPECT_EQ(db.NumScoredAssignments(), 1u);
  EXPECT_DOUBLE_EQ(*db.GetScore(0, 0), 5.0);
}

TEST(CrowdDatabaseTest, ScoreOfUnscoredAssignmentIsNotFound) {
  CrowdDatabase db = SmallDb();
  ASSERT_TRUE(db.Assign(0, 0).ok());
  EXPECT_TRUE(db.GetScore(0, 0).status().IsNotFound());
  EXPECT_TRUE(db.GetScore(2, 1).status().IsNotFound());
}

TEST(CrowdDatabaseTest, SecondaryIndexes) {
  CrowdDatabase db = SmallDb();
  ASSERT_TRUE(db.Assign(0, 0).ok());
  ASSERT_TRUE(db.Assign(0, 1).ok());
  ASSERT_TRUE(db.Assign(2, 0).ok());
  EXPECT_EQ(db.AssignmentsOfWorker(0).size(), 2u);
  EXPECT_EQ(db.AssignmentsOfWorker(2).size(), 1u);
  EXPECT_EQ(db.AssignmentsOfTask(0).size(), 2u);
  EXPECT_EQ(db.AssignmentsOfTask(1).size(), 1u);
  EXPECT_TRUE(db.AssignmentsOfWorker(1).empty());
  // Out-of-range ids return an empty index, not UB.
  EXPECT_TRUE(db.AssignmentsOfWorker(999).empty());
  EXPECT_TRUE(db.AssignmentsOfTask(999).empty());
}

TEST(CrowdDatabaseTest, ParticipationCountsOnlyScoredWork) {
  CrowdDatabase db = SmallDb();
  ASSERT_TRUE(db.Assign(0, 0).ok());
  ASSERT_TRUE(db.Assign(0, 1).ok());
  ASSERT_TRUE(db.RecordFeedback(0, 0, 1.0).ok());
  EXPECT_EQ(db.ParticipationOf(0), 1u);
  EXPECT_EQ(db.ParticipationOf(1), 0u);
}

TEST(CrowdDatabaseTest, CrowdUpdateSkillsAndCategories) {
  CrowdDatabase db = SmallDb();
  ASSERT_TRUE(db.UpdateWorkerSkills(0, {1.0, 2.0}).ok());
  EXPECT_EQ(db.GetWorker(0).value()->skills, (std::vector<double>{1.0, 2.0}));
  ASSERT_TRUE(db.UpdateTaskCategories(1, {0.9, 0.1}).ok());
  EXPECT_EQ(db.GetTask(1).value()->categories,
            (std::vector<double>{0.9, 0.1}));
}

TEST(CrowdDatabaseTest, OnlineWorkersTracksFlag) {
  CrowdDatabase db = SmallDb();
  EXPECT_EQ(db.OnlineWorkers(), (std::vector<WorkerId>{0, 2}));
  ASSERT_TRUE(db.SetWorkerOnline(1, true).ok());
  ASSERT_TRUE(db.SetWorkerOnline(0, false).ok());
  EXPECT_EQ(db.OnlineWorkers(), (std::vector<WorkerId>{1, 2}));
}

}  // namespace
}  // namespace crowdselect
