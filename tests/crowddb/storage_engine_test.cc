#include "crowddb/storage_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/store_snapshot.h"
#include "util/logging.h"
#include "util/rng.h"

namespace crowdselect {
namespace {

namespace fs = std::filesystem;

class StorageEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("cs_engine_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

/// Drives the same mutation sequence into the engine and into a reference
/// CrowdDatabase; both must end up equivalent.
void MutateBoth(CrowdStore* store, CrowdDatabase* reference, uint64_t seed,
                int steps) {
  Rng rng(seed);
  for (int step = 0; step < steps; ++step) {
    const int kind = static_cast<int>(rng.Uniform() * 7);
    const size_t nw = reference->NumWorkers();
    const size_t nt = reference->NumTasks();
    if (kind == 0 || nw == 0) {
      const std::string handle = "worker-" + std::to_string(nw);
      const bool online = rng.Uniform() < 0.8;
      auto id = store->AddWorker(handle, online);
      ASSERT_TRUE(id.ok());
      ASSERT_EQ(*id, reference->AddWorker(handle, online));
    } else if (kind == 1 || nt == 0) {
      const std::string text =
          "task " + std::to_string(nt) + " tree integrate parts";
      auto id = store->AddTask(text);
      ASSERT_TRUE(id.ok());
      ASSERT_EQ(*id, reference->AddTask(text));
    } else {
      const WorkerId w = static_cast<WorkerId>(rng.Uniform() * nw);
      const TaskId t = static_cast<TaskId>(rng.Uniform() * nt);
      if (kind == 2) {
        ASSERT_TRUE(store->Assign(w, t).ok());
        ASSERT_TRUE(reference->Assign(w, t).ok());
      } else if (kind == 3) {
        ASSERT_TRUE(store->Assign(w, t).ok());
        ASSERT_TRUE(reference->Assign(w, t).ok());
        const double score = rng.Uniform() * 5.0;
        ASSERT_TRUE(store->RecordFeedback(w, t, score).ok());
        ASSERT_TRUE(reference->RecordFeedback(w, t, score).ok());
      } else if (kind == 4) {
        std::vector<double> v = {rng.Uniform(), rng.Uniform()};
        ASSERT_TRUE(store->UpdateWorkerSkills(w, v).ok());
        ASSERT_TRUE(reference->UpdateWorkerSkills(w, v).ok());
      } else if (kind == 5) {
        std::vector<double> v = {rng.Uniform(), rng.Uniform()};
        ASSERT_TRUE(store->UpdateTaskCategories(t, v).ok());
        ASSERT_TRUE(reference->UpdateTaskCategories(t, v).ok());
      } else {
        const bool online = rng.Uniform() < 0.5;
        ASSERT_TRUE(store->SetWorkerOnline(w, online).ok());
        ASSERT_TRUE(reference->SetWorkerOnline(w, online).ok());
      }
    }
  }
}

void ExpectSameDatabase(const CrowdDatabase& a, const CrowdDatabase& b) {
  ASSERT_EQ(a.NumWorkers(), b.NumWorkers());
  ASSERT_EQ(a.NumTasks(), b.NumTasks());
  EXPECT_EQ(a.NumAssignments(), b.NumAssignments());
  EXPECT_EQ(a.NumScoredAssignments(), b.NumScoredAssignments());
  EXPECT_EQ(a.vocabulary().size(), b.vocabulary().size());
  for (WorkerId w = 0; w < a.NumWorkers(); ++w) {
    const WorkerRecord* wa = a.GetWorker(w).value();
    const WorkerRecord* wb = b.GetWorker(w).value();
    EXPECT_EQ(wa->handle, wb->handle);
    EXPECT_EQ(wa->online, wb->online);
    EXPECT_EQ(wa->skills, wb->skills);
  }
  for (TaskId t = 0; t < a.NumTasks(); ++t) {
    const TaskRecord* ta = a.GetTask(t).value();
    const TaskRecord* tb = b.GetTask(t).value();
    EXPECT_EQ(ta->text, tb->text);
    EXPECT_EQ(ta->resolved, tb->resolved);
    EXPECT_EQ(ta->categories, tb->categories);
    EXPECT_EQ(ta->bag.TotalTokens(), tb->bag.TotalTokens());
    EXPECT_EQ(a.AssignmentsOfTask(t).size(), b.AssignmentsOfTask(t).size());
  }
  for (const auto& rec : a.assignments()) {
    auto score = b.GetScore(rec.worker, rec.task);
    if (rec.has_score) {
      ASSERT_TRUE(score.ok());
      EXPECT_DOUBLE_EQ(*score, rec.score);
    } else {
      EXPECT_TRUE(score.status().IsNotFound());
    }
  }
}

TEST_F(StorageEngineTest, EphemeralEngineMatchesCrowdDatabase) {
  StorageOptions options;
  options.num_shards = 4;
  auto engine = CrowdStoreEngine::OpenEphemeral(options);
  CrowdDatabase reference;
  MutateBoth(engine.get(), &reference, 11, 500);

  auto view = engine->FrozenView();
  ASSERT_TRUE(view.ok());
  ExpectSameDatabase(reference, **view);
  EXPECT_FALSE(engine->durable());
}

TEST_F(StorageEngineTest, ReopenAfterCheckpointRestoresEverything) {
  CrowdDatabase reference;
  {
    auto engine = CrowdStoreEngine::Open(dir_);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    MutateBoth(engine->get(), &reference, 22, 300);
    ASSERT_TRUE((*engine)->Checkpoint().ok());
    // More mutations after the checkpoint land in the WAL only.
    MutateBoth(engine->get(), &reference, 23, 100);
  }
  auto engine = CrowdStoreEngine::Open(dir_);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE((*engine)->open_stats().checkpoint_loaded);
  EXPECT_GT((*engine)->open_stats().wal_records_applied, 0u);
  auto view = (*engine)->FrozenView();
  ASSERT_TRUE(view.ok());
  ExpectSameDatabase(reference, **view);
}

TEST_F(StorageEngineTest, ReopenFromWalOnlyRestoresEverything) {
  CrowdDatabase reference;
  {
    auto engine = CrowdStoreEngine::Open(dir_);
    ASSERT_TRUE(engine.ok());
    MutateBoth(engine->get(), &reference, 33, 250);
  }
  auto engine = CrowdStoreEngine::Open(dir_);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_FALSE((*engine)->open_stats().checkpoint_loaded);
  auto view = (*engine)->FrozenView();
  ASSERT_TRUE(view.ok());
  ExpectSameDatabase(reference, **view);
}

TEST_F(StorageEngineTest, ShardCountCanChangeBetweenRuns) {
  CrowdDatabase reference;
  {
    StorageOptions options;
    options.num_shards = 2;
    auto engine = CrowdStoreEngine::Open(dir_, options);
    ASSERT_TRUE(engine.ok());
    MutateBoth(engine->get(), &reference, 44, 200);
  }
  StorageOptions options;
  options.num_shards = 7;
  auto engine = CrowdStoreEngine::Open(dir_, options);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->num_shards(), 7u);
  size_t workers = 0;
  for (size_t s = 0; s < (*engine)->num_shards(); ++s) {
    workers += (*engine)->CountsOfShard(s).workers;
  }
  EXPECT_EQ(workers, reference.NumWorkers());
  auto view = (*engine)->FrozenView();
  ASSERT_TRUE(view.ok());
  ExpectSameDatabase(reference, **view);
}

TEST_F(StorageEngineTest, BulkImportThenReopen) {
  CrowdDatabase db;
  db.AddWorker("alice");
  db.AddWorker("bob", false);
  db.AddTask("b+ tree advantages");
  CS_CHECK_OK(db.Assign(0, 0));
  CS_CHECK_OK(db.RecordFeedback(0, 0, 4.0));
  CS_CHECK_OK(db.UpdateWorkerSkills(1, {0.25, 0.75}));
  {
    auto engine = CrowdStoreEngine::Open(dir_);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->BulkImport(db).ok());
    // A second import must be refused: the store is no longer empty.
    EXPECT_TRUE((*engine)->BulkImport(db).IsFailedPrecondition());
  }
  auto engine = CrowdStoreEngine::Open(dir_);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE((*engine)->open_stats().checkpoint_loaded);
  EXPECT_EQ((*engine)->open_stats().wal_records_applied, 0u);
  auto view = (*engine)->FrozenView();
  ASSERT_TRUE(view.ok());
  ExpectSameDatabase(db, **view);
}

TEST_F(StorageEngineTest, UnknownIdsAndMissingAssignmentsFailCleanly) {
  auto engine = CrowdStoreEngine::OpenEphemeral();
  ASSERT_TRUE(engine->AddWorker("alice", true).ok());
  ASSERT_TRUE(engine->AddTask("first task text").ok());
  EXPECT_TRUE(engine->Assign(9, 0).IsNotFound());
  EXPECT_TRUE(engine->Assign(0, 9).IsNotFound());
  EXPECT_TRUE(engine->RecordFeedback(0, 0, 1.0).IsFailedPrecondition());
  EXPECT_TRUE(engine->SetWorkerOnline(9, true).IsNotFound());
  EXPECT_TRUE(engine->UpdateWorkerSkills(9, {1.0}).IsNotFound());
  EXPECT_TRUE(engine->UpdateTaskCategories(9, {1.0}).IsNotFound());
}

TEST_F(StorageEngineTest, LatentDimMismatchIsInvalidArgument) {
  auto engine = CrowdStoreEngine::OpenEphemeral();
  ASSERT_TRUE(engine->AddWorker("alice", true).ok());
  ASSERT_TRUE(engine->AddTask("first task text").ok());
  ASSERT_TRUE(engine->UpdateWorkerSkills(0, {1.0, 2.0}).ok());
  EXPECT_EQ(engine->latent_dim(), 2u);
  EXPECT_TRUE(engine->UpdateWorkerSkills(0, {1.0, 2.0, 3.0})
                  .IsInvalidArgument());
  EXPECT_TRUE(engine->UpdateTaskCategories(0, {1.0}).IsInvalidArgument());
  ASSERT_TRUE(engine->UpdateTaskCategories(0, {0.5, 0.5}).ok());
  // Empty = "no model yet" stays allowed.
  EXPECT_TRUE(engine->UpdateWorkerSkills(0, {}).ok());
}

TEST_F(StorageEngineTest, AssignIsIdempotentAndNotDoubleLogged) {
  auto engine = CrowdStoreEngine::OpenEphemeral();
  ASSERT_TRUE(engine->AddWorker("alice", true).ok());
  ASSERT_TRUE(engine->AddTask("first task text").ok());
  const uint64_t before = engine->last_sequence();
  ASSERT_TRUE(engine->Assign(0, 0).ok());
  ASSERT_TRUE(engine->Assign(0, 0).ok());
  EXPECT_EQ(engine->NumAssignments(), 1u);
  EXPECT_EQ(engine->last_sequence(), before + 1);
}

TEST_F(StorageEngineTest, AutoCheckpointKicksInAfterThreshold) {
  StorageOptions options;
  options.auto_checkpoint_every = 10;
  auto opened = CrowdStoreEngine::Open(dir_, options);
  ASSERT_TRUE(opened.ok());
  auto& engine = *opened;
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(engine->AddWorker("w" + std::to_string(i), true).ok());
  }
  EXPECT_GT(engine->checkpoint_sequence(), 0u);
  EXPECT_LE(engine->checkpoint_sequence(), engine->last_sequence());
  EXPECT_TRUE(fs::exists(fs::path(dir_) / CrowdStoreEngine::kCheckpointFile));
}

TEST_F(StorageEngineTest, SnapshotFromStoreMatchesSkills) {
  StorageOptions options;
  options.num_shards = 3;
  auto engine = CrowdStoreEngine::OpenEphemeral(options);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine->AddWorker("w" + std::to_string(i), true).ok());
    ASSERT_TRUE(
        engine->UpdateWorkerSkills(static_cast<WorkerId>(i),
                                   {i * 1.0, i * 2.0}).ok());
  }
  auto snapshot = serve::BuildSnapshotFromStore(*engine, /*version=*/7);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ((*snapshot)->num_workers(), 10u);
  EXPECT_EQ((*snapshot)->num_categories(), 2u);
  EXPECT_EQ((*snapshot)->version(), 7u);
  for (WorkerId w = 0; w < 10; ++w) {
    const double* row = (*snapshot)->RowPtr(w);
    EXPECT_DOUBLE_EQ(row[0], w * 1.0);
    EXPECT_DOUBLE_EQ(row[1], w * 2.0);
  }
}

TEST_F(StorageEngineTest, SnapshotFromStoreWithoutModelIsFailedPrecondition) {
  auto engine = CrowdStoreEngine::OpenEphemeral();
  ASSERT_TRUE(engine->AddWorker("alice", true).ok());
  auto snapshot = serve::BuildSnapshotFromStore(*engine);
  EXPECT_TRUE(snapshot.status().IsFailedPrecondition());
}

/// TSan exercise: writers on disjoint rows across shards, concurrent with
/// frozen-view readers and per-shard snapshot scans.
TEST_F(StorageEngineTest, ConcurrentWritersAndSnapshotReadersAreClean) {
  StorageOptions options;
  options.num_shards = 4;
  auto opened = CrowdStoreEngine::Open(dir_, options);
  ASSERT_TRUE(opened.ok());
  auto& engine = *opened;

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 40;
  // Pre-create one task per writer so Assign targets exist.
  for (int i = 0; i < kWriters; ++i) {
    ASSERT_TRUE(
        engine->AddTask("task " + std::to_string(i) + " shared text").ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int writer = 0; writer < kWriters; ++writer) {
    threads.emplace_back([&, writer] {
      for (int i = 0; i < kPerWriter; ++i) {
        auto id = engine->AddWorker(
            "w" + std::to_string(writer) + "-" + std::to_string(i),
            i % 2 == 0);
        if (!id.ok()) { ++failures; continue; }
        if (!engine->Assign(*id, static_cast<TaskId>(writer)).ok()) ++failures;
        if (!engine->RecordFeedback(*id, static_cast<TaskId>(writer),
                                    i * 0.5).ok()) {
          ++failures;
        }
        if (!engine->UpdateWorkerSkills(*id, {1.0 * i, 2.0 * i}).ok()) {
          ++failures;
        }
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto view = engine->FrozenView();
      if (!view.ok()) ++failures;
    }
  });
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      size_t total = 0;
      for (size_t s = 0; s < engine->num_shards(); ++s) {
        engine->ForEachWorkerInShard(
            s, [&](const WorkerRecord&) { ++total; });
      }
      (void)serve::BuildSnapshotFromStore(*engine);
    }
  });
  for (int i = 0; i < kWriters; ++i) threads[i].join();
  stop.store(true, std::memory_order_release);
  threads[kWriters].join();
  threads[kWriters + 1].join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine->NumWorkers(),
            static_cast<size_t>(kWriters * kPerWriter));
  EXPECT_EQ(engine->NumAssignments(),
            static_cast<size_t>(kWriters * kPerWriter));

  // Everything acknowledged under concurrency must also be durable.
  auto view = engine->FrozenView();
  ASSERT_TRUE(view.ok());
  opened->reset();
  auto reopened = CrowdStoreEngine::Open(dir_, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto recovered = (*reopened)->FrozenView();
  ASSERT_TRUE(recovered.ok());
  ExpectSameDatabase(**view, **recovered);
}

TEST_F(StorageEngineTest, CheckpointWhileWritingIsConsistent) {
  // Checkpoints racing live writers exercise the full engine lock chain
  // (apply_mu_ -> wal_mu_ -> shard locks) from two directions at once;
  // under TSan/debug builds util/lockdep.h verifies the acquisition order
  // on every one of these paths.
  StorageOptions options;
  options.num_shards = 4;
  options.auto_checkpoint_every = 0;  // Manual checkpoints only.
  auto opened = CrowdStoreEngine::Open(dir_, options);
  ASSERT_TRUE(opened.ok());
  auto& engine = *opened;

  constexpr int kWriters = 3;
  constexpr int kPerWriter = 30;
  for (int i = 0; i < kWriters; ++i) {
    ASSERT_TRUE(engine->AddTask("task " + std::to_string(i)).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int writer = 0; writer < kWriters; ++writer) {
    threads.emplace_back([&, writer] {
      for (int i = 0; i < kPerWriter; ++i) {
        auto id = engine->AddWorker(
            "cw" + std::to_string(writer) + "-" + std::to_string(i), true);
        if (!id.ok()) { ++failures; continue; }
        if (!engine->Assign(*id, static_cast<TaskId>(writer)).ok()) ++failures;
        if (!engine->SetWorkerOnline(*id, i % 2 == 0).ok()) ++failures;
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (!engine->Checkpoint().ok()) ++failures;
    }
  });
  for (int i = 0; i < kWriters; ++i) threads[i].join();
  stop.store(true, std::memory_order_release);
  threads[kWriters].join();
  EXPECT_EQ(failures.load(), 0);

  // Whatever mid-stream checkpoint the engine last wrote, reopening from
  // CHECKPOINT + WAL tail must reconstruct every acknowledged write.
  auto view = engine->FrozenView();
  ASSERT_TRUE(view.ok());
  opened->reset();
  auto reopened = CrowdStoreEngine::Open(dir_, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto recovered = (*reopened)->FrozenView();
  ASSERT_TRUE(recovered.ok());
  ExpectSameDatabase(**view, **recovered);
}

}  // namespace
}  // namespace crowdselect
