#include "crowddb/jsonl.h"

#include <gtest/gtest.h>

#include "util/logging.h"

#include <filesystem>
#include <sstream>

namespace crowdselect {
namespace {

TEST(JsonEscapeTest, PlainAndSpecialCharacters) {
  EXPECT_EQ(jsonl::EscapeString("hello"), "\"hello\"");
  EXPECT_EQ(jsonl::EscapeString("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(jsonl::EscapeString("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(jsonl::EscapeString("line\nbreak\ttab"),
            "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(jsonl::EscapeString(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonParseTest, FlatObject) {
  auto object = jsonl::ParseObject(
      R"({"handle": "alice", "online": true, "score": 4.5, "note": null})");
  ASSERT_TRUE(object.ok()) << object.status().ToString();
  EXPECT_EQ(std::get<std::string>((*object)["handle"]), "alice");
  EXPECT_EQ(std::get<bool>((*object)["online"]), true);
  EXPECT_DOUBLE_EQ(std::get<double>((*object)["score"]), 4.5);
  EXPECT_TRUE(std::holds_alternative<std::monostate>((*object)["note"]));
}

TEST(JsonParseTest, EmptyObjectAndWhitespace) {
  auto object = jsonl::ParseObject("  { }  ");
  ASSERT_TRUE(object.ok());
  EXPECT_TRUE(object->empty());
}

TEST(JsonParseTest, EscapesRoundTrip) {
  jsonl::Object original;
  original["text"] = std::string("what is a \"b+ tree\"?\nreally\t\\path");
  original["n"] = -12.25;
  original["flag"] = false;
  const std::string line = jsonl::WriteObject(original);
  auto parsed = jsonl::ParseObject(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_EQ(std::get<std::string>((*parsed)["text"]),
            std::get<std::string>(original["text"]));
  EXPECT_DOUBLE_EQ(std::get<double>((*parsed)["n"]), -12.25);
  EXPECT_EQ(std::get<bool>((*parsed)["flag"]), false);
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(jsonl::ParseObject("").ok());
  EXPECT_FALSE(jsonl::ParseObject("{").ok());
  EXPECT_FALSE(jsonl::ParseObject("{\"a\": }").ok());
  EXPECT_FALSE(jsonl::ParseObject("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(jsonl::ParseObject("{\"a\": [1,2]}").ok());   // Nested.
  EXPECT_FALSE(jsonl::ParseObject("{\"a\": {\"b\":1}}").ok());
  EXPECT_FALSE(jsonl::ParseObject("{\"a\": 1x}").ok());
  EXPECT_FALSE(jsonl::ParseObject("{\"unterminated: 1}").ok());
  EXPECT_FALSE(jsonl::ParseObject("{\"a\" 1}").ok());
}

CrowdDatabase BuildDb() {
  CrowdDatabase db;
  db.AddWorker("alice \"the expert\"");
  db.AddWorker("bob", /*online=*/false);
  db.AddTask("what is a btree?\nexplain simply");
  db.AddTask("integrate by parts");
  CS_CHECK_OK(db.Assign(0, 0));
  CS_CHECK_OK(db.RecordFeedback(0, 0, 4.5));
  CS_CHECK_OK(db.Assign(1, 0));  // Unscored.
  CS_CHECK_OK(db.Assign(1, 1));
  CS_CHECK_OK(db.RecordFeedback(1, 1, 1.0));
  return db;
}

TEST(JsonlImportExportTest, RoundTripThroughStreams) {
  CrowdDatabase db = BuildDb();
  std::ostringstream workers, tasks, assignments;
  ExportWorkersJsonl(db, workers);
  ExportTasksJsonl(db, tasks);
  ExportAssignmentsJsonl(db, assignments);

  std::istringstream w(workers.str()), t(tasks.str()), a(assignments.str());
  auto restored = ImportDatabaseJsonl(w, t, a);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->NumWorkers(), 2u);
  EXPECT_EQ(restored->NumTasks(), 2u);
  EXPECT_EQ(restored->NumAssignments(), 3u);
  EXPECT_EQ(restored->NumScoredAssignments(), 2u);
  EXPECT_EQ(restored->GetWorker(0).value()->handle, "alice \"the expert\"");
  EXPECT_FALSE(restored->GetWorker(1).value()->online);
  EXPECT_EQ(restored->GetTask(0).value()->text,
            "what is a btree?\nexplain simply");
  EXPECT_DOUBLE_EQ(*restored->GetScore(0, 0), 4.5);
  EXPECT_TRUE(restored->GetScore(1, 0).status().IsNotFound());
}

TEST(JsonlImportExportTest, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "cs_jsonl_test";
  std::filesystem::create_directories(dir);
  CrowdDatabase db = BuildDb();
  ASSERT_TRUE(ExportDatabaseJsonlFiles(db, dir.string()).ok());
  auto restored = ImportDatabaseJsonlFiles(dir.string());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->NumAssignments(), db.NumAssignments());
  std::filesystem::remove_all(dir);
}

TEST(JsonlImportExportTest, MissingFieldsRejected) {
  std::istringstream w("{\"online\": true}\n");  // No handle.
  std::istringstream t("{\"text\": \"x\"}\n");
  std::istringstream a("");
  EXPECT_TRUE(ImportDatabaseJsonl(w, t, a).status().IsInvalidArgument());
}

TEST(JsonlImportExportTest, DanglingReferenceRejected) {
  std::istringstream w("{\"handle\": \"a\"}\n");
  std::istringstream t("{\"text\": \"x\"}\n");
  std::istringstream a("{\"worker_id\": 9, \"task_id\": 0}\n");
  EXPECT_TRUE(ImportDatabaseJsonl(w, t, a).status().IsCorruption());
}

TEST(JsonlImportExportTest, FractionalAndNegativeIdsRejected) {
  // Regression: ids arrive as JSON numbers (doubles); 1.7 must not be
  // silently truncated onto worker 1, and -0.5 must not wrap.
  std::istringstream w1("{\"handle\": \"a\"}\n{\"handle\": \"b\"}\n");
  std::istringstream t1("{\"text\": \"x\"}\n");
  std::istringstream a1("{\"worker_id\": 1.7, \"task_id\": 0}\n");
  EXPECT_TRUE(ImportDatabaseJsonl(w1, t1, a1).status().IsInvalidArgument());

  std::istringstream w2("{\"handle\": \"a\"}\n");
  std::istringstream t2("{\"text\": \"x\"}\n");
  std::istringstream a2("{\"worker_id\": 0, \"task_id\": -0.5}\n");
  EXPECT_TRUE(ImportDatabaseJsonl(w2, t2, a2).status().IsInvalidArgument());
}

TEST(JsonlImportExportTest, MissingDirectoryIsIOError) {
  EXPECT_TRUE(
      ImportDatabaseJsonlFiles("/nonexistent/dir").status().IsIOError());
}

}  // namespace
}  // namespace crowdselect
