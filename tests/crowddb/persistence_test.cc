#include "crowddb/persistence.h"

#include <gtest/gtest.h>

#include "util/logging.h"

#include <cstdio>
#include <filesystem>

namespace crowdselect {
namespace {

CrowdDatabase BuildDb() {
  CrowdDatabase db;
  db.AddWorker("alice");
  db.AddWorker("bob", false);
  db.AddTask("b+ tree advantages");
  db.AddTask("integrate by parts");
  CS_CHECK_OK(db.Assign(0, 0));
  CS_CHECK_OK(db.Assign(1, 0));
  CS_CHECK_OK(db.Assign(1, 1));
  CS_CHECK_OK(db.RecordFeedback(0, 0, 4.0));
  CS_CHECK_OK(db.RecordFeedback(1, 1, 0.5));
  CS_CHECK_OK(db.UpdateWorkerSkills(0, {1.0, -0.5}));
  CS_CHECK_OK(db.UpdateTaskCategories(0, {0.8, 0.2}));
  return db;
}

TEST(PersistenceTest, RoundTripPreservesEverything) {
  CrowdDatabase db = BuildDb();
  BinaryWriter writer;
  CrowdDatabasePersistence::Save(db, &writer);
  BinaryReader reader(writer.Release());
  auto restored = CrowdDatabasePersistence::Load(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(restored->NumWorkers(), 2u);
  EXPECT_EQ(restored->NumTasks(), 2u);
  EXPECT_EQ(restored->NumAssignments(), 3u);
  EXPECT_EQ(restored->NumScoredAssignments(), 2u);
  EXPECT_EQ(restored->GetWorker(0).value()->handle, "alice");
  EXPECT_FALSE(restored->GetWorker(1).value()->online);
  EXPECT_EQ(restored->GetWorker(0).value()->skills,
            (std::vector<double>{1.0, -0.5}));
  EXPECT_EQ(restored->GetTask(0).value()->categories,
            (std::vector<double>{0.8, 0.2}));
  EXPECT_DOUBLE_EQ(*restored->GetScore(0, 0), 4.0);
  EXPECT_TRUE(restored->GetScore(1, 0).status().IsNotFound());

  // Secondary indexes rebuilt.
  EXPECT_EQ(restored->AssignmentsOfWorker(1).size(), 2u);
  EXPECT_EQ(restored->AssignmentsOfTask(0).size(), 2u);
  EXPECT_EQ(restored->ParticipationOf(1), 1u);

  // Vocabulary preserved.
  EXPECT_EQ(restored->vocabulary().size(), db.vocabulary().size());
  EXPECT_EQ(restored->vocabulary().Lookup("tree"),
            db.vocabulary().Lookup("tree"));
}

TEST(PersistenceTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cs_db_test.csdb").string();
  CrowdDatabase db = BuildDb();
  ASSERT_TRUE(CrowdDatabasePersistence::SaveToFile(db, path).ok());
  auto restored = CrowdDatabasePersistence::LoadFromFile(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->NumAssignments(), 3u);
  std::remove(path.c_str());
}

TEST(PersistenceTest, BadMagicRejected) {
  BinaryWriter writer;
  writer.WriteU32(0x12345678);
  BinaryReader reader(writer.Release());
  EXPECT_TRUE(CrowdDatabasePersistence::Load(&reader).status().IsCorruption());
}

TEST(PersistenceTest, WrongVersionRejected) {
  BinaryWriter writer;
  writer.WriteU32(CrowdDatabasePersistence::kMagic);
  writer.WriteU32(999);
  BinaryReader reader(writer.Release());
  EXPECT_TRUE(CrowdDatabasePersistence::Load(&reader).status().IsCorruption());
}

TEST(PersistenceTest, TruncatedPayloadRejected) {
  CrowdDatabase db = BuildDb();
  BinaryWriter writer;
  CrowdDatabasePersistence::Save(db, &writer);
  std::string buf = writer.Release();
  buf.resize(buf.size() / 2);
  BinaryReader reader(std::move(buf));
  EXPECT_FALSE(CrowdDatabasePersistence::Load(&reader).ok());
}

TEST(PersistenceTest, EveryTruncationPointRejectedCleanly) {
  // No truncation prefix may crash, hang, or load successfully.
  CrowdDatabase db = BuildDb();
  BinaryWriter writer;
  CrowdDatabasePersistence::Save(db, &writer);
  const std::string full = writer.Release();
  for (size_t len = 0; len < full.size(); ++len) {
    BinaryReader reader(full.substr(0, len));
    EXPECT_FALSE(CrowdDatabasePersistence::Load(&reader).ok())
        << "prefix of " << len << " bytes loaded";
  }
}

TEST(PersistenceTest, OversizedWorkerCountRejected) {
  // A header claiming more workers than the payload could hold must fail
  // on the count itself, not by attempting a huge reserve().
  BinaryWriter writer;
  writer.WriteU32(CrowdDatabasePersistence::kMagic);
  writer.WriteU32(CrowdDatabasePersistence::kVersion);
  Vocabulary().Serialize(&writer);
  writer.WriteU64(1ULL << 60);  // Worker count.
  BinaryReader reader(writer.Release());
  EXPECT_TRUE(CrowdDatabasePersistence::Load(&reader).status().IsCorruption());
}

TEST(PersistenceTest, OversizedVocabularyCountRejected) {
  BinaryWriter writer;
  writer.WriteU32(CrowdDatabasePersistence::kMagic);
  writer.WriteU32(CrowdDatabasePersistence::kVersion);
  writer.WriteU64(1ULL << 60);  // Vocabulary term count.
  BinaryReader reader(writer.Release());
  EXPECT_TRUE(CrowdDatabasePersistence::Load(&reader).status().IsCorruption());
}

TEST(PersistenceTest, BagTermBeyondVocabularyRejected) {
  // Found by the checkpoint fuzzer: a task bag referencing a term id the
  // vocabulary does not contain parsed "successfully" but indexes past
  // vocab-sized matrices downstream (the beta columns in
  // model/variational.cc), so Load must reject it as corruption.
  BinaryWriter writer;
  writer.WriteU32(CrowdDatabasePersistence::kMagic);
  writer.WriteU32(CrowdDatabasePersistence::kVersion);
  Vocabulary().Serialize(&writer);  // Empty vocabulary: no valid term id.
  writer.WriteU64(0);               // Worker count.
  writer.WriteU64(1);               // Task count.
  writer.WriteU32(0);               // TaskRecord.id.
  writer.WriteString("ghost");      // TaskRecord.text.
  writer.WriteU64(1);               // Bag entry count.
  writer.WriteU32(0);               // Term id 0 — out of range.
  writer.WriteU32(1);               // Term count.
  writer.WriteU8(0);                // TaskRecord.resolved.
  writer.WriteU64(0);               // Empty categories vector.
  BinaryReader reader(writer.Release());
  EXPECT_TRUE(CrowdDatabasePersistence::Load(&reader).status().IsCorruption());
}

TEST(PersistenceTest, InconsistentSkillDimensionsRejected) {
  // Two workers with different non-empty skill lengths cannot have been
  // produced by Save(); latent_dim validation must reject the payload.
  CrowdDatabase db;
  db.AddWorker("alice");
  db.AddWorker("bob");
  CS_CHECK_OK(db.UpdateWorkerSkills(0, {1.0, 2.0}));
  CS_CHECK_OK(db.UpdateWorkerSkills(1, {3.0, 4.0}));
  BinaryWriter writer;
  CrowdDatabasePersistence::Save(db, &writer);
  std::string buf = writer.Release();
  // Shrink bob's skill vector in place: count 2 -> 1, drop one double.
  // Locate the second occurrence of the 8-byte count "2" followed by the
  // bytes of 3.0 (bob's first skill).
  BinaryWriter needle_writer;
  needle_writer.WriteU64(2);
  needle_writer.WriteDouble(3.0);
  const std::string needle = needle_writer.Release();
  const size_t at = buf.find(needle);
  ASSERT_NE(at, std::string::npos);
  BinaryWriter patch_writer;
  patch_writer.WriteU64(1);
  patch_writer.WriteDouble(3.0);
  const std::string patch = patch_writer.Release();
  buf.replace(at, needle.size() + sizeof(double), patch);
  BinaryReader reader(std::move(buf));
  EXPECT_TRUE(CrowdDatabasePersistence::Load(&reader).status().IsCorruption());
}

}  // namespace
}  // namespace crowdselect
