#include "crowddb/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "crowddb/crowd_database.h"
#include "util/crc32.h"
#include "util/logging.h"
#include "util/rng.h"

namespace crowdselect {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() /
             ("cs_wal_test_" + std::string(
                  ::testing::UnitTest::GetInstance()->current_test_info()->name()) +
              ".log"))
                .string();
    fs::remove(path_);
  }
  void TearDown() override { fs::remove(path_); }

  std::string path_;
};

/// One record of every type, with every meaningful field set.
std::vector<WalRecord> AllRecordTypes() {
  std::vector<WalRecord> records;
  WalRecord r;
  r.seq = 1;
  r.type = WalRecordType::kAddWorker;
  r.worker = 0;
  r.text = "alice";
  r.flag = true;
  records.push_back(r);
  r = WalRecord{};
  r.seq = 2;
  r.type = WalRecordType::kAddTask;
  r.task = 0;
  r.text = "b+ tree advantages over b tree";
  records.push_back(r);
  r = WalRecord{};
  r.seq = 3;
  r.type = WalRecordType::kAssign;
  r.worker = 0;
  r.task = 0;
  records.push_back(r);
  r = WalRecord{};
  r.seq = 4;
  r.type = WalRecordType::kRecordFeedback;
  r.worker = 0;
  r.task = 0;
  r.score = 3.75;
  records.push_back(r);
  r = WalRecord{};
  r.seq = 5;
  r.type = WalRecordType::kUpdateWorkerSkills;
  r.worker = 0;
  r.values = {0.5, -1.25, 2.0};
  records.push_back(r);
  r = WalRecord{};
  r.seq = 6;
  r.type = WalRecordType::kUpdateTaskCategories;
  r.task = 0;
  r.values = {0.1, 0.9};
  records.push_back(r);
  r = WalRecord{};
  r.seq = 7;
  r.type = WalRecordType::kSetOnline;
  r.worker = 0;
  r.flag = false;
  records.push_back(r);
  return records;
}

void ExpectSameRecord(const WalRecord& a, const WalRecord& b) {
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.worker, b.worker);
  EXPECT_EQ(a.task, b.task);
  EXPECT_EQ(a.flag, b.flag);
  EXPECT_DOUBLE_EQ(a.score, b.score);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.values, b.values);
}

TEST_F(WalTest, RoundTripsEveryRecordType) {
  const std::vector<WalRecord> written = AllRecordTypes();
  {
    auto writer = WalWriter::Open(path_);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const WalRecord& r : written) {
      ASSERT_TRUE(writer->Append(r).ok());
    }
  }
  std::vector<WalRecord> replayed;
  auto result = ReplayWal(path_, 0, [&](const WalRecord& r) {
    replayed.push_back(r);
    return Status::OK();
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->records_scanned, written.size());
  EXPECT_EQ(result->records_applied, written.size());
  EXPECT_FALSE(result->torn_tail);
  EXPECT_EQ(result->last_seq, 7u);
  ASSERT_EQ(replayed.size(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    ExpectSameRecord(written[i], replayed[i]);
  }
}

TEST_F(WalTest, MissingFileIsAnEmptyLog) {
  auto result = ReplayWal(path_, 0, [](const WalRecord&) {
    ADD_FAILURE() << "no record expected";
    return Status::OK();
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records_scanned, 0u);
  EXPECT_EQ(result->valid_bytes, 0u);
  EXPECT_FALSE(result->torn_tail);
}

TEST_F(WalTest, MinSeqSkipsCheckpointedRecords) {
  {
    auto writer = WalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& r : AllRecordTypes()) {
      ASSERT_TRUE(writer->Append(r).ok());
    }
  }
  std::vector<uint64_t> seqs;
  auto result = ReplayWal(path_, 4, [&](const WalRecord& r) {
    seqs.push_back(r.seq);
    return Status::OK();
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records_scanned, 7u);
  EXPECT_EQ(result->records_applied, 3u);
  EXPECT_EQ(seqs, (std::vector<uint64_t>{5, 6, 7}));
}

/// Every possible truncation point must recover the longest intact prefix
/// and flag the torn tail (except cuts on a record boundary).
TEST_F(WalTest, TornTailRecoversIntactPrefixAtEveryCutPoint) {
  std::vector<uint64_t> boundaries = {0};  // Valid prefix lengths.
  {
    auto writer = WalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& r : AllRecordTypes()) {
      ASSERT_TRUE(writer->Append(r).ok());
      boundaries.push_back(writer->bytes_appended());
    }
  }
  std::string full;
  {
    std::ifstream in(path_, std::ios::binary);
    full.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  ASSERT_EQ(full.size(), boundaries.back());

  for (size_t cut = 0; cut < full.size(); ++cut) {
    // Number of whole records before this cut, and the bytes they span.
    size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= cut) {
      ++whole;
    }
    {
      std::ofstream out(path_, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(cut));
    }
    size_t applied = 0;
    auto result = ReplayWal(path_, 0, [&](const WalRecord&) {
      ++applied;
      return Status::OK();
    });
    ASSERT_TRUE(result.ok()) << "cut at byte " << cut;
    EXPECT_EQ(result->records_scanned, whole) << "cut at byte " << cut;
    EXPECT_EQ(result->valid_bytes, boundaries[whole]) << "cut at byte " << cut;
    EXPECT_EQ(result->torn_tail, cut != boundaries[whole])
        << "cut at byte " << cut;
    EXPECT_EQ(applied, whole);
  }
}

TEST_F(WalTest, CorruptPayloadByteStopsTheScanAtTheCrc) {
  {
    auto writer = WalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& r : AllRecordTypes()) {
      ASSERT_TRUE(writer->Append(r).ok());
    }
  }
  // Flip one byte in the *payload* of the third record: the framing still
  // parses, the CRC must catch it.
  std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.good());
  uint64_t offset = 0;
  for (int i = 0; i < 2; ++i) {
    uint32_t len = 0;
    file.seekg(static_cast<std::streamoff>(offset));
    file.read(reinterpret_cast<char*>(&len), sizeof(len));
    offset += sizeof(uint32_t) * 2 + len;
  }
  file.seekg(static_cast<std::streamoff>(offset));
  uint32_t len3 = 0;
  file.read(reinterpret_cast<char*>(&len3), sizeof(len3));
  const uint64_t corrupt_at = offset + sizeof(uint32_t) * 2 + len3 / 2;
  file.seekg(static_cast<std::streamoff>(corrupt_at));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(static_cast<std::streamoff>(corrupt_at));
  file.write(&byte, 1);
  file.close();

  auto result = ReplayWal(path_, 0, [](const WalRecord&) {
    return Status::OK();
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->records_scanned, 2u);
  EXPECT_EQ(result->valid_bytes, offset);
  EXPECT_TRUE(result->torn_tail);
}

TEST_F(WalTest, TruncateWalDropsTheTornTailForGood) {
  {
    auto writer = WalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    for (const WalRecord& r : AllRecordTypes()) {
      ASSERT_TRUE(writer->Append(r).ok());
    }
  }
  // Tear the file mid-record, truncate to the valid prefix, then append
  // a fresh record: the log must replay prefix + new record cleanly.
  const auto full_size = fs::file_size(path_);
  fs::resize_file(path_, full_size - 3);
  auto torn = ReplayWal(path_, 0, [](const WalRecord&) {
    return Status::OK();
  });
  ASSERT_TRUE(torn.ok());
  ASSERT_TRUE(torn->torn_tail);
  ASSERT_TRUE(TruncateWal(path_, torn->valid_bytes).ok());
  {
    auto writer = WalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    WalRecord r;
    r.seq = 100;
    r.type = WalRecordType::kSetOnline;
    r.worker = 0;
    r.flag = true;
    ASSERT_TRUE(writer->Append(r).ok());
  }
  auto result = ReplayWal(path_, 0, [](const WalRecord&) {
    return Status::OK();
  });
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->torn_tail);
  EXPECT_EQ(result->records_scanned, 7u);  // 6 intact + the appended one.
  EXPECT_EQ(result->last_seq, 100u);
}

/// Property test: a random mutation sequence applied to a CrowdDatabase
/// and logged to the WAL replays into an identical database.
TEST_F(WalTest, ReplayingRandomMutationsReproducesTheDatabase) {
  Rng rng(20260807);
  CrowdDatabase reference;
  uint64_t seq = 0;
  {
    auto writer = WalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    for (int step = 0; step < 400; ++step) {
      WalRecord r;
      r.seq = ++seq;
      const int kind = static_cast<int>(rng.Uniform() * 7);
      const size_t nw = reference.NumWorkers();
      const size_t nt = reference.NumTasks();
      if (kind == 0 || nw == 0) {
        r.type = WalRecordType::kAddWorker;
        r.text = "worker-" + std::to_string(nw);
        r.flag = rng.Uniform() < 0.8;
        r.worker = reference.AddWorker(r.text, r.flag);
      } else if (kind == 1 || nt == 0) {
        r.type = WalRecordType::kAddTask;
        r.text = "task text number " + std::to_string(nt) + " tree parts";
        r.task = reference.AddTask(r.text);
      } else {
        const WorkerId w = static_cast<WorkerId>(rng.Uniform() * nw);
        const TaskId t = static_cast<TaskId>(rng.Uniform() * nt);
        if (kind == 2) {
          r.type = WalRecordType::kAssign;
          r.worker = w;
          r.task = t;
          ASSERT_TRUE(reference.Assign(w, t).ok());
        } else if (kind == 3) {
          if (!reference.Assign(w, t).ok()) continue;
          // Mirror the engine: the assign is logged before the feedback.
          WalRecord assign;
          assign.seq = r.seq;
          assign.type = WalRecordType::kAssign;
          assign.worker = w;
          assign.task = t;
          ASSERT_TRUE(writer->Append(assign).ok());
          r.seq = ++seq;
          r.type = WalRecordType::kRecordFeedback;
          r.worker = w;
          r.task = t;
          r.score = rng.Uniform() * 5.0;
          ASSERT_TRUE(reference.RecordFeedback(w, t, r.score).ok());
        } else if (kind == 4) {
          r.type = WalRecordType::kUpdateWorkerSkills;
          r.worker = w;
          r.values = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
          ASSERT_TRUE(reference.UpdateWorkerSkills(w, r.values).ok());
        } else if (kind == 5) {
          r.type = WalRecordType::kUpdateTaskCategories;
          r.task = t;
          r.values = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
          ASSERT_TRUE(reference.UpdateTaskCategories(t, r.values).ok());
        } else {
          r.type = WalRecordType::kSetOnline;
          r.worker = w;
          r.flag = rng.Uniform() < 0.5;
          ASSERT_TRUE(reference.SetWorkerOnline(w, r.flag).ok());
        }
      }
      ASSERT_TRUE(writer->Append(r).ok());
    }
  }

  CrowdDatabase replayed;
  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  auto result = ReplayWal(path_, 0, [&](const WalRecord& r) -> Status {
    switch (r.type) {
      case WalRecordType::kAddWorker:
        replayed.AddWorker(r.text, r.flag);
        return Status::OK();
      case WalRecordType::kAddTask:
        replayed.AddTask(r.text);
        return Status::OK();
      case WalRecordType::kAssign:
        return replayed.Assign(r.worker, r.task);
      case WalRecordType::kRecordFeedback:
        return replayed.RecordFeedback(r.worker, r.task, r.score);
      case WalRecordType::kUpdateWorkerSkills:
        return replayed.UpdateWorkerSkills(r.worker, r.values);
      case WalRecordType::kUpdateTaskCategories:
        return replayed.UpdateTaskCategories(r.task, r.values);
      case WalRecordType::kSetOnline:
        return replayed.SetWorkerOnline(r.worker, r.flag);
    }
    return Status::Corruption("unknown type");
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->torn_tail);

  ASSERT_EQ(replayed.NumWorkers(), reference.NumWorkers());
  ASSERT_EQ(replayed.NumTasks(), reference.NumTasks());
  EXPECT_EQ(replayed.NumAssignments(), reference.NumAssignments());
  EXPECT_EQ(replayed.NumScoredAssignments(),
            reference.NumScoredAssignments());
  EXPECT_EQ(replayed.vocabulary().size(), reference.vocabulary().size());
  for (WorkerId w = 0; w < reference.NumWorkers(); ++w) {
    const WorkerRecord* a = reference.GetWorker(w).value();
    const WorkerRecord* b = replayed.GetWorker(w).value();
    EXPECT_EQ(a->handle, b->handle);
    EXPECT_EQ(a->online, b->online);
    EXPECT_EQ(a->skills, b->skills);
  }
  for (TaskId t = 0; t < reference.NumTasks(); ++t) {
    const TaskRecord* a = reference.GetTask(t).value();
    const TaskRecord* b = replayed.GetTask(t).value();
    EXPECT_EQ(a->text, b->text);
    EXPECT_EQ(a->resolved, b->resolved);
    EXPECT_EQ(a->categories, b->categories);
    EXPECT_EQ(a->bag.TotalTokens(), b->bag.TotalTokens());
  }
  for (const auto& a : reference.assignments()) {
    auto score = replayed.GetScore(a.worker, a.task);
    if (a.has_score) {
      ASSERT_TRUE(score.ok());
      EXPECT_DOUBLE_EQ(*score, a.score);
    } else {
      EXPECT_TRUE(score.status().IsNotFound());
    }
  }
}

}  // namespace
}  // namespace crowdselect
