// Contract tests every CrowdSelector implementation must satisfy,
// parameterized over all five algorithms (VSM, DRM, TSPM, TSPM-Gibbs,
// TDPM) so interface regressions surface for each of them.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "crowdselect/crowdselect.h"

namespace crowdselect {
namespace {

struct SelectorCase {
  std::string label;
  std::function<std::unique_ptr<CrowdSelector>()> make;
};

CrowdDatabase SharedDb() {
  CrowdDatabase db;
  db.AddWorker("db_expert_0");
  db.AddWorker("db_expert_1");
  db.AddWorker("math_expert_0");
  db.AddWorker("math_expert_1");
  const std::vector<std::string> db_tasks = {
      "btree index storage page", "index scan btree page buffer",
      "storage engine page btree", "buffer index page scan",
      "btree storage buffer engine", "index btree page storage"};
  const std::vector<std::string> math_tasks = {
      "matrix calculus gradient algebra", "gradient algebra matrix integral",
      "integral calculus matrix algebra", "algebra gradient integral matrix",
      "calculus integral gradient algebra", "matrix algebra calculus integral"};
  for (const auto& text : db_tasks) {
    const TaskId t = db.AddTask(text);
    for (WorkerId w = 0; w < 4; ++w) {
      CS_CHECK_OK(db.Assign(w, t));
      CS_CHECK_OK(db.RecordFeedback(w, t, w < 2 ? 5.0 : 1.0));
    }
  }
  for (const auto& text : math_tasks) {
    const TaskId t = db.AddTask(text);
    for (WorkerId w = 0; w < 4; ++w) {
      CS_CHECK_OK(db.Assign(w, t));
      CS_CHECK_OK(db.RecordFeedback(w, t, w >= 2 ? 5.0 : 1.0));
    }
  }
  return db;
}

class SelectorContract : public ::testing::TestWithParam<SelectorCase> {};

TEST_P(SelectorContract, NameIsStableAndNonEmpty) {
  auto selector = GetParam().make();
  EXPECT_FALSE(selector->Name().empty());
  EXPECT_EQ(selector->Name(), GetParam().make()->Name());
}

TEST_P(SelectorContract, UntrainedSelectionFailsCleanly) {
  auto selector = GetParam().make();
  BagOfWords bag;
  bag.Add(0);
  EXPECT_TRUE(
      selector->SelectTopK(bag, 1, {0}).status().IsFailedPrecondition());
}

TEST_P(SelectorContract, TrainOnEmptyHistoryFails) {
  CrowdDatabase empty;
  empty.AddWorker("lonely");
  empty.AddTask("unanswered question");
  auto selector = GetParam().make();
  // VSM tolerates an empty history (profiles are just empty); the latent
  // models must refuse.
  const Status st = selector->Train(empty);
  if (selector->Name() != "VSM") {
    EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
  }
}

TEST_P(SelectorContract, RankingIsSortedAndBounded) {
  CrowdDatabase db = SharedDb();
  auto selector = GetParam().make();
  ASSERT_TRUE(selector->Train(db).ok());
  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords probe = BagOfWords::FromTextFrozen(
      "btree page index tuning", tokenizer, db.vocabulary());
  for (size_t k : {0u, 1u, 2u, 4u, 10u}) {
    auto top = selector->SelectTopK(probe, k, {0, 1, 2, 3});
    ASSERT_TRUE(top.ok()) << top.status().ToString();
    EXPECT_LE(top->size(), std::min<size_t>(k, 4));
    for (size_t i = 1; i < top->size(); ++i) {
      EXPECT_GE((*top)[i - 1].score, (*top)[i].score);
    }
  }
}

TEST_P(SelectorContract, OnlyCandidatesAreReturned) {
  CrowdDatabase db = SharedDb();
  auto selector = GetParam().make();
  ASSERT_TRUE(selector->Train(db).ok());
  BagOfWords probe = db.GetTask(0).value()->bag;
  auto top = selector->SelectTopK(probe, 4, {1, 3});
  ASSERT_TRUE(top.ok());
  for (const auto& rw : *top) {
    EXPECT_TRUE(rw.worker == 1 || rw.worker == 3);
  }
}

TEST_P(SelectorContract, UnknownCandidateRejected) {
  CrowdDatabase db = SharedDb();
  auto selector = GetParam().make();
  ASSERT_TRUE(selector->Train(db).ok());
  BagOfWords probe = db.GetTask(0).value()->bag;
  EXPECT_TRUE(
      selector->SelectTopK(probe, 1, {42}).status().IsInvalidArgument());
}

TEST_P(SelectorContract, EmptyTaskStillRanksSomething) {
  CrowdDatabase db = SharedDb();
  auto selector = GetParam().make();
  ASSERT_TRUE(selector->Train(db).ok());
  BagOfWords empty;
  auto top = selector->SelectTopK(empty, 2, {0, 1, 2, 3});
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  EXPECT_EQ(top->size(), 2u);
}

TEST_P(SelectorContract, RetrainingIsIdempotentOnSameData) {
  CrowdDatabase db = SharedDb();
  auto selector = GetParam().make();
  ASSERT_TRUE(selector->Train(db).ok());
  BagOfWords probe = db.GetTask(2).value()->bag;
  auto first = selector->SelectTopK(probe, 4, {0, 1, 2, 3});
  ASSERT_TRUE(selector->Train(db).ok());
  auto second = selector->SelectTopK(probe, 4, {0, 1, 2, 3});
  ASSERT_TRUE(first.ok() && second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].worker, (*second)[i].worker);
  }
}

std::vector<SelectorCase> AllSelectors() {
  std::vector<SelectorCase> cases;
  cases.push_back({"VSM", [] { return std::make_unique<VsmSelector>(); }});
  cases.push_back({"DRM", [] {
                     DrmOptions options;
                     options.plsa.num_topics = 2;
                     return std::make_unique<DrmSelector>(options);
                   }});
  cases.push_back({"TSPM", [] {
                     TspmOptions options;
                     options.lda.num_topics = 2;
                     return std::make_unique<TspmSelector>(options);
                   }});
  cases.push_back({"TSPMGibbs", [] {
                     TspmOptions options;
                     options.lda.num_topics = 2;
                     options.backend = LdaBackend::kGibbs;
                     options.gibbs.burn_in_sweeps = 60;
                     options.gibbs.sample_sweeps = 20;
                     return std::make_unique<TspmSelector>(options);
                   }});
  cases.push_back({"TDPM", [] {
                     TdpmOptions options;
                     options.num_categories = 2;
                     options.max_em_iterations = 10;
                     return std::make_unique<TdpmSelector>(options);
                   }});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SelectorContract,
                         ::testing::ValuesIn(AllSelectors()),
                         [](const ::testing::TestParamInfo<SelectorCase>&
                                param_info) { return param_info.param.label; });

}  // namespace
}  // namespace crowdselect
