#include "crowddb/dispatcher.h"

#include <gtest/gtest.h>

namespace crowdselect {
namespace {

TEST(DispatcherTest, DispatchAssignsCollectsAndScores) {
  CrowdDatabase db;
  db.AddWorker("a");
  db.AddWorker("b");
  const TaskId task = db.AddTask("b+ tree advantages");

  TaskDispatcher dispatcher(
      &db,
      [](WorkerId w, const TaskRecord&) {
        return w == 0 ? std::string("great answer") : std::string("meh");
      },
      [](WorkerId, const TaskRecord&, const std::string& answer) {
        return answer == "great answer" ? 5.0 : 1.0;
      });

  std::vector<RankedWorker> selected = {{0, 0.9}, {1, 0.5}};
  auto answers = dispatcher.Dispatch(task, selected);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->size(), 2u);
  EXPECT_EQ((*answers)[0].worker, 0u);
  EXPECT_EQ((*answers)[0].text, "great answer");

  EXPECT_DOUBLE_EQ(*db.GetScore(0, task), 5.0);
  EXPECT_DOUBLE_EQ(*db.GetScore(1, task), 1.0);
  EXPECT_TRUE(db.GetTask(task).value()->resolved);
  EXPECT_EQ(dispatcher.tasks_dispatched(), 1u);
  EXPECT_EQ(dispatcher.answers_collected(), 2u);
}

TEST(DispatcherTest, UnknownTaskFails) {
  CrowdDatabase db;
  db.AddWorker("a");
  TaskDispatcher dispatcher(
      &db, [](WorkerId, const TaskRecord&) { return std::string(); },
      [](WorkerId, const TaskRecord&, const std::string&) { return 0.0; });
  auto result = dispatcher.Dispatch(42, {{0, 1.0}});
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(DispatcherTest, EmptySelectionDispatchesNothing) {
  CrowdDatabase db;
  const TaskId task = db.AddTask("anything");
  TaskDispatcher dispatcher(
      &db, [](WorkerId, const TaskRecord&) { return std::string(); },
      [](WorkerId, const TaskRecord&, const std::string&) { return 0.0; });
  auto answers = dispatcher.Dispatch(task, {});
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
  EXPECT_FALSE(db.GetTask(task).value()->resolved);
}

}  // namespace
}  // namespace crowdselect
