#include <gtest/gtest.h>

#include <algorithm>

#include "crowddb/selector_interface.h"
#include "util/rng.h"

namespace crowdselect {
namespace {

TEST(TopKAccumulatorTest, KeepsHighestScores) {
  TopKAccumulator acc(2);
  acc.Offer(0, 1.0);
  acc.Offer(1, 5.0);
  acc.Offer(2, 3.0);
  acc.Offer(3, 0.5);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].worker, 1u);
  EXPECT_DOUBLE_EQ(top[0].score, 5.0);
  EXPECT_EQ(top[1].worker, 2u);
}

TEST(TopKAccumulatorTest, FewerCandidatesThanK) {
  TopKAccumulator acc(10);
  acc.Offer(4, 2.0);
  acc.Offer(7, 9.0);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].worker, 7u);
}

TEST(TopKAccumulatorTest, ZeroKReturnsEmpty) {
  TopKAccumulator acc(0);
  acc.Offer(1, 100.0);
  EXPECT_TRUE(acc.Take().empty());
}

TEST(TopKAccumulatorTest, TieBreaksByLowerWorkerId) {
  TopKAccumulator acc(2);
  acc.Offer(9, 1.0);
  acc.Offer(3, 1.0);
  acc.Offer(5, 1.0);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].worker, 3u);
  EXPECT_EQ(top[1].worker, 5u);
}

TEST(TopKAccumulatorTest, ShardedMergeMatchesSequentialScan) {
  // The serving engine's parallel scan builds a local top-k per shard and
  // merges the shard winners. Because (score desc, id asc) is a total
  // order, the merged result must equal the sequential scan for every
  // shard split — including heavy ties.
  Rng rng(123);
  std::vector<RankedWorker> stream;
  for (size_t i = 0; i < 500; ++i) {
    // Coarse scores force cross-shard ties.
    stream.push_back({static_cast<WorkerId>(i),
                      static_cast<double>(rng.UniformInt(8))});
  }
  const size_t k = 16;
  TopKAccumulator sequential(k);
  for (const RankedWorker& rw : stream) sequential.Offer(rw.worker, rw.score);
  const auto expected = sequential.Take();

  for (size_t shard_size : {1u, 3u, 16u, 100u, 499u, 500u, 1000u}) {
    TopKAccumulator merged(k);
    for (size_t begin = 0; begin < stream.size(); begin += shard_size) {
      const size_t end = std::min(begin + shard_size, stream.size());
      TopKAccumulator local(k);
      for (size_t i = begin; i < end; ++i) {
        local.Offer(stream[i].worker, stream[i].score);
      }
      for (const RankedWorker& rw : local.Take()) {
        merged.Offer(rw.worker, rw.score);
      }
    }
    const auto got = merged.Take();
    ASSERT_EQ(got.size(), expected.size()) << "shard " << shard_size;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].worker, expected[i].worker)
          << "shard " << shard_size << " rank " << i;
      EXPECT_DOUBLE_EQ(got[i].score, expected[i].score);
    }
  }
}

TEST(TopKAccumulatorTest, MatchesFullSortOnRandomInput) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.UniformInt(200);
    const size_t k = 1 + rng.UniformInt(20);
    std::vector<RankedWorker> all;
    TopKAccumulator acc(k);
    for (size_t i = 0; i < n; ++i) {
      const double score = rng.Normal();
      all.push_back({static_cast<WorkerId>(i), score});
      acc.Offer(static_cast<WorkerId>(i), score);
    }
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.worker < b.worker;
    });
    all.resize(std::min(k, n));
    auto top = acc.Take();
    ASSERT_EQ(top.size(), all.size());
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i].worker, all[i].worker) << "trial " << trial;
      EXPECT_DOUBLE_EQ(top[i].score, all[i].score);
    }
  }
}

}  // namespace
}  // namespace crowdselect
