#include <gtest/gtest.h>

#include <algorithm>

#include "crowddb/selector_interface.h"
#include "util/rng.h"

namespace crowdselect {
namespace {

TEST(TopKAccumulatorTest, KeepsHighestScores) {
  TopKAccumulator acc(2);
  acc.Offer(0, 1.0);
  acc.Offer(1, 5.0);
  acc.Offer(2, 3.0);
  acc.Offer(3, 0.5);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].worker, 1u);
  EXPECT_DOUBLE_EQ(top[0].score, 5.0);
  EXPECT_EQ(top[1].worker, 2u);
}

TEST(TopKAccumulatorTest, FewerCandidatesThanK) {
  TopKAccumulator acc(10);
  acc.Offer(4, 2.0);
  acc.Offer(7, 9.0);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].worker, 7u);
}

TEST(TopKAccumulatorTest, ZeroKReturnsEmpty) {
  TopKAccumulator acc(0);
  acc.Offer(1, 100.0);
  EXPECT_TRUE(acc.Take().empty());
}

TEST(TopKAccumulatorTest, TieBreaksByLowerWorkerId) {
  TopKAccumulator acc(2);
  acc.Offer(9, 1.0);
  acc.Offer(3, 1.0);
  acc.Offer(5, 1.0);
  auto top = acc.Take();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].worker, 3u);
  EXPECT_EQ(top[1].worker, 5u);
}

TEST(TopKAccumulatorTest, MatchesFullSortOnRandomInput) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.UniformInt(200);
    const size_t k = 1 + rng.UniformInt(20);
    std::vector<RankedWorker> all;
    TopKAccumulator acc(k);
    for (size_t i = 0; i < n; ++i) {
      const double score = rng.Normal();
      all.push_back({static_cast<WorkerId>(i), score});
      acc.Offer(static_cast<WorkerId>(i), score);
    }
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.worker < b.worker;
    });
    all.resize(std::min(k, n));
    auto top = acc.Take();
    ASSERT_EQ(top.size(), all.size());
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i].worker, all[i].worker) << "trial " << trial;
      EXPECT_DOUBLE_EQ(top[i].score, all[i].score);
    }
  }
}

}  // namespace
}  // namespace crowdselect
