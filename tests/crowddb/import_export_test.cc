#include "crowddb/import_export.h"

#include <gtest/gtest.h>

#include "util/logging.h"

#include <filesystem>
#include <sstream>

namespace crowdselect {
namespace {

TEST(CsvTest, EscapePlainFieldUnchanged) {
  EXPECT_EQ(csv::EscapeField("hello"), "hello");
  EXPECT_EQ(csv::EscapeField(""), "");
}

TEST(CsvTest, EscapeQuotesAndCommas) {
  EXPECT_EQ(csv::EscapeField("a,b"), "\"a,b\"");
  EXPECT_EQ(csv::EscapeField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv::EscapeField("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, ParseSimpleLine) {
  auto fields = csv::ParseLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, ParseQuotedFields) {
  auto fields = csv::ParseLine("\"a,b\",\"say \"\"hi\"\"\",plain");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[0], "a,b");
  EXPECT_EQ((*fields)[1], "say \"hi\"");
  EXPECT_EQ((*fields)[2], "plain");
}

TEST(CsvTest, ParseEmptyFields) {
  auto fields = csv::ParseLine(",,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->size(), 3u);
  EXPECT_TRUE((*fields)[0].empty());
}

TEST(CsvTest, ParseStripsCarriageReturn) {
  auto fields = csv::ParseLine("a,b\r");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[1], "b");
}

TEST(CsvTest, ParseRejectsMalformed) {
  EXPECT_TRUE(csv::ParseLine("\"unterminated").status().IsInvalidArgument());
  EXPECT_TRUE(csv::ParseLine("mid\"quote").status().IsInvalidArgument());
}

CrowdDatabase BuildDb() {
  CrowdDatabase db;
  db.AddWorker("alice, the \"expert\"");
  db.AddWorker("bob", /*online=*/false);
  db.AddTask("what is a btree, really?");
  db.AddTask("integrate by parts");
  CS_CHECK_OK(db.Assign(0, 0));
  CS_CHECK_OK(db.RecordFeedback(0, 0, 4.5));
  CS_CHECK_OK(db.Assign(1, 0));  // Unscored.
  CS_CHECK_OK(db.Assign(1, 1));
  CS_CHECK_OK(db.RecordFeedback(1, 1, 1.0));
  return db;
}

TEST(ImportExportTest, RoundTripThroughStreams) {
  CrowdDatabase db = BuildDb();
  std::ostringstream workers, tasks, assignments;
  ExportWorkersCsv(db, workers);
  ExportTasksCsv(db, tasks);
  ExportAssignmentsCsv(db, assignments);

  std::istringstream w(workers.str()), t(tasks.str()), a(assignments.str());
  auto restored = ImportDatabaseCsv(w, t, a);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->NumWorkers(), 2u);
  EXPECT_EQ(restored->NumTasks(), 2u);
  EXPECT_EQ(restored->NumAssignments(), 3u);
  EXPECT_EQ(restored->NumScoredAssignments(), 2u);
  EXPECT_EQ(restored->GetWorker(0).value()->handle, "alice, the \"expert\"");
  EXPECT_FALSE(restored->GetWorker(1).value()->online);
  EXPECT_DOUBLE_EQ(*restored->GetScore(0, 0), 4.5);
  EXPECT_TRUE(restored->GetScore(1, 0).status().IsNotFound());
  // The task text was re-tokenized on import.
  EXPECT_TRUE(restored->vocabulary().Contains("btree"));
}

TEST(ImportExportTest, RoundTripThroughFiles) {
  const auto dir = std::filesystem::temp_directory_path() / "cs_csv_test";
  std::filesystem::create_directories(dir);
  CrowdDatabase db = BuildDb();
  ASSERT_TRUE(ExportDatabaseCsvFiles(db, dir.string()).ok());
  auto restored = ImportDatabaseCsvFiles(dir.string());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->NumAssignments(), db.NumAssignments());
  std::filesystem::remove_all(dir);
}

TEST(ImportExportTest, MissingDirectoryIsIOError) {
  EXPECT_TRUE(
      ImportDatabaseCsvFiles("/nonexistent/dir").status().IsIOError());
}

TEST(ImportExportTest, DanglingAssignmentIsCorruption) {
  std::istringstream w("handle,online\nalice,1\n");
  std::istringstream t("text\nsome task\n");
  std::istringstream a("worker_id,task_id,score\n7,0,1.0\n");
  EXPECT_TRUE(ImportDatabaseCsv(w, t, a).status().IsCorruption());
}

TEST(ImportExportTest, BadFieldCountsRejected) {
  std::istringstream w("handle,online\nalice\n");  // 1 field, want 2.
  std::istringstream t("text\nok\n");
  std::istringstream a("worker_id,task_id,score\n");
  EXPECT_TRUE(ImportDatabaseCsv(w, t, a).status().IsInvalidArgument());
}

TEST(ImportExportTest, BadScoreRejected) {
  std::istringstream w("handle,online\nalice,1\n");
  std::istringstream t("text\nok\n");
  std::istringstream a("worker_id,task_id,score\n0,0,notanumber\n");
  EXPECT_TRUE(ImportDatabaseCsv(w, t, a).status().IsInvalidArgument());
}

}  // namespace
}  // namespace crowdselect
