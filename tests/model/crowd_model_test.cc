#include "model/crowd_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "model/selection.h"
#include "serve/router.h"
#include "util/logging.h"

namespace crowdselect {
namespace {

CrowdDatabase TwoTopicDb() {
  CrowdDatabase db;
  db.AddWorker("db_expert_0");
  db.AddWorker("db_expert_1");
  db.AddWorker("math_expert_0");
  db.AddWorker("math_expert_1");
  const std::vector<std::string> db_tasks = {
      "btree index storage page", "index scan btree page buffer",
      "storage engine page btree", "buffer index page scan",
      "btree storage buffer engine", "index btree page storage"};
  const std::vector<std::string> math_tasks = {
      "matrix calculus gradient algebra", "gradient algebra matrix integral",
      "integral calculus matrix algebra", "algebra gradient integral matrix",
      "calculus integral gradient algebra", "matrix algebra calculus integral"};
  for (const std::string& text : db_tasks) {
    const TaskId t = db.AddTask(text);
    for (WorkerId w = 0; w < 4; ++w) {
      CS_CHECK_OK(db.Assign(w, t));
      CS_CHECK_OK(db.RecordFeedback(w, t, w < 2 ? 5.0 : 1.0));
    }
  }
  for (const std::string& text : math_tasks) {
    const TaskId t = db.AddTask(text);
    for (WorkerId w = 0; w < 4; ++w) {
      CS_CHECK_OK(db.Assign(w, t));
      CS_CHECK_OK(db.RecordFeedback(w, t, w >= 2 ? 5.0 : 1.0));
    }
  }
  return db;
}

ModelConfig SmallConfig() {
  ModelConfig config;
  config.tdpm.num_categories = 2;
  config.tdpm.max_em_iterations = 25;
  config.tdpm.seed = 3;
  config.ds_num_labels = 2;
  config.ds_num_types = 2;
  config.router_num_clusters = 2;
  return config;
}

TEST(CrowdModelRegistryTest, BuiltinsAreRegistered) {
  CrowdModelRegistry& registry = CrowdModelRegistry::Global();
  for (const char* id : {"tdpm", "dawid_skene", "router", "ensemble"}) {
    EXPECT_TRUE(registry.Has(id)) << id;
  }
  const std::vector<std::string> ids = registry.Ids();
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_GE(ids.size(), 4u);
}

TEST(CrowdModelRegistryTest, UnknownIdIsNotFoundAndListsKnownIds) {
  auto result =
      CrowdModelRegistry::Global().Create("no_such_model", SmallConfig());
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_NE(result.status().message().find("tdpm"), std::string::npos)
      << "error should list the known ids: " << result.status().message();
}

TEST(CrowdModelRegistryTest, CustomFactoryRoundTrips) {
  CrowdModelRegistry& registry = CrowdModelRegistry::Global();
  registry.Register("custom_tdpm", [](const ModelConfig& config) {
    return std::make_unique<TdpmSelector>(config.tdpm, config.serve);
  });
  auto model = registry.Create("custom_tdpm", SmallConfig());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->ModelId(), "tdpm");
  EXPECT_FALSE((*model)->trained());
}

TEST(CrowdModelRegistryTest, EveryBuiltinTrainsAndServes) {
  CrowdDatabase db = TwoTopicDb();
  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords task = BagOfWords::FromTextFrozen(
      "btree index page", tokenizer, db.vocabulary());
  for (const std::string& id : {std::string("tdpm"),
                                std::string("dawid_skene"),
                                std::string("router"),
                                std::string("ensemble")}) {
    auto model = CrowdModelRegistry::Global().Create(id, SmallConfig());
    ASSERT_TRUE(model.ok()) << id;
    ASSERT_TRUE((*model)->Train(db).ok()) << id;
    serve::QueryStats stats;
    auto top = (*model)->SelectTopKExplained(task, 2, {0, 1, 2, 3}, &stats);
    ASSERT_TRUE(top.ok()) << id;
    EXPECT_EQ(top->size(), 2u) << id;
    EXPECT_FALSE(stats.serving_model.empty()) << id;
    EXPECT_NE((*model)->CurrentSnapshot(), nullptr) << id;
  }
}

// The refactor guard from the PR acceptance criteria: with the router
// disabled and model=tdpm, rankings must be *byte-identical* to the
// direct (pre-refactor) TdpmSelector path. Bitwise score comparison, not
// approximate.
TEST(CrowdModelRegistryTest, RegistryTdpmIsByteIdenticalToDirectSelector) {
  CrowdDatabase db = TwoTopicDb();
  const ModelConfig config = SmallConfig();

  TdpmSelector direct(config.tdpm, config.serve);
  ASSERT_TRUE(direct.Train(db).ok());
  auto via_registry = CrowdModelRegistry::Global().Create("tdpm", config);
  ASSERT_TRUE(via_registry.ok());
  ASSERT_TRUE((*via_registry)->Train(db).ok());

  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const std::vector<std::string> queries = {
      "btree index page",
      "compute the gradient of a matrix integral",
      "storage buffer scan",
      "algebra calculus integral",
  };
  for (const std::string& text : queries) {
    const BagOfWords task =
        BagOfWords::FromTextFrozen(text, tokenizer, db.vocabulary());
    auto a = direct.SelectTopK(task, 4, {0, 1, 2, 3});
    auto b = (*via_registry)->SelectTopK(task, 4, {0, 1, 2, 3});
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].worker, (*b)[i].worker) << text << " rank " << i;
      // Byte-identical, not nearly-equal.
      EXPECT_EQ(std::memcmp(&(*a)[i].score, &(*b)[i].score, sizeof(double)), 0)
          << text << " rank " << i << ": " << (*a)[i].score
          << " != " << (*b)[i].score;
    }
  }
}

// Same guard one level up: a single-member router degenerates to its
// member's exact ranking (routing adds no numeric perturbation).
TEST(CrowdModelRegistryTest, SingleMemberRouterMatchesDirectSelector) {
  CrowdDatabase db = TwoTopicDb();
  const ModelConfig config = SmallConfig();

  TdpmSelector direct(config.tdpm, config.serve);
  ASSERT_TRUE(direct.Train(db).ok());

  serve::TaskTypeRouter router;
  router.AddModel(std::make_unique<TdpmSelector>(config.tdpm, config.serve));
  ASSERT_TRUE(router.Train(db).ok());

  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords task = BagOfWords::FromTextFrozen(
      "btree index page", tokenizer, db.vocabulary());
  auto a = direct.SelectTopK(task, 4, {0, 1, 2, 3});
  auto b = router.SelectTopK(task, 4, {0, 1, 2, 3});
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].worker, (*b)[i].worker);
    EXPECT_EQ(std::memcmp(&(*a)[i].score, &(*b)[i].score, sizeof(double)), 0);
  }
}

TEST(CrowdModelTest, ScoreCandidatesRanksEveryCandidate) {
  CrowdDatabase db = TwoTopicDb();
  const ModelConfig config = SmallConfig();
  auto model = CrowdModelRegistry::Global().Create("tdpm", config);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE((*model)->Train(db).ok());
  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords task = BagOfWords::FromTextFrozen(
      "btree index page", tokenizer, db.vocabulary());
  auto ranked = (*model)->ScoreCandidates(task, {0, 1, 2, 3});
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->size(), 4u);
  for (size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_GE((*ranked)[i - 1].score, (*ranked)[i].score);
  }
}

}  // namespace
}  // namespace crowdselect
