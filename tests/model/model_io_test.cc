#include "model/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace crowdselect {
namespace {

TdpmModelSnapshot MakeSnapshot() {
  TdpmModelSnapshot snap;
  snap.params = TdpmModelParams::Init(3, 7);
  snap.params.mu_w = Vector{1.0, 2.0, 3.0};
  snap.params.sigma_w(0, 1) = 0.25;
  snap.params.sigma_w(1, 0) = 0.25;
  snap.params.tau = 0.75;
  snap.params.beta(2, 6) = 0.9;
  snap.workers.push_back({Vector{0.1, 0.2, 0.3}, Vector{1.0, 1.0, 1.0}});
  snap.workers.push_back({Vector{-1.0, 0.0, 2.0}, Vector{0.5, 0.4, 0.3}});
  return snap;
}

TEST(ModelIoTest, RoundTripInMemory) {
  TdpmModelSnapshot snap = MakeSnapshot();
  BinaryWriter writer;
  snap.Serialize(&writer);
  BinaryReader reader(writer.Release());
  auto restored = TdpmModelSnapshot::Deserialize(&reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->params.num_categories(), 3u);
  EXPECT_EQ(restored->params.vocab_size(), 7u);
  EXPECT_DOUBLE_EQ(restored->params.tau, 0.75);
  EXPECT_DOUBLE_EQ(restored->params.sigma_w(0, 1), 0.25);
  EXPECT_DOUBLE_EQ(restored->params.beta(2, 6), 0.9);
  ASSERT_EQ(restored->workers.size(), 2u);
  EXPECT_DOUBLE_EQ(restored->workers[1].lambda[2], 2.0);
  EXPECT_DOUBLE_EQ(restored->workers[1].nu_sq[0], 0.5);
}

TEST(ModelIoTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cs_model_test.cstm").string();
  TdpmModelSnapshot snap = MakeSnapshot();
  ASSERT_TRUE(snap.SaveToFile(path).ok());
  auto restored = TdpmModelSnapshot::LoadFromFile(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored->params.tau, 0.75);
  std::remove(path.c_str());
}

TEST(ModelIoTest, BadMagicRejected) {
  BinaryWriter writer;
  writer.WriteU32(0xABCDEF01);
  BinaryReader reader(writer.Release());
  EXPECT_TRUE(TdpmModelSnapshot::Deserialize(&reader).status().IsCorruption());
}

TEST(ModelIoTest, MismatchedWorkerDimensionRejected) {
  TdpmModelSnapshot snap = MakeSnapshot();
  snap.workers[0].lambda = Vector{1.0};  // Wrong dimension.
  BinaryWriter writer;
  snap.Serialize(&writer);
  BinaryReader reader(writer.Release());
  EXPECT_TRUE(TdpmModelSnapshot::Deserialize(&reader).status().IsCorruption());
}

TEST(ModelIoTest, TruncatedFileRejected) {
  TdpmModelSnapshot snap = MakeSnapshot();
  BinaryWriter writer;
  snap.Serialize(&writer);
  std::string buf = writer.Release();
  buf.resize(buf.size() - 8);
  BinaryReader reader(std::move(buf));
  EXPECT_FALSE(TdpmModelSnapshot::Deserialize(&reader).ok());
}

}  // namespace
}  // namespace crowdselect
