#include "model/elbo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace crowdselect {
namespace {

// Minimal hand-built data/state: one worker, one task, one observation.
struct Tiny {
  TdpmTrainData data;
  TdpmModelParams params;
  TdpmVariationalState state;
  std::vector<double> scores;
};

Tiny MakeTiny(double score = 2.0) {
  Tiny t;
  t.data.num_workers = 1;
  t.data.vocab_size = 4;
  t.data.obs_of_worker.resize(1);
  TdpmTrainData::TaskDoc doc;
  doc.terms = {{0, 2}, {3, 1}};
  doc.total_tokens = 3.0;
  t.data.tasks.push_back(doc);
  t.data.obs_of_task.resize(1);
  t.data.observations.push_back({0, 0, score});
  t.data.obs_of_worker[0].push_back(0);
  t.data.obs_of_task[0].push_back(0);

  t.params = TdpmModelParams::Init(2, 4);
  t.params.beta(0, 0) = 0.7;
  t.params.beta(0, 1) = 0.1;
  t.params.beta(0, 2) = 0.1;
  t.params.beta(0, 3) = 0.1;

  WorkerPosterior w;
  w.lambda = Vector{1.0, 0.5};
  w.nu_sq = Vector{0.2, 0.2};
  t.state.workers.push_back(w);
  TaskPosterior task;
  task.lambda = Vector{0.3, -0.1};
  task.nu_sq = Vector{0.1, 0.1};
  task.eps = std::exp(0.3 + 0.05) + std::exp(-0.1 + 0.05);
  task.phi = Matrix(2, 2, 0.5);
  t.state.tasks.push_back(task);
  t.scores = {score};
  return t;
}

TEST(ElboTest, FiniteOnValidState) {
  Tiny t = MakeTiny();
  const double elbo = ComputeElbo(t.data, t.params, t.state, t.scores);
  EXPECT_TRUE(std::isfinite(elbo));
  EXPECT_LT(elbo, 0.0);  // Log-probabilities of a non-degenerate model.
}

TEST(ElboTest, BetterScoreFitGivesHigherElbo) {
  // E[s] = lambda_w . lambda_c = 1*0.3 + 0.5*(-0.1) = 0.25; an observed
  // score at the predictive mean must beat one far away.
  Tiny near = MakeTiny(0.25);
  Tiny far = MakeTiny(6.0);
  EXPECT_GT(ComputeElbo(near.data, near.params, near.state, near.scores),
            ComputeElbo(far.data, far.params, far.state, far.scores));
}

TEST(ElboTest, LikelierTokensGiveHigherElbo) {
  Tiny t = MakeTiny();
  const double base = ComputeElbo(t.data, t.params, t.state, t.scores);
  // Make category 0 (phi weight 0.5) explain term 0 (count 2) better
  // while leaving term 3's probability untouched.
  Tiny better = MakeTiny();
  better.params.beta(0, 0) = 0.8;
  better.params.beta(0, 1) = 0.05;
  better.params.beta(0, 2) = 0.05;
  better.params.beta(0, 3) = 0.1;
  EXPECT_GT(ComputeElbo(better.data, better.params, better.state,
                        better.scores),
            base);
}

TEST(ElboTest, EpsAtItsOptimumBeatsOtherEps) {
  // Eq. 13 sets eps to sum_k exp(lambda_k + nu_k^2/2); any other eps must
  // not increase the bound.
  Tiny opt = MakeTiny();
  const double at_optimum =
      ComputeElbo(opt.data, opt.params, opt.state, opt.scores);
  for (double eps : {0.5, 1.0, 5.0, 20.0}) {
    Tiny other = MakeTiny();
    other.state.tasks[0].eps = eps;
    EXPECT_LE(ComputeElbo(other.data, other.params, other.state, other.scores),
              at_optimum + 1e-9)
        << "eps=" << eps;
  }
}

TEST(ElboTest, TighterPosteriorAroundTruthBeatsDiffusePrior) {
  // Against data generated at the posterior mean, shrinking the worker
  // variance increases the score-likelihood term faster than the entropy
  // penalty shrinks it (for moderate shrinkage).
  Tiny diffuse = MakeTiny(0.25);
  Tiny tight = MakeTiny(0.25);
  tight.state.workers[0].nu_sq = Vector{0.05, 0.05};
  const double d =
      ComputeElbo(diffuse.data, diffuse.params, diffuse.state, diffuse.scores);
  const double ti =
      ComputeElbo(tight.data, tight.params, tight.state, tight.scores);
  EXPECT_TRUE(std::isfinite(d) && std::isfinite(ti));
}

TEST(ElboTest, ScaleWithReplicatedData) {
  // Duplicating the worker/task/observation roughly doubles the ELBO
  // (it is a sum over independent contributions).
  Tiny t = MakeTiny();
  const double single = ComputeElbo(t.data, t.params, t.state, t.scores);

  Tiny twin = MakeTiny();
  twin.data.num_workers = 2;
  twin.data.obs_of_worker.push_back({1});
  twin.data.tasks.push_back(twin.data.tasks[0]);
  twin.data.obs_of_task.push_back({1});
  twin.data.observations.push_back({1, 1, 2.0});
  twin.state.workers.push_back(twin.state.workers[0]);
  twin.state.tasks.push_back(twin.state.tasks[0]);
  twin.scores.push_back(2.0);
  const double doubled =
      ComputeElbo(twin.data, twin.params, twin.state, twin.scores);
  EXPECT_NEAR(doubled, 2.0 * single, 1e-9);
}

}  // namespace
}  // namespace crowdselect
