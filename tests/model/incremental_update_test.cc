#include "model/incremental_update.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace crowdselect {
namespace {

TdpmModelParams Params(size_t k = 3) {
  TdpmModelParams params = TdpmModelParams::Init(k, 10);
  params.mu_w = Vector(k, 1.0);
  params.tau = 0.5;
  return params;
}

SkillObservation MakeObs(Vector mean, double score, double var = 0.05) {
  SkillObservation obs;
  obs.category_var = Vector(mean.size(), var);
  obs.category_mean = std::move(mean);
  obs.score = score;
  return obs;
}

TEST(IncrementalUpdateTest, CreateValidates) {
  TdpmModelParams bad = Params();
  bad.tau = 0.0;
  EXPECT_TRUE(
      IncrementalSkillUpdater::Create(bad).status().IsInvalidArgument());
}

TEST(IncrementalUpdateTest, NoEvidenceReturnsPrior) {
  auto updater = IncrementalSkillUpdater::Create(Params());
  ASSERT_TRUE(updater.ok());
  auto state = updater->NewWorkerState();
  auto posterior = updater->Posterior(state);
  ASSERT_TRUE(posterior.ok());
  for (size_t d = 0; d < 3; ++d) {
    EXPECT_NEAR(posterior->lambda[d], 1.0, 1e-9);   // mu_w.
    EXPECT_NEAR(posterior->nu_sq[d], 1.0, 1e-9);    // Sigma_w = I.
  }
}

TEST(IncrementalUpdateTest, EvidencePullsTowardObservedPerformance) {
  auto updater = IncrementalSkillUpdater::Create(Params());
  ASSERT_TRUE(updater.ok());
  auto state = updater->NewWorkerState();
  // The worker repeatedly earns score 5 on pure-category-0 tasks (the
  // task posteriors are confident: tiny variance on every dimension).
  for (int i = 0; i < 20; ++i) {
    updater->Observe(MakeObs(Vector{1.0, 0.0, 0.0}, 5.0, /*var=*/1e-4),
                     &state);
  }
  auto posterior = updater->Posterior(state);
  ASSERT_TRUE(posterior.ok());
  EXPECT_GT(posterior->lambda[0], 4.0);
  EXPECT_NEAR(posterior->lambda[1], 1.0, 0.2);  // No evidence: near prior.
  // Variance shrinks only on the observed category.
  EXPECT_LT(posterior->nu_sq[0], 0.05);
  EXPECT_GT(posterior->nu_sq[1], 0.5);
}

TEST(IncrementalUpdateTest, MatchesBatchEStepFormula) {
  // The incremental posterior must equal Eq. 10/11 computed from scratch
  // on the same history.
  TdpmModelParams params = Params(2);
  auto updater = IncrementalSkillUpdater::Create(params);
  ASSERT_TRUE(updater.ok());
  Rng rng(7);
  std::vector<SkillObservation> history;
  for (int i = 0; i < 8; ++i) {
    history.push_back(MakeObs(Vector{rng.Normal(), rng.Normal()},
                              rng.Normal(2.0, 1.0), 0.1));
  }
  auto state = updater->StateFromHistory(history);
  auto incremental = updater->Posterior(state);
  ASSERT_TRUE(incremental.ok());

  // Direct Eq. 10/11.
  Matrix m = Matrix::Identity(2);  // Sigma_w^{-1} with Sigma_w = I.
  Vector rhs = params.mu_w;        // Sigma_w^{-1} mu_w.
  const double inv_tau_sq = 1.0 / (params.tau * params.tau);
  for (const auto& obs : history) {
    m.AddOuter(obs.category_mean, inv_tau_sq);
    m.AddDiagonal(obs.category_var, inv_tau_sq);
    rhs.Axpy(obs.score * inv_tau_sq, obs.category_mean);
  }
  auto chol = Cholesky::Factorize(m);
  ASSERT_TRUE(chol.ok());
  const Vector direct = chol->Solve(rhs);
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_NEAR(incremental->lambda[d], direct[d], 1e-10);
    EXPECT_NEAR(incremental->nu_sq[d], 1.0 / m(d, d), 1e-12);
  }
}

TEST(IncrementalUpdateTest, OrderIndependent) {
  auto updater = IncrementalSkillUpdater::Create(Params(2));
  ASSERT_TRUE(updater.ok());
  const std::vector<SkillObservation> obs = {
      MakeObs(Vector{1.0, 0.2}, 3.0), MakeObs(Vector{0.1, 0.9}, 1.0),
      MakeObs(Vector{0.5, 0.5}, 2.0)};
  auto forward = updater->StateFromHistory(obs);
  std::vector<SkillObservation> reversed(obs.rbegin(), obs.rend());
  auto backward = updater->StateFromHistory(reversed);
  auto pf = updater->Posterior(forward);
  auto pb = updater->Posterior(backward);
  ASSERT_TRUE(pf.ok() && pb.ok());
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_NEAR(pf->lambda[d], pb->lambda[d], 1e-12);
  }
}

TEST(IncrementalUpdateTest, ObservationCountTracked) {
  auto updater = IncrementalSkillUpdater::Create(Params(2));
  ASSERT_TRUE(updater.ok());
  auto state = updater->NewWorkerState();
  EXPECT_EQ(state.num_observations, 0u);
  updater->Observe(MakeObs(Vector{1.0, 0.0}, 2.0), &state);
  updater->Observe(MakeObs(Vector{0.0, 1.0}, 2.0), &state);
  EXPECT_EQ(state.num_observations, 2u);
}

}  // namespace
}  // namespace crowdselect
