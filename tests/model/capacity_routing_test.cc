#include "model/capacity_routing.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace crowdselect {
namespace {

WorkerPosterior Skill(std::initializer_list<double> v) {
  WorkerPosterior p;
  p.lambda = Vector(v);
  p.nu_sq = Vector(p.lambda.size(), 0.1);
  return p;
}

TEST(CapacityRoutingTest, ValidatesInputs) {
  std::vector<WorkerPosterior> posteriors = {Skill({1.0})};
  EXPECT_TRUE(RouteBatch({}, posteriors, {5}).status().IsInvalidArgument());
  CapacityRoutingOptions zero;
  zero.per_worker_capacity = 0;
  EXPECT_TRUE(
      RouteBatch({}, posteriors, {0}, zero).status().IsInvalidArgument());
  RoutableTask bad;  // Empty category.
  EXPECT_TRUE(
      RouteBatch({bad}, posteriors, {0}).status().IsInvalidArgument());
  RoutableTask mismatched;
  mismatched.category = Vector{1.0, 2.0};
  EXPECT_TRUE(RouteBatch({mismatched}, posteriors, {0})
                  .status()
                  .IsInvalidArgument());
}

TEST(CapacityRoutingTest, UnconstrainedMatchesPerTaskTopK) {
  // With ample capacity every task simply gets its best worker.
  std::vector<WorkerPosterior> posteriors = {
      Skill({3.0, 0.0}), Skill({0.0, 3.0}), Skill({1.0, 1.0})};
  std::vector<RoutableTask> tasks(2);
  tasks[0].category = Vector{1.0, 0.0};  // Prefers worker 0.
  tasks[1].category = Vector{0.0, 1.0};  // Prefers worker 1.
  CapacityRoutingOptions options;
  options.per_worker_capacity = 2;
  auto result = RouteBatch(tasks, posteriors, {0, 1, 2}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignment[0], (std::vector<WorkerId>{0}));
  EXPECT_EQ(result->assignment[1], (std::vector<WorkerId>{1}));
  EXPECT_EQ(result->unfilled_slots, 0u);
  EXPECT_DOUBLE_EQ(result->total_score, 6.0);
}

TEST(CapacityRoutingTest, CapacitySpreadsLoad) {
  // Both tasks prefer worker 0, but capacity 1 forces the second onto the
  // runner-up.
  std::vector<WorkerPosterior> posteriors = {Skill({5.0}), Skill({2.0})};
  std::vector<RoutableTask> tasks(2);
  tasks[0].category = Vector{1.0};
  tasks[1].category = Vector{0.9};  // Slightly weaker match.
  auto result = RouteBatch(tasks, posteriors, {0, 1});
  ASSERT_TRUE(result.ok());
  // Task 0 has the higher (task, worker-0) score, so it wins worker 0.
  EXPECT_EQ(result->assignment[0], (std::vector<WorkerId>{0}));
  EXPECT_EQ(result->assignment[1], (std::vector<WorkerId>{1}));
  EXPECT_DOUBLE_EQ(result->total_score, 5.0 + 0.9 * 2.0);
}

TEST(CapacityRoutingTest, MultipleWorkersPerTaskAreDistinct) {
  std::vector<WorkerPosterior> posteriors = {Skill({3.0}), Skill({2.0}),
                                             Skill({1.0})};
  std::vector<RoutableTask> tasks(1);
  tasks[0].category = Vector{1.0};
  tasks[0].workers_needed = 2;
  CapacityRoutingOptions options;
  options.per_worker_capacity = 5;
  auto result = RouteBatch(tasks, posteriors, {0, 1, 2}, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->assignment[0].size(), 2u);
  EXPECT_EQ(result->assignment[0][0], 0u);
  EXPECT_EQ(result->assignment[0][1], 1u);
}

TEST(CapacityRoutingTest, ReportsUnfilledSlots) {
  std::vector<WorkerPosterior> posteriors = {Skill({1.0})};
  std::vector<RoutableTask> tasks(3);
  for (auto& t : tasks) t.category = Vector{1.0};
  auto result = RouteBatch(tasks, posteriors, {0});  // Capacity 1 total.
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->unfilled_slots, 2u);
  size_t assigned = 0;
  for (const auto& a : result->assignment) assigned += a.size();
  EXPECT_EQ(assigned, 1u);
}

TEST(CapacityRoutingTest, GreedyBeatsNaivePerTaskRoutingUnderContention) {
  // Naive per-task top-1 with capacity would give task order priority;
  // greedy global ordering maximizes the sum. Construct contention where
  // routing task 1 first is better.
  std::vector<WorkerPosterior> posteriors = {Skill({10.0}), Skill({1.0})};
  std::vector<RoutableTask> tasks(2);
  tasks[0].category = Vector{0.5};  // score w0: 5, w1: 0.5
  tasks[1].category = Vector{1.0};  // score w0: 10, w1: 1
  auto result = RouteBatch(tasks, posteriors, {0, 1});
  ASSERT_TRUE(result.ok());
  // Greedy gives worker 0 to task 1 (score 10) and worker 1 to task 0.
  EXPECT_EQ(result->assignment[1], (std::vector<WorkerId>{0}));
  EXPECT_EQ(result->assignment[0], (std::vector<WorkerId>{1}));
  EXPECT_DOUBLE_EQ(result->total_score, 10.0 + 0.5);
  // Naive order (task 0 first) would score 5 + 1 = 6 < 10.5.
}

TEST(CapacityRoutingTest, DeterministicTieBreaking) {
  std::vector<WorkerPosterior> posteriors = {Skill({1.0}), Skill({1.0})};
  std::vector<RoutableTask> tasks(2);
  tasks[0].category = Vector{1.0};
  tasks[1].category = Vector{1.0};
  auto a = RouteBatch(tasks, posteriors, {0, 1});
  auto b = RouteBatch(tasks, posteriors, {0, 1});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
  // Lowest task takes lowest worker on ties.
  EXPECT_EQ(a->assignment[0], (std::vector<WorkerId>{0}));
  EXPECT_EQ(a->assignment[1], (std::vector<WorkerId>{1}));
}

}  // namespace
}  // namespace crowdselect
