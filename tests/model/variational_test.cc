#include "model/variational.h"

#include <gtest/gtest.h>

#include "util/logging.h"

#include <algorithm>
#include <cmath>

#include "model/elbo.h"

namespace crowdselect {
namespace {

// A small planted world: 2 true categories with disjoint vocabularies,
// workers that are strong in exactly one of them.
struct PlantedWorld {
  TdpmTrainData data;
  std::vector<int> worker_specialty;  // 0 or 1.
  std::vector<int> task_topic;        // 0 or 1.
};

PlantedWorld MakePlantedWorld(size_t num_workers, size_t num_tasks,
                              uint64_t seed) {
  PlantedWorld world;
  Rng rng(seed);
  const size_t vocab = 40;  // [0,20) topic 0, [20,40) topic 1.
  world.data.num_workers = num_workers;
  world.data.vocab_size = vocab;
  world.data.obs_of_worker.resize(num_workers);

  world.worker_specialty.resize(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    world.worker_specialty[i] = static_cast<int>(i % 2);
  }

  for (size_t j = 0; j < num_tasks; ++j) {
    const int topic = static_cast<int>(j % 2);
    world.task_topic.push_back(topic);
    TdpmTrainData::TaskDoc doc;
    // 12 tokens from the topic's vocabulary slice.
    std::map<TermId, uint32_t> counts;
    for (int p = 0; p < 12; ++p) {
      const TermId t =
          static_cast<TermId>(topic * 20 + rng.UniformInt(20));
      ++counts[t];
    }
    for (const auto& [t, c] : counts) doc.terms.emplace_back(t, c);
    doc.total_tokens = 12.0;
    world.data.tasks.push_back(std::move(doc));
    world.data.obs_of_task.emplace_back();

    // Three workers answer; specialists score high (ó5), others low (~1).
    for (int a = 0; a < 3; ++a) {
      const uint32_t w = static_cast<uint32_t>(rng.UniformInt(num_workers));
      const double base = world.worker_specialty[w] == topic ? 5.0 : 1.0;
      const double score = std::max(0.0, rng.Normal(base, 0.3));
      const uint32_t obs = static_cast<uint32_t>(world.data.observations.size());
      world.data.observations.push_back({w, static_cast<uint32_t>(j), score});
      world.data.obs_of_worker[w].push_back(obs);
      world.data.obs_of_task[j].push_back(obs);
    }
  }
  return world;
}

TdpmOptions FastOptions(size_t k, int iterations = 15) {
  TdpmOptions options;
  options.num_categories = k;
  options.max_em_iterations = iterations;
  options.seed = 5;
  options.cg.max_iterations = 40;
  return options;
}

TEST(TrainDataTest, FromDatabaseExtractsScoredOnly) {
  CrowdDatabase db;
  db.AddWorker("a");
  db.AddWorker("b");
  db.AddTask("b+ tree index");
  db.AddTask("matrix calculus");
  db.AddTask("never answered");
  CS_CHECK_OK(db.Assign(0, 0));
  CS_CHECK_OK(db.Assign(1, 0));
  CS_CHECK_OK(db.Assign(1, 1));
  CS_CHECK_OK(db.Assign(0, 2));  // Assigned but never scored.
  CS_CHECK_OK(db.RecordFeedback(0, 0, 4.0));
  CS_CHECK_OK(db.RecordFeedback(1, 0, 2.0));
  CS_CHECK_OK(db.RecordFeedback(1, 1, 1.0));

  std::vector<TaskId> ids;
  TdpmTrainData data = TdpmTrainData::FromDatabase(db, &ids);
  ASSERT_TRUE(data.Validate().ok());
  EXPECT_EQ(data.num_workers, 2u);
  EXPECT_EQ(data.tasks.size(), 2u);  // Task 2 has no scores.
  EXPECT_EQ(data.observations.size(), 3u);
  EXPECT_EQ(ids, (std::vector<TaskId>{0, 1}));
  EXPECT_EQ(data.obs_of_worker[1].size(), 2u);
  EXPECT_EQ(data.obs_of_task[0].size(), 2u);
  EXPECT_DOUBLE_EQ(data.observations[0].score, 4.0);
}

TEST(TrainDataTest, EmptyBagTasksAreSkippedNotFatal) {
  CrowdDatabase db;
  db.AddWorker("a");
  db.AddTask("btree index page");        // Normal task.
  db.AddTask("of the and");              // All stopwords: empty bag.
  CS_CHECK_OK(db.Assign(0, 0));
  CS_CHECK_OK(db.RecordFeedback(0, 0, 3.0));
  CS_CHECK_OK(db.Assign(0, 1));
  CS_CHECK_OK(db.RecordFeedback(0, 1, 2.0));
  ASSERT_TRUE(db.GetTask(1).value()->bag.empty());

  TdpmTrainData data = TdpmTrainData::FromDatabase(db);
  ASSERT_TRUE(data.Validate().ok());
  EXPECT_EQ(data.tasks.size(), 1u);         // Empty-bag task dropped.
  EXPECT_EQ(data.observations.size(), 1u);  // Its observation too.
}

TEST(TrainDataTest, ValidateCatchesCorruption) {
  TdpmTrainData data;
  data.num_workers = 1;
  data.vocab_size = 5;
  data.obs_of_worker.resize(1);
  TdpmTrainData::TaskDoc doc;
  doc.terms = {{9, 1}};  // Out of vocab range.
  doc.total_tokens = 1;
  data.tasks.push_back(doc);
  data.obs_of_task.resize(1);
  EXPECT_TRUE(data.Validate().IsCorruption());
}

TEST(VariationalTest, RejectsEmptyTraining) {
  TdpmTrainData data;
  data.num_workers = 3;
  data.vocab_size = 10;
  data.obs_of_worker.resize(3);
  TdpmTrainer trainer(FastOptions(2));
  EXPECT_TRUE(trainer.Fit(data).status().IsFailedPrecondition());
}

TEST(VariationalTest, ValidatesOptions) {
  TdpmOptions bad = FastOptions(0);
  TdpmTrainer trainer(bad);
  PlantedWorld world = MakePlantedWorld(6, 10, 1);
  EXPECT_TRUE(trainer.Fit(world.data).status().IsInvalidArgument());
}

TEST(VariationalTest, ElboIsFiniteAndEventuallyIncreases) {
  PlantedWorld world = MakePlantedWorld(10, 40, 2);
  TdpmTrainer trainer(FastOptions(2, 12));
  auto fit = trainer.Fit(world.data);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  ASSERT_GE(fit->elbo_history.size(), 3u);
  for (double e : fit->elbo_history) EXPECT_TRUE(std::isfinite(e));
  // Coordinate ascent with inexact inner solves: require overall progress
  // rather than strict per-step monotonicity.
  EXPECT_GT(fit->elbo_history.back(),
            fit->elbo_history.front() - 1e-6 * std::fabs(fit->elbo_history.front()));
}

TEST(VariationalTest, SpecialistsGetHigherSkillOnTheirCategory) {
  PlantedWorld world = MakePlantedWorld(10, 120, 3);
  TdpmTrainer trainer(FastOptions(2, 20));
  auto fit = trainer.Fit(world.data);
  ASSERT_TRUE(fit.ok());

  // Identify which latent dimension aligns with planted topic 0 by
  // looking at the mean lambda_c of topic-0 tasks.
  Vector topic0_mean(2), topic1_mean(2);
  int n0 = 0, n1 = 0;
  for (size_t j = 0; j < world.data.tasks.size(); ++j) {
    if (world.task_topic[j] == 0) {
      topic0_mean += fit->state.tasks[j].lambda;
      ++n0;
    } else {
      topic1_mean += fit->state.tasks[j].lambda;
      ++n1;
    }
  }
  topic0_mean *= 1.0 / n0;
  topic1_mean *= 1.0 / n1;
  // The latent space must separate the two planted topics.
  const Vector diff = topic0_mean - topic1_mean;
  EXPECT_GT(diff.MaxAbs(), 0.1);

  // Specialist workers should score higher on their own topic's centroid
  // than non-specialists do, on average.
  double spec0_on_0 = 0.0, spec1_on_0 = 0.0;
  int c0 = 0, c1 = 0;
  for (size_t i = 0; i < world.data.num_workers; ++i) {
    const double score = fit->state.workers[i].lambda.Dot(topic0_mean);
    if (world.worker_specialty[i] == 0) {
      spec0_on_0 += score;
      ++c0;
    } else {
      spec1_on_0 += score;
      ++c1;
    }
  }
  EXPECT_GT(spec0_on_0 / c0, spec1_on_0 / c1);
}

TEST(VariationalTest, WorkerWithNoEvidenceFallsBackToPrior) {
  PlantedWorld world = MakePlantedWorld(6, 30, 4);
  // Add a worker with no observations.
  world.data.num_workers += 1;
  world.data.obs_of_worker.emplace_back();
  TdpmTrainer trainer(FastOptions(2, 8));
  auto fit = trainer.Fit(world.data);
  ASSERT_TRUE(fit.ok());
  // The idle worker's posterior tracks the prior: its mean was set to the
  // previous iteration's mu_w (which drifts slightly each M-step), so it
  // must be far closer to mu_w than the evidence-driven workers are, and
  // its variance must stay at the prior scale (larger than everyone
  // else's).
  const auto& idle = fit->state.workers.back();
  const Vector idle_diff = idle.lambda - fit->params.mu_w;
  double min_active_diff = 1e300;
  double max_active_nu = 0.0;
  for (size_t i = 0; i + 1 < fit->state.workers.size(); ++i) {
    const Vector d = fit->state.workers[i].lambda - fit->params.mu_w;
    min_active_diff = std::min(min_active_diff, d.Norm());
    max_active_nu = std::max(max_active_nu, fit->state.workers[i].nu_sq[0]);
  }
  EXPECT_LT(idle_diff.Norm(), min_active_diff);
  EXPECT_GT(idle.nu_sq[0], max_active_nu);
}

TEST(VariationalTest, TauShrinksWhenScoresAreConsistent) {
  PlantedWorld world = MakePlantedWorld(10, 80, 5);
  TdpmTrainer trainer(FastOptions(2, 20));
  auto fit = trainer.Fit(world.data);
  ASSERT_TRUE(fit.ok());
  // Initial tau is 1.0; with near-deterministic planted scores the
  // residual noise estimate should drop well below the raw score spread.
  EXPECT_LT(fit->params.tau, 2.0);
  EXPECT_GT(fit->params.tau, 0.0);
}

TEST(VariationalTest, DiagonalCovarianceOptionZeroesOffDiagonals) {
  PlantedWorld world = MakePlantedWorld(8, 40, 6);
  TdpmOptions options = FastOptions(3, 6);
  options.diagonal_covariance = true;
  TdpmTrainer trainer(options);
  auto fit = trainer.Fit(world.data);
  ASSERT_TRUE(fit.ok());
  for (size_t a = 0; a < 3; ++a) {
    for (size_t b = 0; b < 3; ++b) {
      if (a != b) {
        EXPECT_DOUBLE_EQ(fit->params.sigma_w(a, b), 0.0);
        EXPECT_DOUBLE_EQ(fit->params.sigma_c(a, b), 0.0);
      }
    }
  }
}

TEST(VariationalTest, BetaRowsAreDistributions) {
  PlantedWorld world = MakePlantedWorld(8, 40, 7);
  TdpmTrainer trainer(FastOptions(2, 8));
  auto fit = trainer.Fit(world.data);
  ASSERT_TRUE(fit.ok());
  for (size_t d = 0; d < 2; ++d) {
    double row = 0.0;
    for (size_t v = 0; v < world.data.vocab_size; ++v) {
      EXPECT_GT(fit->params.beta(d, v), 0.0);
      row += fit->params.beta(d, v);
    }
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
}

TEST(VariationalTest, DeterministicAcrossRuns) {
  PlantedWorld world = MakePlantedWorld(8, 30, 8);
  TdpmTrainer trainer(FastOptions(2, 5));
  auto fit1 = trainer.Fit(world.data);
  auto fit2 = trainer.Fit(world.data);
  ASSERT_TRUE(fit1.ok() && fit2.ok());
  ASSERT_EQ(fit1->elbo_history.size(), fit2->elbo_history.size());
  for (size_t i = 0; i < fit1->elbo_history.size(); ++i) {
    EXPECT_DOUBLE_EQ(fit1->elbo_history[i], fit2->elbo_history[i]);
  }
}

TEST(VariationalTest, MultithreadedMatchesSingleThreaded) {
  PlantedWorld world = MakePlantedWorld(8, 30, 9);
  TdpmOptions single = FastOptions(2, 5);
  single.num_threads = 1;
  TdpmOptions multi = FastOptions(2, 5);
  multi.num_threads = 4;
  auto fit1 = TdpmTrainer(single).Fit(world.data);
  auto fit2 = TdpmTrainer(multi).Fit(world.data);
  ASSERT_TRUE(fit1.ok() && fit2.ok());
  ASSERT_EQ(fit1->elbo_history.size(), fit2->elbo_history.size());
  for (size_t i = 0; i < fit1->elbo_history.size(); ++i) {
    EXPECT_NEAR(fit1->elbo_history[i], fit2->elbo_history[i],
                1e-6 * std::fabs(fit1->elbo_history[i]));
  }
}

TEST(VariationalTest, FromWorldMatchesManualExtraction) {
  GeneratedWorld world;
  world.worker_skills = {Vector{1.0}, Vector{2.0}};
  GeneratedTask t;
  t.bag.Add(0, 2);
  t.bag.Add(3, 1);
  world.tasks.push_back(t);
  world.scores.push_back({1, 0, 4.5});
  TdpmTrainData data = TdpmTrainData::FromWorld(world, 2, 5);
  ASSERT_TRUE(data.Validate().ok());
  EXPECT_EQ(data.tasks.size(), 1u);
  EXPECT_DOUBLE_EQ(data.tasks[0].total_tokens, 3.0);
  EXPECT_EQ(data.observations.size(), 1u);
  EXPECT_EQ(data.obs_of_worker[1].size(), 1u);
  EXPECT_TRUE(data.obs_of_worker[0].empty());
}

}  // namespace
}  // namespace crowdselect
