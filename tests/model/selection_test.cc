#include "model/selection.h"

#include <gtest/gtest.h>

#include "util/logging.h"

#include <cmath>

namespace crowdselect {
namespace {

// Builds a database with two disjoint topics ("tree/index/btree..." vs
// "matrix/calculus/algebra...") and workers specialized in one of them.
CrowdDatabase TwoTopicDb() {
  CrowdDatabase db;
  // Workers 0,1: databases; workers 2,3: math.
  db.AddWorker("db_expert_0");
  db.AddWorker("db_expert_1");
  db.AddWorker("math_expert_0");
  db.AddWorker("math_expert_1");

  const std::vector<std::string> db_tasks = {
      "btree index storage page", "index scan btree page buffer",
      "storage engine page btree", "buffer index page scan",
      "btree storage buffer engine", "index btree page storage"};
  const std::vector<std::string> math_tasks = {
      "matrix calculus gradient algebra", "gradient algebra matrix integral",
      "integral calculus matrix algebra", "algebra gradient integral matrix",
      "calculus integral gradient algebra", "matrix algebra calculus integral"};

  for (size_t j = 0; j < db_tasks.size(); ++j) {
    const TaskId t = db.AddTask(db_tasks[j]);
    // All four answer; db experts get high feedback.
    for (WorkerId w = 0; w < 4; ++w) {
      CS_CHECK_OK(db.Assign(w, t));
      CS_CHECK_OK(db.RecordFeedback(w, t, w < 2 ? 5.0 : 1.0));
    }
  }
  for (size_t j = 0; j < math_tasks.size(); ++j) {
    const TaskId t = db.AddTask(math_tasks[j]);
    for (WorkerId w = 0; w < 4; ++w) {
      CS_CHECK_OK(db.Assign(w, t));
      CS_CHECK_OK(db.RecordFeedback(w, t, w >= 2 ? 5.0 : 1.0));
    }
  }
  return db;
}

TdpmOptions Options() {
  TdpmOptions options;
  options.num_categories = 2;
  options.max_em_iterations = 25;
  options.seed = 3;
  return options;
}

TEST(TdpmSelectorTest, UntrainedSelectorFailsCleanly) {
  TdpmSelector selector(Options());
  EXPECT_FALSE(selector.trained());
  BagOfWords bag;
  bag.Add(0);
  EXPECT_TRUE(
      selector.SelectTopK(bag, 1, {0}).status().IsFailedPrecondition());
}

TEST(TdpmSelectorTest, SelectsTopicSpecialistsForTopicTasks) {
  CrowdDatabase db = TwoTopicDb();
  TdpmSelector selector(Options());
  ASSERT_TRUE(selector.Train(db).ok());
  EXPECT_EQ(selector.Name(), "TDPM");

  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords db_task = BagOfWords::FromTextFrozen(
      "how does a btree index page work", tokenizer, db.vocabulary());
  auto top = selector.SelectTopK(db_task, 2, {0, 1, 2, 3});
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_LT((*top)[0].worker, 2u) << "db task should pick a db expert first";

  const BagOfWords math_task = BagOfWords::FromTextFrozen(
      "compute the gradient of a matrix integral", tokenizer, db.vocabulary());
  auto top_math = selector.SelectTopK(math_task, 2, {0, 1, 2, 3});
  ASSERT_TRUE(top_math.ok());
  EXPECT_GE((*top_math)[0].worker, 2u)
      << "math task should pick a math expert first";
}

TEST(TdpmSelectorTest, RespectsCandidateSet) {
  CrowdDatabase db = TwoTopicDb();
  TdpmSelector selector(Options());
  ASSERT_TRUE(selector.Train(db).ok());
  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords task = BagOfWords::FromTextFrozen(
      "btree index page", tokenizer, db.vocabulary());
  // Only math experts offered: must pick among them.
  auto top = selector.SelectTopK(task, 1, {2, 3});
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 1u);
  EXPECT_GE((*top)[0].worker, 2u);
}

TEST(TdpmSelectorTest, UnknownCandidateIsInvalidArgument) {
  CrowdDatabase db = TwoTopicDb();
  TdpmSelector selector(Options());
  ASSERT_TRUE(selector.Train(db).ok());
  BagOfWords bag;
  bag.Add(0);
  EXPECT_TRUE(
      selector.SelectTopK(bag, 1, {99}).status().IsInvalidArgument());
}

TEST(TdpmSelectorTest, SkillsAreComparableAcrossWorkers) {
  // The paper's central claim: unnormalized skills make per-category
  // comparisons meaningful. The db experts' skill vectors should dominate
  // the math experts' on the db category (and vice versa), without any
  // normalization constraint.
  CrowdDatabase db = TwoTopicDb();
  TdpmSelector selector(Options());
  ASSERT_TRUE(selector.Train(db).ok());
  const Vector& db_expert = selector.WorkerSkills(0);
  const Vector& math_expert = selector.WorkerSkills(2);
  // Skills are NOT normalized to sum to one.
  EXPECT_GT(std::fabs(db_expert.Sum() - 1.0) +
                std::fabs(math_expert.Sum() - 1.0),
            1e-3);
}

TEST(TdpmSelectorTest, WriteBackPersistsSkillsAndCategories) {
  CrowdDatabase db = TwoTopicDb();
  TdpmSelector selector(Options());
  ASSERT_TRUE(selector.Train(db).ok());
  ASSERT_TRUE(selector.WriteBack(&db).ok());
  for (WorkerId w = 0; w < 4; ++w) {
    EXPECT_EQ(db.GetWorker(w).value()->skills.size(), 2u);
  }
  EXPECT_EQ(db.GetTask(0).value()->categories.size(), 2u);
}

TEST(TdpmSelectorTest, FitDiagnosticsExposed) {
  CrowdDatabase db = TwoTopicDb();
  TdpmSelector selector(Options());
  ASSERT_TRUE(selector.Train(db).ok());
  EXPECT_FALSE(selector.fit().elbo_history.empty());
  EXPECT_GT(selector.fit().iterations, 0);
}

}  // namespace
}  // namespace crowdselect
