#include "model/exploration.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crowdselect {
namespace {

WorkerPosterior Posterior(Vector lambda, Vector nu_sq) {
  WorkerPosterior p;
  p.lambda = std::move(lambda);
  p.nu_sq = std::move(nu_sq);
  return p;
}

TEST(ExplorationTest, PredictiveMoments) {
  const WorkerPosterior w = Posterior({2.0, 1.0}, {0.5, 2.0});
  const Vector c{0.8, 0.2};
  EXPECT_DOUBLE_EQ(ExplorationRanker::PredictiveMean(w, c), 1.8);
  EXPECT_DOUBLE_EQ(ExplorationRanker::PredictiveVariance(w, c),
                   0.64 * 0.5 + 0.04 * 2.0);
}

TEST(ExplorationTest, GreedyIgnoresUncertainty) {
  ExplorationRanker ranker({.policy = ExplorationPolicy::kGreedy});
  const Vector c{1.0, 0.0};
  const auto certain = Posterior({2.0, 0.0}, {0.01, 0.01});
  const auto uncertain = Posterior({2.0, 0.0}, {10.0, 10.0});
  EXPECT_DOUBLE_EQ(ranker.Score(certain, c), ranker.Score(uncertain, c));
}

TEST(ExplorationTest, UcbPrefersUncertainAtEqualMean) {
  ExplorationRanker ranker(
      {.policy = ExplorationPolicy::kUcb, .ucb_beta = 1.0});
  const Vector c{1.0, 0.0};
  const auto certain = Posterior({2.0, 0.0}, {0.01, 0.01});
  const auto uncertain = Posterior({2.0, 0.0}, {4.0, 4.0});
  EXPECT_GT(ranker.Score(uncertain, c), ranker.Score(certain, c));
  // With beta = 0 UCB degenerates to greedy.
  ExplorationRanker greedy_like(
      {.policy = ExplorationPolicy::kUcb, .ucb_beta = 0.0});
  EXPECT_DOUBLE_EQ(greedy_like.Score(uncertain, c),
                   ExplorationRanker::PredictiveMean(uncertain, c));
}

TEST(ExplorationTest, ThompsonSamplesVaryAndCenterOnMean) {
  ExplorationRanker ranker({.policy = ExplorationPolicy::kThompson, .seed = 5});
  const auto w = Posterior({3.0, -1.0}, {0.25, 0.25});
  const Vector c{0.5, 0.5};
  double sum = 0.0;
  double first = ranker.Score(w, c);
  double second = ranker.Score(w, c);
  EXPECT_NE(first, second);
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += ranker.Score(w, c);
  EXPECT_NEAR(sum / n, 1.0, 0.02);  // Mean = 0.5*3 + 0.5*(-1).
}

TEST(ExplorationTest, SelectTopKGreedyMatchesRankingByMean) {
  ExplorationRanker ranker({.policy = ExplorationPolicy::kGreedy});
  std::vector<WorkerPosterior> posteriors = {
      Posterior({1.0, 0.0}, {1.0, 1.0}), Posterior({3.0, 0.0}, {1.0, 1.0}),
      Posterior({2.0, 0.0}, {1.0, 1.0})};
  auto top = ranker.SelectTopK(posteriors, Vector{1.0, 0.0}, 2, {0, 1, 2});
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].worker, 1u);
  EXPECT_EQ(top[1].worker, 2u);
}

TEST(ExplorationTest, UcbCanFlipRankingTowardNewWorker) {
  // A new worker with prior-level uncertainty overtakes an established,
  // slightly better-on-mean worker once beta is large enough.
  std::vector<WorkerPosterior> posteriors = {
      Posterior({2.2, 0.0}, {0.01, 0.01}),  // Veteran.
      Posterior({2.0, 0.0}, {1.0, 1.0}),    // Newcomer.
  };
  const Vector c{1.0, 0.0};
  ExplorationRanker greedy({.policy = ExplorationPolicy::kGreedy});
  EXPECT_EQ(greedy.SelectTopK(posteriors, c, 1, {0, 1})[0].worker, 0u);
  ExplorationRanker ucb({.policy = ExplorationPolicy::kUcb, .ucb_beta = 1.0});
  EXPECT_EQ(ucb.SelectTopK(posteriors, c, 1, {0, 1})[0].worker, 1u);
}

}  // namespace
}  // namespace crowdselect
