// Verifies the re-derived analytic gradient of the per-task evidence-bound
// subproblem (DESIGN.md "Corrections to the paper's appendix") against
// central differences.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/gradient_check.h"
#include "model/variational.h"
#include "util/rng.h"

namespace crowdselect {
namespace {

using internal::LambdaCProblem;

struct ProblemFixture {
  Matrix sigma_c_inv;
  Vector mu_c;
  LambdaCProblem problem;
};

ProblemFixture MakeProblem(size_t k, bool with_scores, uint64_t seed) {
  ProblemFixture fx;
  Rng rng(seed);

  Matrix sigma_c(k, k);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) sigma_c(i, j) = rng.Normal();
  }
  sigma_c = sigma_c.Multiply(sigma_c.Transposed());
  sigma_c.AddDiagonal(1.0);
  auto chol = Cholesky::Factorize(sigma_c);
  CS_CHECK(chol.ok());
  fx.sigma_c_inv = chol->Inverse();
  fx.mu_c = Vector(k);
  for (size_t i = 0; i < k; ++i) fx.mu_c[i] = 0.3 * rng.Normal();

  fx.problem.total_tokens = 25.0;
  fx.problem.eps = 3.7;
  fx.problem.nu_sq = Vector(k, 0.5);
  fx.problem.phi_weight_sum = Vector(k);
  for (size_t i = 0; i < k; ++i) {
    fx.problem.phi_weight_sum[i] = rng.Uniform(0.0, 5.0);
  }
  if (with_scores) {
    fx.problem.h = Matrix(k, k);
    fx.problem.b = Vector(k);
    for (int obs = 0; obs < 4; ++obs) {
      Vector lw(k);
      for (size_t i = 0; i < k; ++i) lw[i] = rng.Normal(1.0, 0.8);
      Vector nw(k);
      for (size_t i = 0; i < k; ++i) nw[i] = rng.Uniform(0.05, 0.4);
      const double inv_tau_sq = 1.0 / 0.25;
      fx.problem.h.AddOuter(lw, inv_tau_sq);
      fx.problem.h.AddDiagonal(nw, inv_tau_sq);
      fx.problem.b.Axpy(rng.Normal(2.0, 1.0) * inv_tau_sq, lw);
    }
  }
  return fx;
}

class LambdaCGradientSweep
    : public ::testing::TestWithParam<std::tuple<size_t, bool>> {};

TEST_P(LambdaCGradientSweep, AnalyticMatchesNumeric) {
  const auto [k, with_scores] = GetParam();
  ProblemFixture fx = MakeProblem(k, with_scores, 100 + k);
  fx.problem.sigma_c_inv = &fx.sigma_c_inv;
  fx.problem.mu_c = &fx.mu_c;

  Rng rng(k);
  Vector x(k);
  for (size_t i = 0; i < k; ++i) x[i] = rng.Normal(0.0, 0.7);

  auto objective = [&fx](const Vector& lambda, Vector* grad) {
    return fx.problem.Objective(lambda, grad);
  };
  auto report = CheckGradient(objective, x, 1e-6);
  EXPECT_LT(report.max_rel_error, 1e-5)
      << "k=" << k << " with_scores=" << with_scores
      << " worst coordinate " << report.worst_coordinate;
}

INSTANTIATE_TEST_SUITE_P(
    Dims, LambdaCGradientSweep,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 5, 10, 20),
                       ::testing::Bool()));

TEST(LambdaCObjectiveTest, ConvexAlongRandomSegments) {
  // f(mid) <= (f(a) + f(b)) / 2 for a convex objective.
  ProblemFixture fx = MakeProblem(6, true, 55);
  fx.problem.sigma_c_inv = &fx.sigma_c_inv;
  fx.problem.mu_c = &fx.mu_c;
  Rng rng(56);
  Vector grad(6);
  for (int trial = 0; trial < 30; ++trial) {
    Vector a(6), b(6);
    for (size_t i = 0; i < 6; ++i) {
      a[i] = rng.Normal(0.0, 1.5);
      b[i] = rng.Normal(0.0, 1.5);
    }
    Vector mid = (a + b) * 0.5;
    const double fa = fx.problem.Objective(a, &grad);
    const double fb = fx.problem.Objective(b, &grad);
    const double fm = fx.problem.Objective(mid, &grad);
    EXPECT_LE(fm, 0.5 * (fa + fb) + 1e-9);
  }
}

TEST(NuSqFixedPointTest, ConvergesToStationaryCondition) {
  ProblemFixture fx = MakeProblem(4, true, 77);
  fx.problem.sigma_c_inv = &fx.sigma_c_inv;
  fx.problem.mu_c = &fx.mu_c;
  Vector lambda(4, 0.2);
  fx.problem.UpdateNuSq(lambda, /*iterations=*/200, /*floor=*/1e-8);
  // Stationarity: 1/nu^2 = a + (L/eps) exp(lambda + nu^2/2).
  for (size_t i = 0; i < 4; ++i) {
    const double nu_sq = fx.problem.nu_sq[i];
    const double a = fx.problem.h(i, i) + fx.sigma_c_inv(i, i);
    const double rhs = a + (fx.problem.total_tokens / fx.problem.eps) *
                               std::exp(lambda[i] + 0.5 * nu_sq);
    EXPECT_NEAR(1.0 / nu_sq, rhs, 1e-4 * rhs);
  }
}

TEST(NuSqFixedPointTest, VariancesStayPositive) {
  ProblemFixture fx = MakeProblem(3, false, 88);
  fx.problem.sigma_c_inv = &fx.sigma_c_inv;
  fx.problem.mu_c = &fx.mu_c;
  fx.problem.total_tokens = 1e4;  // Extreme token pressure.
  Vector lambda(3, 2.0);
  fx.problem.UpdateNuSq(lambda, 50, 1e-8);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_GT(fx.problem.nu_sq[i], 0.0);
    EXPECT_TRUE(std::isfinite(fx.problem.nu_sq[i]));
  }
}

TEST(PhiEpsUpdateTest, PhiRowsAreDistributions) {
  const size_t k = 4, vocab = 10;
  TdpmTrainData::TaskDoc doc;
  doc.terms = {{0, 2}, {3, 1}, {7, 4}};
  doc.total_tokens = 7.0;
  Matrix log_beta(k, vocab);
  Rng rng(99);
  for (size_t d = 0; d < k; ++d) {
    for (size_t v = 0; v < vocab; ++v) {
      log_beta(d, v) = std::log(rng.Uniform(0.01, 1.0));
    }
  }
  Vector lambda{0.5, -0.2, 1.0, 0.0};
  Vector nu_sq(k, 0.3);
  Matrix phi(doc.terms.size(), k);
  double eps = 0.0;
  internal::UpdatePhiAndEps(doc, lambda, nu_sq, log_beta, &phi, &eps);

  for (size_t p = 0; p < doc.terms.size(); ++p) {
    double row = 0.0;
    for (size_t d = 0; d < k; ++d) {
      EXPECT_GE(phi(p, d), 0.0);
      row += phi(p, d);
    }
    EXPECT_NEAR(row, 1.0, 1e-12);
  }
  // Eq. 13.
  double expected_eps = 0.0;
  for (size_t d = 0; d < k; ++d) {
    expected_eps += std::exp(lambda[d] + 0.5 * nu_sq[d]);
  }
  EXPECT_NEAR(eps, expected_eps, 1e-12);
}

TEST(PhiEpsUpdateTest, PhiFavorsLikelyCategory) {
  const size_t k = 2, vocab = 2;
  TdpmTrainData::TaskDoc doc;
  doc.terms = {{0, 1}};
  doc.total_tokens = 1.0;
  Matrix log_beta(k, vocab);
  // Category 0 strongly prefers term 0.
  log_beta(0, 0) = std::log(0.9);
  log_beta(0, 1) = std::log(0.1);
  log_beta(1, 0) = std::log(0.1);
  log_beta(1, 1) = std::log(0.9);
  Vector lambda(k, 0.0);
  Vector nu_sq(k, 0.1);
  Matrix phi(1, k);
  double eps = 0.0;
  internal::UpdatePhiAndEps(doc, lambda, nu_sq, log_beta, &phi, &eps);
  EXPECT_GT(phi(0, 0), 0.85);
}

}  // namespace
}  // namespace crowdselect
