#include "model/dawid_skene.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace crowdselect {
namespace {

TEST(QuantileBinsTest, EdgesSplitUniformScoresEvenly) {
  std::vector<double> scores;
  for (int i = 0; i < 100; ++i) scores.push_back(i / 100.0);
  const std::vector<double> edges = QuantileBinEdges(scores, 4);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_NEAR(edges[0], 0.25, 0.03);
  EXPECT_NEAR(edges[1], 0.50, 0.03);
  EXPECT_NEAR(edges[2], 0.75, 0.03);
  // Each label gets roughly a quarter of the mass.
  std::vector<int> counts(4, 0);
  for (double s : scores) ++counts[DiscretizeScore(s, edges)];
  for (int c : counts) EXPECT_NEAR(c, 25, 5);
}

TEST(QuantileBinsTest, DegenerateScoresCollapseGracefully) {
  // All-equal scores: every observation lands in one bin, nothing crashes.
  const std::vector<double> edges = QuantileBinEdges({3.0, 3.0, 3.0, 3.0}, 4);
  ASSERT_EQ(edges.size(), 3u);
  const uint32_t label = DiscretizeScore(3.0, edges);
  EXPECT_LT(label, 4u);
  EXPECT_EQ(DiscretizeScore(3.0, edges), label);
}

TEST(QuantileBinsTest, DiscretizeRespectsEdges) {
  const std::vector<double> edges = {0.25, 0.5, 0.75};
  EXPECT_EQ(DiscretizeScore(0.0, edges), 0u);
  EXPECT_EQ(DiscretizeScore(0.3, edges), 1u);
  EXPECT_EQ(DiscretizeScore(0.6, edges), 2u);
  EXPECT_EQ(DiscretizeScore(0.99, edges), 3u);
}

// Samples observations from planted per-worker confusion matrices and
// checks EM gets the matrices back. This is the classic identifiability
// experiment: reliable (diagonal-heavy) workers anchor the labels via
// the majority-vote init, so no label permutation is possible.
TEST(DawidSkeneEmTest, RecoversPlantedConfusionMatrices) {
  const size_t kWorkers = 12, kTasks = 400, kLabels = 3;
  Rng rng(17);

  // Planted model: workers 0..9 reliable (80% diagonal), worker 10 a
  // spammer (uniform rows), worker 11 adversarial (shifts labels up).
  std::vector<std::vector<double>> planted(kWorkers,
                                           std::vector<double>(kLabels * kLabels));
  for (size_t w = 0; w < kWorkers; ++w) {
    for (size_t z = 0; z < kLabels; ++z) {
      for (size_t l = 0; l < kLabels; ++l) {
        double p;
        if (w == 10) {
          p = 1.0 / kLabels;
        } else if (w == 11) {
          p = (l == (z + 1) % kLabels) ? 0.8 : 0.1;
        } else {
          p = (l == z) ? 0.8 : 0.1;
        }
        planted[w][z * kLabels + l] = p;
      }
    }
  }
  const std::vector<double> prior = {0.5, 0.3, 0.2};

  std::vector<DsObservation> obs;
  std::vector<uint32_t> true_class(kTasks);
  for (size_t j = 0; j < kTasks; ++j) {
    true_class[j] = static_cast<uint32_t>(rng.Discrete(prior));
    for (size_t w = 0; w < kWorkers; ++w) {
      std::vector<double> row(planted[w].begin() + true_class[j] * kLabels,
                              planted[w].begin() + (true_class[j] + 1) * kLabels);
      obs.push_back(DsObservation{static_cast<uint32_t>(w),
                                  static_cast<uint32_t>(j),
                                  static_cast<uint32_t>(rng.Discrete(row))});
    }
  }

  DawidSkeneOptions options;
  options.num_labels = kLabels;
  options.smoothing = 0.5;
  const DawidSkeneFit fit =
      FitDawidSkene(obs, kWorkers, kTasks, kLabels, options);
  EXPECT_TRUE(fit.converged);
  EXPECT_GT(fit.iterations, 1);

  // Confusion recovery, tolerance-gated: mean absolute error per cell.
  for (size_t w = 0; w < kWorkers; ++w) {
    double err = 0.0;
    for (size_t c = 0; c < kLabels * kLabels; ++c) {
      err += std::fabs(fit.confusion[w][c] - planted[w][c]);
    }
    err /= kLabels * kLabels;
    EXPECT_LT(err, 0.06) << "worker " << w << " confusion off";
  }
  // Class prior recovered.
  for (size_t z = 0; z < kLabels; ++z) {
    EXPECT_NEAR(fit.class_prior[z], prior[z], 0.07);
  }
  // Task classes recovered (EM should beat 95% with 10 reliable workers).
  size_t correct = 0;
  for (size_t j = 0; j < kTasks; ++j) {
    size_t argmax = 0;
    for (size_t z = 1; z < kLabels; ++z) {
      if (fit.task_posterior[j][z] > fit.task_posterior[j][argmax]) argmax = z;
    }
    if (argmax == true_class[j]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / kTasks, 0.95);
}

TEST(DawidSkeneEmTest, EmptyObservationsYieldUniformRows) {
  DawidSkeneOptions options;
  options.num_labels = 2;
  const DawidSkeneFit fit = FitDawidSkene({}, 2, 1, 2, options);
  ASSERT_EQ(fit.confusion.size(), 2u);
  for (const auto& conf : fit.confusion) {
    for (double p : conf) EXPECT_NEAR(p, 0.5, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// End-to-end model tests.

CrowdDatabase TwoTopicDb() {
  CrowdDatabase db;
  db.AddWorker("db_expert_0");
  db.AddWorker("db_expert_1");
  db.AddWorker("math_expert_0");
  db.AddWorker("math_expert_1");
  const std::vector<std::string> db_tasks = {
      "btree index storage page", "index scan btree page buffer",
      "storage engine page btree", "buffer index page scan",
      "btree storage buffer engine", "index btree page storage"};
  const std::vector<std::string> math_tasks = {
      "matrix calculus gradient algebra", "gradient algebra matrix integral",
      "integral calculus matrix algebra", "algebra gradient integral matrix",
      "calculus integral gradient algebra", "matrix algebra calculus integral"};
  for (const std::string& text : db_tasks) {
    const TaskId t = db.AddTask(text);
    for (WorkerId w = 0; w < 4; ++w) {
      CS_CHECK_OK(db.Assign(w, t));
      CS_CHECK_OK(db.RecordFeedback(w, t, w < 2 ? 5.0 : 1.0));
    }
  }
  for (const std::string& text : math_tasks) {
    const TaskId t = db.AddTask(text);
    for (WorkerId w = 0; w < 4; ++w) {
      CS_CHECK_OK(db.Assign(w, t));
      CS_CHECK_OK(db.RecordFeedback(w, t, w >= 2 ? 5.0 : 1.0));
    }
  }
  return db;
}

DawidSkeneOptions SmallOptions() {
  DawidSkeneOptions options;
  options.num_labels = 2;
  options.num_types = 2;
  options.seed = 5;
  return options;
}

TEST(DawidSkeneModelTest, UntrainedFailsCleanly) {
  DawidSkeneModel model(SmallOptions());
  EXPECT_FALSE(model.trained());
  BagOfWords bag;
  bag.Add(0);
  EXPECT_TRUE(model.SelectTopK(bag, 1, {0}).status().IsFailedPrecondition());
  EXPECT_EQ(model.ModelId(), "dawid_skene");
}

TEST(DawidSkeneModelTest, SelectsTopicSpecialists) {
  CrowdDatabase db = TwoTopicDb();
  DawidSkeneModel model(SmallOptions());
  ASSERT_TRUE(model.Train(db).ok());
  ASSERT_TRUE(model.trained());
  ASSERT_NE(model.CurrentSnapshot(), nullptr);

  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords db_task = BagOfWords::FromTextFrozen(
      "how does a btree index page work", tokenizer, db.vocabulary());
  auto top = model.SelectTopK(db_task, 2, {0, 1, 2, 3});
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_LT((*top)[0].worker, 2u) << "db task should pick a db expert first";

  const BagOfWords math_task = BagOfWords::FromTextFrozen(
      "compute the gradient of a matrix integral", tokenizer, db.vocabulary());
  auto top_math = model.SelectTopK(math_task, 2, {0, 1, 2, 3});
  ASSERT_TRUE(top_math.ok());
  EXPECT_GE((*top_math)[0].worker, 2u)
      << "math task should pick a math expert first";
}

TEST(DawidSkeneModelTest, ExplainReportsModelId) {
  CrowdDatabase db = TwoTopicDb();
  DawidSkeneModel model(SmallOptions());
  ASSERT_TRUE(model.Train(db).ok());
  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords task = BagOfWords::FromTextFrozen(
      "btree index page", tokenizer, db.vocabulary());
  serve::QueryStats stats;
  ASSERT_TRUE(model.SelectTopKExplained(task, 2, {0, 1, 2, 3}, &stats).ok());
  EXPECT_EQ(stats.serving_model, "dawid_skene");
  EXPECT_FALSE(stats.breakdown.empty());
}

TEST(DawidSkeneModelTest, FoldInYieldsNormalizedTypeWeights) {
  CrowdDatabase db = TwoTopicDb();
  DawidSkeneModel model(SmallOptions());
  ASSERT_TRUE(model.Train(db).ok());
  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords task = BagOfWords::FromTextFrozen(
      "btree index page", tokenizer, db.vocabulary());
  auto fold = model.FoldInTask(task);
  ASSERT_TRUE(fold.ok());
  ASSERT_EQ(fold->category.size(), 2u);
  double sum = 0.0;
  for (size_t t = 0; t < fold->category.size(); ++t) {
    EXPECT_GE(fold->category[t], 0.0);
    sum += fold->category[t];
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(DawidSkeneModelTest, ObserveResolvedTaskMovesSkills) {
  CrowdDatabase db = TwoTopicDb();
  DawidSkeneModel model(SmallOptions());
  ASSERT_TRUE(model.Train(db).ok());
  const auto before = model.CurrentSnapshot();

  // Math expert 2 suddenly aces a db task, repeatedly; their db-type
  // skill should move up and a new snapshot must be published.
  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords task = BagOfWords::FromTextFrozen(
      "btree index page storage", tokenizer, db.vocabulary());
  const uint32_t type = model.clustering().Assign(task);
  const double skill_before = model.WorkerSkill(2, type);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(model.ObserveResolvedTask(task, {{2, 5.0}}).ok());
  }
  const auto after = model.CurrentSnapshot();
  EXPECT_NE(before.get(), after.get()) << "live update must republish";
  EXPECT_GT(model.WorkerSkill(2, type), skill_before);
}

}  // namespace
}  // namespace crowdselect
