// Parameterized property sweeps over the full training pipeline: for every
// (K, feedback model) combination, training must uphold the model's
// structural invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "crowdselect/crowdselect.h"

namespace crowdselect {
namespace {

struct PropertyCase {
  size_t k;
  FeedbackModel feedback;
};

class TrainingInvariantSweep : public ::testing::TestWithParam<PropertyCase> {
};

TEST_P(TrainingInvariantSweep, InvariantsHold) {
  const PropertyCase param = GetParam();

  PlatformConfig config = DefaultPlatformConfig(Platform::kQuora);
  config.world.num_workers = 20;
  config.world.num_tasks = 90;
  config.world.vocab_size = 100;
  config.world.num_categories = 3;
  config.world.mean_answers_per_task = 3.0;
  config.feedback = param.feedback;
  auto dataset =
      GeneratePlatformDataset(Platform::kQuora, config, 1000 + param.k);
  ASSERT_TRUE(dataset.ok());

  TdpmOptions options;
  options.num_categories = param.k;
  options.max_em_iterations = 8;
  options.seed = param.k;
  TdpmTrainData data = TdpmTrainData::FromDatabase(dataset->db);
  TdpmTrainer trainer(options);
  auto fit = trainer.Fit(data);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();

  // (1) tau positive and finite.
  EXPECT_GT(fit->params.tau, 0.0);
  EXPECT_TRUE(std::isfinite(fit->params.tau));

  // (2) beta rows are distributions.
  for (size_t d = 0; d < param.k; ++d) {
    double row = 0.0;
    for (size_t v = 0; v < data.vocab_size; ++v) {
      ASSERT_GE(fit->params.beta(d, v), 0.0);
      row += fit->params.beta(d, v);
    }
    EXPECT_NEAR(row, 1.0, 1e-8);
  }

  // (3) priors are symmetric with floored positive diagonals.
  EXPECT_LT(fit->params.sigma_w.SymmetryError(), 1e-9);
  EXPECT_LT(fit->params.sigma_c.SymmetryError(), 1e-9);
  for (size_t d = 0; d < param.k; ++d) {
    EXPECT_GE(fit->params.sigma_w(d, d), options.prior_variance_floor - 1e-12);
    EXPECT_GE(fit->params.sigma_c(d, d), options.prior_variance_floor - 1e-12);
  }

  // (4) every posterior is finite with positive variances; phi rows are
  // distributions.
  for (const auto& w : fit->state.workers) {
    for (size_t d = 0; d < param.k; ++d) {
      EXPECT_TRUE(std::isfinite(w.lambda[d]));
      EXPECT_GT(w.nu_sq[d], 0.0);
    }
  }
  for (size_t j = 0; j < fit->state.tasks.size(); ++j) {
    const auto& t = fit->state.tasks[j];
    for (size_t d = 0; d < param.k; ++d) {
      EXPECT_TRUE(std::isfinite(t.lambda[d]));
      EXPECT_GT(t.nu_sq[d], 0.0);
    }
    EXPECT_GT(t.eps, 0.0);
    for (size_t p = 0; p < t.phi.rows(); ++p) {
      double row = 0.0;
      for (size_t d = 0; d < param.k; ++d) row += t.phi(p, d);
      EXPECT_NEAR(row, 1.0, 1e-9);
    }
  }

  // (5) ELBO history finite.
  for (double e : fit->elbo_history) EXPECT_TRUE(std::isfinite(e));

  // (6) fold-in of every training task is finite and deterministic.
  auto folder = TaskFolder::Create(fit->params, options);
  ASSERT_TRUE(folder.ok());
  const BagOfWords& probe = dataset->db.GetTask(0).value()->bag;
  const FoldInResult f1 = folder->FoldIn(probe);
  const FoldInResult f2 = folder->FoldIn(probe);
  for (size_t d = 0; d < param.k; ++d) {
    EXPECT_TRUE(std::isfinite(f1.lambda[d]));
    EXPECT_DOUBLE_EQ(f1.lambda[d], f2.lambda[d]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KAndFeedback, TrainingInvariantSweep,
    ::testing::Values(PropertyCase{1, FeedbackModel::kThumbsUp},
                      PropertyCase{2, FeedbackModel::kThumbsUp},
                      PropertyCase{3, FeedbackModel::kThumbsUp},
                      PropertyCase{5, FeedbackModel::kThumbsUp},
                      PropertyCase{8, FeedbackModel::kThumbsUp},
                      PropertyCase{2, FeedbackModel::kBestAnswer},
                      PropertyCase{5, FeedbackModel::kBestAnswer},
                      PropertyCase{8, FeedbackModel::kBestAnswer}),
    [](const ::testing::TestParamInfo<PropertyCase>& param_info) {
      return "K" + std::to_string(param_info.param.k) +
             (param_info.param.feedback == FeedbackModel::kBestAnswer
                  ? "_BestAnswer"
                  : "_ThumbsUp");
    });

// Selection consistency: SelectTopK(k) must be a prefix of
// SelectTopK(k+1) for deterministic scoring.
class TopKPrefixSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(TopKPrefixSweep, SmallerKIsPrefixOfLargerK) {
  PlatformConfig config = DefaultPlatformConfig(Platform::kQuora);
  config.world.num_workers = 15;
  config.world.num_tasks = 60;
  config.world.vocab_size = 80;
  config.world.num_categories = 2;
  auto dataset = GeneratePlatformDataset(Platform::kQuora, config, 55);
  ASSERT_TRUE(dataset.ok());
  TdpmOptions options;
  options.num_categories = 2;
  options.max_em_iterations = 6;
  TdpmSelector selector(options);
  ASSERT_TRUE(selector.Train(dataset->db).ok());

  const size_t k = GetParam();
  const BagOfWords& probe = dataset->db.GetTask(3).value()->bag;
  std::vector<WorkerId> candidates;
  for (WorkerId w = 0; w < 15; ++w) candidates.push_back(w);
  auto small = selector.SelectTopK(probe, k, candidates);
  auto large = selector.SelectTopK(probe, k + 3, candidates);
  ASSERT_TRUE(small.ok() && large.ok());
  ASSERT_LE(small->size(), large->size());
  for (size_t i = 0; i < small->size(); ++i) {
    EXPECT_EQ((*small)[i].worker, (*large)[i].worker) << "position " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKPrefixSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 12));

}  // namespace
}  // namespace crowdselect
