#include "model/generative.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crowdselect {
namespace {

TdpmModelParams SimpleParams(size_t k = 3, size_t vocab = 20) {
  TdpmModelParams params = TdpmModelParams::Init(k, vocab);
  params.mu_w = Vector(k, 2.0);
  params.tau = 0.5;
  // Peaked beta: category d prefers terms [d*vocab/k, (d+1)*vocab/k).
  const size_t slice = vocab / k;
  for (size_t d = 0; d < k; ++d) {
    for (size_t v = 0; v < vocab; ++v) params.beta(d, v) = 0.01;
    for (size_t v = d * slice; v < (d + 1) * slice; ++v) {
      params.beta(d, v) = 1.0;
    }
    double row = 0.0;
    for (size_t v = 0; v < vocab; ++v) row += params.beta(d, v);
    for (size_t v = 0; v < vocab; ++v) params.beta(d, v) /= row;
  }
  return params;
}

TEST(MultivariateNormalTest, MatchesMeanAndCovariance) {
  Rng rng(3);
  Vector mu{1.0, -2.0};
  Matrix sigma(2, 2);
  sigma(0, 0) = 2.0;
  sigma(1, 1) = 0.5;
  sigma(0, 1) = sigma(1, 0) = 0.4;
  const int n = 40000;
  double m0 = 0, m1 = 0, c00 = 0, c11 = 0, c01 = 0;
  for (int i = 0; i < n; ++i) {
    auto x = SampleMultivariateNormal(mu, sigma, &rng);
    ASSERT_TRUE(x.ok());
    m0 += (*x)[0];
    m1 += (*x)[1];
  }
  m0 /= n;
  m1 /= n;
  EXPECT_NEAR(m0, 1.0, 0.05);
  EXPECT_NEAR(m1, -2.0, 0.05);
  Rng rng2(3);
  for (int i = 0; i < n; ++i) {
    auto x = SampleMultivariateNormal(mu, sigma, &rng2);
    const double d0 = (*x)[0] - m0, d1 = (*x)[1] - m1;
    c00 += d0 * d0;
    c11 += d1 * d1;
    c01 += d0 * d1;
  }
  EXPECT_NEAR(c00 / n, 2.0, 0.1);
  EXPECT_NEAR(c11 / n, 0.5, 0.05);
  EXPECT_NEAR(c01 / n, 0.4, 0.05);
}

TEST(GenerativeTest, TaskTokensComeFromDominantCategorySlice) {
  TdpmModelParams params = SimpleParams();
  // Force an extreme category vector so softmax is ~one-hot on 0.
  params.mu_c = Vector{8.0, -8.0, -8.0};
  params.sigma_c *= 0.01;
  TdpmGenerator generator(params);
  Rng rng(5);
  auto task = generator.SampleTask(200, &rng);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->tokens.size(), 200u);
  EXPECT_EQ(task->bag.TotalTokens(), 200u);
  // Nearly all z should be category 0, and tokens mostly in slice 0.
  size_t in_slice = 0;
  for (TermId t : task->tokens) {
    if (t < 20 / 3) ++in_slice;
  }
  EXPECT_GT(static_cast<double>(in_slice) / 200.0, 0.8);
}

TEST(GenerativeTest, ScoreCentersOnPredictivePerformance) {
  TdpmModelParams params = SimpleParams();
  TdpmGenerator generator(params);
  Rng rng(7);
  Vector skills{1.0, 2.0, 3.0};
  Vector categories{0.5, 0.3, 0.2};
  const double expected = skills.Dot(categories);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += generator.SampleScore(skills, categories, &rng);
  }
  EXPECT_NEAR(sum / n, expected, 0.02);
}

TEST(GenerativeTest, GenerateProducesOneScorePerAssignment) {
  TdpmModelParams params = SimpleParams();
  TdpmGenerator generator(params);
  Rng rng(9);
  std::vector<std::vector<uint32_t>> assignment = {{0, 1}, {2}, {0, 1, 2}};
  std::vector<size_t> lengths = {10, 5, 8};
  auto world = generator.Generate(assignment, lengths, 3, &rng);
  ASSERT_TRUE(world.ok());
  EXPECT_EQ(world->worker_skills.size(), 3u);
  EXPECT_EQ(world->tasks.size(), 3u);
  EXPECT_EQ(world->scores.size(), 6u);
  EXPECT_EQ(world->tasks[1].tokens.size(), 5u);
  // Scores reference valid indices.
  for (const auto& s : world->scores) {
    EXPECT_LT(s.worker, 3u);
    EXPECT_LT(s.task, 3u);
  }
}

TEST(GenerativeTest, GenerateValidatesInputs) {
  TdpmGenerator generator(SimpleParams());
  Rng rng(1);
  EXPECT_TRUE(generator.Generate({{0}}, {5, 5}, 1, &rng)
                  .status()
                  .IsInvalidArgument());  // Length mismatch.
  EXPECT_TRUE(generator.Generate({{7}}, {5}, 1, &rng)
                  .status()
                  .IsInvalidArgument());  // Unknown worker.
}

TEST(GenerativeTest, DeterministicGivenSeed) {
  TdpmGenerator generator(SimpleParams());
  Rng rng1(42), rng2(42);
  auto a = generator.SampleTask(20, &rng1);
  auto b = generator.SampleTask(20, &rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->tokens, b->tokens);
  EXPECT_EQ(a->z, b->z);
}

TEST(GenerativeTest, SampleTermFromCategoryRespectsBeta) {
  TdpmModelParams params = SimpleParams();
  TdpmGenerator generator(params);
  Rng rng(11);
  // Category 1's slice is [6, 13) for vocab=20, k=3 (slice=6 -> [6,12)).
  size_t in_slice = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const TermId t = generator.SampleTermFromCategory(1, &rng);
    ASSERT_LT(t, 20u);
    if (t >= 6 && t < 12) ++in_slice;
  }
  EXPECT_GT(static_cast<double>(in_slice) / n, 0.8);
}

}  // namespace
}  // namespace crowdselect
