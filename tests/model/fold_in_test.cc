#include "model/fold_in.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crowdselect {
namespace {

// Model with two sharply separated categories over a 20-term vocabulary.
TdpmModelParams TwoTopicParams() {
  TdpmModelParams params = TdpmModelParams::Init(2, 20);
  params.mu_c = Vector(2, 0.0);
  params.sigma_c = Matrix::Identity(2);
  params.sigma_c *= 2.0;
  for (size_t v = 0; v < 20; ++v) {
    params.beta(0, v) = v < 10 ? 0.098 : 0.002;
    params.beta(1, v) = v < 10 ? 0.002 : 0.098;
  }
  return params;
}

TdpmOptions Options() {
  TdpmOptions options;
  options.num_categories = 2;
  return options;
}

TEST(FoldInTest, CreateValidatesK) {
  TdpmOptions options = Options();
  options.num_categories = 3;  // Mismatch.
  EXPECT_TRUE(
      TaskFolder::Create(TwoTopicParams(), options).status().IsInvalidArgument());
}

TEST(FoldInTest, ProjectsOntoDominantCategory) {
  auto folder = TaskFolder::Create(TwoTopicParams(), Options());
  ASSERT_TRUE(folder.ok());

  BagOfWords topic0;
  for (TermId v = 0; v < 8; ++v) topic0.Add(v, 2);
  FoldInResult r0 = folder->FoldIn(topic0);
  EXPECT_GT(r0.lambda[0], r0.lambda[1]);

  BagOfWords topic1;
  for (TermId v = 12; v < 20; ++v) topic1.Add(v, 2);
  FoldInResult r1 = folder->FoldIn(topic1);
  EXPECT_GT(r1.lambda[1], r1.lambda[0]);
}

TEST(FoldInTest, EmptyTaskFallsBackToPrior) {
  TdpmModelParams params = TwoTopicParams();
  params.mu_c = Vector{0.7, -0.3};
  auto folder = TaskFolder::Create(params, Options());
  ASSERT_TRUE(folder.ok());
  BagOfWords empty;
  FoldInResult r = folder->FoldIn(empty);
  EXPECT_DOUBLE_EQ(r.lambda[0], 0.7);
  EXPECT_DOUBLE_EQ(r.lambda[1], -0.3);
  EXPECT_DOUBLE_EQ(r.nu_sq[0], params.sigma_c(0, 0));
}

TEST(FoldInTest, UnknownTermsAreIgnored) {
  auto folder = TaskFolder::Create(TwoTopicParams(), Options());
  ASSERT_TRUE(folder.ok());
  BagOfWords mixed;
  mixed.Add(3, 2);            // Known, topic 0.
  mixed.Add(500, 10);         // Out of vocabulary.
  FoldInResult r = folder->FoldIn(mixed);
  EXPECT_GT(r.lambda[0], r.lambda[1]);

  BagOfWords only_unknown;
  only_unknown.Add(500, 3);
  FoldInResult prior = folder->FoldIn(only_unknown);
  EXPECT_DOUBLE_EQ(prior.lambda[0], 0.0);  // Prior mean.
}

TEST(FoldInTest, VariancesPositiveAndShrinkWithEvidence) {
  auto folder = TaskFolder::Create(TwoTopicParams(), Options());
  ASSERT_TRUE(folder.ok());
  BagOfWords small, large;
  small.Add(0, 1);
  for (TermId v = 0; v < 10; ++v) large.Add(v, 10);
  FoldInResult rs = folder->FoldIn(small);
  FoldInResult rl = folder->FoldIn(large);
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_GT(rs.nu_sq[d], 0.0);
    EXPECT_GT(rl.nu_sq[d], 0.0);
  }
  // More tokens -> tighter posterior (on the dominant coordinate).
  EXPECT_LT(rl.nu_sq[0], rs.nu_sq[0]);
}

TEST(FoldInTest, DeterministicWithoutSampling) {
  auto folder = TaskFolder::Create(TwoTopicParams(), Options());
  ASSERT_TRUE(folder.ok());
  BagOfWords bag;
  bag.Add(2, 3);
  FoldInResult a = folder->FoldIn(bag);
  FoldInResult b = folder->FoldIn(bag);
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_DOUBLE_EQ(a.lambda[d], b.lambda[d]);
    EXPECT_DOUBLE_EQ(a.category[d], b.category[d]);
  }
  // Deterministic mode: category == posterior mean.
  EXPECT_DOUBLE_EQ(a.category[0], a.lambda[0]);
}

TEST(FoldInTest, SamplingModeUsesRngAndVaries) {
  TdpmOptions options = Options();
  options.sample_category_at_selection = true;
  auto folder = TaskFolder::Create(TwoTopicParams(), options);
  ASSERT_TRUE(folder.ok());
  BagOfWords bag;
  bag.Add(2, 3);
  Rng rng(7);
  FoldInResult a = folder->FoldIn(bag, &rng);
  FoldInResult b = folder->FoldIn(bag, &rng);
  // Same posterior, different samples.
  EXPECT_DOUBLE_EQ(a.lambda[0], b.lambda[0]);
  EXPECT_NE(a.category[0], b.category[0]);
}

}  // namespace
}  // namespace crowdselect
