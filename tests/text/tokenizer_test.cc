#include "text/tokenizer.h"

#include <gtest/gtest.h>

#include "text/stopwords.h"

namespace crowdselect {
namespace {

TEST(TokenizerTest, PaperRunningExample) {
  // §4.1.1: "What are the advantages of B+ Tree over B Tree?" becomes
  // {advantage, b, b+, over, tree x2, what}.
  Tokenizer tokenizer;  // stemming on, stopwords kept.
  auto tokens =
      tokenizer.Tokenize("What are the advantages of B+ Tree over B Tree?");
  std::vector<std::string> expected = {"what", "are",  "the", "advantage",
                                       "of",   "b+",   "tree", "over",
                                       "b",    "tree"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizerTest, LowercasesAndSplitsPunctuation) {
  Tokenizer tokenizer({.stem = false});
  auto tokens = tokenizer.Tokenize("Hello, World! (Again)");
  EXPECT_EQ(tokens, (std::vector<std::string>{"hello", "world", "again"}));
}

TEST(TokenizerTest, KeepsProgrammingTokens) {
  Tokenizer tokenizer({.stem = false});
  auto tokens = tokenizer.Tokenize("c++ vs c# and b+ trees");
  EXPECT_EQ(tokens[0], "c++");
  EXPECT_EQ(tokens[2], "c#");
  EXPECT_EQ(tokens[4], "b+");
}

TEST(TokenizerTest, StopwordRemoval) {
  Tokenizer tokenizer({.remove_stopwords = true});
  auto tokens =
      tokenizer.Tokenize("What are the advantages of B+ Tree over B Tree?");
  // what/are/the/of/over are stopwords.
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"advantage", "b+", "tree", "b", "tree"}));
}

TEST(TokenizerTest, MinTokenLength) {
  Tokenizer tokenizer({.min_token_length = 3, .stem = false});
  auto tokens = tokenizer.Tokenize("a bb ccc dddd");
  EXPECT_EQ(tokens, (std::vector<std::string>{"ccc", "dddd"}));
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  Tokenizer tokenizer;
  EXPECT_TRUE(tokenizer.Tokenize("").empty());
  EXPECT_TRUE(tokenizer.Tokenize("  \t\n  ").empty());
  EXPECT_TRUE(tokenizer.Tokenize("?!.,;").empty());
}

TEST(StemTest, PluralStripping) {
  EXPECT_EQ(StemToken("advantages"), "advantage");
  EXPECT_EQ(StemToken("trees"), "tree");
  EXPECT_EQ(StemToken("queries"), "query");
  EXPECT_EQ(StemToken("classes"), "class");
}

TEST(StemTest, ShortTokensUntouched) {
  EXPECT_EQ(StemToken("as"), "as");
  EXPECT_EQ(StemToken("is"), "is");
  EXPECT_EQ(StemToken("so"), "so");
}

TEST(StemTest, SuffixStripping) {
  EXPECT_EQ(StemToken("indexing"), "index");
  EXPECT_EQ(StemToken("indexed"), "index");
  // -ing too close to the stem is kept.
  EXPECT_EQ(StemToken("string"), "string");
}

TEST(StopwordsTest, ListSanity) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("what"));
  EXPECT_FALSE(IsStopword("database"));
  EXPECT_FALSE(IsStopword("tree"));
  EXPECT_GT(StopwordCount(), 30u);
}

}  // namespace
}  // namespace crowdselect
