#include "text/bag_of_words.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crowdselect {
namespace {

TEST(BagOfWordsTest, FromTextCountsDuplicates) {
  Vocabulary vocab;
  Tokenizer tokenizer;
  BagOfWords bag = BagOfWords::FromText(
      "What are the advantages of B+ Tree over B Tree?", tokenizer, &vocab);
  const TermId tree = vocab.Lookup("tree");
  ASSERT_NE(tree, kInvalidTermId);
  EXPECT_EQ(bag.Count(tree), 2u);
  EXPECT_EQ(bag.TotalTokens(), 10u);
  EXPECT_EQ(bag.DistinctTerms(), 9u);
}

TEST(BagOfWordsTest, FromTextFrozenDropsUnknownTerms) {
  Vocabulary vocab;
  vocab.Intern("tree");
  Tokenizer tokenizer;
  BagOfWords bag = BagOfWords::FromTextFrozen("tree rocket", tokenizer, vocab);
  EXPECT_EQ(bag.TotalTokens(), 1u);
  EXPECT_EQ(bag.Count(vocab.Lookup("tree")), 1u);
  EXPECT_EQ(vocab.size(), 1u);  // Frozen: nothing interned.
}

TEST(BagOfWordsTest, AddMaintainsSortedEntries) {
  BagOfWords bag;
  bag.Add(5);
  bag.Add(1);
  bag.Add(3);
  bag.Add(1, 2);
  ASSERT_EQ(bag.entries().size(), 3u);
  EXPECT_EQ(bag.entries()[0].term, 1u);
  EXPECT_EQ(bag.entries()[0].count, 3u);
  EXPECT_EQ(bag.entries()[1].term, 3u);
  EXPECT_EQ(bag.entries()[2].term, 5u);
  EXPECT_EQ(bag.TotalTokens(), 5u);
}

TEST(BagOfWordsTest, AddZeroCountIsNoop) {
  BagOfWords bag;
  bag.Add(1, 0);
  EXPECT_TRUE(bag.empty());
}

TEST(BagOfWordsTest, MergeUnionsCounts) {
  BagOfWords a, b;
  a.Add(1, 2);
  a.Add(3, 1);
  b.Add(2, 1);
  b.Add(3, 4);
  a.Merge(b);
  EXPECT_EQ(a.Count(1), 2u);
  EXPECT_EQ(a.Count(2), 1u);
  EXPECT_EQ(a.Count(3), 5u);
  EXPECT_EQ(a.TotalTokens(), 8u);
}

TEST(BagOfWordsTest, CosineSimilarityKnownValues) {
  BagOfWords a, b;
  a.Add(0, 1);
  b.Add(1, 1);
  EXPECT_DOUBLE_EQ(a.CosineSimilarity(b), 0.0);  // Orthogonal.
  EXPECT_DOUBLE_EQ(a.CosineSimilarity(a), 1.0);  // Identical.

  BagOfWords c, d;
  c.Add(0, 1);
  c.Add(1, 1);
  d.Add(0, 1);
  EXPECT_NEAR(c.CosineSimilarity(d), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(BagOfWordsTest, CosineSimilarityEmptyIsZero) {
  BagOfWords a, empty;
  a.Add(0);
  EXPECT_DOUBLE_EQ(a.CosineSimilarity(empty), 0.0);
  EXPECT_DOUBLE_EQ(empty.CosineSimilarity(empty), 0.0);
}

TEST(BagOfWordsTest, SerializationRoundTrip) {
  BagOfWords bag;
  bag.Add(2, 3);
  bag.Add(7, 1);
  BinaryWriter writer;
  bag.Serialize(&writer);
  BinaryReader reader(writer.Release());
  auto restored = BagOfWords::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, bag);
  EXPECT_EQ(restored->TotalTokens(), 4u);
}

TEST(BagOfWordsTest, DeserializeRejectsUnsortedTerms) {
  BinaryWriter writer;
  writer.WriteU64(2);
  writer.WriteU32(5);
  writer.WriteU32(1);
  writer.WriteU32(3);  // term 3 < 5: not increasing.
  writer.WriteU32(1);
  BinaryReader reader(writer.Release());
  EXPECT_TRUE(BagOfWords::Deserialize(&reader).status().IsCorruption());
}

TEST(BagOfWordsTest, DeserializeRejectsZeroCount) {
  BinaryWriter writer;
  writer.WriteU64(1);
  writer.WriteU32(5);
  writer.WriteU32(0);
  BinaryReader reader(writer.Release());
  EXPECT_TRUE(BagOfWords::Deserialize(&reader).status().IsCorruption());
}

}  // namespace
}  // namespace crowdselect
