#include "text/tfidf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crowdselect {
namespace {

std::vector<BagOfWords> MakeCorpus() {
  // Term 0 appears everywhere (low idf); term 3 once (high idf).
  BagOfWords d0, d1, d2;
  d0.Add(0);
  d0.Add(1);
  d1.Add(0);
  d1.Add(2);
  d2.Add(0);
  d2.Add(3);
  return {d0, d1, d2};
}

TEST(TfIdfTest, IdfOrdersByRarity) {
  TfIdfModel model = TfIdfModel::Fit(MakeCorpus());
  EXPECT_LT(model.Idf(0), model.Idf(3));
  EXPECT_EQ(model.num_documents(), 3u);
}

TEST(TfIdfTest, SmoothedIdfValues) {
  TfIdfModel model = TfIdfModel::Fit(MakeCorpus());
  // idf(v) = log((1+N)/(1+df)) + 1.
  EXPECT_NEAR(model.Idf(0), std::log(4.0 / 4.0) + 1.0, 1e-12);
  EXPECT_NEAR(model.Idf(3), std::log(4.0 / 2.0) + 1.0, 1e-12);
  // Unseen term gets the maximum idf.
  EXPECT_NEAR(model.Idf(99), std::log(4.0 / 1.0) + 1.0, 1e-12);
}

TEST(TfIdfTest, TransformScalesCounts) {
  TfIdfModel model = TfIdfModel::Fit(MakeCorpus());
  BagOfWords bag;
  bag.Add(3, 2);
  auto weights = model.Transform(bag);
  EXPECT_NEAR(weights[3], 2.0 * model.Idf(3), 1e-12);
}

TEST(TfIdfTest, CosineDownweightsCommonTerms) {
  TfIdfModel model = TfIdfModel::Fit(MakeCorpus());
  // a and b share only the ubiquitous term 0; c and d share the rare 3.
  BagOfWords a, b, c, d;
  a.Add(0);
  a.Add(1);
  b.Add(0);
  b.Add(2);
  c.Add(3);
  c.Add(1);
  d.Add(3);
  d.Add(2);
  EXPECT_LT(model.CosineSimilarity(a, b), model.CosineSimilarity(c, d));
}

TEST(TfIdfTest, CosineIdenticalIsOne) {
  TfIdfModel model = TfIdfModel::Fit(MakeCorpus());
  BagOfWords a;
  a.Add(0, 2);
  a.Add(3, 1);
  EXPECT_NEAR(model.CosineSimilarity(a, a), 1.0, 1e-12);
}

TEST(TfIdfTest, CosineEmptyIsZero) {
  TfIdfModel model = TfIdfModel::Fit(MakeCorpus());
  BagOfWords a, empty;
  a.Add(0);
  EXPECT_DOUBLE_EQ(model.CosineSimilarity(a, empty), 0.0);
}

}  // namespace
}  // namespace crowdselect
