#include "text/jaccard.h"

#include <gtest/gtest.h>

namespace crowdselect {
namespace {

TEST(JaccardTest, DisjointSetsScoreZero) {
  BagOfWords a, b;
  a.Add(0);
  a.Add(1);
  b.Add(2);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistance(a, b), 1.0);
}

TEST(JaccardTest, IdenticalSetsScoreOne) {
  BagOfWords a;
  a.Add(0, 5);
  a.Add(3, 1);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, a), 1.0);
}

TEST(JaccardTest, CountsDoNotMatterOnlySets) {
  BagOfWords a, b;
  a.Add(0, 100);
  b.Add(0, 1);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 1.0);
}

TEST(JaccardTest, PartialOverlap) {
  BagOfWords a, b;
  a.Add(0);
  a.Add(1);
  a.Add(2);
  b.Add(1);
  b.Add(2);
  b.Add(3);
  // Intersection {1,2}=2; union {0,1,2,3}=4.
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), 0.5);
  EXPECT_DOUBLE_EQ(JaccardDistance(a, b), 0.5);
}

TEST(JaccardTest, EmptyConventions) {
  BagOfWords a, empty;
  a.Add(0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(empty, empty), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, empty), 0.0);
}

TEST(JaccardTest, Symmetry) {
  BagOfWords a, b;
  a.Add(1);
  a.Add(4);
  b.Add(4);
  b.Add(9);
  b.Add(12);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), JaccardSimilarity(b, a));
}

}  // namespace
}  // namespace crowdselect
