#include "text/vocabulary.h"

#include <gtest/gtest.h>

namespace crowdselect {
namespace {

TEST(VocabularyTest, InternAssignsDenseIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Intern("alpha"), 0u);
  EXPECT_EQ(vocab.Intern("beta"), 1u);
  EXPECT_EQ(vocab.Intern("alpha"), 0u);  // Idempotent.
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(VocabularyTest, LookupMissingReturnsInvalid) {
  Vocabulary vocab;
  vocab.Intern("x");
  EXPECT_EQ(vocab.Lookup("y"), kInvalidTermId);
  EXPECT_TRUE(vocab.Contains("x"));
  EXPECT_FALSE(vocab.Contains("y"));
}

TEST(VocabularyTest, TermOfInvertsIntern) {
  Vocabulary vocab;
  const TermId id = vocab.Intern("b+");
  EXPECT_EQ(vocab.TermOf(id), "b+");
}

TEST(VocabularyTest, SerializationRoundTrip) {
  Vocabulary vocab;
  vocab.Intern("tree");
  vocab.Intern("b+");
  vocab.Intern("advantage");
  BinaryWriter writer;
  vocab.Serialize(&writer);

  BinaryReader reader(writer.Release());
  auto restored = Vocabulary::Deserialize(&reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 3u);
  EXPECT_EQ(restored->Lookup("b+"), vocab.Lookup("b+"));
  EXPECT_EQ(restored->TermOf(0), "tree");
}

TEST(VocabularyTest, DeserializeRejectsDuplicates) {
  BinaryWriter writer;
  writer.WriteU64(2);
  writer.WriteString("same");
  writer.WriteString("same");
  BinaryReader reader(writer.Release());
  EXPECT_TRUE(Vocabulary::Deserialize(&reader).status().IsCorruption());
}

}  // namespace
}  // namespace crowdselect
